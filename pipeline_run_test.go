package joinopt_test

import (
	"context"
	"testing"

	"joinopt"
)

// TestRunExecWorkersIdenticalOutcome is the facade-level identity smoke: the
// pipelined engine behind WithExecWorkers must leave every user-visible
// quantity of a run untouched.
func TestRunExecWorkersIdenticalOutcome(t *testing.T) {
	tk := facadeTask(t)
	req := joinopt.Requirement{}
	base, err := tk.Run(context.Background(), req, joinopt.WithPlan(scanPlan()))
	if err != nil {
		t.Fatal(err)
	}
	piped, err := tk.Run(context.Background(), req, joinopt.WithPlan(scanPlan()),
		joinopt.WithExecWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	b, p := base.Outcome, piped.Outcome
	if b.GoodTuples != p.GoodTuples || b.BadTuples != p.BadTuples || b.Time != p.Time ||
		b.DocsProcessed != p.DocsProcessed || b.DocsRetrieved != p.DocsRetrieved ||
		b.Queries != p.Queries {
		t.Errorf("4-worker outcome diverged from sequential:\nseq  %+v\npipe %+v", b, p)
	}
	if base.TotalTime != piped.TotalTime {
		t.Errorf("total time diverged: %v vs %v", base.TotalTime, piped.TotalTime)
	}
}

// TestRunExtractionCacheStats smokes the cache through the facade: a repeated
// run against WithExtractionCache is served from the task-level cache, the
// stats surface reports it, and the cost-model time drops accordingly while
// the output stays identical.
func TestRunExtractionCacheStats(t *testing.T) {
	tk, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s := tk.ExtractionCacheStats(); s != (joinopt.CacheStats{}) {
		t.Fatalf("fresh task reports cache stats %+v", s)
	}
	run := func() *joinopt.RunResult {
		res, err := tk.Run(context.Background(), joinopt.Requirement{},
			joinopt.WithPlan(scanPlan()), joinopt.WithExtractionCache(1<<22))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	if s := tk.ExtractionCacheStats(); s.Hits != 0 || s.Misses == 0 || s.Entries == 0 {
		t.Fatalf("cold run cache stats %+v, want only misses", s)
	}
	warm := run()
	s := tk.ExtractionCacheStats()
	if s.Hits == 0 {
		t.Fatalf("repeated run recorded no cache hits: %+v", s)
	}
	if cold.Outcome.GoodTuples != warm.Outcome.GoodTuples ||
		cold.Outcome.BadTuples != warm.Outcome.BadTuples {
		t.Errorf("warm output (%d,%d) != cold (%d,%d)",
			warm.Outcome.GoodTuples, warm.Outcome.BadTuples,
			cold.Outcome.GoodTuples, cold.Outcome.BadTuples)
	}
	if warm.Outcome.Time >= cold.Outcome.Time {
		t.Errorf("warm run time %v not below cold %v despite %d cache hits",
			warm.Outcome.Time, cold.Outcome.Time, s.Hits)
	}

	// A run without the option drops the per-task cache again.
	if _, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(scanPlan())); err != nil {
		t.Fatal(err)
	}
	if s := tk.ExtractionCacheStats(); s != (joinopt.CacheStats{}) {
		t.Errorf("cache survived an uncached run: %+v", s)
	}
}
