package joinopt_test

import (
	"context"
	"sync"
	"testing"

	"joinopt"
)

// TestConcurrentRunsOnOneTask pins the Task concurrency contract: one Task
// hammered by concurrent Run calls — adaptive and fixed-plan, with per-run
// traces, metrics, fault profiles, pipelined workers, and the shared
// extraction cache — must race-cleanly produce, per configuration, the same
// output composition as a sequential run. Run it under -race.
func TestConcurrentRunsOnOneTask(t *testing.T) {
	tk, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	tk.ExtractCacheBytes = 4 << 20
	req := joinopt.Requirement{TauG: 5, TauB: 120}
	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}

	// Sequential references for each configuration the goroutines replay.
	refAdaptive, err := tk.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	refFixed, err := tk.Run(context.Background(), req, joinopt.WithPlan(plan))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	outs := make([]*joinopt.Outcome, goroutines)
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			opts := []joinopt.RunOption{
				joinopt.WithTracer(joinopt.NewTrace(joinopt.NewRingSink(256))),
				joinopt.WithMetrics(joinopt.NewMetrics()),
			}
			switch i % 3 {
			case 0: // adaptive
			case 1:
				opts = append(opts, joinopt.WithPlan(plan), joinopt.WithExecWorkers(2))
			case 2:
				opts = append(opts, joinopt.WithPlan(plan), joinopt.WithFaults(nil))
			}
			res, err := tk.Run(context.Background(), req, opts...)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res.Outcome
			// Concurrent readers of the shared cache accounting are part of
			// the contract.
			_ = tk.ExtractionCacheStats()
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		ref := refAdaptive.Outcome
		if i%3 != 0 {
			ref = refFixed.Outcome
		}
		if outs[i].GoodTuples != ref.GoodTuples || outs[i].BadTuples != ref.BadTuples {
			t.Errorf("goroutine %d: output (good=%d bad=%d) diverged from sequential (good=%d bad=%d)",
				i, outs[i].GoodTuples, outs[i].BadTuples, ref.GoodTuples, ref.BadTuples)
		}
	}
	if st := tk.ExtractionCacheStats(); st.Hits == 0 {
		t.Error("shared extraction cache saw no hits across concurrent runs")
	}
}
