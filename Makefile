GO ?= go

.PHONY: check build vet test race bench

# check is the full pre-merge gate: static checks, a clean build, the test
# suite, and the race detector over the concurrent packages (the optimizer's
# parallel plan-space search and the join executors it drives).
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/optimizer/... ./internal/join/...

# bench runs the optimizer plan-space benchmarks: sequential vs parallel
# Choose on the 256-plan space, and cold vs warm memoization sweeps.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkChoose' -benchtime 10x .
