GO ?= go

.PHONY: check build vet test race transparency bench bench-overhead

# check is the full pre-merge gate: static checks, a clean build, the test
# suite, the race detector over the concurrent packages (the optimizer's
# parallel plan-space search, the join executors it drives, and the fault
# injection/tolerance layer), and the zero-rate fault-transparency property
# (a profile with rate 0 must leave every execution bit-identical).
check: vet build test race transparency

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/optimizer/... ./internal/join/... ./internal/faults/... ./internal/workload/... ./internal/obs/...

transparency:
	$(GO) test ./internal/join/ -run TestZeroRateFaultTransparency -count=1

# bench runs the optimizer plan-space benchmarks: sequential vs parallel
# Choose on the 256-plan space, and cold vs warm memoization sweeps.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkChoose' -benchtime 10x .

# bench-overhead compares a full executor run with observability detached
# (the nil fast path), with a ring trace + metrics attached, and with an
# NDJSON stream — the nil variant must stay within 2% of the plain
# BenchmarkIDJNFullScan baseline (DESIGN.md §5's overhead budget).
bench-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkIDJNFullScan' -benchtime 20x -count 3 .
