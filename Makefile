GO ?= go

.PHONY: check build vet test race transparency api-check api-update bench-enum serve-smoke crash-smoke cluster-smoke bench bench-overhead bench-json bench-json-check bench-service

# check is the full pre-merge gate: static checks, a clean build, the test
# suite, the race detector over the concurrent packages (the optimizer's
# parallel plan-space search, the join executors it drives, and the fault
# injection/tolerance layer), the zero-rate fault-transparency property
# (a profile with rate 0 must leave every execution bit-identical), the
# public-API drift gate, and a smoke run of the n-ary enumerator benchmark.
check: vet build test race transparency api-check bench-enum

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/optimizer/... ./internal/join/... ./internal/faults/... ./internal/workload/... ./internal/obs/... ./internal/pipeline/... ./internal/shard/... ./internal/service/... ./internal/durable/... ./internal/cluster/...
	$(GO) test -race -run TestConcurrentRunsOnOneTask -count=1 .

transparency:
	$(GO) test ./internal/join/ -run TestZeroRateFaultTransparency -count=1

# api-check diffs the exported surface of the root joinopt package against
# the committed API.txt; any drift fails the gate until the change is
# reviewed and API.txt regenerated with api-update.
api-check:
	$(GO) run ./cmd/apicheck -dir . -check API.txt

api-update:
	$(GO) run ./cmd/apicheck -dir . -write API.txt

# bench-enum smokes the DP join-tree enumerator benchmark (k=2..5 query
# graphs): a handful of iterations to catch pathological plan-space blowups
# in the pre-merge gate, not to produce stable numbers.
bench-enum:
	$(GO) test -run '^$$' -bench 'BenchmarkNaryEnumerator' -benchtime 3x ./internal/optimizer/

# serve-smoke boots the real joinoptd binary on a random port, drives one
# adaptive job end to end over HTTP (submit, event stream, result, metrics
# scrape), then SIGTERMs it and requires a clean drain.
serve-smoke:
	$(GO) test ./cmd/joinoptd -run TestServeSmoke -count=1 -v

# crash-smoke is the kill-and-recover harness: boot joinoptd with a state
# dir, SIGKILL it mid-run with one job executing and one queued, restart it
# against the same directory, and require both jobs to finish with the
# recovery counters, warmed extraction cache, and NDJSON event streams all
# verified over HTTP.
crash-smoke:
	$(GO) test ./cmd/joinoptd -run TestCrashSmoke -count=1 -v

# cluster-smoke is the fleet kill-and-migrate harness: boot two joinoptd
# replicas as a cluster, submit one adaptive job through the replica that
# does NOT own its workload (proving consistent-hash forwarding), SIGKILL
# the owner mid-run, and require the survivor to adopt the replicated
# checkpoint and finish the job bit-identical to a single-node run, with
# the migration visible in joinopt_cluster_migrations_total.
cluster-smoke:
	$(GO) test ./cmd/joinoptd -run TestClusterSmoke -count=1 -v

# bench runs the optimizer plan-space benchmarks: sequential vs parallel
# Choose on the 256-plan space, and cold vs warm memoization sweeps.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkChoose' -benchtime 10x .

# bench-json runs the pipelined-executor benchmarks (all three algorithms,
# sequential vs 4 workers, the sharded scatter-gather scaling sweep, and the
# binary + n-ary plan-space sweeps) and captures the results as
# BENCH_exec.json. Each benchmark runs for a real duration, three times;
# benchjson records the median, so the committed numbers are not 3-iteration
# noise. bench-json-check verifies the recorded speedups; on a single-CPU
# machine the check is skipped (overlap cannot help there) with a loud
# warning — benchjson refuses single-CPU artifacts by default, so the local
# flow passes -allow-single-cpu explicitly; CI runs the same check with
# -require-parallel, which fails instead of skipping.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkExec(IDJN|OIJN|ZGJN|ShardedIDJN)8k|BenchmarkChoosePlanSpace8k|BenchmarkChooseNary' -benchtime 1s -count 3 . \
		| $(GO) run ./cmd/benchjson -o BENCH_exec.json
	@cat BENCH_exec.json

bench-json-check: bench-json
	@if [ "$$(nproc 2>/dev/null || echo 1)" -lt 2 ]; then \
		echo "================================================================"; \
		echo "WARNING: this machine has fewer than 2 CPUs."; \
		echo "The seq-vs-workers4 and shards1-vs-shards4 speedup gates below"; \
		echo "will be SKIPPED, not passed: a parallel speedup is impossible"; \
		echo "on one core. Run 'make bench-json-check' on a multi-core"; \
		echo "machine (or rely on CI, which enforces both gates with"; \
		echo "-require-parallel) before trusting the recorded numbers."; \
		echo "================================================================"; \
	fi
	$(GO) run ./cmd/benchjson -check BENCH_exec.json -allow-single-cpu

# bench-service boots joinoptd under admission pressure (small queue, tight
# tenant quotas), drives it with loadgen's closed loop, and records the
# service-level numbers — p50/p99 end-to-end job latency, 429 rate,
# throughput — as BENCH_service.json.
bench-service:
	$(GO) build -o /tmp/joinoptd.bench ./cmd/joinoptd
	@/tmp/joinoptd.bench -listen 127.0.0.1:18080 -service-workers 2 -queue-depth 8 -tenant-quota 3 & \
	pid=$$!; sleep 1; \
	$(GO) run ./cmd/loadgen -addr 127.0.0.1:18080 -clients 8 -jobs 48 -tenants 2 -docs 400 -json BENCH_service.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$rc
	@cat BENCH_service.json

# bench-overhead compares a full executor run with observability detached
# (the nil fast path), with a ring trace + metrics attached, and with an
# NDJSON stream — the nil variant must stay within 2% of the plain
# BenchmarkIDJNFullScan baseline (DESIGN.md §5's overhead budget).
bench-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkIDJNFullScan' -benchtime 20x -count 3 .
