package joinopt

import (
	"io"

	"joinopt/internal/obs"
)

// Trace is a structured execution tracer: every observable step of a run —
// plan decisions, document fetches, tuple extraction and joining, retries,
// faults, checkpoints, plan switches — is emitted as a timestamped event to
// the trace's sinks. Timestamps are cost-model time, so a seeded run's trace
// is deterministic. A nil *Trace is valid and free: every emission no-ops.
type Trace = obs.Trace

// TraceEvent is one emitted trace record: a monotone sequence number, the
// cost-model timestamp, the event kind (e.g. "exec.step", "retry",
// "plan.chosen"), the 1-based database side (0 = not side-specific), and
// kind-specific attributes.
type TraceEvent = obs.Event

// TraceSink receives trace events.
type TraceSink = obs.Tracer

// RingSink is an in-memory flight recorder keeping the most recent events.
type RingSink = obs.Ring

// TraceFile writes events as newline-delimited JSON — the -trace file
// format.
type TraceFile = obs.NDJSON

// Metrics is a registry of named counters, gauges, and histograms populated
// by instrumented runs. Export a point-in-time copy with Snapshot (or String
// for expvar-style JSON), or encode the Prometheus text format with
// WritePrometheus. A nil *Metrics is valid and free.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of every registered metric.
type MetricsSnapshot = obs.Snapshot

// NewTrace builds a trace fanning out to the given sinks. With no non-nil
// sinks it returns nil — the disabled trace.
func NewTrace(sinks ...TraceSink) *Trace { return obs.New(sinks...) }

// NewRingSink builds an in-memory ring sink holding up to capacity events
// (a default capacity when capacity <= 0).
func NewRingSink(capacity int) *RingSink { return obs.NewRing(capacity) }

// NewTraceFile builds an NDJSON sink over w.
func NewTraceFile(w io.Writer) *TraceFile { return obs.NewNDJSON(w) }

// CreateTraceFile creates (truncating) an NDJSON trace file at path. Close
// it to flush.
func CreateTraceFile(path string) (*TraceFile, error) { return obs.CreateNDJSON(path) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }
