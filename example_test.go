package joinopt_test

import (
	"fmt"
	"log"

	"joinopt"
)

// Building a task wires two synthetic text databases, their IE systems,
// trained retrieval machinery, and gold labels for evaluation.
func ExampleNewHQJoinEX() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	r1, r2 := task.Relations()
	fmt.Println(r1)
	fmt.Println(r2)
	// Output:
	// Headquarters(Company, Location)
	// Executives(Company, CEO)
}

// Execute runs any plan of the space; the stop condition sees the live
// output composition.
func ExampleTask_Execute() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	out, err := task.Execute(plan, func(p joinopt.Progress) bool {
		return p.GoodTuples >= 4
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reached the good-tuple target:", out.GoodTuples >= 4)
	fmt.Println("paid execution time:", out.Time > 0)
	// Output:
	// reached the good-tuple target: true
	// paid execution time: true
}

// High-level preferences map onto the paper's low-level (τg, τb) model.
func ExampleTask_OptimizePrecision() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	_, req, err := task.OptimizePrecision(20, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived requirement: τg=%d τb=%d\n", req.TauG, req.TauB)
	// Output:
	// derived requirement: τg=20 τb=20
}
