package joinopt_test

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

// Building a task wires two synthetic text databases, their IE systems,
// trained retrieval machinery, and gold labels for evaluation.
func ExampleNewHQJoinEX() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	r1, r2 := task.Relations()
	fmt.Println(r1)
	fmt.Println(r2)
	// Output:
	// Headquarters(Company, Location)
	// Executives(Company, CEO)
}

// Run with WithPlan executes any plan of the space; the stop condition sees
// the live output composition.
func ExampleTask_Run() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	res, err := task.Run(context.Background(), joinopt.Requirement{},
		joinopt.WithPlan(plan),
		joinopt.WithStop(func(p joinopt.Progress) bool { return p.GoodTuples >= 4 }))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reached the good-tuple target:", res.Outcome.GoodTuples >= 4)
	fmt.Println("paid execution time:", res.Outcome.Time > 0)
	// Output:
	// reached the good-tuple target: true
	// paid execution time: true
}

// A declarative query joins up to MaxQueryRelations relations: the DP
// enumerator picks per-relation knobs, efforts, and the join tree.
func ExampleNewQuery() {
	task, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450, Seed: 1}, joinopt.Query{
		Relations: []string{"HQ", "EX", "MG", "HQ"},
		Joins:     [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := task.Run(context.Background(), joinopt.Requirement{TauG: 10, TauB: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("relations joined:", task.Arity())
	fmt.Println("produced good tuples:", res.Query.GoodTuples > 0)
	// Output:
	// relations joined: 4
	// produced good tuples: true
}

// High-level preferences map onto the paper's low-level (τg, τb) model.
func ExampleTask_OptimizePrecision() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	_, req, err := task.OptimizePrecision(20, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived requirement: τg=%d τb=%d\n", req.TauG, req.TauB)
	// Output:
	// derived requirement: τg=20 τb=20
}
