package joinopt_test

import (
	"context"
	"strings"
	"testing"

	"joinopt"
	"joinopt/internal/join"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// TestQueryBinarySpecialCase: a two-relation query IS the binary task — the
// same construction, the same optimizer choice, the same execution,
// bit-for-bit.
func TestQueryBinarySpecialCase(t *testing.T) {
	p := joinopt.WorkloadParams{NumDocs: 800, Seed: 11}
	qt, err := joinopt.NewQuery(p, joinopt.Query{Relations: []string{"HQ", "EX"}})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := joinopt.NewTaskPair(p, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	if qt.Arity() != 2 {
		t.Fatalf("arity %d", qt.Arity())
	}
	req := joinopt.Requirement{TauG: 8, TauB: 200}
	qBest, err := qt.Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	bBest, err := bt.Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	if qBest != bBest {
		t.Errorf("query-built task chose %+v, pair-built chose %+v", qBest, bBest)
	}
	// OptimizeQuery reports the same binary choice in query-plan form.
	qp, err := qt.OptimizeQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	if qp.EstimatedTime != bBest.EstimatedTime || qp.EstimatedGood != bBest.EstimatedGood {
		t.Errorf("OptimizeQuery predictions diverged: %+v vs %+v", qp, bBest)
	}
	if len(qp.Leaves) != 2 || qp.Leaves[0].Theta != bBest.Plan.Theta[0] ||
		joinopt.Strategy(qp.Leaves[0].Strategy) != bBest.Plan.X[0] {
		t.Errorf("OptimizeQuery leaves %+v diverged from plan %+v", qp.Leaves, bBest.Plan)
	}
	qRun, err := qt.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	bRun, err := bt.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if qRun.Outcome.GoodTuples != bRun.Outcome.GoodTuples ||
		qRun.Outcome.BadTuples != bRun.Outcome.BadTuples ||
		qRun.TotalTime != bRun.TotalTime {
		t.Errorf("query-built run diverged: %+v vs %+v", qRun.Outcome, bRun.Outcome)
	}
}

// TestQueryNaryRunEndToEnd: a 4-relation query plans and executes through
// Run; the result reports the chosen tree, leaves, and per-relation work.
func TestQueryNaryRunEndToEnd(t *testing.T) {
	task, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450, Seed: 9}, joinopt.Query{
		Relations: []string{"HQ", "EX", "MG", "HQ"},
		Joins:     [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	task.MergeCost = 0.05
	req := joinopt.Requirement{TauG: 10, TauB: 1 << 30}
	res, err := task.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != nil {
		t.Error("n-ary run must not report a binary outcome")
	}
	qo := res.Query
	if qo == nil {
		t.Fatal("n-ary run missing the query outcome")
	}
	if qo.GoodTuples == 0 {
		t.Error("no good tuples")
	}
	if len(qo.Plan.Leaves) != 4 || len(qo.DocsProcessed) != 4 {
		t.Fatalf("per-relation stats not 4-ary: %+v", qo)
	}
	if !strings.Contains(qo.Plan.Tree, "⋈") {
		t.Errorf("no join tree rendered: %q", qo.Plan.Tree)
	}
	for i, l := range qo.Plan.Leaves {
		if qo.DocsRetrieved[i] > l.Effort {
			t.Errorf("relation %d retrieved %d docs past its effort cap %d", i, qo.DocsRetrieved[i], l.Effort)
		}
	}
	if qo.MergeTime <= 0 {
		t.Error("positive merge cost charged no merge time")
	}
	if root := qo.NodeTuples[len(qo.NodeTuples)-1]; root != qo.GoodTuples+qo.BadTuples {
		t.Errorf("root materialization %d != output %d", root, qo.GoodTuples+qo.BadTuples)
	}
}

// TestQueryStopAndDeadline: WithQueryStop halts early; WithDeadline
// surfaces ErrDeadline with the partial result.
func TestQueryStopAndDeadline(t *testing.T) {
	task, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450, Seed: 9}, joinopt.Query{
		Relations: []string{"HQ", "EX", "MG"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := task.Run(context.Background(), joinopt.Requirement{TauG: 5, TauB: 1 << 30},
		joinopt.WithQueryStop(func(p joinopt.QueryProgress) bool { return p.DocsProcessed[0] >= 20 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.DocsProcessed[0] < 20 || res.Query.DocsProcessed[0] > 30 {
		t.Errorf("stop condition ignored: %d docs", res.Query.DocsProcessed[0])
	}

	dres, err := task.Run(context.Background(), joinopt.Requirement{TauG: 5, TauB: 1 << 30},
		joinopt.WithDeadline(20))
	if err == nil || dres == nil || !dres.Query.DeadlineHit {
		t.Fatalf("deadline not surfaced: res=%+v err=%v", dres, err)
	}
}

// TestQueryRejectsBinaryOnlyOptions: the binary-only options and methods
// error descriptively on an n-ary task instead of misbehaving.
func TestQueryRejectsBinaryOnlyOptions(t *testing.T) {
	task, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450, Seed: 9}, joinopt.Query{
		Relations: []string{"HQ", "EX", "MG"},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := joinopt.Requirement{TauG: 5, TauB: 1 << 30}
	if _, err := task.Run(context.Background(), req, joinopt.WithPlan(joinopt.Plan{})); err == nil {
		t.Error("WithPlan accepted on an n-ary task")
	}
	if _, err := task.Run(context.Background(), req,
		joinopt.WithStop(func(joinopt.Progress) bool { return true })); err == nil {
		t.Error("WithStop accepted on an n-ary task")
	}
	if _, err := task.Run(context.Background(), req,
		joinopt.WithFaults(joinopt.UniformFaults(1, 0.1))); err == nil {
		t.Error("WithFaults accepted on an n-ary task")
	}
	if _, err := task.Optimize(req); err == nil {
		t.Error("binary Optimize accepted on an n-ary task")
	}
	if _, err := task.TableII(); err == nil {
		t.Error("TableII accepted on an n-ary task")
	}
	if _, _, err := task.VerifierAccuracy(0.5, 1); err == nil {
		t.Error("verification accepted on an n-ary task")
	}
}

// TestQueryValidation: malformed query specs are rejected up front.
func TestQueryValidation(t *testing.T) {
	cases := []joinopt.Query{
		{Relations: []string{"HQ"}},
		{Relations: []string{"HQ", "EX", "MG", "HQ", "EX", "MG", "HQ"}},
		{Relations: []string{"HQ", "EX", "MG"}, Joins: [][2]int{{0, 0}, {1, 2}}},
		{Relations: []string{"HQ", "EX", "MG"}, Joins: [][2]int{{0, 3}}},
		{Relations: []string{"HQ", "EX", "MG", "HQ"}, Joins: [][2]int{{0, 1}, {2, 3}}}, // disconnected
	}
	for i, q := range cases {
		if _, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450}, q); err == nil {
			t.Errorf("case %d: invalid query %+v accepted", i, q)
		}
	}
	if _, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450}, joinopt.Query{
		Relations: []string{"HQ", "XX", "MG"}}); err == nil {
		t.Error("unknown task accepted")
	}
}

// TestQueryCacheInvariant: Time + ΣCacheSaved is invariant between a cold
// and a warm run of the same n-ary query over the shared extraction cache.
func TestQueryCacheInvariant(t *testing.T) {
	task, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450, Seed: 9}, joinopt.Query{
		Relations: []string{"HQ", "EX", "MG"},
	})
	if err != nil {
		t.Fatal(err)
	}
	task.ExtractCacheBytes = 64 << 20
	req := joinopt.Requirement{TauG: 10, TauB: 1 << 30}
	total := func(q *joinopt.QueryOutcome) float64 {
		s := q.Time
		for _, cs := range q.CacheSaved {
			s += cs
		}
		return s
	}
	cold, err := task.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := task.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Query.GoodTuples != cold.Query.GoodTuples || warm.Query.BadTuples != cold.Query.BadTuples {
		t.Error("cache warmth changed the output")
	}
	if total(warm.Query) != total(cold.Query) {
		t.Errorf("Time+ΣCacheSaved not invariant: cold %v vs warm %v", total(cold.Query), total(warm.Query))
	}
	if warm.Query.Time >= cold.Query.Time {
		t.Errorf("warm run not cheaper: %v vs %v", warm.Query.Time, cold.Query.Time)
	}
	if task.ExtractionCacheStats().Hits == 0 {
		t.Error("warm run recorded no cache hits")
	}
}

// TestThreeWayShimGolden pins the re-homed ThreeWayTask bit-for-bit against
// the legacy execution path it used to call directly: the n-ary IDJN over
// the same MultiWorkload.
func TestThreeWayShimGolden(t *testing.T) {
	p := joinopt.WorkloadParams{NumDocs: 450, Seed: 9}
	tw, err := joinopt.NewThreeWay(p, "MG", "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	got, err := tw.Execute([3]float64{0.4, 0.4, 0.4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	mw, err := workload.Multi(workload.Params{NumDocs: p.NumDocs, Seed: p.Seed}, []string{"MG", "HQ", "EX"})
	if err != nil {
		t.Fatal(err)
	}
	sides := make([]*join.Side, 3)
	strats := make([]retrieval.Strategy, 3)
	for i := 0; i < 3; i++ {
		sides[i] = mw.Side(i, 0.4)
		strats[i] = mw.Scan(i)
	}
	legacy, err := join.NewMultiIDJN(sides, strats)
	if err != nil {
		t.Fatal(err)
	}
	want, err := join.RunMulti(legacy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoodTuples != want.GoodTuples || got.BadTuples != want.BadTuples {
		t.Errorf("shim output (%d, %d) != legacy (%d, %d)",
			got.GoodTuples, got.BadTuples, want.GoodTuples, want.BadTuples)
	}
	if got.Time != want.Time {
		t.Errorf("shim time %v != legacy %v", got.Time, want.Time)
	}
	for i := 0; i < 3; i++ {
		if got.DocsProcessed[i] != want.DocsProcessed[i] {
			t.Errorf("side %d processed %d != legacy %d", i, got.DocsProcessed[i], want.DocsProcessed[i])
		}
	}

	// The shim's stop condition still sees live three-way progress.
	partial, err := tw.Execute([3]float64{0.4, 0.4, 0.4}, func(p joinopt.ThreeWayProgress) bool {
		return p.DocsProcessed[0] >= 50
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.DocsProcessed[0] < 50 || partial.DocsProcessed[0] > 60 {
		t.Errorf("shim stop ignored: %d docs", partial.DocsProcessed[0])
	}
}
