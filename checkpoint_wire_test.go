package joinopt_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"joinopt"
)

// TestCheckpointSerializedResumeMatchesUninterrupted is the codec-level
// recovery property: an interrupted run's checkpoint serialized to bytes,
// decoded in a fresh process image (a new Task over the same workload), and
// resumed produces the result of the uninterrupted run exactly.
func TestCheckpointSerializedResumeMatchesUninterrupted(t *testing.T) {
	params := joinopt.WorkloadParams{NumDocs: 400, Seed: 7}
	req := joinopt.Requirement{TauG: 8, TauB: 200}

	fresh, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	base, err := fresh.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	tk, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ct := &cancelTracer{cancel: cancel, trigger: 25}
	interrupted, err := tk.Run(ctx, req, joinopt.WithTracer(joinopt.NewTrace(ct)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if interrupted.Checkpoint == nil {
		t.Fatal("interrupted run carries no checkpoint")
	}

	wire, err := json.Marshal(interrupted.Checkpoint)
	if err != nil {
		t.Fatalf("encoding checkpoint: %v", err)
	}
	decoded, err := joinopt.DecodeCheckpoint(wire)
	if err != nil {
		t.Fatalf("decoding checkpoint: %v", err)
	}

	// A brand-new Task simulates the restarted daemon: nothing survives the
	// crash but the wire bytes and the (deterministic) workload parameters.
	restarted, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := restarted.Run(context.Background(), req, joinopt.WithCheckpoint(decoded))
	if err != nil {
		t.Fatalf("resume from decoded checkpoint failed: %v", err)
	}

	if resumed.Outcome.GoodTuples != base.Outcome.GoodTuples ||
		resumed.Outcome.BadTuples != base.Outcome.BadTuples ||
		resumed.Outcome.Time != base.Outcome.Time ||
		resumed.TotalTime != base.TotalTime {
		t.Errorf("resumed run diverged: good %d/%d bad %d/%d time %v/%v total %v/%v",
			resumed.Outcome.GoodTuples, base.Outcome.GoodTuples,
			resumed.Outcome.BadTuples, base.Outcome.BadTuples,
			resumed.Outcome.Time, base.Outcome.Time,
			resumed.TotalTime, base.TotalTime)
	}
	bt, bb := base.Outcome.Tuples(), resumed.Outcome.Tuples()
	if len(bt) != len(bb) {
		t.Fatalf("tuple count diverged: %d vs %d", len(bb), len(bt))
	}
	for i := range bt {
		if bt[i] != bb[i] {
			t.Fatalf("tuple %d diverged: %+v vs %+v", i, bb[i], bt[i])
		}
	}
}

// TestShardedCheckpointResumeMatchesUninterrupted extends the codec-level
// recovery property to scatter-gather execution: a sharded run's checkpoint
// carries per-shard progress over the wire, and a fresh sharded task resumed
// from the decoded bytes reproduces the uninterrupted sharded run — which is
// itself bit-identical to the unsharded one — exactly.
func TestShardedCheckpointResumeMatchesUninterrupted(t *testing.T) {
	params := joinopt.WorkloadParams{NumDocs: 400, Seed: 7}
	req := joinopt.Requirement{TauG: 8, TauB: 200}

	shardedTask := func() *joinopt.Task {
		tk, err := joinopt.NewTaskPair(params, "HQ", "EX")
		if err != nil {
			t.Fatal(err)
		}
		tk.Shards = 4
		return tk
	}

	base, err := shardedTask().Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ct := &cancelTracer{cancel: cancel, trigger: 25}
	interrupted, err := shardedTask().Run(ctx, req, joinopt.WithTracer(joinopt.NewTrace(ct)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if interrupted.Checkpoint == nil {
		t.Fatal("interrupted run carries no checkpoint")
	}

	wire, err := json.Marshal(interrupted.Checkpoint)
	if err != nil {
		t.Fatalf("encoding checkpoint: %v", err)
	}
	if !bytes.Contains(wire, []byte(`"shard_docs"`)) {
		t.Errorf("sharded checkpoint wire carries no per-shard progress: %s", wire)
	}
	decoded, err := joinopt.DecodeCheckpoint(wire)
	if err != nil {
		t.Fatalf("decoding checkpoint: %v", err)
	}

	resumed, err := shardedTask().Run(context.Background(), req, joinopt.WithCheckpoint(decoded))
	if err != nil {
		t.Fatalf("resume from decoded checkpoint failed: %v", err)
	}
	if resumed.Outcome.GoodTuples != base.Outcome.GoodTuples ||
		resumed.Outcome.BadTuples != base.Outcome.BadTuples ||
		resumed.Outcome.Time != base.Outcome.Time ||
		resumed.TotalTime != base.TotalTime {
		t.Errorf("resumed sharded run diverged: good %d/%d bad %d/%d time %v/%v total %v/%v",
			resumed.Outcome.GoodTuples, base.Outcome.GoodTuples,
			resumed.Outcome.BadTuples, base.Outcome.BadTuples,
			resumed.Outcome.Time, base.Outcome.Time,
			resumed.TotalTime, base.TotalTime)
	}

	// The sharded run itself must match the unsharded task on the same
	// workload — sharding never changes what a run produces or charges.
	plain, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	unsharded, err := plain.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if base.Outcome.GoodTuples != unsharded.Outcome.GoodTuples ||
		base.Outcome.BadTuples != unsharded.Outcome.BadTuples ||
		base.TotalTime != unsharded.TotalTime {
		t.Errorf("sharded run diverged from unsharded: good %d/%d bad %d/%d total %v/%v",
			base.Outcome.GoodTuples, unsharded.Outcome.GoodTuples,
			base.Outcome.BadTuples, unsharded.Outcome.BadTuples,
			base.TotalTime, unsharded.TotalTime)
	}
}

// TestCheckpointSinkStreamsResumableCheckpoints: every checkpoint handed to
// a WithCheckpointSink callback is itself a valid resume point — encoding it
// and resuming a fresh task from the decoded bytes completes with the
// uninterrupted run's result.
func TestCheckpointSinkStreamsResumableCheckpoints(t *testing.T) {
	params := joinopt.WorkloadParams{NumDocs: 400, Seed: 7}
	req := joinopt.Requirement{TauG: 8, TauB: 200}

	tk, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	var wires [][]byte
	base, err := tk.Run(context.Background(), req, joinopt.WithCheckpointSink(func(ck *joinopt.AdaptiveCheckpoint) {
		b, err := json.Marshal(ck)
		if err != nil {
			t.Errorf("encoding streamed checkpoint: %v", err)
			return
		}
		wires = append(wires, b)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(wires) == 0 {
		t.Fatal("sink saw no checkpoints")
	}
	for i, wire := range wires {
		decoded, err := joinopt.DecodeCheckpoint(wire)
		if err != nil {
			t.Fatalf("checkpoint %d: decode: %v", i, err)
		}
		restarted, err := joinopt.NewTaskPair(params, "HQ", "EX")
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := restarted.Run(context.Background(), req, joinopt.WithCheckpoint(decoded))
		if err != nil {
			t.Fatalf("checkpoint %d: resume: %v", i, err)
		}
		if resumed.Outcome.GoodTuples != base.Outcome.GoodTuples ||
			resumed.Outcome.BadTuples != base.Outcome.BadTuples ||
			resumed.TotalTime != base.TotalTime {
			t.Errorf("checkpoint %d: resumed good=%d bad=%d total=%v, want good=%d bad=%d total=%v",
				i, resumed.Outcome.GoodTuples, resumed.Outcome.BadTuples, resumed.TotalTime,
				base.Outcome.GoodTuples, base.Outcome.BadTuples, base.TotalTime)
		}
	}
}
