package joinopt

// ThreeWayTask predates the query API: three relations extracted from three
// text databases and joined on the shared attribute, executed by scan-based
// independent extraction with the generalized 2^n-class composition model.
// It is now a thin shim over the query API and pins its historical
// behaviour bit-for-bit (the golden test in query_test.go).
//
// Deprecated: use NewQuery, which generalizes to 2..MaxQueryRelations
// relations, declarative join predicates, DP-planned join trees, and the
// unified Run surface.
type ThreeWayTask struct {
	q *Task
}

// NewThreeWay builds a three-relation join task over the standard tasks
// ("HQ", "EX", "MG").
//
// Deprecated: use NewQuery with three Relations.
func NewThreeWay(p WorkloadParams, rel1, rel2, rel3 string) (*ThreeWayTask, error) {
	q, err := NewQuery(p, Query{Relations: []string{rel1, rel2, rel3}})
	if err != nil {
		return nil, err
	}
	return &ThreeWayTask{q: q}, nil
}

// Relations names the three extracted relations.
func (t *ThreeWayTask) Relations() [3]string {
	var out [3]string
	copy(out[:], t.q.RelationNames())
	return out
}

// ThreeWayOutcome summarizes an executed three-way join.
//
// Deprecated: QueryOutcome is the arity-general form.
type ThreeWayOutcome struct {
	GoodTuples    int
	BadTuples     int
	Time          float64
	DocsProcessed [3]int
}

// ThreeWayProgress is the live state visible to a stop condition.
//
// Deprecated: QueryProgress is the arity-general form.
type ThreeWayProgress struct {
	GoodTuples, BadTuples int
	DocsProcessed         [3]int
	Time                  float64
}

// Execute runs the n-ary Independent Join with per-side knob settings,
// scanning all three databases, until exhaustion or stop returns true.
//
// Deprecated: use Task.ExecuteQuery (pinned knobs) or Task.Run (optimized).
func (t *ThreeWayTask) Execute(thetas [3]float64, stop func(ThreeWayProgress) bool) (*ThreeWayOutcome, error) {
	var qs func(QueryProgress) bool
	if stop != nil {
		qs = func(p QueryProgress) bool {
			return stop(ThreeWayProgress{
				GoodTuples: p.GoodTuples, BadTuples: p.BadTuples,
				DocsProcessed: [3]int{p.DocsProcessed[0], p.DocsProcessed[1], p.DocsProcessed[2]},
				Time:          p.Time,
			})
		}
	}
	out, err := t.q.ExecuteQuery(thetas[:], qs)
	if err != nil {
		return nil, err
	}
	return &ThreeWayOutcome{
		GoodTuples:    out.GoodTuples,
		BadTuples:     out.BadTuples,
		Time:          out.Time,
		DocsProcessed: [3]int{out.DocsProcessed[0], out.DocsProcessed[1], out.DocsProcessed[2]},
	}, nil
}

// Predict estimates the full-scan output composition at the given knob
// settings with the generalized composition model (all sides share one θ
// for simplicity of the extension's surface).
func (t *ThreeWayTask) Predict(theta float64) (good, bad float64, err error) {
	m, err := t.q.mw.TrueMultiModel(theta)
	if err != nil {
		return 0, 0, err
	}
	efforts := make([]int, len(t.q.mw.DBs))
	for i, db := range t.q.mw.DBs {
		efforts[i] = db.Size()
	}
	q, err := m.Estimate(efforts)
	if err != nil {
		return 0, 0, err
	}
	return q.Good, q.Bad, nil
}
