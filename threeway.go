package joinopt

import (
	"joinopt/internal/join"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// ThreeWayTask is the higher-order join extension (the paper's stated
// future work): three relations extracted from three text databases and
// joined on the shared attribute. The extension's scope is scan-based
// independent extraction (the n-ary IDJN) with the generalized 2^n-class
// composition model.
type ThreeWayTask struct {
	mw *workload.MultiWorkload
}

// NewThreeWay builds a three-relation join task over distinct standard
// tasks ("HQ", "EX", "MG").
func NewThreeWay(p WorkloadParams, rel1, rel2, rel3 string) (*ThreeWayTask, error) {
	if p.NumDocs == 0 {
		p.NumDocs = workload.DefaultParams.NumDocs
	}
	if p.Seed == 0 {
		p.Seed = workload.DefaultParams.Seed
	}
	mw, err := workload.Multi(workload.Params{NumDocs: p.NumDocs, Seed: p.Seed, TopK: p.TopK},
		[]string{rel1, rel2, rel3})
	if err != nil {
		return nil, err
	}
	return &ThreeWayTask{mw: mw}, nil
}

// Relations names the three extracted relations.
func (t *ThreeWayTask) Relations() [3]string {
	var out [3]string
	for i, g := range t.mw.Golds() {
		out[i] = g.Schema.String()
	}
	return out
}

// ThreeWayOutcome summarizes an executed three-way join.
type ThreeWayOutcome struct {
	GoodTuples    int
	BadTuples     int
	Time          float64
	DocsProcessed [3]int
}

// ThreeWayProgress is the live state visible to a stop condition.
type ThreeWayProgress struct {
	GoodTuples, BadTuples int
	DocsProcessed         [3]int
	Time                  float64
}

// Execute runs the n-ary Independent Join with per-side knob settings,
// scanning all three databases, until exhaustion or stop returns true.
func (t *ThreeWayTask) Execute(thetas [3]float64, stop func(ThreeWayProgress) bool) (*ThreeWayOutcome, error) {
	sides := make([]*join.Side, 3)
	strats := make([]retrieval.Strategy, 3)
	for i := 0; i < 3; i++ {
		sides[i] = t.mw.Side(i, thetas[i])
		strats[i] = t.mw.Scan(i)
	}
	e, err := join.NewMultiIDJN(sides, strats)
	if err != nil {
		return nil, err
	}
	var sf func(*join.MultiState) bool
	if stop != nil {
		sf = func(st *join.MultiState) bool {
			return stop(ThreeWayProgress{
				GoodTuples: st.GoodTuples, BadTuples: st.BadTuples,
				DocsProcessed: [3]int{st.DocsProcessed[0], st.DocsProcessed[1], st.DocsProcessed[2]},
				Time:          st.Time,
			})
		}
	}
	st, err := join.RunMulti(e, sf)
	if err != nil {
		return nil, err
	}
	return &ThreeWayOutcome{
		GoodTuples:    st.GoodTuples,
		BadTuples:     st.BadTuples,
		Time:          st.Time,
		DocsProcessed: [3]int{st.DocsProcessed[0], st.DocsProcessed[1], st.DocsProcessed[2]},
	}, nil
}

// Predict estimates the full-scan output composition at the given knob
// settings with the generalized composition model (all sides share one θ
// for simplicity of the extension's surface).
func (t *ThreeWayTask) Predict(theta float64) (good, bad float64, err error) {
	m, err := t.mw.TrueMultiModel(theta)
	if err != nil {
		return 0, 0, err
	}
	efforts := make([]int, len(t.mw.DBs))
	for i, db := range t.mw.DBs {
		efforts[i] = db.Size()
	}
	q, err := m.Estimate(efforts)
	if err != nil {
		return 0, 0, err
	}
	return q.Good, q.Bad, nil
}
