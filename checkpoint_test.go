package joinopt

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenCheckpoint is a hand-built checkpoint exercising every wire field:
// a committed OIJN plan mid-switch with a recorded checkpoint error, a
// non-trivial executor snapshot, and finish-phase coordinates.
func goldenCheckpoint() *AdaptiveCheckpoint {
	p := &model.RelationParams{
		D: 1000, Dg: 200, Db: 100, Ag: 150, Ab: 80,
		GoodFreq: []float64{0.7, 0.3}, BadFreq: []float64{0.9, 0.1},
		TP: 0.8, FP: 0.1, BadInGoodFrac: 0.3,
		Ctp: 0.85, Cfp: 0.15,
		AQG:  []model.QueryParam{{Hits: 10, GoodHits: 7, BadHits: 1}},
		TopK: 20, QPrec: 0.6,
	}
	in := &optimizer.Inputs{
		Thetas:     []float64{0.4, 0.8},
		P:          [2][]*model.RelationParams{{p, p}, {p, p}},
		Ov:         model.Overlaps{Agg: 12, Agb: 3, Abg: 4, Abb: 1},
		Costs:      [2]model.Costs{{TR: 1, TE: 5, TF: 0.1, TQ: 2}, {TR: 1, TE: 5, TF: 0.1, TQ: 2}},
		CasualHits: [2]float64{0.1, 0.2},
		Mentioned:  [2]int{50, 60},
		SeedCount:  5,
	}
	chosen := optimizer.Eval{
		Plan: optimizer.PlanSpec{
			JN: optimizer.OIJN, Theta: [2]float64{0.8, 0.4},
			X: [2]retrieval.Kind{retrieval.AQG, ""}, OuterIdx: 0,
		},
		Feasible: true, Effort: [2]int{120, 0},
		Quality: model.Quality{Good: 25.5, Bad: 8.25}, Time: 1234.5,
	}
	return &AdaptiveCheckpoint{ck: &optimizer.Checkpoint{
		Phase:          optimizer.PhaseFinish,
		Best:           chosen,
		Inputs:         in,
		Decisions:      []optimizer.Decision{{AtTime: 100, Chosen: chosen}, {AtTime: 600, Chosen: chosen, Switched: true}},
		CheckpointErrs: []error{errors.New("optimizer: checkpoint at t=500: no feasible plan")},
		Switches:       1,
		TotalTime:      987.5,
		Exec: join.Snapshot{
			Steps: 42, Time: 321.25, CacheSaved: [2]float64{10, 0},
			GoodPairs: 7, BadPairs: 3, JoinSize: 10,
			DocsProcessed: [2]int{40, 30}, DocsRetrieved: [2]int{45, 33},
			DocsFiltered: [2]int{5, 0}, Queries: [2]int{3, 2},
			DocsFailed: [2]int{1, 0}, RetriesSpent: [2]int{2, 0},
			Degraded: true,
		},
		Target: [2]int{180, 0},
		Ext:    2,
		Prev:   [2]int{120, 0},
	}}
}

// TestCheckpointGoldenRoundTrip pins the wire format: the golden checkpoint
// marshals to exactly the committed golden bytes, those bytes decode, and
// re-encoding the decoded checkpoint reproduces them bit-for-bit.
func TestCheckpointGoldenRoundTrip(t *testing.T) {
	goldenPath := filepath.Join("testdata", "checkpoint_v1.golden")
	got, err := json.Marshal(goldenCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from golden:\n got %s\nwant %s", got, want)
	}

	var decoded AdaptiveCheckpoint
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatalf("decoding golden: %v", err)
	}
	again, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatalf("re-encoding decoded checkpoint drifted:\n got %s\nwant %s", again, want)
	}
}

// TestCheckpointDecodeRejectsCorruption: every defect class — truncation,
// bit flips, version skew, impossible contents — yields a typed
// *CheckpointDecodeError and leaves the receiver untouched.
func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	valid, err := json.Marshal(goldenCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	flip := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x10
		return b
	}
	payloadAt := bytes.Index(valid, []byte(`"checkpoint":`)) + len(`"checkpoint":`) + 10
	cases := map[string][]byte{
		"empty":             {},
		"garbage":           []byte("not json at all"),
		"truncated":         valid[:len(valid)/2],
		"bit-flip payload":  flip(payloadAt),
		"version skew":      bytes.Replace(valid, []byte(`{"version":1,`), []byte(`{"version":9,`), 1),
		"null checkpoint":   []byte(`{"version":1,"crc":0,"checkpoint":null}`),
		"missing inputs":    []byte(`{"version":1,"crc":756102127,"checkpoint":{"phase":0}}`),
		"wrong crc":         bytes.Replace(valid, []byte(`"crc":`), []byte(`"crc":1`), 1),
		"json type mismatch": []byte(`{"version":1,"crc":0,"checkpoint":{"phase":"zero"}}`),
	}
	for name, data := range cases {
		ck, err := DecodeCheckpoint(data)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
			continue
		}
		var de *CheckpointDecodeError
		if !errors.As(err, &de) {
			t.Errorf("%s: error %T (%v) is not a *CheckpointDecodeError", name, err, err)
		}
		if ck != nil {
			t.Errorf("%s: failed decode returned a checkpoint", name)
		}
	}
}

// TestCheckpointDecodeRejectsEveryPayloadBitFlip flips one bit in each byte
// of the envelope's payload region and requires the decoder to reject all of
// them — the CRC leaves no silent-misparse window over the checkpoint body.
func TestCheckpointDecodeRejectsEveryPayloadBitFlip(t *testing.T) {
	valid, err := json.Marshal(goldenCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	start := bytes.Index(valid, []byte(`"checkpoint":`)) + len(`"checkpoint":`)
	end := len(valid) - 1 // closing brace of the envelope
	for i := start; i < end; i++ {
		b := append([]byte(nil), valid...)
		b[i] ^= 1 << uint(i%8)
		if _, err := DecodeCheckpoint(b); err == nil {
			t.Fatalf("bit flip at byte %d (of %q) decoded successfully", i, valid[i])
		}
	}
}
