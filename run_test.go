package joinopt_test

import (
	"context"
	"errors"
	"testing"

	"joinopt"
)

func scanPlan() joinopt.Plan {
	return joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
}

func TestRunFixedPlan(t *testing.T) {
	tk := facadeTask(t)
	plan := scanPlan()
	res, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan),
		joinopt.WithStop(func(p joinopt.Progress) bool { return p.GoodTuples >= 8 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == nil || res.Outcome.GoodTuples < 8 {
		t.Fatalf("run result %+v", res)
	}
	if len(res.Plans) != 1 || res.Plans[0] != plan {
		t.Errorf("plans = %v, want exactly the pinned plan", res.Plans)
	}
	if res.TotalTime != res.Outcome.Time {
		t.Errorf("fixed-plan total time %v != execution time %v", res.TotalTime, res.Outcome.Time)
	}
	if res.Checkpoint != nil || len(res.CheckpointErrs) != 0 {
		t.Error("fixed-plan run must not carry adaptive state")
	}
}

// TestRunMetricsMatchOutcomeFixed is the acceptance invariant on a fixed
// plan: with no pilot or abandoned work, both the live counters and the
// joinopt_run_* gauges must match the Outcome exactly.
func TestRunMetricsMatchOutcomeFixed(t *testing.T) {
	tk := facadeTask(t)
	m := joinopt.NewMetrics()
	res, err := tk.Run(context.Background(), joinopt.Requirement{},
		joinopt.WithPlan(scanPlan()), joinopt.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcome
	s := m.Snapshot()
	for side := 0; side < 2; side++ {
		label := string('1' + byte(side))
		if got := s.Counters[`joinopt_docs_processed_total{side="`+label+`"}`]; got != int64(o.DocsProcessed[side]) {
			t.Errorf("live processed{%s} = %d, outcome %d", label, got, o.DocsProcessed[side])
		}
		if got := s.Gauges[`joinopt_run_docs_processed{side="`+label+`"}`]; got != float64(o.DocsProcessed[side]) {
			t.Errorf("run_docs_processed{%s} = %v, outcome %d", label, got, o.DocsProcessed[side])
		}
		if got := s.Gauges[`joinopt_run_queries{side="`+label+`"}`]; got != float64(o.Queries[side]) {
			t.Errorf("run_queries{%s} = %v, outcome %d", label, got, o.Queries[side])
		}
	}
	if got := s.Gauges["joinopt_run_good_tuples"]; got != float64(o.GoodTuples) {
		t.Errorf("run_good_tuples = %v, outcome %d", got, o.GoodTuples)
	}
	if got := s.Gauges["joinopt_run_bad_tuples"]; got != float64(o.BadTuples) {
		t.Errorf("run_bad_tuples = %v, outcome %d", got, o.BadTuples)
	}
	if got := s.Gauges["joinopt_run_time"]; got != o.Time {
		t.Errorf("run_time = %v, outcome %v", got, o.Time)
	}
	if got := s.Gauges["joinopt_tuples_good"]; got != float64(o.GoodTuples) {
		t.Errorf("live good gauge = %v, outcome %d", got, o.GoodTuples)
	}
}

// TestRunAdaptiveGaugesMatchFinal checks the run-level gauges on an adaptive
// run, where live counters legitimately include pilot work but the
// joinopt_run_* family must still report the final Result exactly.
func TestRunAdaptiveGaugesMatchFinal(t *testing.T) {
	tk := facadeTask(t)
	m := joinopt.NewMetrics()
	res, err := tk.Run(context.Background(), joinopt.Requirement{TauG: 8, TauB: 200},
		joinopt.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == nil {
		t.Fatal("adaptive run incomplete")
	}
	s := m.Snapshot()
	o := res.Outcome
	checks := map[string]float64{
		"joinopt_run_good_tuples":   float64(o.GoodTuples),
		"joinopt_run_bad_tuples":    float64(o.BadTuples),
		"joinopt_run_time":          o.Time,
		"joinopt_run_total_time":    res.TotalTime,
		"joinopt_run_plan_switches": float64(len(res.Plans) - 1),
	}
	for series, want := range checks {
		if got := s.Gauges[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if s.Counters["joinopt_plan_decisions_total"] < 1 {
		t.Error("adaptive run recorded no plan decisions")
	}
	// The adaptive pilot processed docs beyond the final plan's own: live
	// counters must be >= the outcome's.
	var live int64
	for _, label := range []string{"1", "2"} {
		live += s.Counters[`joinopt_docs_processed_total{side="`+label+`"}`]
	}
	if final := int64(o.DocsProcessed[0] + o.DocsProcessed[1]); live < final {
		t.Errorf("live processed %d < final outcome %d", live, final)
	}
}

func TestRunTraceLifecycle(t *testing.T) {
	tk := facadeTask(t)
	ring := joinopt.NewRingSink(1 << 17)
	res, err := tk.Run(context.Background(), joinopt.Requirement{TauG: 8, TauB: 200},
		joinopt.WithTracer(joinopt.NewTrace(ring)))
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if uint64(len(evs)) != ring.Total() {
		t.Fatalf("ring overflowed (%d of %d kept): grow the test buffer", len(evs), ring.Total())
	}
	if len(evs) < 4 {
		t.Fatalf("only %d events traced", len(evs))
	}
	if got := evs[0].Kind; string(got) != "run.start" {
		t.Errorf("first event %q, want run.start", got)
	}
	last := evs[len(evs)-1]
	if string(last.Kind) != "run.end" {
		t.Errorf("last event %q, want run.end", last.Kind)
	}
	if last.T != res.TotalTime {
		t.Errorf("run.end stamped %v, want total time %v", last.T, res.TotalTime)
	}
	kinds := map[string]int{}
	var prevSeq uint64
	for _, ev := range evs {
		if ev.Seq <= prevSeq {
			t.Fatalf("sequence not monotonic at %+v", ev)
		}
		prevSeq = ev.Seq
		kinds[string(ev.Kind)]++
	}
	for _, want := range []string{"pilot.done", "plan.chosen", "exec.step", "doc.processed"} {
		if kinds[want] == 0 {
			t.Errorf("adaptive traced run emitted no %s events (kinds: %v)", want, kinds)
		}
	}
}

func TestRunDeadlineSurface(t *testing.T) {
	tk := facadeTask(t)
	res, err := tk.Run(context.Background(), joinopt.Requirement{},
		joinopt.WithPlan(scanPlan()), joinopt.WithDeadline(50))
	if !errors.Is(err, joinopt.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || res.Outcome == nil || !res.Outcome.DeadlineHit {
		t.Fatal("deadline-stopped run must return its partial result")
	}
	if res.Outcome.Time < 50 {
		t.Errorf("stopped at %v, before the deadline", res.Outcome.Time)
	}

	// The task-level deadline surfaces identically.
	tk.Deadline = 50
	defer func() { tk.Deadline = 0 }()
	res2, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(scanPlan()))
	if !errors.Is(err, joinopt.ErrDeadline) {
		t.Fatalf("task-level deadline returned %v, want ErrDeadline", err)
	}
	if !res2.Outcome.DeadlineHit {
		t.Error("task-level deadline lost the flag")
	}
}

func TestRunFailureBudgetSurface(t *testing.T) {
	tk := facadeTask(t)
	// Permanent faults on fetches only: permanent Next faults would exhaust
	// the retrieval streams gracefully instead of losing documents.
	p, err := joinopt.ParseFaultProfile("fetch=0.5,seed=9,permanent=true")
	if err != nil {
		t.Fatal(err)
	}
	_, err = tk.Run(context.Background(), joinopt.Requirement{},
		joinopt.WithPlan(scanPlan()), joinopt.WithFaults(p),
		joinopt.WithRetries(joinopt.RetryPolicy{FailureBudget: 3}))
	if !errors.Is(err, joinopt.ErrFailureBudget) {
		t.Fatalf("err = %v, want ErrFailureBudget", err)
	}
	var se *joinopt.StepError
	if !errors.As(err, &se) {
		t.Fatalf("err %v does not unwrap to StepError", err)
	}
	if se.Algorithm != "IDJN" || se.Step <= 0 {
		t.Errorf("step error fields %+v", se)
	}

	// The per-call options must not stick: a plain run afterwards is clean.
	res, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(scanPlan()),
		joinopt.WithStop(func(p joinopt.Progress) bool { return p.GoodTuples >= 4 }))
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Outcome; out.RetriesSpent != [2]int{} || out.DocsFailed != [2]int{} {
		t.Errorf("per-call fault options leaked into the next run: %+v", out)
	}
}

func TestRunWithFaultsNilOverridesTask(t *testing.T) {
	tk := facadeTask(t)
	tk.Faults = joinopt.UniformFaults(5, 0.05)
	defer func() { tk.Faults = nil }()

	withTask, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(scanPlan()))
	if err != nil {
		t.Fatal(err)
	}
	if withTask.Outcome.RetriesSpent == [2]int{} {
		t.Fatal("task-level faults did not engage")
	}
	disabled, err := tk.Run(context.Background(), joinopt.Requirement{},
		joinopt.WithPlan(scanPlan()), joinopt.WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if disabled.Outcome.RetriesSpent != [2]int{} {
		t.Errorf("WithFaults(nil) did not disable the task profile: %+v", disabled.Outcome.RetriesSpent)
	}
}

func TestRunWithCheckpointResume(t *testing.T) {
	tk := facadeTask(t)
	req := joinopt.Requirement{TauG: 8, TauB: 200}
	base, err := tk.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	interrupted, err := tk.Run(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if interrupted == nil || interrupted.Checkpoint == nil {
		t.Fatal("interrupted run carries no checkpoint")
	}
	if interrupted.Outcome != nil {
		t.Error("interrupted run must not claim a final outcome")
	}

	resumed, err := tk.Run(context.Background(), req, joinopt.WithCheckpoint(interrupted.Checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Outcome == nil {
		t.Fatal("resumed run incomplete")
	}
	if resumed.Outcome.GoodTuples != base.Outcome.GoodTuples ||
		resumed.Outcome.BadTuples != base.Outcome.BadTuples ||
		resumed.TotalTime != base.TotalTime {
		t.Errorf("resumed run diverged: %+v vs baseline %+v", resumed.Outcome, base.Outcome)
	}
}
