package joinopt

import "joinopt/internal/join"

// ErrFailureBudget marks a run aborted because a side lost more documents
// than its retry policy's FailureBudget tolerates. Test with errors.Is.
var ErrFailureBudget = join.ErrFailureBudget

// ErrDeadline marks a run cut short by its cost-model deadline. Run returns
// it (wrapped) alongside the partial result; the deprecated wrappers filter
// it to preserve their historical nil-error deadline behaviour. Test with
// errors.Is.
var ErrDeadline = join.ErrDeadline

// StepError is a fatal executor step failure: the join algorithm, the step
// count at which it failed, and the wrapped cause (errors.Is sees through to
// ErrFailureBudget and friends). Extract with errors.As.
type StepError = join.StepError
