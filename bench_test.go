// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B bench per artifact), plus ablation benches for the design
// choices called out in DESIGN.md. Each bench reports, beyond wall-clock
// time, the experiment's headline quantities via b.ReportMetric, so a
// `go test -bench . -benchmem` run doubles as a reproduction log.
package joinopt_test

import (
	"sync"
	"testing"

	"joinopt/internal/classifier"
	"joinopt/internal/estimate"
	"joinopt/internal/experiments"
	"joinopt/internal/index"
	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/optimizer"
	"joinopt/internal/querygraph"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var (
	benchOnce sync.Once
	benchWL   *workload.Workload
	benchErr  error
)

// benchWorkload builds one moderate workload shared by every benchmark;
// construction cost is excluded from timings.
func benchWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	benchOnce.Do(func() {
		benchWL, benchErr = workload.HQJoinEX(workload.Params{NumDocs: 2000, Seed: 1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWL
}

// BenchmarkFig9IDJNAccuracy regenerates Figure 9 (estimated vs actual good
// and bad join tuples for IDJN with Scan) and reports the mean relative
// error of the good-tuple estimates.
func BenchmarkFig9IDJNAccuracy(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var err float64
	for i := 0; i < b.N; i++ {
		fig, ferr := experiments.Fig9(w)
		if ferr != nil {
			b.Fatal(ferr)
		}
		err = fig.Series[0].MeanAbsRelErr()
	}
	b.ReportMetric(err, "good-relerr")
}

// BenchmarkFig10OIJNAccuracy regenerates Figure 10 (OIJN accuracy).
func BenchmarkFig10OIJNAccuracy(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var goodErr, badErr float64
	for i := 0; i < b.N; i++ {
		fig, ferr := experiments.Fig10(w)
		if ferr != nil {
			b.Fatal(ferr)
		}
		goodErr = fig.Series[0].MeanAbsRelErr()
		badErr = fig.Series[1].MeanAbsRelErr()
	}
	b.ReportMetric(goodErr, "good-relerr")
	b.ReportMetric(badErr, "bad-relerr")
}

// BenchmarkFig11ZGJNAccuracy regenerates Figure 11 (ZGJN quality accuracy).
func BenchmarkFig11ZGJNAccuracy(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var goodErr float64
	for i := 0; i < b.N; i++ {
		fig, ferr := experiments.Fig11(w)
		if ferr != nil {
			b.Fatal(ferr)
		}
		goodErr = fig.Series[0].MeanAbsRelErr()
	}
	b.ReportMetric(goodErr, "good-relerr")
}

// BenchmarkFig12ZGJNDocs regenerates Figure 12 (ZGJN documents retrieved
// vs queries issued).
func BenchmarkFig12ZGJNDocs(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var relErr float64
	for i := 0; i < b.N; i++ {
		fig, ferr := experiments.Fig12(w)
		if ferr != nil {
			b.Fatal(ferr)
		}
		relErr = fig.Series[0].MeanAbsRelErr()
	}
	b.ReportMetric(relErr, "docs-relerr")
}

// BenchmarkTable2Optimizer regenerates Table II: every plan executed to
// exhaustion, the adaptive pilot estimated, and the optimizer's choice
// compared against all meeting candidates for each of the 23 requirements.
// Reported metrics: how many rows the chosen plan actually met, and the
// largest slowdown the optimizer avoided.
func BenchmarkTable2Optimizer(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var met, rows, zgjn float64
	var worstAvoided float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.Table2(w)
		if err != nil {
			b.Fatal(err)
		}
		met, rows, zgjn, worstAvoided = 0, 0, 0, 0
		for _, r := range table {
			if r.NoFeasiblePrediction {
				continue
			}
			rows++
			if r.ChosenMet {
				met++
			}
			if r.Chosen.JN == optimizer.ZGJN {
				zgjn++
			}
			if r.SlowerMax > worstAvoided {
				worstAvoided = r.SlowerMax
			}
		}
	}
	b.ReportMetric(met, "rows-met")
	b.ReportMetric(rows, "rows-predicted")
	b.ReportMetric(zgjn, "zgjn-chosen")
	b.ReportMetric(worstAvoided, "max-avoided-slowdown")
}

// BenchmarkAblationExactVsClosedForm compares the paper's full
// hypergeometric×binomial distribution sums against the closed-form mean
// the models use: identical expectations, orders-of-magnitude apart in
// cost.
func BenchmarkAblationExactVsClosedForm(b *testing.B) {
	const (
		pop   = 600
		drawn = 300
		freq  = 20
		rate  = 0.85
	)
	b.Run("exact-sums", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = model.ExactExpectedObserved(pop, drawn, freq, rate)
		}
		b.ReportMetric(v, "expected-occ")
	})
	b.Run("closed-form", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = rate * freq * drawn / pop
		}
		b.ReportMetric(v, "expected-occ")
	})
}

// BenchmarkAblationFrequencyCoupling contrasts the independence assumption
// Pr{g1,g2} = Pr{g1}·Pr{g2} with the correlated alternative Pr{g1,g2} ≈
// Pr{g} (§V-B) on the same workload parameters.
func BenchmarkAblationFrequencyCoupling(b *testing.B) {
	w := benchWorkload(b)
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	p2, err := w.TrueParams(1, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	for _, correlated := range []bool{false, true} {
		name := "independent"
		if correlated {
			name = "correlated"
		}
		b.Run(name, func(b *testing.B) {
			m := &model.IDJNModel{P1: p1, P2: p2, X1: retrieval.SC, X2: retrieval.SC,
				Ov: w.TrueOverlaps(), Correlated: correlated}
			var q model.Quality
			for i := 0; i < b.N; i++ {
				var err error
				q, err = m.Estimate(p1.D, p2.D)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(q.Good, "est-good")
		})
	}
}

// BenchmarkAblationSquareVsRect validates the optimizer's square-traversal
// heuristic: for the same good-pair target, the square IDJN traversal and a
// skewed 4:1 rectangle are compared on cost-model time.
func BenchmarkAblationSquareVsRect(b *testing.B) {
	w := benchWorkload(b)
	const target = 64
	run := func(b *testing.B, r1, r2 float64) float64 {
		var tm float64
		for i := 0; i < b.N; i++ {
			x1, _ := w.NewStrategy(0, retrieval.SC)
			x2, _ := w.NewStrategy(1, retrieval.SC)
			e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.SetRates(r1, r2); err != nil {
				b.Fatal(err)
			}
			st, err := join.Run(e, func(s *join.State) bool { return s.GoodPairs >= target })
			if err != nil {
				b.Fatal(err)
			}
			tm = st.Time
		}
		return tm
	}
	b.Run("square-1to1", func(b *testing.B) {
		b.ReportMetric(run(b, 1, 1), "cost-time")
	})
	b.Run("rect-4to1", func(b *testing.B) {
		b.ReportMetric(run(b, 4, 1), "cost-time")
	})
}

// BenchmarkAblationClassifier compares the two Filtered Scan classifiers:
// rule induction (Ripper-like, the paper's choice) versus naive Bayes, on
// measured Ctp/Cfp over the target database.
func BenchmarkAblationClassifier(b *testing.B) {
	w := benchWorkload(b)
	rules, err := classifier.TrainRules(w.Train[0], w.Task[0], 12, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	bayes, err := classifier.TrainBayes(w.Train[0], w.Task[0], 0)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		c    classifier.Classifier
	}{{"rules", rules}, {"bayes", bayes}}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var ctp, cfp float64
			for i := 0; i < b.N; i++ {
				var err error
				ctp, cfp, err = classifier.Measure(tc.c, w.DB[0], w.Task[0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ctp, "Ctp")
			b.ReportMetric(cfp, "Cfp")
		})
	}
}

// BenchmarkAblationTopK shows how the search interface's result cap bounds
// the zig-zag join's reach — the factor behind ZGJN's fate in Table II.
func BenchmarkAblationTopK(b *testing.B) {
	for _, topK := range []int{5, 10, 50} {
		b.Run(map[int]string{5: "topk-5", 10: "topk-10", 50: "topk-50"}[topK], func(b *testing.B) {
			w, err := workload.HQJoinEX(workload.Params{NumDocs: 2000, Seed: 1, TopK: topK})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var docs, good float64
			for i := 0; i < b.N; i++ {
				e, err := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), w.Seeds)
				if err != nil {
					b.Fatal(err)
				}
				st, err := join.Run(e, nil)
				if err != nil {
					b.Fatal(err)
				}
				docs = float64(st.DocsProcessed[0] + st.DocsProcessed[1])
				good = float64(st.GoodPairs)
			}
			b.ReportMetric(docs, "docs-reached")
			b.ReportMetric(good, "good-pairs")
		})
	}
}

// BenchmarkExtraction measures the raw IE pipeline (sentence splitting,
// entity tagging, pattern scoring) per document, bypassing the candidate
// cache.
func BenchmarkExtraction(b *testing.B) {
	w := benchWorkload(b)
	docs := w.DB[0].Docs
	sys := w.Sys[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Extract(docs[i%len(docs)].Text, 0.4)
	}
}

// BenchmarkIndexSearch measures conjunctive keyword queries with the top-k
// cap against the workload's search interface.
func BenchmarkIndexSearch(b *testing.B) {
	w := benchWorkload(b)
	values := w.Gaz.Companies
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Ix[1].Search(index.QueryFromValue(values[i%len(values)]))
	}
}

// BenchmarkIDJNFullScan measures a complete IDJN Scan/Scan execution over
// both databases.
func BenchmarkIDJNFullScan(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var good float64
	for i := 0; i < b.N; i++ {
		x1, _ := w.NewStrategy(0, retrieval.SC)
		x2, _ := w.NewStrategy(1, retrieval.SC)
		e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
		if err != nil {
			b.Fatal(err)
		}
		st, err := join.Run(e, nil)
		if err != nil {
			b.Fatal(err)
		}
		good = float64(st.GoodPairs)
	}
	b.ReportMetric(good, "good-pairs")
}

// BenchmarkAdaptiveOptimizer measures the end-to-end adaptive run (pilot,
// MLE estimation, plan choice, execution).
func BenchmarkAdaptiveOptimizer(b *testing.B) {
	w := benchWorkload(b)
	env, err := w.NewEnv([]float64{0.4, 0.8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var good float64
	for i := 0; i < b.N; i++ {
		res, err := optimizer.RunAdaptive(env, optimizer.Requirement{TauG: 16, TauB: 300}, optimizer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		good = float64(res.Final.GoodPairs)
	}
	b.ReportMetric(good, "good-pairs")
}

// BenchmarkAblationPilotWindow measures how the on-the-fly estimator's
// accuracy depends on the pilot window size: per window, the relative error
// of the estimated value-population total |Ag|+|Ab| against ground truth.
func BenchmarkAblationPilotWindow(b *testing.B) {
	w := benchWorkload(b)
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	trueTotal := float64(p1.Ag + p1.Ab)
	for _, pct := range []int{5, 15, 40} {
		name := map[int]string{5: "window-5pct", 15: "window-15pct", 40: "window-40pct"}[pct]
		b.Run(name, func(b *testing.B) {
			var relErr, divergence float64
			for i := 0; i < b.N; i++ {
				x1, _ := w.NewStrategy(0, retrieval.SC)
				x2, _ := w.NewStrategy(1, retrieval.SC)
				e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
				if err != nil {
					b.Fatal(err)
				}
				dr := w.DB[0].Size() * pct / 100
				st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
				if err != nil {
					b.Fatal(err)
				}
				obs := estimate.FromState(st, 0, w.DB[0].Size(), p1.TP, p1.FP, 0.3)
				est, err := estimate.Estimate(obs)
				if err != nil {
					b.Fatal(err)
				}
				got := float64(est.Params.Ag + est.Params.Ab)
				relErr = mathAbs(got-trueTotal) / trueTotal
				if d, err := estimate.CrossValidate(obs); err == nil {
					divergence = d
				}
			}
			b.ReportMetric(relErr, "pop-relerr")
			b.ReportMetric(divergence, "cv-divergence")
		})
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkOptimizerChoose measures a full 64-plan evaluation sweep against
// one requirement — the per-decision cost of the quality-aware optimizer.
func BenchmarkOptimizerChoose(b *testing.B) {
	w := benchWorkload(b)
	in, err := w.TrueInputs([]float64{0.4, 0.8})
	if err != nil {
		b.Fatal(err)
	}
	plans := optimizer.Enumerate([]float64{0.4, 0.8})
	req := optimizer.Requirement{TauG: 32, TauB: 320}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := optimizer.Choose(plans, in, req); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	bench8kOnce sync.Once
	bench8kWL   *workload.Workload
	bench8kIn   *optimizer.Inputs
	bench8kErr  error
)

// bench8kThetas give a 16·4² = 256-plan space — the scale where the
// optimizer's own decision cost starts to matter.
var bench8kThetas = []float64{0.2, 0.4, 0.6, 0.8}

// bench8kWorkload builds the 8k-document corpus shared by the plan-space and
// executor benchmarks; construction cost is excluded from timings.
func bench8kWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	bench8kOnce.Do(func() {
		bench8kWL, bench8kErr = workload.HQJoinEX(workload.Params{NumDocs: 8000, Seed: 1})
		if bench8kErr != nil {
			return
		}
		bench8kIn, bench8kErr = bench8kWL.TrueInputs(bench8kThetas)
	})
	if bench8kErr != nil {
		b.Fatal(bench8kErr)
	}
	return bench8kWL
}

// bench8kInputs builds perfect-knowledge inputs over the 8k-document corpus
// with four knob settings, shared across the plan-space benchmarks.
func bench8kInputs(b *testing.B) *optimizer.Inputs {
	b.Helper()
	bench8kWorkload(b)
	return bench8kIn
}

// BenchmarkChoosePlanSpace8k compares sequential and parallel plan-space
// evaluation over the 256-plan space on the 8k-document corpus. Each
// iteration starts from a cold memo cache (Reset), so the comparison
// measures the full model evaluation work, not cache hits.
func BenchmarkChoosePlanSpace8k(b *testing.B) {
	in := bench8kInputs(b)
	plans := optimizer.Enumerate(bench8kThetas)
	req := optimizer.Requirement{TauG: 32, TauB: 320}
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			cp := *in
			cp.Workers = workers
			cp.Reset()
			if _, _, err := optimizer.Choose(plans, &cp, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

var (
	benchNaryOnce sync.Once
	benchNaryG    *querygraph.Graph
	benchNaryIn   *optimizer.NaryInputs
	benchNaryErr  error
)

// benchNaryInputs builds the four-relation chain workload and its
// perfect-knowledge inputs shared by the n-ary plan-choice benchmark;
// construction cost is excluded from timings.
func benchNaryInputs(b *testing.B) (*querygraph.Graph, *optimizer.NaryInputs) {
	b.Helper()
	benchNaryOnce.Do(func() {
		mw, err := workload.Multi(workload.Params{NumDocs: 2000, Seed: 1}, []string{"HQ", "EX", "MG", "HQ"})
		if err != nil {
			benchNaryErr = err
			return
		}
		if benchNaryG, benchNaryErr = mw.Graph(nil); benchNaryErr != nil {
			return
		}
		benchNaryIn, benchNaryErr = mw.TrueNaryInputs([]float64{0.4, 0.8})
	})
	if benchNaryErr != nil {
		b.Fatal(benchNaryErr)
	}
	return benchNaryG, benchNaryIn
}

// BenchmarkChooseNary measures the DP join-tree enumerator over a k=4 chain:
// a sweep of requirement points against the same tree and leaf-knob space,
// sequential versus parallel plan evaluation. This is the optimizer-side
// cost that sharded execution must not regress — plan choice runs once per
// adaptive checkpoint regardless of shard count.
func BenchmarkChooseNary(b *testing.B) {
	g, in := benchNaryInputs(b)
	reqs := []optimizer.Requirement{
		{TauG: 8, TauB: 1 << 30},
		{TauG: 32, TauB: 1 << 30},
		{TauG: 64, TauB: 1 << 30},
	}
	run := func(b *testing.B, workers int) {
		in.Workers = workers
		defer func() { in.Workers = 0 }()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, _, err := optimizer.ChooseNary(g, in, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkChooseMemoizationSweep measures a Table II-style sweep: all 23
// requirements decided against the same 256-plan space. The cold variant
// drops the memo cache before every sweep; the warm variant keeps one Inputs
// across the sweep the way Table2 and the adaptive driver do, so repeated
// binary-search probes reuse cached closures and model points.
func BenchmarkChooseMemoizationSweep(b *testing.B) {
	in := bench8kInputs(b)
	plans := optimizer.Enumerate(bench8kThetas)
	sweep := func(b *testing.B, cp *optimizer.Inputs) {
		for _, req := range experiments.Table2Reqs {
			if _, _, err := optimizer.Choose(plans, cp, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := *in
			cp.Reset()
			sweep(b, &cp)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cp := *in
		cp.Reset()
		sweep(b, &cp) // populate once; construction excluded below
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, &cp)
		}
	})
}

// BenchmarkMLEEstimate measures one maximum-likelihood parameter fit over a
// 20% observation window.
func BenchmarkMLEEstimate(b *testing.B) {
	w := benchWorkload(b)
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	x1, _ := w.NewStrategy(0, retrieval.SC)
	x2, _ := w.NewStrategy(1, retrieval.SC)
	e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
	if err != nil {
		b.Fatal(err)
	}
	dr := w.DB[0].Size() / 5
	st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
	if err != nil {
		b.Fatal(err)
	}
	obs := estimate.FromState(st, 0, w.DB[0].Size(), p1.TP, p1.FP, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.Estimate(obs); err != nil {
			b.Fatal(err)
		}
	}
}
