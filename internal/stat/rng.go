// Package stat provides the probability and statistics toolkit used by the
// join-quality models: exact discrete distributions (binomial,
// hypergeometric), truncated discrete power laws, seeded random sampling, and
// probability-generating functions with the Moments, Power, and Composition
// properties used by the zig-zag join analysis (Newman, Strogatz, Watts,
// "Random graphs with arbitrary degree distributions and their
// applications").
//
// Everything in this package is deterministic given a seed, which keeps the
// corpus generators, extraction simulations, and experiments reproducible.
package stat

import "math/rand"

// RNG is a seeded source of randomness. All randomized components in this
// repository draw from an RNG so that runs are reproducible. The zero value
// is not usable; construct with NewRNG.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic random number generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator from r. Forked generators let
// subsystems (corpus generation, extraction noise, query sampling) consume
// randomness without perturbing each other's streams.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.r.Int63() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.r.Float64() < p
}

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.r.NormFloat64() }

// Pick returns a uniformly random element index weighted by weights, which
// must be non-negative and not all zero. It panics on invalid input.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stat: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stat: all-zero weights")
	}
	x := r.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
