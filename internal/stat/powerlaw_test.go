package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerLawPMFSumsToOne(t *testing.T) {
	f := func(a16 uint16, m8 uint8) bool {
		alpha := 0.5 + 3*float64(a16)/65535.0
		max := int(m8%200) + 1
		pl, err := NewPowerLaw(alpha, max)
		if err != nil {
			return false
		}
		var s float64
		for k := 1; k <= max; k++ {
			s += pl.PMF(k)
		}
		return almostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerLawMonotoneDecreasing(t *testing.T) {
	pl := MustPowerLaw(2.0, 100)
	for k := 1; k < 100; k++ {
		if pl.PMF(k) < pl.PMF(k+1) {
			t.Fatalf("PMF must decrease: PMF(%d)=%v < PMF(%d)=%v", k, pl.PMF(k), k+1, pl.PMF(k+1))
		}
	}
}

func TestPowerLawRatio(t *testing.T) {
	// Pr{1}/Pr{2} = 2^alpha.
	pl := MustPowerLaw(2.0, 50)
	ratio := pl.PMF(1) / pl.PMF(2)
	if !almostEqual(ratio, 4, 1e-9) {
		t.Errorf("ratio %v, want 4", ratio)
	}
}

func TestPowerLawMeanMatchesPMF(t *testing.T) {
	pl := MustPowerLaw(1.7, 300)
	var mean float64
	for k := 1; k <= 300; k++ {
		mean += float64(k) * pl.PMF(k)
	}
	if !almostEqual(mean, pl.Mean(), 1e-9) {
		t.Errorf("mean %v != cached %v", mean, pl.Mean())
	}
}

func TestPowerLawSampleDistribution(t *testing.T) {
	pl := MustPowerLaw(2.0, 20)
	r := NewRNG(99)
	n := 50000
	counts := make([]int, 21)
	for i := 0; i < n; i++ {
		counts[pl.Sample(r)]++
	}
	for k := 1; k <= 5; k++ {
		got := float64(counts[k]) / float64(n)
		want := pl.PMF(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical PMF(%d)=%v, want %v", k, got, want)
		}
	}
}

func TestPowerLawOutOfSupport(t *testing.T) {
	pl := MustPowerLaw(2.0, 10)
	if pl.PMF(0) != 0 || pl.PMF(11) != 0 || pl.PMF(-3) != 0 {
		t.Error("PMF outside [1, Max] must be zero")
	}
}

func TestPowerLawInvalidInputs(t *testing.T) {
	if _, err := NewPowerLaw(2.0, 0); err == nil {
		t.Error("expected error for max=0")
	}
	if _, err := NewPowerLaw(math.NaN(), 5); err == nil {
		t.Error("expected error for NaN alpha")
	}
	if _, err := NewPowerLaw(math.Inf(1), 5); err == nil {
		t.Error("expected error for Inf alpha")
	}
}

func TestFitPowerLawAlphaRecoversExponent(t *testing.T) {
	for _, trueAlpha := range []float64{1.2, 2.0, 2.8} {
		pl := MustPowerLaw(trueAlpha, 100)
		r := NewRNG(17)
		counts := make([]int, 100)
		for i := 0; i < 20000; i++ {
			counts[pl.Sample(r)-1]++
		}
		got := FitPowerLawAlpha(counts, 100)
		if math.Abs(got-trueAlpha) > 0.2 {
			t.Errorf("fit alpha %v, want near %v", got, trueAlpha)
		}
	}
}

func TestPowerLawPMFSliceIsCopy(t *testing.T) {
	pl := MustPowerLaw(2.0, 5)
	s := pl.PMFSlice()
	s[0] = -1
	if pl.PMF(1) < 0 {
		t.Error("PMFSlice must return a copy")
	}
}
