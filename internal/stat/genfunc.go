package stat

import (
	"fmt"
	"math"
)

// GenFunc is a probability-generating function represented by its
// coefficient vector: Coef[k] = Pr{X = k}, so G(x) = Σ_k Coef[k] x^k.
//
// The zig-zag join model (§V-E of the paper) describes the reach of
// interleaved keyword querying with generating functions over the "zig-zag
// graph" of attribute and document nodes, following Newman, Strogatz, and
// Watts. Three properties are used:
//
//   - Moments:     E[X] = G'(1)
//   - Power:       the sum of m i.i.d. draws has PGF G(x)^m
//   - Composition: a G-distributed number of i.i.d. F draws has PGF G(F(x))
type GenFunc struct {
	Coef []float64
}

// NewGenFunc builds a PGF from a coefficient vector, normalizing it to sum
// to 1. It returns an error if the vector is empty, has negative entries, or
// sums to zero.
func NewGenFunc(coef []float64) (GenFunc, error) {
	if len(coef) == 0 {
		return GenFunc{}, fmt.Errorf("stat: empty generating function")
	}
	var sum float64
	for i, c := range coef {
		if c < 0 || math.IsNaN(c) {
			return GenFunc{}, fmt.Errorf("stat: invalid coefficient %v at degree %d", c, i)
		}
		sum += c
	}
	if sum <= 0 {
		return GenFunc{}, fmt.Errorf("stat: generating function sums to zero")
	}
	out := make([]float64, len(coef))
	for i, c := range coef {
		out[i] = c / sum
	}
	return GenFunc{Coef: out}, nil
}

// MustGenFunc is NewGenFunc that panics on error.
func MustGenFunc(coef []float64) GenFunc {
	g, err := NewGenFunc(coef)
	if err != nil {
		panic(err)
	}
	return g
}

// Eval returns G(x).
func (g GenFunc) Eval(x float64) float64 {
	// Horner evaluation from the highest degree down.
	var v float64
	for i := len(g.Coef) - 1; i >= 0; i-- {
		v = v*x + g.Coef[i]
	}
	return v
}

// Mean returns E[X] = G'(1) (the Moments property).
func (g GenFunc) Mean() float64 {
	var m float64
	for k, c := range g.Coef {
		m += float64(k) * c
	}
	return m
}

// SecondFactorialMoment returns G”(1) = E[X(X-1)], used for variance:
// Var[X] = G”(1) + G'(1) - G'(1)^2.
func (g GenFunc) SecondFactorialMoment() float64 {
	var m float64
	for k, c := range g.Coef {
		m += float64(k) * float64(k-1) * c
	}
	return m
}

// Variance returns Var[X].
func (g GenFunc) Variance() float64 {
	mu := g.Mean()
	return g.SecondFactorialMoment() + mu - mu*mu
}

// Excess returns the distribution of the value reached by following a random
// edge: H(x) = x·G'(x)/G'(1). In the zig-zag graph this transforms the
// frequency distribution of a random attribute (or document) into that of an
// attribute (document) chosen by following a random hit or generates edge —
// size-biased sampling. It returns an error when G'(1) = 0 (a degenerate
// graph with no edges).
func (g GenFunc) Excess() (GenFunc, error) {
	mean := g.Mean()
	if mean <= 0 {
		return GenFunc{}, fmt.Errorf("stat: excess of zero-mean generating function")
	}
	// x·G'(x) = Σ_k k·Coef[k]·x^k, so the coefficient at degree k is
	// k·Coef[k]/G'(1).
	coef := make([]float64, len(g.Coef))
	for k, c := range g.Coef {
		coef[k] = float64(k) * c / mean
	}
	return NewGenFunc(coef)
}

// Compose returns G(F(x)) truncated to maxDegree coefficients: the PGF of the
// sum of a G-distributed number of i.i.d. F-distributed draws (Composition
// property). Truncation loses mass beyond maxDegree; Mean on the composed
// function is then a lower bound. For exact means use MeanCompose.
func (g GenFunc) Compose(f GenFunc, maxDegree int) GenFunc {
	if maxDegree < 1 {
		maxDegree = 1
	}
	// result = Σ_k g.Coef[k] · F(x)^k, computed with truncated polynomial
	// powers of F.
	result := make([]float64, maxDegree+1)
	power := make([]float64, 1, maxDegree+1)
	power[0] = 1 // F^0
	for k := 0; k < len(g.Coef); k++ {
		c := g.Coef[k]
		if c > 0 {
			for d := 0; d < len(power) && d <= maxDegree; d++ {
				result[d] += c * power[d]
			}
		}
		if k+1 < len(g.Coef) {
			power = polyMulTrunc(power, f.Coef, maxDegree)
			if polyIsZero(power) {
				break
			}
		}
	}
	out, err := NewGenFunc(result)
	if err != nil {
		// All mass truncated away; collapse to the point mass at maxDegree.
		point := make([]float64, maxDegree+1)
		point[maxDegree] = 1
		return GenFunc{Coef: point}
	}
	return out
}

// MeanCompose returns the exact mean of G(F(x)) by the chain rule:
// d/dx G(F(x))|_{x=1} = G'(F(1))·F'(1) = G'(1)·F'(1) since F(1)=1.
func MeanCompose(g, f GenFunc) float64 { return g.Mean() * f.Mean() }

// Power returns G(x)^m truncated to maxDegree: the PGF of the sum of m
// i.i.d. draws (Power property).
func (g GenFunc) Power(m, maxDegree int) GenFunc {
	if m < 0 {
		panic("stat: negative power")
	}
	result := []float64{1}
	base := g.Coef
	// Exponentiation by squaring over truncated polynomials.
	for m > 0 {
		if m&1 == 1 {
			result = polyMulTrunc(result, base, maxDegree)
		}
		m >>= 1
		if m > 0 {
			base = polyMulTrunc(base, base, maxDegree)
		}
	}
	out, err := NewGenFunc(result)
	if err != nil {
		point := make([]float64, maxDegree+1)
		point[maxDegree] = 1
		return GenFunc{Coef: point}
	}
	return out
}

// MeanPower returns the exact mean of G(x)^m: m·G'(1).
func MeanPower(g GenFunc, m int) float64 { return float64(m) * g.Mean() }

// polyMulTrunc multiplies two coefficient vectors, truncating at maxDegree.
func polyMulTrunc(a, b []float64, maxDegree int) []float64 {
	n := len(a) + len(b) - 1
	if n > maxDegree+1 {
		n = maxDegree + 1
	}
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i, ai := range a {
		if ai == 0 || i >= n {
			continue
		}
		hi := n - i
		if hi > len(b) {
			hi = len(b)
		}
		for j := 0; j < hi; j++ {
			out[i+j] += ai * b[j]
		}
	}
	return out
}

func polyIsZero(p []float64) bool {
	for _, c := range p {
		if c != 0 {
			return false
		}
	}
	return true
}
