package stat

import (
	"fmt"
	"math"
)

// PowerLaw is a truncated discrete power-law (zeta) distribution over
// {1, ..., Max}: Pr{X = k} ∝ k^(-Alpha). The paper verifies that attribute
// and document frequency distributions of real extraction tasks tend to be
// power laws (§V-B, §VII); the corpus generator samples frequencies from this
// distribution and the analytical models integrate over it.
type PowerLaw struct {
	Alpha float64 // exponent, > 0 for a decreasing law
	Max   int     // inclusive upper bound of the support

	norm float64   // normalization constant Σ k^-Alpha
	pmf  []float64 // pmf[k-1] = Pr{X=k}
	cdf  []float64 // cdf[k-1] = Pr{X<=k}
	mean float64
}

// NewPowerLaw constructs a truncated power law with the given exponent and
// maximum support value. It returns an error for non-positive Max or a
// non-finite exponent.
func NewPowerLaw(alpha float64, max int) (*PowerLaw, error) {
	if max <= 0 {
		return nil, fmt.Errorf("stat: power law max must be positive, got %d", max)
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("stat: power law alpha must be finite, got %v", alpha)
	}
	p := &PowerLaw{Alpha: alpha, Max: max}
	p.pmf = make([]float64, max)
	p.cdf = make([]float64, max)
	for k := 1; k <= max; k++ {
		w := math.Pow(float64(k), -alpha)
		p.pmf[k-1] = w
		p.norm += w
	}
	var acc float64
	for k := 1; k <= max; k++ {
		p.pmf[k-1] /= p.norm
		acc += p.pmf[k-1]
		p.cdf[k-1] = acc
		p.mean += float64(k) * p.pmf[k-1]
	}
	return p, nil
}

// MustPowerLaw is NewPowerLaw that panics on error; for static configuration.
func MustPowerLaw(alpha float64, max int) *PowerLaw {
	p, err := NewPowerLaw(alpha, max)
	if err != nil {
		panic(err)
	}
	return p
}

// PMF returns Pr{X = k}; zero outside [1, Max].
func (p *PowerLaw) PMF(k int) float64 {
	if k < 1 || k > p.Max {
		return 0
	}
	return p.pmf[k-1]
}

// Mean returns E[X].
func (p *PowerLaw) Mean() float64 { return p.mean }

// Sample draws a variate by inverse-CDF binary search.
func (p *PowerLaw) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, p.Max-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// PMFSlice returns a copy of the PMF indexed from k=1 at position 0.
func (p *PowerLaw) PMFSlice() []float64 {
	out := make([]float64, len(p.pmf))
	copy(out, p.pmf)
	return out
}

// FitPowerLawAlpha fits the exponent of a truncated power law to an observed
// frequency histogram counts[k-1] = number of items with value k, by
// maximizing the multinomial log-likelihood over a grid of alphas in
// [0.5, 4.0]. It returns the best alpha. This is the parametric piece of the
// on-the-fly parameter estimation (§VI): attribute frequency distributions
// are assumed power-law and only the exponent is inferred.
func FitPowerLawAlpha(counts []int, max int) float64 {
	bestAlpha, bestLL := 1.0, math.Inf(-1)
	for alpha := 0.5; alpha <= 4.0001; alpha += 0.05 {
		pl, err := NewPowerLaw(alpha, max)
		if err != nil {
			continue
		}
		ll := 0.0
		for k := 1; k <= len(counts) && k <= max; k++ {
			c := counts[k-1]
			if c == 0 {
				continue
			}
			ll += float64(c) * math.Log(pl.PMF(k))
		}
		if ll > bestLL {
			bestLL, bestAlpha = ll, alpha
		}
	}
	return bestAlpha
}
