package stat

import (
	"math"
	"testing"
	"testing/quick"
)

// randomGenFunc builds a normalized PGF from raw bytes; used by property
// tests.
func randomGenFunc(raw []byte) (GenFunc, bool) {
	if len(raw) == 0 {
		return GenFunc{}, false
	}
	if len(raw) > 12 {
		raw = raw[:12]
	}
	coef := make([]float64, len(raw))
	var sum float64
	for i, b := range raw {
		coef[i] = float64(b)
		sum += coef[i]
	}
	if sum == 0 {
		return GenFunc{}, false
	}
	g, err := NewGenFunc(coef)
	return g, err == nil
}

func TestGenFuncNormalization(t *testing.T) {
	g := MustGenFunc([]float64{2, 4, 2})
	if !almostEqual(g.Eval(1), 1, 1e-12) {
		t.Errorf("G(1) = %v, want 1", g.Eval(1))
	}
	if !almostEqual(g.Coef[1], 0.5, 1e-12) {
		t.Errorf("middle coefficient %v, want 0.5", g.Coef[1])
	}
}

func TestGenFuncInvalid(t *testing.T) {
	if _, err := NewGenFunc(nil); err == nil {
		t.Error("empty coef should fail")
	}
	if _, err := NewGenFunc([]float64{1, -1}); err == nil {
		t.Error("negative coef should fail")
	}
	if _, err := NewGenFunc([]float64{0, 0}); err == nil {
		t.Error("zero-sum coef should fail")
	}
}

func TestGenFuncMeanNumericDerivative(t *testing.T) {
	// Moments property: E[X] = G'(1); compare against a numeric derivative.
	f := func(raw []byte) bool {
		g, ok := randomGenFunc(raw)
		if !ok {
			return true
		}
		h := 1e-6
		numeric := (g.Eval(1) - g.Eval(1-h)) / h
		return almostEqual(g.Mean(), numeric, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenFuncEvalAtOneIsOne(t *testing.T) {
	f := func(raw []byte) bool {
		g, ok := randomGenFunc(raw)
		if !ok {
			return true
		}
		return almostEqual(g.Eval(1), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExcessSizeBias(t *testing.T) {
	// For degree distribution {1: 0.5, 3: 0.5}, following a random edge
	// reaches a degree-3 node with probability 3/4.
	g := MustGenFunc([]float64{0, 0.5, 0, 0.5})
	h, err := g.Excess()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h.Coef[1], 0.25, 1e-12) || !almostEqual(h.Coef[3], 0.75, 1e-12) {
		t.Errorf("excess coefficients %v, want [_, .25, 0, .75]", h.Coef)
	}
}

func TestExcessZeroMeanFails(t *testing.T) {
	g := MustGenFunc([]float64{1}) // point mass at 0
	if _, err := g.Excess(); err == nil {
		t.Error("excess of zero-mean PGF must fail")
	}
}

func TestComposeMeanMatchesChainRule(t *testing.T) {
	// Composition property: mean of G(F(x)) = G'(1)·F'(1).
	f := func(rawG, rawF []byte) bool {
		g, ok := randomGenFunc(rawG)
		if !ok {
			return true
		}
		fg, ok := randomGenFunc(rawF)
		if !ok {
			return true
		}
		composed := g.Compose(fg, 400)
		exact := MeanCompose(g, fg)
		// Truncation at 400 with degrees <= 12 each (max composed degree
		// 11*11=121) is lossless here.
		return almostEqual(composed.Mean(), exact, 1e-6*(1+exact))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPowerMeanMatches(t *testing.T) {
	g := MustGenFunc([]float64{0.2, 0.5, 0.3})
	for m := 0; m <= 5; m++ {
		p := g.Power(m, 50)
		if !almostEqual(p.Mean(), MeanPower(g, m), 1e-9) {
			t.Errorf("Power(%d) mean %v, want %v", m, p.Mean(), MeanPower(g, m))
		}
	}
}

func TestPowerZeroIsPointMassAtZero(t *testing.T) {
	g := MustGenFunc([]float64{0.5, 0.5})
	p := g.Power(0, 10)
	if !almostEqual(p.Coef[0], 1, 1e-12) {
		t.Errorf("G^0 should be the constant 1, got %v", p.Coef)
	}
}

func TestComposeMatchesDirectConvolution(t *testing.T) {
	// G = point mass at 2, F arbitrary: G(F(x)) = F(x)^2.
	g := MustGenFunc([]float64{0, 0, 1})
	fg := MustGenFunc([]float64{0.25, 0.5, 0.25})
	composed := g.Compose(fg, 10)
	squared := fg.Power(2, 10)
	for i := range squared.Coef {
		if !almostEqual(composed.Coef[i], squared.Coef[i], 1e-12) {
			t.Fatalf("coef %d: compose %v vs power %v", i, composed.Coef[i], squared.Coef[i])
		}
	}
}

func TestVarianceAgainstDirect(t *testing.T) {
	g := MustGenFunc([]float64{0.1, 0.2, 0.3, 0.4})
	var mean, m2 float64
	for k, c := range g.Coef {
		mean += float64(k) * c
		m2 += float64(k) * float64(k) * c
	}
	want := m2 - mean*mean
	if !almostEqual(g.Variance(), want, 1e-12) {
		t.Errorf("variance %v, want %v", g.Variance(), want)
	}
}

func TestComposeTruncationCollapses(t *testing.T) {
	// Composing big point masses beyond the truncation degree must not
	// produce NaNs; it collapses to a point mass at the cap.
	g := MustGenFunc([]float64{0, 0, 0, 0, 1}) // point mass at 4
	fg := MustGenFunc([]float64{0, 0, 0, 1})   // point mass at 3
	composed := g.Compose(fg, 5)               // true mass at 12 > 5
	if math.IsNaN(composed.Mean()) {
		t.Fatal("NaN mean after truncation")
	}
	if composed.Mean() > 5+1e-9 {
		t.Fatalf("truncated mean %v exceeds cap", composed.Mean())
	}
}
