package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLogChooseSmallValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 5, 252}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := Choose(c.n, c.k)
		if !almostEqual(got, c.want, c.want*1e-9) {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestChooseOutOfRange(t *testing.T) {
	if Choose(5, -1) != 0 {
		t.Error("Choose(5,-1) should be 0")
	}
	if Choose(5, 6) != 0 {
		t.Error("Choose(5,6) should be 0")
	}
}

func TestChoosePascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for 1 <= k <= n-1.
	f := func(n8, k8 uint8) bool {
		n := int(n8%60) + 2
		k := int(k8)%(n-1) + 1
		lhs := Choose(n, k)
		rhs := Choose(n-1, k-1) + Choose(n-1, k)
		return almostEqual(lhs, rhs, lhs*1e-9+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	f := func(n8 uint8, pRaw uint16) bool {
		n := int(n8 % 100)
		p := float64(pRaw) / 65535.0
		s := SupportSum(n, func(k int) float64 { return BinomialPMF(n, k, p) })
		return almostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFMeanMatches(t *testing.T) {
	n, p := 40, 0.3
	var mean float64
	for k := 0; k <= n; k++ {
		mean += float64(k) * BinomialPMF(n, k, p)
	}
	if !almostEqual(mean, BinomialMean(n, p), 1e-9) {
		t.Errorf("PMF mean %v != n*p %v", mean, BinomialMean(n, p))
	}
}

func TestBinomialPMFEdgeProbabilities(t *testing.T) {
	if BinomialPMF(10, 0, 0) != 1 {
		t.Error("p=0 should put all mass at k=0")
	}
	if BinomialPMF(10, 10, 1) != 1 {
		t.Error("p=1 should put all mass at k=n")
	}
	if BinomialPMF(-1, 0, 0.5) != 0 {
		t.Error("negative n should have zero mass")
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	f := func(d8, s8, g8 uint8) bool {
		D := int(d8%50) + 1
		S := int(s8) % (D + 1)
		g := int(g8) % (D + 1)
		s := SupportSum(g, func(k int) float64 { return HypergeometricPMF(D, S, g, k) })
		return almostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHypergeometricPMFMeanMatches(t *testing.T) {
	D, S, g := 100, 30, 20
	var mean float64
	for k := 0; k <= g; k++ {
		mean += float64(k) * HypergeometricPMF(D, S, g, k)
	}
	if !almostEqual(mean, HypergeometricMean(D, S, g), 1e-9) {
		t.Errorf("PMF mean %v != S*g/D %v", mean, HypergeometricMean(D, S, g))
	}
}

func TestHypergeometricDegenerate(t *testing.T) {
	// Drawing the whole population always sees all marked items.
	if got := HypergeometricPMF(10, 10, 4, 4); !almostEqual(got, 1, 1e-12) {
		t.Errorf("full draw should be deterministic, got %v", got)
	}
	if got := HypergeometricPMF(10, 0, 4, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("empty draw should see zero, got %v", got)
	}
}

func TestBinomialSamplerMatchesMean(t *testing.T) {
	r := NewRNG(7)
	n, p, trials := 200, 0.25, 4000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(n, p))
	}
	got := sum / float64(trials)
	want := BinomialMean(n, p)
	if math.Abs(got-want) > 1.5 {
		t.Errorf("sampler mean %v too far from %v", got, want)
	}
}

func TestHypergeometricSamplerMatchesMean(t *testing.T) {
	r := NewRNG(11)
	D, S, g, trials := 500, 120, 80, 3000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Hypergeometric(D, S, g))
	}
	got := sum / float64(trials)
	want := HypergeometricMean(D, S, g)
	if math.Abs(got-want) > 0.6 {
		t.Errorf("sampler mean %v too far from %v", got, want)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(42)
	f := a.Fork()
	// Consuming the fork must not disturb subsequent parent draws relative
	// to re-deriving from the same state.
	b := NewRNG(42)
	_ = b.Fork()
	for i := 0; i < 50; i++ {
		f.Float64()
	}
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("fork consumption perturbed parent stream")
		}
	}
}

func TestRNGPickWeighted(t *testing.T) {
	r := NewRNG(3)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 8000; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio %v should be near 3", ratio)
	}
}

func TestRNGPickPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for all-zero weights")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must be false")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must be true")
		}
	}
}

func TestRNGHelpers(t *testing.T) {
	r := NewRNG(12)
	perm := r.Perm(10)
	seen := make([]bool, 10)
	for _, p := range perm {
		if p < 0 || p >= 10 || seen[p] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
	vals := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Errorf("shuffle lost elements: %v", vals)
	}
	for i := 0; i < 100; i++ {
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
	// Standard normal: mean near zero over many draws.
	var acc float64
	for i := 0; i < 20000; i++ {
		acc += r.NormFloat64()
	}
	if m := acc / 20000; m < -0.05 || m > 0.05 {
		t.Errorf("normal mean %v", m)
	}
}

func TestBinomialSamplerLargeN(t *testing.T) {
	// The normal-approximation branch (n > 64) stays in range and near the
	// mean.
	r := NewRNG(9)
	n, p := 10000, 0.37
	var sum float64
	for i := 0; i < 300; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("binomial out of range: %d", k)
		}
		sum += float64(k)
	}
	mean := sum / 300
	if math.Abs(mean-3700) > 30 {
		t.Errorf("large-n binomial mean %v, want ~3700", mean)
	}
}
