package stat

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// lgammaCacheSize bounds the memoized log-factorial table. Corpus sizes in
// this repository stay well below this.
const lgammaCacheSize = 1 << 20

// logFactTable holds an immutable prefix of ln(n!) values; growth publishes
// a fresh slice, so concurrent readers (parallel plan evaluation and the
// experiment sweeps call into the distributions from many goroutines) never
// observe a partially built table.
var logFactTable atomic.Pointer[[]float64]

var logFactMu sync.Mutex

// logFact returns ln(n!) using a memoized table for small n and math.Lgamma
// beyond it.
func logFact(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("stat: logFact of negative %d", n))
	}
	if n >= lgammaCacheSize {
		v, _ := math.Lgamma(float64(n) + 1)
		return v
	}
	if t := logFactTable.Load(); t != nil && n < len(*t) {
		return (*t)[n]
	}
	logFactMu.Lock()
	defer logFactMu.Unlock()
	var old []float64
	if t := logFactTable.Load(); t != nil {
		if n < len(*t) {
			return (*t)[n]
		}
		old = *t
	}
	grown := make([]float64, n+1)
	copy(grown, old)
	for k := len(old); k <= n; k++ {
		if k == 0 {
			grown[0] = 0
			continue
		}
		grown[k] = grown[k-1] + math.Log(float64(k))
	}
	logFactTable.Store(&grown)
	return grown[n]
}

// LogChoose returns ln(C(n, k)), or math.Inf(-1) when the coefficient is
// zero (k < 0 or k > n).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return logFact(n) - logFact(k) - logFact(n-k)
}

// Choose returns C(n, k) as a float64 (0 when out of range).
func Choose(n, k int) float64 {
	lc := LogChoose(n, k)
	if math.IsInf(lc, -1) {
		return 0
	}
	return math.Exp(lc)
}

// BinomialPMF returns Bnm(n, k, p) = C(n,k) p^k (1-p)^(n-k), the probability
// of k successes in n independent trials with success probability p.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomialMean returns n*p, the mean of the binomial distribution.
func BinomialMean(n int, p float64) float64 { return float64(n) * p }

// Binomial draws a binomial variate. For large n it uses a normal
// approximation with continuity correction, clamped to [0, n]; exact
// Bernoulli summation is used for small n.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// HypergeometricPMF returns Hyper(D, S, g, k) = C(g,k)·C(D-g, S-k)/C(D,S):
// the probability of seeing k marked items when drawing S items without
// replacement from a population of D items of which g are marked. This is
// the sampling distribution the paper uses to model document retrieval
// strategies exploring the good documents of a database.
func HypergeometricPMF(D, S, g, k int) float64 {
	if D < 0 || S < 0 || S > D || g < 0 || g > D {
		return 0
	}
	if k < 0 || k > g || S-k > D-g || S-k < 0 {
		return 0
	}
	lp := LogChoose(g, k) + LogChoose(D-g, S-k) - LogChoose(D, S)
	return math.Exp(lp)
}

// HypergeometricMean returns S·g/D, the mean number of marked items drawn.
func HypergeometricMean(D, S, g int) float64 {
	if D <= 0 {
		return 0
	}
	return float64(S) * float64(g) / float64(D)
}

// Hypergeometric draws a hypergeometric variate by sequential sampling.
func (r *RNG) Hypergeometric(D, S, g int) int {
	if D <= 0 || S <= 0 || g <= 0 {
		return 0
	}
	if S > D {
		S = D
	}
	// Sequential draw: at each step the probability of a marked item is
	// remaining-marked / remaining-total.
	marked := g
	total := D
	k := 0
	for i := 0; i < S; i++ {
		if r.Float64() < float64(marked)/float64(total) {
			k++
			marked--
		}
		total--
		if marked == 0 {
			break
		}
	}
	return k
}

// SupportSum validates that a PMF over [0, n] sums to roughly 1; used by
// tests and sanity assertions.
func SupportSum(n int, pmf func(k int) float64) float64 {
	var s float64
	for k := 0; k <= n; k++ {
		s += pmf(k)
	}
	return s
}
