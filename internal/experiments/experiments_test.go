package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var (
	once  sync.Once
	wl    *workload.Workload
	wlErr error
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	once.Do(func() {
		wl, wlErr = workload.HQJoinEX(workload.Params{NumDocs: 1200, Seed: 7})
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func TestTrajectoryMonotone(t *testing.T) {
	w := testWorkload(t)
	exec, err := newExec(w, optimizer.PlanSpec{
		JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4},
		X: [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	})
	if err != nil {
		t.Fatal(err)
	}
	traj, err := Trajectory(exec)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) == 0 {
		t.Fatal("empty trajectory")
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].Good < traj[i-1].Good || traj[i].Bad < traj[i-1].Bad || traj[i].Time < traj[i-1].Time {
			t.Fatalf("trajectory not monotone at step %d", i)
		}
	}
	final := traj[len(traj)-1]
	if final.Processed[0] != w.DB[0].Size() {
		t.Errorf("final trajectory processed %d docs", final.Processed[0])
	}
}

func checkFigure(t *testing.T, f interface {
	String() string
}, wantSeries int) {
	t.Helper()
	s := f.String()
	if !strings.Contains(s, "estimated") || !strings.Contains(s, "actual") {
		t.Errorf("figure rendering incomplete:\n%s", s)
	}
}

func TestFig9ShapeAndAccuracy(t *testing.T) {
	w := testWorkload(t)
	f, err := Fig9(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("Fig9 series %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != len(Percents) {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		// Curves grow with effort.
		last := s.Points[len(s.Points)-1]
		if last.Act <= s.Points[0].Act {
			t.Errorf("series %q actual does not grow", s.Label)
		}
	}
	// The good-tuple estimates track the actuals closely at the tail
	// (early points are sampling-noisy).
	good := f.Series[0]
	tail := good.Points[len(good.Points)-1]
	if r := tail.Est / tail.Act; r < 0.5 || r > 2.0 {
		t.Errorf("Fig9 good tail ratio %.2f", r)
	}
	checkFigure(t, f, 2)
}

func TestFig10Shape(t *testing.T) {
	w := testWorkload(t)
	f, err := Fig10(w)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := f.Series[0], f.Series[1]
	tailG := good.Points[len(good.Points)-1]
	if r := tailG.Est / tailG.Act; r < 0.5 || r > 2.0 {
		t.Errorf("Fig10 good tail ratio %.2f", r)
	}
	// Bad-tuple overestimation at the tail (training-characterized rates
	// are blind to target outliers).
	tailB := bad.Points[len(bad.Points)-1]
	if tailB.Est <= tailB.Act {
		t.Errorf("Fig10 bad tail should overestimate: est %.0f vs act %.0f", tailB.Est, tailB.Act)
	}
}

func TestFig11Shape(t *testing.T) {
	w := testWorkload(t)
	f, err := Fig11(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if len(s.Points) != len(Percents) {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if math.IsNaN(p.Est) || p.Est < 0 {
				t.Fatalf("series %q has invalid estimate %v", s.Label, p.Est)
			}
		}
		tail := s.Points[len(s.Points)-1]
		if tail.Act == 0 {
			t.Fatalf("series %q ends with zero actual", s.Label)
		}
		if r := tail.Est / tail.Act; r < 0.3 || r > 3.0 {
			t.Errorf("series %q tail ratio %.2f", s.Label, r)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	w := testWorkload(t)
	f, err := Fig12(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("Fig12 series %d", len(f.Series))
	}
	for _, s := range f.Series {
		tail := s.Points[len(s.Points)-1]
		if r := tail.Est / tail.Act; r < 0.5 || r > 2.0 {
			t.Errorf("series %q tail ratio %.2f", s.Label, r)
		}
		// Documents retrieved grow with queries.
		if tail.Act <= s.Points[0].Act {
			t.Errorf("series %q actual does not grow", s.Label)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	w := testWorkload(t)
	rows, err := Table2(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table2Reqs) {
		t.Fatalf("rows %d, want %d", len(rows), len(Table2Reqs))
	}
	prevCand := 1 << 30
	zgjnChosen := false
	for i, r := range rows {
		// Candidate counts shrink (weakly) as requirements grow in τg for
		// equal τb patterns; globally they must not exceed the plan space.
		if r.Candidates > 64 {
			t.Errorf("row %d candidates %d", i, r.Candidates)
		}
		if r.Req.TauG > rows[0].Req.TauG && r.Candidates > prevCand+20 {
			t.Errorf("candidate counts inconsistent at row %d", i)
		}
		prevCand = r.Candidates
		if !r.NoFeasiblePrediction && r.Chosen.JN == optimizer.ZGJN {
			zgjnChosen = true
		}
		if r.ChosenMet && r.ChosenTime <= 0 {
			t.Errorf("row %d met with non-positive time", i)
		}
	}
	if zgjnChosen {
		t.Error("ZGJN chosen — the workload should make it uncompetitive, as in the paper")
	}
	// Early rows must have predictions and meet them.
	if rows[0].NoFeasiblePrediction || !rows[0].ChosenMet {
		t.Errorf("first row should be satisfiable: %+v", rows[0])
	}
	// Rendering sanity.
	text := RenderTable2(rows).String()
	if !strings.Contains(text, "chosen plan") || !strings.Contains(text, "τg") {
		t.Error("table rendering incomplete")
	}
	if len(ChosenAlgorithms(rows)) != len(rows) {
		t.Error("ChosenAlgorithms length mismatch")
	}
}

func TestTable2ChosenNearFastest(t *testing.T) {
	w := testWorkload(t)
	rows, err := Table2(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NoFeasiblePrediction || !r.ChosenMet {
			continue
		}
		if r.Faster > 0 && r.FasterMin < 0.05 {
			t.Errorf("τg=%d τb=%d: a plan is %.2fx the chosen time — choice far from optimal",
				r.Req.TauG, r.Req.TauB, r.FasterMin)
		}
	}
}

func TestSortRowsByRequirement(t *testing.T) {
	rows := []Table2Row{
		{Req: optimizer.Requirement{TauG: 8, TauB: 40}},
		{Req: optimizer.Requirement{TauG: 2, TauB: 50}},
		{Req: optimizer.Requirement{TauG: 2, TauB: 30}},
	}
	SortRowsByRequirement(rows)
	if rows[0].Req.TauG != 2 || rows[0].Req.TauB != 30 || rows[2].Req.TauG != 8 {
		t.Errorf("sort wrong: %+v", rows)
	}
}

func TestAtHelper(t *testing.T) {
	traj := []TrajPoint{
		{Good: 1, Processed: [2]int{10, 0}},
		{Good: 5, Processed: [2]int{20, 0}},
		{Good: 9, Processed: [2]int{30, 0}},
	}
	p := at(traj, 20, func(tp TrajPoint) int { return tp.Processed[0] })
	if p.Good != 5 {
		t.Errorf("at returned %+v", p)
	}
	// Beyond the trajectory returns the final point.
	p = at(traj, 100, func(tp TrajPoint) int { return tp.Processed[0] })
	if p.Good != 9 {
		t.Errorf("at overflow returned %+v", p)
	}
	if at(nil, 5, func(TrajPoint) int { return 0 }).Good != 0 {
		t.Error("empty trajectory should return zero point")
	}
}

func TestEstimationExperiment(t *testing.T) {
	w := testWorkload(t)
	table, err := Estimation(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows %d, want one per window", len(table.Rows))
	}
	text := table.String()
	if !strings.Contains(text, "window %") || !strings.Contains(text, "cv divergence") {
		t.Errorf("rendering incomplete:\n%s", text)
	}
	worst, err := EstimationSummary(w, 20)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1.0 {
		t.Errorf("population estimate off by %.0f%% at moderate windows", worst*100)
	}
}

func TestFigureDeterminism(t *testing.T) {
	w := testWorkload(t)
	a, err := Fig9(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Fig9 not deterministic on a fixed workload")
	}
}

func TestFigThetaVariants(t *testing.T) {
	w := testWorkload(t)
	f, err := Fig9Theta(w, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Title, "0.8") {
		t.Errorf("title %q should carry the knob setting", f.Title)
	}
	// Strict extraction: fewer tuples than the permissive default at full
	// effort.
	loose, err := Fig9Theta(w, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	strictTail := f.Series[0].Points[len(f.Series[0].Points)-1]
	looseTail := loose.Series[0].Points[len(loose.Series[0].Points)-1]
	if strictTail.Act >= looseTail.Act {
		t.Errorf("θ=0.8 actual %v should be below θ=0.4 actual %v", strictTail.Act, looseTail.Act)
	}
}

func TestFaultSweep(t *testing.T) {
	w := testWorkload(t)
	table, err := FaultSweep(w, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.Faults != nil {
		t.Error("FaultSweep must restore the workload's fault configuration")
	}
	if len(table.Rows) != 5 {
		t.Fatalf("sweep rows %d, want 5", len(table.Rows))
	}
	// Rate 0: nothing lost, nothing retried, recall 1.
	zero := table.Rows[0]
	if zero[4] != "0" || zero[5] != "0" || zero[3] != "1.00" {
		t.Errorf("zero-rate row %v must show a clean run", zero)
	}
	// Some rate engages retries, and the burst profile loses documents at
	// the high end.
	retried, lost := false, false
	for _, row := range table.Rows[1:] {
		if row[5] != "0" {
			retried = true
		}
		if row[4] != "0" {
			lost = true
		}
	}
	if !retried || !lost {
		t.Errorf("sweep shows no degradation (retried=%v lost=%v):\n%s", retried, lost, table)
	}
}
