package experiments

import (
	"fmt"
	"math"

	"joinopt/internal/eval"
	"joinopt/internal/model"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// theta04 is the knob setting of the paper's model-accuracy figures.
const theta04 = 0.4

// Fig9 reproduces Figure 9: estimated and actual numbers of good (a) and
// bad (b) join tuples for the workload's task pair using IDJN with Scan on
// both sides and minSim = 0.4, as a function of the percentage of documents
// processed.
func Fig9(w *workload.Workload) (*eval.Figure, error) { return Fig9Theta(w, theta04) }

// Fig9Theta is Fig9 at an arbitrary knob setting.
func Fig9Theta(w *workload.Workload, theta float64) (*eval.Figure, error) {
	p1, err := w.TrueParams(0, theta)
	if err != nil {
		return nil, err
	}
	p2, err := w.TrueParams(1, theta)
	if err != nil {
		return nil, err
	}
	m := &model.IDJNModel{P1: p1, P2: p2, X1: retrieval.SC, X2: retrieval.SC, Ov: w.TrueOverlaps()}

	plan := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{theta, theta},
		X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	exec, err := newExec(w, plan)
	if err != nil {
		return nil, err
	}
	traj, err := Trajectory(exec)
	if err != nil {
		return nil, err
	}

	good := eval.Series{Label: fmt.Sprintf("(a) good join tuples, IDJN/Scan θ=%.1f", theta), XLabel: "% docs processed"}
	bad := eval.Series{Label: fmt.Sprintf("(b) bad join tuples, IDJN/Scan θ=%.1f", theta), XLabel: "% docs processed"}
	for _, pct := range Percents {
		dr := w.DB[0].Size() * pct / 100
		act := at(traj, dr, func(p TrajPoint) int { return p.Retrieved[0] })
		est, err := m.Estimate(dr, dr)
		if err != nil {
			return nil, err
		}
		good.Points = append(good.Points, eval.Point{X: float64(pct), Est: est.Good, Act: float64(act.Good)})
		bad.Points = append(bad.Points, eval.Point{X: float64(pct), Est: est.Bad, Act: float64(act.Bad)})
	}
	return &eval.Figure{
		ID:     "Figure 9",
		Title:  fmt.Sprintf("Estimated vs actual join tuples for %s ⋈ %s, IDJN with Scan, minSim=%.1f", w.Task[0], w.Task[1], theta),
		Series: []eval.Series{good, bad},
	}, nil
}

// Fig10 reproduces Figure 10: the same comparison for OIJN with Scan for
// the outer relation and value queries for the inner relation.
func Fig10(w *workload.Workload) (*eval.Figure, error) { return Fig10Theta(w, theta04) }

// Fig10Theta is Fig10 at an arbitrary knob setting.
func Fig10Theta(w *workload.Workload, theta float64) (*eval.Figure, error) {
	p1, err := w.TrueParams(0, theta)
	if err != nil {
		return nil, err
	}
	p2, err := w.TrueParams(1, theta)
	if err != nil {
		return nil, err
	}
	m := &model.OIJNModel{
		P1: p1, P2: p2, Ov: w.TrueOverlaps(), OuterIdx: 0, XOuter: retrieval.SC,
		CasualHits: w.CasualHits(1), MentionedInner: w.MentionedDocs(1),
	}
	plan := optimizer.PlanSpec{JN: optimizer.OIJN, Theta: [2]float64{theta, theta},
		X: [2]retrieval.Kind{retrieval.SC, ""}, OuterIdx: 0}
	exec, err := newExec(w, plan)
	if err != nil {
		return nil, err
	}
	traj, err := Trajectory(exec)
	if err != nil {
		return nil, err
	}

	good := eval.Series{Label: fmt.Sprintf("(a) good join tuples, OIJN/Scan-outer θ=%.1f", theta), XLabel: "% outer docs processed"}
	bad := eval.Series{Label: fmt.Sprintf("(b) bad join tuples, OIJN/Scan-outer θ=%.1f", theta), XLabel: "% outer docs processed"}
	for _, pct := range Percents {
		dr := w.DB[0].Size() * pct / 100
		act := at(traj, dr, func(p TrajPoint) int { return p.Retrieved[0] })
		est, err := m.Estimate(dr)
		if err != nil {
			return nil, err
		}
		good.Points = append(good.Points, eval.Point{X: float64(pct), Est: est.Good, Act: float64(act.Good)})
		bad.Points = append(bad.Points, eval.Point{X: float64(pct), Est: est.Bad, Act: float64(act.Bad)})
	}
	return &eval.Figure{
		ID:     "Figure 10",
		Title:  fmt.Sprintf("Estimated vs actual join tuples for %s ⋈ %s, OIJN with Scan outer, minSim=%.1f", w.Task[0], w.Task[1], theta),
		Series: []eval.Series{good, bad},
	}, nil
}

// zgjnSetup builds the ZGJN model and a full trajectory of a seeded run.
func zgjnSetup(w *workload.Workload, theta float64) (*model.ZGJNModel, []TrajPoint, error) {
	p1, err := w.TrueParams(0, theta)
	if err != nil {
		return nil, nil, err
	}
	p2, err := w.TrueParams(1, theta)
	if err != nil {
		return nil, nil, err
	}
	m := &model.ZGJNModel{
		P1: p1, P2: p2, Ov: w.TrueOverlaps(),
		Mentioned1: w.MentionedDocs(0), Mentioned2: w.MentionedDocs(1),
	}
	plan := optimizer.PlanSpec{JN: optimizer.ZGJN, Theta: [2]float64{theta, theta}}
	exec, err := newExec(w, plan)
	if err != nil {
		return nil, nil, err
	}
	traj, err := Trajectory(exec)
	if err != nil {
		return nil, nil, err
	}
	return m, traj, nil
}

// Fig11 reproduces Figure 11: estimated and actual good/bad join tuples for
// ZGJN as a function of the percentage of documents processed (relative to
// the zig-zag's total reach).
func Fig11(w *workload.Workload) (*eval.Figure, error) { return Fig11Theta(w, theta04) }

// Fig11Theta is Fig11 at an arbitrary knob setting.
func Fig11Theta(w *workload.Workload, theta float64) (*eval.Figure, error) {
	m, traj, err := zgjnSetup(w, theta)
	if err != nil {
		return nil, err
	}
	if len(traj) == 0 {
		return nil, errEmptyTrajectory("ZGJN")
	}
	final := traj[len(traj)-1]
	totalDocs := final.Processed[0] + final.Processed[1]

	good := eval.Series{Label: fmt.Sprintf("(a) good join tuples, ZGJN θ=%.1f", theta), XLabel: "% docs processed"}
	bad := eval.Series{Label: fmt.Sprintf("(b) bad join tuples, ZGJN θ=%.1f", theta), XLabel: "% docs processed"}
	for _, pct := range Percents {
		target := totalDocs * pct / 100
		act := at(traj, target, func(p TrajPoint) int { return p.Processed[0] + p.Processed[1] })
		est, err := m.EstimateAtDocs(act.Processed[0], act.Processed[1])
		if err != nil {
			return nil, err
		}
		good.Points = append(good.Points, eval.Point{X: float64(pct), Est: est.Good, Act: float64(act.Good)})
		bad.Points = append(bad.Points, eval.Point{X: float64(pct), Est: est.Bad, Act: float64(act.Bad)})
	}
	return &eval.Figure{
		ID:     "Figure 11",
		Title:  fmt.Sprintf("Estimated vs actual join tuples for %s ⋈ %s, ZGJN, minSim=%.1f", w.Task[0], w.Task[1], theta),
		Series: []eval.Series{good, bad},
	}, nil
}

// Fig12 reproduces Figure 12: estimated and actual numbers of documents
// retrieved by each relation for ZGJN, as a function of the percentage of
// queries issued.
func Fig12(w *workload.Workload) (*eval.Figure, error) {
	m, traj, err := zgjnSetup(w, theta04)
	if err != nil {
		return nil, err
	}
	if len(traj) == 0 {
		return nil, errEmptyTrajectory("ZGJN")
	}
	final := traj[len(traj)-1]

	var series []eval.Series
	for side := 0; side < 2; side++ {
		label := "(a) documents retrieved by " + w.Task[0]
		if side == 1 {
			label = "(b) documents retrieved by " + w.Task[1]
		}
		s := eval.Series{Label: label, XLabel: "% queries issued"}
		totalQ := final.Queries[side]
		for _, pct := range Percents {
			target := totalQ * pct / 100
			if target < 1 {
				target = 1
			}
			act := at(traj, target, func(p TrajPoint) int { return p.Queries[side] })
			est, err := m.ReachDocs(side, act.Queries[side])
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, eval.Point{
				X: float64(pct), Est: math.Round(est), Act: float64(act.Retrieved[side]),
			})
		}
		series = append(series, s)
	}
	return &eval.Figure{
		ID:     "Figure 12",
		Title:  "Estimated vs actual documents retrieved by each relation for ZGJN",
		Series: series,
	}, nil
}

type errEmptyTrajectory string

func (e errEmptyTrajectory) Error() string {
	return "experiments: empty trajectory for " + string(e)
}
