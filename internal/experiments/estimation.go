package experiments

import (
	"fmt"
	"math"

	"joinopt/internal/estimate"
	"joinopt/internal/eval"
	"joinopt/internal/join"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// Estimation is an extension experiment (not a paper artifact, labeled as
// such): the accuracy of the on-the-fly MLE parameter estimation of §VI as
// a function of the observation window, against the generator's ground
// truth. Columns per window: the estimated vs true value-population total
// |Ag|+|Ab|, good-document count |Dg|, good-good overlap Agg, and the
// cross-validation divergence the adaptive pilot consults.
func Estimation(w *workload.Workload) (*eval.Table, error) {
	p := [2]struct{ tp, fp float64 }{}
	trueTotals := [2]int{}
	trueDg := [2]int{}
	for i := 0; i < 2; i++ {
		tp, err := w.TrueParams(i, 0.4)
		if err != nil {
			return nil, err
		}
		p[i].tp, p[i].fp = tp.TP, tp.FP
		trueTotals[i] = tp.Ag + tp.Ab
		trueDg[i] = tp.Dg
	}
	trueOv := w.TrueOverlaps()

	t := &eval.Table{
		Title: "Extension: on-the-fly estimation accuracy vs observation window (HQ side / EX side)",
		Header: []string{
			"window %", "est |Ag|+|Ab|", "true", "est |Dg|", "true",
			"est Agg", "true Agg", "cv divergence",
		},
	}
	for _, pct := range []int{5, 10, 20, 40} {
		x1, err := w.NewStrategy(0, retrieval.SC)
		if err != nil {
			return nil, err
		}
		x2, err := w.NewStrategy(1, retrieval.SC)
		if err != nil {
			return nil, err
		}
		e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
		if err != nil {
			return nil, err
		}
		dr := w.DB[0].Size() * pct / 100
		st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
		if err != nil {
			return nil, err
		}
		var obs [2]estimate.Observation
		var ests [2]*estimate.Estimated
		ok := true
		for i := 0; i < 2; i++ {
			obs[i] = estimate.FromState(st, i, w.DB[i].Size(), p[i].tp, p[i].fp, 0.3)
			est, err := estimate.Estimate(obs[i])
			if err != nil {
				ok = false
				break
			}
			ests[i] = est
		}
		if !ok {
			t.Rows = append(t.Rows, []string{fmt.Sprint(pct), "(window too thin)", "-", "-", "-", "-", "-", "-"})
			continue
		}
		ov := estimate.EstimateOverlaps(obs[0].ValueCounts, obs[1].ValueCounts, ests[0], ests[1])
		div, err := estimate.CrossValidate(obs[0])
		divText := "-"
		if err == nil {
			divText = fmt.Sprintf("%.2f", div)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pct),
			fmt.Sprintf("%d / %d", ests[0].Params.Ag+ests[0].Params.Ab, ests[1].Params.Ag+ests[1].Params.Ab),
			fmt.Sprintf("%d / %d", trueTotals[0], trueTotals[1]),
			fmt.Sprintf("%d / %d", ests[0].Params.Dg, ests[1].Params.Dg),
			fmt.Sprintf("%d / %d", trueDg[0], trueDg[1]),
			fmt.Sprint(ov.Agg),
			fmt.Sprint(trueOv.Agg),
			divText,
		})
	}
	return t, nil
}

// EstimationSummary condenses the estimation experiment into the largest
// relative population error across windows of at least minWindowPct.
func EstimationSummary(w *workload.Workload, minWindowPct int) (float64, error) {
	p0, err := w.TrueParams(0, 0.4)
	if err != nil {
		return 0, err
	}
	trueTotal := float64(p0.Ag + p0.Ab)
	worst := 0.0
	for _, pct := range []int{minWindowPct, minWindowPct * 2} {
		x1, _ := w.NewStrategy(0, retrieval.SC)
		x2, _ := w.NewStrategy(1, retrieval.SC)
		e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
		if err != nil {
			return 0, err
		}
		dr := w.DB[0].Size() * pct / 100
		st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
		if err != nil {
			return 0, err
		}
		obs := estimate.FromState(st, 0, w.DB[0].Size(), p0.TP, p0.FP, 0.3)
		est, err := estimate.Estimate(obs)
		if err != nil {
			return 0, err
		}
		rel := math.Abs(float64(est.Params.Ag+est.Params.Ab)-trueTotal) / trueTotal
		if rel > worst {
			worst = rel
		}
	}
	return worst, nil
}
