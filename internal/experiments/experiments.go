// Package experiments implements the drivers that regenerate every table
// and figure of the paper's evaluation (§VII) on the synthetic workloads:
// Figures 9-11 (estimated vs actual good/bad join tuples for IDJN, OIJN,
// ZGJN), Figure 12 (estimated vs actual documents retrieved by ZGJN), and
// Table II (the optimizer's plan choices across τg/τb requirements compared
// against every alternative plan's actual execution time).
package experiments

import (
	"fmt"

	"joinopt/internal/join"
	"joinopt/internal/optimizer"
	"joinopt/internal/workload"
)

// TrajPoint is one step of an execution trajectory: the cumulated work,
// cost-model time, and true output composition after the step.
type TrajPoint struct {
	Time      float64
	Good, Bad int
	Processed [2]int
	Retrieved [2]int
	Queries   [2]int
}

// Trajectory runs an executor to exhaustion, recording one point per step.
// The actual curves of every figure and the candidate-plan comparisons of
// Table II are derived from trajectories.
func Trajectory(exec join.Executor) ([]TrajPoint, error) {
	var out []TrajPoint
	record := func(st *join.State) {
		out = append(out, TrajPoint{
			Time: st.Time, Good: st.GoodPairs, Bad: st.BadPairs,
			Processed: st.DocsProcessed, Retrieved: st.DocsRetrieved, Queries: st.Queries,
		})
	}
	for {
		ok, err := exec.Step()
		if err != nil {
			return out, err
		}
		record(exec.State())
		if !ok {
			return out, nil
		}
	}
}

// at returns the first trajectory point where the given progress function
// reaches target, or the last point when the run ends earlier.
func at(traj []TrajPoint, target int, progress func(TrajPoint) int) TrajPoint {
	for _, p := range traj {
		if progress(p) >= target {
			return p
		}
	}
	if len(traj) == 0 {
		return TrajPoint{}
	}
	return traj[len(traj)-1]
}

// Percents are the x-axis positions of the figures: 10%..100% of effort.
var Percents = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// newExec builds an executor or fails the experiment with context.
func newExec(w *workload.Workload, plan optimizer.PlanSpec) (join.Executor, error) {
	e, err := w.NewExecutor(plan)
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", plan, err)
	}
	return e, nil
}
