package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"joinopt/internal/eval"
	"joinopt/internal/optimizer"
	"joinopt/internal/workload"
)

// ChooseWorkers bounds the optimizer's plan-evaluation worker pool in the
// experiment drivers (0 = one worker per CPU, 1 = sequential); see
// optimizer.Inputs.Workers. cmd/experiments exposes it as -workers.
var ChooseWorkers int

// Table2Reqs are the 23 (τg, τb) combinations of the paper's Table II.
var Table2Reqs = []optimizer.Requirement{
	{TauG: 1, TauB: 20},
	{TauG: 2, TauB: 30}, {TauG: 2, TauB: 50},
	{TauG: 4, TauB: 20}, {TauG: 4, TauB: 40},
	{TauG: 8, TauB: 40}, {TauG: 8, TauB: 80},
	{TauG: 16, TauB: 50}, {TauG: 16, TauB: 80}, {TauG: 16, TauB: 160},
	{TauG: 32, TauB: 84}, {TauG: 32, TauB: 160}, {TauG: 32, TauB: 320},
	{TauG: 64, TauB: 320}, {TauG: 64, TauB: 640},
	{TauG: 128, TauB: 640}, {TauG: 128, TauB: 1280},
	{TauG: 256, TauB: 1280}, {TauG: 256, TauB: 2560},
	{TauG: 512, TauB: 1024}, {TauG: 512, TauB: 2560}, {TauG: 512, TauB: 5120},
	{TauG: 1024, TauB: 5120}, {TauG: 1024, TauB: 10240},
}

// Table2Row is one requirement's outcome: how many candidate plans actually
// meet it, the optimizer's choice, and how the choice's execution time
// compares against the meeting alternatives (relative time tc/to).
type Table2Row struct {
	Req        optimizer.Requirement
	Candidates int
	Chosen     optimizer.PlanSpec
	ChosenMet  bool
	ChosenTime float64

	Faster, Slower       int
	FasterMin, FasterMax float64
	SlowerMin, SlowerMax float64
	NoFeasiblePrediction bool
}

// planOutcome is a plan's actual trajectory summarized for requirement
// queries.
type planOutcome struct {
	plan optimizer.PlanSpec
	traj []TrajPoint
}

// timeToMeet returns the actual execution time at which the trajectory
// first reaches τg good tuples, and whether the requirement is met there
// (enough good tuples and no more than τb bad ones — bad output only grows,
// so the first reaching point is the binding one).
func (o *planOutcome) timeToMeet(req optimizer.Requirement) (float64, bool) {
	for _, p := range o.traj {
		if p.Good >= req.TauG {
			return p.Time, p.Bad <= req.TauB
		}
	}
	return 0, false
}

// Table2 reproduces Table II: every plan in the space is executed once to
// exhaustion (trajectories are reused across requirements); the adaptive
// optimizer's estimation pilot provides the inputs for the plan choices.
func Table2(w *workload.Workload) ([]Table2Row, error) {
	thetas := []float64{0.4, 0.8}
	plans := optimizer.Enumerate(thetas)

	// Plans execute independently (shared state — corpora, indexes,
	// classifiers, and the guarded candidate cache — is read-safe), so the
	// sweep parallelizes across cores.
	outcomes := make([]planOutcome, len(plans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	errs := make([]error, len(plans))
	for i, plan := range plans {
		wg.Add(1)
		go func(i int, plan optimizer.PlanSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			exec, err := newExec(w, plan)
			if err != nil {
				errs[i] = err
				return
			}
			traj, err := Trajectory(exec)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: running %s: %w", plan, err)
				return
			}
			outcomes[i] = planOutcome{plan: plan, traj: traj}
		}(i, plan)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	env, err := w.NewEnv(thetas)
	if err != nil {
		return nil, err
	}
	in, _, err := optimizer.PilotEstimate(env, optimizer.Options{})
	if err != nil {
		return nil, err
	}
	// One Inputs serves all 23 requirement sweeps below: the optimizer
	// memoizes plan closures and model points on it, so later requirements
	// mostly re-probe cached efforts instead of recomputing the models.
	in.Workers = ChooseWorkers

	rows := make([]Table2Row, 0, len(Table2Reqs))
	for _, req := range Table2Reqs {
		row := Table2Row{Req: req}
		type met struct {
			plan optimizer.PlanSpec
			time float64
		}
		var meeting []met
		for i := range outcomes {
			if tm, ok := outcomes[i].timeToMeet(req); ok {
				meeting = append(meeting, met{plan: outcomes[i].plan, time: tm})
			}
		}
		row.Candidates = len(meeting)

		best, _, err := optimizer.Choose(plans, in, req)
		if err != nil {
			row.NoFeasiblePrediction = true
			rows = append(rows, row)
			continue
		}
		row.Chosen = best.Plan
		for i := range outcomes {
			if outcomes[i].plan == best.Plan {
				row.ChosenTime, row.ChosenMet = outcomes[i].timeToMeet(req)
			}
		}
		if !row.ChosenMet {
			rows = append(rows, row)
			continue
		}
		row.FasterMin, row.SlowerMin = math.Inf(1), math.Inf(1)
		for _, m := range meeting {
			if m.plan == best.Plan {
				continue
			}
			rel := m.time / row.ChosenTime
			if m.time < row.ChosenTime {
				row.Faster++
				row.FasterMin = math.Min(row.FasterMin, rel)
				row.FasterMax = math.Max(row.FasterMax, rel)
			} else {
				row.Slower++
				row.SlowerMin = math.Min(row.SlowerMin, rel)
				row.SlowerMax = math.Max(row.SlowerMax, rel)
			}
		}
		if row.Faster == 0 {
			row.FasterMin, row.FasterMax = 0, 0
		}
		if row.Slower == 0 {
			row.SlowerMin, row.SlowerMax = 0, 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats rows in the layout of the paper's Table II.
func RenderTable2(rows []Table2Row) eval.Table {
	t := eval.Table{
		Title: "Table II: optimizer plan choice vs actual alternatives",
		Header: []string{
			"τg", "τb", "cand", "chosen plan", "met", "#faster", "#slower",
			"faster rel", "slower rel",
		},
	}
	rng := func(lo, hi float64) string {
		if lo == 0 && hi == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f..%.2f", lo, hi)
	}
	for _, r := range rows {
		if r.NoFeasiblePrediction {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(r.Req.TauG), fmt.Sprint(r.Req.TauB), fmt.Sprint(r.Candidates),
				"(none predicted feasible)", "-", "-", "-", "-", "-",
			})
			continue
		}
		met := "yes"
		if !r.ChosenMet {
			met = "no"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Req.TauG), fmt.Sprint(r.Req.TauB), fmt.Sprint(r.Candidates),
			r.Chosen.String(), met,
			fmt.Sprint(r.Faster), fmt.Sprint(r.Slower),
			rng(r.FasterMin, r.FasterMax), rng(r.SlowerMin, r.SlowerMax),
		})
	}
	return t
}

// ChosenAlgorithms summarizes which algorithms the optimizer picked across
// rows, in requirement order — the paper's "OIJN at small requirements,
// IDJN+AQG/FS at moderate ones, IDJN+SC at the largest, ZGJN never" story.
func ChosenAlgorithms(rows []Table2Row) []string {
	var out []string
	for _, r := range rows {
		if r.NoFeasiblePrediction {
			out = append(out, "-")
			continue
		}
		out = append(out, string(r.Chosen.JN))
	}
	return out
}

// SortRowsByRequirement orders rows by (τg, τb); Table2 already produces
// them in this order, but external callers composing custom requirement
// sets can normalize with this.
func SortRowsByRequirement(rows []Table2Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Req.TauG != rows[j].Req.TauG {
			return rows[i].Req.TauG < rows[j].Req.TauG
		}
		return rows[i].Req.TauB < rows[j].Req.TauB
	})
}
