package experiments

import (
	"fmt"

	"joinopt/internal/eval"
	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// FaultSweep is an extension experiment (not a paper artifact, labeled as
// such): the output quality and cost of a full IDJN/SC execution as the
// injected transient-fault rate grows. Faults arrive in bursts of 6 calls —
// longer than the default retry budget of 1+3 attempts — so low rates are
// absorbed by retries (identical output, extra time) while higher rates
// start losing documents through the skip-and-account degradation path; the
// run still completes either way.
func FaultSweep(w *workload.Workload, seed int64) (*eval.Table, error) {
	prevP, prevR := w.Faults, w.Retry
	defer func() { w.Faults, w.Retry = prevP, prevR }()

	t := &eval.Table{
		Title:  "Extension: degradation under injected transient faults (IDJN/SC, θ=0.4, burst=6)",
		Header: []string{"fault rate", "good", "bad", "recall vs clean", "docs lost", "retries", "time"},
	}
	plan := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4},
		X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	cleanGood := 0
	for _, rate := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		p := faults.Uniform(seed, rate)
		for i := 0; i < 2; i++ {
			p.Fetch[i].Burst = 6
			p.Next[i].Burst = 6
			p.Classify[i].Burst = 6
		}
		w.Faults, w.Retry = p, join.RetryPolicy{}
		e, err := newExec(w, plan)
		if err != nil {
			return nil, err
		}
		st, err := join.Run(e, nil)
		if err != nil {
			return nil, err
		}
		if rate == 0 {
			cleanGood = st.GoodPairs
		}
		recall := "-"
		if cleanGood > 0 {
			recall = fmt.Sprintf("%.2f", float64(st.GoodPairs)/float64(cleanGood))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			fmt.Sprint(st.GoodPairs),
			fmt.Sprint(st.BadPairs),
			recall,
			fmt.Sprint(st.DocsFailed[0] + st.DocsFailed[1]),
			fmt.Sprint(st.RetriesSpent[0] + st.RetriesSpent[1]),
			fmt.Sprintf("%.0f", st.Time),
		})
	}
	return t, nil
}
