package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Ring is an in-memory trace sink keeping the most recent events in a
// fixed-capacity ring buffer — the always-on flight recorder: cheap enough
// to leave attached, inspectable after the fact.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// DefaultRingCapacity bounds a Ring built with a non-positive capacity.
const DefaultRingCapacity = 4096

// NewRing builds a ring sink holding up to capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever emitted, including overwritten
// ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// NDJSON is a trace sink writing each event as one JSON line to a buffered
// stream — the durable trace format consumed by the -trace flag and the
// golden-file tests. Write errors are sticky and surfaced by Err and Close.
type NDJSON struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewNDJSON builds an NDJSON sink over w.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{bw: bufio.NewWriter(w)}
}

// CreateNDJSON creates (truncating) an NDJSON trace file at path; Close
// flushes and closes it.
func CreateNDJSON(path string) (*NDJSON, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewNDJSON(f)
	s.c = f
	return s, nil
}

// Emit implements Tracer.
func (s *NDJSON) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(b); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.WriteByte('\n')
}

// Flush drains the write buffer.
func (s *NDJSON) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.bw.Flush()
	}
	return s.err
}

// Err returns the first write error, if any.
func (s *NDJSON) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes, closes the underlying file (when the sink owns one), and
// returns the first error observed over the sink's lifetime.
func (s *NDJSON) Close() error {
	err := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
		s.c = nil
	}
	return err
}
