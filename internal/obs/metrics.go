package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. All methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. All methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(x))
	}
}

// Add accumulates x (compare-and-swap loop).
func (g *Gauge) Add(x float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic counts: observations
// land in the first bucket whose upper bound is >= x, or the overflow
// bucket. All methods are nil-safe.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra overflow slot
	counts []atomic.Int64
	sum    Gauge
	n      atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.sum.Add(x)
	h.n.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket, overflow last
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.Value()
	return s
}

// Registry is a concurrency-safe registry of named metrics. Series names use
// the Prometheus convention — a family name with optional labels, e.g.
// `joinopt_docs_processed_total{side="1"}`. Get-or-create accessors return
// the same handle for the same series; a nil *Registry returns nil handles,
// making every downstream metric operation a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Describe attaches a HELP string to a metric family.
func (r *Registry) Describe(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = help
	r.mu.Unlock()
}

// Counter returns the counter for series, creating it on first use.
func (r *Registry) Counter(series string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[series]
	if !ok {
		c = &Counter{}
		r.counters[series] = c
	}
	return c
}

// Gauge returns the gauge for series, creating it on first use.
func (r *Registry) Gauge(series string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[series]
	if !ok {
		g = &Gauge{}
		r.gauges[series] = g
	}
	return g
}

// Histogram returns the histogram for series, creating it with the given
// ascending bucket bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(series string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[series]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		r.hists[series] = h
	}
	return h
}

// Snapshot is an expvar-style point-in-time copy of every metric, keyed by
// series name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}, Histograms: map[string]HistogramSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// String renders the snapshot as JSON — the expvar-style export.
func (r *Registry) String() string {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Series renders a labelled series name from key/value pairs: the labels
// are sorted by key, so equal label sets always produce the same series
// string regardless of argument order — the invariant the get-or-create
// accessors key on. Label values are escaped per the Prometheus text
// format. Series("jobs_total", "tenant", "t1", "state", "done") yields
// `jobs_total{state="done",tenant="t1"}`.
func Series(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Forget drops every series of the given exact names from the registry.
// Callers that publish high-cardinality labelled series (e.g. the service
// layer's per-job gauges) use it to bound the exposition as old entities
// are evicted; handles already returned for a forgotten series keep working
// but are no longer exported.
func (r *Registry) Forget(series ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range series {
		delete(r.counters, s)
		delete(r.gauges, s)
		delete(r.hists, s)
	}
}

// familyOf strips the label part of a series name.
func familyOf(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// withLabel appends one label to a series name, merging with existing
// labels: `fam{a="1"}` + le="2" → `fam{a="1",le="2"}`.
func withLabel(series, suffix, key, value string) string {
	fam := familyOf(series)
	labels := strings.TrimPrefix(series, fam)
	extra := key + `="` + value + `"`
	if labels == "" {
		return fam + suffix + "{" + extra + "}"
	}
	return fam + suffix + "{" + strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}") + "," + extra + "}"
}

func formatFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// WritePrometheus encodes every metric in the Prometheus text exposition
// format, families and series in sorted order (deterministic output).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	type family struct {
		typ    string
		series []string
	}
	fams := map[string]*family{}
	add := func(series, typ string) {
		fam := familyOf(series)
		f, ok := fams[fam]
		if !ok {
			f = &family{typ: typ}
			fams[fam] = f
		}
		f.series = append(f.series, series)
	}
	for name := range s.Counters {
		add(name, "counter")
	}
	for name := range s.Gauges {
		add(name, "gauge")
	}
	for name := range s.Histograms {
		add(name, "histogram")
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, fam := range names {
		f := fams[fam]
		sort.Strings(f.series)
		if h, ok := help[fam]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, f.typ); err != nil {
			return err
		}
		for _, series := range f.series {
			var err error
			switch f.typ {
			case "counter":
				_, err = fmt.Fprintf(w, "%s %d\n", series, s.Counters[series])
			case "gauge":
				_, err = fmt.Fprintf(w, "%s %s\n", series, formatFloat(s.Gauges[series]))
			case "histogram":
				err = writePromHistogram(w, series, s.Histograms[series])
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, series string, h HistogramSnapshot) error {
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(series, "_bucket", "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(series, "_bucket", "le", "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", familyOf(series)+"_sum"+strings.TrimPrefix(series, familyOf(series)), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", familyOf(series)+"_count"+strings.TrimPrefix(series, familyOf(series)), h.Count)
	return err
}
