package obs

import (
	"strings"
	"testing"
)

// TestPromDurableCountersConformance pins the durable-layer series to the
// Prometheus text-format contract alongside the existing families: TYPE
// comment, HELP comment, sorted labelled series, integer rendering.
func TestPromDurableCountersConformance(t *testing.T) {
	r := NewRegistry()
	r.Describe(MetricJobsRecovered, "jobs recovered across a daemon restart")
	r.Describe(MetricDurableErrs, "durable-store failures absorbed by degrading")
	r.Counter(Series(MetricJobsRecovered, "how", "resumed")).Inc()
	r.Counter(Series(MetricJobsRecovered, "how", "requeued")).Add(2)
	r.Counter(Series(MetricDurableErrs, "op", "append")).Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := []string{
		`# HELP joinopt_durable_errors_total durable-store failures absorbed by degrading`,
		`# TYPE joinopt_durable_errors_total counter`,
		`joinopt_durable_errors_total{op="append"} 3`,
		`# HELP joinopt_jobs_recovered_total jobs recovered across a daemon restart`,
		`# TYPE joinopt_jobs_recovered_total counter`,
		`joinopt_jobs_recovered_total{how="requeued"} 2`,
		`joinopt_jobs_recovered_total{how="resumed"} 1`,
	}
	for _, w := range want {
		if !strings.Contains(got, w+"\n") && !strings.HasSuffix(got, w) {
			t.Errorf("missing exposition line %q in:\n%s", w, got)
		}
	}
	for i := range want[:len(want)-1] {
		if strings.Index(got, want[i]) > strings.Index(got, want[i+1]) {
			t.Errorf("lines out of order: %q should precede %q", want[i], want[i+1])
		}
	}
}
