// Package obs is the zero-dependency observability subsystem: structured
// execution tracing (span/event records fanned out to pluggable sinks) and a
// registry of atomic counters, gauges, and histograms with expvar-style
// snapshots and a Prometheus-text encoder. Everything is nil-safe: a nil
// *Trace, *Registry, or any metric handle turns every call into a no-op, so
// instrumented code pays only a nil check when observability is off — the
// executor benchmarks pin that fast path under 2% overhead.
//
// Timestamps are cost-model times, never wall-clock, so a traced run is
// deterministic under a fixed seed: the NDJSON trace of a seeded execution is
// byte-identical across runs (the join package's golden test pins this).
package obs

import (
	"sync"
	"sync/atomic"
)

// Kind names an event type. The taxonomy covers the execution lifecycle
// (run/pilot/plan decisions), per-step executor progress, the document and
// tuple flow, and the failure path (retries, injected faults, deadlines).
type Kind string

// The event taxonomy (see DESIGN.md §5 for the attribute schema of each).
const (
	KindRunStart        Kind = "run.start"        // facade Run entered
	KindRunEnd          Kind = "run.end"          // facade Run finished
	KindPilotDone       Kind = "pilot.done"       // estimation pilot completed
	KindPlanChosen      Kind = "plan.chosen"      // optimizer picked a plan
	KindPlanSwitch      Kind = "plan.switch"      // adaptive run switched plans
	KindCheckpoint      Kind = "checkpoint"       // adaptive re-optimization point
	KindCheckpointError Kind = "checkpoint.error" // non-fatal Choose failure at a checkpoint
	KindStep            Kind = "exec.step"        // one executor step completed
	KindDocProcessed    Kind = "doc.processed"    // document run through the IE system
	KindDocFailed       Kind = "doc.failed"       // document lost after exhausted retries
	KindTupleExtracted  Kind = "tuple.extracted"  // one occurrence added to a relation
	KindTupleJoined     Kind = "tuple.joined"     // one join output tuple produced
	KindRetry           Kind = "retry"            // transient substrate failure retried
	KindQuery           Kind = "query"            // retrieval-strategy query issued
	KindFault           Kind = "fault.injected"   // fault injector fired
	KindDeadline        Kind = "deadline.hit"     // cost-model deadline stopped the run
	KindStepError       Kind = "step.error"       // executor step failed fatally
	KindSideExhausted   Kind = "side.exhausted"   // one side's retrieval stream ended
)

// Event is one structured trace record. T is cost-model time (deterministic
// under a fixed seed), Side is 1-based (0 = not side-specific), and Attrs
// carries the kind-specific fields. JSON encoding is deterministic: struct
// fields in order, attr keys sorted by encoding/json.
type Event struct {
	Seq   uint64         `json:"seq"`
	T     float64        `json:"t"`
	Kind  Kind           `json:"kind"`
	Side  int            `json:"side,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer consumes events. Implementations in this package: *Ring (in-memory
// ring buffer) and *NDJSON (newline-delimited JSON stream); multiple sinks
// can back one Trace.
type Tracer interface {
	Emit(Event)
}

// Trace is the emitting front end threaded through execution: it stamps
// sequence numbers, resolves timestamps, and fans events out to its sinks.
// A nil *Trace is the disabled state — every method is a nil-safe no-op, and
// instrumented code guards attribute construction with Enabled().
type Trace struct {
	sinks []Tracer
	seq   atomic.Uint64

	mu    sync.Mutex
	clock func() float64
}

// New builds a Trace fanning out to the given sinks. With no sinks it
// returns nil — the disabled tracer — so callers can wire optional sinks
// unconditionally.
func New(sinks ...Tracer) *Trace {
	live := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return &Trace{sinks: live}
}

// Enabled reports whether events are being recorded. Instrumented code
// checks it before building attribute maps, keeping the disabled path
// allocation-free.
func (t *Trace) Enabled() bool { return t != nil }

// SetClock installs the cost-model clock used by Emit for instrumentation
// sites that don't carry an execution state (retrieval strategies, fault
// injectors). Executors re-point it at their own state on construction.
func (t *Trace) SetClock(fn func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// EmitAt records one event at an explicit cost-model time.
func (t *Trace) EmitAt(at float64, kind Kind, side int, attrs map[string]any) {
	if t == nil {
		return
	}
	e := Event{Seq: t.seq.Add(1), T: at, Kind: kind, Side: side, Attrs: attrs}
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Emit records one event stamped with the installed clock (0 when none).
func (t *Trace) Emit(kind Kind, side int, attrs map[string]any) {
	if t == nil {
		return
	}
	var at float64
	t.mu.Lock()
	if t.clock != nil {
		at = t.clock()
	}
	t.mu.Unlock()
	t.EmitAt(at, kind, side, attrs)
}
