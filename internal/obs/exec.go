package obs

import "strconv"

// Metric family names published by the execution and optimizer layers.
// Per-side series carry a `side="1|2"` label; run-level series (the
// joinopt_run_* family) are gauges set from the final Result of a facade
// Run, so a Prometheus snapshot reports the run's outcome exactly even when
// the live counters also include pilot and abandoned-plan work.
const (
	MetricDocsProcessed  = "joinopt_docs_processed_total"
	MetricDocsRetrieved  = "joinopt_docs_retrieved_total"
	MetricDocsFiltered   = "joinopt_docs_filtered_total"
	MetricQueries        = "joinopt_queries_total"
	MetricRetries        = "joinopt_retries_total"
	MetricDocsFailed     = "joinopt_docs_failed_total"
	MetricFaultsInjected = "joinopt_faults_injected_total"
	MetricTuplesGood     = "joinopt_tuples_good"
	MetricTuplesBad      = "joinopt_tuples_bad"
	MetricSteps          = "joinopt_steps_total"
	MetricStepTime       = "joinopt_step_model_time"
	MetricModelTime      = "joinopt_model_time"
	MetricQueueDepth     = "joinopt_zgjn_queue_depth"
	MetricCacheHits      = "joinopt_extract_cache_hits_total"
	MetricCacheMisses    = "joinopt_extract_cache_misses_total"
	MetricCacheEvictions = "joinopt_extract_cache_evictions_total"

	MetricDecisions       = "joinopt_plan_decisions_total"
	MetricSwitches        = "joinopt_plan_switches_total"
	MetricCheckpoints     = "joinopt_checkpoints_total"
	MetricCheckpointErrs  = "joinopt_checkpoint_errors_total"
	MetricPhaseModelTime  = "joinopt_phase_model_time"
	MetricPhaseWallSecs   = "joinopt_phase_wall_seconds"
	MetricRunGoodTuples   = "joinopt_run_good_tuples"
	MetricRunBadTuples    = "joinopt_run_bad_tuples"
	MetricRunDocsProc     = "joinopt_run_docs_processed"
	MetricRunDocsFailed   = "joinopt_run_docs_failed"
	MetricRunRetries      = "joinopt_run_retries"
	MetricRunQueries      = "joinopt_run_queries"
	MetricRunTime         = "joinopt_run_time"
	MetricRunTotalTime    = "joinopt_run_total_time"
	MetricRunDegraded     = "joinopt_run_degraded"
	MetricRunDeadlineHit  = "joinopt_run_deadline_hit"
	MetricRunPlanSwitches = "joinopt_run_plan_switches"

	// Durable-layer series: jobs recovered across a daemon restart (by how —
	// requeued, resumed, completed-result served) and durable-store failures
	// absorbed by degrading to memory-only operation (by op — append, sync,
	// snapshot, cache, replay).
	MetricJobsRecovered = "joinopt_jobs_recovered_total"
	MetricDurableErrs   = "joinopt_durable_errors_total"
)

// sideSeries renders `family{side="i+1"}` (side is 0-based internally,
// 1-based in every exported name, matching the paper's D1/D2).
func sideSeries(family string, side int) string {
	return family + `{side="` + strconv.Itoa(side+1) + `"}`
}

// stepTimeBounds bucket per-step cost-model time: a step spans one document
// (~tR+tE) up to a whole query's worth of inner documents.
var stepTimeBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250}

// ExecMetrics is the pre-resolved per-side metric bundle threaded through
// join executors, mirroring every State counter as it changes. Resolving
// series once up front keeps the hot path to pure atomic operations; a nil
// *ExecMetrics (from a nil registry) makes every method a no-op.
type ExecMetrics struct {
	processed  [2]*Counter
	retrieved  [2]*Counter
	filtered   [2]*Counter
	queries    [2]*Counter
	retries    [2]*Counter
	failed     [2]*Counter
	faults     [2]*Counter
	queueDepth [2]*Gauge
	cacheHits  [2]*Counter
	cacheMiss  [2]*Counter
	cacheEvict *Counter
	good, bad  *Gauge
	modelTime  *Gauge
	steps      map[string]*Counter
	stepTime   *Histogram
}

// NewExecMetrics resolves the execution metric bundle against r (nil
// registry → nil bundle → all no-ops). Repeated calls against the same
// registry share the same underlying series.
func NewExecMetrics(r *Registry) *ExecMetrics {
	if r == nil {
		return nil
	}
	r.Describe(MetricDocsProcessed, "documents run through the IE system")
	r.Describe(MetricDocsRetrieved, "documents retrieved from the databases")
	r.Describe(MetricDocsFiltered, "documents rejected by the FS classifier")
	r.Describe(MetricQueries, "keyword queries issued")
	r.Describe(MetricRetries, "transient substrate failures retried")
	r.Describe(MetricDocsFailed, "documents lost after exhausted retries")
	r.Describe(MetricFaultsInjected, "faults fired by the injection layer")
	r.Describe(MetricTuplesGood, "good join pairs in the current output")
	r.Describe(MetricTuplesBad, "bad join pairs in the current output")
	r.Describe(MetricSteps, "executor steps completed")
	r.Describe(MetricStepTime, "cost-model time per executor step")
	r.Describe(MetricModelTime, "cost-model time of the current execution")
	r.Describe(MetricQueueDepth, "pending zig-zag query values")
	r.Describe(MetricCacheHits, "extraction cache hits (re-extractions made free)")
	r.Describe(MetricCacheMisses, "extraction cache misses (full extraction charged)")
	r.Describe(MetricCacheEvictions, "extraction cache entries evicted at the byte bound")
	m := &ExecMetrics{
		good:       r.Gauge(MetricTuplesGood),
		bad:        r.Gauge(MetricTuplesBad),
		modelTime:  r.Gauge(MetricModelTime),
		stepTime:   r.Histogram(MetricStepTime, stepTimeBounds),
		steps:      map[string]*Counter{},
		cacheEvict: r.Counter(MetricCacheEvictions),
	}
	for _, alg := range []string{"IDJN", "OIJN", "ZGJN"} {
		m.steps[alg] = r.Counter(MetricSteps + `{alg="` + alg + `"}`)
	}
	for side := 0; side < 2; side++ {
		m.processed[side] = r.Counter(sideSeries(MetricDocsProcessed, side))
		m.retrieved[side] = r.Counter(sideSeries(MetricDocsRetrieved, side))
		m.filtered[side] = r.Counter(sideSeries(MetricDocsFiltered, side))
		m.queries[side] = r.Counter(sideSeries(MetricQueries, side))
		m.retries[side] = r.Counter(sideSeries(MetricRetries, side))
		m.failed[side] = r.Counter(sideSeries(MetricDocsFailed, side))
		m.faults[side] = r.Counter(sideSeries(MetricFaultsInjected, side))
		m.queueDepth[side] = r.Gauge(sideSeries(MetricQueueDepth, side))
		m.cacheHits[side] = r.Counter(sideSeries(MetricCacheHits, side))
		m.cacheMiss[side] = r.Counter(sideSeries(MetricCacheMisses, side))
	}
	return m
}

// Processed counts one document run through side's IE system.
func (m *ExecMetrics) Processed(side int) {
	if m != nil {
		m.processed[side].Inc()
	}
}

// Retrieved counts n documents retrieved on side.
func (m *ExecMetrics) Retrieved(side int, n int) {
	if m != nil && n != 0 {
		m.retrieved[side].Add(int64(n))
	}
}

// Filtered counts n documents rejected by side's FS classifier.
func (m *ExecMetrics) Filtered(side int, n int) {
	if m != nil && n != 0 {
		m.filtered[side].Add(int64(n))
	}
}

// Queries counts n keyword queries issued on side.
func (m *ExecMetrics) Queries(side int, n int) {
	if m != nil && n != 0 {
		m.queries[side].Add(int64(n))
	}
}

// Retry counts one retried substrate failure on side.
func (m *ExecMetrics) Retry(side int) {
	if m != nil {
		m.retries[side].Inc()
	}
}

// Failed counts one document lost on side.
func (m *ExecMetrics) Failed(side int) {
	if m != nil {
		m.failed[side].Inc()
	}
}

// Fault counts one injected fault observed on side.
func (m *ExecMetrics) Fault(side int) {
	if m != nil {
		m.faults[side].Inc()
	}
}

// Quality publishes the current output composition.
func (m *ExecMetrics) Quality(good, bad int) {
	if m != nil {
		m.good.Set(float64(good))
		m.bad.Set(float64(bad))
	}
}

// StepDone records one completed executor step: the per-algorithm step
// counter, the per-step model-time histogram, and the live model-time gauge.
func (m *ExecMetrics) StepDone(alg string, at, dt float64) {
	if m == nil {
		return
	}
	m.steps[alg].Inc()
	m.stepTime.Observe(dt)
	m.modelTime.Set(at)
}

// CacheHit counts one extraction-cache hit on side.
func (m *ExecMetrics) CacheHit(side int) {
	if m != nil {
		m.cacheHits[side].Inc()
	}
}

// CacheMiss counts one extraction-cache miss on side.
func (m *ExecMetrics) CacheMiss(side int) {
	if m != nil {
		m.cacheMiss[side].Inc()
	}
}

// CacheEvict counts n extraction-cache evictions.
func (m *ExecMetrics) CacheEvict(n int) {
	if m != nil && n != 0 {
		m.cacheEvict.Add(int64(n))
	}
}

// QueueDepth publishes side's pending zig-zag query count.
func (m *ExecMetrics) QueueDepth(side, depth int) {
	if m != nil {
		m.queueDepth[side].Set(float64(depth))
	}
}

// OptMetrics is the optimizer-level metric bundle: plan decisions, adaptive
// checkpoints, and per-phase timings. Nil-safe like ExecMetrics.
type OptMetrics struct {
	r           *Registry
	decisions   *Counter
	switches    *Counter
	checkpoints *Counter
	ckErrs      *Counter
}

// NewOptMetrics resolves the optimizer metric bundle against r.
func NewOptMetrics(r *Registry) *OptMetrics {
	if r == nil {
		return nil
	}
	r.Describe(MetricDecisions, "optimizer plan decisions")
	r.Describe(MetricSwitches, "adaptive plan switches")
	r.Describe(MetricCheckpoints, "adaptive re-optimization checkpoints")
	r.Describe(MetricCheckpointErrs, "non-fatal optimizer failures at checkpoints")
	r.Describe(MetricPhaseModelTime, "cost-model time spent per protocol phase")
	r.Describe(MetricPhaseWallSecs, "wall-clock seconds spent per protocol phase")
	return &OptMetrics{
		r:           r,
		decisions:   r.Counter(MetricDecisions),
		switches:    r.Counter(MetricSwitches),
		checkpoints: r.Counter(MetricCheckpoints),
		ckErrs:      r.Counter(MetricCheckpointErrs),
	}
}

// Decision counts one plan decision; switched marks it a plan switch.
func (m *OptMetrics) Decision(switched bool) {
	if m == nil {
		return
	}
	m.decisions.Inc()
	if switched {
		m.switches.Inc()
	}
}

// Checkpoint counts one adaptive re-optimization checkpoint.
func (m *OptMetrics) Checkpoint() {
	if m != nil {
		m.checkpoints.Inc()
	}
}

// CheckpointErr counts one non-fatal checkpoint optimization failure.
func (m *OptMetrics) CheckpointErr() {
	if m != nil {
		m.ckErrs.Inc()
	}
}

// Phase publishes one protocol phase's cost-model time and wall-clock
// duration (accumulated over a run's repeated visits to the phase).
func (m *OptMetrics) Phase(phase string, modelTime, wallSeconds float64) {
	if m == nil {
		return
	}
	m.r.Gauge(MetricPhaseModelTime + `{phase="` + phase + `"}`).Set(modelTime)
	m.r.Gauge(MetricPhaseWallSecs + `{phase="` + phase + `"}`).Add(wallSeconds)
}

// PublishRun sets the joinopt_run_* gauges from a completed run's final
// result, so the exported snapshot reports the run's outcome exactly —
// independent of how much pilot or abandoned-plan work the live counters
// also saw.
func PublishRun(r *Registry, processed, failed, retries, queries [2]int, good, bad int, execTime, totalTime float64, degraded, deadlineHit bool, switches int) {
	if r == nil {
		return
	}
	r.Describe(MetricRunGoodTuples, "good join tuples in the run's final output")
	r.Describe(MetricRunBadTuples, "bad join tuples in the run's final output")
	r.Describe(MetricRunDocsProc, "documents processed by the run's final execution")
	r.Describe(MetricRunDocsFailed, "documents lost by the run's final execution")
	r.Describe(MetricRunRetries, "retries spent by the run's final execution")
	r.Describe(MetricRunQueries, "queries issued by the run's final execution")
	r.Describe(MetricRunTime, "cost-model time of the run's final execution")
	r.Describe(MetricRunTotalTime, "total cost-model time incl. pilot and abandoned work")
	r.Describe(MetricRunDegraded, "1 when document loss left the run degraded")
	r.Describe(MetricRunDeadlineHit, "1 when the deadline cut the run short")
	r.Describe(MetricRunPlanSwitches, "plans tried by the run beyond the first")
	for side := 0; side < 2; side++ {
		r.Gauge(sideSeries(MetricRunDocsProc, side)).Set(float64(processed[side]))
		r.Gauge(sideSeries(MetricRunDocsFailed, side)).Set(float64(failed[side]))
		r.Gauge(sideSeries(MetricRunRetries, side)).Set(float64(retries[side]))
		r.Gauge(sideSeries(MetricRunQueries, side)).Set(float64(queries[side]))
	}
	r.Gauge(MetricRunGoodTuples).Set(float64(good))
	r.Gauge(MetricRunBadTuples).Set(float64(bad))
	r.Gauge(MetricRunTime).Set(execTime)
	r.Gauge(MetricRunTotalTime).Set(totalTime)
	r.Gauge(MetricRunDegraded).Set(b2f(degraded))
	r.Gauge(MetricRunDeadlineHit).Set(b2f(deadlineHit))
	r.Gauge(MetricRunPlanSwitches).Set(float64(switches))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
