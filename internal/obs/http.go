package obs

import "net/http"

// ContentTypePrometheus is the content type of the text exposition format
// served by Handler.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in the Prometheus text exposition format —
// the /metrics endpoint of the joinoptd daemon. A nil registry serves an
// empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		if err := r.WritePrometheus(w); err != nil {
			// The snapshot is in memory; a write error means the client hung
			// up mid-scrape. Nothing to do but stop writing.
			return
		}
	})
}
