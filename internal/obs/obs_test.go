package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// errWriter fails after n successful writes.
type errWriter struct{ n int }

var errBoom = errors.New("boom")

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errBoom
	}
	w.n--
	return len(p), nil
}

func TestNilSafety(t *testing.T) {
	// Every observability handle must be a no-op at nil: instrumented code
	// relies on this instead of branching at each call site.
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.SetClock(func() float64 { return 1 })
	tr.Emit(KindStep, 0, nil)
	tr.EmitAt(1, KindStep, 1, map[string]any{"k": "v"})

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(1)

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry returned a live handle")
	}
	r.Describe("x", "help")
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var em *ExecMetrics
	em.Processed(0)
	em.Retrieved(1, 3)
	em.Filtered(0, 2)
	em.Queries(1, 1)
	em.Retry(0)
	em.Failed(1)
	em.Fault(0)
	em.Quality(1, 2)
	em.StepDone("IDJN", 10, 2)
	em.QueueDepth(0, 4)
	var om *OptMetrics
	om.Decision(true)
	om.Checkpoint()
	om.CheckpointErr()
	om.Phase("pilot", 1, 0.5)
	PublishRun(nil, [2]int{}, [2]int{}, [2]int{}, [2]int{}, 0, 0, 0, 0, false, false, 0)
	if NewExecMetrics(nil) != nil || NewOptMetrics(nil) != nil {
		t.Fatal("nil registry produced a live bundle")
	}
	if New() != nil || New(nil, nil) != nil {
		t.Fatal("New with no live sinks must return the nil (disabled) trace")
	}
}

func TestTraceSeqAndClock(t *testing.T) {
	ring := NewRing(8)
	tr := New(ring)
	if !tr.Enabled() {
		t.Fatal("live trace reports disabled")
	}
	now := 2.5
	tr.SetClock(func() float64 { return now })
	tr.Emit(KindQuery, 1, map[string]any{"n": 1})
	now = 7.0
	tr.Emit(KindQuery, 2, nil)
	tr.EmitAt(99, KindRunEnd, 0, nil)

	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].T != 2.5 || evs[1].T != 7.0 || evs[2].T != 99 {
		t.Fatalf("timestamps wrong: %v %v %v", evs[0].T, evs[1].T, evs[2].T)
	}
	if evs[0].Side != 1 || evs[1].Side != 2 {
		t.Fatal("sides not preserved")
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRing(4)
	tr := New(ring)
	for i := 0; i < 10; i++ {
		tr.EmitAt(float64(i), KindStep, 0, nil)
	}
	if ring.Total() != 10 {
		t.Fatalf("total = %d, want 10", ring.Total())
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered = %d, want 4", len(evs))
	}
	// Oldest first: the last four timestamps 6,7,8,9.
	for i, ev := range evs {
		if ev.T != float64(6+i) {
			t.Fatalf("event %d has t=%v, want %v", i, ev.T, float64(6+i))
		}
	}
	if NewRing(0) == nil || cap(NewRing(-1).buf) != DefaultRingCapacity {
		t.Fatal("non-positive capacity must fall back to the default")
	}
}

func TestNDJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSON(&buf)
	tr := New(sink)
	tr.EmitAt(1.5, KindDocProcessed, 2, map[string]any{"doc": 7, "tuples": 3})
	tr.EmitAt(2.0, KindStep, 0, nil)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.T != 1.5 || ev.Kind != KindDocProcessed || ev.Side != 2 {
		t.Fatalf("decoded event wrong: %+v", ev)
	}
	// Attr keys are sorted by encoding/json — byte-determinism for goldens.
	if want := `"attrs":{"doc":7,"tuples":3}`; !strings.Contains(lines[0], want) {
		t.Fatalf("line %q missing sorted attrs %q", lines[0], want)
	}
	if strings.Contains(lines[1], "attrs") || strings.Contains(lines[1], "side") {
		t.Fatalf("empty attrs/side must be omitted: %q", lines[1])
	}
}

func TestNDJSONStickyError(t *testing.T) {
	sink := NewNDJSON(&errWriter{n: 0})
	for i := 0; i < 2000; i++ { // enough to overflow the bufio buffer
		sink.Emit(Event{Seq: uint64(i), Kind: KindStep})
	}
	if !errors.Is(sink.Err(), errBoom) {
		t.Fatalf("Err() = %v, want %v", sink.Err(), errBoom)
	}
	if !errors.Is(sink.Close(), errBoom) {
		t.Fatal("Close must surface the sticky error")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter(`fam{side="1"}`)
	c2 := r.Counter(`fam{side="1"}`)
	if c1 != c2 {
		t.Fatal("same series must return the same counter")
	}
	c1.Add(3)
	if r.Counter(`fam{side="1"}`).Value() != 3 {
		t.Fatal("counter state lost across lookups")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same series must return the same gauge")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{9}) // later bounds ignored
	if h1 != h2 || len(h2.bounds) != 2 {
		t.Fatal("histogram get-or-create must keep the first bounds")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 5, 10})
	for _, x := range []float64{0.5, 1, 3, 7, 10, 25} {
		h.Observe(x)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if want := 0.5 + 1 + 3 + 7 + 10 + 25; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// Bucket upper bounds are inclusive: 0.5,1 | 3 | 7,10 | 25(overflow).
	if got := s.Counts; got[0] != 2 || got[1] != 1 || got[2] != 2 || got[3] != 1 {
		t.Fatalf("bucket counts = %v", got)
	}
}

func TestWithLabelMerging(t *testing.T) {
	if got := withLabel("fam", "_bucket", "le", "5"); got != `fam_bucket{le="5"}` {
		t.Fatalf("unlabeled: %q", got)
	}
	if got := withLabel(`fam{side="1"}`, "_bucket", "le", "+Inf"); got != `fam_bucket{side="1",le="+Inf"}` {
		t.Fatalf("labeled: %q", got)
	}
}

func TestPrometheusEncodingDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Describe("joinopt_docs_processed_total", "docs")
		r.Counter(`joinopt_docs_processed_total{side="2"}`).Add(7)
		r.Counter(`joinopt_docs_processed_total{side="1"}`).Add(3)
		r.Gauge("joinopt_run_time").Set(12.5)
		r.Histogram("joinopt_step_model_time", []float64{1, 10}).Observe(4)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("encoding is not deterministic across identical registries")
	}
	out := a.String()
	for _, want := range []string{
		"# HELP joinopt_docs_processed_total docs",
		"# TYPE joinopt_docs_processed_total counter",
		`joinopt_docs_processed_total{side="1"} 3`,
		`joinopt_docs_processed_total{side="2"} 7`,
		"# TYPE joinopt_run_time gauge",
		"joinopt_run_time 12.5",
		"# TYPE joinopt_step_model_time histogram",
		`joinopt_step_model_time_bucket{le="1"} 0`,
		`joinopt_step_model_time_bucket{le="10"} 1`,
		`joinopt_step_model_time_bucket{le="+Inf"} 1`,
		"joinopt_step_model_time_sum 4",
		"joinopt_step_model_time_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// side="1" must sort before side="2", families alphabetically.
	if strings.Index(out, `side="1"`) > strings.Index(out, `side="2"`) {
		t.Fatal("series not sorted")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(1.5)
	var s Snapshot
	if err := json.Unmarshal([]byte(r.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 2 || s.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot round-trip wrong: %+v", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Exercised under -race in CI: concurrent emitters against one trace and
	// one registry, with snapshots racing the writers.
	ring := NewRing(64)
	var buf bytes.Buffer
	tr := New(ring, NewNDJSON(&buf))
	r := NewRegistry()
	em := NewExecMetrics(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(KindStep, g%2+1, nil)
				em.Processed(g % 2)
				em.Retrieved(g%2, 1)
				em.Quality(i, i)
				em.StepDone("IDJN", float64(i), 1)
				r.Gauge("shared").Add(1)
				if i%50 == 0 {
					_ = r.Snapshot()
					_ = ring.Events()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter(sideSeries(MetricDocsProcessed, 0)).Value() +
		r.Counter(sideSeries(MetricDocsProcessed, 1)).Value(); got != 8*200 {
		t.Fatalf("processed total = %d, want %d", got, 8*200)
	}
	if got := r.Gauge("shared").Value(); got != 8*200 {
		t.Fatalf("gauge Add total = %v, want %v", got, 8*200)
	}
	if ring.Total() != 8*200 {
		t.Fatalf("ring total = %d, want %d", ring.Total(), 8*200)
	}
}

func TestPublishRun(t *testing.T) {
	r := NewRegistry()
	PublishRun(r, [2]int{10, 20}, [2]int{1, 0}, [2]int{2, 3}, [2]int{4, 5},
		36, 22, 1455.5, 3269.5, true, false, 1)
	s := r.Snapshot()
	checks := map[string]float64{
		`joinopt_run_docs_processed{side="1"}`: 10,
		`joinopt_run_docs_processed{side="2"}`: 20,
		`joinopt_run_docs_failed{side="1"}`:    1,
		`joinopt_run_retries{side="2"}`:        3,
		`joinopt_run_queries{side="1"}`:        4,
		"joinopt_run_good_tuples":              36,
		"joinopt_run_bad_tuples":               22,
		"joinopt_run_time":                     1455.5,
		"joinopt_run_total_time":               3269.5,
		"joinopt_run_degraded":                 1,
		"joinopt_run_deadline_hit":             0,
		"joinopt_run_plan_switches":            1,
	}
	for series, want := range checks {
		if got := s.Gauges[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}
