package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPromHistogramConformance pins the histogram exposition to the
// Prometheus text-format contract: cumulative buckets, a le="+Inf" bucket
// equal to the total count, and _sum/_count lines — with labels preserved
// on every derived series.
func TestPromHistogramConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{job="j1"}`, []float64{0.1, 1, 10})
	for _, x := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(x)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := []string{
		`# TYPE lat histogram`,
		`lat_bucket{job="j1",le="0.1"} 1`,
		`lat_bucket{job="j1",le="1"} 3`,
		`lat_bucket{job="j1",le="10"} 4`,
		`lat_bucket{job="j1",le="+Inf"} 5`,
		`lat_sum{job="j1"} 56.05`,
		`lat_count{job="j1"} 5`,
	}
	for i := range want[:len(want)-1] {
		if strings.Index(got, want[i]) > strings.Index(got, want[i+1]) {
			t.Errorf("lines out of order: %q should precede %q in:\n%s", want[i], want[i+1], got)
		}
	}
	for _, w := range want {
		if !strings.Contains(got, w+"\n") && !strings.HasSuffix(got, w) {
			t.Errorf("missing exposition line %q in:\n%s", w, got)
		}
	}
}

// TestPromHistogramUnlabelled covers the label-free derived-series shape.
func TestPromHistogramUnlabelled(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{`lat_bucket{le="1"} 1`, `lat_bucket{le="+Inf"} 1`, "lat_sum 0.5", "lat_count 1"} {
		if !strings.Contains(b.String(), w+"\n") {
			t.Errorf("missing %q in:\n%s", w, b.String())
		}
	}
}

// TestPromDeterministicOrdering pins that families and series within a
// family are emitted in sorted order, so two encodings of the same registry
// are byte-identical.
func TestPromDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter(Series("zz_total", "side", "2")).Add(2)
	r.Counter(Series("zz_total", "side", "1")).Add(1)
	r.Gauge("aa_depth").Set(3)
	r.Histogram("mm_lat", []float64{1}).Observe(2)

	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("encoding not deterministic:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	got := first.String()
	aa := strings.Index(got, "aa_depth")
	mm := strings.Index(got, "mm_lat")
	z1 := strings.Index(got, `zz_total{side="1"}`)
	z2 := strings.Index(got, `zz_total{side="2"}`)
	if !(aa < mm && mm < z1 && z1 < z2) {
		t.Fatalf("families/series not sorted (aa=%d mm=%d z1=%d z2=%d):\n%s", aa, mm, z1, z2, got)
	}
}

// TestSeries pins the labelled-series renderer: sorted keys (argument order
// is irrelevant) and text-format escaping of label values.
func TestSeries(t *testing.T) {
	if got := Series("jobs_total"); got != "jobs_total" {
		t.Errorf("no labels: got %q", got)
	}
	a := Series("jobs_total", "tenant", "t1", "state", "done")
	b := Series("jobs_total", "state", "done", "tenant", "t1")
	if a != b || a != `jobs_total{state="done",tenant="t1"}` {
		t.Errorf("order-insensitivity broken: %q vs %q", a, b)
	}
	if got := Series("m", "k", "a\\b\"c\nd"); got != `m{k="a\\b\"c\nd"}` {
		t.Errorf("escaping: got %q", got)
	}
}

// TestForget pins that forgotten series leave the exposition while other
// series of the same family stay, and that live handles keep working.
func TestForget(t *testing.T) {
	r := NewRegistry()
	keep := r.Counter(Series("jobs_total", "job", "keep"))
	drop := r.Counter(Series("jobs_total", "job", "drop"))
	keep.Inc()
	drop.Inc()
	r.Forget(Series("jobs_total", "job", "drop"))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `job="drop"`) {
		t.Errorf("forgotten series still exported:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `jobs_total{job="keep"} 1`) {
		t.Errorf("surviving series missing:\n%s", b.String())
	}
	drop.Inc() // must not panic; handle outlives the registry entry
	if drop.Value() != 2 {
		t.Errorf("forgotten handle stopped counting: %d", drop.Value())
	}
}

// TestHandler pins the /metrics HTTP exposition: content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Describe("up", "1 when serving")
	r.Gauge("up").Set(1)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypePrometheus {
		t.Errorf("content type %q, want %q", ct, ContentTypePrometheus)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"# HELP up 1 when serving\n", "# TYPE up gauge\n", "up 1\n"} {
		if !strings.Contains(string(body), w) {
			t.Errorf("missing %q in:\n%s", w, body)
		}
	}
}
