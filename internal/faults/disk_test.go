package faults

import (
	"bytes"
	"sync"
	"testing"
)

func TestDiskFaultsNilAndZero(t *testing.T) {
	if d := DiskFaults(nil); d != nil {
		t.Fatal("nil profile should yield nil injector")
	}
	if d := DiskFaults(&Profile{Seed: 3}); d != nil {
		t.Fatal("disk-less profile should yield nil injector")
	}
	var d *DiskInjector
	if err := d.Write(); err != nil {
		t.Fatalf("nil injector Write = %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("nil injector Sync = %v", err)
	}
	b := []byte("payload")
	if d.Corrupt(b) {
		t.Fatal("nil injector corrupted payload")
	}
	if d.Counts() != (Counts{}) {
		t.Fatal("nil injector counts non-zero")
	}
}

func TestDiskParseRoundTrip(t *testing.T) {
	p, err := Parse("seed=11,dwrite=0.5,dsync=0.25,dcorrupt=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Zero() {
		t.Fatal("disk profile reported Zero")
	}
	if p.Disk.Write.Prob != 0.5 || p.Disk.Sync.Prob != 0.25 || p.Disk.Corrupt.Prob != 1 {
		t.Fatalf("parsed disk spec = %+v", p.Disk)
	}
	if DiskFaults(p) == nil {
		t.Fatal("enabled disk profile yielded nil injector")
	}
}

func TestDiskInjectorDeterministic(t *testing.T) {
	prof := &Profile{Seed: 42, Disk: DiskSpec{
		Write:   Spec{Prob: 0.3, Burst: 2},
		Sync:    Spec{Prob: 0.3, Permanent: true},
		Corrupt: Spec{Prob: 0.5},
	}}
	run := func() ([]bool, []bool, [][]byte) {
		d := DiskFaults(prof)
		var writes, syncs []bool
		var payloads [][]byte
		for i := 0; i < 200; i++ {
			writes = append(writes, d.Write() != nil)
			syncs = append(syncs, d.Sync() != nil)
			b := []byte("abcdefgh")
			d.Corrupt(b)
			payloads = append(payloads, b)
		}
		return writes, syncs, payloads
	}
	w1, s1, c1 := run()
	w2, s2, c2 := run()
	faults, corruptions := 0, 0
	for i := range w1 {
		if w1[i] != w2[i] || s1[i] != s2[i] {
			t.Fatalf("call %d verdicts differ across identical runs", i)
		}
		if !bytes.Equal(c1[i], c2[i]) {
			t.Fatalf("call %d corruption differs: %q vs %q", i, c1[i], c2[i])
		}
		if w1[i] || s1[i] {
			faults++
		}
		if !bytes.Equal(c1[i], []byte("abcdefgh")) {
			corruptions++
		}
	}
	if faults == 0 || corruptions == 0 {
		t.Fatalf("expected injected activity, got faults=%d corruptions=%d", faults, corruptions)
	}
}

func TestDiskInjectorErrorKinds(t *testing.T) {
	d := DiskFaults(&Profile{Seed: 1, Disk: DiskSpec{
		Write: Spec{Prob: 1},
		Sync:  Spec{Prob: 1, Permanent: true},
	}})
	werr, ok := d.Write().(*Error)
	if !ok || werr.Op != OpDiskWrite || !werr.Temporary() {
		t.Fatalf("Write error = %#v", werr)
	}
	serr, ok := d.Sync().(*Error)
	if !ok || serr.Op != OpDiskSync || serr.Temporary() {
		t.Fatalf("Sync error = %#v", serr)
	}
	c := d.Counts()
	if c.Faults != 2 {
		t.Fatalf("Counts.Faults = %d, want 2", c.Faults)
	}
}

func TestDiskCorruptFlipsExactlyOneBit(t *testing.T) {
	d := DiskFaults(&Profile{Seed: 5, Disk: DiskSpec{Corrupt: Spec{Prob: 1}}})
	orig := []byte("checksummed entry payload")
	b := append([]byte(nil), orig...)
	if !d.Corrupt(b) {
		t.Fatal("prob=1 corruption did not fire")
	}
	diff := 0
	for i := range b {
		x := b[i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
	if d.Corrupt(nil) {
		t.Fatal("empty payload corrupted")
	}
	if c := d.Counts(); c.Truncated < 1 {
		t.Fatalf("Counts.Truncated = %d, want >= 1", c.Truncated)
	}
}

func TestDiskInjectorConcurrentSafety(t *testing.T) {
	d := DiskFaults(&Profile{Seed: 9, Disk: DiskSpec{
		Write:   Spec{Prob: 0.5},
		Sync:    Spec{Prob: 0.5},
		Corrupt: Spec{Prob: 0.5},
	}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.Write()
				d.Sync()
				d.Corrupt([]byte{0xAA, 0xBB})
			}
		}()
	}
	wg.Wait()
	d.Counts()
}
