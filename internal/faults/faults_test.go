package faults

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/retrieval"
)

func TestParse(t *testing.T) {
	p, err := Parse("rate=0.05,seed=9,burst=2,stall=0.01,trunc=0.02,cost=2,permanent=true")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Errorf("Seed = %d, want 9", p.Seed)
	}
	for i := 0; i < 2; i++ {
		for _, s := range []Spec{p.Fetch[i], p.Next[i], p.Classify[i]} {
			if s.Prob != 0.05 || s.Burst != 2 || !s.Permanent || s.ExtraCost != 2 || s.StallProb != 0.01 {
				t.Errorf("side %d spec = %+v", i, s)
			}
		}
		if p.Truncate[i].Prob != 0.02 {
			t.Errorf("Truncate[%d].Prob = %g, want 0.02", i, p.Truncate[i].Prob)
		}
	}

	p, err = Parse("rate=0.1,fetch=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Fetch[0].Prob != 0.5 || p.Next[0].Prob != 0.1 || p.Classify[1].Prob != 0.1 {
		t.Errorf("per-op override: fetch=%g next=%g classify=%g", p.Fetch[0].Prob, p.Next[0].Prob, p.Classify[1].Prob)
	}

	if p, err := Parse(""); p != nil || err != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []string{"rate", "rate=x", "bogus=1", "rate=0.1,,"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestZero(t *testing.T) {
	if !Uniform(3, 0).Zero() {
		t.Error("Uniform(3, 0) should be Zero")
	}
	if Uniform(3, 0.1).Zero() {
		t.Error("Uniform(3, 0.1) should not be Zero")
	}
	p := &Profile{}
	p.Truncate[1] = Spec{Prob: 0.1}
	if p.Zero() {
		t.Error("profile with truncation should not be Zero")
	}
}

func TestErrorTemporary(t *testing.T) {
	e := &Error{Op: OpFetch, Side: 0, Call: 3, Transient: true}
	if !e.Temporary() {
		t.Error("transient error should be Temporary")
	}
	if (&Error{Transient: false}).Temporary() {
		t.Error("permanent error should not be Temporary")
	}
	var err error = e
	var fe *Error
	if !errors.As(err, &fe) {
		t.Error("errors.As should unwrap *Error")
	}
}

// TestInjectorRate checks the injected fault rate converges on Prob.
func TestInjectorRate(t *testing.T) {
	const n = 20000
	for _, prob := range []float64{0.01, 0.1, 0.5} {
		in := newInjector(7, OpFetch, 0, Spec{Prob: prob})
		faults := 0
		for i := 0; i < n; i++ {
			if in.next().fault {
				faults++
			}
		}
		got := float64(faults) / n
		if math.Abs(got-prob) > 0.02 {
			t.Errorf("prob %g: observed rate %g", prob, got)
		}
	}
}

// TestInjectorBurst checks that once a fault fires, exactly Burst
// consecutive calls fault (bursts can chain if a fresh draw fires).
func TestInjectorBurst(t *testing.T) {
	in := newInjector(11, OpNext, 1, Spec{Prob: 0.05, Burst: 3})
	run := 0
	runs := map[int]int{}
	for i := 0; i < 50000; i++ {
		if in.next().fault {
			run++
		} else if run > 0 {
			runs[run]++
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no fault bursts observed")
	}
	for length := range runs {
		if length%3 != 0 {
			// A run is one or more chained bursts; every run length must be
			// a multiple of Burst unless independent draws overlapped, which
			// chaining makes impossible here (burst continuation wins).
			t.Errorf("burst run of length %d not a multiple of 3", length)
		}
	}
}

func TestInjectorCostAndStalls(t *testing.T) {
	in := newInjector(5, OpClassify, 0, Spec{Prob: 0.2, StallProb: 0.3, ExtraCost: 2.5})
	for i := 0; i < 1000; i++ {
		in.next()
	}
	c := in.counts
	if c.Faults == 0 || c.Stalls == 0 {
		t.Fatalf("expected both faults and stalls, got %+v", c)
	}
	want := float64(c.Faults+c.Stalls) * 2.5
	if math.Abs(c.ExtraCost-want) > 1e-9 {
		t.Errorf("ExtraCost = %g, want %g", c.ExtraCost, want)
	}
}

func testDB(n int) *corpus.DB {
	db := &corpus.DB{Name: "test"}
	for i := 0; i < n; i++ {
		db.Docs = append(db.Docs, &corpus.Document{ID: i, Text: fmt.Sprintf("doc %d body ….", i)})
	}
	return db
}

func TestFaultyDBZeroProfile(t *testing.T) {
	db := testDB(10)
	f := NewFaultyDB(db, &Profile{Seed: 1}, 0)
	for i := 0; i < 10; i++ {
		doc, cost, err := f.Fetch(i)
		if err != nil || cost != 0 || doc != db.Doc(i) {
			t.Fatalf("Fetch(%d) = %v, %g, %v; want passthrough", i, doc, cost, err)
		}
	}
	if c := f.Counts(); c != (Counts{}) {
		t.Errorf("Counts = %+v, want zero", c)
	}
}

func TestFaultyDBPermanentFault(t *testing.T) {
	p := &Profile{Seed: 2}
	p.Fetch[1] = Spec{Prob: 1, Permanent: true, ExtraCost: 3}
	f := NewFaultyDB(testDB(4), p, 1)
	doc, cost, err := f.Fetch(0)
	if doc != nil || cost != 3 {
		t.Fatalf("Fetch = %v, %g; want nil doc, cost 3", doc, cost)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Op != OpFetch || fe.Side != 1 || fe.Temporary() {
		t.Fatalf("error = %v, want permanent fetch fault on side 1", err)
	}
}

func TestFaultyDBTruncation(t *testing.T) {
	p := &Profile{Seed: 4}
	p.Truncate[0] = Spec{Prob: 1, ExtraCost: 1}
	db := testDB(3)
	f := NewFaultyDB(db, p, 0)
	doc, cost, err := f.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	orig := db.Doc(2)
	if doc == orig || len(doc.Text) >= len(orig.Text) {
		t.Fatalf("expected truncated copy, got %q (orig %q)", doc.Text, orig.Text)
	}
	for _, r := range doc.Text {
		if r == 0xFFFD {
			t.Fatalf("truncation split a rune: %q", doc.Text)
		}
	}
	if cost != 1 {
		t.Errorf("cost = %g, want 1", cost)
	}
	if c := f.Counts(); c.Truncated != 1 {
		t.Errorf("Truncated = %d, want 1", c.Truncated)
	}
	if db.Doc(2) != orig {
		t.Error("truncation must not mutate the database")
	}
}

// TestFaultyStrategyResumes checks that a faulted pull does not advance the
// underlying stream: after the fault clears, pulls resume without skipping.
func TestFaultyStrategyResumes(t *testing.T) {
	p := &Profile{Seed: 6}
	p.Next[0] = Spec{Prob: 0.3}
	fs := NewFaultyStrategy(retrieval.NewScan(50), p, 0)
	var got []int
	for {
		id, ok, _, err := fs.NextFallible()
		if err != nil {
			continue // transient: retry
		}
		if !ok {
			break
		}
		got = append(got, id)
	}
	if len(got) != 50 {
		t.Fatalf("retrieved %d docs, want 50", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("got[%d] = %d; faulted pulls must not skip documents", i, id)
		}
	}
	if fs.FaultCounts().Faults == 0 {
		t.Error("expected some injected faults at rate 0.3")
	}
}

// TestFaultyStrategyTransparentDelegates checks the plain Strategy methods
// never inject.
func TestFaultyStrategyTransparentDelegates(t *testing.T) {
	p := &Profile{Seed: 6}
	p.Next[0] = Spec{Prob: 1, Permanent: true}
	fs := NewFaultyStrategy(retrieval.NewScan(5), p, 0)
	for i := 0; i < 5; i++ {
		id, ok := fs.Next()
		if !ok || id != i {
			t.Fatalf("plain Next() = %d, %v; must bypass injection", id, ok)
		}
	}
	if fs.FaultCounts().Faults != 0 {
		t.Error("plain Next must not consume the injection stream")
	}
}

type constClassifier bool

func (c constClassifier) Classify(string) bool { return bool(c) }

func TestFaultyClassifier(t *testing.T) {
	p := &Profile{Seed: 8}
	p.Classify[1] = Spec{Prob: 1, ExtraCost: 0.5}
	fc := NewFaultyClassifier(constClassifier(true), p, 1)
	if !fc.Classify("x") {
		t.Error("plain Classify must bypass injection")
	}
	_, cost, err := fc.ClassifyFallible("x")
	if err == nil || cost != 0.5 {
		t.Fatalf("ClassifyFallible = cost %g, err %v; want injected fault", cost, err)
	}
	var fe *Error
	if !errors.As(err, &fe) || !fe.Temporary() {
		t.Fatalf("error = %v, want transient classify fault", err)
	}
}
