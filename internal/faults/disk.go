package faults

import "sync"

// The injectable durable-layer operations. Disk faults have no side
// dimension — the journal, snapshot store, and cache tier share one disk —
// so their streams are keyed with side 0.
const (
	OpDiskWrite   Op = "dwrite"   // journal append / snapshot write
	OpDiskSync    Op = "dsync"    // fsync of a journal or snapshot file
	OpDiskCorrupt Op = "dcorrupt" // silent bit rot on a read-back
)

// DiskSpec bundles the fault specs of the three durable-layer operations.
type DiskSpec struct {
	// Write governs write/append/rename failures.
	Write Spec
	// Sync governs fsync failures.
	Sync Spec
	// Corrupt governs silent corruption: the read succeeds but one bit of
	// the returned payload is flipped, exercising the checksum paths.
	Corrupt Spec
}

func (d DiskSpec) enabled() bool {
	return d.Write.enabled() || d.Sync.enabled() || d.Corrupt.enabled()
}

// DiskInjector is the deterministic fault stream of the durable layer. A nil
// injector is valid and injects nothing, so callers thread it unconditionally.
// Unlike the substrate injectors it is safe for concurrent use: the durable
// store serves journal appends and cache-tier IO from multiple goroutines,
// and per-call determinism only requires that each call consumes exactly one
// stream position, not that callers serialize themselves.
type DiskInjector struct {
	mu      sync.Mutex
	write   injector
	sync    injector
	corrupt injector
}

// DiskFaults returns the profile's durable-layer injector, or nil when the
// profile is nil or injects no disk faults.
func DiskFaults(p *Profile) *DiskInjector {
	if p == nil || !p.Disk.enabled() {
		return nil
	}
	return &DiskInjector{
		write:   newInjector(p.Seed, OpDiskWrite, 0, p.Disk.Write),
		sync:    newInjector(p.Seed, OpDiskSync, 0, p.Disk.Sync),
		corrupt: newInjector(p.Seed, OpDiskCorrupt, 0, p.Disk.Corrupt),
	}
}

// Write returns an injected error for the next write-class operation, or nil.
func (d *DiskInjector) Write() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	dec := d.write.next()
	d.mu.Unlock()
	if dec.fault {
		return &Error{Op: OpDiskWrite, Call: dec.call, Transient: !dec.permanent}
	}
	return nil
}

// Sync returns an injected error for the next fsync, or nil.
func (d *DiskInjector) Sync() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	dec := d.sync.next()
	d.mu.Unlock()
	if dec.fault {
		return &Error{Op: OpDiskSync, Call: dec.call, Transient: !dec.permanent}
	}
	return nil
}

// Corrupt flips one deterministically-chosen bit of b in place when the
// corruption stream fires, returning whether it did. Empty payloads are
// never touched. The flipped position depends only on (stream, call), so a
// corrupted read-back is reproducible byte-for-byte.
func (d *DiskInjector) Corrupt(b []byte) bool {
	if d == nil || len(b) == 0 {
		return false
	}
	d.mu.Lock()
	dec := d.corrupt.next()
	d.mu.Unlock()
	if !dec.fault {
		return false
	}
	bit := mix64(d.corrupt.stream^mix64(uint64(dec.call)+0x632be59bd9b4e019)) % uint64(len(b)*8)
	b[bit/8] ^= 1 << (bit % 8)
	return true
}

// Counts reports the injected durable-layer behaviour so far: write and sync
// faults combined, with corruptions under Truncated (payloads degraded, not
// failed — the same distinction FaultyDB draws).
func (d *DiskInjector) Counts() Counts {
	if d == nil {
		return Counts{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.write.counts
	c.Faults += d.sync.counts.Faults
	c.ExtraCost += d.sync.counts.ExtraCost
	c.Truncated += d.corrupt.counts.Faults
	return c
}
