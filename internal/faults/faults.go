// Package faults is a seedable, deterministic fault injector for the join
// execution substrate. It wraps the three fallible interfaces an execution
// touches — document fetches (FaultyDB), retrieval streams (FaultyStrategy),
// and Filtered Scan classifiers (FaultyClassifier) — and injects transient
// or permanent failures, stalls (injected latency), and truncated documents,
// all driven by per-operation fault specs from a single Profile.
//
// Determinism is the point: whether call n of a stream faults depends only
// on (profile seed, operation, side, n) — never on wall-clock time, global
// RNG state, or how calls on different streams interleave. Every failure
// path of the fault-tolerant executors is therefore reproducible under
// `go test -race`, and a replayed execution (see join.Replay) re-encounters
// exactly the faults of the original run.
package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Op identifies a fallible substrate operation.
type Op string

// The injectable operations.
const (
	OpFetch    Op = "fetch"    // document fetch from a database
	OpNext     Op = "next"     // retrieval-strategy pull
	OpClassify Op = "classify" // FS classifier decision
	OpTruncate Op = "truncate" // document truncation (degraded, not failed)
)

// Spec is the fault behaviour of one operation on one side.
type Spec struct {
	// Prob is the per-call probability that a fault fires.
	Prob float64
	// Burst is the number of consecutive faulted calls once a fault fires
	// (values below 1 mean 1): a burst longer than the executors' retry
	// budget turns a recoverable blip into a lost document.
	Burst int
	// Permanent marks this operation's faults as non-transient: retries can
	// never succeed, so executors give up immediately.
	Permanent bool
	// ExtraCost is cost-model time charged per faulted or stalled call — the
	// latency of a timeout or a slow response.
	ExtraCost float64
	// StallProb is the per-call probability of a stall: the call succeeds
	// but is charged ExtraCost anyway (slow interface, no error).
	StallProb float64
}

func (s Spec) enabled() bool { return s.Prob > 0 || s.StallProb > 0 }

// Profile bundles the fault specs of every operation on both sides, plus
// the seed all injection streams derive from.
type Profile struct {
	Seed     int64
	Fetch    [2]Spec
	Next     [2]Spec
	Classify [2]Spec
	Truncate [2]Spec
	Disk     DiskSpec
}

// Uniform returns a profile injecting transient single-call faults at rate
// p on every fetch, next, and classify operation of both sides.
func Uniform(seed int64, p float64) *Profile {
	pr := &Profile{Seed: seed}
	spec := Spec{Prob: p, Burst: 1}
	for i := 0; i < 2; i++ {
		pr.Fetch[i] = spec
		pr.Next[i] = spec
		pr.Classify[i] = spec
	}
	return pr
}

// Zero reports whether the profile injects nothing: wrapping with a zero
// profile is provably transparent (see the join package's property test).
func (p *Profile) Zero() bool {
	for i := 0; i < 2; i++ {
		if p.Fetch[i].enabled() || p.Next[i].enabled() || p.Classify[i].enabled() || p.Truncate[i].enabled() {
			return false
		}
	}
	return !p.Disk.enabled()
}

// parseKeys lists every key Parse accepts, in documentation order. It feeds
// both the unknown-key error and FlagHelp so the two can never drift apart.
var parseKeys = []string{"seed", "rate", "fetch", "next", "classify", "trunc", "stall", "cost", "burst", "permanent", "dwrite", "dsync", "dcorrupt"}

// FlagHelp is the canonical help text for a -faults flag wired to Parse.
// Every CLI exposing the knob uses it verbatim, so the accepted vocabulary
// is documented identically everywhere.
var FlagHelp = "fault-injection profile: comma-separated key=value pairs with keys " +
	strings.Join(parseKeys, ", ") +
	", e.g. rate=0.05,seed=9,burst=2 (empty = none)"

// Parse builds a profile from a compact flag string of comma-separated
// key=value pairs:
//
//	rate=0.05,seed=9,burst=2,stall=0.01,trunc=0.02,cost=2,permanent=true
//
// rate sets the fault probability of fetch, next, and classify on both
// sides; fetch=, next=, and classify= override it per operation. trunc is
// the document-truncation probability, cost the injected latency per
// faulted or stalled call, and permanent switches faults from transient to
// permanent. dwrite, dsync, and dcorrupt set the durable-layer disk fault
// probabilities (write/rename failures, fsync failures, silent bit rot on
// read-back). An empty string returns nil (no injection).
func Parse(s string) (*Profile, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	p := &Profile{}
	var rate, fetch, next, classify, trunc, stall, cost float64
	var dwrite, dsync, dcorrupt float64
	fetch, next, classify = -1, -1, -1
	burst := 1
	permanent := false
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("faults: malformed profile entry %q (want key=value, keys: %s)", strings.TrimSpace(kv), strings.Join(parseKeys, ", "))
		}
		key, val := parts[0], parts[1]
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			rate, err = strconv.ParseFloat(val, 64)
		case "fetch":
			fetch, err = strconv.ParseFloat(val, 64)
		case "next":
			next, err = strconv.ParseFloat(val, 64)
		case "classify":
			classify, err = strconv.ParseFloat(val, 64)
		case "trunc":
			trunc, err = strconv.ParseFloat(val, 64)
		case "stall":
			stall, err = strconv.ParseFloat(val, 64)
		case "cost":
			cost, err = strconv.ParseFloat(val, 64)
		case "burst":
			burst, err = strconv.Atoi(val)
		case "permanent":
			permanent, err = strconv.ParseBool(val)
		case "dwrite":
			dwrite, err = strconv.ParseFloat(val, 64)
		case "dsync":
			dsync, err = strconv.ParseFloat(val, 64)
		case "dcorrupt":
			dcorrupt, err = strconv.ParseFloat(val, 64)
		default:
			return nil, fmt.Errorf("faults: unknown profile key %q (accepted keys: %s)", key, strings.Join(parseKeys, ", "))
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad value %q for profile key %q: %v", val, key, err)
		}
	}
	pick := func(override float64) float64 {
		if override >= 0 {
			return override
		}
		return rate
	}
	for i := 0; i < 2; i++ {
		p.Fetch[i] = Spec{Prob: pick(fetch), Burst: burst, Permanent: permanent, ExtraCost: cost, StallProb: stall}
		p.Next[i] = Spec{Prob: pick(next), Burst: burst, Permanent: permanent, ExtraCost: cost, StallProb: stall}
		p.Classify[i] = Spec{Prob: pick(classify), Burst: burst, Permanent: permanent, ExtraCost: cost, StallProb: stall}
		p.Truncate[i] = Spec{Prob: trunc, Burst: 1, ExtraCost: cost}
	}
	p.Disk = DiskSpec{
		Write:   Spec{Prob: dwrite, Burst: burst, Permanent: permanent},
		Sync:    Spec{Prob: dsync, Burst: burst, Permanent: permanent},
		Corrupt: Spec{Prob: dcorrupt, Burst: 1},
	}
	return p, nil
}

// Error is an injected substrate failure.
type Error struct {
	Op   Op
	Side int // 0 or 1
	Call int // position in the operation's injection stream
	// Transient failures succeed on retry once the burst clears; permanent
	// ones never do.
	Transient bool
}

// Error implements error.
func (e *Error) Error() string {
	kind := "transient"
	if !e.Transient {
		kind = "permanent"
	}
	return fmt.Sprintf("faults: injected %s %s failure (side %d, call %d)", kind, e.Op, e.Side+1, e.Call)
}

// Temporary implements the net-style temporariness convention the join
// executors' retry policy consults: only temporary failures are retried.
func (e *Error) Temporary() bool { return e.Transient }

// Counts is the observable injected behaviour of one wrapper so far.
type Counts struct {
	Faults    int     // calls that returned an injected error
	Stalls    int     // successful calls charged injected latency
	Truncated int     // documents returned with truncated text
	ExtraCost float64 // total injected cost-model time
}

// mix64 is the SplitMix64 finalizer — a cheap, well-distributed 64-bit
// mixer. Fault decisions hash through it instead of consuming a stateful
// RNG so that a stream's nth decision is a pure function of (seed, op,
// side, n).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed derives the injection-stream identity of (profile seed, op,
// side).
func streamSeed(seed int64, op Op, side int) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset
	for _, b := range []byte(op) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return mix64(uint64(seed)) ^ mix64(h+uint64(side)*0x9e3779b97f4a7c15)
}

// u01 maps (stream, call, salt) to a uniform draw in [0, 1).
func u01(stream uint64, call int, salt uint64) float64 {
	h := mix64(stream ^ mix64(uint64(call)*0x9e3779b97f4a7c15+salt))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// injector is one deterministic fault stream. The only mutable state is the
// call counter and the remaining burst length, both functions of the
// stream's own call history — never of other streams.
type injector struct {
	spec      Spec
	stream    uint64
	call      int
	burstLeft int
	counts    Counts
}

func newInjector(seed int64, op Op, side int, spec Spec) injector {
	return injector{spec: spec, stream: streamSeed(seed, op, side)}
}

// decision is the injector's verdict for one call.
type decision struct {
	fault     bool
	stall     bool
	permanent bool
	cost      float64
	call      int
}

// next advances the stream by one call and returns its verdict.
func (in *injector) next() decision {
	d := decision{call: in.call}
	n := in.call
	in.call++
	if in.burstLeft > 0 {
		in.burstLeft--
		d.fault = true
	} else if in.spec.Prob > 0 && u01(in.stream, n, 1) < in.spec.Prob {
		d.fault = true
		if in.spec.Burst > 1 {
			in.burstLeft = in.spec.Burst - 1
		}
	}
	if d.fault {
		d.permanent = in.spec.Permanent
		d.cost = in.spec.ExtraCost
		in.counts.Faults++
		in.counts.ExtraCost += d.cost
		return d
	}
	if in.spec.StallProb > 0 && u01(in.stream, n, 2) < in.spec.StallProb {
		d.stall = true
		d.cost = in.spec.ExtraCost
		in.counts.Stalls++
		in.counts.ExtraCost += d.cost
	}
	return d
}
