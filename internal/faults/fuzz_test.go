package faults

import (
	"testing"

	"joinopt/internal/retrieval"
)

// event is one observable injection outcome of a wrapper call.
type event struct {
	fault bool
	cost  float64
	msg   string
}

// harness drives the three wrapper kinds on both sides and records each
// stream's injection events.
type harness struct {
	dbs   [2]*FaultyDB
	strat [2]*FaultyStrategy
	class [2]*FaultyClassifier
	seq   [6][]event
}

func newHarness(p *Profile) *harness {
	h := &harness{}
	for side := 0; side < 2; side++ {
		h.dbs[side] = NewFaultyDB(testDB(1), p, side)
		h.strat[side] = NewFaultyStrategy(retrieval.NewScan(1<<30), p, side)
		h.class[side] = NewFaultyClassifier(constClassifier(true), p, side)
	}
	return h
}

// call drives one wrapper stream (0-5) and records its outcome.
func (h *harness) call(stream int) {
	side := stream % 2
	var ev event
	switch stream / 2 {
	case 0:
		doc, cost, err := h.dbs[side].Fetch(0)
		ev = event{fault: doc == nil, cost: cost}
		if err != nil {
			ev.msg = err.Error()
		}
	case 1:
		_, _, cost, err := h.strat[side].NextFallible()
		ev = event{fault: err != nil, cost: cost}
		if err != nil {
			ev.msg = err.Error()
		}
	case 2:
		_, cost, err := h.class[side].ClassifyFallible("text")
		ev = event{fault: err != nil, cost: cost}
		if err != nil {
			ev.msg = err.Error()
		}
	}
	h.seq[stream] = append(h.seq[stream], ev)
}

// FuzzInterleavingIndependence locks in the injector's core guarantee: with
// the same seed and profile, every wrapper stream produces the identical
// injected-fault sequence no matter how calls on different streams
// interleave. A global-RNG implementation would fail this immediately.
func FuzzInterleavingIndependence(f *testing.F) {
	f.Add(int64(1), 0.1, 1, []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(42), 0.5, 3, []byte{5, 5, 0, 1, 0, 2, 4})
	f.Add(int64(-7), 0.9, 2, []byte{})
	f.Fuzz(func(t *testing.T, seed int64, prob float64, burst int, pattern []byte) {
		if prob < 0 || prob > 1 {
			t.Skip()
		}
		p := Uniform(seed, prob)
		for i := 0; i < 2; i++ {
			p.Fetch[i].Burst = burst
			p.Next[i].Burst = burst
			p.Classify[i].Burst = burst
			p.Fetch[i].ExtraCost = 1.5
			p.Next[i].ExtraCost = 1.5
			p.Classify[i].ExtraCost = 1.5
		}

		// Reference run: each stream drained sequentially.
		calls := [6]int{}
		for _, b := range pattern {
			calls[int(b)%6]++
		}
		ref := newHarness(p)
		for stream := 0; stream < 6; stream++ {
			for i := 0; i < calls[stream]; i++ {
				ref.call(stream)
			}
		}

		// Interleaved run: same per-stream call counts, pattern order.
		inter := newHarness(p)
		for _, b := range pattern {
			inter.call(int(b) % 6)
		}

		for stream := 0; stream < 6; stream++ {
			a, b := ref.seq[stream], inter.seq[stream]
			if len(a) != len(b) {
				t.Fatalf("stream %d: %d vs %d events", stream, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("stream %d call %d: sequential %+v != interleaved %+v",
						stream, i, a[i], b[i])
				}
			}
		}

		// And a full replay reproduces the interleaved run exactly.
		replay := newHarness(p)
		for _, b := range pattern {
			replay.call(int(b) % 6)
		}
		for stream := 0; stream < 6; stream++ {
			for i := range inter.seq[stream] {
				if inter.seq[stream][i] != replay.seq[stream][i] {
					t.Fatalf("stream %d call %d: replay diverged", stream, i)
				}
			}
		}
	})
}

// TestUniformSides checks that streams with the same op on different sides
// are decorrelated: at rate 0.5 the two fetch streams must not fault in
// lockstep.
func TestUniformSides(t *testing.T) {
	p := Uniform(9, 0.5)
	a := newInjector(p.Seed, OpFetch, 0, p.Fetch[0])
	b := newInjector(p.Seed, OpFetch, 1, p.Fetch[1])
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.next().fault == b.next().fault {
			same++
		}
	}
	if same > n*3/4 || same < n/4 {
		t.Errorf("sides agree on %d/%d calls; streams look correlated", same, n)
	}
}
