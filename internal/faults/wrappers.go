package faults

import (
	"joinopt/internal/classifier"
	"joinopt/internal/corpus"
	"joinopt/internal/obs"
	"joinopt/internal/retrieval"
)

// obsHooks is the observability attachment shared by the fault wrappers:
// every injected fault is counted on the metrics registry and, when tracing,
// emitted as a fault.injected event. Timestamps come from the trace clock,
// which the workload layer binds to the live executor's cost-model time.
type obsHooks struct {
	tr *obs.Trace
	m  *obs.ExecMetrics
}

// SetObs attaches a trace and metrics bundle; both may be nil.
func (h *obsHooks) SetObs(tr *obs.Trace, m *obs.ExecMetrics) {
	h.tr = tr
	h.m = m
}

// fault records one injected fault of op on 0-based side.
func (h *obsHooks) fault(op Op, side int, d decision) {
	h.m.Fault(side)
	if h.tr.Enabled() {
		h.tr.Emit(obs.KindFault, side+1,
			map[string]any{"op": string(op), "call": d.call, "permanent": d.permanent})
	}
}

// FaultyDB wraps a text database as a fallible document source: fetches can
// fail (transiently or permanently), stall (succeed with injected latency),
// or return truncated text — a slow interface cutting a download short. It
// implements the join package's DocSource.
type FaultyDB struct {
	obsHooks
	db    *corpus.DB
	side  int
	fetch injector
	trunc injector
}

// NewFaultyDB wraps db as side's document source under p.
func NewFaultyDB(db *corpus.DB, p *Profile, side int) *FaultyDB {
	return &FaultyDB{
		db:    db,
		side:  side,
		fetch: newInjector(p.Seed, OpFetch, side, p.Fetch[side]),
		trunc: newInjector(p.Seed, OpTruncate, side, p.Truncate[side]),
	}
}

// Size returns the number of documents in the underlying database.
func (f *FaultyDB) Size() int { return f.db.Size() }

// Fetch resolves a document, charging injected latency as cost-model time.
// A truncated document is returned successfully with its text cut in half —
// degraded, not failed — so extraction sees fewer mentions.
func (f *FaultyDB) Fetch(id int) (*corpus.Document, float64, error) {
	d := f.fetch.next()
	if d.fault {
		f.fault(OpFetch, f.side, d)
		return nil, d.cost, &Error{Op: OpFetch, Side: f.side, Call: d.call, Transient: !d.permanent}
	}
	doc := f.db.Doc(id)
	cost := d.cost
	if t := f.trunc.next(); t.fault {
		cost += t.cost
		doc = truncated(doc)
		f.trunc.counts.Truncated++
		f.fault(OpTruncate, f.side, t)
	}
	return doc, cost, nil
}

// Counts reports the injected behaviour so far: fetch faults and stalls
// plus truncations, with their combined extra cost.
func (f *FaultyDB) Counts() Counts {
	c := f.fetch.counts
	c.Truncated = f.trunc.counts.Truncated
	c.ExtraCost += f.trunc.counts.ExtraCost
	return c
}

// truncated returns a copy of d with its text cut to the first half, on a
// rune boundary.
func truncated(d *corpus.Document) *corpus.Document {
	cut := len(d.Text) / 2
	for cut > 0 && cut < len(d.Text) && d.Text[cut]&0xC0 == 0x80 {
		cut--
	}
	cp := *d
	cp.Text = d.Text[:cut]
	return &cp
}

// FaultyStrategy wraps a retrieval strategy with transient (or permanent)
// Next failures and stalls. The plain Strategy methods delegate untouched;
// injection happens only on the fallible path the executors pull through,
// and an injected fault fires before the underlying strategy advances, so a
// retried pull resumes exactly where the stream left off.
type FaultyStrategy struct {
	obsHooks
	s    retrieval.Strategy
	side int
	inj  injector
}

// NewFaultyStrategy wraps s as side's retrieval stream under p.
func NewFaultyStrategy(s retrieval.Strategy, p *Profile, side int) *FaultyStrategy {
	return &FaultyStrategy{s: s, side: side, inj: newInjector(p.Seed, OpNext, side, p.Next[side])}
}

// Next implements retrieval.Strategy (fault-free delegate).
func (f *FaultyStrategy) Next() (int, bool) { return f.s.Next() }

// Peek implements retrieval.Peeker when the wrapped strategy supports it.
// Peeks are fault-free: they perform no accountable work and never consume
// the injection stream, so pipelined and sequential runs see identical
// fault sequences.
func (f *FaultyStrategy) Peek(k int) []int { return retrieval.PeekAhead(f.s, k) }

// Kind implements retrieval.Strategy.
func (f *FaultyStrategy) Kind() retrieval.Kind { return f.s.Kind() }

// Counts implements retrieval.Strategy.
func (f *FaultyStrategy) Counts() retrieval.Counts { return f.s.Counts() }

// NextFallible implements retrieval.Fallible.
func (f *FaultyStrategy) NextFallible() (int, bool, float64, error) {
	d := f.inj.next()
	if d.fault {
		f.fault(OpNext, f.side, d)
		return 0, false, d.cost, &Error{Op: OpNext, Side: f.side, Call: d.call, Transient: !d.permanent}
	}
	id, ok, cost, err := retrieval.Pull(f.s)
	return id, ok, cost + d.cost, err
}

// FaultCounts reports the injected behaviour so far.
func (f *FaultyStrategy) FaultCounts() Counts { return f.inj.counts }

// FaultyClassifier wraps a document classifier whose decisions can fail —
// a flaky model service. The plain Classify delegates untouched; the
// Filtered Scan surfaces ClassifyFallible errors as retrieval failures so
// they flow into the executors' retry policy instead of silently
// mislabelling documents.
type FaultyClassifier struct {
	obsHooks
	c    classifier.Classifier
	side int
	inj  injector
}

// NewFaultyClassifier wraps c as side's FS classifier under p.
func NewFaultyClassifier(c classifier.Classifier, p *Profile, side int) *FaultyClassifier {
	return &FaultyClassifier{c: c, side: side, inj: newInjector(p.Seed, OpClassify, side, p.Classify[side])}
}

// Classify implements classifier.Classifier (fault-free delegate).
func (f *FaultyClassifier) Classify(text string) bool { return f.c.Classify(text) }

// ClassifyFallible implements classifier.Fallible.
func (f *FaultyClassifier) ClassifyFallible(text string) (bool, float64, error) {
	d := f.inj.next()
	if d.fault {
		f.fault(OpClassify, f.side, d)
		return false, d.cost, &Error{Op: OpClassify, Side: f.side, Call: d.call, Transient: !d.permanent}
	}
	return f.c.Classify(text), d.cost, nil
}

// FaultCounts reports the injected behaviour so far.
func (f *FaultyClassifier) FaultCounts() Counts { return f.inj.counts }
