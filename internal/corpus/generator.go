package corpus

import (
	"fmt"

	"joinopt/internal/relation"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

// RelationSpec configures one extraction task hosted by a generated
// database.
type RelationSpec struct {
	// Vocab is the task's linguistic profile (slots, cue patterns, cue-count
	// distributions).
	Vocab textgen.TaskVocab

	// Schema names the extracted relation.
	Schema relation.Schema

	// GoodValues are the join-attribute values hosting good tuples; each
	// value receives a power-law number of distinct good tuples, each
	// expressed in exactly one document (the paper's "each attribute value
	// appears only once in each document" simplification).
	GoodValues []string

	// BadValues host deceptive mentions producing bad tuples. A value may
	// appear in both GoodValues and BadValues (like "Microsoft" in
	// Figure 1 of the paper).
	BadValues []string

	// GoodSeconds and BadSeconds are disjoint pools for the second
	// attribute, keeping bad tuples distinct from good ones.
	GoodSeconds []string
	BadSeconds  []string

	// GoodFreq and BadFreq are the value-frequency distributions g(a), b(a).
	GoodFreq *stat.PowerLaw
	BadFreq  *stat.PowerLaw

	// NumGoodDocs and NumBadDocs are |Dg| and |Db| targets for this task.
	NumGoodDocs int
	NumBadDocs  int

	// BadInGoodRate is the probability that a bad mention is planted in a
	// good document rather than a bad one (bad occurrences can be extracted
	// from both good and bad documents, §V-C).
	BadInGoodRate float64

	// Outliers are additional bad values planted with high frequency
	// (OutlierFreq documents each) whose mentions always realize a single
	// cue term, so standard knob settings never extract them. These
	// reproduce the paper's bad-tuple overestimation cases ("CNN Center",
	// §VII).
	Outliers    []string
	OutlierFreq int
}

// Config configures a synthetic text database.
type Config struct {
	Name      string
	NumDocs   int
	Seed      int64
	Relations []RelationSpec

	// CasualRate is the probability that a document with no task mentions
	// name-drops one or two entities from CasualPool with no relation
	// context. Casual mentions make keyword queries imperfect (P(q) < 1):
	// query-based retrieval pays for junk documents that yield no tuples.
	CasualRate float64
	CasualPool []string
}

// pendingMention is a mention waiting for document assignment.
type pendingMention struct {
	m       Mention
	outlier bool
}

// Generate builds a database from cfg. It validates the configuration and
// returns an error describing the first violated constraint.
func Generate(cfg Config) (*DB, error) {
	if cfg.NumDocs <= 0 {
		return nil, fmt.Errorf("corpus: NumDocs must be positive, got %d", cfg.NumDocs)
	}
	if len(cfg.Relations) == 0 {
		return nil, fmt.Errorf("corpus: at least one relation spec required")
	}
	rng := stat.NewRNG(cfg.Seed)

	db := &DB{
		Name:  cfg.Name,
		Docs:  make([]*Document, cfg.NumDocs),
		golds: map[string]*relation.Gold{},
		stats: map[string]*TaskStats{},
	}
	for i := range db.Docs {
		db.Docs[i] = &Document{ID: i}
	}
	// sentences[i] collects the rendered sentences of document i.
	sentences := make([][]textgen.Sentence, cfg.NumDocs)

	for ri := range cfg.Relations {
		spec := &cfg.Relations[ri]
		if err := validateSpec(spec, cfg.NumDocs); err != nil {
			return nil, err
		}
		gold := relation.NewGold(spec.Schema)
		db.golds[spec.Vocab.Task] = gold
		r := rng.Fork()

		good, bad, err := buildMentions(r, spec, gold)
		if err != nil {
			return nil, err
		}
		if err := placeMentions(r, spec, cfg.NumDocs, good, bad, db, sentences); err != nil {
			return nil, err
		}
	}

	// Filler, casual mentions, and rendering.
	renderDocs(rng, cfg, db, sentences)

	for task := range db.golds {
		db.stats[task] = computeStats(task, db.Docs)
	}
	return db, nil
}

func validateSpec(spec *RelationSpec, numDocs int) error {
	t := spec.Vocab.Task
	if t == "" {
		return fmt.Errorf("corpus: relation spec missing task vocabulary")
	}
	if spec.NumGoodDocs <= 0 || spec.NumBadDocs < 0 {
		return fmt.Errorf("corpus: task %s: invalid doc counts good=%d bad=%d", t, spec.NumGoodDocs, spec.NumBadDocs)
	}
	if spec.NumGoodDocs+spec.NumBadDocs > numDocs {
		return fmt.Errorf("corpus: task %s: good+bad docs %d exceed corpus size %d",
			t, spec.NumGoodDocs+spec.NumBadDocs, numDocs)
	}
	if len(spec.GoodValues) == 0 {
		return fmt.Errorf("corpus: task %s: no good values", t)
	}
	if spec.GoodFreq == nil || (spec.BadFreq == nil && len(spec.BadValues) > 0) {
		return fmt.Errorf("corpus: task %s: missing frequency distributions", t)
	}
	if len(spec.GoodSeconds) == 0 || (len(spec.BadValues)+len(spec.Outliers) > 0 && len(spec.BadSeconds) == 0) {
		return fmt.Errorf("corpus: task %s: missing second-attribute pools", t)
	}
	return nil
}

// buildMentions samples tuple frequencies, registers gold tuples, and
// returns the pending good and bad mentions.
func buildMentions(r *stat.RNG, spec *RelationSpec, gold *relation.Gold) (good, bad []pendingMention, err error) {
	task := spec.Vocab.Task
	for _, a := range spec.GoodValues {
		f := spec.GoodFreq.Sample(r)
		if f > spec.NumGoodDocs {
			f = spec.NumGoodDocs
		}
		if f > len(spec.GoodSeconds) {
			f = len(spec.GoodSeconds)
		}
		seconds := textgen.SampleDistinct(r, spec.GoodSeconds, f)
		for _, b := range seconds {
			if b == a {
				continue // self-pair (possible for company-company tasks)
			}
			tup := relation.Tuple{A1: a, A2: b}
			gold.AddGood(tup)
			good = append(good, pendingMention{m: Mention{Task: task, Tuple: tup, Good: true}})
		}
	}
	if len(good) < spec.NumGoodDocs {
		return nil, nil, fmt.Errorf("corpus: task %s: %d good mentions cannot cover %d good docs; increase values or frequency",
			task, len(good), spec.NumGoodDocs)
	}
	addBad := func(a string, f int, outlier bool) {
		if f > len(spec.BadSeconds) {
			f = len(spec.BadSeconds)
		}
		seconds := textgen.SampleDistinct(r, spec.BadSeconds, f)
		for _, b := range seconds {
			if b == a {
				continue
			}
			tup := relation.Tuple{A1: a, A2: b}
			gold.AddBad(tup)
			bad = append(bad, pendingMention{m: Mention{Task: task, Tuple: tup, Good: false}, outlier: outlier})
		}
	}
	for _, a := range spec.BadValues {
		addBad(a, spec.BadFreq.Sample(r), false)
	}
	for _, a := range spec.Outliers {
		f := spec.OutlierFreq
		if f <= 0 {
			f = 1
		}
		addBad(a, f, true)
	}
	if spec.NumBadDocs > 0 && len(bad) < spec.NumBadDocs {
		return nil, nil, fmt.Errorf("corpus: task %s: %d bad mentions cannot cover %d bad docs",
			task, len(bad), spec.NumBadDocs)
	}
	return good, bad, nil
}

// placeMentions assigns mentions to documents and renders their sentences.
// Good docs each receive at least one good mention; bad docs receive only
// bad mentions; extra bad mentions spill into good docs at BadInGoodRate.
func placeMentions(r *stat.RNG, spec *RelationSpec, numDocs int, good, bad []pendingMention, db *DB, sentences [][]textgen.Sentence) error {
	perm := r.Perm(numDocs)
	goodDocs := perm[:spec.NumGoodDocs]
	badDocs := perm[spec.NumGoodDocs : spec.NumGoodDocs+spec.NumBadDocs]

	// valueInDoc enforces the one-occurrence-per-value-per-document
	// simplification the models rely on.
	valueInDoc := map[int]map[string]bool{}
	place := func(docID int, pm pendingMention) bool {
		vals := valueInDoc[docID]
		if vals == nil {
			vals = map[string]bool{}
			valueInDoc[docID] = vals
		}
		if vals[pm.m.Tuple.A1] {
			return false
		}
		vals[pm.m.Tuple.A1] = true
		doc := db.Docs[docID]
		doc.Mentions = append(doc.Mentions, pm.m)
		var sent textgen.Sentence
		if pm.outlier {
			sent = textgen.MentionSentenceK(r, spec.Vocab, pm.m.Tuple.A1, pm.m.Tuple.A2, 1)
		} else {
			sent = textgen.MentionSentence(r, spec.Vocab, pm.m.Tuple.A1, pm.m.Tuple.A2, pm.m.Good)
		}
		sentences[docID] = append(sentences[docID], sent)
		return true
	}
	placeRandom := func(pm pendingMention, pool []int) {
		for attempt := 0; attempt < 50; attempt++ {
			if place(pool[r.Intn(len(pool))], pm) {
				return
			}
		}
		// Extremely unlikely with sane configurations; drop the mention
		// rather than violate the one-per-document invariant. Stats are
		// computed from placed mentions, so models stay consistent.
	}

	r.Shuffle(len(good), func(i, j int) { good[i], good[j] = good[j], good[i] })
	for i, pm := range good {
		if i < len(goodDocs) {
			place(goodDocs[i], pm)
		} else {
			placeRandom(pm, goodDocs)
		}
	}
	r.Shuffle(len(bad), func(i, j int) { bad[i], bad[j] = bad[j], bad[i] })
	for i, pm := range bad {
		switch {
		case i < len(badDocs):
			place(badDocs[i], pm)
		case len(badDocs) > 0 && !r.Bernoulli(spec.BadInGoodRate):
			placeRandom(pm, badDocs)
		default:
			placeRandom(pm, goodDocs)
		}
	}
	return nil
}

// renderDocs adds filler sentences (and casual mentions to all-task-empty
// documents), shuffles sentence order, and renders document text.
func renderDocs(rng *stat.RNG, cfg Config, db *DB, sentences [][]textgen.Sentence) {
	r := rng.Fork()
	for i, doc := range db.Docs {
		s := sentences[i]
		if len(doc.Mentions) == 0 && len(cfg.CasualPool) > 0 && r.Bernoulli(cfg.CasualRate) {
			n := 1 + r.Intn(2)
			for c := 0; c < n; c++ {
				s = append(s, textgen.CasualSentence(r, cfg.CasualPool[r.Intn(len(cfg.CasualPool))]))
			}
		}
		nFiller := 2 + r.Intn(3)
		for f := 0; f < nFiller; f++ {
			s = append(s, textgen.FillerSentence(r))
		}
		r.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
		doc.Text = textgen.Render(s)
	}
}
