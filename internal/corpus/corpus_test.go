package corpus

import (
	"bytes"
	"strings"
	"testing"

	"joinopt/internal/relation"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

func testSpec(task string) RelationSpec {
	vocab, _ := textgen.VocabByTask(task)
	companies := textgen.NewGazetteer(300, 0, 0).Companies
	locations := textgen.NewGazetteer(0, 0, 120).Locations
	persons := textgen.NewGazetteer(0, 240, 0).Persons
	spec := RelationSpec{
		Vocab:         vocab,
		Schema:        relation.Schema{Name: task, Attr1: "Company", Attr2: "X"},
		GoodValues:    companies[:120],
		BadValues:     companies[100:160], // overlaps good by 20
		GoodFreq:      stat.MustPowerLaw(2.0, 10),
		BadFreq:       stat.MustPowerLaw(2.2, 8),
		NumGoodDocs:   120,
		NumBadDocs:    50,
		BadInGoodRate: 0.3,
		Outliers:      companies[290:292],
		OutlierFreq:   15,
	}
	switch vocab.Slot2 {
	case textgen.Location:
		spec.GoodSeconds = locations[:60]
		spec.BadSeconds = locations[60:120]
	case textgen.Person:
		spec.GoodSeconds = persons[:120]
		spec.BadSeconds = persons[120:240]
	default:
		spec.GoodSeconds = companies[160:230]
		spec.BadSeconds = companies[230:290]
	}
	return spec
}

func testDB(t *testing.T, seed int64) *DB {
	t.Helper()
	cfg := Config{
		Name:       "testdb",
		NumDocs:    600,
		Seed:       seed,
		Relations:  []RelationSpec{testSpec("HQ")},
		CasualRate: 0.3,
		CasualPool: textgen.NewGazetteer(300, 0, 0).Companies,
	}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateBasicInvariants(t *testing.T) {
	db := testDB(t, 1)
	if db.Size() != 600 {
		t.Fatalf("size %d", db.Size())
	}
	stats := db.Stats("HQ")
	if stats == nil {
		t.Fatal("missing stats")
	}
	if stats.NumGood != 120 {
		t.Errorf("|Dg| = %d, want 120", stats.NumGood)
	}
	if stats.NumBad != 50 {
		t.Errorf("|Db| = %d, want 50", stats.NumBad)
	}
	if stats.NumDocs() != 600 {
		t.Errorf("class partition covers %d docs", stats.NumDocs())
	}
}

func TestGenerateClassesMatchMentions(t *testing.T) {
	db := testDB(t, 2)
	stats := db.Stats("HQ")
	for i, d := range db.Docs {
		hasGood, hasBad := false, false
		for _, m := range d.Mentions {
			if m.Good {
				hasGood = true
			} else {
				hasBad = true
			}
		}
		want := Empty
		if hasGood {
			want = Good
		} else if hasBad {
			want = Bad
		}
		if stats.Class[i] != want {
			t.Fatalf("doc %d class %v, want %v", i, stats.Class[i], want)
		}
	}
}

func TestGenerateOneValuePerDocument(t *testing.T) {
	db := testDB(t, 3)
	for _, d := range db.Docs {
		seen := map[string]bool{}
		for _, m := range d.Mentions {
			if seen[m.Tuple.A1] {
				t.Fatalf("doc %d mentions value %q twice", d.ID, m.Tuple.A1)
			}
			seen[m.Tuple.A1] = true
		}
	}
}

func TestGenerateGoldConsistency(t *testing.T) {
	db := testDB(t, 4)
	gold := db.Gold("HQ")
	for _, d := range db.Docs {
		for _, m := range d.Mentions {
			if m.Good != gold.IsGood(m.Tuple) {
				t.Fatalf("mention %v goodness %v disagrees with gold", m.Tuple, m.Good)
			}
			if !gold.Known(m.Tuple) {
				t.Fatalf("mention %v not in gold", m.Tuple)
			}
		}
	}
	// Good and bad tuples must be disjoint (distinct second pools).
	for tup := range gold.Good {
		if gold.Bad[tup] {
			t.Fatalf("tuple %v in both gold sets", tup)
		}
	}
}

func TestGenerateFrequenciesMatchMentions(t *testing.T) {
	db := testDB(t, 5)
	stats := db.Stats("HQ")
	goodCount := map[string]int{}
	for _, d := range db.Docs {
		for _, m := range d.Mentions {
			if m.Good {
				goodCount[m.Tuple.A1]++
			}
		}
	}
	for a, f := range stats.GoodFreq {
		if goodCount[a] != f {
			t.Fatalf("g(%q) = %d but %d mentions", a, f, goodCount[a])
		}
	}
}

func TestGenerateOutliersAreFrequentAndBad(t *testing.T) {
	db := testDB(t, 6)
	stats := db.Stats("HQ")
	companies := textgen.NewGazetteer(300, 0, 0).Companies
	for _, out := range companies[290:292] {
		f := stats.BadFreq[out]
		if f < 8 {
			t.Errorf("outlier %q bad frequency %d, want near 15", out, f)
		}
		if stats.GoodFreq[out] != 0 {
			t.Errorf("outlier %q has good occurrences", out)
		}
	}
}

func TestGenerateTextContainsMentionEntities(t *testing.T) {
	db := testDB(t, 7)
	for _, d := range db.Docs {
		for _, m := range d.Mentions {
			if !strings.Contains(d.Text, m.Tuple.A1) || !strings.Contains(d.Text, m.Tuple.A2) {
				t.Fatalf("doc %d text missing mention entities %v", d.ID, m.Tuple)
			}
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	a := testDB(t, 42)
	b := testDB(t, 42)
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text {
			t.Fatal("same seed must produce identical corpora")
		}
	}
	c := testDB(t, 43)
	same := true
	for i := range a.Docs {
		if a.Docs[i].Text != c.Docs[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different corpora")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumDocs: 0}); err == nil {
		t.Error("expected error for zero docs")
	}
	if _, err := Generate(Config{NumDocs: 10}); err == nil {
		t.Error("expected error for no relations")
	}
	spec := testSpec("HQ")
	spec.NumGoodDocs = 1000
	if _, err := Generate(Config{NumDocs: 600, Relations: []RelationSpec{spec}}); err == nil {
		t.Error("expected error when good+bad docs exceed corpus")
	}
	spec2 := testSpec("HQ")
	spec2.GoodValues = spec2.GoodValues[:2] // far too few mentions for 120 good docs
	if _, err := Generate(Config{NumDocs: 600, Relations: []RelationSpec{spec2}}); err == nil {
		t.Error("expected error when mentions cannot cover good docs")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t, 8)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != db.Size() || back.Name != db.Name {
		t.Fatal("size or name mismatch after round trip")
	}
	s1, s2 := db.Stats("HQ"), back.Stats("HQ")
	if s1.NumGood != s2.NumGood || s1.NumBad != s2.NumBad || s1.NumEmpty != s2.NumEmpty {
		t.Errorf("stats mismatch: %+v vs %+v", s1, s2)
	}
	if len(db.Gold("HQ").Good) != len(back.Gold("HQ").Good) {
		t.Error("gold good set size mismatch")
	}
	for i := range db.Docs {
		if db.Docs[i].Text != back.Docs[i].Text {
			t.Fatal("text mismatch after round trip")
		}
	}
}

func TestFreqHistogram(t *testing.T) {
	db := testDB(t, 9)
	stats := db.Stats("HQ")
	hist := stats.FreqHistogram(true)
	var total int
	for _, c := range hist {
		total += c
	}
	if total != stats.GoodValues() {
		t.Errorf("histogram covers %d values, want %d", total, stats.GoodValues())
	}
	if len(hist) != stats.MaxGoodFreq() {
		t.Errorf("histogram length %d, want max freq %d", len(hist), stats.MaxGoodFreq())
	}
}

func TestTwoRelationsInOneDB(t *testing.T) {
	cfg := Config{
		Name:      "dual",
		NumDocs:   900,
		Seed:      11,
		Relations: []RelationSpec{testSpec("HQ"), testSpec("EX")},
	}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := db.Tasks()
	if len(tasks) != 2 || tasks[0] != "EX" || tasks[1] != "HQ" {
		t.Fatalf("tasks %v", tasks)
	}
	if db.Stats("HQ").NumGood != 120 || db.Stats("EX").NumGood != 120 {
		t.Error("per-task good doc targets not met")
	}
}

func TestDocClassString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" || Empty.String() != "empty" {
		t.Error("class names wrong")
	}
}

func TestGenerateRandomConfigsInvariants(t *testing.T) {
	// Property-style sweep: across random small configurations the
	// generator either errors cleanly or upholds its invariants.
	companies := textgen.NewGazetteer(200, 0, 0).Companies
	locations := textgen.NewGazetteer(0, 0, 100).Locations
	r := stat.NewRNG(77)
	built := 0
	for trial := 0; trial < 25; trial++ {
		numDocs := 150 + r.Intn(400)
		nVals := 20 + r.Intn(80)
		nGoodDocs := 10 + r.Intn(nVals)
		nBadDocs := r.Intn(30)
		spec := RelationSpec{
			Vocab:         textgen.VocabHQ,
			Schema:        relation.Schema{Name: "HQ", Attr1: "Company", Attr2: "Location"},
			GoodValues:    companies[:nVals],
			BadValues:     companies[nVals : nVals+20+r.Intn(40)],
			GoodSeconds:   locations[:50],
			BadSeconds:    locations[50:100],
			GoodFreq:      stat.MustPowerLaw(1.6+r.Float64(), 8),
			BadFreq:       stat.MustPowerLaw(2.0, 6),
			NumGoodDocs:   nGoodDocs,
			NumBadDocs:    nBadDocs,
			BadInGoodRate: r.Float64() * 0.5,
		}
		db, err := Generate(Config{Name: "rnd", NumDocs: numDocs, Seed: int64(trial), Relations: []RelationSpec{spec}})
		if err != nil {
			continue // infeasible configuration rejected cleanly
		}
		built++
		stats := db.Stats("HQ")
		if stats.NumGood != nGoodDocs || stats.NumBad != nBadDocs {
			t.Fatalf("trial %d: partition %d/%d, want %d/%d", trial, stats.NumGood, stats.NumBad, nGoodDocs, nBadDocs)
		}
		if stats.NumDocs() != numDocs {
			t.Fatalf("trial %d: classes cover %d of %d docs", trial, stats.NumDocs(), numDocs)
		}
		for _, d := range db.Docs {
			seen := map[string]bool{}
			for _, m := range d.Mentions {
				if seen[m.Tuple.A1] {
					t.Fatalf("trial %d: value repeated in doc %d", trial, d.ID)
				}
				seen[m.Tuple.A1] = true
			}
		}
	}
	if built < 10 {
		t.Fatalf("only %d/25 random configurations were buildable; generator too brittle", built)
	}
}

func TestLoadRejectsCorruptJSON(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	db := testDB(t, 15)
	path := t.TempDir() + "/db.json"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != db.Size() {
		t.Error("file round trip size mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
}
