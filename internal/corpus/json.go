package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"joinopt/internal/relation"
)

// jsonDB is the serialized form of a database.
type jsonDB struct {
	Name  string         `json:"name"`
	Docs  []jsonDocument `json:"docs"`
	Golds []jsonGold     `json:"golds"`
}

type jsonDocument struct {
	ID       int           `json:"id"`
	Text     string        `json:"text"`
	Mentions []jsonMention `json:"mentions,omitempty"`
}

type jsonMention struct {
	Task string `json:"task"`
	A1   string `json:"a1"`
	A2   string `json:"a2"`
	Good bool   `json:"good"`
}

type jsonGold struct {
	Task   string      `json:"task"`
	Schema jsonSchema  `json:"schema"`
	Good   [][2]string `json:"good"`
	Bad    [][2]string `json:"bad"`
}

type jsonSchema struct {
	Name  string `json:"name"`
	Attr1 string `json:"attr1"`
	Attr2 string `json:"attr2"`
}

// Save writes the database (documents, annotations, and gold sets) as JSON.
func (db *DB) Save(w io.Writer) error {
	out := jsonDB{Name: db.Name}
	for _, d := range db.Docs {
		jd := jsonDocument{ID: d.ID, Text: d.Text}
		for _, m := range d.Mentions {
			jd.Mentions = append(jd.Mentions, jsonMention{Task: m.Task, A1: m.Tuple.A1, A2: m.Tuple.A2, Good: m.Good})
		}
		out.Docs = append(out.Docs, jd)
	}
	for _, task := range db.Tasks() {
		g := db.golds[task]
		jg := jsonGold{
			Task:   task,
			Schema: jsonSchema{Name: g.Schema.Name, Attr1: g.Schema.Attr1, Attr2: g.Schema.Attr2},
		}
		for t := range g.Good {
			jg.Good = append(jg.Good, [2]string{t.A1, t.A2})
		}
		for t := range g.Bad {
			jg.Bad = append(jg.Bad, [2]string{t.A1, t.A2})
		}
		out.Golds = append(out.Golds, jg)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a database previously written by Save and recomputes task
// statistics.
func Load(r io.Reader) (*DB, error) {
	var in jsonDB
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("corpus: decoding database: %w", err)
	}
	db := &DB{
		Name:  in.Name,
		golds: map[string]*relation.Gold{},
		stats: map[string]*TaskStats{},
	}
	db.Docs = make([]*Document, len(in.Docs))
	for i, jd := range in.Docs {
		d := &Document{ID: jd.ID, Text: jd.Text}
		for _, m := range jd.Mentions {
			d.Mentions = append(d.Mentions, Mention{
				Task:  m.Task,
				Tuple: relation.Tuple{A1: m.A1, A2: m.A2},
				Good:  m.Good,
			})
		}
		db.Docs[i] = d
	}
	for _, jg := range in.Golds {
		g := relation.NewGold(relation.Schema{Name: jg.Schema.Name, Attr1: jg.Schema.Attr1, Attr2: jg.Schema.Attr2})
		for _, t := range jg.Good {
			g.AddGood(relation.Tuple{A1: t[0], A2: t[1]})
		}
		for _, t := range jg.Bad {
			g.AddBad(relation.Tuple{A1: t[0], A2: t[1]})
		}
		db.golds[jg.Task] = g
		db.stats[jg.Task] = computeStats(jg.Task, db.Docs)
	}
	return db, nil
}

// SaveFile writes the database to path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a database from path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
