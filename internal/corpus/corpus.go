// Package corpus implements the text-database substrate: documents carrying
// gold mention annotations, per-task good/bad/empty document partitions, and
// a synthetic corpus generator with power-law attribute-value frequencies.
//
// The paper evaluates on newspaper archives (NYT95/NYT96/WSJ). This package
// substitutes synthetic databases whose *distributional* properties — the
// only corpus properties the paper's models consume — are controlled
// exactly: |Dg|, |Db|, |De| per extraction task, power-law value-frequency
// distributions, value overlap across databases, and deceptive contexts that
// make extraction imprecise.
package corpus

import (
	"fmt"
	"sort"

	"joinopt/internal/relation"
	"joinopt/internal/textgen"
)

// DocClass partitions documents with respect to one extraction task
// (§III-B): a document is good if the task's IE system can extract at least
// one good tuple from it, bad if it can extract only bad tuples, and empty
// if it can extract no tuples at all.
type DocClass int

// Document classes.
const (
	Empty DocClass = iota
	Good
	Bad
)

// String names the document class.
func (c DocClass) String() string {
	switch c {
	case Good:
		return "good"
	case Bad:
		return "bad"
	default:
		return "empty"
	}
}

// Mention is a gold annotation: the document expresses Tuple for Task, and
// the expression is either correct (Good) or deceptive. Mentions exist for
// evaluation and model-parameter measurement only; the extraction engine
// works from Text.
type Mention struct {
	Task  string
	Tuple relation.Tuple
	Good  bool
}

// Document is one text database entry.
type Document struct {
	ID       int
	Text     string
	Mentions []Mention
}

// DB is a text database: an ordered document collection with per-task gold
// sets and per-task statistics.
type DB struct {
	Name string
	Docs []*Document

	golds map[string]*relation.Gold
	stats map[string]*TaskStats
}

// Size returns the number of documents, |D|.
func (db *DB) Size() int { return len(db.Docs) }

// Doc returns the document with the given ID (IDs are dense, 0-based).
func (db *DB) Doc(id int) *Document { return db.Docs[id] }

// Gold returns the gold set for a task hosted by this database, or nil when
// the task is unknown.
func (db *DB) Gold(task string) *relation.Gold { return db.golds[task] }

// Stats returns the true task statistics (computed at generation time), or
// nil when the task is unknown. The analytical-model experiments feed these
// to the models as the "perfect knowledge" parameters (§VII); the optimizer
// instead estimates them on the fly.
func (db *DB) Stats(task string) *TaskStats { return db.stats[task] }

// Tasks lists the extraction tasks hosted by this database in sorted order.
func (db *DB) Tasks() []string {
	out := make([]string, 0, len(db.golds))
	for t := range db.golds {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TaskStats are the database-specific parameters of one extraction task
// (Table I of the paper), measured exactly by the generator.
type TaskStats struct {
	Task string

	NumGood  int // |Dg|
	NumBad   int // |Db|
	NumEmpty int // |De|

	Class []DocClass // per-document class, indexed by document ID

	GoodFreq map[string]int // g(a): good occurrences of join value a
	BadFreq  map[string]int // b(a): bad occurrences of join value a
}

// NumDocs returns |D| = |Dg| + |Db| + |De|.
func (s *TaskStats) NumDocs() int { return s.NumGood + s.NumBad + s.NumEmpty }

// GoodValues returns |Ag|: the number of distinct join values with good
// occurrences.
func (s *TaskStats) GoodValues() int { return len(s.GoodFreq) }

// BadValues returns |Ab|: the number of distinct join values with bad
// occurrences.
func (s *TaskStats) BadValues() int { return len(s.BadFreq) }

// MaxGoodFreq returns the largest g(a), bounding the frequency support.
func (s *TaskStats) MaxGoodFreq() int {
	m := 0
	for _, f := range s.GoodFreq {
		if f > m {
			m = f
		}
	}
	return m
}

// MaxBadFreq returns the largest b(a).
func (s *TaskStats) MaxBadFreq() int {
	m := 0
	for _, f := range s.BadFreq {
		if f > m {
			m = f
		}
	}
	return m
}

// FreqHistogram returns counts[k-1] = number of values with frequency k, for
// the good or bad value population.
func (s *TaskStats) FreqHistogram(good bool) []int {
	src := s.GoodFreq
	max := s.MaxGoodFreq()
	if !good {
		src = s.BadFreq
		max = s.MaxBadFreq()
	}
	if max == 0 {
		return nil
	}
	out := make([]int, max)
	for _, f := range src {
		out[f-1]++
	}
	return out
}

// computeStats derives TaskStats by scanning the documents' mention
// annotations for one task.
func computeStats(task string, docs []*Document) *TaskStats {
	s := &TaskStats{
		Task:     task,
		Class:    make([]DocClass, len(docs)),
		GoodFreq: map[string]int{},
		BadFreq:  map[string]int{},
	}
	for i, d := range docs {
		hasGood, hasBad := false, false
		for _, m := range d.Mentions {
			if m.Task != task {
				continue
			}
			if m.Good {
				hasGood = true
				s.GoodFreq[m.Tuple.A1]++
			} else {
				hasBad = true
				s.BadFreq[m.Tuple.A1]++
			}
		}
		switch {
		case hasGood:
			s.Class[i] = Good
			s.NumGood++
		case hasBad:
			s.Class[i] = Bad
			s.NumBad++
		default:
			s.Class[i] = Empty
			s.NumEmpty++
		}
	}
	return s
}

// VocabForTask resolves the standard task vocabulary, wrapping the textgen
// lookup with an error.
func VocabForTask(task string) (textgen.TaskVocab, error) {
	v, ok := textgen.VocabByTask(task)
	if !ok {
		return textgen.TaskVocab{}, fmt.Errorf("corpus: unknown task %q", task)
	}
	return v, nil
}
