package model

import (
	"math"
	"testing"
	"testing/quick"

	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/stat"
)

func simpleParams() *RelationParams {
	return &RelationParams{
		D: 1000, Dg: 150, Db: 80,
		Ag: 100, Ab: 60,
		GoodFreq:      []float64{0.5, 0.3, 0.2},
		BadFreq:       []float64{0.7, 0.3},
		TP:            0.8,
		FP:            0.4,
		BadInGoodFrac: 0.3,
		Ctp:           0.85, Cfp: 0.2,
		AQG: []QueryParam{
			{Hits: 60, GoodHits: 40, BadHits: 10},
			{Hits: 50, GoodHits: 30, BadHits: 10},
		},
		TopK: 20, QPrec: 0.8,
		ValuesPerDoc: []float64{0.2, 0.5, 0.3},
	}
}

func TestValidate(t *testing.T) {
	p := simpleParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Dg = 0
	if bad.Validate() == nil {
		t.Error("expected error for Dg=0")
	}
	bad = *p
	bad.TP = 1.5
	if bad.Validate() == nil {
		t.Error("expected error for tp>1")
	}
	bad = *p
	bad.GoodFreq = nil
	if bad.Validate() == nil {
		t.Error("expected error for missing frequency distribution")
	}
}

func TestProcessedAfterScan(t *testing.T) {
	p := simpleParams()
	proc, err := p.ProcessedAfter(retrieval.SC, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proc.Jg-75) > 1e-9 || math.Abs(proc.Jb-40) > 1e-9 {
		t.Errorf("scan composition %+v, want Jg=75 Jb=40", proc)
	}
	if proc.ProcTotal != 500 || proc.Retrieved != 500 {
		t.Errorf("scan processes everything retrieved: %+v", proc)
	}
	// Beyond |D| clamps.
	proc, _ = p.ProcessedAfter(retrieval.SC, 5000)
	if proc.Jg != 150 {
		t.Errorf("clamped Jg %v", proc.Jg)
	}
}

func TestProcessedAfterFilteredScan(t *testing.T) {
	p := simpleParams()
	proc, err := p.ProcessedAfter(retrieval.FS, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proc.Jg-150*0.85) > 1e-9 {
		t.Errorf("FS Jg %v, want 127.5", proc.Jg)
	}
	if math.Abs(proc.Jb-80*0.2) > 1e-9 {
		t.Errorf("FS Jb %v, want 16", proc.Jb)
	}
	wantProc := 150*0.85 + 80*0.2 + 770*0.2
	if math.Abs(proc.ProcTotal-wantProc) > 1e-9 {
		t.Errorf("FS processed %v, want %v", proc.ProcTotal, wantProc)
	}
	if math.Abs(proc.Filtered-(1000-wantProc)) > 1e-9 {
		t.Errorf("FS filtered %v", proc.Filtered)
	}
}

func TestProcessedAfterAQG(t *testing.T) {
	p := simpleParams()
	proc, err := p.ProcessedAfter(retrieval.AQG, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJg := 150 * (1 - (1-40.0/150)*(1-30.0/150))
	if math.Abs(proc.Jg-wantJg) > 1e-9 {
		t.Errorf("AQG Jg %v, want %v (Equation 2)", proc.Jg, wantJg)
	}
	if proc.Queries != 2 {
		t.Errorf("queries %v", proc.Queries)
	}
	// More queries than available clamps to the learned set.
	proc2, _ := p.ProcessedAfter(retrieval.AQG, 10)
	if proc2.Queries != 2 {
		t.Errorf("queries beyond learned set: %v", proc2.Queries)
	}
	empty := *p
	empty.AQG = nil
	if _, err := empty.ProcessedAfter(retrieval.AQG, 1); err == nil {
		t.Error("expected error without AQG parameters")
	}
	if _, err := p.ProcessedAfter(retrieval.Kind("nope"), 1); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestCoverageMonotoneInEffort(t *testing.T) {
	p := simpleParams()
	prev := -1.0
	for _, dr := range []int{0, 100, 400, 1000} {
		proc, err := p.ProcessedAfter(retrieval.SC, dr)
		if err != nil {
			t.Fatal(err)
		}
		cov := p.CoverageOf(proc)
		if cov.CG < prev {
			t.Fatalf("coverage decreased at %d docs", dr)
		}
		if cov.CG < 0 || cov.CG > 1 || cov.CB < 0 || cov.CB > 1 {
			t.Fatalf("coverage out of range: %+v", cov)
		}
		prev = cov.CG
	}
	// Full scan coverage = tp.
	proc, _ := p.ProcessedAfter(retrieval.SC, 1000)
	cov := p.CoverageOf(proc)
	if math.Abs(cov.CG-p.TP) > 1e-9 {
		t.Errorf("full-scan CG %v, want tp %v", cov.CG, p.TP)
	}
	if math.Abs(cov.CB-p.FP) > 1e-9 {
		t.Errorf("full-scan CB %v, want fp %v", cov.CB, p.FP)
	}
}

func TestComposeHandComputed(t *testing.T) {
	// Point-mass frequencies make the composition exactly computable:
	// g1 = 2, g2 = 3, coverage 0.5 each side →
	// good = Agg · (0.5·2)·(0.5·3) = Agg·1.5.
	p1 := &RelationParams{GoodFreq: []float64{0, 1}, BadFreq: []float64{1}}
	p2 := &RelationParams{GoodFreq: []float64{0, 0, 1}, BadFreq: []float64{1}}
	ov := Overlaps{Agg: 10, Agb: 4, Abg: 5, Abb: 2}
	q := Compose(ov, p1, p2, LinearOcc(0.5), LinearOcc(0.1), LinearOcc(0.5), LinearOcc(0.2), false)
	if math.Abs(q.Good-10*1.5) > 1e-9 {
		t.Errorf("good %v, want 15", q.Good)
	}
	// bad = Agb·(0.5·2)(0.2·1) + Abg·(0.1·1)(0.5·3) + Abb·(0.1·1)(0.2·1)
	wantBad := 4*1.0*0.2 + 5*0.1*1.5 + 2*0.1*0.2
	if math.Abs(q.Bad-wantBad) > 1e-9 {
		t.Errorf("bad %v, want %v", q.Bad, wantBad)
	}
}

func TestComposeCorrelatedExceedsIndependentForHeavyTails(t *testing.T) {
	// With identical heavy-tailed marginals and linear expectations, the
	// correlated coupling yields E[g²] ≥ E[g]² (Jensen).
	pmf := []float64{0.7, 0.1, 0.1, 0.05, 0.05}
	p1 := &RelationParams{GoodFreq: pmf, BadFreq: pmf}
	p2 := &RelationParams{GoodFreq: pmf, BadFreq: pmf}
	ov := Overlaps{Agg: 10}
	ind := Compose(ov, p1, p2, LinearOcc(0.5), LinearOcc(0), LinearOcc(0.5), LinearOcc(0), false)
	corr := Compose(ov, p1, p2, LinearOcc(0.5), LinearOcc(0), LinearOcc(0.5), LinearOcc(0), true)
	if corr.Good <= ind.Good {
		t.Errorf("correlated %v should exceed independent %v", corr.Good, ind.Good)
	}
}

func TestExactMatchesClosedForm(t *testing.T) {
	// Property: the exact distribution sum equals the closed-form mean
	// product rate·freq·drawn/pop.
	f := func(popRaw, drawnRaw, freqRaw, rateRaw uint8) bool {
		pop := int(popRaw%50) + 10
		drawn := int(drawnRaw) % (pop + 1)
		freq := int(freqRaw)%10 + 1
		if freq > pop {
			freq = pop
		}
		rate := float64(rateRaw) / 255
		exact := ExactExpectedObserved(pop, drawn, freq, rate)
		closed := rate * float64(freq) * float64(drawn) / float64(pop)
		return math.Abs(exact-closed) < 1e-6*(1+closed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIDJNModelMonotoneAndBounded(t *testing.T) {
	m := &IDJNModel{
		P1: simpleParams(), P2: simpleParams(),
		X1: retrieval.SC, X2: retrieval.SC,
		Ov: Overlaps{Agg: 50, Agb: 20, Abg: 20, Abb: 10},
	}
	prev := Quality{}
	for _, dr := range []int{0, 250, 500, 1000} {
		q, err := m.Estimate(dr, dr)
		if err != nil {
			t.Fatal(err)
		}
		if q.Good < prev.Good || q.Bad < prev.Bad {
			t.Fatalf("estimates must grow with effort: %+v after %+v", q, prev)
		}
		prev = q
	}
	// Upper bound: full coverage with tp=1 would see Agg·E[g1]·E[g2].
	maxGood := 50.0 * meanFreq(m.P1.GoodFreq) * meanFreq(m.P2.GoodFreq)
	if prev.Good > maxGood {
		t.Errorf("estimate %v exceeds coverage bound %v", prev.Good, maxGood)
	}
}

func TestIDJNTimeComponents(t *testing.T) {
	m := &IDJNModel{
		P1: simpleParams(), P2: simpleParams(),
		X1: retrieval.SC, X2: retrieval.FS,
		Ov: Overlaps{Agg: 50},
	}
	c := Costs{TR: 1, TE: 5, TF: 0.1, TQ: 2}
	tm, err := m.Time(100, 100, c, c)
	if err != nil {
		t.Fatal(err)
	}
	// Side 1 (scan): 100·(1+5) = 600. Side 2 (FS): 100 retrievals + some
	// filtered + processed fraction — strictly less processing than scan.
	scanOnly := 600.0
	if tm <= scanOnly {
		t.Errorf("time %v should exceed the scan side alone", tm)
	}
	tmScanScan, _ := (&IDJNModel{P1: m.P1, P2: m.P2, X1: retrieval.SC, X2: retrieval.SC, Ov: m.Ov}).Time(100, 100, c, c)
	if tm >= tmScanScan {
		t.Errorf("FS side should be cheaper than scanning: %v vs %v", tm, tmScanScan)
	}
}

func TestOIJNModelBasics(t *testing.T) {
	m := &OIJNModel{
		P1: simpleParams(), P2: simpleParams(),
		Ov:         Overlaps{Agg: 50, Agb: 20, Abg: 20, Abb: 10},
		OuterIdx:   0,
		XOuter:     retrieval.SC,
		CasualHits: 1.5,
	}
	q1, err := m.Estimate(200)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := m.Estimate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Good <= q1.Good {
		t.Errorf("outer effort should grow output: %v -> %v", q1.Good, q2.Good)
	}
	queries, docs, err := m.InnerWork(1000)
	if err != nil {
		t.Fatal(err)
	}
	if queries <= 0 || docs <= 0 {
		t.Errorf("inner work %v queries %v docs", queries, docs)
	}
	maxQ := float64(m.P1.Ag + m.P1.Ab)
	if queries > maxQ {
		t.Errorf("queries %v exceed outer value population %v", queries, maxQ)
	}
	tm, err := m.Time(500, Costs{TR: 1, TE: 5, TQ: 2}, Costs{TR: 1, TE: 5, TQ: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("no time charged")
	}
}

func TestOIJNOrientationSwapsOverlaps(t *testing.T) {
	p1 := simpleParams()
	p2 := simpleParams()
	p2.Ag = 200 // make sides distinguishable
	ov := Overlaps{Agg: 50, Agb: 30, Abg: 10, Abb: 5}
	m0 := &OIJNModel{P1: p1, P2: p2, Ov: ov, OuterIdx: 0, XOuter: retrieval.SC}
	m1 := &OIJNModel{P1: p1, P2: p2, Ov: ov, OuterIdx: 1, XOuter: retrieval.SC}
	_, pi0, ov0 := m0.orient()
	_, pi1, ov1 := m1.orient()
	if pi0 != p2 || pi1 != p1 {
		t.Error("orientation wrong")
	}
	if ov0.Agb != 30 || ov1.Agb != 10 {
		t.Errorf("overlap transpose wrong: %+v / %+v", ov0, ov1)
	}
}

func TestDirectCov(t *testing.T) {
	if got := directCov(10, 0, 0.8); got != 1 {
		t.Errorf("unlimited top-k coverage %v", got)
	}
	// freq 10, qprec 0.5 → 20 hits; top-k 5 → coverage 0.25.
	if got := directCov(10, 5, 0.5); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("coverage %v, want 0.25", got)
	}
	if got := directCov(2, 100, 0.8); got != 1 {
		t.Errorf("small values fully covered, got %v", got)
	}
	if directCov(0, 5, 0.5) != 0 {
		t.Error("zero frequency has zero coverage")
	}
}

func zgModel() *ZGJNModel {
	return &ZGJNModel{
		P1: simpleParams(), P2: simpleParams(),
		Ov:         Overlaps{Agg: 50, Agb: 20, Abg: 20, Abb: 10},
		Mentioned1: 260, Mentioned2: 260,
	}
}

func TestZGJNReachDocsSaturates(t *testing.T) {
	m := zgModel()
	prev := 0.0
	for _, q := range []int{1, 5, 20, 100, 1000} {
		d, err := m.ReachDocs(0, q)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev {
			t.Fatalf("reach must be monotone: %v after %v", d, prev)
		}
		if d > 260+1e-9 {
			t.Fatalf("reach %v exceeds mentioned pool", d)
		}
		prev = d
	}
	if prev < 200 {
		t.Errorf("many queries should nearly saturate the pool, got %v", prev)
	}
	if _, err := m.ReachDocs(2, 5); err == nil {
		t.Error("expected error for bad side")
	}
}

func TestZGJNCascadeGrowsAndClamps(t *testing.T) {
	m := zgModel()
	c1, err := m.CascadeAfter(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := m.CascadeAfter(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c5.Docs[0] < c1.Docs[0] || c5.Docs[1] < c1.Docs[1] {
		t.Errorf("cascade must grow: %+v -> %+v", c1, c5)
	}
	if c5.Queries[0] > float64(m.P1.Ag+m.P1.Ab)+1e-9 {
		t.Errorf("queries %v exceed value population", c5.Queries[0])
	}
	if c5.Docs[0] > 260+1e-9 || c5.Docs[1] > 260+1e-9 {
		t.Errorf("cascade docs exceed mentioned pools: %+v", c5)
	}
}

func TestZGJNEstimateMonotone(t *testing.T) {
	m := zgModel()
	qLow, err := m.EstimateAtDocs(50, 50)
	if err != nil {
		t.Fatal(err)
	}
	qHigh, err := m.EstimateAtDocs(260, 260)
	if err != nil {
		t.Fatal(err)
	}
	if qHigh.Good <= qLow.Good {
		t.Errorf("estimate should grow with docs: %v -> %v", qLow.Good, qHigh.Good)
	}
	viaQueries, err := m.EstimateAtQueries(1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viaQueries.Good-qHigh.Good) > qHigh.Good*0.1 {
		t.Errorf("saturated query estimate %v should approach doc estimate %v", viaQueries.Good, qHigh.Good)
	}
	tm, err := m.Time(50, 50, Costs{TR: 1, TE: 5, TQ: 2}, Costs{TR: 1, TE: 5, TQ: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("no time charged")
	}
}

func TestZGJNMissingValuesPerDoc(t *testing.T) {
	m := zgModel()
	m.P1 = simpleParams()
	m.P1.ValuesPerDoc = nil
	if _, err := m.ReachDocs(0, 5); err == nil {
		t.Error("expected error for missing ValuesPerDoc")
	}
}

func TestQualityMeets(t *testing.T) {
	q := Quality{Good: 10, Bad: 5}
	if !q.Meets(10, 5) {
		t.Error("boundary should meet")
	}
	if q.Meets(11, 5) || q.Meets(10, 4) {
		t.Error("violations should not meet")
	}
}

func TestCascadeDistMeansMatchChainRule(t *testing.T) {
	m := zgModel()
	dist, err := m.CascadeDist(2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	dr2, ar2, dr1, ar1, err := m.CascadeMeans(2)
	if err != nil {
		t.Fatal(err)
	}
	// With a generous truncation degree the truncated means match the
	// chain-rule means for the first hops; deeper compositions may lose a
	// little tail mass, so allow small slack.
	check := func(name string, got stat.GenFunc, want float64, tol float64) {
		t.Helper()
		if math.Abs(got.Mean()-want) > tol*want+1e-9 {
			t.Errorf("%s mean %.2f vs chain rule %.2f", name, got.Mean(), want)
		}
	}
	check("Dr2", dist.Dr2, dr2, 0.02)
	check("Ar2", dist.Ar2, ar2, 0.05)
	check("Dr1", dist.Dr1, dr1, 0.15)
	check("Ar1", dist.Ar1, ar1, 0.20)
}

func TestCascadeMeansGrowWithSeeds(t *testing.T) {
	m := zgModel()
	d1, _, _, a1, err := m.CascadeMeans(1)
	if err != nil {
		t.Fatal(err)
	}
	d3, _, _, a3, err := m.CascadeMeans(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d3-3*d1) > 1e-9 {
		t.Errorf("Dr2 must scale linearly in seeds: %v vs 3×%v", d3, d1)
	}
	if a3 <= a1 {
		t.Errorf("Ar1 should grow with seeds: %v -> %v", a1, a3)
	}
}

func TestCascadeDistValidation(t *testing.T) {
	m := zgModel()
	if _, err := m.CascadeDist(0, 100); err == nil {
		t.Error("expected error for zero seeds")
	}
	if _, _, _, _, err := m.CascadeMeans(0); err == nil {
		t.Error("expected error for zero seeds")
	}
	broken := zgModel()
	broken.P2 = simpleParams()
	broken.P2.ValuesPerDoc = nil
	if _, err := broken.CascadeDist(1, 100); err == nil {
		t.Error("expected error for missing ValuesPerDoc")
	}
}

func TestCascadeDistDeadGraph(t *testing.T) {
	// Documents that never emit values: the cascade dies after the seed
	// sweep — Ar2 is the point mass at zero and Dr1 follows.
	m := zgModel()
	m.P1 = simpleParams()
	m.P2 = simpleParams()
	m.P1.ValuesPerDoc = []float64{1}
	m.P2.ValuesPerDoc = []float64{1}
	dist, err := m.CascadeDist(2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Ar2.Mean() != 0 {
		t.Errorf("dead graph should generate no values, got mean %v", dist.Ar2.Mean())
	}
	if dist.Dr1.Mean() != 0 {
		t.Errorf("dead graph should retrieve no D1 docs, got mean %v", dist.Dr1.Mean())
	}
	if dist.Dr2.Mean() <= 0 {
		t.Error("the seed sweep itself still retrieves D2 documents")
	}
}

func TestMultiModelHandComputed(t *testing.T) {
	// Three relations with point-mass frequencies, full-scan coverage
	// cg_i = tp_i, and a single all-good class: good = count·Π tp_i·g_i.
	mk := func(tp, fp float64) *RelationParams {
		return &RelationParams{
			D: 100, Dg: 20, Db: 10, Ag: 10, Ab: 5,
			GoodFreq: []float64{0, 1}, // g = 2
			BadFreq:  []float64{1},    // b = 1
			TP:       tp, FP: fp, BadInGoodFrac: 0.5,
		}
	}
	m := &MultiIDJNModel{
		P: []*RelationParams{mk(0.8, 0.4), mk(0.5, 0.2), mk(0.9, 0.1)},
		X: []retrieval.Kind{retrieval.SC, retrieval.SC, retrieval.SC},
		Classes: map[relation.ClassMask]int{
			0b111: 4, // all good
			0b011: 2, // bad in relation 3
		},
	}
	q, err := m.Estimate([]int{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	wantGood := 4.0 * (0.8 * 2) * (0.5 * 2) * (0.9 * 2)
	if math.Abs(q.Good-wantGood) > 1e-9 {
		t.Errorf("good %v, want %v", q.Good, wantGood)
	}
	wantBad := 2.0 * (0.8 * 2) * (0.5 * 2) * (0.1 * 1)
	if math.Abs(q.Bad-wantBad) > 1e-9 {
		t.Errorf("bad %v, want %v", q.Bad, wantBad)
	}
	tm, err := m.Time([]int{100, 100, 100}, []Costs{{TR: 1, TE: 5}, {TR: 1, TE: 5}, {TR: 1, TE: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-3*600) > 1e-9 {
		t.Errorf("time %v, want 1800", tm)
	}
}

func TestMultiModelValidation(t *testing.T) {
	p := simpleParams()
	bad := &MultiIDJNModel{P: []*RelationParams{p}}
	if bad.Validate() == nil {
		t.Error("expected error for 1 relation")
	}
	bad = &MultiIDJNModel{P: []*RelationParams{p, p}, X: []retrieval.Kind{retrieval.SC}}
	if bad.Validate() == nil {
		t.Error("expected error for arity mismatch")
	}
	ok := &MultiIDJNModel{P: []*RelationParams{p, p}, X: []retrieval.Kind{retrieval.SC, retrieval.SC}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Estimate([]int{100}); err == nil {
		t.Error("expected error for effort arity mismatch")
	}
	if _, err := ok.Time([]int{100, 100}, []Costs{{}}); err == nil {
		t.Error("expected error for cost arity mismatch")
	}
}

func TestOIJNEstimateDistMeanConsistency(t *testing.T) {
	m := &OIJNModel{
		P1: simpleParams(), P2: simpleParams(),
		Ov:       Overlaps{Agg: 50, Agb: 20, Abg: 20, Abb: 10},
		OuterIdx: 0, XOuter: retrieval.SC,
		CasualHits: 1.5, MentionedInner: 230,
	}
	point, err := m.Estimate(500)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := m.EstimateDist(500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(point.Good-dist.Good) > 1e-9 || dist.VarGood <= 0 {
		t.Errorf("OIJN dist inconsistent: %+v vs %+v", point, dist.Quality)
	}
}

func TestZGJNEstimateDistAtDocsMeanConsistency(t *testing.T) {
	m := zgModel()
	point, err := m.EstimateAtDocs(120, 120)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := m.EstimateDistAtDocs(120, 120)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(point.Good-dist.Good) > 1e-9 || dist.VarGood <= 0 {
		t.Errorf("ZGJN dist inconsistent: %+v vs %+v", point, dist.Quality)
	}
}

func TestTotalOccurrences(t *testing.T) {
	p := simpleParams()
	// E[g] = 0.5+0.6+0.6 = 1.7; totals scale by population.
	if math.Abs(p.MeanGoodFreq()-1.7) > 1e-9 {
		t.Errorf("mean good freq %v", p.MeanGoodFreq())
	}
	if math.Abs(p.TotalGoodOcc()-170) > 1e-9 {
		t.Errorf("total good occ %v", p.TotalGoodOcc())
	}
	if math.Abs(p.MeanBadFreq()-1.3) > 1e-9 {
		t.Errorf("mean bad freq %v", p.MeanBadFreq())
	}
	if math.Abs(p.TotalBadOcc()-78) > 1e-9 {
		t.Errorf("total bad occ %v", p.TotalBadOcc())
	}
	empty := &RelationParams{}
	if empty.MeanBadFreq() != 0 {
		t.Error("empty bad PMF should have zero mean")
	}
}

func TestOIJNTimeMonotoneInOuterEffort(t *testing.T) {
	m := &OIJNModel{
		P1: simpleParams(), P2: simpleParams(),
		Ov:       Overlaps{Agg: 50, Agb: 20, Abg: 20, Abb: 10},
		OuterIdx: 0, XOuter: retrieval.SC,
		CasualHits: 1.5, MentionedInner: 230,
	}
	c := Costs{TR: 1, TE: 5, TQ: 2}
	prev := 0.0
	for _, e := range []int{100, 400, 1000} {
		tm, err := m.Time(e, c, c)
		if err != nil {
			t.Fatal(err)
		}
		if tm <= prev {
			t.Fatalf("OIJN time must grow with outer effort: %v after %v", tm, prev)
		}
		prev = tm
	}
	// Inner work (queries + docs) must be charged on top of the outer scan.
	outerOnly := 1000.0 * (c.TR + c.TE)
	if prev <= outerOnly {
		t.Errorf("OIJN time %v should exceed the outer scan alone (%v)", prev, outerOnly)
	}
}

func TestZGJNTimeComponents(t *testing.T) {
	m := zgModel()
	c := Costs{TR: 1, TE: 5, TQ: 2}
	t10, err := m.Time(10, 10, c, c)
	if err != nil {
		t.Fatal(err)
	}
	t50, err := m.Time(50, 50, c, c)
	if err != nil {
		t.Fatal(err)
	}
	if t50 <= t10 {
		t.Errorf("ZGJN time must grow with queries: %v -> %v", t10, t50)
	}
	// The query charge alone is 2·q·TQ; total must exceed it (documents
	// are retrieved and processed too).
	if t10 <= 2*10*c.TQ {
		t.Errorf("ZGJN time %v missing document costs", t10)
	}
}
