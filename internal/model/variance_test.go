package model

import (
	"math"
	"testing"

	"joinopt/internal/stat"
)

func TestOccMomentsBinomial(t *testing.T) {
	// E[occ|f] = 3, f = 6 → p = 0.5 → E[occ²] = Var + mean² = 1.5 + 9.
	e := LinearOcc(0.5)
	m1, m2 := occMoments(e, 6)
	if math.Abs(m1-3) > 1e-12 || math.Abs(m2-10.5) > 1e-12 {
		t.Errorf("moments %v, %v, want 3, 10.5", m1, m2)
	}
	// Degenerate frequency.
	m1, m2 = occMoments(e, 0)
	if m1 != 0 || m2 != 0 {
		t.Errorf("zero frequency moments %v, %v", m1, m2)
	}
}

func TestComposeDistMeanMatchesCompose(t *testing.T) {
	p1 := simpleParams()
	p2 := simpleParams()
	ov := Overlaps{Agg: 40, Agb: 15, Abg: 15, Abb: 8}
	e1g, e1b := LinearOcc(0.4), LinearOcc(0.15)
	e2g, e2b := LinearOcc(0.5), LinearOcc(0.2)
	point := Compose(ov, p1, p2, e1g, e1b, e2g, e2b, false)
	dist := ComposeDist(ov, p1, p2, e1g, e1b, e2g, e2b)
	if math.Abs(point.Good-dist.Good) > 1e-9 || math.Abs(point.Bad-dist.Bad) > 1e-9 {
		t.Errorf("means diverge: point %+v dist %+v", point, dist.Quality)
	}
	if dist.VarGood <= 0 || dist.VarBad <= 0 {
		t.Errorf("variances must be positive: %+v", dist)
	}
}

// TestComposeDistMonteCarlo validates the variance formula by simulating
// the generative process: per value, a power-law frequency and binomial
// observation on each side, pairs = product.
func TestComposeDistMonteCarlo(t *testing.T) {
	pl := stat.MustPowerLaw(2.0, 10)
	pmf := pl.PMFSlice()
	p1 := &RelationParams{GoodFreq: pmf, BadFreq: pmf}
	p2 := &RelationParams{GoodFreq: pmf, BadFreq: pmf}
	ov := Overlaps{Agg: 60}
	c1, c2 := 0.55, 0.4
	dist := ComposeDist(ov, p1, p2, LinearOcc(c1), LinearOcc(0), LinearOcc(c2), LinearOcc(0))

	r := stat.NewRNG(31)
	const trials = 4000
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		total := 0
		for v := 0; v < ov.Agg; v++ {
			g1 := pl.Sample(r)
			g2 := pl.Sample(r)
			total += r.Binomial(g1, c1) * r.Binomial(g2, c2)
		}
		sum += float64(total)
		sumSq += float64(total) * float64(total)
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-dist.Good) > 0.05*dist.Good {
		t.Errorf("Monte Carlo mean %.1f vs model %.1f", mean, dist.Good)
	}
	if math.Abs(variance-dist.VarGood) > 0.15*dist.VarGood {
		t.Errorf("Monte Carlo variance %.1f vs model %.1f", variance, dist.VarGood)
	}
}

func TestQualityDistBounds(t *testing.T) {
	q := QualityDist{Quality: Quality{Good: 100, Bad: 50}, VarGood: 25, VarBad: 16}
	if got := q.GoodLCB(2); math.Abs(got-90) > 1e-12 {
		t.Errorf("LCB %v, want 90", got)
	}
	if got := q.BadUCB(2); math.Abs(got-58) > 1e-12 {
		t.Errorf("UCB %v, want 58", got)
	}
	if !q.MeetsRobust(90, 58, 2) {
		t.Error("boundary should meet")
	}
	if q.MeetsRobust(91, 58, 2) || q.MeetsRobust(90, 57, 2) {
		t.Error("violations should fail")
	}
	// z = 0 degenerates to the point check.
	if !q.MeetsRobust(100, 50, 0) {
		t.Error("z=0 should reduce to the point estimate")
	}
}

func TestEstimateDistConsistency(t *testing.T) {
	m := &IDJNModel{
		P1: simpleParams(), P2: simpleParams(),
		X1: "SC", X2: "SC",
		Ov: Overlaps{Agg: 50, Agb: 20, Abg: 20, Abb: 10},
	}
	point, err := m.Estimate(500, 500)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := m.EstimateDist(500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(point.Good-dist.Good) > 1e-9 {
		t.Errorf("EstimateDist mean %v != Estimate %v", dist.Good, point.Good)
	}
	if dist.GoodLCB(1) >= dist.Good {
		t.Error("LCB must lie below the mean")
	}
}

func TestVarianceShrinksRelativeWithScale(t *testing.T) {
	// Coefficient of variation falls as the overlap population grows.
	p1, p2 := simpleParams(), simpleParams()
	cv := func(agg int) float64 {
		d := ComposeDist(Overlaps{Agg: agg}, p1, p2,
			LinearOcc(0.4), LinearOcc(0), LinearOcc(0.4), LinearOcc(0))
		return math.Sqrt(d.VarGood) / d.Good
	}
	if cv(400) >= cv(25) {
		t.Errorf("CV should shrink with Agg: %v vs %v", cv(400), cv(25))
	}
}
