package model

import "math"

// Variance machinery for the composition estimates, supporting the
// optimizer's robustness margin (§VI mentions checking decisions for
// robustness): instead of requiring E[good] ≥ τg, a robust optimizer
// requires E[good] − z·σ ≥ τg and E[bad] + z·σ ≤ τb.
//
// Per join value a, the observed occurrence count on side i is modeled as
// Binomial(f, e(f)/f) given frequency f — exact for the scan-style linear
// coverages and a matched-mean approximation for the query-driven ones.
// Values are independent, so variances add across the overlap classes:
//
//	Var[gr1·gr2] = E[gr1²]·E[gr2²] − (E[gr1]·E[gr2])²
//
// with E[gr²|f] = m(1−p) + m² for m = E[gr|f], p = m/f.

// occMoments returns E[occ|f] and E[occ²|f] under the binomial
// approximation for a conditional-expectation function.
func occMoments(e OccExpectation, f int) (m1, m2 float64) {
	m1 = e(f)
	if f <= 0 || m1 <= 0 {
		return m1, m1 * m1
	}
	p := m1 / float64(f)
	if p > 1 {
		p = 1
	}
	m2 = m1*(1-p) + m1*m1
	return m1, m2
}

// momentsOver integrates the first and second conditional moments over a
// frequency PMF indexed from 1.
func momentsOver(pmf []float64, e OccExpectation) (m1, m2 float64) {
	for i, pr := range pmf {
		if pr == 0 {
			continue
		}
		a, b := occMoments(e, i+1)
		m1 += pr * a
		m2 += pr * b
	}
	return m1, m2
}

// QualityDist is a quality estimate with variances, for robustness margins.
type QualityDist struct {
	Quality
	VarGood float64
	VarBad  float64
}

// GoodLCB returns the z-sigma lower confidence bound on the good count.
func (q QualityDist) GoodLCB(z float64) float64 {
	return q.Good - z*math.Sqrt(math.Max(q.VarGood, 0))
}

// BadUCB returns the z-sigma upper confidence bound on the bad count.
func (q QualityDist) BadUCB(z float64) float64 {
	return q.Bad + z*math.Sqrt(math.Max(q.VarBad, 0))
}

// MeetsRobust reports whether the estimate satisfies (τg, τb) with a
// z-sigma margin on both sides.
func (q QualityDist) MeetsRobust(tauG, tauB int, z float64) bool {
	return q.GoodLCB(z) >= float64(tauG) && q.BadUCB(z) <= float64(tauB)
}

// ComposeDist runs the general composition scheme returning variances
// alongside the expectations. It uses the independence coupling (variance
// under the correlated coupling is not defined by the paper's sketch).
func ComposeDist(ov Overlaps, p1, p2 *RelationParams, e1g, e1b, e2g, e2b OccExpectation) QualityDist {
	g1m1, g1m2 := momentsOver(p1.GoodFreq, e1g)
	b1m1, b1m2 := momentsOver(p1.BadFreq, e1b)
	g2m1, g2m2 := momentsOver(p2.GoodFreq, e2g)
	b2m1, b2m2 := momentsOver(p2.BadFreq, e2b)

	pairVar := func(n int, a1, a2, s1, s2 float64) (mean, variance float64) {
		mean = float64(n) * a1 * a2
		variance = float64(n) * (s1*s2 - a1*a1*a2*a2)
		if variance < 0 {
			variance = 0
		}
		return mean, variance
	}

	var q QualityDist
	var v float64
	q.Good, q.VarGood = pairVar(ov.Agg, g1m1, g2m1, g1m2, g2m2)

	m, v := pairVar(ov.Agb, g1m1, b2m1, g1m2, b2m2)
	q.Bad += m
	q.VarBad += v
	m, v = pairVar(ov.Abg, b1m1, g2m1, b1m2, g2m2)
	q.Bad += m
	q.VarBad += v
	m, v = pairVar(ov.Abb, b1m1, b2m1, b1m2, b2m2)
	q.Bad += m
	q.VarBad += v
	return q
}

// EstimateDist is Estimate with variances, for robust plan evaluation.
func (m *IDJNModel) EstimateDist(effort1, effort2 int) (QualityDist, error) {
	proc1, err := m.P1.ProcessedAfter(m.X1, effort1)
	if err != nil {
		return QualityDist{}, err
	}
	proc2, err := m.P2.ProcessedAfter(m.X2, effort2)
	if err != nil {
		return QualityDist{}, err
	}
	c1 := m.P1.CoverageOf(proc1)
	c2 := m.P2.CoverageOf(proc2)
	return ComposeDist(m.Ov, m.P1, m.P2,
		LinearOcc(c1.CG), LinearOcc(c1.CB),
		LinearOcc(c2.CG), LinearOcc(c2.CB)), nil
}

// EstimateDist is Estimate with variances for the outer/inner join; the
// inner side uses the binomial matched-mean approximation.
func (m *OIJNModel) EstimateDist(effortOuter int) (QualityDist, error) {
	po, pi, ov := m.orient()
	procO, err := po.ProcessedAfter(m.XOuter, effortOuter)
	if err != nil {
		return QualityDist{}, err
	}
	covO := po.CoverageOf(procO)
	eff := m.effort(covO)
	innerGood := func(f int) float64 {
		d := directCov(f, pi.TopK, pi.QPrec)
		return pi.TP * float64(f) * (d + (1-d)*eff.JgRest)
	}
	innerBad := func(f int) float64 {
		d := directCov(f, pi.TopK, pi.QPrec)
		rest := pi.BadInGoodFrac*eff.JgRest + (1-pi.BadInGoodFrac)*eff.JbRest
		return pi.FP * float64(f) * (d + (1-d)*rest)
	}
	return ComposeDist(ov, po, pi,
		LinearOcc(covO.CG), LinearOcc(covO.CB), innerGood, innerBad), nil
}

// EstimateDistAtDocs is EstimateAtDocs with variances for the zig-zag join.
func (m *ZGJNModel) EstimateDistAtDocs(d1, d2 int) (QualityDist, error) {
	cov := func(p *RelationParams, side, d int) Coverage {
		M := float64(m.mentioned(side))
		frac := clampF(float64(d)/M, 0, 1)
		return p.CoverageOf(Processed{Jg: float64(p.Dg) * frac, Jb: float64(p.Db) * frac})
	}
	c1 := cov(m.P1, 0, d1)
	c2 := cov(m.P2, 1, d2)
	return ComposeDist(m.Ov, m.P1, m.P2,
		LinearOcc(c1.CG), LinearOcc(c1.CB),
		LinearOcc(c2.CG), LinearOcc(c2.CB)), nil
}
