package model

import (
	"fmt"

	"joinopt/internal/retrieval"
)

// IDJNModel estimates the output quality and execution time of an
// Independent Join plan (§V-C): both relations are extracted independently
// with their own retrieval strategies, so each side's occurrence coverage is
// the single-relation sampling analysis, and the join composition follows
// the general scheme.
type IDJNModel struct {
	P1, P2 *RelationParams
	X1, X2 retrieval.Kind
	Ov     Overlaps

	// Correlated selects the correlated-frequency coupling Pr{g1,g2} ≈
	// Pr{g} instead of independence (§V-B).
	Correlated bool
}

// Estimate predicts the join-output composition after the two strategies
// have spent effort1 and effort2 (documents retrieved for SC/FS, queries
// issued for AQG).
func (m *IDJNModel) Estimate(effort1, effort2 int) (Quality, error) {
	proc1, err := m.P1.ProcessedAfter(m.X1, effort1)
	if err != nil {
		return Quality{}, fmt.Errorf("model: IDJN side 1: %w", err)
	}
	proc2, err := m.P2.ProcessedAfter(m.X2, effort2)
	if err != nil {
		return Quality{}, fmt.Errorf("model: IDJN side 2: %w", err)
	}
	c1 := m.P1.CoverageOf(proc1)
	c2 := m.P2.CoverageOf(proc2)
	q := Compose(m.Ov, m.P1, m.P2,
		LinearOcc(c1.CG), LinearOcc(c1.CB),
		LinearOcc(c2.CG), LinearOcc(c2.CB), m.Correlated)
	return q, nil
}

// Time predicts the cost-model execution time for the given efforts
// (§V-C): Σ_i |Dri|·(tiR + tiE) plus filtering and querying charges for FS
// and AQG strategies.
func (m *IDJNModel) Time(effort1, effort2 int, c1, c2 Costs) (float64, error) {
	proc1, err := m.P1.ProcessedAfter(m.X1, effort1)
	if err != nil {
		return 0, err
	}
	proc2, err := m.P2.ProcessedAfter(m.X2, effort2)
	if err != nil {
		return 0, err
	}
	return sideTime(proc1, c1) + sideTime(proc2, c2), nil
}

// sideTime charges retrieval, filtering, processing, and querying for one
// side's processed composition.
func sideTime(p Processed, c Costs) float64 {
	return p.Retrieved*c.TR + p.Filtered*c.TF + p.ProcTotal*c.TE + p.Queries*c.TQ
}
