package model

import (
	"fmt"

	"joinopt/internal/stat"
)

// Distributional form of the zig-zag analysis — the paper's §V-E formulas
// implemented literally as probability-generating functions, not just their
// means:
//
//	Dr2(x) = [H1(x)]^Q1                 documents retrieved from D2
//	Ar2(x) = [H1(Ga2(x))]^Q1            values generated for R2
//	Dr1(x) = Ar2(H2(x))                 documents retrieved from D1
//	Ar1(x) = Dr1(Ga1(x))                values generated for R1
//
// where H_i is the excess transform of the hit-degree distribution of
// queries against side i's database and Ga_i the excess transform of the
// values-per-document distribution. The Moments property recovers the
// expected counts; the full coefficients expose the spread of a zig-zag
// sweep, which the mean-field cascade cannot.

// CascadeDist holds the four §V-E distributions after Q1 seed queries.
type CascadeDist struct {
	Dr2 stat.GenFunc
	Ar2 stat.GenFunc
	Dr1 stat.GenFunc
	Ar1 stat.GenFunc
}

// CascadeDist computes the §V-E generating functions for nSeed seed queries
// issued against side 1, truncating coefficient vectors at maxDegree.
// Truncation loses tail mass for supercritical cascades; the exact means of
// the untruncated functions are available via CascadeMeans.
func (m *ZGJNModel) CascadeDist(nSeed, maxDegree int) (*CascadeDist, error) {
	if nSeed < 1 {
		return nil, fmt.Errorf("model: need at least one seed query")
	}
	if maxDegree < 8 {
		maxDegree = 8
	}
	h1, ga1, err := m.sideTransforms(m.P1)
	if err != nil {
		return nil, fmt.Errorf("model: side 1: %w", err)
	}
	h2, ga2, err := m.sideTransforms(m.P2)
	if err != nil {
		return nil, fmt.Errorf("model: side 2: %w", err)
	}
	// Note the database orientation: seed queries carry R1 values and are
	// issued against D2 (Figure 8), so the first hop uses side 2's hit
	// transform; the returned values then query D1 with side 1's.
	out := &CascadeDist{}
	out.Dr2 = h2.Power(nSeed, maxDegree)
	out.Ar2 = h2.Compose(ga2, maxDegree).Power(nSeed, maxDegree)
	out.Dr1 = out.Ar2.Compose(h1, maxDegree)
	out.Ar1 = out.Dr1.Compose(ga1, maxDegree)
	return out, nil
}

// CascadeMeans returns the exact (untruncated) means of the four §V-E
// quantities by the Moments, Power, and Composition properties:
// E[Dr2] = Q·H2'(1), E[Ar2] = Q·H2'(1)·Ga2'(1), and so on by the chain
// rule.
func (m *ZGJNModel) CascadeMeans(nSeed int) (dr2, ar2, dr1, ar1 float64, err error) {
	if nSeed < 1 {
		return 0, 0, 0, 0, fmt.Errorf("model: need at least one seed query")
	}
	h1, ga1, err := m.sideTransforms(m.P1)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("model: side 1: %w", err)
	}
	h2, ga2, err := m.sideTransforms(m.P2)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("model: side 2: %w", err)
	}
	dr2 = float64(nSeed) * h2.Mean()
	ar2 = dr2 * ga2.Mean()
	dr1 = ar2 * h1.Mean()
	ar1 = dr1 * ga1.Mean()
	return dr2, ar2, dr1, ar1, nil
}

// sideTransforms builds the excess transforms H and Ga for one side.
func (m *ZGJNModel) sideTransforms(p *RelationParams) (h, ga stat.GenFunc, err error) {
	h0, err := hitPGF(p)
	if err != nil {
		return h, ga, err
	}
	h, err = h0.Excess()
	if err != nil {
		return h, ga, fmt.Errorf("zero hit degree: %w", err)
	}
	if len(p.ValuesPerDoc) == 0 {
		return h, ga, fmt.Errorf("missing ValuesPerDoc")
	}
	ga0, err := stat.NewGenFunc(p.ValuesPerDoc)
	if err != nil {
		return h, ga, fmt.Errorf("ValuesPerDoc: %w", err)
	}
	ga, err = ga0.Excess()
	if err != nil {
		// All documents emit zero values: the cascade dies after the seed
		// sweep; represent Ga as the point mass at zero.
		ga = stat.MustGenFunc([]float64{1})
	}
	return h, ga, nil
}
