package model

import (
	"fmt"

	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
)

// MultiIDJNModel extends the Independent Join quality analysis to n-way
// joins on the shared attribute — the paper's stated future work. The
// composition generalizes §V-B: for every good/bad class combination c over
// the n relations (a relation.ClassMask), the expected tuple contribution
// is
//
//	count(c) · Π_i E[occ_i | class c_i]
//
// where E[occ_i] integrates the side's linear coverage over its good or bad
// frequency distribution. The all-good class yields |Tgood⋈|; every other
// class is bad output.
type MultiIDJNModel struct {
	P       []*RelationParams
	X       []retrieval.Kind
	Classes map[relation.ClassMask]int
}

// Validate checks structural consistency.
func (m *MultiIDJNModel) Validate() error {
	if len(m.P) < 2 {
		return fmt.Errorf("model: multi-way model needs at least 2 relations, got %d", len(m.P))
	}
	if len(m.X) != len(m.P) {
		return fmt.Errorf("model: %d relations but %d strategies", len(m.P), len(m.X))
	}
	if len(m.P) > 8 {
		return fmt.Errorf("model: class masks support at most 8 relations, got %d", len(m.P))
	}
	for i, p := range m.P {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("model: relation %d: %w", i+1, err)
		}
	}
	return nil
}

// Estimate predicts the n-way output composition after each side has spent
// the given effort (documents for SC/FS, queries for AQG).
func (m *MultiIDJNModel) Estimate(efforts []int) (Quality, error) {
	if err := m.Validate(); err != nil {
		return Quality{}, err
	}
	if len(efforts) != len(m.P) {
		return Quality{}, fmt.Errorf("model: %d relations but %d efforts", len(m.P), len(efforts))
	}
	n := len(m.P)
	// Per-side expected observed occurrences per value, by class.
	goodOcc := make([]float64, n)
	badOcc := make([]float64, n)
	for i, p := range m.P {
		proc, err := p.ProcessedAfter(m.X[i], efforts[i])
		if err != nil {
			return Quality{}, fmt.Errorf("model: side %d: %w", i+1, err)
		}
		cov := p.CoverageOf(proc)
		goodOcc[i] = cov.CG * p.MeanGoodFreq()
		badOcc[i] = cov.CB * p.MeanBadFreq()
	}
	var q Quality
	allGood := relation.AllGood(n)
	// Ascending mask order, not map order: float summation order must be
	// deterministic for the optimizer's bit-identical-choice guarantees.
	for mask := relation.ClassMask(0); ; mask++ {
		if count := m.Classes[mask]; count != 0 {
			contrib := float64(count)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					contrib *= goodOcc[i]
				} else {
					contrib *= badOcc[i]
				}
			}
			if mask == allGood {
				q.Good += contrib
			} else {
				q.Bad += contrib
			}
		}
		if mask == allGood {
			break
		}
	}
	return q, nil
}

// Time predicts the cost-model execution time at the given efforts.
func (m *MultiIDJNModel) Time(efforts []int, costs []Costs) (float64, error) {
	if len(efforts) != len(m.P) || len(costs) != len(m.P) {
		return 0, fmt.Errorf("model: efforts/costs arity mismatch")
	}
	var total float64
	for i, p := range m.P {
		proc, err := p.ProcessedAfter(m.X[i], efforts[i])
		if err != nil {
			return 0, err
		}
		total += sideTime(proc, costs[i])
	}
	return total, nil
}
