// Package model implements the paper's analytical output-quality and
// execution-time models (§V): closed-form estimates of the number of good
// and bad tuples a join execution plan produces as a function of the IE
// system configurations (tp(θ)/fp(θ)), the document retrieval strategies
// (SC, FS, AQG), and the join algorithm (IDJN, OIJN, ZGJN), plus the
// cost-model execution time of each plan.
//
// The models consume RelationParams — the database-specific, retrieval-
// specific, and join-specific parameters of Table I and §VI. The accuracy
// experiments feed measured ("perfect knowledge") parameters; the optimizer
// feeds on-the-fly maximum-likelihood estimates from internal/estimate.
package model

import (
	"fmt"

	"joinopt/internal/join"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/stat"
)

// QueryParam describes one AQG query against a database: how many documents
// it matches in total and how many of those are good/bad for the task.
// GoodHits = P(q)·g(q) in the paper's notation.
type QueryParam struct {
	Hits     int
	GoodHits int
	BadHits  int
}

// RelationParams are the per-relation model inputs: database statistics,
// IE-system rates at the plan's knob setting, retrieval-strategy parameters,
// and join-algorithm parameters.
type RelationParams struct {
	// Database-specific (Table I).
	D  int // |D|: documents in the database
	Dg int // |Dg|: good documents
	Db int // |Db|: bad documents
	Ag int // |Ag|: distinct join values with good occurrences
	Ab int // |Ab|: distinct join values with bad occurrences

	// GoodFreq[k-1] = Pr{g(a) = k}: frequency distribution of good
	// occurrences per value. BadFreq likewise for bad occurrences.
	GoodFreq []float64
	BadFreq  []float64

	// IE-system rates at the plan's θ (§III-A).
	TP float64
	FP float64

	// BadInGoodFrac is the fraction of bad occurrences hosted in good
	// documents (bad tuples are extractable from both classes, §V-C).
	BadInGoodFrac float64

	// Filtered Scan classifier rates (§V-C).
	Ctp float64
	Cfp float64

	// AQG query parameters (§V-C).
	AQG []QueryParam

	// Value-query parameters for OIJN/ZGJN (§V-D/E): the search interface's
	// top-k cap and the precision of a join-value keyword query — the
	// fraction of its hits that are occurrence documents of the value.
	TopK  int
	QPrec float64

	// ValuesPerDoc[k] = Pr{a processed occurrence document emits k tuples
	// at this θ}: the pdk distribution of the zig-zag graph (§V-E).
	ValuesPerDoc []float64
}

// Validate reports the first structural problem with the parameters.
func (p *RelationParams) Validate() error {
	if p.D <= 0 || p.Dg <= 0 || p.Dg+p.Db > p.D {
		return fmt.Errorf("model: invalid document partition D=%d Dg=%d Db=%d", p.D, p.Dg, p.Db)
	}
	if p.Ag <= 0 {
		return fmt.Errorf("model: need at least one good value, got %d", p.Ag)
	}
	if len(p.GoodFreq) == 0 {
		return fmt.Errorf("model: missing good frequency distribution")
	}
	if p.TP < 0 || p.TP > 1 || p.FP < 0 || p.FP > 1 {
		return fmt.Errorf("model: rates out of range tp=%v fp=%v", p.TP, p.FP)
	}
	return nil
}

// meanFreq returns E[X] of a PMF indexed from 1.
func meanFreq(pmf []float64) float64 {
	var m float64
	for i, p := range pmf {
		m += float64(i+1) * p
	}
	return m
}

// MeanGoodFreq returns E[g(a)].
func (p *RelationParams) MeanGoodFreq() float64 { return meanFreq(p.GoodFreq) }

// MeanBadFreq returns E[b(a)]; zero when there are no bad values.
func (p *RelationParams) MeanBadFreq() float64 {
	if len(p.BadFreq) == 0 {
		return 0
	}
	return meanFreq(p.BadFreq)
}

// TotalGoodOcc returns Σ_a g(a) = |Ag|·E[g].
func (p *RelationParams) TotalGoodOcc() float64 { return float64(p.Ag) * p.MeanGoodFreq() }

// TotalBadOcc returns Σ_a b(a) = |Ab|·E[b].
func (p *RelationParams) TotalBadOcc() float64 { return float64(p.Ab) * p.MeanBadFreq() }

// Processed is the expected composition of the documents an execution has
// processed: good documents Jg, bad documents Jb, and the total retrieved
// and processed counts (they differ under FS), plus queries issued (AQG).
type Processed struct {
	Jg        float64 // expected good documents processed
	Jb        float64 // expected bad documents processed
	Retrieved float64
	ProcTotal float64
	Filtered  float64
	Queries   float64
}

// ProcessedAfter models a retrieval strategy's document composition.
//
// For SC and FS, effort is the number of documents retrieved (scanned); for
// AQG it is the number of queries issued. The derivations follow §V-C:
//
//   - SC: |Dgr| follows Hyper(|D|, |Dr|, |Dg|, ·); the expectation is
//     |Dr|·|Dg|/|D| and every retrieved document is processed.
//   - FS: retrieved documents pass the classifier with rate Ctp (good) or
//     Cfp (rest), so E[Jg] = |Dr|·(|Dg|/|D|)·Ctp.
//   - AQG: a good document is retrieved by at least one of the Q queries
//     with probability 1 − Π(1 − GoodHits_i/|Dg|) (Equation 2), and the
//     number retrieved is binomial with that success probability.
func (p *RelationParams) ProcessedAfter(kind retrieval.Kind, effort int) (Processed, error) {
	switch kind {
	case retrieval.SC:
		dr := clampF(float64(effort), 0, float64(p.D))
		frac := dr / float64(p.D)
		return Processed{
			Jg:        float64(p.Dg) * frac,
			Jb:        float64(p.Db) * frac,
			Retrieved: dr,
			ProcTotal: dr,
		}, nil
	case retrieval.FS:
		dr := clampF(float64(effort), 0, float64(p.D))
		frac := dr / float64(p.D)
		jg := float64(p.Dg) * frac * p.Ctp
		jb := float64(p.Db) * frac * p.Cfp
		rest := dr - float64(p.Dg)*frac - float64(p.Db)*frac
		procTotal := jg + jb + rest*p.Cfp
		return Processed{
			Jg:        jg,
			Jb:        jb,
			Retrieved: dr,
			ProcTotal: procTotal,
			Filtered:  dr - procTotal,
		}, nil
	case retrieval.AQG:
		if len(p.AQG) == 0 {
			return Processed{}, fmt.Errorf("model: AQG parameters missing")
		}
		q := effort
		if q > len(p.AQG) {
			q = len(p.AQG)
		}
		missGood, missBad, missAll := 1.0, 1.0, 1.0
		for i := 0; i < q; i++ {
			qp := p.AQG[i]
			missGood *= 1 - clampF(float64(qp.GoodHits)/float64(p.Dg), 0, 1)
			if p.Db > 0 {
				missBad *= 1 - clampF(float64(qp.BadHits)/float64(p.Db), 0, 1)
			}
			missAll *= 1 - clampF(float64(qp.Hits)/float64(p.D), 0, 1)
		}
		jg := float64(p.Dg) * (1 - missGood)
		jb := float64(p.Db) * (1 - missBad)
		dr := float64(p.D) * (1 - missAll)
		return Processed{
			Jg:        jg,
			Jb:        jb,
			Retrieved: dr,
			ProcTotal: dr,
			Queries:   float64(q),
		}, nil
	default:
		return Processed{}, fmt.Errorf("model: unknown retrieval strategy %q", kind)
	}
}

// Coverage is the per-occurrence observation probability of a relation's
// occurrences given the processed-document composition: CG is the
// probability a specific good occurrence appears in the extracted output,
// CB likewise for a bad occurrence. These are the linear coefficients of the
// conditional expectations E[gr|g] = CG·g and E[br|b] = CB·b, which follow
// from the hypergeometric sampling mean (j·g/|Dg| marked draws) thinned by
// the binomial extraction rate tp(θ) (§V-C).
type Coverage struct {
	CG float64
	CB float64
}

// CoverageOf converts a processed composition into occurrence coverage.
func (p *RelationParams) CoverageOf(proc Processed) Coverage {
	cg := p.TP * proc.Jg / float64(p.Dg)
	var cb float64
	if p.Db > 0 {
		cb = p.FP * (p.BadInGoodFrac*proc.Jg/float64(p.Dg) + (1-p.BadInGoodFrac)*proc.Jb/float64(p.Db))
	} else {
		cb = p.FP * p.BadInGoodFrac * proc.Jg / float64(p.Dg)
	}
	return Coverage{CG: clampF(cg, 0, 1), CB: clampF(cb, 0, 1)}
}

// Quality is an estimated join-output composition: the expected numbers of
// good and bad join tuples.
type Quality struct {
	Good float64
	Bad  float64
}

// Meets reports whether the estimate satisfies user requirements (τg, τb).
func (q Quality) Meets(tauG, tauB int) bool {
	return q.Good >= float64(tauG) && q.Bad <= float64(tauB)
}

// Overlaps re-exports the attribute-overlap cardinalities.
type Overlaps = relation.OverlapSets

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Costs re-exports the execution-time constants used by the time models.
type Costs = join.Costs

// ExactExpectedObserved computes E[occurrences observed | freq] by the full
// distribution sums of §V-C — hypergeometric sampling of occurrence
// documents followed by binomial extraction thinning — instead of the
// closed-form mean product. Exposed for the exact-vs-closed-form ablation;
// the two agree on expectations (the closed form is exact for means), while
// the exact sum costs O(freq²) work per value.
func ExactExpectedObserved(pop, drawn, freq int, rate float64) float64 {
	if pop <= 0 || drawn <= 0 || freq <= 0 {
		return 0
	}
	if drawn > pop {
		drawn = pop
	}
	var total float64
	for k := 0; k <= freq; k++ {
		pk := stat.HypergeometricPMF(pop, drawn, freq, k)
		if pk == 0 {
			continue
		}
		// Mean of Binomial(k, rate) is k·rate; summing the inner binomial
		// explicitly mirrors the paper's double sum.
		var inner float64
		for l := 0; l <= k; l++ {
			inner += float64(l) * stat.BinomialPMF(k, l, rate)
		}
		total += pk * inner
	}
	return total
}
