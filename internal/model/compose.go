package model

// OccExpectation is a conditional-expectation function E[observed
// occurrences | database frequency]. Each join algorithm instantiates four
// of these — good/bad occurrences for each relation — and the general
// composition scheme of §V-B integrates them over the frequency
// distributions and the value-overlap sets.
type OccExpectation func(freq int) float64

// LinearOcc returns the linear conditional expectation E[obs|f] = c·f used
// by the scan-style analyses.
func LinearOcc(c float64) OccExpectation {
	return func(freq int) float64 { return c * float64(freq) }
}

// Compose implements the general scheme of §V-B:
//
//	E[|Tgood⋈|] = |Agg| · Σ_{g1} Σ_{g2} E[gr1|g1]·E[gr2|g2]·Pr{g1}·Pr{g2}
//	E[|Tbad⋈|]  = Jgb + Jbg + Jbb  (mixed and bad-bad value classes)
//
// When correlated is true, the alternative coupling Pr{g1, g2} ≈ Pr{g}
// (frequent values are frequent in both relations) replaces the
// independence assumption; the two relations' distributions are then
// averaged and a single sum is taken.
func Compose(ov Overlaps, p1, p2 *RelationParams, e1g, e1b, e2g, e2b OccExpectation, correlated bool) Quality {
	var q Quality
	if correlated {
		q.Good = float64(ov.Agg) * expectProductCorr(p1.GoodFreq, p2.GoodFreq, e1g, e2g)
		q.Bad = float64(ov.Agb)*expectProductCorr(p1.GoodFreq, p2.BadFreq, e1g, e2b) +
			float64(ov.Abg)*expectProductCorr(p1.BadFreq, p2.GoodFreq, e1b, e2g) +
			float64(ov.Abb)*expectProductCorr(p1.BadFreq, p2.BadFreq, e1b, e2b)
		return q
	}
	q.Good = float64(ov.Agg) * expectOver(p1.GoodFreq, e1g) * expectOver(p2.GoodFreq, e2g)
	q.Bad = float64(ov.Agb)*expectOver(p1.GoodFreq, e1g)*expectOver(p2.BadFreq, e2b) +
		float64(ov.Abg)*expectOver(p1.BadFreq, e1b)*expectOver(p2.GoodFreq, e2g) +
		float64(ov.Abb)*expectOver(p1.BadFreq, e1b)*expectOver(p2.BadFreq, e2b)
	return q
}

// expectOver integrates a conditional expectation over a frequency PMF
// indexed from 1.
func expectOver(pmf []float64, e OccExpectation) float64 {
	var out float64
	for i, p := range pmf {
		if p > 0 {
			out += p * e(i+1)
		}
	}
	return out
}

// expectProductCorr computes Σ_f E1(f)·E2(f)·Pr{f} with Pr{f} the average of
// the two marginal PMFs — the paper's correlated-frequency alternative.
func expectProductCorr(pmf1, pmf2 []float64, e1, e2 OccExpectation) float64 {
	n := len(pmf1)
	if len(pmf2) > n {
		n = len(pmf2)
	}
	var out float64
	for i := 0; i < n; i++ {
		var p float64
		if i < len(pmf1) {
			p += pmf1[i] / 2
		}
		if i < len(pmf2) {
			p += pmf2[i] / 2
		}
		if p > 0 {
			out += p * e1(i+1) * e2(i+1)
		}
	}
	return out
}
