package model

import (
	"fmt"
	"math"

	"joinopt/internal/retrieval"
)

// OIJNModel estimates the output quality and execution time of an
// Outer/Inner Join plan (§V-D). The outer relation follows the
// single-relation analysis of IDJN; the inner relation is reached by
// keyword queries on the join values observed in the outer relation, so its
// occurrence coverage depends on the search interface's top-k cap, the
// value-query precision, and — for documents beyond a query's own top-k —
// the documents swept in by other values' queries (the paper's Dgr_rest).
type OIJNModel struct {
	// P1/P2 and Ov are in join orientation (R1 ⋈ R2); OuterIdx selects
	// which side plays the outer role (0 → R1, 1 → R2).
	P1, P2   *RelationParams
	Ov       Overlaps
	OuterIdx int
	XOuter   retrieval.Kind

	// CasualHits is the expected number of documents matched by a query on
	// a value with no task occurrences in the inner database (casual
	// mentions only); it contributes retrieval effort but no tuples.
	CasualHits float64

	// MentionedInner bounds the inner documents reachable by value queries
	// (documents containing at least one value occurrence). Distinct-
	// document retrieval saturates at this pool; zero falls back to
	// Dg + Db of the inner side.
	MentionedInner int

	Correlated bool
}

// orient returns (outer, inner) parameter sets and the overlap sets with
// the outer relation first.
func (m *OIJNModel) orient() (po, pi *RelationParams, ov Overlaps) {
	if m.OuterIdx == 0 {
		return m.P1, m.P2, m.Ov
	}
	// Swap roles: transpose the overlap matrix.
	return m.P2, m.P1, Overlaps{Agg: m.Ov.Agg, Agb: m.Ov.Abg, Abg: m.Ov.Agb, Abb: m.Ov.Abb}
}

// directCov returns the fraction of a value's inner occurrence documents
// its own query retrieves: min(k, H)/H with H = freq/QPrec hits (§V-D,
// the top-k split of Hg(q)).
func directCov(freq int, topK int, qprec float64) float64 {
	if freq <= 0 {
		return 0
	}
	if qprec <= 0 {
		qprec = 1
	}
	hits := float64(freq) / qprec
	if topK <= 0 || float64(topK) >= hits {
		return 1
	}
	return float64(topK) / hits
}

// innerEffort is the expected query and retrieval work on the inner side.
type innerEffort struct {
	Queries float64 // distinct outer values queried
	Docs    float64 // inner documents retrieved and processed
	JgRest  float64 // fraction of inner good docs retrieved overall
	JbRest  float64 // fraction of inner bad docs retrieved overall
}

// effort computes the inner-side work and the rest-coverage fractions in a
// first pass over the frequency distributions.
func (m *OIJNModel) effort(covO Coverage) innerEffort {
	po, pi, ov := m.orient()

	// P(a value with outer good frequency f is observed, hence queried).
	pqGood := func(f int) float64 { return 1 - math.Pow(1-covO.CG, float64(f)) }
	pqBad := func(f int) float64 { return 1 - math.Pow(1-covO.CB, float64(f)) }

	var eff innerEffort
	// Expected queried counts per outer value class.
	qg := float64(po.Ag) * expectOver(po.GoodFreq, func(f int) float64 { return pqGood(f) })
	qb := float64(po.Ab) * expectOver(po.BadFreq, func(f int) float64 { return pqBad(f) })
	eff.Queries = qg + qb

	// Docs retrieved directly per queried value, by overlap class. The
	// queried probability couples to the *outer* frequency; the inner hit
	// volume couples to the *inner* frequency; under independence these
	// factor.
	hitDocs := func(pmf []float64) float64 {
		return expectOver(pmf, func(f int) float64 {
			hits := float64(f) / math.Max(pi.QPrec, 1e-9)
			if pi.TopK > 0 && hits > float64(pi.TopK) {
				hits = float64(pi.TopK)
			}
			return hits
		})
	}
	pq1 := expectOver(po.GoodFreq, pqGood)
	pq1b := expectOver(po.BadFreq, pqBad)

	var jgDocs, jbDocs, allDocs float64
	// Inner good-occurrence docs: values in Agg (outer good) and Abg
	// (outer bad).
	goodDocsPerVal := expectOver(pi.GoodFreq, func(f int) float64 {
		return float64(f) * directCov(f, pi.TopK, pi.QPrec)
	})
	badDocsPerVal := expectOver(pi.BadFreq, func(f int) float64 {
		return float64(f) * directCov(f, pi.TopK, pi.QPrec)
	})
	jgDocs = (float64(ov.Agg)*pq1 + float64(ov.Abg)*pq1b) * goodDocsPerVal
	jbDocs = (float64(ov.Agb)*pq1 + float64(ov.Abb)*pq1b) * badDocsPerVal

	// Total docs retrieved: values with inner presence pull their hits
	// (good-occurrence, bad-occurrence, and casual padding); queried values
	// without inner presence pull only casual hits.
	withInner := float64(ov.Agg+ov.Agb)*pq1 + float64(ov.Abg+ov.Abb)*pq1b
	allDocs = (float64(ov.Agg)*pq1+float64(ov.Abg)*pq1b)*hitDocs(pi.GoodFreq) +
		(float64(ov.Agb)*pq1+float64(ov.Abb)*pq1b)*hitDocs(pi.BadFreq)
	_ = withInner

	// Distinct documents retrieved. A query's hits split into the queried
	// value's own occurrence documents (jgDocs/jbDocs above) and fuzz hits —
	// imprecision and casual mentions — that land across the whole
	// mentioned pool M and recur between queries. Both components saturate
	// with the union form 1 − e^{−expected hits / pool}, and the per-class
	// document coverages double as the rest-coverage fractions of the
	// composition (a specific document escapes only if no query hits it).
	M := float64(m.MentionedInner)
	if M <= 0 {
		M = float64(pi.Dg + pi.Db)
	}
	var totalFuzz float64
	if eff.Queries > 0 {
		occPerQ := (jgDocs + jbDocs) / eff.Queries
		hitsPerQ := allDocs / eff.Queries
		if f := hitsPerQ - occPerQ; f > 0 {
			totalFuzz = f * eff.Queries
		}
	}
	jg2 := jgDocs + totalFuzz*float64(pi.Dg)/M
	jb2 := jbDocs + totalFuzz*float64(pi.Db)/M
	if pi.Dg > 0 {
		eff.JgRest = 1 - math.Exp(-jg2/float64(pi.Dg))
	}
	if pi.Db > 0 {
		eff.JbRest = 1 - math.Exp(-jb2/float64(pi.Db))
	}
	casualPool := math.Max(M-float64(pi.Dg)-float64(pi.Db), 1)
	casualFuzz := totalFuzz * casualPool / M
	casualDocs := casualPool * (1 - math.Exp(-casualFuzz/casualPool))
	eff.Docs = math.Min(float64(pi.Dg)*eff.JgRest+float64(pi.Db)*eff.JbRest+casualDocs, float64(pi.D))
	if DebugOIJN {
		fmt.Printf("EFF q=%.0f jgDocs=%.0f jbDocs=%.0f allDocs=%.0f fuzz=%.0f jg2=%.0f jb2=%.0f cas=%.0f M=%.0f\n",
			eff.Queries, jgDocs, jbDocs, allDocs, totalFuzz, jg2, jb2, casualDocs, M)
	}
	return eff
}

// debugEffort enables effort tracing in tests.

// DebugOIJN enables effort tracing (set before model construction in tests).
var DebugOIJN = false

// Estimate predicts the join-output composition after the outer strategy
// has spent effortOuter (documents for SC/FS, queries for AQG).
//
// The key identity: for a value a, E[grO(a)·grI(a)] = E[grO(a)] ·
// E[grI(a) | a queried], because a is queried exactly when grO(a) ≥ 1 and
// the zero term contributes nothing. The inner conditional expectation
// combines the query's own top-k coverage with the rest coverage from other
// values' queries.
func (m *OIJNModel) Estimate(effortOuter int) (Quality, error) {
	po, pi, ov := m.orient()
	procO, err := po.ProcessedAfter(m.XOuter, effortOuter)
	if err != nil {
		return Quality{}, fmt.Errorf("model: OIJN outer: %w", err)
	}
	covO := po.CoverageOf(procO)
	eff := m.effort(covO)

	// Inner conditional expectations given that the value was queried.
	innerGood := func(f int) float64 {
		d := directCov(f, pi.TopK, pi.QPrec)
		cov := d + (1-d)*eff.JgRest
		return pi.TP * float64(f) * cov
	}
	innerBad := func(f int) float64 {
		d := directCov(f, pi.TopK, pi.QPrec)
		rest := pi.BadInGoodFrac*eff.JgRest + (1-pi.BadInGoodFrac)*eff.JbRest
		cov := d + (1-d)*rest
		return pi.FP * float64(f) * cov
	}
	outerGood := LinearOcc(covO.CG)
	outerBad := LinearOcc(covO.CB)

	q := Compose(ov, po, pi, outerGood, outerBad, innerGood, innerBad, m.Correlated)
	return q, nil
}

// Time predicts the cost-model execution time for the plan at the given
// outer effort (§V-D): outer side retrieval/processing plus |Qs|·tQ and the
// inner documents' retrieval and processing.
func (m *OIJNModel) Time(effortOuter int, cOuter, cInner Costs) (float64, error) {
	po, _, _ := m.orient()
	procO, err := po.ProcessedAfter(m.XOuter, effortOuter)
	if err != nil {
		return 0, err
	}
	covO := po.CoverageOf(procO)
	eff := m.effort(covO)
	return sideTime(procO, cOuter) + eff.Queries*cInner.TQ + eff.Docs*(cInner.TR+cInner.TE), nil
}

// InnerWork exposes the expected inner-side effort for a given outer
// effort; experiments use it to compare predicted and actual work.
func (m *OIJNModel) InnerWork(effortOuter int) (queries, docs float64, err error) {
	po, _, _ := m.orient()
	procO, err := po.ProcessedAfter(m.XOuter, effortOuter)
	if err != nil {
		return 0, 0, err
	}
	eff := m.effort(po.CoverageOf(procO))
	return eff.Queries, eff.Docs, nil
}
