// Package durable is joinoptd's crash-safety layer: a write-ahead job
// journal, a versioned snapshot store for adaptive checkpoints and final
// results, and a disk tier behind the in-memory extraction cache — all
// rooted in one state directory so a SIGKILL'd daemon restarted against the
// same -state-dir replays its jobs instead of losing them.
//
// Every byte the store writes is checksummed (CRC32-IEEE) and every byte it
// reads back is verified before it is trusted: a corrupt journal line, a
// bit-flipped snapshot, or a damaged cache entry is detected, counted, and
// skipped — recovery then re-does the lost work from the last good state
// rather than resuming from garbage. Durability never gates availability:
// when the disk fails persistently the store degrades to memory-only
// operation (jobs keep running, /readyz reports the degradation) instead of
// failing jobs.
//
// The on-disk layout under the state directory:
//
//	journal.ndjson     append-only job journal, one CRC'd record per line
//	snapshots/
//	  <job>.ckpt       latest adaptive checkpoint, versioned CRC envelope
//	  <job>.result     final JobResult of a finished job, same envelope
//	cache/<workload>/
//	  s<side>_d<doc>_t<thetabits>  one extraction result, CRC'd JSON
//	standby/
//	  <job>.sb         replicated peer job (cluster migration), same envelope
//
// All writes that recovery depends on go through the atomic tmp+rename
// protocol (write temp file, fsync it, rename over the target) so readers
// never observe a half-written snapshot; journal appends are fsync'd on
// every job-state transition, so the journal is current up to the last
// acknowledged transition when power is cut.
package durable

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"joinopt/internal/faults"
	"joinopt/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Faults, when set, injects deterministic write/sync/corruption errors
	// into every disk operation (see faults.DiskFaults) — the crash-recovery
	// harness runs the daemon under these.
	Faults *faults.DiskInjector
	// Metrics receives joinopt_durable_errors_total counts (may be nil).
	Metrics *obs.Registry
	// DegradeAfter is how many consecutive transient write/sync failures
	// flip the store into memory-only degraded mode (default 3). A permanent
	// disk error degrades immediately.
	DegradeAfter int
}

// Store is the durable state of one daemon: journal + snapshots + cache
// tier. All methods are safe for concurrent use. Every write path absorbs
// disk errors — callers never fail a job because persistence failed; they
// observe the failure through Degraded and the durable-error counters.
type Store struct {
	dir   string
	opts  Options
	errsC func(op string) // bumps joinopt_durable_errors_total{op=...}

	mu       sync.Mutex
	journal  *os.File
	frozen   bool
	degraded bool
	reason   string
	failures int // consecutive write/sync failures
}

// Open initialises the state directory, replays the journal, and returns
// the store plus everything recoverable from disk. A missing or empty
// directory is a valid cold start. Corrupt journal lines (including a
// torn final line from a crash mid-append) are skipped and counted, never
// fatal. Open also compacts the journal: the surviving records are
// rewritten atomically, so damage does not accumulate across restarts.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if opts.DegradeAfter <= 0 {
		opts.DegradeAfter = 3
	}
	s := &Store{dir: dir, opts: opts}
	s.errsC = func(op string) {
		if m := opts.Metrics; m != nil {
			m.Counter(obs.Series(obs.MetricDurableErrs, "op", op)).Inc()
		}
	}
	for _, d := range []string{dir, filepath.Join(dir, "snapshots"), filepath.Join(dir, "cache"), filepath.Join(dir, "standby")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("durable: creating %s: %w", d, err)
		}
	}
	rec := s.replay()
	if err := s.compact(rec); err != nil {
		// A failed compaction is a durability loss, not a startup failure:
		// keep appending to the old journal.
		s.noteFailure("append", err)
	}
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.degrade("journal unwritable: " + err.Error())
		s.errsC("append")
	} else {
		s.journal = f
	}
	return s, rec, nil
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.ndjson") }

// Dir returns the state directory the store is rooted in.
func (s *Store) Dir() string { return s.dir }

// Degraded reports whether the store has fallen back to memory-only
// operation, and why. Degradation is sticky for the life of the process:
// a disk that failed under load is not trusted again until a restart
// re-verifies it.
func (s *Store) Degraded() (bool, string) {
	if s == nil {
		return false, ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.reason
}

// Freeze stops every future write silently, leaving the on-disk state
// exactly as of this instant. It simulates the moment power is cut: tests
// freeze a store mid-run, let the process continue in memory, then recover
// a second store from the same directory and must see only what had been
// persisted before the freeze. Idempotent; there is no thaw.
func (s *Store) Freeze() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.frozen = true
	s.mu.Unlock()
}

// Close releases the journal file handle. The store must not be used after.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

// degrade flips the store into memory-only mode. Callers hold mu or are in
// single-threaded startup.
func (s *Store) degrade(reason string) {
	if !s.degraded {
		s.degraded = true
		s.reason = reason
	}
}

// noteFailure counts a write-class failure under op and degrades the store
// after DegradeAfter consecutive ones (immediately for permanent injected
// faults). Callers hold mu or are in single-threaded startup.
func (s *Store) noteFailure(op string, err error) {
	s.errsC(op)
	s.failures++
	permanent := false
	if fe, ok := err.(*faults.Error); ok {
		permanent = !fe.Transient
	}
	if permanent || s.failures >= s.opts.DegradeAfter {
		s.degrade(fmt.Sprintf("disk %s failed: %v", op, err))
	}
}

// noteSuccess resets the consecutive-failure counter. Callers hold mu.
func (s *Store) noteSuccess() { s.failures = 0 }

// crc is the store-wide checksum (CRC32-IEEE, like the checkpoint codec).
func crc(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// writeFileAtomic writes data to path via the tmp(+fsync)+rename protocol,
// threading the injected fault points. sync is false only for cache
// entries, whose loss on power cut is just a future miss — recovery-
// critical files (journal, snapshots) always sync before the rename. The
// caller handles the error (counting + degradation); on any failure the
// target file is untouched.
func (s *Store) writeFileAtomic(path string, data []byte, sync bool) error {
	if err := s.opts.Faults.Write(); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := s.opts.Faults.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readBack reads a file and passes it through the corruption injector, so
// seeded fault profiles exercise the checksum rejection paths exactly as a
// real bit flip would.
func (s *Store) readBack(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.opts.Faults.Corrupt(b)
	return b, nil
}
