package durable

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
)

// cacheEntry is one persisted extraction result. The CRC covers the compact
// tuples encoding; a mismatch means the entry is discarded, never served —
// a wrong extraction poisoning a resumed run would be far worse than the
// re-extraction cost of a miss.
type cacheEntry struct {
	CRC    uint32          `json:"crc"`
	Tuples json.RawMessage `json:"tuples"`
}

// diskTier persists one workload's extraction cache under
// cache/<namespace>/, one file per (side, doc, θ) key. It implements
// pipeline.Tier: a Load miss (absent, unreadable, or corrupt) just falls
// back to re-extraction, and a Store failure drops the write — the memory
// tier above is never blocked on disk health.
type diskTier struct {
	s   *Store
	dir string
}

// CacheTier returns the disk tier for one workload's extraction cache.
// Namespacing is required because cache keys are (side, doc, θ) within a
// workload: two workloads with different seeds produce different tuples
// for the same key, so they must never share files. Returns nil (no tier)
// when the namespace directory cannot be created.
func (s *Store) CacheTier(namespace string) pipeline.Tier {
	if s == nil {
		return nil
	}
	dir := filepath.Join(s.dir, "cache", sanitize(namespace))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.mu.Lock()
		s.noteFailure("cache", err)
		s.mu.Unlock()
		return nil
	}
	return &diskTier{s: s, dir: dir}
}

// sanitize keeps namespaces path-safe.
func sanitize(ns string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, ns)
}

// keyFile names one cache entry. θ enters as its exact bit pattern: the
// cache key is the float, and two θs that differ in the last ulp are
// different extractions.
func (t *diskTier) keyFile(k pipeline.Key) string {
	return filepath.Join(t.dir, fmt.Sprintf("s%d_d%d_t%016x", k.Side, k.DocID, math.Float64bits(k.Theta)))
}

// Load implements pipeline.Tier: read back one entry, verify its checksum,
// and decode. Anything suspect is counted (op=cache), the file removed, and
// a miss reported — the engine re-extracts and overwrites it.
func (t *diskTier) Load(k pipeline.Key) ([]relation.Tuple, bool) {
	path := t.keyFile(k)
	data, err := t.s.readBack(path)
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.reject(path)
		return nil, false
	}
	if crc(compactJSON(e.Tuples)) != e.CRC {
		t.reject(path)
		return nil, false
	}
	var tuples []relation.Tuple
	if err := json.Unmarshal(e.Tuples, &tuples); err != nil {
		t.reject(path)
		return nil, false
	}
	return tuples, true
}

// reject discards a cache entry that failed verification. Unlike snapshot
// corruption this does not degrade the store: cache entries are individually
// disposable and the fallback (re-extraction) is the normal miss path.
func (t *diskTier) reject(path string) {
	t.s.errsC("cache")
	os.Remove(path)
}

// Store implements pipeline.Tier: write-through one entry atomically.
// Failures are dropped (op=cache) — the in-memory copy is already serving.
func (t *diskTier) Store(k pipeline.Key, tuples []relation.Tuple) {
	t.s.mu.Lock()
	blocked := t.s.frozen || t.s.degraded
	t.s.mu.Unlock()
	if blocked {
		return
	}
	enc, err := json.Marshal(tuples)
	if err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{CRC: crc(enc), Tuples: enc})
	if err != nil {
		return
	}
	if err := t.s.writeFileAtomic(t.keyFile(k), data, false); err != nil {
		t.s.mu.Lock()
		t.s.noteFailure("cache", err)
		t.s.mu.Unlock()
	}
}
