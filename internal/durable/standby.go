package durable

import (
	"os"
	"path/filepath"
	"strings"
)

// Standby snapshots are the durable half of cluster checkpoint replication:
// when a peer streams a running job's checkpoint to this replica (because
// this replica would inherit the job's workload if the peer died), the
// payload lands here — so a replica that is both the standby AND restarts
// before the origin dies still holds the jobs it may need to adopt. They
// ride the same versioned CRC envelope as checkpoint/result snapshots.

func (s *Store) standbyPath(id string) string {
	return filepath.Join(s.dir, "standby", id+".sb")
}

// SaveStandby persists a replicated peer job (the service's standby wire
// encoding), atomically replacing any previous version. Failures are
// absorbed like every write path.
func (s *Store) SaveStandby(id string, payload []byte) {
	if s == nil {
		return
	}
	s.save(s.standbyPath(id), payload)
}

// DeleteStandby drops a standby entry once the origin finished the job or
// this replica adopted it. Removal failures are ignored: a stale standby
// entry re-loaded after a restart is filtered against the job store.
func (s *Store) DeleteStandby(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	frozen := s.frozen
	s.mu.Unlock()
	if frozen {
		return
	}
	os.Remove(s.standbyPath(id))
}

// LoadStandbys returns every persisted standby entry that passes
// verification, keyed by job ID. Corrupt entries are rejected (counted,
// deleted, store degraded) exactly like corrupt snapshots.
func (s *Store) LoadStandbys() map[string][]byte {
	if s == nil {
		return nil
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "standby"))
	if err != nil {
		return nil
	}
	out := map[string][]byte{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".sb") {
			continue
		}
		id := strings.TrimSuffix(name, ".sb")
		if payload, ok := s.load(s.standbyPath(id)); ok {
			out[id] = payload
		}
	}
	return out
}
