package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// envelopeVersion is the snapshot-store wire version. Bumping it obsoletes
// persisted snapshots: a reader that sees a different version discards the
// file (the checkpoint inside carries its own codec version on top).
const envelopeVersion = 1

// envelope wraps every persisted snapshot payload: version gate plus a CRC
// over the compact payload bytes. The payload is opaque to the store — the
// checkpoint codec and the JobResult encoding live with their owners.
type envelope struct {
	Version int             `json:"version"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) checkpointPath(id string) string {
	return filepath.Join(s.dir, "snapshots", id+".ckpt")
}

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, "snapshots", id+".result")
}

// SaveCheckpoint persists a job's latest adaptive checkpoint (the wire
// bytes of its codec encoding), atomically replacing any previous one — a
// reader sees the old checkpoint or the new one, never a splice. Failures
// are absorbed (op=snapshot) like every write path.
func (s *Store) SaveCheckpoint(id string, payload []byte) {
	if s == nil {
		return
	}
	s.save(s.checkpointPath(id), payload)
}

// SaveResult persists a finished job's result encoding, so a restarted
// daemon serves completed jobs without re-running them.
func (s *Store) SaveResult(id string, payload []byte) {
	if s == nil {
		return
	}
	s.save(s.resultPath(id), payload)
}

func (s *Store) save(path string, payload []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen || s.degraded {
		return
	}
	data, err := json.Marshal(envelope{Version: envelopeVersion, CRC: crc(compactJSON(payload)), Payload: payload})
	if err != nil {
		s.noteFailure("snapshot", err)
		return
	}
	if err := s.writeFileAtomic(path, data, true); err != nil {
		s.noteFailure("snapshot", err)
		return
	}
	s.noteSuccess()
}

// LoadCheckpoint returns the persisted checkpoint payload of a job, or
// false when none exists or the file fails its checksum. Corrupt snapshots
// are never trusted: the payload is discarded, the failure counted, and the
// store marked degraded — the caller re-runs from scratch instead.
func (s *Store) LoadCheckpoint(id string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	return s.load(s.checkpointPath(id))
}

// LoadResult returns the persisted result payload of a finished job under
// the same contract as LoadCheckpoint.
func (s *Store) LoadResult(id string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	return s.load(s.resultPath(id))
}

func (s *Store) load(path string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	data, err := s.readBack(path)
	if err != nil {
		return nil, false // absent is the common, silent case
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.rejectSnapshot(path, "unparseable")
		return nil, false
	}
	if env.Version != envelopeVersion {
		s.rejectSnapshot(path, fmt.Sprintf("version %d", env.Version))
		return nil, false
	}
	if crc(compactJSON(env.Payload)) != env.CRC {
		s.rejectSnapshot(path, "checksum mismatch")
		return nil, false
	}
	return env.Payload, true
}

// rejectSnapshot records a snapshot that failed verification: counted,
// deleted (so the damage is not re-detected forever), and the store flagged
// degraded — checksum failures mean the disk is silently lying, which is
// worth surfacing on /readyz even though operation continues.
func (s *Store) rejectSnapshot(path, why string) {
	s.errsC("snapshot")
	os.Remove(path)
	s.mu.Lock()
	s.degrade(fmt.Sprintf("snapshot %s rejected: %s", filepath.Base(path), why))
	s.mu.Unlock()
}
