package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"joinopt/internal/faults"
	"joinopt/internal/obs"
	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
)

func openT(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, dir, Options{})
	if len(rec.Jobs) != 0 || rec.MaxSeq != 0 {
		t.Fatalf("cold start recovered %+v", rec)
	}
	req := json.RawMessage(`{"tau_g":5,"tau_b":50}`)
	s.Append(Record{Seq: 1, Event: EventSubmitted, JobID: "j000001", Tenant: "a", Request: req})
	s.Append(Record{Seq: 1, Event: EventStarted, JobID: "j000001"})
	s.Append(Record{Seq: 2, Event: EventSubmitted, JobID: "j000002", Tenant: "b", Request: req})
	s.Append(Record{Seq: 1, Event: EventFinished, JobID: "j000001", State: "done"})
	s.Close()

	_, rec2 := openT(t, dir, Options{})
	if len(rec2.Jobs) != 2 || rec2.MaxSeq != 2 || rec2.CorruptLines != 0 {
		t.Fatalf("recovered %+v", rec2)
	}
	j1, j2 := rec2.Jobs[0], rec2.Jobs[1]
	if j1.ID != "j000001" || !j1.Started || j1.State != "done" || j1.Tenant != "a" {
		t.Errorf("job 1 recovered as %+v", j1)
	}
	if j2.ID != "j000002" || j2.Started || j2.Finished() || string(j2.Request) != string(req) {
		t.Errorf("job 2 recovered as %+v", j2)
	}
}

func TestJournalTornTailAndBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	for i := uint64(1); i <= 3; i++ {
		s.Append(Record{Seq: i, Event: EventSubmitted, JobID: "j" + strings.Repeat("0", 5) + string(rune('0'+i)), Tenant: "t"})
	}
	s.Close()

	// A crash mid-append leaves a torn final line; a bit flip damages a
	// middle one. Both must be skipped, both counted, the rest recovered.
	path := filepath.Join(dir, "journal.ndjson")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines", len(lines))
	}
	flipped := []byte(lines[1])
	flipped[len(flipped)/2] ^= 0x10
	mangled := lines[0] + string(flipped) + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.NewRegistry()
	_, rec := openT(t, dir, Options{Metrics: m})
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "j000001" {
		t.Fatalf("recovered %+v, want only the intact first job", rec.Jobs)
	}
	if rec.CorruptLines != 2 {
		t.Errorf("CorruptLines = %d, want 2", rec.CorruptLines)
	}
	if got := m.Counter(obs.Series(obs.MetricDurableErrs, "op", "replay")).Value(); got != 2 {
		t.Errorf("durable_errors{op=replay} = %v, want 2", got)
	}
}

func TestCompactionRewritesJournalAtomically(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.Append(Record{Seq: 1, Event: EventSubmitted, JobID: "j000001"})
	s.Close()
	// Append garbage; the next Open must compact it away.
	f, _ := os.OpenFile(filepath.Join(dir, "journal.ndjson"), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("{\"crc\":1,\"rec\":{}}\nnot json at all\n")
	f.Close()

	s2, rec := openT(t, dir, Options{})
	if len(rec.Jobs) != 1 || rec.CorruptLines != 2 {
		t.Fatalf("recovered %+v", rec)
	}
	s2.Close()
	_, rec2 := openT(t, dir, Options{})
	if rec2.CorruptLines != 0 || len(rec2.Jobs) != 1 {
		t.Fatalf("compaction did not drop the damage: %+v", rec2)
	}
}

func TestSnapshotRoundTripAndCorruptReject(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewRegistry()
	s, _ := openT(t, dir, Options{Metrics: m})
	payload := []byte(`{"version":1,"crc":42,"checkpoint":{"phase":3}}`)
	s.SaveCheckpoint("j000001", payload)
	got, ok := s.LoadCheckpoint("j000001")
	if !ok || string(got) != string(payload) {
		t.Fatalf("LoadCheckpoint = %q, %v", got, ok)
	}
	if _, ok := s.LoadCheckpoint("j000099"); ok {
		t.Fatal("phantom checkpoint")
	}

	// Flip one payload bit on disk: the load must reject, delete, and
	// degrade — never return the damaged bytes.
	path := filepath.Join(dir, "snapshots", "j000001.ckpt")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-4] ^= 0x01
	os.WriteFile(path, raw, 0o644)
	if _, ok := s.LoadCheckpoint("j000001"); ok {
		t.Fatal("corrupt checkpoint accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt snapshot not deleted")
	}
	if deg, why := s.Degraded(); !deg || !strings.Contains(why, "checksum") {
		t.Errorf("Degraded() = %v, %q after corrupt snapshot", deg, why)
	}
	if got := m.Counter(obs.Series(obs.MetricDurableErrs, "op", "snapshot")).Value(); got != 1 {
		t.Errorf("durable_errors{op=snapshot} = %v, want 1", got)
	}
}

func TestSaveResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.SaveResult("j000007", []byte(`{"good":12,"bad":3}`))
	s.Close()
	s2, _ := openT(t, dir, Options{})
	got, ok := s2.LoadResult("j000007")
	if !ok || string(got) != `{"good":12,"bad":3}` {
		t.Fatalf("LoadResult = %q, %v", got, ok)
	}
}

func TestCacheTierRoundTripAndNamespaces(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	a := s.CacheTier("w-seed1")
	b := s.CacheTier("w-seed2")
	k := pipeline.Key{Side: 1, DocID: 42, Theta: 0.8}
	tuples := []relation.Tuple{{A1: "acme", A2: "boston"}, {A1: "initech", A2: "austin"}}
	a.Store(k, tuples)
	if got, ok := a.Load(k); !ok || len(got) != 2 || got[0] != tuples[0] || got[1] != tuples[1] {
		t.Fatalf("tier Load = %v, %v", got, ok)
	}
	if _, ok := b.Load(k); ok {
		t.Fatal("namespaces leaked: seed2 sees seed1's extraction")
	}
	// Survives a restart.
	s.Close()
	s2, _ := openT(t, dir, Options{})
	if got, ok := s2.CacheTier("w-seed1").Load(k); !ok || len(got) != 2 {
		t.Fatalf("tier entry lost across restart: %v, %v", got, ok)
	}
}

func TestCacheTierDiscardsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewRegistry()
	s, _ := openT(t, dir, Options{Metrics: m})
	tier := s.CacheTier("w")
	k := pipeline.Key{Side: 0, DocID: 7, Theta: 0.4}
	tier.Store(k, []relation.Tuple{{A1: "x", A2: "y"}})

	files, _ := filepath.Glob(filepath.Join(dir, "cache", "w", "*"))
	if len(files) != 1 {
		t.Fatalf("cache dir holds %d files", len(files))
	}
	raw, _ := os.ReadFile(files[0])
	raw[len(raw)-3] ^= 0x40
	os.WriteFile(files[0], raw, 0o644)

	if _, ok := tier.Load(k); ok {
		t.Fatal("corrupt cache entry served")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt cache entry not discarded")
	}
	if got := m.Counter(obs.Series(obs.MetricDurableErrs, "op", "cache")).Value(); got != 1 {
		t.Errorf("durable_errors{op=cache} = %v, want 1", got)
	}
	// A single corrupt cache entry must NOT degrade the store: re-extraction
	// is the ordinary miss path.
	if deg, _ := s.Degraded(); deg {
		t.Error("store degraded over one disposable cache entry")
	}
}

func TestInjectedCorruptionRejectedByChecksum(t *testing.T) {
	// dcorrupt=1 flips a bit in every read-back; nothing read under it may
	// ever be trusted, and the daemon degrades rather than dies.
	dir := t.TempDir()
	clean, _ := openT(t, dir, Options{})
	clean.Append(Record{Seq: 1, Event: EventSubmitted, JobID: "j000001"})
	clean.SaveCheckpoint("j000001", []byte(`{"p":1}`))
	clean.Close()

	p, err := faults.Parse("seed=3,dcorrupt=1")
	if err != nil {
		t.Fatal(err)
	}
	s, rec := openT(t, dir, Options{Faults: faults.DiskFaults(p)})
	if len(rec.Jobs) != 0 || rec.CorruptLines == 0 {
		t.Fatalf("corrupted journal still yielded jobs: %+v", rec)
	}
	if _, ok := s.LoadCheckpoint("j000001"); ok {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestPersistentWriteFaultsDegradeNotFail(t *testing.T) {
	p, err := faults.Parse("seed=5,dwrite=1,permanent=true")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRegistry()
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Faults: faults.DiskFaults(p), Metrics: m})
	if err != nil {
		t.Fatalf("Open must absorb disk faults, got %v", err)
	}
	defer s.Close()
	s.Append(Record{Seq: 1, Event: EventSubmitted, JobID: "j000001"})
	deg, why := s.Degraded()
	if !deg {
		t.Fatal("permanent write fault did not degrade the store")
	}
	if why == "" {
		t.Error("degraded without a reason")
	}
	// Degraded operation: everything keeps no-opping, nothing panics.
	s.SaveCheckpoint("j000001", []byte(`{}`))
	if _, ok := s.LoadCheckpoint("j000001"); ok {
		t.Fatal("degraded store persisted a checkpoint")
	}
	if got := m.Counter(obs.Series(obs.MetricDurableErrs, "op", "append")).Value(); got < 1 {
		t.Errorf("durable_errors{op=append} = %v, want >= 1", got)
	}
}

func TestTransientSyncFaultsDegradeAfterThreshold(t *testing.T) {
	p, err := faults.Parse("seed=9,dsync=1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Faults: faults.DiskFaults(p), DegradeAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Open already consumed some write/sync budget (compaction); appends
	// keep failing until the threshold trips.
	for i := uint64(1); i <= 5; i++ {
		s.Append(Record{Seq: i, Event: EventSubmitted, JobID: "jx"})
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("store survived 5 consecutive sync failures undegraded")
	}
}

func TestFreezeStopsAllWrites(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.Append(Record{Seq: 1, Event: EventSubmitted, JobID: "j000001"})
	s.SaveCheckpoint("j000001", []byte(`{"p":1}`))
	tier := s.CacheTier("w")
	s.Freeze()
	s.Append(Record{Seq: 1, Event: EventStarted, JobID: "j000001"})
	s.SaveCheckpoint("j000001", []byte(`{"p":2}`))
	tier.Store(pipeline.Key{DocID: 1}, []relation.Tuple{{A1: "a"}})
	s.Close()

	s2, rec := openT(t, dir, Options{})
	if len(rec.Jobs) != 1 || rec.Jobs[0].Started {
		t.Fatalf("post-freeze write reached disk: %+v", rec.Jobs)
	}
	if ck, ok := s2.LoadCheckpoint("j000001"); !ok || string(ck) != `{"p":1}` {
		t.Fatalf("checkpoint = %q, %v, want the pre-freeze one", ck, ok)
	}
	if _, ok := s2.CacheTier("w").Load(pipeline.Key{DocID: 1}); ok {
		t.Fatal("post-freeze cache write reached disk")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	s.Append(Record{})
	s.SaveCheckpoint("x", nil)
	s.SaveResult("x", nil)
	if _, ok := s.LoadCheckpoint("x"); ok {
		t.Fatal("nil store load")
	}
	if _, ok := s.LoadResult("x"); ok {
		t.Fatal("nil store load")
	}
	if tier := s.CacheTier("w"); tier != nil {
		t.Fatal("nil store returned a tier")
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("nil store degraded")
	}
	s.Freeze()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
