package durable

import (
	"bytes"
	"encoding/json"
	"os"
	"sort"
)

// Journal events. A job's journal is its state machine on disk: submitted
// (carrying the full request), started, and finished (carrying the terminal
// state). Replay folds the events per job; whatever transition was not
// journaled before the crash is re-done after it.
const (
	EventSubmitted = "submitted"
	EventStarted   = "started"
	EventFinished  = "finished"
)

// Record is one journal entry.
type Record struct {
	Seq   uint64 `json:"seq"`
	Event string `json:"event"`
	JobID string `json:"job_id"`
	// Tenant and Request ride on submitted records only; recovery rebuilds
	// the job from the request bytes.
	Tenant  string          `json:"tenant,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	// State and Error ride on finished records (done | failed | canceled).
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// journalLine is the on-disk envelope of one record: the CRC covers the
// compact rec bytes, so a torn or bit-flipped line is detected before the
// record is believed.
type journalLine struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Append journals one job-state transition: encode, CRC, append, fsync.
// Failures are absorbed — counted under op=append/sync and, when
// persistent, degrading the store to memory-only — never surfaced to the
// job path. Append is a no-op once frozen or degraded.
func (s *Store) Append(r Record) {
	if s == nil {
		return
	}
	line, err := encodeRecord(r)
	if err != nil {
		s.mu.Lock()
		s.noteFailure("append", err)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen || s.degraded || s.journal == nil {
		return
	}
	if err := s.opts.Faults.Write(); err != nil {
		s.noteFailure("append", err)
		return
	}
	if _, err := s.journal.Write(line); err != nil {
		s.noteFailure("append", err)
		return
	}
	if err := s.opts.Faults.Sync(); err != nil {
		s.noteFailure("sync", err)
		return
	}
	if err := s.journal.Sync(); err != nil {
		s.noteFailure("sync", err)
		return
	}
	s.noteSuccess()
}

// encodeRecord renders one CRC'd journal line, newline-terminated.
func encodeRecord(r Record) ([]byte, error) {
	rec, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(journalLine{CRC: crc(rec), Rec: rec})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// RecoveredJob is one job folded out of the journal, in submission order.
type RecoveredJob struct {
	Seq     uint64
	ID      string
	Tenant  string
	Request json.RawMessage
	// Started reports the job had begun executing when the daemon died; a
	// recovered checkpoint (if any) lets it resume instead of restart.
	Started bool
	// State is empty for jobs that never finished; otherwise the journaled
	// terminal state (done | failed | canceled) with its error message.
	State string
	Error string
}

// Finished reports whether the job reached a terminal state before the
// crash — recovery serves its persisted result instead of re-running it.
func (j *RecoveredJob) Finished() bool { return j.State != "" }

// Recovered is everything replayable from the state directory.
type Recovered struct {
	// Jobs in submission (seq) order.
	Jobs []RecoveredJob
	// MaxSeq is the highest journaled sequence number; the service resumes
	// its ID counter above it so recovered and fresh jobs never collide.
	MaxSeq uint64
	// CorruptLines counts journal lines rejected by checksum or parse.
	CorruptLines int
}

// replay folds the journal into per-job recovered state. Lines that fail
// the checksum or do not parse — including the torn tail a crash mid-append
// leaves — are counted and skipped; the journal is an append-only log, so
// every record after a damaged one still applies cleanly. Runs during Open,
// single-threaded.
func (s *Store) replay() *Recovered {
	rec := &Recovered{}
	data, err := os.ReadFile(s.journalPath())
	if err != nil {
		return rec // no journal yet: cold start
	}
	s.opts.Faults.Corrupt(data)

	byID := map[string]*RecoveredJob{}
	var order []string
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil || crc(compactJSON(jl.Rec)) != jl.CRC {
			rec.CorruptLines++
			s.errsC("replay")
			continue
		}
		var r Record
		if err := json.Unmarshal(jl.Rec, &r); err != nil || r.JobID == "" {
			rec.CorruptLines++
			s.errsC("replay")
			continue
		}
		if r.Seq > rec.MaxSeq {
			rec.MaxSeq = r.Seq
		}
		j, ok := byID[r.JobID]
		if !ok {
			if r.Event != EventSubmitted {
				// started/finished for a job whose submitted record was lost
				// to corruption: nothing to rebuild the job from.
				rec.CorruptLines++
				s.errsC("replay")
				continue
			}
			j = &RecoveredJob{Seq: r.Seq, ID: r.JobID}
			byID[r.JobID] = j
			order = append(order, r.JobID)
		}
		switch r.Event {
		case EventSubmitted:
			j.Tenant, j.Request = r.Tenant, r.Request
		case EventStarted:
			j.Started = true
		case EventFinished:
			j.State, j.Error = r.State, r.Error
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return byID[order[a]].Seq < byID[order[b]].Seq })
	for _, id := range order {
		rec.Jobs = append(rec.Jobs, *byID[id])
	}
	return rec
}

// compact atomically rewrites the journal from the replayed state — one
// submitted record per job plus its reached transitions — dropping corrupt
// lines so damage does not accumulate, and shedding nothing recovery needs.
// Runs during Open, single-threaded.
func (s *Store) compact(rec *Recovered) error {
	var buf bytes.Buffer
	for _, j := range rec.Jobs {
		records := []Record{{Seq: j.Seq, Event: EventSubmitted, JobID: j.ID, Tenant: j.Tenant, Request: j.Request}}
		if j.Started {
			records = append(records, Record{Seq: j.Seq, Event: EventStarted, JobID: j.ID})
		}
		if j.Finished() {
			records = append(records, Record{Seq: j.Seq, Event: EventFinished, JobID: j.ID, State: j.State, Error: j.Error})
		}
		for _, r := range records {
			line, err := encodeRecord(r)
			if err != nil {
				return err
			}
			buf.Write(line)
		}
	}
	return s.writeFileAtomic(s.journalPath(), buf.Bytes(), true)
}

// compactJSON returns b with insignificant whitespace removed, so the CRC
// matches however the envelope was re-marshalled.
func compactJSON(b []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		return b
	}
	return buf.Bytes()
}
