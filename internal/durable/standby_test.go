package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStandbyRoundTrip covers the durable half of cluster checkpoint
// replication: standby entries survive a restart, replace atomically,
// delete cleanly, and reject corruption exactly like snapshots — so a
// replica that restarts before its peer dies still holds the jobs it may
// need to adopt, and never adopts from a damaged payload.
func TestStandbyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})

	s.SaveStandby("n0-j000001", []byte(`{"id":"n0-j000001","origin":"n0"}`))
	s.SaveStandby("n0-j000002", []byte(`{"id":"n0-j000002","origin":"n0"}`))
	s.SaveStandby("n0-j000001", []byte(`{"id":"n0-j000001","origin":"n0","v":2}`))
	s.Close()

	s2, _ := openT(t, dir, Options{})
	got := s2.LoadStandbys()
	if len(got) != 2 {
		t.Fatalf("recovered %d standby entries, want 2", len(got))
	}
	if string(got["n0-j000001"]) != `{"id":"n0-j000001","origin":"n0","v":2}` {
		t.Errorf("re-save did not replace: %s", got["n0-j000001"])
	}

	s2.DeleteStandby("n0-j000002")
	if got := s2.LoadStandbys(); len(got) != 1 {
		t.Fatalf("after delete: %d entries, want 1", len(got))
	}

	// Flip a byte inside the surviving entry's envelope: the load must
	// reject it rather than hand a damaged checkpoint to adoption.
	path := filepath.Join(dir, "standby", "n0-j000001.sb")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s2.LoadStandbys(); len(got) != 0 {
		t.Fatalf("corrupt standby entry served: %v", got)
	}
}

// TestStandbyNilAndFrozen: the nil receiver is inert (memory-only daemons
// call the same paths), and a frozen store stops deleting — the crash-sim
// freeze must preserve on-disk state exactly as a real SIGKILL would.
func TestStandbyNilAndFrozen(t *testing.T) {
	var nilStore *Store
	nilStore.SaveStandby("x", []byte("y"))
	nilStore.DeleteStandby("x")
	if got := nilStore.LoadStandbys(); got != nil {
		t.Fatalf("nil store returned standbys: %v", got)
	}

	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.SaveStandby("n1-j000009", []byte(`{"id":"n1-j000009"}`))
	s.Freeze()
	s.DeleteStandby("n1-j000009")
	s2, _ := openT(t, dir, Options{})
	if got := s2.LoadStandbys(); len(got) != 1 {
		t.Fatalf("frozen delete removed the entry: %v", got)
	}
}
