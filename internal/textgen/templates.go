package textgen

import "joinopt/internal/stat"

// EntityType distinguishes the entity slots of an extraction task.
type EntityType int

// Entity types recognized by the tagger.
const (
	Company EntityType = iota
	Person
	Location
)

// String names the entity type.
func (e EntityType) String() string {
	switch e {
	case Company:
		return "Company"
	case Person:
		return "Person"
	case Location:
		return "Location"
	default:
		return "Unknown"
	}
}

// TaskVocab describes the linguistic profile of one extraction task: the
// entity types of its two slots, the extraction-pattern vocabularies
// (several patterns of a few cue terms each — what a Snowball-style system
// learns), and the strength distributions controlling how many cue terms a
// good or bad (deceptive) mention sentence carries.
type TaskVocab struct {
	Task  string
	Slot1 EntityType
	Slot2 EntityType

	// Patterns are cue-term vectors. A mention sentence realizes k terms of
	// one pattern; the extraction engine scores the sentence by cosine
	// similarity against its learned patterns, so k determines the score.
	Patterns [][]string

	// GoodCueDist[k] is the probability that a good mention realizes k cue
	// terms (index 0 unused); BadCueDist likewise for deceptive mentions.
	GoodCueDist []float64
	BadCueDist  []float64
}

// NoiseWords is the shared pool of context filler words. Disjoint from all
// pattern vocabularies so cue counts are exact.
var NoiseWords = []string{
	"yesterday", "reportedly", "announced", "quarter", "analysts", "shares",
	"market", "growth", "revenue", "statement", "officials", "spokesperson",
	"investors", "earnings", "annual", "regional", "sources", "industry",
	"outlook", "forecast", "meeting", "board", "strategy", "record",
	"customers", "products", "services", "operations", "decline", "surge",
}

// FillerWords build the body sentences of documents; also disjoint from the
// pattern vocabularies.
var FillerWords = []string{
	"the", "committee", "reviewed", "several", "proposals", "during",
	"a", "lengthy", "session", "that", "covered", "budget", "matters",
	"and", "staffing", "plans", "for", "next", "year", "while", "members",
	"debated", "various", "options", "before", "adjourning", "late",
	"afternoon", "with", "agreement", "on", "most", "items", "pending",
	"further", "review", "by", "regional", "coordinators",
}

// Standard tasks matching the paper's workloads: EX = Executives⟨Company,
// CEO⟩, HQ = Headquarters⟨Company, Location⟩, MG = Mergers⟨Company,
// MergedWith⟩.
var (
	// VocabHQ is the Headquarters task profile.
	VocabHQ = TaskVocab{
		Task:  "HQ",
		Slot1: Company,
		Slot2: Location,
		Patterns: [][]string{
			{"headquartered", "principal", "offices", "campus"},
			{"headquarters", "based", "relocated", "downtown"},
			{"corporate", "home", "main", "complex"},
		},
		GoodCueDist: []float64{0, 0.15, 0.20, 0.35, 0.30},
		BadCueDist:  []float64{0, 0.45, 0.35, 0.15, 0.05},
	}

	// VocabEX is the Executives task profile.
	VocabEX = TaskVocab{
		Task:  "EX",
		Slot1: Company,
		Slot2: Person,
		Patterns: [][]string{
			{"chief", "executive", "officer", "appointed"},
			{"ceo", "named", "successor", "helm"},
			{"leads", "president", "veteran", "boardroom"},
		},
		GoodCueDist: []float64{0, 0.15, 0.20, 0.35, 0.30},
		BadCueDist:  []float64{0, 0.45, 0.35, 0.15, 0.05},
	}

	// VocabMG is the Mergers task profile.
	VocabMG = TaskVocab{
		Task:  "MG",
		Slot1: Company,
		Slot2: Company,
		Patterns: [][]string{
			{"merged", "acquisition", "takeover", "combined"},
			{"acquire", "deal", "merger", "agreed"},
			{"buyout", "purchase", "stake", "absorbed"},
		},
		GoodCueDist: []float64{0, 0.15, 0.20, 0.35, 0.30},
		BadCueDist:  []float64{0, 0.45, 0.35, 0.15, 0.05},
	}
)

// VocabByTask returns the standard task profile for the given task name, or
// false when unknown.
func VocabByTask(task string) (TaskVocab, bool) {
	switch task {
	case "HQ":
		return VocabHQ, true
	case "EX":
		return VocabEX, true
	case "MG":
		return VocabMG, true
	}
	return TaskVocab{}, false
}

// SampleCues picks a pattern and a number of realized cue terms for a
// mention of the given goodness, returning the cue terms to embed.
func (v TaskVocab) SampleCues(r *stat.RNG, good bool) []string {
	dist := v.GoodCueDist
	if !good {
		dist = v.BadCueDist
	}
	k := r.Pick(dist)
	pattern := v.Patterns[r.Intn(len(v.Patterns))]
	if k > len(pattern) {
		k = len(pattern)
	}
	// Take a random subset of k cue terms from the pattern.
	perm := r.Perm(len(pattern))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = pattern[perm[i]]
	}
	return out
}

// CueTermSet returns the union of all cue terms across the task's patterns.
func (v TaskVocab) CueTermSet() map[string]bool {
	out := map[string]bool{}
	for _, p := range v.Patterns {
		for _, w := range p {
			out[w] = true
		}
	}
	return out
}
