// Package textgen generates the synthetic natural-language text that the
// corpus substrate embeds extraction targets in: entity-name gazetteers
// (companies, persons, locations), per-relation context vocabularies, and
// sentence rendering with controlled pattern-word strength.
//
// The generator's goal is distributional fidelity: the extraction engine
// computes real term-vector similarities over this text, and the controlled
// mix of pattern and noise words yields smooth, monotone tp(θ)/fp(θ) curves
// for the IE systems — the abstraction the paper's quality models consume.
package textgen

import (
	"fmt"

	"joinopt/internal/stat"
)

var companyFirst = []string{
	"Acme", "Vertex", "Orion", "Pinnacle", "Summit", "Cascade", "Quantum",
	"Stellar", "Aurora", "Zenith", "Apex", "Nimbus", "Horizon", "Catalyst",
	"Meridian", "Solstice", "Vanguard", "Beacon", "Crestline", "Dynamo",
	"Evergreen", "Falcon", "Granite", "Harbor", "Ironclad", "Juniper",
	"Keystone", "Lakeshore", "Monarch", "Northstar", "Obsidian", "Paragon",
	"Redwood", "Sablewood", "Titanium", "Umbra", "Vortex", "Westbrook",
	"Xenon", "Yellowtail", "Zephyr", "Alder", "Birchwood", "Cobalt",
	"Drifton", "Emberly", "Foxglove", "Glimmer", "Hollybrook", "Indigo",
}

var companySecond = []string{
	"Dynamics", "Systems", "Holdings", "Industries", "Analytics", "Networks",
	"Technologies", "Partners", "Capital", "Logistics", "Materials",
	"Biosciences", "Energy", "Robotics", "Software", "Microdevices",
	"Semiconductors", "Pharmaceuticals", "Aerospace", "Financial",
	"Media", "Foods", "Motors", "Chemicals", "Instruments",
}

var personFirst = []string{
	"Avery", "Blake", "Carmen", "Dario", "Elena", "Felix", "Greta", "Hugo",
	"Iris", "Jonas", "Katya", "Lionel", "Mira", "Nolan", "Opal", "Pascal",
	"Quinn", "Rosa", "Stefan", "Talia", "Ulric", "Vera", "Wendell", "Ximena",
	"Yusuf", "Zelda", "Anders", "Bianca", "Cedric", "Dahlia", "Emeric",
	"Fiona", "Gustav", "Helena", "Ivor", "Jolene",
}

var personLast = []string{
	"Abernathy", "Bancroft", "Calloway", "Delacroix", "Eastwood", "Fairbanks",
	"Galloway", "Hargrove", "Ingleside", "Jessop", "Kingsley", "Lockhart",
	"Mansfield", "Northcott", "Okafor", "Pemberton", "Quillfeather",
	"Ravensworth", "Sinclair", "Thornbury", "Underhill", "Vandermeer",
	"Wexford", "Yardley", "Zimmerle", "Ashcombe", "Blackwood", "Crowhurst",
	"Dunmore", "Elsworth", "Fenwick", "Greystone",
}

var locationNames = []string{
	"Arlington Falls", "Brookhaven", "Cedar Rapids Junction", "Dover Heights",
	"East Milton", "Fairview Springs", "Glen Arbor", "Hartley Cove",
	"Ivy Hollow", "Jasper Creek", "Kensington Port", "Larkspur Valley",
	"Maple Crossing", "Northfield Bay", "Oakmont Ridge", "Pine Bluff",
	"Quarry Lake", "Riverton Mills", "Silver Hollow", "Twin Pines",
	"Union Flats", "Vista Grande", "Willow Bend", "Yorktown Landing",
	"Zion Meadows", "Ashford Glen", "Bradley Shores", "Clearwater Point",
	"Driftwood Harbor", "Elmira Gardens", "Foxton Vale", "Granite Pass",
	"Hawthorne Bluffs", "Ironwood Flats", "Juniper Wells", "Kingsford Mesa",
}

// Gazetteer holds the entity-name universes shared between the corpus
// generator and the extraction engine's entity tagger. The tagger knows the
// full gazetteer — mirroring named-entity taggers trained on the domain —
// while which *tuples* are true is only known to the gold sets.
type Gazetteer struct {
	Companies []string
	Persons   []string
	Locations []string
}

// NewGazetteer deterministically synthesizes nCompanies company names,
// nPersons person names, and nLocations location names by composing base
// word lists (with numeric disambiguation once combinations are exhausted).
func NewGazetteer(nCompanies, nPersons, nLocations int) *Gazetteer {
	g := &Gazetteer{
		Companies: make([]string, 0, nCompanies),
		Persons:   make([]string, 0, nPersons),
		Locations: make([]string, 0, nLocations),
	}
	for i := 0; i < nCompanies; i++ {
		a := companyFirst[i%len(companyFirst)]
		b := companySecond[(i/len(companyFirst))%len(companySecond)]
		name := a + " " + b
		round := i / (len(companyFirst) * len(companySecond))
		if round > 0 {
			name = fmt.Sprintf("%s %s %d", a, b, round+1)
		}
		g.Companies = append(g.Companies, name)
	}
	for i := 0; i < nPersons; i++ {
		a := personFirst[i%len(personFirst)]
		b := personLast[(i/len(personFirst))%len(personLast)]
		name := a + " " + b
		round := i / (len(personFirst) * len(personLast))
		if round > 0 {
			name = fmt.Sprintf("%s %s %d", a, b, round+1)
		}
		g.Persons = append(g.Persons, name)
	}
	for i := 0; i < nLocations; i++ {
		base := locationNames[i%len(locationNames)]
		round := i / len(locationNames)
		name := base
		if round > 0 {
			name = fmt.Sprintf("%s %d", base, round+1)
		}
		g.Locations = append(g.Locations, name)
	}
	return g
}

// Shuffled returns a deterministically shuffled copy of pool. Workloads
// shuffle entity pools before slicing value ranges so that lexical structure
// of generated names (shared first/second words in ordered pools) does not
// correlate with tuple goodness.
func Shuffled(r *stat.RNG, pool []string) []string {
	out := make([]string, len(pool))
	copy(out, pool)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SampleDistinct picks n distinct elements from pool uniformly at random.
// It panics if n exceeds the pool size.
func SampleDistinct(r *stat.RNG, pool []string, n int) []string {
	if n > len(pool) {
		panic(fmt.Sprintf("textgen: sample of %d from pool of %d", n, len(pool)))
	}
	perm := r.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}
