package textgen

import (
	"strings"
	"testing"

	"joinopt/internal/stat"
)

func TestGazetteerSizesAndUniqueness(t *testing.T) {
	g := NewGazetteer(2000, 1500, 100)
	if len(g.Companies) != 2000 || len(g.Persons) != 1500 || len(g.Locations) != 100 {
		t.Fatalf("sizes %d/%d/%d", len(g.Companies), len(g.Persons), len(g.Locations))
	}
	for _, pool := range [][]string{g.Companies, g.Persons, g.Locations} {
		seen := map[string]bool{}
		for _, n := range pool {
			if seen[n] {
				t.Fatalf("duplicate name %q", n)
			}
			seen[n] = true
		}
	}
}

func TestGazetteerDeterministic(t *testing.T) {
	a := NewGazetteer(100, 100, 50)
	b := NewGazetteer(100, 100, 50)
	for i := range a.Companies {
		if a.Companies[i] != b.Companies[i] {
			t.Fatal("gazetteer must be deterministic")
		}
	}
}

func TestGazetteerOverflowDisambiguation(t *testing.T) {
	// More companies than base combinations forces numeric suffixes.
	n := len(companyFirst)*len(companySecond) + 5
	g := NewGazetteer(n, 1, 1)
	seen := map[string]bool{}
	for _, c := range g.Companies {
		if seen[c] {
			t.Fatalf("duplicate company %q after overflow", c)
		}
		seen[c] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := stat.NewRNG(1)
	pool := []string{"a", "b", "c", "d", "e"}
	s := SampleDistinct(r, pool, 3)
	if len(s) != 3 {
		t.Fatalf("len %d", len(s))
	}
	seen := map[string]bool{}
	for _, x := range s {
		if seen[x] {
			t.Fatal("duplicate in sample")
		}
		seen[x] = true
	}
}

func TestSampleDistinctPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SampleDistinct(stat.NewRNG(1), []string{"a"}, 2)
}

func TestVocabPatternsDisjointFromNoise(t *testing.T) {
	noise := map[string]bool{}
	for _, w := range NoiseWords {
		noise[w] = true
	}
	for _, w := range FillerWords {
		noise[w] = true
	}
	for _, v := range []TaskVocab{VocabHQ, VocabEX, VocabMG} {
		for cue := range v.CueTermSet() {
			if noise[cue] {
				t.Errorf("task %s cue %q collides with noise/filler pool", v.Task, cue)
			}
		}
	}
}

func TestVocabPatternsMutuallyDisjoint(t *testing.T) {
	for _, v := range []TaskVocab{VocabHQ, VocabEX, VocabMG} {
		seen := map[string]int{}
		for pi, p := range v.Patterns {
			for _, w := range p {
				if prev, ok := seen[w]; ok {
					t.Errorf("task %s: cue %q in patterns %d and %d", v.Task, w, prev, pi)
				}
				seen[w] = pi
			}
		}
	}
}

func TestCueDistributionsNormalized(t *testing.T) {
	for _, v := range []TaskVocab{VocabHQ, VocabEX, VocabMG} {
		for _, dist := range [][]float64{v.GoodCueDist, v.BadCueDist} {
			var s float64
			for _, p := range dist {
				s += p
			}
			if s < 0.999 || s > 1.001 {
				t.Errorf("task %s cue dist sums to %v", v.Task, s)
			}
		}
	}
}

func TestSampleCuesRespectsDistributionSupport(t *testing.T) {
	r := stat.NewRNG(5)
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		cues := VocabHQ.SampleCues(r, true)
		counts[len(cues)]++
		seen := map[string]bool{}
		for _, c := range cues {
			if seen[c] {
				t.Fatal("duplicate cue term in one sample")
			}
			seen[c] = true
		}
	}
	if counts[0] != 0 {
		t.Error("cue count 0 should have zero probability")
	}
	// Good mentions should carry 4 cues more often than bad ones.
	rBad := stat.NewRNG(5)
	bad4 := 0
	for i := 0; i < 2000; i++ {
		if len(VocabHQ.SampleCues(rBad, false)) == 4 {
			bad4++
		}
	}
	if counts[4] <= bad4 {
		t.Errorf("good 4-cue count %d should exceed bad %d", counts[4], bad4)
	}
}

func TestMentionSentenceStructure(t *testing.T) {
	r := stat.NewRNG(9)
	s := MentionSentence(r, VocabHQ, "Acme Dynamics", "Pine Bluff", true)
	text := strings.Join(s.Tokens, " ")
	if !strings.Contains(text, "Acme Dynamics") {
		t.Errorf("missing entity 1 in %q", text)
	}
	if !strings.Contains(text, "Pine Bluff") {
		t.Errorf("missing entity 2 in %q", text)
	}
	// Context words = total - 4 entity tokens.
	if len(s.Tokens) != ContextLen+4 {
		t.Errorf("token count %d, want %d", len(s.Tokens), ContextLen+4)
	}
}

func TestFillerSentenceHasNoEntitiesOrCues(t *testing.T) {
	r := stat.NewRNG(2)
	cues := map[string]bool{}
	for _, v := range []TaskVocab{VocabHQ, VocabEX, VocabMG} {
		for c := range v.CueTermSet() {
			cues[c] = true
		}
	}
	for i := 0; i < 100; i++ {
		s := FillerSentence(r)
		for _, tok := range s.Tokens {
			if cues[tok] {
				t.Fatalf("filler sentence contains cue %q", tok)
			}
		}
	}
}

func TestCasualSentenceContainsEntity(t *testing.T) {
	r := stat.NewRNG(3)
	s := CasualSentence(r, "Vertex Holdings")
	text := strings.Join(s.Tokens, " ")
	if !strings.Contains(text, "Vertex Holdings") {
		t.Errorf("casual sentence %q missing entity", text)
	}
}

func TestRender(t *testing.T) {
	out := Render([]Sentence{{Tokens: []string{"a", "b"}}, {Tokens: []string{"c"}}})
	if out != "a b . c ." {
		t.Errorf("render %q", out)
	}
}

func TestVocabByTask(t *testing.T) {
	for _, name := range []string{"HQ", "EX", "MG"} {
		v, ok := VocabByTask(name)
		if !ok || v.Task != name {
			t.Errorf("VocabByTask(%q) = %+v, %v", name, v, ok)
		}
	}
	if _, ok := VocabByTask("nope"); ok {
		t.Error("unknown task should return false")
	}
}

func TestEntityTypeString(t *testing.T) {
	if Company.String() != "Company" || Person.String() != "Person" || Location.String() != "Location" {
		t.Error("entity type names wrong")
	}
	if EntityType(99).String() != "Unknown" {
		t.Error("unknown entity type should stringify as Unknown")
	}
}

func TestShuffledIsPermutationCopy(t *testing.T) {
	pool := []string{"a", "b", "c", "d", "e", "f"}
	out := textShuffled(t, pool)
	if len(out) != len(pool) {
		t.Fatalf("length %d", len(out))
	}
	seen := map[string]bool{}
	for _, v := range out {
		seen[v] = true
	}
	for _, v := range pool {
		if !seen[v] {
			t.Fatalf("element %q lost", v)
		}
	}
	// The original slice is untouched.
	if pool[0] != "a" || pool[5] != "f" {
		t.Error("Shuffled mutated its input")
	}
	// Deterministic per seed.
	again := textShuffled(t, pool)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("Shuffled not deterministic for a fixed seed")
		}
	}
}

func textShuffled(t *testing.T, pool []string) []string {
	t.Helper()
	return Shuffled(stat.NewRNG(123), pool)
}

func TestMentionSentenceKExactCues(t *testing.T) {
	cues := VocabHQ.CueTermSet()
	for k := 0; k <= 4; k++ {
		r := stat.NewRNG(int64(40 + k))
		s := MentionSentenceK(r, VocabHQ, "Acme Dynamics", "Pine Bluff", k)
		found := 0
		for _, tok := range s.Tokens {
			if cues[tok] {
				found++
			}
		}
		if found != k {
			t.Errorf("k=%d realized %d cue terms: %v", k, found, s.Tokens)
		}
		if len(s.Tokens) != ContextLen+4 {
			t.Errorf("k=%d token count %d", k, len(s.Tokens))
		}
	}
	// Clamping: k beyond the pattern size realizes a full pattern.
	r := stat.NewRNG(99)
	s := MentionSentenceK(r, VocabHQ, "Acme Dynamics", "Pine Bluff", 10)
	found := 0
	for _, tok := range s.Tokens {
		if cues[tok] {
			found++
		}
	}
	if found != 4 {
		t.Errorf("k=10 should clamp to pattern size 4, realized %d", found)
	}
}
