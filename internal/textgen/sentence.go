package textgen

import (
	"strings"

	"joinopt/internal/stat"
)

// ContextLen is the number of context (non-entity) words in every mention
// sentence. Fixed context length makes the cosine-similarity score of a
// mention a simple function of its realized cue-term count k:
// cos = k / sqrt(|pattern| · ContextLen), giving the extraction engine a
// clean, analyzable score lattice.
const ContextLen = 6

// Sentence is a tokenized sentence plus the spans of any embedded entities.
type Sentence struct {
	Tokens []string
}

// MentionSentence renders a sentence expressing the pair (e1, e2) for the
// task, embedding the sampled cue terms plus distinct noise words for a
// total of ContextLen context words. good selects the cue-count
// distribution (good mentions carry more cue terms than deceptive ones).
func MentionSentence(r *stat.RNG, v TaskVocab, e1, e2 string, good bool) Sentence {
	cues := v.SampleCues(r, good)
	need := ContextLen - len(cues)
	noise := SampleDistinct(r, NoiseWords, need)
	ctx := append(cues, noise...)
	r.Shuffle(len(ctx), func(i, j int) { ctx[i], ctx[j] = ctx[j], ctx[i] })

	// Layout: E1 ctx[0:3] E2 ctx[3:6]. Word order is irrelevant to the
	// bag-of-words scorer; this just reads plausibly.
	tokens := make([]string, 0, ContextLen+8)
	tokens = append(tokens, strings.Fields(e1)...)
	tokens = append(tokens, ctx[:3]...)
	tokens = append(tokens, strings.Fields(e2)...)
	tokens = append(tokens, ctx[3:]...)
	return Sentence{Tokens: tokens}
}

// MentionSentenceK renders a mention sentence realizing exactly k cue terms
// from a random pattern (clamped to the pattern size). The corpus generator
// uses it to plant outlier values whose mentions are too weak for any
// standard knob setting to extract.
func MentionSentenceK(r *stat.RNG, v TaskVocab, e1, e2 string, k int) Sentence {
	pattern := v.Patterns[r.Intn(len(v.Patterns))]
	if k > len(pattern) {
		k = len(pattern)
	}
	if k < 0 {
		k = 0
	}
	perm := r.Perm(len(pattern))
	cues := make([]string, k)
	for i := 0; i < k; i++ {
		cues[i] = pattern[perm[i]]
	}
	noise := SampleDistinct(r, NoiseWords, ContextLen-k)
	ctx := append(cues, noise...)
	r.Shuffle(len(ctx), func(i, j int) { ctx[i], ctx[j] = ctx[j], ctx[i] })

	tokens := make([]string, 0, ContextLen+8)
	tokens = append(tokens, strings.Fields(e1)...)
	tokens = append(tokens, ctx[:3]...)
	tokens = append(tokens, strings.Fields(e2)...)
	tokens = append(tokens, ctx[3:]...)
	return Sentence{Tokens: tokens}
}

// FillerSentence renders an entity-free body sentence of 8-14 filler words.
func FillerSentence(r *stat.RNG) Sentence {
	n := 8 + r.Intn(7)
	tokens := make([]string, n)
	for i := range tokens {
		tokens[i] = FillerWords[r.Intn(len(FillerWords))]
	}
	return Sentence{Tokens: tokens}
}

// CasualSentence renders a filler sentence that name-drops a single entity
// without any relation context. Casual mentions make keyword queries on
// attribute values retrieve some useless documents, so query precision
// P(q) < 1 — as in real search interfaces.
func CasualSentence(r *stat.RNG, entity string) Sentence {
	n := 6 + r.Intn(5)
	tokens := make([]string, 0, n+3)
	for i := 0; i < n/2; i++ {
		tokens = append(tokens, FillerWords[r.Intn(len(FillerWords))])
	}
	tokens = append(tokens, strings.Fields(entity)...)
	for i := n / 2; i < n; i++ {
		tokens = append(tokens, FillerWords[r.Intn(len(FillerWords))])
	}
	return Sentence{Tokens: tokens}
}

// Render joins sentences into document text, one sentence per period.
func Render(sentences []Sentence) string {
	var b strings.Builder
	for i, s := range sentences {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strings.Join(s.Tokens, " "))
		b.WriteString(" .")
	}
	return b.String()
}
