package extract

import (
	"math"
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/relation"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

func testGazetteer() *textgen.Gazetteer {
	return textgen.NewGazetteer(300, 240, 120)
}

func testCorpus(t *testing.T, seed int64) (*corpus.DB, *textgen.Gazetteer) {
	t.Helper()
	g := testGazetteer()
	spec := corpus.RelationSpec{
		Vocab:         textgen.VocabHQ,
		Schema:        relation.Schema{Name: "Headquarters", Attr1: "Company", Attr2: "Location"},
		GoodValues:    g.Companies[:150],
		BadValues:     g.Companies[120:200],
		GoodSeconds:   g.Locations[:60],
		BadSeconds:    g.Locations[60:120],
		GoodFreq:      stat.MustPowerLaw(2.0, 10),
		BadFreq:       stat.MustPowerLaw(2.2, 8),
		NumGoodDocs:   150,
		NumBadDocs:    60,
		BadInGoodRate: 0.3,
		Outliers:      g.Companies[290:292],
		OutlierFreq:   20,
	}
	db, err := corpus.Generate(corpus.Config{
		Name: "hqdb", NumDocs: 700, Seed: seed,
		Relations:  []corpus.RelationSpec{spec},
		CasualRate: 0.25, CasualPool: g.Companies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func hqSystem(t *testing.T, g *textgen.Gazetteer) *System {
	t.Helper()
	sys, err := NewSystemFromVocab(textgen.VocabHQ, NewTagger(g))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTaggerLongestMatch(t *testing.T) {
	g := &textgen.Gazetteer{
		Companies: []string{"Acme Dynamics", "Acme Dynamics 2"},
		Locations: []string{"Pine Bluff"},
	}
	tagger := NewTagger(g)
	tokens := []string{"acme", "dynamics", "2", "near", "pine", "bluff"}
	ents, covered := tagger.Tag(tokens)
	if len(ents) != 2 {
		t.Fatalf("entities %v", ents)
	}
	if ents[0].Name != "Acme Dynamics 2" {
		t.Errorf("greedy longest match failed: %q", ents[0].Name)
	}
	if ents[1].Name != "Pine Bluff" || ents[1].Type != textgen.Location {
		t.Errorf("location tag wrong: %+v", ents[1])
	}
	if covered[3] {
		t.Error("non-entity token marked covered")
	}
	if !covered[0] || !covered[5] {
		t.Error("entity tokens not covered")
	}
}

func TestSplitSentences(t *testing.T) {
	s := SplitSentences("a b . c . . d e f .")
	if len(s) != 3 {
		t.Fatalf("sentences %v", s)
	}
	if len(s[0]) != 2 || len(s[1]) != 1 || len(s[2]) != 3 {
		t.Errorf("sentence shapes %v", s)
	}
}

func TestPatternScoreLattice(t *testing.T) {
	// With a 4-term pattern and a 6-token context of distinct tokens,
	// cosine = k/sqrt(24) for k matched cue terms.
	p := NewPattern([]string{"w1", "w2", "w3", "w4"})
	ctx := map[string]int{"w1": 1, "w2": 1, "n1": 1, "n2": 1, "n3": 1, "n4": 1}
	got := p.Score(ctx, 6)
	want := 2.0 / math.Sqrt(24)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("score %v, want %v", got, want)
	}
	if p.Score(map[string]int{"z": 1}, 1) != 0 {
		t.Error("disjoint context must score zero")
	}
}

func TestExtractEmitsPlantedMention(t *testing.T) {
	g := testGazetteer()
	r := stat.NewRNG(1)
	sent := textgen.MentionSentenceK(r, textgen.VocabHQ, g.Companies[0], g.Locations[0], 4)
	text := textgen.Render([]textgen.Sentence{sent})
	sys := hqSystem(t, g)
	tuples := sys.Extract(text, 0.8)
	if len(tuples) != 1 {
		t.Fatalf("extracted %v", tuples)
	}
	if tuples[0].A1 != g.Companies[0] || tuples[0].A2 != g.Locations[0] {
		t.Errorf("tuple %v", tuples[0])
	}
}

func TestExtractThresholdFiltersWeakMentions(t *testing.T) {
	g := testGazetteer()
	r := stat.NewRNG(2)
	sent := textgen.MentionSentenceK(r, textgen.VocabHQ, g.Companies[0], g.Locations[0], 1)
	text := textgen.Render([]textgen.Sentence{sent})
	sys := hqSystem(t, g)
	if got := sys.Extract(text, 0.4); len(got) != 0 {
		t.Errorf("k=1 mention must not pass minSim=0.4, got %v", got)
	}
	if got := sys.Extract(text, 0.1); len(got) != 1 {
		t.Errorf("k=1 mention should pass minSim=0.1, got %v", got)
	}
}

func TestExtractKnobScoreBoundaries(t *testing.T) {
	// k cue terms in a 6-word context score k/sqrt(24): 0.204, 0.408,
	// 0.612, 0.816. minSim 0.4 admits k>=2; 0.8 admits only k=4.
	g := testGazetteer()
	sys := hqSystem(t, g)
	for k := 1; k <= 4; k++ {
		r := stat.NewRNG(int64(k))
		sent := textgen.MentionSentenceK(r, textgen.VocabHQ, g.Companies[0], g.Locations[0], k)
		text := textgen.Render([]textgen.Sentence{sent})
		cands := sys.Candidates(text)
		if len(cands) != 1 {
			t.Fatalf("k=%d candidates %v", k, cands)
		}
		want := float64(k) / math.Sqrt(24)
		if math.Abs(cands[0].Score-want) > 1e-9 {
			t.Errorf("k=%d score %v, want %v", k, cands[0].Score, want)
		}
	}
}

func TestExtractIgnoresCasualMentions(t *testing.T) {
	g := testGazetteer()
	r := stat.NewRNG(3)
	sent := textgen.CasualSentence(r, g.Companies[5])
	text := textgen.Render([]textgen.Sentence{sent})
	sys := hqSystem(t, g)
	if got := sys.Extract(text, 0.0); len(got) != 0 {
		t.Errorf("casual mention extracted: %v", got)
	}
}

func TestMergersSameTypePairing(t *testing.T) {
	g := testGazetteer()
	sys, err := NewSystemFromVocab(textgen.VocabMG, NewTagger(g))
	if err != nil {
		t.Fatal(err)
	}
	r := stat.NewRNG(4)
	sent := textgen.MentionSentenceK(r, textgen.VocabMG, g.Companies[1], g.Companies[2], 4)
	text := textgen.Render([]textgen.Sentence{sent})
	tuples := sys.Extract(text, 0.8)
	if len(tuples) != 1 || tuples[0].A1 != g.Companies[1] || tuples[0].A2 != g.Companies[2] {
		t.Fatalf("merger pairing %v", tuples)
	}
}

func TestMeasureRatesMatchCueDistributions(t *testing.T) {
	db, g := testCorpus(t, 10)
	sys := hqSystem(t, g)
	rates, err := MeasureRates(sys, db)
	if err != nil {
		t.Fatal(err)
	}
	// tp(0.4) should approximate P(k>=2 | good) = 0.85;
	// tp(0.8) approximates P(k=4 | good) = 0.30. Bands are wide enough for
	// single-seed sampling noise.
	if got := rates.TP(0.4); got < 0.75 || got > 0.93 {
		t.Errorf("tp(0.4) = %v, want ~0.85", got)
	}
	if got := rates.TP(0.8); got < 0.20 || got > 0.42 {
		t.Errorf("tp(0.8) = %v, want ~0.30", got)
	}
	// fp is dragged down further by outlier mentions (always k=1).
	if fp04 := rates.FP(0.4); fp04 > 0.60 || fp04 < 0.25 {
		t.Errorf("fp(0.4) = %v, want well below tp", fp04)
	}
	if rates.FP(0.8) >= rates.FP(0.4) {
		t.Error("fp must decrease with theta")
	}
	if rates.TP(0.0) != 1 {
		t.Errorf("tp(0) = %v, want 1", rates.TP(0.0))
	}
}

func TestMeasureRatesUnknownTask(t *testing.T) {
	db, g := testCorpus(t, 11)
	sys, err := NewSystemFromVocab(textgen.VocabEX, NewTagger(g))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureRates(sys, db); err == nil {
		t.Error("expected error for task not hosted by database")
	}
}

func TestExtractDeduplicates(t *testing.T) {
	g := testGazetteer()
	r := stat.NewRNG(5)
	s1 := textgen.MentionSentenceK(r, textgen.VocabHQ, g.Companies[0], g.Locations[0], 4)
	s2 := textgen.MentionSentenceK(r, textgen.VocabHQ, g.Companies[0], g.Locations[0], 4)
	text := textgen.Render([]textgen.Sentence{s1, s2})
	sys := hqSystem(t, g)
	if got := sys.Extract(text, 0.5); len(got) != 1 {
		t.Errorf("duplicate tuples not merged: %v", got)
	}
}

func TestTrainPatternsRecoverCues(t *testing.T) {
	db, g := testCorpus(t, 12)
	patterns, err := TrainPatterns(db, textgen.VocabHQ, NewTagger(g), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	learned := map[string]bool{}
	for _, p := range patterns {
		for _, term := range p.Terms {
			learned[term] = true
		}
	}
	cues := textgen.VocabHQ.CueTermSet()
	hits := 0
	for c := range cues {
		if learned[c] {
			hits++
		}
	}
	if hits < len(cues)*2/3 {
		t.Errorf("training recovered %d/%d cue terms: %v", hits, len(cues), patterns)
	}
}

func TestTrainedSystemExtracts(t *testing.T) {
	db, g := testCorpus(t, 13)
	tagger := NewTagger(g)
	patterns, err := TrainPatterns(db, textgen.VocabHQ, tagger, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem("HQ", textgen.Company, textgen.Location, patterns, tagger)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := MeasureRates(sys, db)
	if err != nil {
		t.Fatal(err)
	}
	if rates.TP(0.4) < 0.5 {
		t.Errorf("trained system tp(0.4) = %v, too weak", rates.TP(0.4))
	}
}

func TestTrainPatternsErrors(t *testing.T) {
	db, g := testCorpus(t, 14)
	tagger := NewTagger(g)
	if _, err := TrainPatterns(db, textgen.VocabEX, tagger, 3, 4); err == nil {
		t.Error("expected error for unhosted task")
	}
	if _, err := TrainPatterns(db, textgen.VocabHQ, tagger, 0, 4); err == nil {
		t.Error("expected error for zero patterns")
	}
}

func TestNewSystemValidation(t *testing.T) {
	g := testGazetteer()
	if _, err := NewSystem("X", textgen.Company, textgen.Location, nil, NewTagger(g)); err == nil {
		t.Error("expected error for no patterns")
	}
	if _, err := NewSystem("X", textgen.Company, textgen.Location, []Pattern{NewPattern([]string{"a"})}, nil); err == nil {
		t.Error("expected error for nil tagger")
	}
}

func TestTaggerCrossTypeSharedPrefix(t *testing.T) {
	// Entities of different types sharing a first token: greedy longest
	// match must still resolve correctly, and type assignment must follow
	// the matched entry.
	g := &textgen.Gazetteer{
		Companies: []string{"Granite Systems"},
		Locations: []string{"Granite Pass"},
	}
	tagger := NewTagger(g)
	ents, _ := tagger.Tag([]string{"granite", "pass", "hosts", "granite", "systems"})
	if len(ents) != 2 {
		t.Fatalf("entities %v", ents)
	}
	if ents[0].Name != "Granite Pass" || ents[0].Type != textgen.Location {
		t.Errorf("first entity %+v", ents[0])
	}
	if ents[1].Name != "Granite Systems" || ents[1].Type != textgen.Company {
		t.Errorf("second entity %+v", ents[1])
	}
}

func TestTaggerNoFalseMatchOnPartialName(t *testing.T) {
	g := &textgen.Gazetteer{Companies: []string{"Acme Dynamics"}}
	tagger := NewTagger(g)
	// "acme" alone (wrong continuation) must not match.
	ents, covered := tagger.Tag([]string{"acme", "robotics", "expanded"})
	if len(ents) != 0 {
		t.Fatalf("spurious entities %v", ents)
	}
	for i, c := range covered {
		if c {
			t.Fatalf("token %d incorrectly covered", i)
		}
	}
}
