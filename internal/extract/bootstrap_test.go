package extract

import (
	"sort"
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/relation"
	"joinopt/internal/textgen"
)

// bootstrapSeeds picks the most prominent gold good tuples (highest value
// frequency, deterministic order), simulating the handful of well-known
// hand-curated seeds Snowball starts from.
func bootstrapSeeds(t *testing.T, db *corpus.DB, task string, n int) []relation.Tuple {
	t.Helper()
	gold := db.Gold(task)
	freq := db.Stats(task).GoodFreq
	out := make([]relation.Tuple, 0, len(gold.Good))
	for tup := range gold.Good {
		out = append(out, tup)
	}
	sort.Slice(out, func(i, j int) bool {
		if freq[out[i].A1] != freq[out[j].A1] {
			return freq[out[i].A1] > freq[out[j].A1]
		}
		if out[i].A1 != out[j].A1 {
			return out[i].A1 < out[j].A1
		}
		return out[i].A2 < out[j].A2
	})
	if len(out) < n {
		t.Fatalf("only %d gold tuples available", len(out))
	}
	return out[:n]
}

func TestBootstrapLearnsCuePatterns(t *testing.T) {
	db, g := testCorpus(t, 21)
	tagger := NewTagger(g)
	seeds := bootstrapSeeds(t, db, "HQ", 5)
	sys, finalSeeds, err := Bootstrap(db, textgen.VocabHQ, tagger, seeds, BootstrapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cues := textgen.VocabHQ.CueTermSet()
	hits := 0
	for _, p := range sys.Patterns {
		for _, term := range p.Terms {
			if cues[term] {
				hits++
			}
		}
	}
	if hits < 4 {
		t.Errorf("bootstrapping recovered only %d cue terms: %v", hits, sys.Patterns)
	}
	if len(finalSeeds) <= len(seeds) {
		t.Errorf("no tuples promoted: %d seeds after %d rounds", len(finalSeeds), 3)
	}
}

func TestBootstrapSystemExtractsWell(t *testing.T) {
	db, g := testCorpus(t, 22)
	tagger := NewTagger(g)
	seeds := bootstrapSeeds(t, db, "HQ", 5)
	sys, _, err := Bootstrap(db, textgen.VocabHQ, tagger, seeds, BootstrapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := MeasureRates(sys, db)
	if err != nil {
		t.Fatal(err)
	}
	if rates.TP(0.4) < 0.5 {
		t.Errorf("bootstrapped system tp(0.4) = %v, too weak", rates.TP(0.4))
	}
	if rates.FP(0.4) >= rates.TP(0.4) {
		t.Errorf("bootstrapped system does not separate: tp %v fp %v", rates.TP(0.4), rates.FP(0.4))
	}
}

func TestBootstrapPromotionGrowsSeeds(t *testing.T) {
	db, g := testCorpus(t, 23)
	tagger := NewTagger(g)
	seeds := bootstrapSeeds(t, db, "HQ", 5)
	_, grown, err := Bootstrap(db, textgen.VocabHQ, tagger, seeds,
		BootstrapConfig{Rounds: 3, PromoteTop: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Two promotion rounds of up to 8 tuples each.
	if len(grown) < len(seeds)+4 || len(grown) > len(seeds)+16 {
		t.Errorf("seed growth %d -> %d outside expected range", len(seeds), len(grown))
	}
	// The promoted tuples should be mostly genuine (good per gold).
	gold := db.Gold("HQ")
	good := 0
	for _, tup := range grown {
		if gold.IsGood(tup) {
			good++
		}
	}
	if frac := float64(good) / float64(len(grown)); frac < 0.6 {
		t.Errorf("only %.0f%% of the grown seed set is genuine", frac*100)
	}
}

func TestBootstrapErrors(t *testing.T) {
	db, g := testCorpus(t, 24)
	tagger := NewTagger(g)
	if _, _, err := Bootstrap(db, textgen.VocabHQ, tagger, nil, BootstrapConfig{}); err == nil {
		t.Error("expected error for empty seeds")
	}
	if _, _, err := Bootstrap(db, textgen.VocabHQ, nil,
		[]relation.Tuple{{A1: "x", A2: "y"}}, BootstrapConfig{}); err == nil {
		t.Error("expected error for nil tagger")
	}
	// Seeds that never occur in the corpus.
	ghost := []relation.Tuple{{A1: "No Such Company", A2: "Nowhere"}}
	if _, _, err := Bootstrap(db, textgen.VocabHQ, tagger, ghost, BootstrapConfig{}); err == nil {
		t.Error("expected error for unoccurring seeds")
	}
}
