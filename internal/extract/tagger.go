// Package extract implements the information-extraction systems: a
// dictionary-based entity tagger and a Snowball-style pattern-vector
// extraction engine whose tuning knob θ is the minimum cosine similarity
// (minSim) between a candidate tuple's context and a learned extraction
// pattern — the same knob the paper tunes on Snowball (§VII).
//
// The engine is a real pipeline over raw text: sentence splitting, greedy
// longest-match entity tagging, bag-of-words context vectors, cosine scoring
// against pattern term vectors, and thresholded emission. Its per-occurrence
// behaviour is summarized, exactly as in the paper, by the true-positive
// rate tp(θ) and false-positive rate fp(θ) measured by this package.
package extract

import (
	"strings"

	"joinopt/internal/index"
	"joinopt/internal/textgen"
)

// Tagger recognizes gazetteer entities in token streams by greedy
// longest-match lookup.
type Tagger struct {
	// byFirst maps the first (lowercased) token of an entity name to the
	// candidate entries starting with it, longest first.
	byFirst map[string][]taggerEntry
	maxLen  int
}

type taggerEntry struct {
	tokens    []string
	canonical string
	etype     textgen.EntityType
}

// NewTagger builds a tagger over the gazetteer.
func NewTagger(g *textgen.Gazetteer) *Tagger {
	t := &Tagger{byFirst: map[string][]taggerEntry{}}
	add := func(names []string, et textgen.EntityType) {
		for _, name := range names {
			toks := index.Tokenize(name)
			if len(toks) == 0 {
				continue
			}
			t.byFirst[toks[0]] = append(t.byFirst[toks[0]], taggerEntry{tokens: toks, canonical: name, etype: et})
			if len(toks) > t.maxLen {
				t.maxLen = len(toks)
			}
		}
	}
	add(g.Companies, textgen.Company)
	add(g.Persons, textgen.Person)
	add(g.Locations, textgen.Location)
	// Longest-first within each bucket so greedy matching prefers the most
	// specific entity ("Acme Dynamics 2" over "Acme Dynamics").
	for k := range t.byFirst {
		entries := t.byFirst[k]
		for i := 1; i < len(entries); i++ {
			for j := i; j > 0 && len(entries[j].tokens) > len(entries[j-1].tokens); j-- {
				entries[j], entries[j-1] = entries[j-1], entries[j]
			}
		}
	}
	return t
}

// Entity is a tagged entity occurrence within a sentence.
type Entity struct {
	Name  string // canonical gazetteer name
	Type  textgen.EntityType
	Start int // token offset
	End   int // exclusive token offset
}

// Tag finds entity occurrences in tokens by greedy longest match and returns
// them in order along with a mask of the tokens covered by entities.
func (t *Tagger) Tag(tokens []string) ([]Entity, []bool) {
	return t.TagInto(tokens, nil, nil)
}

// TagInto is Tag with caller-owned entity and mask buffers, reused across
// calls so the per-sentence extraction loop does not allocate (see extract's
// scan scratch and the alloc guard).
func (t *Tagger) TagInto(tokens []string, ents []Entity, mask []bool) ([]Entity, []bool) {
	var covered []bool
	if cap(mask) >= len(tokens) {
		covered = mask[:len(tokens)]
		clear(covered)
	} else {
		covered = make([]bool, len(tokens))
	}
	out := ents[:0]
	for i := 0; i < len(tokens); {
		matched := false
		for _, e := range t.byFirst[tokens[i]] {
			n := len(e.tokens)
			if i+n > len(tokens) {
				continue
			}
			ok := true
			for j := 1; j < n; j++ {
				if tokens[i+j] != e.tokens[j] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, Entity{Name: e.canonical, Type: e.etype, Start: i, End: i + n})
				for j := i; j < i+n; j++ {
					covered[j] = true
				}
				i += n
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out, covered
}

// SplitSentences splits document text on periods and tokenizes each
// sentence.
func SplitSentences(text string) [][]string {
	parts := strings.Split(text, ".")
	out := make([][]string, 0, len(parts))
	for _, p := range parts {
		toks := index.Tokenize(p)
		if len(toks) > 0 {
			out = append(out, toks)
		}
	}
	return out
}
