package extract

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"joinopt/internal/index"
	"joinopt/internal/relation"
	"joinopt/internal/textgen"
)

// Pattern is an extraction pattern: a term vector with uniform weights, as
// learned by Snowball-style bootstrapping. A candidate tuple's context is
// scored by cosine similarity against each pattern; the best score is
// compared to the minSim knob.
type Pattern struct {
	Terms []string

	norm float64
	set  map[string]bool
}

// NewPattern builds a pattern from cue terms.
func NewPattern(terms []string) Pattern {
	p := Pattern{Terms: terms, set: map[string]bool{}}
	for _, t := range terms {
		p.set[t] = true
	}
	p.norm = math.Sqrt(float64(len(p.set)))
	return p
}

// Score returns the cosine similarity between the pattern and a context
// bag-of-words with the given total token count.
func (p Pattern) Score(context map[string]int, contextLen int) float64 {
	if contextLen == 0 || p.norm == 0 {
		return 0
	}
	var dot float64
	var sq float64
	for term, c := range context {
		sq += float64(c) * float64(c)
		if p.set[term] {
			dot += float64(c)
		}
	}
	if dot == 0 {
		return 0
	}
	return dot / (p.norm * math.Sqrt(sq))
}

// Candidate is a scored candidate tuple found in a document.
type Candidate struct {
	Tuple relation.Tuple
	Score float64
}

// System is a configured IE system for one extraction task: E in the
// paper's notation. Its knob θ (minSim) is supplied per extraction call, so
// one System serves every knob configuration of a plan space.
type System struct {
	Task     string
	Slot1    textgen.EntityType
	Slot2    textgen.EntityType
	Patterns []Pattern

	tagger *Tagger

	extracts atomic.Int64

	cacheMu sync.RWMutex
	cache   map[string][]Candidate
}

// Extracts returns the number of Extract calls made so far — the real
// extractor invocations, counted regardless of the candidate cache. Tests
// use it to assert that the pipelined extraction cache actually avoids work.
func (s *System) Extracts() int64 { return s.extracts.Load() }

// EnableCache memoizes candidate extraction per document text. Tagging and
// scoring dominate extraction cost; plan sweeps that process the same
// documents under many knob settings reuse the scored candidates and apply
// only the threshold. The cache is guarded, so concurrent executions over
// the same System are safe.
func (s *System) EnableCache() {
	s.cacheMu.Lock()
	if s.cache == nil {
		s.cache = map[string][]Candidate{}
	}
	s.cacheMu.Unlock()
}

// ResetCache drops every memoized candidate entry but keeps the cache
// enabled. Benchmarks reset between iterations so each measures the full
// extraction pipeline rather than a map lookup.
func (s *System) ResetCache() {
	s.cacheMu.Lock()
	if s.cache != nil {
		s.cache = map[string][]Candidate{}
	}
	s.cacheMu.Unlock()
}

// NewSystem builds an IE system with the given task slots and patterns over
// a tagger.
func NewSystem(task string, slot1, slot2 textgen.EntityType, patterns []Pattern, tagger *Tagger) (*System, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("extract: system %s needs at least one pattern", task)
	}
	if tagger == nil {
		return nil, fmt.Errorf("extract: system %s needs a tagger", task)
	}
	return &System{Task: task, Slot1: slot1, Slot2: slot2, Patterns: patterns, tagger: tagger}, nil
}

// NewSystemFromVocab builds an IE system directly from a task vocabulary,
// using the vocabulary's cue patterns as the extraction patterns — the
// configuration the standard workloads use.
func NewSystemFromVocab(v textgen.TaskVocab, tagger *Tagger) (*System, error) {
	patterns := make([]Pattern, len(v.Patterns))
	for i, terms := range v.Patterns {
		patterns[i] = NewPattern(terms)
	}
	return NewSystem(v.Task, v.Slot1, v.Slot2, patterns, tagger)
}

// Candidates scans text and returns every candidate tuple with its score,
// before thresholding. Extract applies the knob; Candidates is exposed for
// rate measurement and training. The returned slice must not be modified
// when the cache is enabled.
func (s *System) Candidates(text string) []Candidate {
	s.cacheMu.RLock()
	cached := s.cache != nil
	if cached {
		if c, ok := s.cache[text]; ok {
			s.cacheMu.RUnlock()
			return c
		}
	}
	s.cacheMu.RUnlock()
	out := s.Scan(text)
	if cached {
		s.cacheMu.Lock()
		s.cache[text] = out
		s.cacheMu.Unlock()
	}
	return out
}

// scanScratch is the reusable working state of one extraction pass: token,
// entity, and mask buffers, the context and dedup maps (cleared, not
// reallocated, between uses), and a per-scratch intern table for lowered
// token spans. Scratches cycle through a sync.Pool, so concurrent pipeline
// workers each hold their own and the per-sentence loop stays allocation-free
// once warm (the alloc-budget tests guard this).
type scanScratch struct {
	tokens   []string
	entities []Entity
	covered  []bool
	context  map[string]int
	seen     map[relation.Tuple]bool
	interner index.Interner
}

var scratchPool = sync.Pool{New: func() any {
	return &scanScratch{
		context:  map[string]int{},
		seen:     map[relation.Tuple]bool{},
		interner: index.Interner{},
	}
}}

// Scan performs the actual sentence-level extraction pass, bypassing the
// candidate cache (cost calibration measures the real pipeline with it).
func (s *System) Scan(text string) []Candidate {
	sc := scratchPool.Get().(*scanScratch)
	defer scratchPool.Put(sc)
	var out []Candidate
	// Iterate the '.'-separated sentence segments in place rather than
	// materializing a [][]string for the whole document.
	for rest := text; rest != ""; {
		var seg string
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			seg, rest = rest, ""
		}
		sc.tokens = index.TokenizeInto(seg, sc.tokens[:0], sc.interner)
		if len(sc.tokens) == 0 {
			continue
		}
		sc.entities, sc.covered = s.tagger.TagInto(sc.tokens, sc.entities, sc.covered)
		pair, ok := s.slotPair(sc.entities)
		if !ok {
			continue
		}
		clear(sc.context)
		contextLen := 0
		for i, tok := range sc.tokens {
			if !sc.covered[i] {
				sc.context[tok]++
				contextLen++
			}
		}
		score := 0.0
		for _, p := range s.Patterns {
			if v := p.Score(sc.context, contextLen); v > score {
				score = v
			}
		}
		if score <= 0 {
			continue
		}
		out = append(out, Candidate{Tuple: pair, Score: score})
	}
	return out
}

// slotPairs matches tagged entities to the task's slots; it wraps slotPair
// for the cold callers (bootstrapping, training) that want a slice.
func (s *System) slotPairs(entities []Entity) []relation.Tuple {
	if pair, ok := s.slotPair(entities); ok {
		return []relation.Tuple{pair}
	}
	return nil
}

// slotPair matches tagged entities to the task's slots: the first Slot1
// entity paired with the first distinct Slot2 entity following it (or
// anywhere in the sentence when none follows). Same-type tasks (e.g.
// Mergers' Company-Company) pair the first two distinct companies in order.
// It allocates nothing — the sentence hot path calls it per sentence.
func (s *System) slotPair(entities []Entity) (relation.Tuple, bool) {
	if s.Slot1 == s.Slot2 {
		var first, second string
		for _, e := range entities {
			if e.Type != s.Slot1 {
				continue
			}
			if first == "" {
				first = e.Name
			} else if e.Name != first {
				second = e.Name
				break
			}
		}
		if second == "" {
			return relation.Tuple{}, false
		}
		return relation.Tuple{A1: first, A2: second}, true
	}
	var first1, first2 string
	for _, e := range entities {
		if first1 == "" && e.Type == s.Slot1 {
			first1 = e.Name
		}
		if first2 == "" && e.Type == s.Slot2 {
			first2 = e.Name
		}
	}
	if first1 == "" || first2 == "" {
		return relation.Tuple{}, false
	}
	return relation.Tuple{A1: first1, A2: first2}, true
}

// Extract runs the system over text at knob configuration theta (minSim)
// and returns the emitted tuples, deduplicated, in deterministic order.
func (s *System) Extract(text string, theta float64) []relation.Tuple {
	s.extracts.Add(1)
	cands := s.Candidates(text)
	var out []relation.Tuple
	sc := scratchPool.Get().(*scanScratch)
	clear(sc.seen)
	for _, c := range cands {
		if c.Score >= theta && !sc.seen[c.Tuple] {
			sc.seen[c.Tuple] = true
			out = append(out, c.Tuple)
		}
	}
	scratchPool.Put(sc)
	// Tuples are distinct after the dedup, so any comparison sort yields the
	// same deterministic order; SortFunc avoids sort.Slice's interface and
	// closure allocations.
	slices.SortFunc(out, func(a, b relation.Tuple) int {
		if c := strings.Compare(a.A1, b.A1); c != 0 {
			return c
		}
		return strings.Compare(a.A2, b.A2)
	})
	return out
}
