package extract

import (
	"fmt"
	"math"
	"sort"

	"joinopt/internal/corpus"
	"joinopt/internal/relation"
	"joinopt/internal/textgen"
)

// BootstrapConfig tunes Snowball-style pattern bootstrapping.
type BootstrapConfig struct {
	// Rounds of the seed → patterns → tuples → seed loop (default 3).
	Rounds int
	// MaxPatterns and PatternSize shape the learned pattern set
	// (defaults 3 and 4).
	MaxPatterns int
	PatternSize int
	// MinSim is the acceptance threshold used while harvesting candidate
	// tuples during bootstrapping (default 0.4).
	MinSim float64
	// PromoteTop tuples (by confidence) join the seed set each round
	// (default 10).
	PromoteTop int
}

func (c *BootstrapConfig) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 3
	}
	if c.PatternSize <= 0 {
		c.PatternSize = 4
	}
	if c.MinSim <= 0 {
		c.MinSim = 0.4
	}
	if c.PromoteTop <= 0 {
		c.PromoteTop = 10
	}
}

// Bootstrap learns an extraction system Snowball-style from a handful of
// seed tuples and an *unlabeled* corpus — the training regime of the
// paper's underlying IE system [Agichtein & Gravano 2000]. Each round:
//
//  1. find the sentences expressing the current seed tuples (both entities
//     present in slot order) and collect their context bags;
//  2. learn pattern term-vectors from those contexts (term weight =
//     within-seed-context frequency against the corpus background, grouped
//     by co-occurrence);
//  3. score every candidate pair in the corpus against the patterns and
//     promote the most confident new tuples into the seed set.
//
// It returns the learned system and the final seed set. Labels (gold sets,
// document classes) are never consulted.
func Bootstrap(db *corpus.DB, vocab textgen.TaskVocab, tagger *Tagger, seeds []relation.Tuple, cfg BootstrapConfig) (*System, []relation.Tuple, error) {
	cfg.defaults()
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("extract: bootstrap needs seed tuples")
	}
	if tagger == nil {
		return nil, nil, fmt.Errorf("extract: bootstrap needs a tagger")
	}
	scanner := &System{Task: vocab.Task, Slot1: vocab.Slot1, Slot2: vocab.Slot2, tagger: tagger}

	// Pre-scan the corpus once: every sentence with a slot pair, its
	// tuple, and its context bag.
	type occurrence struct {
		tuple relation.Tuple
		ctx   map[string]int
	}
	var occs []occurrence
	background := map[string]int{}
	var backgroundTotal int
	for _, doc := range db.Docs {
		for _, tokens := range SplitSentences(doc.Text) {
			entities, covered := tagger.Tag(tokens)
			pairs := scanner.slotPairs(entities)
			ctx := map[string]int{}
			for i, tok := range tokens {
				if !covered[i] {
					ctx[tok]++
					background[tok]++
					backgroundTotal++
				}
			}
			for _, pair := range pairs {
				occs = append(occs, occurrence{tuple: pair, ctx: ctx})
			}
		}
	}
	if len(occs) == 0 {
		return nil, nil, fmt.Errorf("extract: corpus has no candidate pairs to bootstrap from")
	}

	seedSet := map[relation.Tuple]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}

	var sys *System
	for round := 0; round < cfg.Rounds; round++ {
		// 1. Contexts of current seeds.
		var seedCtx []map[string]int
		for _, o := range occs {
			if seedSet[o.tuple] {
				seedCtx = append(seedCtx, o.ctx)
			}
		}
		if len(seedCtx) == 0 {
			return nil, nil, fmt.Errorf("extract: no seed tuple occurs in the corpus")
		}
		// 2. Learn patterns from seed contexts against the corpus
		// background.
		patterns := patternsFromContexts(seedCtx, background, backgroundTotal, cfg.MaxPatterns, cfg.PatternSize)
		if len(patterns) == 0 {
			return nil, nil, fmt.Errorf("extract: bootstrapping produced no patterns in round %d", round+1)
		}
		var err error
		sys, err = NewSystem(vocab.Task, vocab.Slot1, vocab.Slot2, patterns, tagger)
		if err != nil {
			return nil, nil, err
		}
		if round == cfg.Rounds-1 {
			break
		}
		// 3. Harvest and promote confident new tuples.
		conf := map[relation.Tuple]float64{}
		for _, o := range occs {
			var total int
			for _, c := range o.ctx {
				total += c
			}
			best := 0.0
			for _, p := range patterns {
				if sc := p.Score(o.ctx, total); sc > best {
					best = sc
				}
			}
			if best >= cfg.MinSim && best > conf[o.tuple] {
				conf[o.tuple] = best
			}
		}
		type scored struct {
			t relation.Tuple
			c float64
		}
		var fresh []scored
		for t, c := range conf {
			if !seedSet[t] {
				fresh = append(fresh, scored{t, c})
			}
		}
		sort.Slice(fresh, func(i, j int) bool {
			if fresh[i].c != fresh[j].c {
				return fresh[i].c > fresh[j].c
			}
			if fresh[i].t.A1 != fresh[j].t.A1 {
				return fresh[i].t.A1 < fresh[j].t.A1
			}
			return fresh[i].t.A2 < fresh[j].t.A2
		})
		for i := 0; i < len(fresh) && i < cfg.PromoteTop; i++ {
			seedSet[fresh[i].t] = true
		}
	}

	finalSeeds := make([]relation.Tuple, 0, len(seedSet))
	for t := range seedSet {
		finalSeeds = append(finalSeeds, t)
	}
	sort.Slice(finalSeeds, func(i, j int) bool {
		if finalSeeds[i].A1 != finalSeeds[j].A1 {
			return finalSeeds[i].A1 < finalSeeds[j].A1
		}
		return finalSeeds[i].A2 < finalSeeds[j].A2
	})
	return sys, finalSeeds, nil
}

// patternsFromContexts ranks terms by their log-lift over the corpus
// background within the given contexts and groups the top terms into
// pattern vectors by co-occurrence.
func patternsFromContexts(contexts []map[string]int, background map[string]int, backgroundTotal, numPatterns, patternSize int) []Pattern {
	termCount := map[string]int{}
	termDF := map[string]int{} // contexts containing the term
	var total int
	cooc := map[[2]string]int{}
	for _, ctx := range contexts {
		terms := make([]string, 0, len(ctx))
		for term, c := range ctx {
			termCount[term] += c
			termDF[term]++
			total += c
			terms = append(terms, term)
		}
		sort.Strings(terms)
		for a := 0; a < len(terms); a++ {
			for b := a + 1; b < len(terms); b++ {
				cooc[[2]string{terms[a], terms[b]}]++
			}
		}
	}
	if total == 0 {
		return nil
	}
	// Cue terms recur across seed contexts; incidental noise words rarely
	// do. Require a minimum support once enough contexts are available.
	minDF := 1
	if len(contexts) >= 6 {
		minDF = 2
	}
	type scoredTerm struct {
		term  string
		score float64
	}
	var ranked []scoredTerm
	for term, c := range termCount {
		if termDF[term] < minDF {
			continue
		}
		pSeed := (float64(c) + 1) / (float64(total) + 2)
		pBack := (float64(background[term]) + 1) / (float64(backgroundTotal) + 2)
		ranked = append(ranked, scoredTerm{term: term, score: math.Log(pSeed / pBack)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].term < ranked[j].term
	})
	limit := numPatterns * patternSize * 2
	if limit > len(ranked) {
		limit = len(ranked)
	}
	top := ranked[:limit]

	used := map[string]bool{}
	coocOf := func(a, b string) int {
		if a > b {
			a, b = b, a
		}
		return cooc[[2]string{a, b}]
	}
	var patterns []Pattern
	for len(patterns) < numPatterns {
		seed := ""
		for _, s := range top {
			if !used[s.term] && s.score > 0 {
				seed = s.term
				break
			}
		}
		if seed == "" {
			break
		}
		used[seed] = true
		group := []string{seed}
		for len(group) < patternSize {
			best, bestC := "", -1
			for _, s := range top {
				if used[s.term] || s.score <= 0 {
					continue
				}
				c := 0
				for _, g := range group {
					c += coocOf(s.term, g)
				}
				if c > bestC {
					best, bestC = s.term, c
				}
			}
			if best == "" {
				break
			}
			used[best] = true
			group = append(group, best)
		}
		patterns = append(patterns, NewPattern(group))
	}
	return patterns
}
