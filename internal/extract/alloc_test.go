package extract

import (
	"testing"

	"joinopt/internal/index"
)

// The extraction hot path is what the pipelined executor parallelizes, so
// its allocation behaviour decides whether workers scale or fight the
// allocator and GC. These tests mirror the index package's SearchInto
// alloc guard: once the pooled scratch (token/entity/mask buffers, context
// and dedup maps, intern table) is warm, a full extraction pass must stay
// within a small per-document allocation budget — only the escaping result
// slices may allocate, never the per-sentence machinery.

// TestTokenizeIntoWarmZeroAlloc: with a warm buffer and intern table,
// tokenization allocates nothing — lower-case spans are substrings of the
// input and mixed-case spans resolve through the interner.
func TestTokenizeIntoWarmZeroAlloc(t *testing.T) {
	texts := []string{
		"Acme Dynamics is based in Pine Bluff.",
		"THE quick Brown fox JUMPED over 42 lazy dogs.",
		"plain lower case text with no upper at all",
	}
	in := index.Interner{}
	var buf []string
	for _, s := range texts { // warm buffer and interner
		buf = index.TokenizeInto(s, buf[:0], in)
	}
	for _, s := range texts {
		allocs := testing.AllocsPerRun(100, func() {
			buf = index.TokenizeInto(s, buf[:0], in)
		})
		if allocs != 0 {
			t.Errorf("TokenizeInto(%q) with warm buffer+interner: %.1f allocs/op, want 0", s, allocs)
		}
	}
}

// TestTagIntoWarmZeroAlloc: entity tagging with caller-owned buffers must
// not allocate once the buffers have grown to the sentence's size.
func TestTagIntoWarmZeroAlloc(t *testing.T) {
	g := testGazetteer()
	tagger := NewTagger(g)
	tokens := index.Tokenize(g.Companies[0] + " moved to " + g.Locations[0] + " with " + g.Persons[0])
	ents, covered := tagger.TagInto(tokens, nil, nil)
	if len(ents) == 0 {
		t.Fatalf("tagger found no entities in %v", tokens)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ents, covered = tagger.TagInto(tokens, ents, covered)
	})
	if allocs != 0 {
		t.Errorf("TagInto with warm buffers: %.1f allocs/op, want 0", allocs)
	}
}

// TestScanAllocBudget bounds the full sentence-level pass: per document,
// only the escaping candidate slice may allocate. The pre-pool pipeline
// spent tens of allocations per sentence (token slices, per-token lowered
// strings, entity slices, masks, context maps); the budget pins the pooled
// regime so it cannot silently creep back.
func TestScanAllocBudget(t *testing.T) {
	db, g := testCorpus(t, 7)
	sys := hqSystem(t, g)
	for _, d := range db.Docs { // warm the scratch pool and interner
		sys.Scan(d.Text)
	}
	perDoc := testing.AllocsPerRun(5, func() {
		for _, d := range db.Docs {
			sys.Scan(d.Text)
		}
	}) / float64(len(db.Docs))
	// Documents average several sentences; 4 allocations covers candidate
	// slice growth with headroom while staying an order of magnitude below
	// the unpooled pipeline.
	if perDoc > 4 {
		t.Errorf("Scan with warm scratch: %.2f allocs per document, want <= 4", perDoc)
	}
}

// TestExtractAllocBudget bounds the executor-visible entry point (scan +
// threshold + dedup + sort): only the emitted tuple slice may allocate on
// top of Scan's candidates.
func TestExtractAllocBudget(t *testing.T) {
	db, g := testCorpus(t, 11)
	sys := hqSystem(t, g)
	for _, d := range db.Docs {
		sys.Extract(d.Text, 0.4)
	}
	perDoc := testing.AllocsPerRun(5, func() {
		for _, d := range db.Docs {
			sys.Extract(d.Text, 0.4)
		}
	}) / float64(len(db.Docs))
	if perDoc > 6 {
		t.Errorf("Extract with warm scratch: %.2f allocs per document, want <= 6", perDoc)
	}
}

// TestExtractCachedAllocBudget covers the memoized path the plan sweeps
// rely on: with the candidate cache enabled and hot, Extract pays only for
// the tuple slice it emits.
func TestExtractCachedAllocBudget(t *testing.T) {
	db, g := testCorpus(t, 13)
	sys := hqSystem(t, g)
	sys.EnableCache()
	for _, d := range db.Docs {
		sys.Extract(d.Text, 0.4)
	}
	perDoc := testing.AllocsPerRun(5, func() {
		for _, d := range db.Docs {
			sys.Extract(d.Text, 0.4)
		}
	}) / float64(len(db.Docs))
	if perDoc > 3 {
		t.Errorf("Extract with hot candidate cache: %.2f allocs per document, want <= 3", perDoc)
	}
}
