package extract

import (
	"fmt"
	"sort"

	"joinopt/internal/corpus"
)

// Rates characterizes an IE system's knob behaviour over a database
// (§III-A): for each knob setting θ, TP(θ) is the fraction of extractable
// good occurrences the system emits, and FP(θ) the fraction of extractable
// bad occurrences. "Extractable" means emitted under the most permissive
// configuration (θ → 0), matching the paper's "across all possible knob
// configurations" denominator.
type Rates struct {
	goodScores []float64 // sorted candidate scores of good occurrences
	badScores  []float64 // sorted candidate scores of bad occurrences
}

// MeasureRates runs the system over every document of db at the most
// permissive setting and records each gold-labelled candidate occurrence's
// score. The returned Rates answers TP/FP for any θ. Documents' gold
// mention annotations supply the labels, standing in for the paper's tuple
// verification step.
func MeasureRates(sys *System, db *corpus.DB) (*Rates, error) {
	gold := db.Gold(sys.Task)
	if gold == nil {
		return nil, fmt.Errorf("extract: database %s does not host task %s", db.Name, sys.Task)
	}
	r := &Rates{}
	for _, doc := range db.Docs {
		for _, c := range sys.Candidates(doc.Text) {
			if !gold.Known(c.Tuple) {
				// Spurious candidate (e.g. a casual mention colliding with
				// relation context); count as a bad occurrence.
				r.badScores = append(r.badScores, c.Score)
				continue
			}
			if gold.IsGood(c.Tuple) {
				r.goodScores = append(r.goodScores, c.Score)
			} else {
				r.badScores = append(r.badScores, c.Score)
			}
		}
	}
	sort.Float64s(r.goodScores)
	sort.Float64s(r.badScores)
	return r, nil
}

// TP returns tp(θ): the per-occurrence probability that a good occurrence
// survives the knob.
func (r *Rates) TP(theta float64) float64 { return fracAtLeast(r.goodScores, theta) }

// FP returns fp(θ).
func (r *Rates) FP(theta float64) float64 { return fracAtLeast(r.badScores, theta) }

// GoodTotal returns the number of extractable good occurrences.
func (r *Rates) GoodTotal() int { return len(r.goodScores) }

// BadTotal returns the number of extractable bad occurrences.
func (r *Rates) BadTotal() int { return len(r.badScores) }

func fracAtLeast(sorted []float64, theta float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// First index with score >= theta.
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < theta {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(len(sorted)-lo) / float64(len(sorted))
}
