package extract

import (
	"fmt"
	"math"
	"sort"

	"joinopt/internal/corpus"
	"joinopt/internal/textgen"
)

// TrainPatterns learns extraction patterns for a task from a labelled
// training database, Snowball-style: context terms that discriminate good
// documents are selected by log-odds ratio and grouped into pattern vectors
// by context co-occurrence. The paper trains Snowball on NYT96; workloads
// here may either train on a held-out database or use the task vocabulary's
// canonical patterns directly.
func TrainPatterns(db *corpus.DB, vocab textgen.TaskVocab, tagger *Tagger, numPatterns, patternSize int) ([]Pattern, error) {
	stats := db.Stats(vocab.Task)
	if stats == nil {
		return nil, fmt.Errorf("extract: training database %s does not host task %s", db.Name, vocab.Task)
	}
	if numPatterns <= 0 || patternSize <= 0 {
		return nil, fmt.Errorf("extract: invalid pattern shape %dx%d", numPatterns, patternSize)
	}
	// A slot-pair scanner with a single all-accepting pattern: we only need
	// candidate contexts here, not scores.
	scanner := &System{Task: vocab.Task, Slot1: vocab.Slot1, Slot2: vocab.Slot2, tagger: tagger}

	goodCtx := map[string]int{} // term -> count in good-document pair contexts
	badCtx := map[string]int{}  // term -> count elsewhere
	cooc := map[[2]string]int{} // co-occurrence within good contexts
	var goodTotal, badTotal int // context token totals

	for i, doc := range db.Docs {
		contexts := pairContexts(scanner, doc.Text)
		isGood := stats.Class[i] == corpus.Good
		for _, ctx := range contexts {
			terms := make([]string, 0, len(ctx))
			for term, c := range ctx {
				terms = append(terms, term)
				if isGood {
					goodCtx[term] += c
					goodTotal += c
				} else {
					badCtx[term] += c
					badTotal += c
				}
			}
			if isGood {
				sort.Strings(terms)
				for a := 0; a < len(terms); a++ {
					for b := a + 1; b < len(terms); b++ {
						cooc[[2]string{terms[a], terms[b]}]++
					}
				}
			}
		}
	}
	if goodTotal == 0 {
		return nil, fmt.Errorf("extract: no good pair contexts in training database %s", db.Name)
	}

	// Log-odds ratio with add-one smoothing.
	type scored struct {
		term  string
		score float64
	}
	var ranked []scored
	for term, gc := range goodCtx {
		pg := (float64(gc) + 1) / (float64(goodTotal) + 2)
		pb := (float64(badCtx[term]) + 1) / (float64(badTotal) + 2)
		ranked = append(ranked, scored{term: term, score: math.Log(pg / pb)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].term < ranked[j].term
	})
	limit := numPatterns * patternSize * 2
	if limit > len(ranked) {
		limit = len(ranked)
	}
	top := ranked[:limit]

	// Greedy grouping by co-occurrence: seed with the best unused term, then
	// attach the most co-occurring unused top terms.
	used := map[string]bool{}
	coocOf := func(a, b string) int {
		if a > b {
			a, b = b, a
		}
		return cooc[[2]string{a, b}]
	}
	var patterns []Pattern
	for len(patterns) < numPatterns {
		seed := ""
		for _, s := range top {
			if !used[s.term] {
				seed = s.term
				break
			}
		}
		if seed == "" {
			break
		}
		used[seed] = true
		group := []string{seed}
		for len(group) < patternSize {
			best, bestC := "", -1
			for _, s := range top {
				if used[s.term] {
					continue
				}
				c := 0
				for _, g := range group {
					c += coocOf(s.term, g)
				}
				if c > bestC {
					best, bestC = s.term, c
				}
			}
			if best == "" {
				break
			}
			used[best] = true
			group = append(group, best)
		}
		patterns = append(patterns, NewPattern(group))
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("extract: training produced no patterns")
	}
	return patterns, nil
}

// pairContexts returns the context bag of every sentence of text containing
// a slot pair for the scanner's task.
func pairContexts(scanner *System, text string) []map[string]int {
	var out []map[string]int
	for _, tokens := range SplitSentences(text) {
		entities, covered := scanner.tagger.Tag(tokens)
		if len(scanner.slotPairs(entities)) == 0 {
			continue
		}
		ctx := map[string]int{}
		for i, tok := range tokens {
			if !covered[i] {
				ctx[tok]++
			}
		}
		out = append(out, ctx)
	}
	return out
}
