// Package eval provides the reporting primitives of the experiment harness:
// estimated-vs-actual series (the paper's figures), text tables (the paper's
// Table II), and accuracy summaries.
package eval

import (
	"fmt"
	"math"
	"strings"
)

// Point is one x-position of an estimated-vs-actual comparison.
type Point struct {
	X   float64 // usually a percentage of effort
	Est float64
	Act float64
}

// Series is a labelled estimated-vs-actual curve.
type Series struct {
	Label  string
	XLabel string
	Points []Point
}

// String renders the series as an aligned text table.
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Label)
	x := s.XLabel
	if x == "" {
		x = "x"
	}
	fmt.Fprintf(&b, "  %-28s %14s %14s %8s\n", x, "estimated", "actual", "est/act")
	for _, p := range s.Points {
		ratio := "-"
		if p.Act != 0 {
			ratio = fmt.Sprintf("%.2f", p.Est/p.Act)
		}
		fmt.Fprintf(&b, "  %-28.0f %14.1f %14.1f %8s\n", p.X, p.Est, p.Act, ratio)
	}
	return b.String()
}

// MeanAbsRelErr returns the mean |est−act|/act over points with nonzero
// actuals; NaN when no point qualifies.
func (s Series) MeanAbsRelErr() float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.Act != 0 {
			sum += math.Abs(p.Est-p.Act) / math.Abs(p.Act)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Figure groups the series of one reproduced paper figure.
type Figure struct {
	ID     string // e.g. "Figure 9"
	Title  string
	Series []Series
}

// String renders the figure.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	for _, s := range f.Series {
		b.WriteString(s.String())
	}
	return b.String()
}

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with per-column alignment.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the series as comma-separated rows with a header, for
// plotting outside the harness.
func (s Series) CSV() string {
	var b strings.Builder
	x := s.XLabel
	if x == "" {
		x = "x"
	}
	fmt.Fprintf(&b, "%s,estimated,actual\n", strings.ReplaceAll(x, ",", ";"))
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g,%g,%g\n", p.X, p.Est, p.Act)
	}
	return b.String()
}

// CSV renders every series of the figure, prefixing each row with the
// series label.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,estimated,actual\n")
	for _, s := range f.Series {
		label := strings.ReplaceAll(s.Label, ",", ";")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g,%g\n", label, p.X, p.Est, p.Act)
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated rows (cells containing commas
// are replaced with semicolons).
func (t Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strings.ReplaceAll(c, ",", ";"))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
