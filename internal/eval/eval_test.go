package eval

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesString(t *testing.T) {
	s := Series{
		Label:  "good tuples",
		XLabel: "% docs",
		Points: []Point{{X: 10, Est: 5, Act: 4}, {X: 20, Est: 8, Act: 0}},
	}
	out := s.String()
	if !strings.Contains(out, "good tuples") || !strings.Contains(out, "estimated") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
	if !strings.Contains(out, "1.25") {
		t.Errorf("ratio missing:\n%s", out)
	}
	// Zero actual renders a dash, not a division.
	if !strings.Contains(out, "-") {
		t.Errorf("zero-actual ratio should render as '-':\n%s", out)
	}
}

func TestSeriesDefaultXLabel(t *testing.T) {
	s := Series{Label: "x-less", Points: []Point{{X: 1, Est: 1, Act: 1}}}
	if !strings.Contains(s.String(), "x") {
		t.Error("default x label missing")
	}
}

func TestMeanAbsRelErr(t *testing.T) {
	s := Series{Points: []Point{
		{Est: 110, Act: 100}, // 0.1
		{Est: 80, Act: 100},  // 0.2
		{Est: 5, Act: 0},     // skipped
	}}
	got := s.MeanAbsRelErr()
	if math.Abs(got-0.15) > 1e-12 {
		t.Errorf("mean rel err %v, want 0.15", got)
	}
}

func TestMeanAbsRelErrAllZeroActuals(t *testing.T) {
	s := Series{Points: []Point{{Est: 5, Act: 0}}}
	if !math.IsNaN(s.MeanAbsRelErr()) {
		t.Error("expected NaN for no valid points")
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{
		ID:    "Figure 9",
		Title: "accuracy",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Est: 2, Act: 2}}},
			{Label: "b", Points: []Point{{X: 1, Est: 3, Act: 4}}},
		},
	}
	out := f.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "accuracy") {
		t.Errorf("figure header missing:\n%s", out)
	}
	if strings.Count(out, "estimated") != 2 {
		t.Errorf("expected both series rendered:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"col", "longer-header"},
		Rows: [][]string{
			{"a-very-long-cell", "b"},
			{"c", "d"},
		},
	}
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// The second column must start at the same offset in header and rows.
	headerIdx := strings.Index(lines[1], "longer-header")
	rowIdx := strings.Index(lines[3], "b")
	if headerIdx != rowIdx {
		t.Errorf("columns misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator missing:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := Table{Header: []string{"h"}, Rows: [][]string{{"v"}}}
	if strings.Contains(tab.String(), "===") {
		t.Error("untitled table should not render a title banner")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{XLabel: "% docs", Points: []Point{{X: 10, Est: 5.5, Act: 4}}}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "% docs,estimated,actual\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "10,5.5,4\n") {
		t.Errorf("csv row wrong:\n%s", csv)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{Series: []Series{
		{Label: "good, tuples", Points: []Point{{X: 1, Est: 2, Act: 3}}},
	}}
	csv := f.CSV()
	if !strings.Contains(csv, "good; tuples,1,2,3") {
		t.Errorf("figure csv escaping wrong:\n%s", csv)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}, Rows: [][]string{{"x,y", "z"}}}
	csv := tab.CSV()
	if csv != "a,b\nx;y,z\n" {
		t.Errorf("table csv %q", csv)
	}
}
