package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"joinopt"
	"joinopt/internal/obs"
)

// WorkloadSpec identifies a workload in the registry. It is the registry
// key: two requests with equal specs share one Task — and with it the
// memoized optimizer inputs and the shared extraction cache.
type WorkloadSpec struct {
	// Relations names the two extraction tasks to join ("HQ", "EX", "MG").
	// Defaults to ["HQ", "EX"].
	Relations [2]string `json:"relations"`
	NumDocs   int       `json:"num_docs,omitempty"`
	NumDocs2  int       `json:"num_docs2,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	TopK      int       `json:"top_k,omitempty"`
	// CacheBytes sizes the workload's shared extraction cache (0 uses the
	// service default; negative disables caching for this workload).
	CacheBytes int64 `json:"cache_bytes,omitempty"`
}

// PlanRequest pins an execute-mode job to one plan, mirroring the plan-mode
// flags of cmd/joinopt.
type PlanRequest struct {
	Algorithm string     `json:"algorithm"` // IDJN | OIJN | ZGJN
	Theta     [2]float64 `json:"theta,omitempty"`
	X         [2]string  `json:"x,omitempty"` // SC | FS | AQG per side
	OuterIdx  int        `json:"outer_idx,omitempty"`
}

// plan converts the request into a facade Plan, applying the same
// strategy normalization the CLI applies (query-retrieved sides carry no
// strategy).
func (p *PlanRequest) plan() (joinopt.Plan, error) {
	plan := joinopt.Plan{
		Algorithm: joinopt.Algorithm(p.Algorithm),
		Theta:     p.Theta,
		X:         [2]joinopt.Strategy{joinopt.Strategy(p.X[0]), joinopt.Strategy(p.X[1])},
		OuterIdx:  p.OuterIdx,
	}
	switch plan.Algorithm {
	case joinopt.IndependentJoin:
	case joinopt.OuterInnerJoin:
		if p.OuterIdx != 0 && p.OuterIdx != 1 {
			return plan, fmt.Errorf("outer_idx must be 0 or 1, got %d", p.OuterIdx)
		}
		plan.X[1-p.OuterIdx] = joinopt.QueryRetrieve
	case joinopt.ZigZagJoin:
		plan.X = [2]joinopt.Strategy{joinopt.QueryRetrieve, joinopt.QueryRetrieve}
	default:
		return plan, fmt.Errorf("unknown algorithm %q (want IDJN, OIJN, or ZGJN)", p.Algorithm)
	}
	for i, x := range plan.X {
		switch x {
		case joinopt.Scan, joinopt.FilteredScan, joinopt.AutoQueryGen, joinopt.QueryRetrieve:
		default:
			return plan, fmt.Errorf("unknown retrieval strategy %q for side %d (want SC, FS, or AQG)", x, i+1)
		}
		if plan.Theta[i] == 0 {
			plan.Theta[i] = 0.4
		}
	}
	return plan, nil
}

// Job modes.
const (
	ModeAdaptive = "adaptive" // the paper's §VI protocol (default for binary specs)
	ModeExecute  = "execute"  // run one pinned plan
	ModeOptimize = "optimize" // perfect-knowledge plan choice, no execution
	ModeQuery    = "query"    // plan and run an n-way query (default with a query spec)
)

// QuerySpec declares an n-way join in the v1 job spec: which extraction
// tasks to join (2..joinopt.MaxQueryRelations, repeats allowed) and which
// pairs share their join attribute (empty joins defaults to the chain
// R1—R2—…—Rk). It is the generalized form of the binary workload spec: a
// job carrying one runs in query mode (planned by the DP join-tree
// enumerator) or optimize mode, and names its relations here rather than in
// workload.relations.
type QuerySpec struct {
	Relations []string `json:"relations"`
	Joins     [][2]int `json:"joins,omitempty"`
	// MergeCost charges the execution this much time per intermediate join
	// tuple; the planner minimizes it by join-tree choice. Part of the
	// workload identity: jobs with different merge costs do not share a
	// task.
	MergeCost float64 `json:"merge_cost,omitempty"`
}

// key canonicalizes the spec for registry keying and cache namespacing:
// equivalent queries (e.g. explicit chain joins vs. defaulted ones) map to
// one string, distinct ones to distinct strings.
func (q *QuerySpec) key() string {
	if q == nil {
		return ""
	}
	joins := q.Joins
	if len(joins) == 0 {
		for i := 1; i < len(q.Relations); i++ {
			joins = append(joins, [2]int{i - 1, i})
		}
	}
	s := strings.Join(q.Relations, "-")
	for _, j := range joins {
		s += fmt.Sprintf("_j%d.%d", j[0], j[1])
	}
	if q.MergeCost != 0 {
		s += fmt.Sprintf("_tj%g", q.MergeCost)
	}
	return s
}

// JobRequest is the POST /v1/jobs payload.
type JobRequest struct {
	// Tenant attributes the job for quota accounting and metrics ("default"
	// when empty).
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities run in
	// submission order.
	Priority int `json:"priority,omitempty"`

	Workload WorkloadSpec `json:"workload"`

	// Query switches the job to the n-way form: the relations come from the
	// query spec (workload.relations must be left empty) and the job runs in
	// query or optimize mode. Binary-only knobs (plan, faults, retries,
	// failure_budget, resume_from, tuples) do not apply.
	Query *QuerySpec `json:"query,omitempty"`

	Mode string `json:"mode,omitempty"` // adaptive (default) | execute | optimize | query
	TauG int    `json:"tau_g"`
	TauB int    `json:"tau_b"`

	// Plan is required in execute mode and ignored otherwise.
	Plan *PlanRequest `json:"plan,omitempty"`

	// ResumeFrom continues a canceled adaptive job from its checkpoint. The
	// referenced job must belong to the same workload and have a resumable
	// checkpoint.
	ResumeFrom string `json:"resume_from,omitempty"`

	// Execution knobs, mirroring the CLI flags.
	Faults        string  `json:"faults,omitempty"` // fault-profile string, see joinopt.FaultProfileHelp
	Retries       int     `json:"retries,omitempty"`
	FailureBudget int     `json:"failure_budget,omitempty"`
	Deadline      float64 `json:"deadline,omitempty"`
	Workers       int     `json:"workers,omitempty"`      // optimizer plan-evaluation workers
	ExecWorkers   int     `json:"exec_workers,omitempty"` // pipelined extraction workers
	Shards        int     `json:"shards,omitempty"`       // corpus shards (scatter-gather execution)

	// Tuples caps how many labelled join tuples the result carries (0 =
	// none; -1 = all).
	Tuples int `json:"tuples,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the GET /v1/jobs/{id} payload.
type JobStatus struct {
	ID string `json:"id"`
	// Node names the cluster replica holding the job (empty outside a
	// cluster). A forwarded submission reports the owner that accepted it.
	Node      string     `json:"node,omitempty"`
	Tenant    string     `json:"tenant"`
	Mode      string     `json:"mode"`
	State     string     `json:"state"`
	Priority  int        `json:"priority,omitempty"`
	Error     string     `json:"error,omitempty"`
	Resumable bool       `json:"resumable,omitempty"`
	Events    int        `json:"events"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// JobTuple is one labelled join tuple in a result payload.
type JobTuple struct {
	A    string `json:"a"`
	B    string `json:"b"`
	C    string `json:"c"`
	Good bool   `json:"good"`
}

// PlanEvalJSON is the optimizer's assessment of a plan (optimize mode).
type PlanEvalJSON struct {
	Plan          string  `json:"plan"`
	EstimatedGood float64 `json:"estimated_good"`
	EstimatedBad  float64 `json:"estimated_bad"`
	EstimatedTime float64 `json:"estimated_time"`
}

// QueryLeafJSON is one relation's configuration in a chosen n-ary plan.
type QueryLeafJSON struct {
	Relation string  `json:"relation"`
	Theta    float64 `json:"theta"`
	Strategy string  `json:"strategy"`
	Effort   int     `json:"effort"`
}

// QueryResultJSON is the n-ary portion of a query job's result: the chosen
// join tree and per-relation work, indexed in query order. The shared
// good/bad/time totals stay on the enclosing JobResult.
type QueryResultJSON struct {
	Plan   string          `json:"plan"`
	Tree   string          `json:"tree"`
	Leaves []QueryLeafJSON `json:"leaves"`

	MergeTime     float64   `json:"merge_time"`
	CacheSaved    []float64 `json:"cache_saved"`
	DocsProcessed []int     `json:"docs_processed"`
	DocsRetrieved []int     `json:"docs_retrieved"`
	Queries       []int     `json:"queries"`
	NodeTuples    []int     `json:"node_tuples"`
}

// JobResult is the GET /v1/jobs/{id}/result payload of a finished job.
type JobResult struct {
	Mode  string   `json:"mode"`
	Plans []string `json:"plans,omitempty"`

	Good      int     `json:"good"`
	Bad       int     `json:"bad"`
	Time      float64 `json:"time"`
	TotalTime float64 `json:"total_time"`
	// CacheSaved is extraction time per side the shared cache made free;
	// Time + ΣCacheSaved is invariant under cache warmth.
	CacheSaved    [2]float64 `json:"cache_saved"`
	DocsProcessed [2]int     `json:"docs_processed"`
	DocsRetrieved [2]int     `json:"docs_retrieved"`
	Queries       [2]int     `json:"queries"`
	DocsFailed    [2]int     `json:"docs_failed"`
	RetriesSpent  [2]int     `json:"retries_spent"`
	Degraded      bool       `json:"degraded,omitempty"`
	DeadlineHit   bool       `json:"deadline_hit,omitempty"`

	CheckpointErrs []string `json:"checkpoint_errs,omitempty"`
	Resumable      bool     `json:"resumable,omitempty"`

	Evaluation *PlanEvalJSON `json:"evaluation,omitempty"`
	Tuples     []JobTuple    `json:"tuples,omitempty"`

	// Query carries the n-ary details of a query-mode job joining three or
	// more relations (nil on binary jobs, including two-relation queries).
	Query *QueryResultJSON `json:"query,omitempty"`
}

// Job is one unit of scheduled work. All mutable fields are guarded by mu;
// the identity fields and the event log are write-once at construction.
type Job struct {
	ID       string
	Tenant   string
	Priority int
	seq      uint64

	req  JobRequest
	plan *joinopt.Plan // parsed, execute mode only
	// key is the canonical workload key (cluster routing + checkpoint
	// replication target); node is the cluster replica name serving the
	// job. Write-once at construction.
	key  string
	node string

	ctx    context.Context
	cancel context.CancelFunc
	events *eventLog

	mu         sync.Mutex
	state      string
	err        string
	result     *JobResult
	checkpoint *joinopt.AdaptiveCheckpoint
	// drainCanceled marks a cancellation issued by the drain itself, not a
	// user DELETE. Handoff only migrates drain-interrupted jobs: a
	// user-canceled job shipped to a peer would be resurrected, violating
	// the cancel contract.
	drainCanceled bool
	// standbys records every peer base URL this job's checkpoints were
	// replicated to. Retirement must reach all of them, not just the
	// current successor: if the successor changes mid-run (a transient
	// false-down), the earlier holder would otherwise keep a stale entry
	// that is adoptable forever.
	standbys map[string]struct{}
	// recovered is the checkpoint decoded from the durable store when this
	// job was rebuilt after a daemon restart: the run resumes from it
	// instead of starting over. Write-once during recovery, before the job
	// is enqueued.
	recovered *joinopt.AdaptiveCheckpoint
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// markDrainCanceled records that the cancellation about to land on this job
// comes from the drain, so Handoff knows it is interrupted work to migrate
// rather than a cancel to honor.
func (j *Job) markDrainCanceled() {
	j.mu.Lock()
	j.drainCanceled = true
	j.mu.Unlock()
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Node:      j.node,
		Tenant:    j.Tenant,
		Mode:      j.req.Mode,
		State:     j.state,
		Priority:  j.Priority,
		Error:     j.err,
		Resumable: j.checkpoint != nil,
		Events:    j.events.Len(),
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Result returns the finished job's result (nil while pending), the job
// state, and the failure message when failed.
func (j *Job) Result() (*JobResult, string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.err
}

// Checkpoint returns the resumable checkpoint captured when the job was
// canceled mid-adaptive-run (nil otherwise).
func (j *Job) Checkpoint() *joinopt.AdaptiveCheckpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint
}

// terminal reports whether the job has finished (done, failed, canceled).
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// eventLog is a job's append-only trace sink and broadcast hub: the run
// emits obs events into it, and any number of /events subscribers replay
// the log and then follow live appends until the log closes. Emitted
// events are immutable once appended, so subscribers read released
// subslices lock-free.
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
	closed bool
	wake   chan struct{}
}

func newEventLog() *eventLog { return &eventLog{wake: make(chan struct{})} }

// Emit implements obs.Tracer.
func (l *eventLog) Emit(e obs.Event) {
	l.mu.Lock()
	if !l.closed {
		l.events = append(l.events, e)
		close(l.wake)
		l.wake = make(chan struct{})
	}
	l.mu.Unlock()
}

// Close marks the log complete and wakes every follower. Idempotent.
func (l *eventLog) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.wake)
	}
	l.mu.Unlock()
}

// Len returns the number of events appended so far.
func (l *eventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// from returns the events appended at or after index i, whether the log is
// closed, and a channel that closes on the next append or close.
func (l *eventLog) from(i int) (evs []obs.Event, closed bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i > len(l.events) {
		i = len(l.events)
	}
	return l.events[i:], l.closed, l.wake
}
