package service_test

import (
	"net/http"
	"strings"
	"testing"

	"joinopt/internal/service"
)

// queryWorkload sizes the n-way jobs small enough to build fast; the
// relations come from the query spec, not the workload spec.
var queryWorkload = service.WorkloadSpec{NumDocs: 450, Seed: 9}

// TestQueryJobEndToEnd is the n-way acceptance path: a four-relation query
// job submitted over HTTP is scheduled, planned by the DP enumerator,
// executed, streamed, and its result exposes the chosen join tree with
// per-relation work.
func TestQueryJobEndToEnd(t *testing.T) {
	e := newEnv(t, service.Options{})
	st, resp := e.submit(t, service.JobRequest{
		Workload: queryWorkload,
		Query: &service.QuerySpec{
			Relations: []string{"HQ", "EX", "MG", "HQ"},
			Joins:     [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
			MergeCost: 0.05,
		},
		TauG: 10,
		TauB: 1 << 30,
	}, http.StatusAccepted)
	if resp.Header.Get("Deprecation") != "" {
		t.Error("query-form submission marked deprecated")
	}
	if st.Mode != service.ModeQuery {
		t.Errorf("defaulted mode %q, want %q", st.Mode, service.ModeQuery)
	}
	if fin := e.await(t, st.ID); fin.State != service.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}

	streamed := string(e.events(t, st.ID))
	for _, kind := range []string{"run.start", "plan.chosen", "run.end"} {
		if !strings.Contains(streamed, kind) {
			t.Errorf("event stream missing %q:\n%s", kind, streamed)
		}
	}

	_, _, res := e.result(t, st.ID)
	if res == nil || res.Query == nil {
		t.Fatalf("no query result: %+v", res)
	}
	if res.Good == 0 {
		t.Error("no good tuples")
	}
	if res.Mode != service.ModeQuery || len(res.Plans) != 1 {
		t.Errorf("mode %q plans %v", res.Mode, res.Plans)
	}
	q := res.Query
	if !strings.Contains(q.Tree, "⋈") {
		t.Errorf("no join tree: %q", q.Tree)
	}
	if len(q.Leaves) != 4 || len(q.DocsProcessed) != 4 {
		t.Fatalf("per-relation stats not 4-ary: %+v", q)
	}
	if q.MergeTime <= 0 {
		t.Error("positive merge cost charged no merge time")
	}
	if root := q.NodeTuples[len(q.NodeTuples)-1]; root != res.Good+res.Bad {
		t.Errorf("root materialization %d != output %d", root, res.Good+res.Bad)
	}
}

// TestQueryJobOptimizeMode plans a query without executing it.
func TestQueryJobOptimizeMode(t *testing.T) {
	e := newEnv(t, service.Options{})
	st, _ := e.submit(t, service.JobRequest{
		Workload: queryWorkload,
		Query:    &service.QuerySpec{Relations: []string{"HQ", "EX", "MG"}},
		Mode:     service.ModeOptimize,
		TauG:     10,
		TauB:     1 << 30,
	}, http.StatusAccepted)
	if fin := e.await(t, st.ID); fin.State != service.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	_, _, res := e.result(t, st.ID)
	if res == nil || res.Evaluation == nil {
		t.Fatalf("no evaluation: %+v", res)
	}
	if res.Evaluation.EstimatedGood <= 0 || res.Evaluation.EstimatedTime <= 0 {
		t.Errorf("degenerate evaluation: %+v", res.Evaluation)
	}
	if !strings.Contains(res.Evaluation.Plan, "⋈") {
		t.Errorf("no join tree in plan %q", res.Evaluation.Plan)
	}
}

// TestBinarySpecDeprecationHeader: the legacy binary job form still works
// end-to-end but is flagged with a Deprecation response header; both forms
// are covered by this suite.
func TestBinarySpecDeprecationHeader(t *testing.T) {
	e := newEnv(t, service.Options{})
	st, resp := e.submit(t, service.JobRequest{
		Workload: testSpec,
		Mode:     service.ModeOptimize,
		TauG:     testTauG,
		TauB:     testTauB,
	}, http.StatusAccepted)
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy binary submission not marked deprecated")
	}
	if fin := e.await(t, st.ID); fin.State != service.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	if _, _, res := e.result(t, st.ID); res == nil || res.Evaluation == nil {
		t.Fatalf("legacy job lost its result: %+v", res)
	}
}

// TestQueryJobValidation: malformed query jobs are rejected at submission
// with 400, not at run time.
func TestQueryJobValidation(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := func() service.JobRequest {
		return service.JobRequest{
			Workload: queryWorkload,
			Query:    &service.QuerySpec{Relations: []string{"HQ", "EX", "MG"}},
			TauG:     5, TauB: 1 << 30,
		}
	}
	cases := map[string]func(*service.JobRequest){
		"adaptive mode":      func(r *service.JobRequest) { r.Mode = service.ModeAdaptive },
		"execute mode":       func(r *service.JobRequest) { r.Mode = service.ModeExecute },
		"workload relations": func(r *service.JobRequest) { r.Workload.Relations = [2]string{"HQ", "EX"} },
		"plan":               func(r *service.JobRequest) { r.Plan = &service.PlanRequest{Algorithm: "IDJN"} },
		"faults":             func(r *service.JobRequest) { r.Faults = "uniform:p=0.1" },
		"retries":            func(r *service.JobRequest) { r.Retries = 2 },
		"resume_from":        func(r *service.JobRequest) { r.ResumeFrom = "j000001" },
		"tuples on n-ary":    func(r *service.JobRequest) { r.Tuples = 5 },
		"one relation":       func(r *service.JobRequest) { r.Query.Relations = []string{"HQ"} },
		"self join pred":     func(r *service.JobRequest) { r.Query.Joins = [][2]int{{0, 0}, {1, 2}} },
		"pred out of range":  func(r *service.JobRequest) { r.Query.Joins = [][2]int{{0, 7}} },
		"query mode no spec": func(r *service.JobRequest) { r.Query = nil; r.Mode = service.ModeQuery },
	}
	for name, mutate := range cases {
		req := base()
		mutate(&req)
		if _, err := e.svc.Submit(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestQueryJobDurable: query jobs ride the journal/snapshot machinery — a
// finished n-way job is reinstated with its full result across a daemon
// restart, and an interrupted one is re-run to completion.
func TestQueryJobDurable(t *testing.T) {
	dir := t.TempDir()
	stA, recA := openStore(t, dir)
	envA := newEnv(t, service.Options{Workers: 1, Durable: stA, Recovered: recA})

	req := service.JobRequest{
		Workload: queryWorkload,
		Query:    &service.QuerySpec{Relations: []string{"HQ", "EX", "MG"}},
		TauG:     10, TauB: 1 << 30,
	}
	st, _ := envA.submit(t, req, http.StatusAccepted)
	if fin := envA.await(t, st.ID); fin.State != service.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	_, _, want := envA.result(t, st.ID)
	if want == nil || want.Query == nil {
		t.Fatalf("no query result before restart: %+v", want)
	}
	// A second submission that never ran: replay must re-run it.
	stQueued, _ := envA.submit(t, req, http.StatusAccepted)
	envA.await(t, stQueued.ID)
	stA.Close()

	stB, recB := openStore(t, dir)
	if len(recB.Jobs) != 2 {
		t.Fatalf("replay saw %d jobs, want 2", len(recB.Jobs))
	}
	envB := newEnv(t, service.Options{Workers: 1, Durable: stB, Recovered: recB})
	if fin := envB.await(t, st.ID); fin.State != service.StateDone {
		t.Fatalf("recovered job %s (%s)", fin.State, fin.Error)
	}
	_, _, got := envB.result(t, st.ID)
	if got == nil || got.Query == nil {
		t.Fatalf("recovered job lost its query result: %+v", got)
	}
	if got.Good != want.Good || got.Bad != want.Bad || got.Query.Plan != want.Query.Plan {
		t.Errorf("recovered result diverged: %+v vs %+v", got, want)
	}
	if fin := envB.await(t, stQueued.ID); fin.State != service.StateDone {
		t.Fatalf("re-run job %s (%s)", fin.State, fin.Error)
	}
	if _, _, rerun := envB.result(t, stQueued.ID); rerun == nil || rerun.Good != want.Good {
		t.Errorf("re-run diverged from original: %+v vs %+v", rerun, want)
	}
}

// TestQueryWorkloadSharing: jobs naming the same query share one task entry
// (including defaulted vs. explicit chain joins); a different merge cost is
// a different workload.
func TestQueryWorkloadSharing(t *testing.T) {
	e := newEnv(t, service.Options{})
	submit := func(q *service.QuerySpec) {
		st, _ := e.submit(t, service.JobRequest{
			Workload: queryWorkload, Query: q,
			Mode: service.ModeOptimize, TauG: 5, TauB: 1 << 30,
		}, http.StatusAccepted)
		if fin := e.await(t, st.ID); fin.State != service.StateDone {
			t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
		}
	}
	rels := []string{"HQ", "EX", "MG"}
	submit(&service.QuerySpec{Relations: rels})
	submit(&service.QuerySpec{Relations: rels, Joins: [][2]int{{0, 1}, {1, 2}}})
	if n := e.svc.WorkloadRegistry().Size(); n != 1 {
		t.Errorf("equivalent queries built %d tasks, want 1", n)
	}
	submit(&service.QuerySpec{Relations: rels, MergeCost: 0.1})
	if n := e.svc.WorkloadRegistry().Size(); n != 2 {
		t.Errorf("distinct merge costs share %d tasks, want 2", n)
	}
}
