package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joinopt/internal/cluster"
	"joinopt/internal/obs"
)

// clusterNode is one in-process replica: a real Service behind a real TCP
// listener, so forwarding, probing, and standby replication all cross an
// actual HTTP boundary.
type clusterNode struct {
	svc  *Service
	cl   *cluster.Cluster
	reg  *obs.Registry
	base string
	srv  *http.Server
	ln   net.Listener
}

// startFleet boots n replicas wired into one cluster with fast probes.
func startFleet(t *testing.T, n int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := cluster.Config{
			Self:          peers[i],
			Peers:         peers,
			VNodes:        16,
			ProbeInterval: 20 * time.Millisecond,
			ProbeTimeout:  100 * time.Millisecond,
			SuspectAfter:  2,
			DownAfter:     4,
		}
		reg := obs.NewRegistry()
		cl, err := cluster.New(cfg, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		svc := New(Options{Workers: 1, Metrics: reg, Cluster: cl, Logf: t.Logf})
		srv := &http.Server{Handler: svc.Handler()}
		nodes[i] = &clusterNode{svc: svc, cl: cl, reg: reg, base: peers[i], srv: srv, ln: lns[i]}
		go srv.Serve(lns[i])
		cl.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.cl.Stop()
			nd.srv.Close()
		}
	})
	return nodes
}

// kill makes a node drop off the network without any goodbye — the
// in-process stand-in for SIGKILL. A real SIGKILL also stops the victim's
// goroutines; in-process we must cancel them by hand, or the "dead" owner
// would finish its jobs and retire the very standby entries the survivor
// is about to adopt. No drain, no handoff — the survivor must discover the
// death by probe.
func (nd *clusterNode) kill() {
	// Goroutine-stop first: Stop blocks on the probe loop, and a job that
	// finishes in that window would retire its own standby entry. The
	// cancellations are tagged drain-issued so finish() treats them as
	// infrastructure-interrupted work (no standby retire) rather than user
	// cancels — a real SIGKILL runs no finish() at all.
	nd.svc.sched.cancelInFlight(
		func(j *Job) { j.markDrainCanceled(); nd.svc.markCanceled(j) },
		func(j *Job) { j.markDrainCanceled(); j.cancel() },
	)
	nd.cl.Stop()
	nd.srv.Close()
}

// ownerAndPeer splits a two-node fleet by who owns req's workload.
func ownerAndPeer(t *testing.T, nodes []*clusterNode, req JobRequest) (owner, peer *clusterNode) {
	t.Helper()
	name, _, _ := nodes[0].svc.ownerFor(req)
	for _, nd := range nodes {
		if nd.cl.SelfName() == name {
			owner = nd
		} else {
			peer = nd
		}
	}
	if owner == nil || peer == nil {
		t.Fatalf("fleet did not split into owner and peer (owner name %s)", name)
	}
	return owner, peer
}

func postJob(t *testing.T, base string, req JobRequest) JobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitDone polls one service directly until the job is done.
func awaitDone(t *testing.T, svc *Service, id string, timeout time.Duration) *JobResult {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j, err := svc.job(id); err == nil {
			res, state, msg := j.Result()
			switch state {
			case StateDone:
				return res
			case StateFailed:
				t.Fatalf("job %s failed: %s", id, msg)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not done within %s", id, timeout)
	return nil
}

func TestCanonicalWorkloadKey(t *testing.T) {
	// Spelled-out defaults and defaulted fields must produce the same key.
	explicit := JobRequest{Workload: WorkloadSpec{Relations: [2]string{"HQ", "EX"}, NumDocs: 1000, Seed: 1}}
	defaulted := JobRequest{}
	if a, b := CanonicalWorkloadKey(explicit), CanonicalWorkloadKey(defaulted); a != b {
		t.Errorf("defaults not folded into the key: %q vs %q", a, b)
	}
	// Cache sizing is not placement: replicas with different defaults must
	// agree on ownership.
	sized := explicit
	sized.Workload.CacheBytes = 1 << 20
	if a, b := CanonicalWorkloadKey(explicit), CanonicalWorkloadKey(sized); a != b {
		t.Errorf("CacheBytes leaked into the workload key: %q vs %q", a, b)
	}
	// Different workloads get different keys.
	other := explicit
	other.Workload.Seed = 99
	if CanonicalWorkloadKey(explicit) == CanonicalWorkloadKey(other) {
		t.Error("distinct workloads share a key")
	}
}

// TestClusterForwardSubmit: a submission through the wrong replica lands on
// the owner (proxy mode), the job ID carries the owner's node prefix, and
// the forward shows up in the non-owner's metrics.
func TestClusterForwardSubmit(t *testing.T) {
	nodes := startFleet(t, 2)
	req := JobRequest{TauG: 4, TauB: 40, Workload: WorkloadSpec{NumDocs: 450, Seed: 7}}
	owner, peer := ownerAndPeer(t, nodes, req)

	st := postJob(t, peer.base, req)
	if st.Node != owner.cl.SelfName() {
		t.Errorf("job ran on %s, want owner %s", st.Node, owner.cl.SelfName())
	}
	wantPrefix := owner.cl.SelfName() + "-j"
	if len(st.ID) < len(wantPrefix) || st.ID[:len(wantPrefix)] != wantPrefix {
		t.Errorf("job ID %q does not carry the owner's prefix %q", st.ID, wantPrefix)
	}
	if got := peer.reg.Counter(obs.Series(cluster.MetricForwards, "kind", "proxy")).Value(); got != 1 {
		t.Errorf("proxy forwards on the non-owner = %d, want 1", got)
	}
	// The owner serves it locally (no onward forward).
	if _, err := owner.svc.job(st.ID); err != nil {
		t.Errorf("owner does not hold the forwarded job: %v", err)
	}
	awaitDone(t, owner.svc, st.ID, 60*time.Second)

	// A status poll against the non-owner 307s to the owner, and Go's
	// default client follows it.
	resp, err := http.Get(peer.base + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("redirected status poll: %s", resp.Status)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID || got.State != StateDone {
		t.Errorf("redirected poll returned %s/%s", got.ID, got.State)
	}
}

// TestClusterRedirectSubmit covers ForwardRedirect: the non-owner answers
// 307 with the owner's URL instead of proxying.
func TestClusterRedirectSubmit(t *testing.T) {
	nodes := startFleet(t, 2)
	for _, nd := range nodes {
		nd.svc.opts.ForwardMode = ForwardRedirect
	}
	req := JobRequest{Mode: ModeOptimize, TauG: 4, TauB: 40, Workload: WorkloadSpec{NumDocs: 450, Seed: 7}}
	owner, peer := ownerAndPeer(t, nodes, req)

	body, _ := json.Marshal(req)
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Post(peer.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner answered %s, want 307", resp.Status)
	}
	if loc := resp.Header.Get("Location"); loc != owner.base+"/v1/jobs" {
		t.Errorf("Location = %q, want %q", loc, owner.base+"/v1/jobs")
	}
}

// migrationReq is a sharded adaptive job slow enough to checkpoint several
// times mid-run (the same shape crash-smoke interrupts). Every call hands
// out a fresh workload seed: process-global memoization would otherwise
// make repeat runs (-count=N) finish so fast that the kill or drain lands
// after the job instead of mid-run. Callers needing the same workload
// twice (reference + fleet) must call once and reuse the value.
var migrationSeq atomic.Int64

func migrationReq() JobRequest {
	return JobRequest{
		TauG: 8, TauB: 400, Shards: 2,
		Workload: WorkloadSpec{NumDocs: 5000, Seed: 21 + migrationSeq.Add(1)},
	}
}

// waitFleetHealthy blocks until every node probes every peer alive, so a
// transient boot-window down-mark (slow first probes under load) cannot
// make the owner skip standby replication for the job about to run.
func waitFleetHealthy(t *testing.T, nodes []*clusterNode) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		healthy := true
		for _, nd := range nodes {
			for _, other := range nodes {
				if other != nd && nd.cl.MemberState(other.cl.SelfName()) != cluster.StateAlive {
					healthy = false
				}
			}
		}
		if healthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never became mutually healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// freezeAtCheckpoint installs the checkpoint-sink test hook on the owner:
// the running job blocks inside its sink — after a checkpoint has provably
// replicated to the standby node, before any further progress — until
// release is closed. This makes "interrupt the job mid-run" deterministic:
// without it the tests race wall-clock against job completion, and a warm
// process (repeat -count runs, or the reference run warming shared state)
// finishes jobs so fast the kill or drain lands after the job instead of
// mid-run. Checkpoints whose replication was skipped or lost (replication
// is best-effort; a transiently down-marked peer is skipped) fall through
// to the next one, which retries. Install before submitting.
func freezeAtCheckpoint(owner, standby *clusterNode) (frozen chan *Job, release chan struct{}) {
	frozen = make(chan *Job, 1)
	release = make(chan struct{})
	var once sync.Once
	owner.svc.ckTestHook = func(j *Job) {
		if standby.svc.StandbyCount() == 0 {
			return
		}
		once.Do(func() {
			frozen <- j
			<-release
		})
	}
	return frozen, release
}

func awaitFrozen(t *testing.T, frozen chan *Job) *Job {
	t.Helper()
	select {
	case j := <-frozen:
		return j
	case <-time.After(60 * time.Second):
		t.Fatal("job never reached a checkpoint")
		return nil
	}
}

// TestClusterTakeover is the tentpole invariant in-process: the owner dies
// mid-run without warning, the survivor detects it, adopts the replicated
// checkpoint, and finishes the job bit-identical to an undisturbed run.
func TestClusterTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sharded adaptive job three times")
	}
	req := migrationReq()

	// Reference: the same job on a solo service, start to finish.
	solo := New(Options{Workers: 1})
	refJob, err := solo.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ref := awaitDone(t, solo, refJob.ID, 120*time.Second)

	nodes := startFleet(t, 2)
	owner, peer := ownerAndPeer(t, nodes, req)
	waitFleetHealthy(t, nodes)
	frozen, release := freezeAtCheckpoint(owner, peer)

	st := postJob(t, owner.base, req)
	// The job is now frozen inside a checkpoint sink: provably mid-run,
	// with that checkpoint already replicated to the peer.
	awaitFrozen(t, frozen)

	owner.kill()
	close(release) // the canceled run unblocks and observes its death

	got := awaitDone(t, peer.svc, st.ID, 120*time.Second)
	if n := peer.reg.Counter(obs.Series(cluster.MetricMigrations, "how", "takeover")).Value(); n < 1 {
		t.Errorf("takeover migrations = %d, want >= 1", n)
	}
	assertBitIdentical(t, ref, got)

	// The adopted job is served under its original (origin-prefixed) ID by
	// the survivor.
	if j, err := peer.svc.job(st.ID); err != nil {
		t.Errorf("survivor does not serve the migrated job: %v", err)
	} else if j.Status().Node != peer.cl.SelfName() {
		t.Errorf("migrated job reports node %s, want %s", j.Status().Node, peer.cl.SelfName())
	}
}

// TestClusterDrainHandoff: a clean shutdown (drain) actively hands
// interrupted jobs to their successors instead of waiting to be missed.
func TestClusterDrainHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sharded adaptive job twice")
	}
	nodes := startFleet(t, 2)
	req := migrationReq()
	owner, peer := ownerAndPeer(t, nodes, req)
	waitFleetHealthy(t, nodes)
	frozen, release := freezeAtCheckpoint(owner, peer)

	st := postJob(t, owner.base, req)
	j := awaitFrozen(t, frozen)

	// Drain with an already-expired deadline: the running job is canceled
	// (it checkpoints) and Handoff ships it to the peer. Drain waits for
	// the worker, which is frozen in the sink — release it once its
	// cancellation has landed, so the drain provably interrupts mid-run.
	dctx, cancel := context.WithCancel(context.Background())
	cancel()
	drained := make(chan struct{})
	go func() {
		owner.svc.Drain(dctx)
		close(drained)
	}()
	deadline := time.Now().Add(60 * time.Second)
	for j.ctx.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("drain never canceled the running job")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not finish")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer hcancel()
	if n := owner.svc.Handoff(hctx); n != 1 {
		t.Fatalf("Handoff moved %d jobs, want 1", n)
	}

	got := awaitDone(t, peer.svc, st.ID, 120*time.Second)
	if got.Good <= 0 || len(got.Plans) == 0 {
		t.Errorf("handed-off job finished implausibly: good=%d plans=%d", got.Good, len(got.Plans))
	}
	if n := peer.reg.Counter(obs.Series(cluster.MetricMigrations, "how", "handoff")).Value(); n < 1 {
		t.Errorf("handoff migrations = %d, want >= 1", n)
	}
}

// TestHandoffRetiresDoneJobs: a job that completed before the drain must
// not leave its replicated standby entry on the peer — finish()'s async
// retire can race process exit, so Handoff sweeps terminal jobs and
// retires them synchronously. A leftover entry would make the survivor
// re-run an already-finished job once the origin is probed down.
func TestHandoffRetiresDoneJobs(t *testing.T) {
	nodes := startFleet(t, 2)
	req := JobRequest{TauG: 4, TauB: 40, Workload: WorkloadSpec{NumDocs: 450, Seed: 7}}
	owner, peer := ownerAndPeer(t, nodes, req)
	waitFleetHealthy(t, nodes)

	st := postJob(t, owner.base, req)
	awaitDone(t, owner.svc, st.ID, 60*time.Second)

	// Recreate the stale standby entry an unsent async retire leaves behind.
	reqWire, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.svc.acceptStandby(standbyWire{
		ID: st.ID, Origin: owner.cl.SelfName(), Request: reqWire,
	}); err != nil {
		t.Fatal(err)
	}
	if got := peer.svc.StandbyCount(); got != 1 {
		t.Fatalf("standby count before handoff = %d, want 1", got)
	}

	hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer hcancel()
	if n := owner.svc.Handoff(hctx); n != 0 {
		t.Errorf("Handoff moved %d jobs, want 0 (the job is done)", n)
	}
	if got := peer.svc.StandbyCount(); got != 0 {
		t.Errorf("done job's standby entry survived Handoff: count = %d", got)
	}
}

// assertBitIdentical pins the migration contract: everything except timing
// matches exactly, and timing obeys the Time + ΣCacheSaved cache-warmth
// invariant.
func assertBitIdentical(t *testing.T, ref, got *JobResult) {
	t.Helper()
	if got.Good != ref.Good || got.Bad != ref.Bad {
		t.Errorf("tuple counts differ: got %d/%d, ref %d/%d", got.Good, got.Bad, ref.Good, ref.Bad)
	}
	if fmt.Sprint(got.Plans) != fmt.Sprint(ref.Plans) {
		t.Errorf("plan sequences differ:\n got %v\n ref %v", got.Plans, ref.Plans)
	}
	if len(got.Tuples) != len(ref.Tuples) {
		t.Errorf("tuple lists differ in length: got %d, ref %d", len(got.Tuples), len(ref.Tuples))
	} else {
		for i := range got.Tuples {
			if got.Tuples[i] != ref.Tuples[i] {
				t.Errorf("tuple %d differs: got %+v, ref %+v", i, got.Tuples[i], ref.Tuples[i])
				break
			}
		}
	}
	refT := ref.Time + ref.CacheSaved[0] + ref.CacheSaved[1]
	gotT := got.Time + got.CacheSaved[0] + got.CacheSaved[1]
	if math.Abs(refT-gotT) > 1e-6*math.Max(1, math.Abs(refT)) {
		t.Errorf("Time+ΣCacheSaved differs: got %g, ref %g", gotT, refT)
	}
}

// TestHandoffSkipsUserCanceled: a job the user explicitly canceled (DELETE
// /v1/jobs/{id}) must not be shipped to a peer on drain — the cancel
// contract outlives the replica. The store retains terminal jobs, so
// without the drain-canceled distinction every SIGTERM would resurrect it.
// Handoff must instead retire any standby entry the job left behind.
func TestHandoffSkipsUserCanceled(t *testing.T) {
	nodes := startFleet(t, 2)
	req := JobRequest{TauG: 4, TauB: 40, Workload: WorkloadSpec{NumDocs: 450, Seed: 7}}
	owner, peer := ownerAndPeer(t, nodes, req)
	waitFleetHealthy(t, nodes)

	// One worker: the first job occupies it, the second queues; canceling
	// the queued job is the user-DELETE path (markCanceled, no drain flag).
	blocker, err := owner.svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := owner.svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.svc.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	awaitDone(t, owner.svc, blocker.ID, 60*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for !victim.terminal() {
		if time.Now().After(deadline) {
			t.Fatal("canceled job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Recreate the stale standby entry an unsent async retire leaves behind
	// for the canceled job.
	reqWire, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.svc.acceptStandby(standbyWire{
		ID: victim.ID, Origin: owner.cl.SelfName(), Request: reqWire,
	}); err != nil {
		t.Fatal(err)
	}

	hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer hcancel()
	if n := owner.svc.Handoff(hctx); n != 0 {
		t.Errorf("Handoff moved %d jobs, want 0 (user-canceled must stay canceled)", n)
	}
	if got := peer.svc.StandbyCount(); got != 0 {
		t.Errorf("user-canceled job's standby entry survived Handoff: count = %d", got)
	}
	if _, err := peer.svc.job(victim.ID); err == nil {
		t.Error("peer adopted a user-canceled job")
	}
}

// TestStandbyRejectsHandoffWhileDraining: a draining replica has no workers
// left, so accepting an activate (drain handoff) would journal a job that
// sits queued forever while the sender counts it handed off. It must answer
// non-200 (503) so the job stays recoverable at its origin; plain standby
// holds are still accepted — holding replicas for peers needs no workers.
func TestStandbyRejectsHandoffWhileDraining(t *testing.T) {
	nodes := startFleet(t, 2)
	owner, peer := nodes[0], nodes[1]

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	peer.svc.Drain(dctx)

	reqWire, err := json.Marshal(JobRequest{TauG: 4, TauB: 40, Workload: WorkloadSpec{NumDocs: 450, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	wire := standbyWire{
		ID: owner.cl.SelfName() + "-j000001", Origin: owner.cl.SelfName(),
		Request: reqWire, Activate: true,
	}
	if err := peer.svc.acceptStandby(wire); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining replica accepted a handoff: err = %v, want ErrDraining", err)
	}
	if _, err := peer.svc.job(wire.ID); err == nil {
		t.Error("draining replica stored the refused job")
	}

	// Over HTTP the refusal is a 503, which the sender logs as a failure.
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(peer.base+"/v1/cluster/standby", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("handoff to draining replica answered %s, want 503", resp.Status)
	}

	// A plain hold (no Activate) is still fine while draining.
	hold := standbyWire{
		ID: owner.cl.SelfName() + "-j000002", Origin: owner.cl.SelfName(), Request: reqWire,
	}
	if err := peer.svc.acceptStandby(hold); err != nil {
		t.Errorf("draining replica refused a plain standby hold: %v", err)
	}
	if got := peer.svc.StandbyCount(); got != 1 {
		t.Errorf("standby count = %d, want 1", got)
	}
}
