package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"joinopt"
	"joinopt/internal/durable"
	"joinopt/internal/obs"
)

// cacheNamespace names a workload's slice of the durable cache tier. Cache
// keys are (side, doc, θ) within a workload, so everything that changes
// what a key extracts — relations, corpus sizes, seed, ranking — is in the
// namespace; for query workloads the canonical query string carries the
// relations. The key must be normalized.
func cacheNamespace(key regKey) string {
	spec := key.wl
	rels := fmt.Sprintf("%s-%s", spec.Relations[0], spec.Relations[1])
	if key.query != "" {
		rels = "q_" + key.query
	}
	return fmt.Sprintf("%s_n%d-%d_s%d_k%d", rels, spec.NumDocs, spec.NumDocs2, spec.Seed, spec.TopK)
}

// recover rebuilds the job store from the journal replay: finished jobs are
// reinstated with their persisted results, interrupted adaptive jobs resume
// from their last persisted checkpoint, and jobs that never ran are
// re-enqueued — all bypassing admission, since each was admitted (and
// journaled) before the crash. Runs during New, before the service serves.
func (s *Service) recover(rec *durable.Recovered) {
	m := s.opts.Metrics
	s.seq.Store(rec.MaxSeq)
	for _, rj := range rec.Jobs {
		var req JobRequest
		if err := json.Unmarshal(rj.Request, &req); err != nil {
			// The journaled request no longer parses: nothing to re-run.
			m.Counter(obs.Series(obs.MetricDurableErrs, "op", "replay")).Inc()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j := &Job{
			ID:        rj.ID,
			Tenant:    rj.Tenant,
			Priority:  req.Priority,
			seq:       rj.Seq,
			req:       req,
			key:       CanonicalWorkloadKey(req),
			node:      s.selfNode(),
			ctx:       ctx,
			cancel:    cancel,
			events:    newEventLog(),
			submitted: time.Now(),
		}
		if rj.Finished() {
			if s.recoverFinished(j, rj) {
				continue
			}
			// The journal committed the job as done but its result payload
			// did not survive: re-run it below as if it were interrupted —
			// the journal is the commit record, the result file is cache.
			rj.State, rj.Error = "", ""
		}
		how := "requeued"
		if req.Mode == ModeExecute && req.Plan != nil {
			if p, err := req.Plan.plan(); err == nil {
				j.plan = &p
			}
		}
		if rj.Started && req.Mode == ModeAdaptive {
			if ck := s.loadCheckpoint(rj.ID); ck != nil {
				j.recovered = ck
				how = "resumed"
			}
		}
		j.state = StateQueued
		s.storeJob(j)
		s.sched.forceSubmit(j)
		m.Counter(obs.Series(obs.MetricJobsRecovered, "how", how)).Inc()
	}
	s.publishPool()
}

// recoverFinished reinstates a job that reached a terminal state before the
// crash, serving its persisted result (and, for canceled/failed adaptive
// jobs, its persisted checkpoint, so resume_from keeps working across
// restarts). It declines — returning false, job untouched — when the
// journal says done but the result payload is gone: that job must re-run.
func (s *Service) recoverFinished(j *Job, rj durable.RecoveredJob) bool {
	var res *JobResult
	if payload, ok := s.opts.Durable.LoadResult(rj.ID); ok {
		var r JobResult
		if err := json.Unmarshal(payload, &r); err == nil {
			res = &r
		} else {
			s.opts.Metrics.Counter(obs.Series(obs.MetricDurableErrs, "op", "snapshot")).Inc()
		}
	}
	if rj.State == StateDone && res == nil {
		return false
	}
	j.state = rj.State
	j.err = rj.Error
	j.result = res
	j.finished = time.Now()
	if rj.State != StateDone && rj.Started {
		j.checkpoint = s.loadCheckpoint(rj.ID)
	}
	j.events.Close()
	s.storeJob(j)
	s.opts.Metrics.Counter(obs.Series(obs.MetricJobsRecovered, "how", "completed")).Inc()
	return true
}

// loadCheckpoint loads and decodes a job's persisted checkpoint. A missing
// file is silent; a payload the codec rejects is counted — the store's own
// checksum passed, so this is a version skew or deeper damage — and the
// caller falls back to re-running from scratch.
func (s *Service) loadCheckpoint(id string) *joinopt.AdaptiveCheckpoint {
	payload, ok := s.opts.Durable.LoadCheckpoint(id)
	if !ok {
		return nil
	}
	ck, err := joinopt.DecodeCheckpoint(payload)
	if err != nil {
		s.opts.Metrics.Counter(obs.Series(obs.MetricDurableErrs, "op", "snapshot")).Inc()
		return nil
	}
	return ck
}

// journal appends one record to the durable store (a no-op without one).
func (s *Service) journal(r durable.Record) {
	if d := s.opts.Durable; d != nil {
		d.Append(r)
	}
}

// Degraded reports whether the durable layer has fallen back to
// memory-only operation (surfaced on /readyz; the service itself keeps
// accepting and running jobs).
func (s *Service) Degraded() (bool, string) {
	if d := s.opts.Durable; d != nil {
		return d.Degraded()
	}
	return false, ""
}
