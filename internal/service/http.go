package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"joinopt/internal/cluster"
	"joinopt/internal/obs"
)

// Handler builds the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; 429 over capacity/quota)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result finished result (202 while pending)
//	GET    /v1/jobs/{id}/events stream the execution trace as NDJSON
//	DELETE /v1/jobs/{id}        cancel (running adaptive jobs checkpoint)
//	GET    /v1/cluster          ring + member state (cluster mode; ?key=
//	                            resolves a workload key's owner)
//	POST   /v1/cluster/standby  intra-cluster checkpoint replication
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
//
// In cluster mode any replica accepts any request: submissions are
// forwarded (or 307-redirected, per Options.ForwardMode) to the workload's
// owner, and job lookups whose node-prefixed ID names another live replica
// are 307-redirected there.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	if s.opts.Cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleCluster)
		mux.HandleFunc("POST /v1/cluster/standby", s.handleStandby)
	}
	mux.Handle("GET /metrics", obs.Handler(s.opts.Metrics))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		// A degraded durable layer is a detail, not an outage: the daemon
		// still accepts and runs jobs (memory-only), so readiness stays 200
		// and the detail tells operators durability is gone.
		if deg, why := s.Degraded(); deg {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintf(w, "ready (degraded: %s)\n", why)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	return mux
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error, reason string) {
	writeJSON(w, status, apiError{Error: err.Error(), Reason: reason})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, "bad_request")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err, "bad_request")
		return
	}
	if c := s.opts.Cluster; c != nil && r.Header.Get(forwardHeader) == "" {
		if _, ownerURL, self := s.ownerFor(req); !self {
			if s.forwardSubmit(w, ownerURL, body) {
				return
			}
			// Forwarding failed (owner unreachable mid-transition): serve
			// locally — availability beats placement, and the run is
			// deterministic wherever it executes, just cache-cold here.
			s.opts.Metrics.Counter(obs.Series(cluster.MetricForwards, "kind", "fallback")).Inc()
		}
	}
	j, err := s.Submit(req)
	if err != nil {
		switch err {
		case ErrQueueFull, ErrTenantQuota:
			w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter/time.Second)))
			reason := "queue_full"
			if err == ErrTenantQuota {
				reason = "tenant_quota"
			}
			writeErr(w, http.StatusTooManyRequests, err, reason)
		case ErrDraining:
			writeErr(w, http.StatusServiceUnavailable, err, "draining")
		default:
			writeErr(w, http.StatusBadRequest, err, "bad_request")
		}
		return
	}
	if req.Query == nil {
		// The binary workload spec is the legacy job form: the query spec
		// expresses the same joins (and more). RFC 8594-style advice until
		// clients migrate.
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/jobs>; rel="alternate"; title="use the query job form"`)
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// redirectJob routes a locally unknown cluster job ID to the replica whose
// name prefixes it (307, preserving the method). Local jobs always win the
// lookup — a migrated job is served by its adopter even though its ID names
// the dead origin.
func (s *Service) redirectJob(w http.ResponseWriter, r *http.Request, id string) bool {
	url, ok := s.routeJobID(id)
	if !ok {
		return false
	}
	s.opts.Metrics.Counter(obs.Series(cluster.MetricForwards, "kind", "redirect")).Inc()
	http.Redirect(w, r, url+r.URL.Path, http.StatusTemporaryRedirect)
	return true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		if s.redirectJob(w, r, r.PathValue("id")) {
			return
		}
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		if s.redirectJob(w, r, r.PathValue("id")) {
			return
		}
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	res, state, msg := j.Result()
	switch state {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, j.Status())
	default:
		// Failed and canceled jobs may still carry a partial result (and a
		// resumable checkpoint); ship the status alongside it.
		writeJSON(w, http.StatusOK, struct {
			ID     string     `json:"id"`
			State  string     `json:"state"`
			Error  string     `json:"error,omitempty"`
			Result *JobResult `json:"result,omitempty"`
		}{ID: j.ID, State: state, Error: msg, Result: res})
	}
}

// handleEvents streams the job's execution trace as NDJSON — one obs event
// per line, byte-identical to what an obs.NDJSON sink would write. The
// stream replays from the start, follows live appends, and ends when the
// job finishes (or the client disconnects).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		if s.redirectJob(w, r, r.PathValue("id")) {
			return
		}
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	i := 0
	for {
		evs, closed, wake := j.events.from(i)
		for _, e := range evs {
			b, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := w.Write(append(b, '\n')); err != nil {
				return
			}
		}
		i += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		if s.redirectJob(w, r, r.PathValue("id")) {
			return
		}
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// forwardSubmit routes a submission to the workload's owner: a 307 in
// redirect mode, a transparent server-side re-POST (relaying the owner's
// response, 429s and all) in proxy mode. Returns false when the owner could
// not be reached — the caller serves locally instead.
func (s *Service) forwardSubmit(w http.ResponseWriter, ownerURL string, body []byte) bool {
	m := s.opts.Metrics
	if s.opts.ForwardMode == ForwardRedirect {
		m.Counter(obs.Series(cluster.MetricForwards, "kind", "redirect")).Inc()
		w.Header().Set("Location", ownerURL+"/v1/jobs")
		w.WriteHeader(http.StatusTemporaryRedirect)
		return true
	}
	req, err := http.NewRequest(http.MethodPost, ownerURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	resp, err := s.opts.Cluster.Client().Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
		// The owner is up but not admitting (draining): fall back local so
		// a rolling restart never bounces clients.
		io.Copy(io.Discard, resp.Body)
		return false
	}
	m.Counter(obs.Series(cluster.MetricForwards, "kind", "proxy")).Inc()
	for _, h := range []string{"Content-Type", "Retry-After", "Deprecation", "Link"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// handleCluster reports this replica's fleet view; ?key= additionally
// resolves a workload key's owner.
func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	info := s.opts.Cluster.Snapshot(s.StandbyCount(), r.URL.Query().Get("key"))
	writeJSON(w, http.StatusOK, info)
}

// handleStandby accepts intra-cluster checkpoint replication and handoff
// messages.
func (s *Service) handleStandby(w http.ResponseWriter, r *http.Request) {
	var msg standbyWire
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err, "bad_request")
		return
	}
	if err := s.acceptStandby(msg); err != nil {
		if errors.Is(err, ErrDraining) {
			writeErr(w, http.StatusServiceUnavailable, err, "draining")
			return
		}
		writeErr(w, http.StatusBadRequest, err, "bad_request")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}
