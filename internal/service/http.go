package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"joinopt/internal/obs"
)

// Handler builds the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; 429 over capacity/quota)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result finished result (202 while pending)
//	GET    /v1/jobs/{id}/events stream the execution trace as NDJSON
//	DELETE /v1/jobs/{id}        cancel (running adaptive jobs checkpoint)
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.Handle("GET /metrics", obs.Handler(s.opts.Metrics))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		// A degraded durable layer is a detail, not an outage: the daemon
		// still accepts and runs jobs (memory-only), so readiness stays 200
		// and the detail tells operators durability is gone.
		if deg, why := s.Degraded(); deg {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintf(w, "ready (degraded: %s)\n", why)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	return mux
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error, reason string) {
	writeJSON(w, status, apiError{Error: err.Error(), Reason: reason})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err, "bad_request")
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		switch err {
		case ErrQueueFull, ErrTenantQuota:
			w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter/time.Second)))
			reason := "queue_full"
			if err == ErrTenantQuota {
				reason = "tenant_quota"
			}
			writeErr(w, http.StatusTooManyRequests, err, reason)
		case ErrDraining:
			writeErr(w, http.StatusServiceUnavailable, err, "draining")
		default:
			writeErr(w, http.StatusBadRequest, err, "bad_request")
		}
		return
	}
	if req.Query == nil {
		// The binary workload spec is the legacy job form: the query spec
		// expresses the same joins (and more). RFC 8594-style advice until
		// clients migrate.
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/jobs>; rel="alternate"; title="use the query job form"`)
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	res, state, msg := j.Result()
	switch state {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, j.Status())
	default:
		// Failed and canceled jobs may still carry a partial result (and a
		// resumable checkpoint); ship the status alongside it.
		writeJSON(w, http.StatusOK, struct {
			ID     string     `json:"id"`
			State  string     `json:"state"`
			Error  string     `json:"error,omitempty"`
			Result *JobResult `json:"result,omitempty"`
		}{ID: j.ID, State: state, Error: msg, Result: res})
	}
}

// handleEvents streams the job's execution trace as NDJSON — one obs event
// per line, byte-identical to what an obs.NDJSON sink would write. The
// stream replays from the start, follows live appends, and ends when the
// job finishes (or the client disconnects).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	i := 0
	for {
		evs, closed, wake := j.events.from(i)
		for _, e := range evs {
			b, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := w.Write(append(b, '\n')); err != nil {
				return
			}
		}
		i += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err, "not_found")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}
