// Package service is the serving layer of the repository: it exposes the
// full optimizer/executor stack — adaptive runs, pinned-plan executions,
// and perfect-knowledge plan choice — over an HTTP JSON API with job
// scheduling, multi-tenant admission control, streamed execution traces,
// and Prometheus metrics. cmd/joinoptd wraps it in a daemon; cmd/loadgen
// drives it closed-loop.
//
// The layer exists because the expensive assets of this system — generated
// workloads, trained retrieval machinery, memoized optimizer inputs, and
// the shared extraction cache — are all per-Task: a registry that hands
// every request the same Task amortizes them across clients, which is
// exactly what the facade's concurrent-Run contract (see joinopt.Task.Run)
// makes safe.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinopt"
	"joinopt/internal/cluster"
	"joinopt/internal/durable"
	"joinopt/internal/obs"
	"joinopt/internal/pipeline"
	"joinopt/internal/querygraph"
)

// Options configures a Service. The zero value selects the defaults.
type Options struct {
	// Workers sizes the execution pool (default 2).
	Workers int
	// QueueDepth bounds the number of queued jobs before submissions are
	// rejected with 429 (default 64).
	QueueDepth int
	// TenantQuota bounds each tenant's queued+running jobs; exceeding it
	// rejects with 429 (default 8; negative disables the quota).
	TenantQuota int
	// RetryAfter is the hint returned with 429 rejections (default 1s).
	RetryAfter time.Duration
	// DefaultCacheBytes sizes the shared extraction cache of workloads that
	// do not request a size (default 32 MiB).
	DefaultCacheBytes int64
	// MaxJobs bounds the finished jobs retained for status/result queries;
	// the oldest finished jobs (and their per-job metric series) are
	// evicted beyond it (default 1024).
	MaxJobs int
	// Metrics receives service and registry metrics (nil creates a private
	// registry; expose it via Service.Metrics).
	Metrics *obs.Registry
	// TraceSink, when set, additionally receives every job's trace events
	// (e.g. a daemon-wide NDJSON flight recorder). The service does not
	// close it.
	TraceSink obs.Tracer
	// Durable, when set, makes the service crash-safe: job-state
	// transitions are journaled, adaptive checkpoints and final results are
	// persisted, and the extraction caches gain a disk tier — all under the
	// store's state directory. The service absorbs durable-layer failures
	// (see Service.Degraded); it never fails a job over them.
	Durable *durable.Store
	// Recovered is the replay that came out of opening the durable store;
	// New re-enqueues, resumes, or reinstates every job in it before the
	// service starts serving.
	Recovered *durable.Recovered
	// Cluster, when set, federates this replica with its peers: any replica
	// accepts a submission and routes it to the workload's owner on the
	// consistent-hash ring, running adaptive jobs replicate their
	// checkpoints to the replica that would inherit them, and a dead or
	// draining peer's jobs are adopted and resumed bit-identically. The
	// caller owns the cluster's probe-loop lifecycle (Start after New).
	Cluster *cluster.Cluster
	// ForwardMode selects how mis-addressed submissions reach their owner:
	// ForwardProxy (default) re-issues them server-side, ForwardRedirect
	// answers 307.
	ForwardMode string
	// Logf, when set, receives operational log lines (cluster transitions,
	// migrations, handoffs).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.TenantQuota == 0 {
		o.TenantQuota = 8
	}
	if o.TenantQuota < 0 {
		o.TenantQuota = 0 // disabled
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.DefaultCacheBytes == 0 {
		o.DefaultCacheBytes = 32 << 20
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.ForwardMode == "" {
		o.ForwardMode = ForwardProxy
	}
	return o
}

// Service metric families. Per-tenant and per-job series carry tenant= and
// job= labels; the per-job run gauges are evicted together with their jobs,
// bounding the exposition's cardinality at MaxJobs.
const (
	MetricJobsSubmitted = "joinoptd_jobs_submitted_total"
	MetricJobsRejected  = "joinoptd_jobs_rejected_total"
	MetricJobsCompleted = "joinoptd_jobs_completed_total"
	MetricQueueDepth    = "joinoptd_queue_depth"
	MetricJobsRunning   = "joinoptd_jobs_running"
	MetricJobWallSecs   = "joinoptd_job_wall_seconds"
	MetricJobGood       = "joinoptd_job_good_tuples"
	MetricJobBad        = "joinoptd_job_bad_tuples"
	MetricJobModelTime  = "joinoptd_job_model_time"
)

// Service is the join-optimization service: a workload registry, a job
// scheduler, and the job store behind the HTTP API.
type Service struct {
	opts     Options
	registry *Registry
	sched    *scheduler

	seq atomic.Uint64

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for eviction

	draining  atomic.Bool
	drainOnce sync.Once
	drainedCh chan struct{}

	jobWall *obs.Histogram

	// Cluster state (nil/empty without Options.Cluster).
	standby    *standbyStore
	migrations map[string]*obs.Counter

	// ckTestHook, when set (tests only, before any job runs), is called
	// from the checkpoint sink after the checkpoint has persisted and
	// replicated — a deterministic mid-run freeze point for migration
	// tests, which otherwise race wall-clock against job completion.
	ckTestHook func(*Job)
}

// New builds and starts a Service (its worker pool runs immediately).
func New(opts Options) *Service {
	opts = opts.withDefaults()
	m := opts.Metrics
	m.Describe(MetricJobsSubmitted, "jobs admitted into the queue")
	m.Describe(MetricJobsRejected, "submissions rejected by admission control")
	m.Describe(MetricJobsCompleted, "jobs finished, by terminal state")
	m.Describe(MetricQueueDepth, "jobs queued and not yet running")
	m.Describe(MetricJobsRunning, "jobs currently executing")
	m.Describe(MetricJobWallSecs, "wall-clock seconds per executed job")
	m.Describe(MetricJobGood, "good join tuples of a finished job")
	m.Describe(MetricJobBad, "bad join tuples of a finished job")
	m.Describe(MetricJobModelTime, "total cost-model time of a finished job")
	s := &Service{
		opts:      opts,
		registry:  NewRegistry(opts.DefaultCacheBytes, m),
		jobs:      map[string]*Job{},
		drainedCh: make(chan struct{}),
		jobWall:   m.Histogram(MetricJobWallSecs, []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120}),
	}
	if d := opts.Durable; d != nil {
		m.Describe(obs.MetricJobsRecovered, "jobs recovered across a daemon restart, by how (requeued, resumed, completed)")
		m.Describe(obs.MetricDurableErrs, "durable-store failures absorbed by degrading to memory-only operation, by op")
		s.registry.tierFor = func(key regKey) pipeline.Tier {
			return d.CacheTier(cacheNamespace(key))
		}
	}
	s.sched = newScheduler(opts.Workers, opts.QueueDepth, opts.TenantQuota, s.execute)
	if opts.Durable != nil && opts.Recovered != nil {
		s.recover(opts.Recovered)
	}
	if opts.Cluster != nil {
		s.initCluster()
	}
	return s
}

// Metrics returns the registry the service publishes into (the /metrics
// exposition).
func (s *Service) Metrics() *obs.Registry { return s.opts.Metrics }

// Registry returns the workload registry (shared Tasks).
func (s *Service) WorkloadRegistry() *Registry { return s.registry }

// Draining reports whether a drain has started (readyz turns 503).
func (s *Service) Draining() bool { return s.draining.Load() }

// Submit validates the request, admits it through the scheduler, and
// returns the queued job. Admission failures return ErrQueueFull,
// ErrTenantQuota, or ErrDraining; validation failures return other errors
// (the API maps them to 400).
func (s *Service) Submit(req JobRequest) (*Job, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Query != nil {
		if err := validateQueryJob(&req); err != nil {
			return nil, err
		}
	}
	switch req.Mode {
	case "":
		req.Mode = ModeAdaptive
		if req.Query != nil {
			req.Mode = ModeQuery
		}
	case ModeQuery:
		if req.Query == nil {
			return nil, errors.New("query mode requires a query spec")
		}
	case ModeAdaptive, ModeExecute, ModeOptimize:
	default:
		return nil, fmt.Errorf("unknown mode %q (want %s, %s, %s, or %s)", req.Mode, ModeAdaptive, ModeExecute, ModeOptimize, ModeQuery)
	}
	var plan *joinopt.Plan
	if req.Mode == ModeExecute {
		if req.Plan == nil {
			return nil, errors.New("execute mode requires a plan")
		}
		p, err := req.Plan.plan()
		if err != nil {
			return nil, err
		}
		plan = &p
	}
	if req.Faults != "" {
		if _, err := joinopt.ParseFaultProfile(req.Faults); err != nil {
			return nil, err
		}
	}
	if req.ResumeFrom != "" {
		if req.Mode != ModeAdaptive {
			return nil, errors.New("resume_from requires adaptive mode")
		}
		src, err := s.job(req.ResumeFrom)
		if err != nil {
			return nil, fmt.Errorf("resume_from: %w", err)
		}
		if src.Checkpoint() == nil {
			return nil, fmt.Errorf("resume_from: job %s has no resumable checkpoint", req.ResumeFrom)
		}
		if s.registry.normalize(src.req.Workload, nil) != s.registry.normalize(req.Workload, nil) {
			return nil, errors.New("resume_from: workload differs from the checkpointed job's")
		}
	}

	seq := s.seq.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        s.nodeJobID(seq),
		Tenant:    req.Tenant,
		Priority:  req.Priority,
		seq:       seq,
		req:       req,
		plan:      plan,
		key:       CanonicalWorkloadKey(req),
		node:      s.selfNode(),
		ctx:       ctx,
		cancel:    cancel,
		events:    newEventLog(),
		state:     StateQueued,
		submitted: time.Now(),
	}

	m := s.opts.Metrics
	if err := s.sched.submit(j); err != nil {
		cancel()
		reason := "queue_full"
		switch {
		case errors.Is(err, ErrTenantQuota):
			reason = "tenant_quota"
		case errors.Is(err, ErrDraining):
			reason = "draining"
		}
		m.Counter(obs.Series(MetricJobsRejected, "reason", reason)).Inc()
		return nil, err
	}
	s.storeJob(j)
	if s.opts.Durable != nil {
		// Journal the acceptance before acknowledging it: a daemon that
		// dies after this line re-runs the job; one that dies before it
		// never confirmed the submission.
		raw, err := json.Marshal(req)
		if err == nil {
			s.journal(durable.Record{Seq: seq, Event: durable.EventSubmitted, JobID: j.ID, Tenant: j.Tenant, Request: raw})
		}
	}
	m.Counter(obs.Series(MetricJobsSubmitted, "tenant", j.Tenant)).Inc()
	s.publishPool()
	return j, nil
}

// validateQueryJob rejects the binary-only parts of the job spec on n-way
// query jobs, and malformed query shapes, at submission time.
func validateQueryJob(req *JobRequest) error {
	switch req.Mode {
	case "", ModeQuery, ModeOptimize:
	default:
		return fmt.Errorf("%s mode does not apply to query jobs (want %s or %s)", req.Mode, ModeQuery, ModeOptimize)
	}
	if req.Workload.Relations != [2]string{} {
		return errors.New("query jobs name their relations in query.relations; leave workload.relations empty")
	}
	switch {
	case req.Workload.NumDocs2 != 0:
		return errors.New("num_docs2 applies to binary workloads only")
	case req.Plan != nil:
		return errors.New("plan applies to execute-mode binary jobs only")
	case req.Faults != "":
		return errors.New("fault injection applies to binary jobs only")
	case req.Retries != 0 || req.FailureBudget != 0:
		return errors.New("retry policies apply to binary jobs only")
	case req.ResumeFrom != "":
		return errors.New("resume_from applies to adaptive binary jobs only")
	case req.Tuples != 0 && len(req.Query.Relations) > 2:
		return errors.New("tuples apply to two-relation results only")
	}
	_, err := (querygraph.Spec{Relations: req.Query.Relations, Joins: req.Query.Joins}).Graph()
	return err
}

// storeJob indexes the job and evicts the oldest finished jobs past the
// retention bound.
func (s *Service) storeJob(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.jobs) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.order {
			old, ok := s.jobs[id]
			if !ok {
				continue
			}
			if !old.terminal() {
				continue
			}
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			s.opts.Metrics.Forget(
				obs.Series(MetricJobGood, "job", id),
				obs.Series(MetricJobBad, "job", id),
				obs.Series(MetricJobModelTime, "job", id),
			)
			evicted = true
			break
		}
		if !evicted {
			break // everything live; retain over the bound rather than drop state
		}
	}
}

// job resolves a job by ID.
func (s *Service) job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("unknown job %q", id)
	}
	return j, nil
}

// Cancel stops a job: a queued job is retired immediately; a running job's
// context is canceled (an adaptive run checkpoints and keeps its partial
// result). Finished jobs are left untouched.
func (s *Service) Cancel(id string) (*Job, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	if j.terminal() {
		return j, nil
	}
	if s.sched.dequeue(j) {
		s.markCanceled(j)
		s.publishPool()
		return j, nil
	}
	j.cancel() // running: the executor stops at its next step
	return j, nil
}

// markCanceled transitions a never-started job to canceled.
func (s *Service) markCanceled(j *Job) {
	j.mu.Lock()
	transitioned := j.state == StateQueued
	if transitioned {
		j.state = StateCanceled
		j.err = "canceled before start"
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.events.Close()
	if transitioned {
		s.journal(durable.Record{Seq: j.seq, Event: durable.EventFinished, JobID: j.ID, State: StateCanceled, Error: "canceled before start"})
	}
	s.opts.Metrics.Counter(obs.Series(MetricJobsCompleted, "state", StateCanceled)).Inc()
}

// publishPool refreshes the queue-depth and running gauges.
func (s *Service) publishPool() {
	queued, running := s.sched.queueDepth()
	s.opts.Metrics.Gauge(MetricQueueDepth).Set(float64(queued))
	s.opts.Metrics.Gauge(MetricJobsRunning).Set(float64(running))
}

// execute runs one job on a scheduler worker.
func (s *Service) execute(j *Job) {
	start := time.Now()
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued, raced with a worker
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = start
	j.mu.Unlock()
	s.journal(durable.Record{Seq: j.seq, Event: durable.EventStarted, JobID: j.ID})
	s.publishPool()

	res, err := s.runJob(j)
	s.finish(j, res, err)
	s.jobWall.Observe(time.Since(start).Seconds())
	s.publishPool()
}

// runJob dispatches on the job mode and executes against the shared Task.
func (s *Service) runJob(j *Job) (*JobResult, error) {
	task, err := s.registry.Task(j.req.Workload, j.req.Query)
	if err != nil {
		return nil, err
	}
	req := joinopt.Requirement{TauG: j.req.TauG, TauB: j.req.TauB}

	if j.req.Mode == ModeOptimize {
		if j.req.Query != nil {
			qp, err := task.OptimizeQuery(req)
			if err != nil {
				return nil, err
			}
			return &JobResult{
				Mode:  ModeOptimize,
				Plans: []string{qp.String()},
				Evaluation: &PlanEvalJSON{
					Plan:          qp.String(),
					EstimatedGood: qp.EstimatedGood,
					EstimatedBad:  qp.EstimatedBad,
					EstimatedTime: qp.EstimatedTime,
				},
			}, nil
		}
		ev, err := task.Optimize(req)
		if err != nil {
			return nil, err
		}
		return &JobResult{
			Mode:  ModeOptimize,
			Plans: []string{ev.Plan.String()},
			Evaluation: &PlanEvalJSON{
				Plan:          ev.Plan.String(),
				EstimatedGood: ev.EstimatedGood,
				EstimatedBad:  ev.EstimatedBad,
				EstimatedTime: ev.EstimatedTime,
			},
		}, nil
	}

	sinks := []obs.Tracer{j.events}
	if s.opts.TraceSink != nil {
		sinks = append(sinks, s.opts.TraceSink)
	}
	// The service registry doubles as the run registry, so the per-run
	// joinopt_* families — including the extraction-cache hit/miss counters
	// that show disk-tier warmth paying off after a restart — appear on the
	// daemon's /metrics endpoint. N-ary runs do not take per-run metrics
	// instrumentation; their work still shows in the job-level gauges.
	opts := []joinopt.RunOption{
		joinopt.WithTracer(joinopt.NewTrace(sinks...)),
	}
	if task.Arity() == 2 {
		opts = append(opts, joinopt.WithMetrics(s.opts.Metrics))
	}
	if j.req.Workers != 0 {
		opts = append(opts, joinopt.WithWorkers(j.req.Workers))
	}
	if j.req.ExecWorkers != 0 {
		opts = append(opts, joinopt.WithExecWorkers(j.req.ExecWorkers))
	}
	if j.req.Shards != 0 {
		opts = append(opts, joinopt.WithShards(j.req.Shards))
	}
	if j.req.Faults != "" {
		fp, err := joinopt.ParseFaultProfile(j.req.Faults)
		if err != nil {
			return nil, err
		}
		opts = append(opts, joinopt.WithFaults(fp))
	}
	if j.req.Retries != 0 || j.req.FailureBudget != 0 {
		opts = append(opts, joinopt.WithRetries(joinopt.RetryPolicy{
			MaxRetries:    j.req.Retries,
			FailureBudget: j.req.FailureBudget,
		}))
	}
	if j.req.Deadline > 0 {
		opts = append(opts, joinopt.WithDeadline(j.req.Deadline))
	}
	if (s.opts.Durable != nil || s.opts.Cluster != nil) && j.req.Mode == ModeAdaptive {
		// Stream every protocol-transition checkpoint to disk — a daemon
		// killed mid-run resumes this job from the last one persisted —
		// and, in a cluster, to the replica that inherits this workload if
		// this one dies: a SIGKILL'd replica's jobs resume on the standby
		// from the same snapshots, bit-identical to an uninterrupted run.
		d := s.opts.Durable
		id := j.ID
		opts = append(opts, joinopt.WithCheckpointSink(func(ck *joinopt.AdaptiveCheckpoint) {
			wire, err := json.Marshal(ck)
			if err != nil {
				return
			}
			if d != nil {
				d.SaveCheckpoint(id, wire)
			}
			if s.opts.Cluster != nil {
				s.replicateCheckpoint(j, wire)
			}
			if hook := s.ckTestHook; hook != nil {
				// Test seam: lets migration tests freeze a job at a point
				// where its checkpoint has provably replicated, instead of
				// racing wall-clock against job completion.
				hook(j)
			}
		}))
	}
	switch {
	case j.req.Mode == ModeExecute:
		opts = append(opts, joinopt.WithPlan(*j.plan))
	case j.recovered != nil:
		// Rebuilt after a restart: resume from the checkpoint the crashed
		// daemon persisted, not from scratch.
		opts = append(opts, joinopt.WithCheckpoint(j.recovered))
	case j.req.ResumeFrom != "":
		src, err := s.job(j.req.ResumeFrom)
		if err != nil {
			return nil, fmt.Errorf("resume_from: %w", err)
		}
		ck := src.Checkpoint()
		if ck == nil {
			return nil, fmt.Errorf("resume_from: job %s has no resumable checkpoint", j.req.ResumeFrom)
		}
		opts = append(opts, joinopt.WithCheckpoint(ck))
	}

	res, err := task.Run(j.ctx, req, opts...)
	if res == nil {
		return nil, err
	}
	out := &JobResult{
		Mode:           j.req.Mode,
		TotalTime:      res.TotalTime,
		CheckpointErrs: res.CheckpointErrs,
		Resumable:      res.Checkpoint != nil,
	}
	for _, p := range res.Plans {
		out.Plans = append(out.Plans, p.String())
	}
	if o := res.Outcome; o != nil {
		out.Good, out.Bad = o.GoodTuples, o.BadTuples
		out.Time = o.Time
		out.CacheSaved = o.CacheSaved
		out.DocsProcessed, out.DocsRetrieved = o.DocsProcessed, o.DocsRetrieved
		out.Queries = o.Queries
		out.DocsFailed, out.RetriesSpent = o.DocsFailed, o.RetriesSpent
		out.Degraded, out.DeadlineHit = o.Degraded, o.DeadlineHit
		if n := j.req.Tuples; n != 0 {
			tuples := o.Tuples()
			if n > 0 && n < len(tuples) {
				tuples = tuples[:n]
			}
			for _, t := range tuples {
				out.Tuples = append(out.Tuples, JobTuple{A: t.A, B: t.B, C: t.C, Good: t.Good})
			}
		}
	}
	if qo := res.Query; qo != nil {
		out.Good, out.Bad = qo.GoodTuples, qo.BadTuples
		out.Time = qo.Time
		out.DeadlineHit = qo.DeadlineHit
		out.Plans = append(out.Plans, qo.Plan.String())
		qr := &QueryResultJSON{
			Plan:          qo.Plan.String(),
			Tree:          qo.Plan.Tree,
			MergeTime:     qo.MergeTime,
			CacheSaved:    qo.CacheSaved,
			DocsProcessed: qo.DocsProcessed,
			DocsRetrieved: qo.DocsRetrieved,
			Queries:       qo.Queries,
			NodeTuples:    qo.NodeTuples,
		}
		for _, l := range qo.Plan.Leaves {
			qr.Leaves = append(qr.Leaves, QueryLeafJSON{
				Relation: l.Relation, Theta: l.Theta, Strategy: string(l.Strategy), Effort: l.Effort,
			})
		}
		out.Query = qr
	}
	if err != nil && errors.Is(err, joinopt.ErrDeadline) {
		// A deadline stop is a reported outcome, not a job failure.
		err = nil
	}
	if err != nil {
		// Keep the partial result (and checkpoint) but surface the error.
		j.mu.Lock()
		if res.Checkpoint != nil {
			j.checkpoint = res.Checkpoint
		}
		j.mu.Unlock()
		return out, err
	}
	return out, nil
}

// finish records the job's terminal state and publishes its run gauges.
func (s *Service) finish(j *Job, res *JobResult, err error) {
	now := time.Now()
	state := StateDone
	msg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state, msg = StateCanceled, "canceled"
	default:
		state, msg = StateFailed, err.Error()
	}
	j.mu.Lock()
	j.state = state
	j.err = msg
	j.result = res
	j.finished = now
	j.mu.Unlock()
	j.events.Close()

	if d := s.opts.Durable; d != nil {
		// Persist the result first, then journal the transition: replay
		// treats the journal as the commit record, so a finished entry
		// whose result write was lost just re-runs the job.
		if res != nil {
			if payload, err := json.Marshal(res); err == nil {
				d.SaveResult(j.ID, payload)
			}
		}
		s.journal(durable.Record{Seq: j.seq, Event: durable.EventFinished, JobID: j.ID, State: state, Error: msg})
	}

	j.mu.Lock()
	drainCanceled := j.drainCanceled
	j.mu.Unlock()
	if s.opts.Cluster != nil && (j.req.Mode == ModeAdaptive || j.req.Mode == "") &&
		!(state == StateCanceled && drainCanceled) {
		// The job reached a terminal state here: retire the replicated
		// checkpoint so the standby never spuriously adopts it. This covers
		// Done, Failed, and user-canceled — a canceled or failed job left
		// in a peer's standby store would be resurrected (re-running
		// canceled work, or retrying a known failure) when the origin later
		// dies. Drain-canceled jobs are the one exception: they are
		// interrupted work, and Handoff decides their fate next (ship to a
		// successor, or keep the standby entry recoverable if no peer is
		// live). Asynchronous — a slow peer must not serialize completion;
		// Handoff re-retires terminal jobs synchronously on the exit path.
		go s.retireStandby(j)
	}

	m := s.opts.Metrics
	m.Counter(obs.Series(MetricJobsCompleted, "state", state)).Inc()
	if res != nil && res.Evaluation == nil {
		m.Gauge(obs.Series(MetricJobGood, "job", j.ID)).Set(float64(res.Good))
		m.Gauge(obs.Series(MetricJobBad, "job", j.ID)).Set(float64(res.Bad))
		m.Gauge(obs.Series(MetricJobModelTime, "job", j.ID)).Set(res.TotalTime)
	}
}

// Drain gracefully shuts the service down: admission stops (readyz turns
// 503), queued and running jobs get until ctx's deadline to finish, and
// stragglers are then canceled — adaptive runs checkpoint, so their partial
// results and resumable state are retained, not lost. Drain returns once
// every worker has exited; it is idempotent.
func (s *Service) Drain(ctx context.Context) {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		idle := s.sched.startDrain()
		select {
		case <-idle:
		case <-ctx.Done():
			s.sched.cancelInFlight(
				func(j *Job) { j.markDrainCanceled(); s.markCanceled(j) },
				func(j *Job) { j.markDrainCanceled(); j.cancel() },
			)
			<-idle
		}
		s.sched.wait()
		s.publishPool()
		close(s.drainedCh)
	})
	<-s.drainedCh
}
