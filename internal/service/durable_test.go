package service_test

import (
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"joinopt/internal/durable"
	"joinopt/internal/obs"
	"joinopt/internal/service"
)

// crashSpec is the workload the recovery tests share; its requirement is
// deep enough that a run is reliably still in flight after a few dozen
// documents.
var crashSpec = service.WorkloadSpec{NumDocs: 400, Seed: 7}

const (
	crashTauG = 8
	crashTauB = 200
)

// freezer is a TraceSink that freezes a durable store n documents after the
// optimizer commits to a plan — the deterministic stand-in for yanking
// power mid-execution: the job continues in memory, but the disk stops at
// that instant, after at least one checkpoint has been persisted (the
// adaptive loop persists on entry, before plan execution processes docs).
type freezer struct {
	store *durable.Store
	n     int64
	armed atomic.Bool
	seen  atomic.Int64
}

func (f *freezer) Emit(e obs.Event) {
	if e.Kind == obs.KindPlanChosen {
		f.armed.Store(true)
		return
	}
	if f.armed.Load() && e.Kind == obs.KindDocProcessed && f.seen.Add(1) == f.n {
		f.store.Freeze()
	}
}

func openStore(t *testing.T, dir string) (*durable.Store, *durable.Recovered) {
	t.Helper()
	st, rec, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rec
}

func recoveredCount(m *obs.Registry, how string) int64 {
	return m.Counter(obs.Series(obs.MetricJobsRecovered, "how", how)).Value()
}

// timeNormalized strips the warmth-dependent accounting from a result,
// leaving only the warmth-invariant output: tuples, composition, plans,
// and work counters.
func timeNormalized(r *service.JobResult) service.JobResult {
	c := *r
	c.Time, c.TotalTime, c.CacheSaved = 0, 0, [2]float64{}
	return c
}

// invariantTotal is the warmth-invariant billed total: TotalTime plus the
// extraction time the cache made free. Identical across runs regardless of
// how warm the cache (memory or disk tier) happened to be.
func invariantTotal(r *service.JobResult) float64 {
	return r.TotalTime + r.CacheSaved[0] + r.CacheSaved[1]
}

// TestCrashRecoveryResumesBitIdentical is the tentpole property: a daemon
// whose disk froze mid-run (the observable state of a SIGKILL) restarts,
// resumes the interrupted job from its last persisted checkpoint, and
// finishes with the uninterrupted run's output bit-for-bit — every tuple,
// count, and plan. Billed time satisfies the warmth invariant instead of
// literal equality: the disk tier already holds extractions the crashed
// run paid for, so the resumed run may bill less Time (never more), with
// the difference accounted in CacheSaved.
func TestCrashRecoveryResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	stA, recA, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr := &freezer{store: stA, n: 20}
	mA := obs.NewRegistry()
	envA := newEnv(t, service.Options{Workers: 1, Metrics: mA, Durable: stA, Recovered: recA, TraceSink: fr})

	st, _ := envA.submit(t, service.JobRequest{Workload: crashSpec, TauG: crashTauG, TauB: crashTauB, Tuples: -1}, http.StatusAccepted)
	if got := envA.await(t, st.ID); got.State != service.StateDone {
		t.Fatalf("baseline job finished %s: %s", got.State, got.Error)
	}
	_, _, baseline := envA.result(t, st.ID)
	if baseline == nil || baseline.Good == 0 {
		t.Fatalf("implausible baseline %+v", baseline)
	}
	if fr.seen.Load() < fr.n {
		t.Fatalf("run processed only %d docs; freeze never triggered", fr.seen.Load())
	}
	stA.Close()

	// The disk stopped mid-run: journal has submitted+started but no
	// finished record, and a checkpoint snapshot exists.
	if _, err := os.Stat(filepath.Join(dir, "snapshots", st.ID+".ckpt")); err != nil {
		t.Fatalf("no persisted checkpoint: %v", err)
	}

	stB, recB, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stB.Close() })
	if len(recB.Jobs) != 1 || recB.Jobs[0].Finished() || !recB.Jobs[0].Started {
		t.Fatalf("replay saw %+v, want one started unfinished job", recB.Jobs)
	}
	mB := obs.NewRegistry()
	envB := newEnv(t, service.Options{Workers: 1, Metrics: mB, Durable: stB, Recovered: recB})

	if got := envB.await(t, st.ID); got.State != service.StateDone {
		t.Fatalf("recovered job finished %s: %s", got.State, got.Error)
	}
	_, _, resumed := envB.result(t, st.ID)
	if !reflect.DeepEqual(timeNormalized(baseline), timeNormalized(resumed)) {
		t.Errorf("resumed output diverged from uninterrupted run:\nbase    %+v\nresumed %+v", baseline, resumed)
	}
	baseInv, resInv := invariantTotal(baseline), invariantTotal(resumed)
	if math.Abs(baseInv-resInv) > 1e-6*math.Abs(baseInv)+1e-9 {
		t.Errorf("warmth-invariant total diverged: base %.6f, resumed %.6f", baseInv, resInv)
	}
	if resumed.Time > baseline.Time+1e-9 || resumed.TotalTime > baseline.TotalTime+1e-9 {
		t.Errorf("resumed run billed more than uninterrupted: time %.3f/%.3f total %.3f/%.3f",
			resumed.Time, baseline.Time, resumed.TotalTime, baseline.TotalTime)
	}
	if got := recoveredCount(mB, "resumed"); got != 1 {
		t.Errorf("jobs_recovered{how=resumed} = %d, want 1", got)
	}
	// New submissions get fresh IDs above the recovered sequence.
	st2, _ := envB.submit(t, service.JobRequest{Mode: service.ModeOptimize, Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	if st2.ID == st.ID {
		t.Errorf("recovered and fresh jobs share ID %s", st2.ID)
	}
}

// TestRecoveryRequeuesNeverRanJob: a job journaled as submitted but never
// started is re-enqueued on restart and completes.
func TestRecoveryRequeuesNeverRanJob(t *testing.T) {
	dir := t.TempDir()
	stA, recA, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	envA := newEnv(t, service.Options{Workers: 1, Metrics: obs.NewRegistry(), Durable: stA, Recovered: recA, TraceSink: g})

	// Job 1 blocks on the gate mid-run; job 2 stays queued behind it.
	st1, _ := envA.submit(t, service.JobRequest{Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	<-g.entered
	st2, _ := envA.submit(t, service.JobRequest{Mode: service.ModeOptimize, Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	stA.Freeze()
	stA.Close()
	close(g.release)

	stB, recB, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stB.Close() })
	mB := obs.NewRegistry()
	envB := newEnv(t, service.Options{Workers: 1, Metrics: mB, Durable: stB, Recovered: recB})
	for _, id := range []string{st1.ID, st2.ID} {
		if got := envB.await(t, id); got.State != service.StateDone {
			t.Fatalf("recovered job %s finished %s: %s", id, got.State, got.Error)
		}
	}
	if req := recoveredCount(mB, "requeued"); req < 1 {
		t.Errorf("jobs_recovered{how=requeued} = %d, want >= 1", req)
	}
	if total := recoveredCount(mB, "requeued") + recoveredCount(mB, "resumed"); total != 2 {
		t.Errorf("jobs recovered = %d, want 2", total)
	}
}

// TestRecoveryServesCompletedResult: a job that finished before the restart
// is reinstated from its persisted result — no re-execution, no workload
// rebuild.
func TestRecoveryServesCompletedResult(t *testing.T) {
	dir := t.TempDir()
	stA, recA, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	envA := newEnv(t, service.Options{Workers: 1, Metrics: obs.NewRegistry(), Durable: stA, Recovered: recA})
	st, _ := envA.submit(t, service.JobRequest{Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	envA.await(t, st.ID)
	_, _, want := envA.result(t, st.ID)
	stA.Close()

	stB, recB, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stB.Close() })
	mB := obs.NewRegistry()
	envB := newEnv(t, service.Options{Workers: 1, Metrics: mB, Durable: stB, Recovered: recB})
	state, errMsg, got := envB.result(t, st.ID)
	if state != service.StateDone || errMsg != "" {
		t.Fatalf("recovered job state %s (%s)", state, errMsg)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("served result diverged:\nwant %+v\ngot  %+v", want, got)
	}
	if got := recoveredCount(mB, "completed"); got != 1 {
		t.Errorf("jobs_recovered{how=completed} = %d, want 1", got)
	}
	if builds := mB.Counter(service.MetricWorkloadBuilds).Value(); builds != 0 {
		t.Errorf("serving a persisted result rebuilt %d workloads", builds)
	}
}

// TestCorruptCheckpointRerunsFromScratch: a bit-flipped checkpoint snapshot
// is rejected by checksum; the job re-runs from scratch to completion, and
// the daemon reports degraded on /readyz instead of going down. The rerun
// is not compared bit-for-bit against the first run: a from-scratch
// adaptive run over the now-warm disk tier observes cheaper extraction and
// may legitimately pick a different plan — the same behavior a second job
// on a warm in-memory cache has always had. Bit-identity is the resumed
// path's property (TestCrashRecoveryResumesBitIdentical).
func TestCorruptCheckpointRerunsFromScratch(t *testing.T) {
	dir := t.TempDir()
	stA, recA, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr := &freezer{store: stA, n: 20}
	envA := newEnv(t, service.Options{Workers: 1, Metrics: obs.NewRegistry(), Durable: stA, Recovered: recA, TraceSink: fr})
	st, _ := envA.submit(t, service.JobRequest{Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	envA.await(t, st.ID)
	stA.Close()

	ckpt := filepath.Join(dir, "snapshots", st.ID+".ckpt")
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	stB, recB, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stB.Close() })
	mB := obs.NewRegistry()
	envB := newEnv(t, service.Options{Workers: 1, Metrics: mB, Durable: stB, Recovered: recB})
	if got := envB.await(t, st.ID); got.State != service.StateDone {
		t.Fatalf("rerun job finished %s: %s", got.State, got.Error)
	}
	_, _, rerun := envB.result(t, st.ID)
	if rerun == nil || rerun.Good == 0 || len(rerun.Plans) == 0 {
		t.Errorf("implausible from-scratch rerun %+v", rerun)
	}
	if got := recoveredCount(mB, "requeued"); got != 1 {
		t.Errorf("jobs_recovered{how=requeued} = %d, want 1 (corrupt checkpoint must requeue)", got)
	}
	if deg, why := envB.svc.Degraded(); !deg || why == "" {
		t.Errorf("Degraded() = %v, %q after checksum rejection", deg, why)
	}
	resp, err := http.Get(envB.srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Errorf("/readyz = %d %q, want 200 with a degraded detail", resp.StatusCode, body)
	}
}

// TestCancelQueuedJobJournalsAndRefundsQuota is the DELETE integration
// contract: cancelling a still-queued job removes it from the scheduler
// heap, refunds the tenant's quota immediately, and journals the
// cancellation so a restart does not resurrect the job.
func TestCancelQueuedJobJournalsAndRefundsQuota(t *testing.T) {
	dir := t.TempDir()
	stA, recA, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	envA := newEnv(t, service.Options{Workers: 1, TenantQuota: 2, Metrics: obs.NewRegistry(), Durable: stA, Recovered: recA, TraceSink: g})

	blocker, _ := envA.submit(t, service.JobRequest{Tenant: "t", Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	<-g.entered
	queued, _ := envA.submit(t, service.JobRequest{Tenant: "t", Mode: service.ModeOptimize, Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)
	// Quota (2) is now exhausted: a third submission bounces.
	envA.submit(t, service.JobRequest{Tenant: "t", Mode: service.ModeOptimize, Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusTooManyRequests)

	req, _ := http.NewRequest(http.MethodDelete, envA.srv.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if st := envA.status(t, queued.ID); st.State != service.StateCanceled {
		t.Fatalf("canceled job state %s", st.State)
	}
	// The quota slot is free again, without waiting for the blocker.
	third, _ := envA.submit(t, service.JobRequest{Tenant: "t", Mode: service.ModeOptimize, Workload: crashSpec, TauG: crashTauG, TauB: crashTauB}, http.StatusAccepted)

	close(g.release)
	envA.await(t, blocker.ID)
	envA.await(t, third.ID)
	stA.Close()

	// The journal committed the cancellation: a restart reinstates the job
	// as canceled instead of re-running it.
	stB, recB := openStore(t, dir)
	var found *durable.RecoveredJob
	for i := range recB.Jobs {
		if recB.Jobs[i].ID == queued.ID {
			found = &recB.Jobs[i]
		}
	}
	if found == nil || found.State != service.StateCanceled {
		t.Fatalf("journal replay of the canceled job = %+v", found)
	}
	mB := obs.NewRegistry()
	envB := newEnv(t, service.Options{Workers: 1, Metrics: mB, Durable: stB, Recovered: recB})
	if st := envB.status(t, queued.ID); st.State != service.StateCanceled {
		t.Errorf("restart resurrected canceled job as %s", st.State)
	}
}
