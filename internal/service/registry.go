package service

import (
	"fmt"
	"sync"

	"joinopt"
	"joinopt/internal/obs"
	"joinopt/internal/pipeline"
)

// Registry constructs Tasks once per workload spec and shares them across
// every request: the expensive generation and training work, the memoized
// optimizer inputs, and the shared extraction cache are all amortized over
// the jobs that name the same workload. Task construction runs outside the
// registry lock (per-entry once), so a slow build never blocks lookups of
// other workloads.
type Registry struct {
	defaultCacheBytes int64

	// tierFor, when set (by a service with a durable store), resolves the
	// disk cache tier to attach to a freshly built workload's extraction
	// cache. The key it receives is normalized. Set before any Task call.
	tierFor func(regKey) pipeline.Tier

	mu      sync.Mutex
	entries map[regKey]*regEntry

	builds   *obs.Counter
	reuses   *obs.Counter
	resident *obs.Gauge
}

// regKey identifies one shareable task: the normalized binary workload
// spec plus, for n-way jobs, the canonical query string (QuerySpec.key).
// Keying on the canonical string keeps the key comparable — the slices in
// a QuerySpec could not be a map key — and makes equivalent query
// spellings share one entry.
type regKey struct {
	wl    WorkloadSpec
	query string
}

type regEntry struct {
	once sync.Once
	task *joinopt.Task
	err  error
}

// Registry metric families.
const (
	MetricWorkloadBuilds   = "joinoptd_workload_builds_total"
	MetricWorkloadReuses   = "joinoptd_workload_reuses_total"
	MetricWorkloadResident = "joinoptd_workloads_resident"
)

// NewRegistry builds a workload registry. defaultCacheBytes sizes the
// shared extraction cache of workloads whose spec leaves CacheBytes zero.
// Metrics may be nil.
func NewRegistry(defaultCacheBytes int64, m *obs.Registry) *Registry {
	m.Describe(MetricWorkloadBuilds, "workload tasks constructed by the registry")
	m.Describe(MetricWorkloadReuses, "jobs served by an already-constructed workload task")
	m.Describe(MetricWorkloadResident, "distinct workload tasks resident in the registry")
	return &Registry{
		defaultCacheBytes: defaultCacheBytes,
		entries:           map[regKey]*regEntry{},
		builds:            m.Counter(MetricWorkloadBuilds),
		reuses:            m.Counter(MetricWorkloadReuses),
		resident:          m.Gauge(MetricWorkloadResident),
	}
}

// normalize applies spec defaults so equivalent requests share one entry.
// Query jobs name their relations in the query spec, so the binary
// relations default does not apply to them.
func (r *Registry) normalize(spec WorkloadSpec, q *QuerySpec) WorkloadSpec {
	if q == nil && spec.Relations == [2]string{} {
		spec.Relations = [2]string{"HQ", "EX"}
	}
	if spec.NumDocs == 0 {
		spec.NumDocs = 1000
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.CacheBytes == 0 {
		spec.CacheBytes = r.defaultCacheBytes
	}
	return spec
}

// Task resolves the shared Task for a workload spec — plus, for n-way
// jobs, a query spec — constructing it on first use.
func (r *Registry) Task(spec WorkloadSpec, q *QuerySpec) (*joinopt.Task, error) {
	key := regKey{wl: r.normalize(spec, q), query: q.key()}
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		e = &regEntry{}
		r.entries[key] = e
		r.resident.Set(float64(len(r.entries)))
	}
	r.mu.Unlock()

	first := false
	e.once.Do(func() {
		first = true
		r.builds.Inc()
		spec := key.wl
		params := joinopt.WorkloadParams{
			NumDocs:  spec.NumDocs,
			NumDocs2: spec.NumDocs2,
			Seed:     spec.Seed,
			TopK:     spec.TopK,
		}
		if q != nil {
			e.task, e.err = joinopt.NewQuery(params, joinopt.Query{Relations: q.Relations, Joins: q.Joins})
			if e.err != nil {
				e.err = fmt.Errorf("service: building query workload %v: %w", q.Relations, e.err)
				return
			}
			e.task.MergeCost = q.MergeCost
		} else {
			e.task, e.err = joinopt.NewTaskPair(params, spec.Relations[0], spec.Relations[1])
			if e.err != nil {
				e.err = fmt.Errorf("service: building workload %v: %w", spec.Relations, e.err)
				return
			}
		}
		if spec.CacheBytes > 0 {
			e.task.ExtractCacheBytes = spec.CacheBytes
		}
		if r.tierFor != nil {
			if tier := r.tierFor(key); tier != nil {
				e.task.SetExtractCacheTier(tier)
			}
		}
	})
	if !first && e.err == nil {
		r.reuses.Inc()
	}
	return e.task, e.err
}

// Size returns the number of resident workload entries.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
