package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"joinopt"
	"joinopt/internal/cluster"
	"joinopt/internal/durable"
	"joinopt/internal/obs"
)

// The cluster side of the service: ownership-aware routing for the HTTP
// layer, checkpoint replication to the ring successor, and job migration —
// adopting a dead or draining peer's jobs from their replicated checkpoints
// and resuming them with WithCheckpoint, bit-identical to an uninterrupted
// run (the invariant the crash-smoke harness pins in-process and
// cluster-smoke pins across processes).

// forwardHeader marks an intra-cluster request so the receiver serves it
// locally instead of re-forwarding — one hop, never a loop, even when two
// replicas transiently disagree about ownership.
const forwardHeader = "X-Joinopt-Forwarded"

// Forward modes (Options.ForwardMode).
const (
	// ForwardProxy transparently re-issues a mis-addressed submission to
	// the owner and relays its response (default — clients need no redirect
	// support and keep talking to one address).
	ForwardProxy = "proxy"
	// ForwardRedirect answers mis-addressed submissions with 307 and the
	// owner's URL (clients re-POST; cheaper for large request bodies).
	ForwardRedirect = "redirect"
)

// CanonicalWorkloadKey is the cluster routing key of a job request: the
// same canonical workload string that namespaces the durable cache tier, so
// all jobs of one workload land on the replica holding its trained
// machinery, memoized optimizer inputs, and warmed disk tier. Cache sizing
// is deliberately not part of the key — replicas with different cache
// defaults must still agree on ownership.
func CanonicalWorkloadKey(req JobRequest) string {
	spec := req.Workload
	if req.Query == nil && spec.Relations == [2]string{} {
		spec.Relations = [2]string{"HQ", "EX"}
	}
	if spec.NumDocs == 0 {
		spec.NumDocs = 1000
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	spec.CacheBytes = 0
	return cacheNamespace(regKey{wl: spec, query: req.Query.key()})
}

// standbyWire is the POST /v1/cluster/standby payload: everything a peer
// needs to adopt one job — the original request, the latest checkpoint, and
// the origin so a down-transition knows which entries to activate.
type standbyWire struct {
	ID         string          `json:"id"`
	Tenant     string          `json:"tenant"`
	Origin     string          `json:"origin"` // member name of the replica running the job
	Request    json.RawMessage `json:"request"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"` // joinopt checkpoint wire; absent for queued jobs
	// Activate asks the receiver to run the job now (drain handoff);
	// without it the entry is held in standby until the origin goes down.
	Activate bool `json:"activate,omitempty"`
	// Done retires the entry: the origin finished the job itself.
	Done bool `json:"done,omitempty"`
}

// standbyStore holds the peer jobs this replica may need to adopt.
type standbyStore struct {
	mu      sync.Mutex
	entries map[string]standbyWire
	gauge   *obs.Gauge
}

func newStandbyStore(m *obs.Registry) *standbyStore {
	return &standbyStore{entries: map[string]standbyWire{}, gauge: m.Gauge(cluster.MetricStandbyJobs)}
}

func (st *standbyStore) put(w standbyWire) {
	st.mu.Lock()
	st.entries[w.ID] = w
	st.gauge.Set(float64(len(st.entries)))
	st.mu.Unlock()
}

func (st *standbyStore) remove(id string) (standbyWire, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w, ok := st.entries[id]
	if ok {
		delete(st.entries, id)
		st.gauge.Set(float64(len(st.entries)))
	}
	return w, ok
}

// fromOrigin snapshots the entries replicated by one member.
func (st *standbyStore) fromOrigin(origin string) []standbyWire {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []standbyWire
	for _, w := range st.entries {
		if w.Origin == origin {
			out = append(out, w)
		}
	}
	return out
}

func (st *standbyStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// initCluster wires the cluster into a freshly built service: metric
// counters, the standby store (reloaded from the durable tier when one
// exists), and the down-transition hook that migrates a dead peer's jobs.
// Runs during New, before the service serves.
func (s *Service) initCluster() {
	c := s.opts.Cluster
	m := s.opts.Metrics
	s.standby = newStandbyStore(m)
	s.migrations = map[string]*obs.Counter{
		"takeover": m.Counter(obs.Series(cluster.MetricMigrations, "how", "takeover")),
		"handoff":  m.Counter(obs.Series(cluster.MetricMigrations, "how", "handoff")),
	}
	if d := s.opts.Durable; d != nil {
		for id, payload := range d.LoadStandbys() {
			var w standbyWire
			if err := json.Unmarshal(payload, &w); err != nil || w.ID != id {
				m.Counter(obs.Series(obs.MetricDurableErrs, "op", "standby")).Inc()
				d.DeleteStandby(id)
				continue
			}
			if j, err := s.job(id); err == nil && j.terminal() {
				d.DeleteStandby(id) // adopted or finished before the restart
				continue
			}
			s.standby.put(w)
		}
	}
	c.OnDown(func(name string) { s.migrateFrom(name) })
}

// ownerFor resolves the owning replica of a request's workload. self
// reports whether this replica is the owner.
func (s *Service) ownerFor(req JobRequest) (name, url string, self bool) {
	c := s.opts.Cluster
	if c == nil {
		return "", "", true
	}
	name, url = c.Owner(CanonicalWorkloadKey(req))
	return name, url, name == c.SelfName()
}

// replicateCheckpoint streams a running job's latest checkpoint to the
// replica that would inherit its workload, synchronously (checkpoints are
// per protocol transition, and ordering matters: the standby must never
// hold a newer checkpoint's predecessor). Failures are absorbed — the
// origin still has the durable tier, and the next checkpoint retries.
func (s *Service) replicateCheckpoint(j *Job, ckWire []byte) {
	c := s.opts.Cluster
	_, url, ok := c.StandbyTarget(j.key)
	if !ok {
		return
	}
	reqWire, err := json.Marshal(j.req)
	if err != nil {
		return
	}
	j.mu.Lock()
	if j.standbys == nil {
		j.standbys = map[string]struct{}{}
	}
	j.standbys[url] = struct{}{}
	j.mu.Unlock()
	if err := s.sendStandby(url, standbyWire{
		ID: j.ID, Tenant: j.Tenant, Origin: c.SelfName(),
		Request: reqWire, Checkpoint: ckWire,
	}); err != nil {
		s.logf("cluster: replicating checkpoint of %s to %s: %v", j.ID, url, err)
	}
}

// retireStandby tells every standby holder a job reached a terminal state,
// so no replicated entry lingers (and cannot be spuriously adopted later).
// It targets every peer the job was ever replicated to, not just the
// current successor: a mid-run successor change (e.g. a transient
// false-down of the original standby) would otherwise leave the earlier
// holder a stale entry that no retire ever reaches. The current successor
// is included too, covering jobs rebuilt after a restart whose replication
// history did not survive in memory.
func (s *Service) retireStandby(j *Job) {
	c := s.opts.Cluster
	targets := map[string]struct{}{}
	if _, url, ok := c.StandbyTarget(j.key); ok {
		targets[url] = struct{}{}
	}
	j.mu.Lock()
	for url := range j.standbys {
		targets[url] = struct{}{}
	}
	j.mu.Unlock()
	for url := range targets {
		s.sendStandby(url, standbyWire{ID: j.ID, Origin: c.SelfName(), Done: true})
	}
}

// sendStandby posts one standby message to a peer. Best-effort.
func (s *Service) sendStandby(url string, w standbyWire) error {
	body, err := json.Marshal(w)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/cluster/standby", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	resp, err := s.opts.Cluster.Client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("standby %s: %s", url, resp.Status)
	}
	return nil
}

// acceptStandby handles one POST /v1/cluster/standby message: retire,
// activate (drain handoff), or hold.
func (s *Service) acceptStandby(w standbyWire) error {
	if w.ID == "" {
		return fmt.Errorf("standby message without a job id")
	}
	// The message itself proves its origin is alive — stronger evidence
	// than a probe. Resetting the probe state here guarantees the origin's
	// real death later is a fresh down-transition, so the migration hook
	// fires with this entry in the store (and never strands it behind a
	// stale false-down from a slow /healthz).
	if w.Origin != "" {
		s.opts.Cluster.ReportAlive(w.Origin)
	}
	if w.Done {
		s.standby.remove(w.ID)
		if d := s.opts.Durable; d != nil {
			d.DeleteStandby(w.ID)
		}
		return nil
	}
	if len(w.Request) == 0 {
		return fmt.Errorf("standby message for %s carries no job request", w.ID)
	}
	if w.Activate {
		// A draining replica must refuse handoffs: its workers have (or are
		// about to have) exited, and adopt's forceSubmit bypasses the
		// scheduler's draining check, so an accepted job would be journaled
		// and then sit queued forever. During simultaneous rolling restarts
		// two drains can point at each other — the non-200 makes the sender
		// log the failure and keep the job recoverable at its origin.
		if s.draining.Load() {
			return fmt.Errorf("%w: refusing handoff of job %s", ErrDraining, w.ID)
		}
		return s.adopt(w, "handoff")
	}
	s.standby.put(w)
	if d := s.opts.Durable; d != nil {
		if payload, err := json.Marshal(w); err == nil {
			d.SaveStandby(w.ID, payload)
		}
	}
	return nil
}

// migrateFrom adopts every standby entry replicated by a member now probed
// down. Entries whose workload this replica does not own after the
// remapping are left in standby — their new owner holds its own replica of
// them (the origin replicated each checkpoint to that key's successor, and
// this replica is only the successor for keys it inherits).
func (s *Service) migrateFrom(origin string) {
	if s.draining.Load() {
		return // a draining survivor must not adopt new work
	}
	for _, w := range s.standby.fromOrigin(origin) {
		var req JobRequest
		if err := json.Unmarshal(w.Request, &req); err != nil {
			continue
		}
		if _, _, self := s.ownerFor(req); !self {
			continue
		}
		if err := s.adopt(w, "takeover"); err != nil {
			s.logf("cluster: adopting %s from down peer %s: %v", w.ID, origin, err)
		}
	}
}

// adopt runs a replicated peer job on this replica: the job enters the
// store under its original cluster-wide ID, is journaled like a local
// submission (so it survives this replica crashing too), and resumes from
// the replicated checkpoint when one exists — the bit-identical-resume
// contract makes the migrated run indistinguishable from one the origin
// finished itself.
func (s *Service) adopt(w standbyWire, how string) error {
	s.standby.remove(w.ID)
	if d := s.opts.Durable; d != nil {
		d.DeleteStandby(w.ID)
	}
	if _, err := s.job(w.ID); err == nil {
		return nil // already adopted (hook re-fire) or recovered locally
	}
	var req JobRequest
	if err := json.Unmarshal(w.Request, &req); err != nil {
		return fmt.Errorf("replicated request does not parse: %w", err)
	}
	var recovered *joinopt.AdaptiveCheckpoint
	if len(w.Checkpoint) > 0 {
		ck, err := joinopt.DecodeCheckpoint(w.Checkpoint)
		if err != nil {
			// A damaged replica is detected, not trusted: re-run from
			// scratch — still deterministic, just slower.
			s.logf("cluster: replicated checkpoint of %s rejected (%v); re-running from scratch", w.ID, err)
		} else {
			recovered = ck
		}
	}
	var plan *joinopt.Plan
	if req.Mode == ModeExecute && req.Plan != nil {
		if p, err := req.Plan.plan(); err == nil {
			plan = &p
		}
	}
	seq := s.seq.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        w.ID,
		Tenant:    w.Tenant,
		Priority:  req.Priority,
		seq:       seq,
		req:       req,
		plan:      plan,
		key:       CanonicalWorkloadKey(req),
		node:      s.selfNode(),
		ctx:       ctx,
		cancel:    cancel,
		events:    newEventLog(),
		state:     StateQueued,
		submitted: time.Now(),
		recovered: recovered,
	}
	s.storeJob(j)
	if s.opts.Durable != nil {
		s.journal(durable.Record{Seq: seq, Event: durable.EventSubmitted, JobID: j.ID, Tenant: j.Tenant, Request: w.Request})
		if recovered != nil {
			// Mark it started so a crash of THIS replica resumes from the
			// checkpoint instead of re-running from scratch.
			s.journal(durable.Record{Seq: seq, Event: durable.EventStarted, JobID: j.ID})
			s.opts.Durable.SaveCheckpoint(j.ID, w.Checkpoint)
		}
	}
	s.sched.forceSubmit(j)
	s.migrations[how].Inc()
	s.publishPool()
	s.logf("cluster: adopted job %s from %s (%s, checkpoint=%v)", j.ID, w.Origin, how, recovered != nil)
	return nil
}

// Handoff migrates this replica's drain-interrupted adaptive jobs to their
// next owners, checkpoint and all. Call it after Drain: drain-canceled
// adaptive runs hold their final checkpoint in memory, queued-then-
// drain-canceled jobs hold none and restart from scratch on the inheritor.
// Jobs the user explicitly canceled are never handed off — the cancel
// contract outlives the replica — and every terminal job it does not ship
// gets its standby entry retired synchronously here, because finish()'s
// async retire races process death on the exit path. Returns the number of
// jobs handed off.
func (s *Service) Handoff(ctx context.Context) int {
	c := s.opts.Cluster
	if c == nil {
		return 0
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	handed := 0
	for _, j := range jobs {
		if ctx.Err() != nil {
			break
		}
		j.mu.Lock()
		state, ck := j.state, j.checkpoint
		mode := j.req.Mode
		drainCanceled := j.drainCanceled
		j.mu.Unlock()
		if mode != ModeAdaptive && mode != "" {
			continue
		}
		// Only drain-interrupted work moves. Every other terminal job —
		// done, failed, or canceled by the user (even long before this
		// drain; the store retains terminal jobs) — retires its standby
		// entry here, synchronously: finish() retires asynchronously, and
		// on the exit path that goroutine races process death. A stale
		// entry left behind makes the survivor resurrect the job once its
		// origin is probed down. A drain-canceled job with no checkpoint
		// was queued when the drain landed: hand the bare request over so
		// the acceptance is still honoured.
		if state != StateCanceled || !drainCanceled {
			if state == StateDone || state == StateFailed || state == StateCanceled {
				s.retireStandby(j)
			}
			continue
		}
		var ckWire json.RawMessage
		if ck != nil {
			if wire, err := json.Marshal(ck); err == nil {
				ckWire = wire
			}
		}
		reqWire, err := json.Marshal(j.req)
		if err != nil {
			continue
		}
		_, url, ok := c.StandbyTarget(j.key)
		if !ok {
			s.logf("cluster: no live peer to hand job %s to; it stays canceled here", j.ID)
			continue
		}
		if err := s.sendStandby(url, standbyWire{
			ID: j.ID, Tenant: j.Tenant, Origin: c.SelfName(),
			Request: reqWire, Checkpoint: ckWire, Activate: true,
		}); err != nil {
			s.logf("cluster: handing job %s to %s failed: %v", j.ID, url, err)
			continue
		}
		handed++
	}
	if handed > 0 {
		s.logf("cluster: handed %d interrupted jobs to their next owners", handed)
	}
	return handed
}

// StandbyCount returns the replicated peer jobs currently held (0 without
// a cluster).
func (s *Service) StandbyCount() int {
	if s.standby == nil {
		return 0
	}
	return s.standby.size()
}

// nodeJobID renders a job ID. Cluster IDs carry the replica's name
// ("n1-j000042") so any replica can route a lookup to the replica that
// created the job.
func (s *Service) nodeJobID(seq uint64) string {
	if c := s.opts.Cluster; c != nil {
		return fmt.Sprintf("%s-j%06d", c.SelfName(), seq)
	}
	return fmt.Sprintf("j%06d", seq)
}

// routeJobID resolves which peer a cluster job ID belongs to. ok is false
// for local, unparseable, or unknown-member IDs.
func (s *Service) routeJobID(id string) (url string, ok bool) {
	c := s.opts.Cluster
	if c == nil {
		return "", false
	}
	name, _, found := strings.Cut(id, "-")
	if !found || name == c.SelfName() {
		return "", false
	}
	url, known := c.PeerURL(name)
	if !known || c.MemberState(name) == cluster.StateDown {
		return "", false
	}
	return url, true
}

// selfNode returns this replica's member name ("" outside a cluster).
func (s *Service) selfNode() string {
	if c := s.opts.Cluster; c != nil {
		return c.SelfName()
	}
	return ""
}

// logf logs through the service's optional logger.
func (s *Service) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
