package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"joinopt"
	"joinopt/internal/obs"
	"joinopt/internal/service"
)

// testSpec is the workload most tests share: small enough to build in tens
// of milliseconds, with a requirement known to be feasible.
var testSpec = service.WorkloadSpec{NumDocs: 500, Seed: 21}

const (
	testTauG = 5
	testTauB = 120
)

// gate is a Tracer that blocks the first event it sees until released —
// the deterministic way to hold a job mid-run while a test cancels, drains,
// or fills the queue behind it.
type gate struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) Emit(obs.Event) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

type env struct {
	svc *service.Service
	srv *httptest.Server
}

func newEnv(t *testing.T, opts service.Options) *env {
	t.Helper()
	svc := service.New(opts)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return &env{svc: svc, srv: srv}
}

// submit POSTs a job and decodes the response, asserting the status code.
func (e *env) submit(t *testing.T, req service.JobRequest, wantStatus int) (service.JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("submit: status %d, want %d (body %s)", resp.StatusCode, wantStatus, raw)
	}
	var st service.JobStatus
	if wantStatus == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit: decoding %s: %v", raw, err)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return st, resp
}

// await polls the job until it leaves the queued/running states.
func (e *env) await(t *testing.T, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := e.status(t, id)
		if st.State != service.StateQueued && st.State != service.StateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return service.JobStatus{}
}

func (e *env) status(t *testing.T, id string) service.JobStatus {
	t.Helper()
	resp, err := http.Get(e.srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: %d %s", id, resp.StatusCode, b)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// result fetches a finished job's result envelope.
func (e *env) result(t *testing.T, id string) (state string, errMsg string, res *service.JobResult) {
	t.Helper()
	resp, err := http.Get(e.srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("result %s: %d %s", id, resp.StatusCode, b)
	}
	var out struct {
		State  string             `json:"state"`
		Error  string             `json:"error"`
		Result *service.JobResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.State, out.Error, out.Result
}

// events reads the job's full NDJSON event stream.
func (e *env) events(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(e.srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEndToEndAdaptiveMatchesInProcess is the tentpole acceptance test: an
// adaptive job through the daemon's HTTP API produces the same plans and
// output composition as the same request through Task.Run in-process — and
// with the extraction cache disabled (cache warmth annotates trace timing),
// the streamed NDJSON event log is byte-identical to an in-process NDJSON
// trace of the same run.
func TestEndToEndAdaptiveMatchesInProcess(t *testing.T) {
	spec := testSpec
	spec.CacheBytes = -1 // disable: keeps traces independent of cross-job warmth
	e := newEnv(t, service.Options{})

	st, _ := e.submit(t, service.JobRequest{
		Workload: spec,
		TauG:     testTauG,
		TauB:     testTauB,
		Workers:  1,
	}, http.StatusAccepted)
	if fin := e.await(t, st.ID); fin.State != service.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	_, _, res := e.result(t, st.ID)
	streamed := e.events(t, st.ID)

	// The same request, in-process.
	tk, err := joinopt.NewTaskPair(joinopt.WorkloadParams{
		NumDocs: spec.NumDocs, Seed: spec.Seed,
	}, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	sink := joinopt.NewTraceFile(&ref)
	local, err := tk.Run(context.Background(),
		joinopt.Requirement{TauG: testTauG, TauB: testTauB},
		joinopt.WithWorkers(1),
		joinopt.WithTracer(joinopt.NewTrace(sink)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	if res.Good != local.Outcome.GoodTuples || res.Bad != local.Outcome.BadTuples {
		t.Errorf("composition diverged: service %d/%d vs in-process %d/%d",
			res.Good, res.Bad, local.Outcome.GoodTuples, local.Outcome.BadTuples)
	}
	if len(res.Plans) != len(local.Plans) {
		t.Fatalf("plans diverged: %v vs %v", res.Plans, local.Plans)
	}
	for i, p := range local.Plans {
		if res.Plans[i] != p.String() {
			t.Errorf("plan %d: %q vs %q", i, res.Plans[i], p)
		}
	}
	if !bytes.Equal(streamed, ref.Bytes()) {
		t.Errorf("streamed trace is not byte-identical to the in-process trace:\nservice %d bytes vs local %d bytes", len(streamed), ref.Len())
	}
	if bytes.Count(streamed, []byte("\n")) < 3 {
		t.Errorf("suspiciously short trace: %s", streamed)
	}
}

// TestExecuteAndOptimizeModes covers the two non-adaptive modes against
// their in-process equivalents.
func TestExecuteAndOptimizeModes(t *testing.T) {
	e := newEnv(t, service.Options{})
	plan := &service.PlanRequest{Algorithm: "IDJN", Theta: [2]float64{0.4, 0.4}, X: [2]string{"SC", "SC"}}

	exe, _ := e.submit(t, service.JobRequest{
		Workload: testSpec, Mode: service.ModeExecute, Plan: plan, Tuples: 3,
	}, http.StatusAccepted)
	opt, _ := e.submit(t, service.JobRequest{
		Workload: testSpec, Mode: service.ModeOptimize, TauG: testTauG, TauB: testTauB,
	}, http.StatusAccepted)

	if st := e.await(t, exe.ID); st.State != service.StateDone {
		t.Fatalf("execute job: %s (%s)", st.State, st.Error)
	}
	if st := e.await(t, opt.ID); st.State != service.StateDone {
		t.Fatalf("optimize job: %s (%s)", st.State, st.Error)
	}

	tk, err := joinopt.NewTaskPair(joinopt.WorkloadParams{NumDocs: testSpec.NumDocs, Seed: testSpec.Seed}, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}

	_, _, exeRes := e.result(t, exe.ID)
	local, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if exeRes.Good != local.Outcome.GoodTuples || exeRes.Bad != local.Outcome.BadTuples {
		t.Errorf("execute composition: %d/%d vs %d/%d", exeRes.Good, exeRes.Bad, local.Outcome.GoodTuples, local.Outcome.BadTuples)
	}
	if len(exeRes.Tuples) != 3 {
		t.Errorf("tuple cap: got %d tuples, want 3", len(exeRes.Tuples))
	}

	_, _, optRes := e.result(t, opt.ID)
	ev, err := tk.Optimize(joinopt.Requirement{TauG: testTauG, TauB: testTauB})
	if err != nil {
		t.Fatal(err)
	}
	if optRes.Evaluation == nil || optRes.Evaluation.Plan != ev.Plan.String() {
		t.Errorf("optimize chose %+v, in-process chose %s", optRes.Evaluation, ev.Plan)
	}
}

// TestAdmissionControl pins the 429 surface: a held worker plus a full
// queue rejects with queue_full, and a tenant over its quota rejects with
// tenant_quota — both carrying Retry-After.
func TestAdmissionControl(t *testing.T) {
	g := newGate()
	e := newEnv(t, service.Options{
		Workers:     1,
		QueueDepth:  2,
		TenantQuota: 2,
		RetryAfter:  3 * time.Second,
		TraceSink:   g,
	})
	req := func(tenant string) service.JobRequest {
		return service.JobRequest{Tenant: tenant, Workload: testSpec, TauG: testTauG, TauB: testTauB}
	}

	blocker, _ := e.submit(t, req("a"), http.StatusAccepted)
	<-g.entered // the only worker is now held mid-run
	e.submit(t, req("a"), http.StatusAccepted)

	// Tenant a is at quota (1 running + 1 queued).
	_, resp := e.submit(t, req("a"), http.StatusTooManyRequests)
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("tenant-quota Retry-After = %q, want 3", ra)
	}
	var body struct{ Reason string }
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Reason != "tenant_quota" {
		t.Errorf("tenant-quota reason = %q (%v)", body.Reason, err)
	}

	// Fill the queue with another tenant, then overflow it.
	e.submit(t, req("b"), http.StatusAccepted)
	_, resp = e.submit(t, req("c"), http.StatusTooManyRequests)
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("queue-full Retry-After = %q, want 3", ra)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Reason != "queue_full" {
		t.Errorf("queue-full reason = %q (%v)", body.Reason, err)
	}

	close(g.release)
	if st := e.await(t, blocker.ID); st.State != service.StateDone {
		t.Fatalf("blocker finished %s (%s)", st.State, st.Error)
	}

	snap := e.svc.Metrics().Snapshot()
	if n := snap.Counters[obs.Series(service.MetricJobsRejected, "reason", "tenant_quota")]; n != 1 {
		t.Errorf("tenant_quota rejections = %d, want 1", n)
	}
	if n := snap.Counters[obs.Series(service.MetricJobsRejected, "reason", "queue_full")]; n != 1 {
		t.Errorf("queue_full rejections = %d, want 1", n)
	}
}

// TestCancelRunningJobCheckpointsAndResumes pins DELETE semantics on a
// running adaptive job — it cancels via context, the run checkpoints, and a
// resume_from job completes with the composition of an uninterrupted run.
func TestCancelRunningJobCheckpointsAndResumes(t *testing.T) {
	g := newGate()
	e := newEnv(t, service.Options{Workers: 1, TraceSink: g})
	req := service.JobRequest{Workload: testSpec, TauG: testTauG, TauB: testTauB}

	st, _ := e.submit(t, req, http.StatusAccepted)
	<-g.entered
	delResp, err := httpDelete(e.srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", delResp.StatusCode)
	}
	close(g.release)

	fin := e.await(t, st.ID)
	if fin.State != service.StateCanceled {
		t.Fatalf("canceled job finished %s (%s)", fin.State, fin.Error)
	}
	if !fin.Resumable {
		t.Fatal("canceled adaptive job carries no checkpoint")
	}
	state, _, res := e.result(t, st.ID)
	if state != service.StateCanceled || res == nil || !res.Resumable {
		t.Fatalf("canceled result: state %s, result %+v", state, res)
	}

	resumed, _ := e.submit(t, service.JobRequest{
		Workload: testSpec, TauG: testTauG, TauB: testTauB, ResumeFrom: st.ID,
	}, http.StatusAccepted)
	if fin := e.await(t, resumed.ID); fin.State != service.StateDone {
		t.Fatalf("resumed job: %s (%s)", fin.State, fin.Error)
	}
	_, _, resumedRes := e.result(t, resumed.ID)

	fresh, _ := e.submit(t, req, http.StatusAccepted)
	if fin := e.await(t, fresh.ID); fin.State != service.StateDone {
		t.Fatalf("fresh job: %s (%s)", fin.State, fin.Error)
	}
	_, _, freshRes := e.result(t, fresh.ID)
	if resumedRes.Good != freshRes.Good || resumedRes.Bad != freshRes.Bad {
		t.Errorf("resumed run diverged: %d/%d vs fresh %d/%d",
			resumedRes.Good, resumedRes.Bad, freshRes.Good, freshRes.Bad)
	}
}

// TestCancelQueuedJob pins DELETE on a job that never started: it retires
// immediately and its event stream ends empty.
func TestCancelQueuedJob(t *testing.T) {
	g := newGate()
	e := newEnv(t, service.Options{Workers: 1, TraceSink: g})
	req := service.JobRequest{Workload: testSpec, TauG: testTauG, TauB: testTauB}

	blocker, _ := e.submit(t, req, http.StatusAccepted)
	<-g.entered
	queued, _ := e.submit(t, req, http.StatusAccepted)
	resp, err := httpDelete(e.srv.URL + "/v1/jobs/" + queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := e.status(t, queued.ID); st.State != service.StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	if evs := e.events(t, queued.ID); len(evs) != 0 {
		t.Errorf("never-started job streamed %d bytes of events", len(evs))
	}
	close(g.release)
	e.await(t, blocker.ID)
}

// TestDrainFinishesInFlight pins graceful shutdown: with a generous grace
// period every admitted job completes, admission stops, and readiness flips.
func TestDrainFinishesInFlight(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 2})
	req := service.JobRequest{Workload: testSpec, TauG: testTauG, TauB: testTauB}

	var ids []string
	for i := 0; i < 4; i++ {
		st, _ := e.submit(t, req, http.StatusAccepted)
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	e.svc.Drain(ctx)

	for _, id := range ids {
		if st := e.status(t, id); st.State != service.StateDone {
			t.Errorf("job %s drained as %s (%s)", id, st.State, st.Error)
		}
	}
	resp, err := http.Get(e.srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	_, resp2 := e.submit(t, req, http.StatusServiceUnavailable)
	var body struct{ Reason string }
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil || body.Reason != "draining" {
		t.Errorf("post-drain reason = %q (%v)", body.Reason, err)
	}
}

// TestDrainGraceExpiryCancelsWithCheckpoint pins the other drain path: when
// the grace period expires, in-flight adaptive jobs are canceled but keep a
// resumable checkpoint — results are not lost.
func TestDrainGraceExpiryCancelsWithCheckpoint(t *testing.T) {
	g := newGate()
	e := newEnv(t, service.Options{Workers: 1, TraceSink: g})
	st, _ := e.submit(t, service.JobRequest{Workload: testSpec, TauG: testTauG, TauB: testTauB}, http.StatusAccepted)
	<-g.entered

	dctx, dcancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		e.svc.Drain(dctx)
		close(done)
	}()
	dcancel()        // grace expires immediately: cancel what is in flight
	close(g.release) // let the held run observe its canceled context
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}

	fin := e.status(t, st.ID)
	if fin.State != service.StateCanceled {
		t.Fatalf("job after forced drain: %s (%s)", fin.State, fin.Error)
	}
	if !fin.Resumable {
		t.Error("forced-drain cancel lost the checkpoint")
	}
}

// TestRegistrySharesWorkloads pins the amortization contract: jobs naming
// the same workload spec share one Task build.
func TestRegistrySharesWorkloads(t *testing.T) {
	e := newEnv(t, service.Options{})
	req := service.JobRequest{Workload: testSpec, TauG: testTauG, TauB: testTauB}
	a, _ := e.submit(t, req, http.StatusAccepted)
	b, _ := e.submit(t, req, http.StatusAccepted)
	e.await(t, a.ID)
	e.await(t, b.ID)

	if n := e.svc.WorkloadRegistry().Size(); n != 1 {
		t.Errorf("registry holds %d workloads, want 1", n)
	}
	snap := e.svc.Metrics().Snapshot()
	if n := snap.Counters[service.MetricWorkloadBuilds]; n != 1 {
		t.Errorf("workload builds = %d, want 1", n)
	}
	if n := snap.Counters[service.MetricWorkloadReuses]; n < 1 {
		t.Errorf("workload reuses = %d, want >= 1", n)
	}
}

// TestSubmitValidation pins the 400 surface, including the fault-profile
// errors naming the offending key.
func TestSubmitValidation(t *testing.T) {
	e := newEnv(t, service.Options{})
	cases := []struct {
		name string
		req  service.JobRequest
		want string // substring of the error body
	}{
		{"unknown mode", service.JobRequest{Workload: testSpec, Mode: "turbo"}, "unknown mode"},
		{"execute without plan", service.JobRequest{Workload: testSpec, Mode: service.ModeExecute}, "requires a plan"},
		{"bad algorithm", service.JobRequest{Workload: testSpec, Mode: service.ModeExecute,
			Plan: &service.PlanRequest{Algorithm: "XXJN"}}, "unknown algorithm"},
		{"bad fault key", service.JobRequest{Workload: testSpec, Faults: "rat=0.1"}, `unknown profile key "rat"`},
		{"bad fault value", service.JobRequest{Workload: testSpec, Faults: "rate=lots"}, `bad value "lots"`},
		{"resume from unknown job", service.JobRequest{Workload: testSpec, ResumeFrom: "j999999"}, "unknown job"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := e.submit(t, tc.req, http.StatusBadRequest)
			var body struct{ Error string }
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(body.Error, tc.want) {
				t.Errorf("error %q does not mention %q", body.Error, tc.want)
			}
		})
	}
}

// TestMetricsEndpoint spot-checks the daemon's Prometheus exposition after
// a completed job.
func TestMetricsEndpoint(t *testing.T) {
	e := newEnv(t, service.Options{})
	st, _ := e.submit(t, service.JobRequest{Workload: testSpec, TauG: testTauG, TauB: testTauB}, http.StatusAccepted)
	e.await(t, st.ID)

	resp, err := http.Get(e.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	body := strings.Join(lines, "\n")
	for _, want := range []string{
		fmt.Sprintf(`%s{tenant="default"} 1`, service.MetricJobsSubmitted),
		fmt.Sprintf(`%s{state="done"} 1`, service.MetricJobsCompleted),
		service.MetricWorkloadBuilds + " 1",
		fmt.Sprintf(`%s{job="%s"}`, service.MetricJobGood, st.ID),
		"# TYPE " + service.MetricJobWallSecs + " histogram",
		service.MetricJobWallSecs + `_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func httpDelete(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}
