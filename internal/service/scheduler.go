package service

import (
	"container/heap"
	"errors"
	"sync"
)

// Admission errors, mapped to HTTP statuses by the API layer.
var (
	// ErrQueueFull rejects a submission when the queue is at depth → 429.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrTenantQuota rejects a submission over the tenant's concurrency
	// quota (queued + running jobs) → 429.
	ErrTenantQuota = errors.New("service: tenant concurrency quota exceeded")
	// ErrDraining rejects every submission once a drain began → 503.
	ErrDraining = errors.New("service: draining, not admitting jobs")
)

// jobQueue is a FIFO-with-priority heap: higher Priority pops first, equal
// priorities pop in submission (seq) order.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// scheduler is the bounded worker pool behind the service: submissions pass
// admission control into the priority queue, workers drain it, and a drain
// stops admission and (optionally, after a grace period) cancels what is
// still in flight.
type scheduler struct {
	run func(*Job) // executes one job; set by the service

	maxQueue    int
	tenantQuota int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue
	active   map[string]int // queued + running per tenant
	running  int
	draining bool
	idleCh   chan struct{} // closed when draining, queue empty, none running
	idleOnce sync.Once
	wg       sync.WaitGroup
	inFlight map[*Job]struct{}
}

func newScheduler(workers, maxQueue, tenantQuota int, run func(*Job)) *scheduler {
	s := &scheduler{
		run:         run,
		maxQueue:    maxQueue,
		tenantQuota: tenantQuota,
		active:      map[string]int{},
		idleCh:      make(chan struct{}),
		inFlight:    map[*Job]struct{}{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// submit admits the job into the queue or rejects it.
func (s *scheduler) submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return ErrDraining
	case len(s.queue) >= s.maxQueue:
		return ErrQueueFull
	case s.tenantQuota > 0 && s.active[j.Tenant] >= s.tenantQuota:
		return ErrTenantQuota
	}
	s.active[j.Tenant]++
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return nil
}

// forceSubmit enqueues a recovered job, bypassing admission control: the
// job was already admitted (and journaled) before the crash, so re-running
// it is honouring an acceptance, not granting a new one. Recovery runs
// before the service is serving, so draining cannot be set yet.
func (s *scheduler) forceSubmit(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active[j.Tenant]++
	heap.Push(&s.queue, j)
	s.cond.Signal()
}

// queueDepth returns the current number of queued (not yet running) jobs.
func (s *scheduler) queueDepth() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// dequeue removes a still-queued job (cancellation before start). It
// reports whether the job was found in the queue.
func (s *scheduler) dequeue(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == j {
			heap.Remove(&s.queue, i)
			s.release(j)
			return true
		}
	}
	return false
}

// release retires a job from tenant accounting. Callers hold mu.
func (s *scheduler) release(j *Job) {
	if s.active[j.Tenant]--; s.active[j.Tenant] <= 0 {
		delete(s.active, j.Tenant)
	}
	s.checkIdle()
}

// checkIdle closes the idle channel once a drain has fully quiesced.
// Callers hold mu.
func (s *scheduler) checkIdle() {
	if s.draining && len(s.queue) == 0 && s.running == 0 {
		s.idleOnce.Do(func() { close(s.idleCh) })
	}
}

// worker executes queued jobs until a drain empties the queue.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.checkIdle()
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.running++
		s.inFlight[j] = struct{}{}
		s.mu.Unlock()

		s.run(j)

		s.mu.Lock()
		s.running--
		delete(s.inFlight, j)
		s.release(j)
		s.mu.Unlock()
	}
}

// startDrain stops admission and wakes idle workers so they can exit once
// the queue empties. Returns the channel that closes when the scheduler is
// fully quiescent.
func (s *scheduler) startDrain() <-chan struct{} {
	s.mu.Lock()
	s.draining = true
	s.checkIdle()
	s.cond.Broadcast()
	s.mu.Unlock()
	return s.idleCh
}

// cancelInFlight retires every job still queued (via markCanceled) and
// cancels every running job (via cancelRunning — adaptive runs checkpoint
// and return their partial results). Used when a drain's grace period
// expires; the callbacks let the caller tag the cancellations as
// drain-issued before they land.
func (s *scheduler) cancelInFlight(markCanceled, cancelRunning func(*Job)) {
	s.mu.Lock()
	var queued []*Job
	for len(s.queue) > 0 {
		j := heap.Pop(&s.queue).(*Job)
		s.release(j)
		queued = append(queued, j)
	}
	inflight := make([]*Job, 0, len(s.inFlight))
	for j := range s.inFlight {
		inflight = append(inflight, j)
	}
	s.mu.Unlock()
	for _, j := range queued {
		markCanceled(j)
	}
	for _, j := range inflight {
		cancelRunning(j)
	}
}

// wait blocks until every worker has exited (drain must have started).
func (s *scheduler) wait() { s.wg.Wait() }
