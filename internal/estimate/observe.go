package estimate

import (
	"math"

	"joinopt/internal/join"
	"joinopt/internal/model"
)

// FromState builds an observation for side i of a running join execution.
// The IE rates are the training-time characterization at the execution's θ.
func FromState(st *join.State, i, numDocs int, tp, fp, badInGoodPrior float64) Observation {
	return Observation{
		D:              numDocs,
		DocsProcessed:  st.DocsProcessed[i],
		YieldDocs:      st.YieldDocs[i],
		ValueCounts:    st.ValueCounts(i),
		EmissionHist:   append([]int(nil), st.EmissionHist[i]...),
		TP:             tp,
		FP:             fp,
		BadInGoodPrior: badInGoodPrior,
	}
}

// EstimateOverlaps numerically derives the join-specific overlap
// cardinalities (Agg, Agb, Abg, Abb) from two sides' observations and their
// fitted parameters (§VI): the observed value-set overlap is scaled up by
// the per-class observation probabilities, and the total is split across
// classes under a class-independence assumption using the estimated
// good/bad value shares.
func EstimateOverlaps(counts1, counts2 map[string]int, e1, e2 *Estimated) model.Overlaps {
	obsOverlap := 0
	for v := range counts1 {
		if _, ok := counts2[v]; ok {
			obsOverlap++
		}
	}
	share := func(e *Estimated) (sg, sb float64) {
		total := float64(e.Params.Ag + e.Params.Ab)
		if total == 0 {
			return 1, 0
		}
		return float64(e.Params.Ag) / total, float64(e.Params.Ab) / total
	}
	sg1, sb1 := share(e1)
	sg2, sb2 := share(e2)
	// Expected observed overlap per true overlapping value.
	pObs := sg1*sg2*e1.PobsGood*e2.PobsGood +
		sg1*sb2*e1.PobsGood*e2.PobsBad +
		sb1*sg2*e1.PobsBad*e2.PobsGood +
		sb1*sb2*e1.PobsBad*e2.PobsBad
	maxTotal := math.Min(float64(e1.Params.Ag+e1.Params.Ab), float64(e2.Params.Ag+e2.Params.Ab))
	var total float64
	switch {
	case pObs <= 1e-9:
		total = 0
	case obsOverlap == 0:
		// Nothing shared observed yet — in a small window of a joint
		// extraction task this is common, not evidence of a disjoint value
		// space. Use a weak prior: a quarter of the smaller value
		// population overlaps, capped by what zero observations allow
		// (roughly 1/pObs before an overlap would likely have been seen).
		total = math.Min(0.25*maxTotal, 1/pObs)
	default:
		total = float64(obsOverlap) / pObs
	}
	if total > maxTotal {
		total = maxTotal
	}
	round := func(x float64) int { return int(math.Round(x)) }
	return model.Overlaps{
		Agg: round(total * sg1 * sg2),
		Agb: round(total * sg1 * sb2),
		Abg: round(total * sb1 * sg2),
		Abb: round(total * sb1 * sb2),
	}
}

// PairSplit estimates, without any labels, the good/bad composition of the
// current join output — the "estimated # good tuples in Rj" that the join
// algorithms' stopping conditions consult (Figures 3, 5, 7 of the paper).
// For each joined value, the fitted mixtures give the posterior probability
// that its occurrences on each side are good; a pair is good only when both
// sides are.
func PairSplit(obs1, obs2 Observation, e1, e2 *Estimated) (good, bad float64) {
	post1 := posteriorGood(obs1, e1)
	post2 := posteriorGood(obs2, e2)
	for v, c1 := range obs1.ValueCounts {
		c2, ok := obs2.ValueCounts[v]
		if !ok {
			continue
		}
		pairs := float64(c1 * c2)
		pg := post1(c1) * post2(c2)
		good += pairs * pg
		bad += pairs * (1 - pg)
	}
	return good, bad
}

// posteriorGood returns P(value is good | observed count k) under the
// fitted mixture at the observation's coverage.
func posteriorGood(obs Observation, e *Estimated) func(k int) float64 {
	frac := float64(obs.DocsProcessed) / float64(obs.D)
	cg := obs.TP * frac
	cb := obs.FP * frac
	if cg >= 1 {
		cg = 1 - 1e-9
	}
	if cb >= 1 {
		cb = 1 - 1e-9
	}
	pkG, _ := truncatedObsPMF(e.AlphaGood, cg)
	pkB, _ := truncatedObsPMF(e.AlphaBad, cb)
	w := e.GoodShare
	return func(k int) float64 {
		if k > maxFreq {
			k = maxFreq
		}
		num := w * pk(pkG, k)
		den := num + (1-w)*pk(pkB, k)
		if den <= 0 {
			return w
		}
		return num / den
	}
}
