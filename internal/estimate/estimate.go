// Package estimate implements the on-the-fly parameter estimation of §VI:
// maximum-likelihood inference of the database-specific model parameters
// (|Dg|, |Db|, |Ag|, |Ab|, and the power-law value-frequency exponents) from
// what a running join execution has observed — the label-free occurrence
// counts s(a) of the extracted values and the per-document emission
// histogram. No tuple verification is used: the likelihood is a mixture over
// the good and bad value populations and the estimator derives a
// probabilistic split, exactly as the paper prescribes.
//
// The retrieval-strategy parameters (classifier rates, query statistics) and
// the IE-system rates tp(θ)/fp(θ) are characterized offline on training
// data; the estimator takes them as known inputs.
package estimate

import (
	"fmt"
	"math"

	"joinopt/internal/model"
	"joinopt/internal/stat"
)

// Observation is what one side of a running execution has seen so far. The
// estimator assumes scan-style sampling over the observation window: each
// database document had (roughly) equal probability DocsProcessed/D of being
// processed. The optimizer therefore runs its estimation window with a scan
// prefix.
type Observation struct {
	D             int            // |D|, known
	DocsProcessed int            // documents processed so far
	YieldDocs     int            // processed documents emitting ≥1 tuple
	ValueCounts   map[string]int // s(a): observed occurrences per value
	EmissionHist  []int          // EmissionHist[k] = processed docs emitting k tuples

	TP, FP float64 // IE-system rates at the execution's θ (known)

	// BadInGoodPrior is the assumed fraction of bad occurrences hosted in
	// good documents (not identifiable from unlabeled counts; the prior is
	// propagated into the estimated parameters).
	BadInGoodPrior float64

	// GoodSharePrior regularizes the mixture weight: with similar
	// observation coverages for good and bad values the split is weakly
	// identified, so a weak Beta-style prior (strength GoodShareWeight
	// pseudo-values) pulls the share toward this mode. Zero selects the
	// default prior (0.62, weight 0.15·n).
	GoodSharePrior  float64
	GoodShareWeight float64
}

// maxFreq caps the modeled frequency support.
const maxFreq = 30

// Estimated bundles the inferred parameters with the fitted mixture, so the
// caller can inspect the probabilistic good/bad split.
type Estimated struct {
	Params *model.RelationParams

	AlphaGood float64 // fitted power-law exponent of good value frequencies
	AlphaBad  float64
	GoodShare float64 // posterior share of observed values that are good
	LogLik    float64

	// PobsGood/PobsBad are the fitted probabilities that a good/bad value
	// is observed at all in the window; the overlap estimator reuses them.
	PobsGood float64
	PobsBad  float64
}

// Estimate infers the database-specific parameters from an observation. It
// returns an error when the observation is too thin to fit (fewer than 10
// observed values or no processed documents).
func Estimate(obs Observation) (*Estimated, error) {
	if obs.D <= 0 || obs.DocsProcessed <= 0 {
		return nil, fmt.Errorf("estimate: empty observation window")
	}
	if len(obs.ValueCounts) < 10 {
		return nil, fmt.Errorf("estimate: only %d observed values; need at least 10", len(obs.ValueCounts))
	}
	if obs.TP <= 0 {
		return nil, fmt.Errorf("estimate: tp must be positive")
	}

	// Per-occurrence observation coverage under scan sampling: an
	// occurrence is seen iff its document was processed (Dr/D) and the IE
	// system emitted it (tp or fp).
	frac := float64(obs.DocsProcessed) / float64(obs.D)
	cg := obs.TP * frac
	cb := obs.FP * frac
	if cg >= 1 {
		cg = 1 - 1e-9
	}
	if cb >= 1 {
		cb = 1 - 1e-9
	}

	hist := countHist(obs.ValueCounts)

	// Grid MLE over (alpha, goodShare) of the truncated mixture likelihood
	// of the observed occurrence histogram. The bad exponent is tied to the
	// good one with a fixed offset (bad value frequencies are slightly
	// steeper), and a weak Beta-style prior regularizes the mixture weight:
	// with similar coverages cg ≈ cb the weight is only weakly identified
	// by the data.
	wMode := obs.GoodSharePrior
	if wMode <= 0 {
		wMode = 0.62
	}
	wWeight := obs.GoodShareWeight
	if wWeight <= 0 {
		wWeight = 0.15 * float64(len(obs.ValueCounts))
	}
	best := &Estimated{LogLik: math.Inf(-1)}
	var bestPobsG, bestPobsB float64
	for _, ag := range alphaGrid() {
		pkG, pobsG := truncatedObsPMF(ag, cg)
		pkB, pobsB := truncatedObsPMF(ag+badAlphaOffset, cb)
		for w := 0.20; w <= 0.951; w += 0.05 {
			ll := wWeight * (wMode*math.Log(w) + (1-wMode)*math.Log(1-w))
			for k := 1; k < len(hist); k++ {
				n := hist[k]
				if n == 0 {
					continue
				}
				p := w*pk(pkG, k) + (1-w)*pk(pkB, k)
				if p <= 0 {
					p = 1e-12
				}
				ll += float64(n) * math.Log(p)
			}
			if ll > best.LogLik {
				best.LogLik = ll
				best.AlphaGood, best.AlphaBad, best.GoodShare = ag, ag+badAlphaOffset, w
				bestPobsG, bestPobsB = pobsG, pobsB
			}
		}
	}

	nObs := float64(len(obs.ValueCounts))
	if obs.FP <= 0 {
		// With fp = 0 no bad value is ever observed; everything seen is
		// good.
		best.GoodShare = 1
	}
	best.PobsGood, best.PobsBad = bestPobsG, bestPobsB
	agCount := nObs * best.GoodShare / math.Max(bestPobsG, 1e-9)
	abCount := nObs * (1 - best.GoodShare) / math.Max(bestPobsB, 1e-9)

	plG := stat.MustPowerLaw(best.AlphaGood, maxFreq)
	plB := stat.MustPowerLaw(best.AlphaBad, maxFreq)

	p := &model.RelationParams{
		D:             obs.D,
		Ag:            int(math.Max(math.Round(agCount), 1)),
		Ab:            int(math.Max(math.Round(abCount), 0)),
		GoodFreq:      plG.PMFSlice(),
		BadFreq:       plB.PMFSlice(),
		TP:            obs.TP,
		FP:            obs.FP,
		BadInGoodFrac: obs.BadInGoodPrior,
	}

	// Document partition: search (Dg, Db) matching the observed yield rate
	// given the estimated occurrence totals. A document with m occurrences
	// yields with probability 1 − (1 − rate)^m; mention densities follow
	// from the totals and the candidate partition.
	totGood := float64(p.Ag) * plG.Mean()
	totBad := float64(p.Ab) * plB.Mean()
	p.Dg, p.Db = fitPartition(obs, totGood, totBad)
	if p.Dg < 1 {
		p.Dg = 1
	}
	if p.Dg+p.Db > obs.D {
		p.Db = obs.D - p.Dg
	}

	p.ValuesPerDoc = estimateValuesPerDoc(obs, p)
	best.Params = p
	return best, nil
}

// badAlphaOffset ties the bad-value exponent to the good one; deceptive
// mentions of a value are rarer than correct ones, so their frequency law is
// slightly steeper.
const badAlphaOffset = 0.2

// alphaGrid is the exponent search grid of the MLE.
func alphaGrid() []float64 {
	var g []float64
	for a := 1.2; a <= 3.21; a += 0.2 {
		g = append(g, a)
	}
	return g
}

// truncatedObsPMF returns the PMF of observed counts k ≥ 0 for a value with
// power-law(alpha) frequency observed at per-occurrence coverage c, plus the
// probability of being observed at all (k ≥ 1).
func truncatedObsPMF(alpha, c float64) ([]float64, float64) {
	pl := stat.MustPowerLaw(alpha, maxFreq)
	pmf := make([]float64, maxFreq+1)
	for g := 1; g <= maxFreq; g++ {
		pg := pl.PMF(g)
		if pg == 0 {
			continue
		}
		for k := 0; k <= g; k++ {
			pmf[k] += pg * stat.BinomialPMF(g, k, c)
		}
	}
	pobs := 1 - pmf[0]
	if pobs <= 0 {
		return pmf, 0
	}
	// Condition on observation.
	for k := 1; k <= maxFreq; k++ {
		pmf[k] /= pobs
	}
	pmf[0] = 0
	return pmf, pobs
}

func pk(pmf []float64, k int) float64 {
	if k < 0 || k >= len(pmf) {
		return 0
	}
	return pmf[k]
}

// countHist converts value counts to a histogram hist[k] = #values with
// count k, capped at maxFreq.
func countHist(counts map[string]int) []int {
	hist := make([]int, maxFreq+1)
	for _, c := range counts {
		if c > maxFreq {
			c = maxFreq
		}
		if c >= 1 {
			hist[c]++
		}
	}
	return hist
}

// fitPartition grid-searches the document partition (Dg, Db) matching two
// observed moments of the emission process: the yield rate (documents with
// at least one emitted tuple) and the multi-emission rate (documents with at
// least two). Under Poisson thinning a good document emits Poisson(tp·λg)
// tuples with λg the good-document mention density, so the second moment
// pins down the density — and with the estimated occurrence totals fixed,
// the density pins down the partition.
func fitPartition(obs Observation, totGood, totBad float64) (dg, db int) {
	frac := float64(obs.DocsProcessed) / float64(obs.D)
	observedYield := float64(obs.YieldDocs)
	var observedTwoPlus float64
	for k := 2; k < len(obs.EmissionHist); k++ {
		observedTwoPlus += float64(obs.EmissionHist[k])
	}
	bestErr := math.Inf(1)
	phi := obs.BadInGoodPrior

	atLeast1 := func(mu float64) float64 { return 1 - math.Exp(-mu) }
	atLeast2 := func(mu float64) float64 { return 1 - math.Exp(-mu)*(1+mu) }

	for dgf := 0.02; dgf <= 0.40; dgf += 0.01 {
		cDg := float64(obs.D) * dgf
		lamG := (totGood + phi*totBad) / cDg
		for dbf := 0.0; dbf <= 0.30; dbf += 0.01 {
			cDb := float64(obs.D) * dbf
			var lamB float64
			if cDb > 0 {
				lamB = (1 - phi) * totBad / cDb
			} else if totBad > 0 && phi < 1 {
				continue // bad occurrences need bad docs
			}
			muG, muB := obs.TP*lamG, obs.FP*lamB
			yield := frac * cDg * atLeast1(muG)
			twoPlus := frac * cDg * atLeast2(muG)
			if cDb > 0 {
				yield += frac * cDb * atLeast1(muB)
				twoPlus += frac * cDb * atLeast2(muB)
			}
			err := math.Abs(yield-observedYield) + math.Abs(twoPlus-observedTwoPlus)
			// Prefer mention densities in the plausible band.
			if lamG < 0.5 || lamG > 6 {
				err *= 2
			}
			if cDb > 0 && (lamB < 0.3 || lamB > 6) {
				err *= 1.5
			}
			if err < bestErr {
				bestErr = err
				dg, db = int(math.Round(cDg)), int(math.Round(cDb))
			}
		}
	}
	return dg, db
}

// estimateValuesPerDoc converts the observed emission histogram into the
// zig-zag pdk distribution over query-reachable (mentioned) documents: the
// observed k ≥ 1 shares are kept and the zero mass is the mentioned
// documents that emitted nothing.
func estimateValuesPerDoc(obs Observation, p *model.RelationParams) []float64 {
	if len(obs.EmissionHist) == 0 || obs.DocsProcessed == 0 {
		return []float64{0.5, 0.5}
	}
	frac := float64(obs.DocsProcessed) / float64(obs.D)
	mentioned := frac * float64(p.Dg+p.Db)
	out := make([]float64, len(obs.EmissionHist))
	var emitting float64
	for k := 1; k < len(obs.EmissionHist); k++ {
		out[k] = float64(obs.EmissionHist[k])
		emitting += out[k]
	}
	zero := mentioned - emitting
	if zero < 0 {
		zero = 0
	}
	out[0] = zero
	total := zero + emitting
	if total <= 0 {
		return []float64{0.5, 0.5}
	}
	for k := range out {
		out[k] /= total
	}
	return out
}
