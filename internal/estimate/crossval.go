package estimate

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Cross-validation robustness checking (§VI: the optimizer proceeds "while
// checking for robustness using cross-validation"): the observed values are
// split deterministically into two halves, the MLE runs on each half, and
// the divergence of the fitted parameters measures how trustworthy the
// estimates are. A small window with unstable estimates diverges; the
// adaptive optimizer extends its pilot until the fit stabilizes.

// CrossValidate estimates on two deterministic halves of the observation's
// value set and returns a divergence score in [0, ∞): 0 means the halves
// agree perfectly; values above ~0.4 indicate an unreliable fit. The score
// averages the relative disagreement of the fitted exponent, the mixture
// weight, and the (half-)population sizes.
func CrossValidate(obs Observation) (float64, error) {
	half := [2]Observation{obs, obs}
	half[0].ValueCounts = map[string]int{}
	half[1].ValueCounts = map[string]int{}
	for v, c := range obs.ValueCounts {
		h := fnv.New32a()
		h.Write([]byte(v))
		half[h.Sum32()&1].ValueCounts[v] = c
	}
	var ests [2]*Estimated
	for i := 0; i < 2; i++ {
		e, err := Estimate(half[i])
		if err != nil {
			return 0, fmt.Errorf("estimate: cross-validation half %d: %w", i+1, err)
		}
		ests[i] = e
	}
	relDiff := func(a, b float64) float64 {
		m := (math.Abs(a) + math.Abs(b)) / 2
		if m == 0 {
			return 0
		}
		return math.Abs(a-b) / m
	}
	d := relDiff(ests[0].AlphaGood, ests[1].AlphaGood)
	d += relDiff(ests[0].GoodShare, ests[1].GoodShare)
	d += relDiff(float64(ests[0].Params.Ag+ests[0].Params.Ab), float64(ests[1].Params.Ag+ests[1].Params.Ab))
	return d / 3, nil
}
