package estimate

import (
	"math"
	"testing"

	"joinopt/internal/stat"
)

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(Observation{}); err == nil {
		t.Error("expected error for empty observation")
	}
	few := Observation{D: 100, DocsProcessed: 10, TP: 0.8, ValueCounts: map[string]int{"a": 1}}
	if _, err := Estimate(few); err == nil {
		t.Error("expected error for too few values")
	}
	vc := map[string]int{}
	for i := 0; i < 20; i++ {
		vc[string(rune('a'+i))] = 1 + i%3
	}
	noTP := Observation{D: 100, DocsProcessed: 10, TP: 0, ValueCounts: vc}
	if _, err := Estimate(noTP); err == nil {
		t.Error("expected error for tp=0")
	}
}

func TestEstimateZeroFPMeansAllGood(t *testing.T) {
	vc := map[string]int{}
	r := stat.NewRNG(4)
	pl := stat.MustPowerLaw(2.0, 10)
	for i := 0; i < 80; i++ {
		vc[string(rune('a'+i%26))+string(rune('a'+i/26))] = pl.Sample(r)
	}
	obs := Observation{
		D: 1000, DocsProcessed: 400, YieldDocs: 90,
		ValueCounts: vc, EmissionHist: []int{310, 60, 30},
		TP: 0.8, FP: 0, BadInGoodPrior: 0.3,
	}
	est, err := Estimate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if est.GoodShare != 1 {
		t.Errorf("fp=0 should force GoodShare=1, got %v", est.GoodShare)
	}
}

func TestTruncatedObsPMFNormalized(t *testing.T) {
	for _, c := range []float64{0.1, 0.5, 0.9} {
		pmf, pobs := truncatedObsPMF(2.0, c)
		var sum float64
		for k := 1; k < len(pmf); k++ {
			sum += pmf[k]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("c=%v: conditional PMF sums to %v", c, sum)
		}
		if pobs <= 0 || pobs > 1 {
			t.Errorf("c=%v: pobs %v out of range", c, pobs)
		}
	}
}

func TestCountHistCaps(t *testing.T) {
	h := countHist(map[string]int{"a": 1, "b": 1, "c": 100})
	if h[1] != 2 {
		t.Errorf("h[1] = %d", h[1])
	}
	if h[maxFreq] != 1 {
		t.Error("counts beyond maxFreq must be capped into the last bin")
	}
}
