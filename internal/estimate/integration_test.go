package estimate_test

import (
	"math"
	"sync"
	"testing"

	"joinopt/internal/estimate"
	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var (
	once  sync.Once
	wl    *workload.Workload
	wlErr error
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	once.Do(func() {
		wl, wlErr = workload.HQJoinEX(workload.Params{NumDocs: 1500, Seed: 3})
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func observeAt(t *testing.T, w *workload.Workload, pct int) (estimate.Observation, estimate.Observation, *join.State) {
	t.Helper()
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.TrueParams(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := w.NewStrategy(0, retrieval.SC)
	x2, _ := w.NewStrategy(1, retrieval.SC)
	e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	dr := w.DB[0].Size() * pct / 100
	st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
	if err != nil {
		t.Fatal(err)
	}
	o1 := estimate.FromState(st, 0, w.DB[0].Size(), p1.TP, p1.FP, 0.3)
	o2 := estimate.FromState(st, 1, w.DB[1].Size(), p2.TP, p2.FP, 0.3)
	return o1, o2, st
}

func checkRatio(t *testing.T, name string, est, truth float64, lo, hi float64) {
	t.Helper()
	if truth == 0 {
		t.Fatalf("%s: zero truth", name)
	}
	r := est / truth
	if r < lo || r > hi {
		t.Errorf("%s: estimated %.0f vs true %.0f (ratio %.2f outside [%.2f, %.2f])", name, est, truth, r, lo, hi)
	}
}

func TestEstimateRecoversValuePopulations(t *testing.T) {
	w := testWorkload(t)
	for _, pct := range []int{20, 40} {
		o1, _, _ := observeAt(t, w, pct)
		est, err := estimate.Estimate(o1)
		if err != nil {
			t.Fatal(err)
		}
		stats := w.DB[0].Stats("HQ")
		checkRatio(t, "Ag", float64(est.Params.Ag), float64(stats.GoodValues()), 0.5, 2.0)
		total := float64(est.Params.Ag + est.Params.Ab)
		trueTotal := float64(stats.GoodValues() + stats.BadValues())
		checkRatio(t, "Ag+Ab", total, trueTotal, 0.6, 1.8)
		if est.GoodShare <= 0.2 || est.GoodShare >= 0.96 {
			t.Errorf("good share %v degenerate", est.GoodShare)
		}
		if est.AlphaGood < 1.2 || est.AlphaGood > 3.3 {
			t.Errorf("alpha %v outside grid", est.AlphaGood)
		}
	}
}

func TestEstimateRecoversDocumentPartition(t *testing.T) {
	w := testWorkload(t)
	o1, o2, _ := observeAt(t, w, 40)
	for i, o := range []estimate.Observation{o1, o2} {
		est, err := estimate.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		stats := w.DB[i].Stats(w.Task[i])
		checkRatio(t, "Dg", float64(est.Params.Dg), float64(stats.NumGood), 0.4, 2.5)
		if est.Params.Db > 0 {
			// The yield surface is nearly flat in Db (bad documents are few
			// and emit rarely), so the band is wide.
			checkRatio(t, "Db", float64(est.Params.Db), float64(stats.NumBad), 0.1, 4.0)
		}
		if est.Params.Dg+est.Params.Db > o.D {
			t.Error("partition exceeds corpus")
		}
	}
}

func TestEstimateOverlapsScale(t *testing.T) {
	w := testWorkload(t)
	o1, o2, _ := observeAt(t, w, 40)
	e1, err := estimate.Estimate(o1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := estimate.Estimate(o2)
	if err != nil {
		t.Fatal(err)
	}
	ov := estimate.EstimateOverlaps(o1.ValueCounts, o2.ValueCounts, e1, e2)
	trueOv := w.TrueOverlaps()
	checkRatio(t, "Agg", float64(ov.Agg), float64(trueOv.Agg), 0.4, 2.0)
	estTotal := float64(ov.Agg + ov.Agb + ov.Abg + ov.Abb)
	trueTotal := float64(trueOv.Agg + trueOv.Agb + trueOv.Abg + trueOv.Abb)
	checkRatio(t, "total overlap", estTotal, trueTotal, 0.4, 2.0)
}

func TestEstimatedParamsUsableByModels(t *testing.T) {
	w := testWorkload(t)
	o1, o2, _ := observeAt(t, w, 40)
	e1, err := estimate.Estimate(o1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := estimate.Estimate(o2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Params.Validate(); err != nil {
		t.Fatal(err)
	}
	ov := estimate.EstimateOverlaps(o1.ValueCounts, o2.ValueCounts, e1, e2)
	m := &model.IDJNModel{P1: e1.Params, P2: e2.Params, X1: retrieval.SC, X2: retrieval.SC, Ov: ov}
	q, err := m.Estimate(o1.D, o2.D)
	if err != nil {
		t.Fatal(err)
	}
	if q.Good <= 0 || math.IsNaN(q.Good) || math.IsNaN(q.Bad) {
		t.Errorf("degenerate quality estimate %+v", q)
	}
}

func TestFromStateLabelFree(t *testing.T) {
	w := testWorkload(t)
	o1, _, st := observeAt(t, w, 20)
	if o1.DocsProcessed != st.DocsProcessed[0] || o1.YieldDocs != st.YieldDocs[0] {
		t.Error("observation counters mismatch state")
	}
	// Value counts must equal good+bad occurrence totals.
	for v, c := range o1.ValueCounts {
		if c != st.R1.GoodOcc(v)+st.R1.BadOcc(v) {
			t.Fatalf("value %q count %d mismatch", v, c)
		}
	}
}

func TestPairSplitTracksActualComposition(t *testing.T) {
	w := testWorkload(t)
	o1, o2, st := observeAt(t, w, 40)
	e1, err := estimate.Estimate(o1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := estimate.Estimate(o2)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := estimate.PairSplit(o1, o2, e1, e2)
	total := good + bad
	actualTotal := float64(st.GoodPairs + st.BadPairs)
	if math.Abs(total-actualTotal) > 1e-6 {
		t.Fatalf("pair split total %.1f != observable total %.1f", total, actualTotal)
	}
	// The label-free split should land within a factor 2 of the true
	// composition.
	checkRatio(t, "split good", good, float64(st.GoodPairs), 0.5, 2.0)
	checkRatio(t, "split bad", bad, float64(st.BadPairs), 0.5, 2.0)
}

func TestPairSplitEmptyIntersection(t *testing.T) {
	o := estimate.Observation{
		D: 100, DocsProcessed: 50, TP: 0.8, FP: 0.4,
		ValueCounts: map[string]int{"a": 1},
	}
	o2 := o
	o2.ValueCounts = map[string]int{"b": 1}
	// Build minimal estimates via the public constructor on a richer
	// observation, then split the disjoint pair.
	rich := o
	rich.ValueCounts = map[string]int{}
	for i := 0; i < 20; i++ {
		rich.ValueCounts[string(rune('a'+i))] = 1 + i%3
	}
	e, err := estimate.Estimate(rich)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := estimate.PairSplit(o, o2, e, e)
	if good != 0 || bad != 0 {
		t.Errorf("disjoint value sets must produce no pairs: %v/%v", good, bad)
	}
}

func TestCrossValidateStabilizesWithWindow(t *testing.T) {
	w := testWorkload(t)
	small, _, _ := observeAt(t, w, 10)
	large, _, _ := observeAt(t, w, 60)
	dSmall, err := estimate.CrossValidate(small)
	if err != nil {
		t.Fatal(err)
	}
	dLarge, err := estimate.CrossValidate(large)
	if err != nil {
		t.Fatal(err)
	}
	if dSmall < 0 || dLarge < 0 {
		t.Fatalf("negative divergence: %v %v", dSmall, dLarge)
	}
	// A 6x larger window should not cross-validate markedly worse.
	if dLarge > dSmall+0.3 {
		t.Errorf("divergence grew with window: %.2f -> %.2f", dSmall, dLarge)
	}
	if dLarge > 1.0 {
		t.Errorf("large window divergence %.2f implausibly high", dLarge)
	}
}

func TestCrossValidateThinObservation(t *testing.T) {
	obs := estimate.Observation{
		D: 100, DocsProcessed: 10, TP: 0.8, FP: 0.4,
		ValueCounts: map[string]int{"a": 1, "b": 2, "c": 1, "d": 1},
	}
	if _, err := estimate.CrossValidate(obs); err == nil {
		t.Error("expected error when halves are too thin to fit")
	}
}
