// Package classifier implements the document classifiers behind the
// Filtered Scan retrieval strategy (§III-B): a rule-induction classifier in
// the spirit of Ripper (the paper's choice) and a naive-Bayes alternative.
// Both are trained on a labelled split and characterized — exactly as the
// paper's models require — by their true-positive rate Ctp (fraction of good
// documents accepted) and false-positive rate Cfp (fraction of non-good
// documents accepted).
package classifier

import (
	"fmt"
	"math"
	"sort"

	"joinopt/internal/corpus"
	"joinopt/internal/index"
)

// Classifier decides whether a document is a promising candidate for
// containing good tuples of one extraction task.
type Classifier interface {
	// Classify reports whether the document should be processed.
	Classify(text string) bool
}

// Fallible is a classifier whose decisions can fail — a remote model behind
// a flaky service. A failed call makes no decision; the caller retries or
// gives up. cost is extra cost-model time incurred by the call beyond the
// per-document filtering charge.
type Fallible interface {
	Classifier
	ClassifyFallible(text string) (accept bool, cost float64, err error)
}

// Measure computes Ctp and Cfp of a classifier against a database's true
// document classes for a task: Ctp is the acceptance rate on good documents
// and Cfp the acceptance rate on the rest.
func Measure(c Classifier, db *corpus.DB, task string) (ctp, cfp float64, err error) {
	stats := db.Stats(task)
	if stats == nil {
		return 0, 0, fmt.Errorf("classifier: database %s does not host task %s", db.Name, task)
	}
	var accGood, good, accRest, rest int
	for i, doc := range db.Docs {
		accepted := c.Classify(doc.Text)
		if stats.Class[i] == corpus.Good {
			good++
			if accepted {
				accGood++
			}
		} else {
			rest++
			if accepted {
				accRest++
			}
		}
	}
	if good > 0 {
		ctp = float64(accGood) / float64(good)
	}
	if rest > 0 {
		cfp = float64(accRest) / float64(rest)
	}
	return ctp, cfp, nil
}

// labelledDocs extracts (tokenized document, isGood) pairs for training.
func labelledDocs(db *corpus.DB, task string) ([]map[string]bool, []bool, error) {
	stats := db.Stats(task)
	if stats == nil {
		return nil, nil, fmt.Errorf("classifier: training database %s does not host task %s", db.Name, task)
	}
	feats := make([]map[string]bool, len(db.Docs))
	labels := make([]bool, len(db.Docs))
	for i, doc := range db.Docs {
		set := map[string]bool{}
		for _, tok := range index.Tokenize(doc.Text) {
			set[tok] = true
		}
		feats[i] = set
		labels[i] = stats.Class[i] == corpus.Good
	}
	return feats, labels, nil
}

// Bayes is a naive-Bayes document classifier over binary term features.
type Bayes struct {
	logPriorGood float64
	logPriorRest float64
	// logLik[term] = [log P(term|good), log P(term|rest)]; absent terms use
	// the default absence likelihoods.
	terms      map[string][2]float64
	absentGood float64
	absentRest float64
	numTerms   int
	threshold  float64
}

// TrainBayes fits a naive-Bayes classifier for task on db. threshold shifts
// the decision boundary (0 = maximum a posteriori); positive values trade
// Ctp for lower Cfp.
func TrainBayes(db *corpus.DB, task string, threshold float64) (*Bayes, error) {
	feats, labels, err := labelledDocs(db, task)
	if err != nil {
		return nil, err
	}
	var nGood, nRest int
	countGood := map[string]int{}
	countRest := map[string]int{}
	for i, set := range feats {
		if labels[i] {
			nGood++
			for t := range set {
				countGood[t]++
			}
		} else {
			nRest++
			for t := range set {
				countRest[t]++
			}
		}
	}
	if nGood == 0 || nRest == 0 {
		return nil, fmt.Errorf("classifier: training needs both good and non-good documents")
	}
	b := &Bayes{
		logPriorGood: math.Log(float64(nGood) / float64(nGood+nRest)),
		logPriorRest: math.Log(float64(nRest) / float64(nGood+nRest)),
		terms:        map[string][2]float64{},
		threshold:    threshold,
	}
	seen := map[string]bool{}
	for t := range countGood {
		seen[t] = true
	}
	for t := range countRest {
		seen[t] = true
	}
	vocab := make([]string, 0, len(seen))
	for t := range seen {
		vocab = append(vocab, t)
	}
	sort.Strings(vocab) // deterministic float accumulation order
	for _, t := range vocab {
		pg := (float64(countGood[t]) + 1) / (float64(nGood) + 2)
		pr := (float64(countRest[t]) + 1) / (float64(nRest) + 2)
		b.terms[t] = [2]float64{math.Log(pg) - math.Log(1-pg), math.Log(pr) - math.Log(1-pr)}
	}
	// Base score assuming every term absent; per-present-term adjustments
	// are stored relative to absence, so classification is O(|doc|).
	for _, t := range vocab {
		pg := (float64(countGood[t]) + 1) / (float64(nGood) + 2)
		pr := (float64(countRest[t]) + 1) / (float64(nRest) + 2)
		b.absentGood += math.Log(1 - pg)
		b.absentRest += math.Log(1 - pr)
	}
	b.numTerms = len(vocab)
	return b, nil
}

// Classify implements Classifier.
func (b *Bayes) Classify(text string) bool {
	scoreGood := b.logPriorGood + b.absentGood
	scoreRest := b.logPriorRest + b.absentRest
	seen := map[string]bool{}
	for _, tok := range index.Tokenize(text) {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		if adj, ok := b.terms[tok]; ok {
			scoreGood += adj[0]
			scoreRest += adj[1]
		}
	}
	return scoreGood-scoreRest > b.threshold
}

// Rule is a conjunctive term rule: a document fires the rule when it
// contains every term.
type Rule struct {
	Terms []string
}

// Rules is a rule-induction classifier: an ordered rule set accepting any
// document that fires at least one rule, learned by greedy set covering as
// in Ripper.
type Rules struct {
	Set []Rule
}

// TrainRules learns up to maxRules rules of at most maxTerms conjuncts for
// task on db. Each rule greedily maximizes covered positives while keeping
// precision at least minPrecision on the remaining training documents.
func TrainRules(db *corpus.DB, task string, maxRules, maxTerms int, minPrecision float64) (*Rules, error) {
	feats, labels, err := labelledDocs(db, task)
	if err != nil {
		return nil, err
	}
	if maxRules <= 0 || maxTerms <= 0 {
		return nil, fmt.Errorf("classifier: invalid rule shape %dx%d", maxRules, maxTerms)
	}
	remaining := map[int]bool{} // uncovered positive docs
	for i, l := range labels {
		if l {
			remaining[i] = true
		}
	}
	if len(remaining) == 0 {
		return nil, fmt.Errorf("classifier: no positive training documents")
	}
	out := &Rules{}
	for len(out.Set) < maxRules && len(remaining) > 0 {
		rule, covered := growRule(feats, labels, remaining, maxTerms, minPrecision)
		if rule == nil {
			break
		}
		out.Set = append(out.Set, *rule)
		for _, i := range covered {
			delete(remaining, i)
		}
	}
	if len(out.Set) == 0 {
		return nil, fmt.Errorf("classifier: rule induction found no rule meeting precision %.2f", minPrecision)
	}
	return out, nil
}

// growRule greedily builds one conjunctive rule maximizing coverage of
// remaining positives subject to the precision floor.
func growRule(feats []map[string]bool, labels []bool, remaining map[int]bool, maxTerms int, minPrecision float64) (*Rule, []int) {
	// Candidate terms: those appearing in remaining positives.
	candSet := map[string]bool{}
	for i := range remaining {
		for t := range feats[i] {
			candSet[t] = true
		}
	}
	cands := make([]string, 0, len(candSet))
	for t := range candSet {
		cands = append(cands, t)
	}
	sort.Strings(cands)

	var rule Rule
	matches := make([]int, 0, len(feats)) // docs matching the rule so far
	for i := range feats {
		matches = append(matches, i)
	}
	for len(rule.Terms) < maxTerms {
		bestTerm, bestScore := "", -1.0
		var bestMatches []int
		for _, t := range cands {
			var m []int
			var pos, rem int
			for _, i := range matches {
				if !feats[i][t] {
					continue
				}
				m = append(m, i)
				if labels[i] {
					pos++
				}
				if remaining[i] {
					rem++
				}
			}
			if len(m) == 0 || rem == 0 {
				continue
			}
			prec := float64(pos) / float64(len(m))
			score := prec * float64(rem)
			if score > bestScore {
				bestTerm, bestScore, bestMatches = t, score, m
			}
		}
		if bestTerm == "" {
			break
		}
		rule.Terms = append(rule.Terms, bestTerm)
		matches = bestMatches
		// Stop early once the precision floor is met.
		pos := 0
		for _, i := range matches {
			if labels[i] {
				pos++
			}
		}
		if float64(pos)/float64(len(matches)) >= minPrecision {
			break
		}
	}
	if len(rule.Terms) == 0 {
		return nil, nil
	}
	pos, covered := 0, []int{}
	for _, i := range matches {
		if labels[i] {
			pos++
		}
		if remaining[i] {
			covered = append(covered, i)
		}
	}
	if float64(pos)/float64(len(matches)) < minPrecision || len(covered) == 0 {
		return nil, nil
	}
	return &rule, covered
}

// Classify implements Classifier.
func (r *Rules) Classify(text string) bool {
	set := map[string]bool{}
	for _, tok := range index.Tokenize(text) {
		set[tok] = true
	}
	for _, rule := range r.Set {
		fires := true
		for _, t := range rule.Terms {
			if !set[t] {
				fires = false
				break
			}
		}
		if fires {
			return true
		}
	}
	return false
}
