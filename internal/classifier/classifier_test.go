package classifier

import (
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/relation"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

func trainDB(t *testing.T, seed int64) *corpus.DB {
	t.Helper()
	g := textgen.NewGazetteer(300, 240, 120)
	g.Companies = textgen.Shuffled(stat.NewRNG(99), g.Companies)
	spec := corpus.RelationSpec{
		Vocab:         textgen.VocabHQ,
		Schema:        relation.Schema{Name: "Headquarters", Attr1: "Company", Attr2: "Location"},
		GoodValues:    g.Companies[:150],
		BadValues:     g.Companies[120:200],
		GoodSeconds:   g.Locations[:60],
		BadSeconds:    g.Locations[60:120],
		GoodFreq:      stat.MustPowerLaw(2.0, 10),
		BadFreq:       stat.MustPowerLaw(2.2, 8),
		NumGoodDocs:   150,
		NumBadDocs:    60,
		BadInGoodRate: 0.3,
	}
	db, err := corpus.Generate(corpus.Config{
		Name: "train", NumDocs: 700, Seed: seed,
		Relations:  []corpus.RelationSpec{spec},
		CasualRate: 0.25, CasualPool: g.Companies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBayesSeparatesClasses(t *testing.T) {
	train := trainDB(t, 1)
	test := trainDB(t, 2)
	b, err := TrainBayes(train, "HQ", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctp, cfp, err := Measure(b, test, "HQ")
	if err != nil {
		t.Fatal(err)
	}
	if ctp < 0.6 {
		t.Errorf("Bayes Ctp = %v, want reasonable recall of good docs", ctp)
	}
	if cfp >= ctp {
		t.Errorf("Bayes Cfp %v should be below Ctp %v", cfp, ctp)
	}
}

func TestBayesThresholdTradesRates(t *testing.T) {
	train := trainDB(t, 3)
	test := trainDB(t, 4)
	loose, err := TrainBayes(train, "HQ", 0)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := TrainBayes(train, "HQ", 5)
	if err != nil {
		t.Fatal(err)
	}
	lt, lf, _ := Measure(loose, test, "HQ")
	st, sf, _ := Measure(strict, test, "HQ")
	if st > lt+1e-9 {
		t.Errorf("stricter threshold should not raise Ctp: %v -> %v", lt, st)
	}
	if sf > lf+1e-9 {
		t.Errorf("stricter threshold should not raise Cfp: %v -> %v", lf, sf)
	}
}

func TestRulesLearnCueTerms(t *testing.T) {
	train := trainDB(t, 5)
	r, err := TrainRules(train, "HQ", 8, 2, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	cues := textgen.VocabHQ.CueTermSet()
	found := false
	for _, rule := range r.Set {
		for _, term := range rule.Terms {
			if cues[term] {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no cue term among learned rules %v", r.Set)
	}
}

func TestRulesClassifyGeneralizes(t *testing.T) {
	train := trainDB(t, 6)
	test := trainDB(t, 7)
	r, err := TrainRules(train, "HQ", 8, 2, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	ctp, cfp, err := Measure(r, test, "HQ")
	if err != nil {
		t.Fatal(err)
	}
	if ctp < 0.5 {
		t.Errorf("rules Ctp = %v, too low", ctp)
	}
	if cfp >= ctp {
		t.Errorf("rules Cfp %v should be below Ctp %v", cfp, ctp)
	}
}

func TestMeasureUnknownTask(t *testing.T) {
	db := trainDB(t, 8)
	b, err := TrainBayes(db, "HQ", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Measure(b, db, "EX"); err == nil {
		t.Error("expected error for unknown task")
	}
}

func TestTrainErrors(t *testing.T) {
	db := trainDB(t, 9)
	if _, err := TrainBayes(db, "EX", 0); err == nil {
		t.Error("expected error training on unhosted task")
	}
	if _, err := TrainRules(db, "EX", 4, 2, 0.5); err == nil {
		t.Error("expected error training rules on unhosted task")
	}
	if _, err := TrainRules(db, "HQ", 0, 2, 0.5); err == nil {
		t.Error("expected error for zero rules")
	}
	if _, err := TrainRules(db, "HQ", 4, 2, 1.01); err == nil {
		t.Error("expected error when precision floor is unreachable")
	}
}

func TestRuleFiringSemantics(t *testing.T) {
	r := &Rules{Set: []Rule{{Terms: []string{"headquartered", "offices"}}}}
	if !r.Classify("the firm is headquartered with offices downtown") {
		t.Error("rule with all terms present must fire")
	}
	if r.Classify("the firm is headquartered downtown") {
		t.Error("rule with a missing conjunct must not fire")
	}
}
