// Package querygraph represents k-relation join workloads as query graphs
// and enumerates their connected subgraphs — the substrate of the DP
// join-order enumerator (internal/optimizer's ChooseNary). A query names k
// extracted relations and the join predicates between them; every predicate
// equates the relations' shared join attribute (the paper's single-attribute
// natural-join setting), so an edge carries no payload beyond its endpoints.
//
// The enumeration is DPccp-style (Moerkotte & Neumann, "Analysis of Two
// Existing and One New Dynamic Programming Algorithm for the Generation of
// Optimal Bushy Join Trees without Cross Products"): connected subgraphs are
// emitted exactly once each, and CsgCmpPairs yields every
// csg-cmp pair — a connected subgraph S1 and a connected, disjoint S2 with
// at least one edge between them — exactly once per unordered pair. The
// enumerator therefore considers exactly the bushy, cross-product-free plan
// space, in deterministic order.
package querygraph

import (
	"fmt"
	"math/bits"
)

// MaxRelations bounds the query size. Class-mask composition in
// internal/model supports 8 relations; the subset DP is exponential in k, so
// the practical bound is lower still.
const MaxRelations = 6

// Spec is a declarative k-relation join query: relation task names and the
// join predicates between them (pairs of relation indices, each predicate on
// the shared join attribute). An empty Joins list defaults to the chain
// R0–R1–…–R(k−1).
type Spec struct {
	Relations []string
	Joins     [][2]int
}

// Graph builds and validates the query graph of the spec.
func (s Spec) Graph() (*Graph, error) {
	n := len(s.Relations)
	joins := s.Joins
	if len(joins) == 0 {
		for i := 0; i+1 < n; i++ {
			joins = append(joins, [2]int{i, i + 1})
		}
	}
	return New(n, joins)
}

// Graph is a query graph over relations 0..N−1 with bitset adjacency.
type Graph struct {
	N   int
	adj []uint64 // adj[i]: neighbours of relation i
}

// New builds a graph over n relations from join-predicate edges. The graph
// must be simple (no self joins, no duplicate predicates) and connected —
// a disconnected query would demand a cross product, which the plan space
// deliberately excludes.
func New(n int, joins [][2]int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("querygraph: need at least 2 relations, got %d", n)
	}
	if n > MaxRelations {
		return nil, fmt.Errorf("querygraph: at most %d relations supported, got %d", MaxRelations, n)
	}
	g := &Graph{N: n, adj: make([]uint64, n)}
	for _, j := range joins {
		a, b := j[0], j[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("querygraph: join [%d %d] references a relation outside 0..%d", a, b, n-1)
		}
		if a == b {
			return nil, fmt.Errorf("querygraph: self join [%d %d]", a, b)
		}
		if g.adj[a]&(1<<b) != 0 {
			return nil, fmt.Errorf("querygraph: duplicate join predicate [%d %d]", a, b)
		}
		g.adj[a] |= 1 << b
		g.adj[b] |= 1 << a
	}
	if !g.ConnectedMask(g.All()) {
		return nil, fmt.Errorf("querygraph: join graph is not connected (a disconnected query requires a cross product)")
	}
	return g, nil
}

// Chain returns the chain graph R0–R1–…–R(n−1).
func Chain(n int) (*Graph, error) {
	var joins [][2]int
	for i := 0; i+1 < n; i++ {
		joins = append(joins, [2]int{i, i + 1})
	}
	return New(n, joins)
}

// All returns the full relation set.
func (g *Graph) All() uint64 { return (1 << g.N) - 1 }

// HasEdge reports whether relations a and b are joined directly.
func (g *Graph) HasEdge(a, b int) bool { return g.adj[a]&(1<<b) != 0 }

// Neighbors returns N(S): the union of the members' adjacency sets minus S.
func (g *Graph) Neighbors(s uint64) uint64 {
	var n uint64
	for m := s; m != 0; m &= m - 1 {
		n |= g.adj[bits.TrailingZeros64(m)]
	}
	return n &^ s
}

// ConnectedMask reports whether the induced subgraph on s is connected.
func (g *Graph) ConnectedMask(s uint64) bool {
	if s == 0 {
		return false
	}
	reach := s & (-s) // lowest member
	for {
		grown := reach | (g.Neighbors(reach) & s)
		if grown == reach {
			return reach == s
		}
		reach = grown
	}
}

// ConnectedSubgraphs emits every connected subgraph of the query graph
// exactly once, in the DPccp enumeration order (which emits every proper
// subgraph before any superset that contains it, so a subset DP can fold
// over the stream directly).
func (g *Graph) ConnectedSubgraphs(emit func(s uint64)) {
	for i := g.N - 1; i >= 0; i-- {
		v := uint64(1) << i
		emit(v)
		g.csgRec(v, v|(v-1), emit)
	}
}

// csgRec is EnumerateCsgRec: grow s by non-empty subsets of its neighbours
// outside the exclusion set x, emitting each enlarged subgraph.
func (g *Graph) csgRec(s, x uint64, emit func(uint64)) {
	n := g.Neighbors(s) &^ x
	if n == 0 {
		return
	}
	for sub := subsetFirst(n); sub != 0; sub = subsetNext(sub, n) {
		emit(s | sub)
	}
	for sub := subsetFirst(n); sub != 0; sub = subsetNext(sub, n) {
		g.csgRec(s|sub, x|n, emit)
	}
}

// subsetFirst/subsetNext enumerate the non-empty subsets of mask in
// deterministic increasing numeric order.
func subsetFirst(mask uint64) uint64 {
	if mask == 0 {
		return 0
	}
	return mask & (-mask)
}

func subsetNext(sub, mask uint64) uint64 {
	next := (sub - mask) & mask
	if next == 0 {
		return 0
	}
	return next
}

// CsgCmpPairs emits every csg-cmp pair (s1, s2) exactly once per unordered
// pair: both sides connected, disjoint, and joined by at least one edge.
// The union s1|s2 of every emitted pair is itself a connected subgraph, and
// every pair whose union is a set S is emitted before any pair with a
// strictly larger union that contains S would require it — the order a
// subset DP needs.
func (g *Graph) CsgCmpPairs(emit func(s1, s2 uint64)) {
	g.ConnectedSubgraphs(func(s1 uint64) {
		g.complements(s1, func(s2 uint64) { emit(s1, s2) })
	})
}

// complements is EnumerateCmp: emit every connected s2 disjoint from s1,
// adjacent to it, and whose minimum element exceeds s1's (so each unordered
// pair surfaces exactly once).
func (g *Graph) complements(s1 uint64, emit func(uint64)) {
	min := s1 & (-s1)
	x := (min | (min - 1)) | s1
	n := g.Neighbors(s1) &^ x
	if n == 0 {
		return
	}
	// Descending over the seed vertices, per the paper.
	for i := g.N - 1; i >= 0; i-- {
		v := uint64(1) << i
		if n&v == 0 {
			continue
		}
		emit(v)
		g.csgRec(v, x|(n&(v|(v-1))), emit)
	}
}

// Bits returns the set members in ascending order.
func Bits(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros64(m))
	}
	return out
}
