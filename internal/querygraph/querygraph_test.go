package querygraph

import (
	"math/bits"
	"testing"
)

// refConnected is an independent reachability check used to validate the
// bitset implementation.
func refConnected(n int, edges [][2]int, s uint64) bool {
	if s == 0 {
		return false
	}
	start := bits.TrailingZeros64(s)
	seen := uint64(1) << start
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range edges {
			var w int
			switch v {
			case e[0]:
				w = e[1]
			case e[1]:
				w = e[0]
			default:
				continue
			}
			if s&(1<<w) == 0 || seen&(1<<w) != 0 {
				continue
			}
			seen |= 1 << w
			queue = append(queue, w)
		}
	}
	return seen == s
}

func hasCrossEdge(edges [][2]int, s1, s2 uint64) bool {
	for _, e := range edges {
		a, b := uint64(1)<<e[0], uint64(1)<<e[1]
		if (s1&a != 0 && s2&b != 0) || (s1&b != 0 && s2&a != 0) {
			return true
		}
	}
	return false
}

var shapes = []struct {
	name  string
	n     int
	edges [][2]int
}{
	{"chain3", 3, [][2]int{{0, 1}, {1, 2}}},
	{"chain4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
	{"chain6", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
	{"star4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}}},
	{"star5", 5, [][2]int{{2, 0}, {2, 1}, {2, 3}, {2, 4}}},
	{"cycle4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
	{"cycle5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}},
	{"clique4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
	{"clique5", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}},
	{"kite5", 5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}}},
}

func TestConnectedMaskMatchesReference(t *testing.T) {
	for _, sh := range shapes {
		g, err := New(sh.n, sh.edges)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		for s := uint64(1); s < 1<<sh.n; s++ {
			want := refConnected(sh.n, sh.edges, s)
			if got := g.ConnectedMask(s); got != want {
				t.Errorf("%s: ConnectedMask(%b) = %v, want %v", sh.name, s, got, want)
			}
		}
	}
}

// TestConnectedSubgraphsExactlyOnce: the DPccp stream must emit each
// connected subgraph exactly once and nothing else.
func TestConnectedSubgraphsExactlyOnce(t *testing.T) {
	for _, sh := range shapes {
		g, err := New(sh.n, sh.edges)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		got := map[uint64]int{}
		g.ConnectedSubgraphs(func(s uint64) { got[s]++ })
		for s := uint64(1); s < 1<<sh.n; s++ {
			want := 0
			if refConnected(sh.n, sh.edges, s) {
				want = 1
			}
			if got[s] != want {
				t.Errorf("%s: subgraph %b emitted %d times, want %d", sh.name, s, got[s], want)
			}
		}
	}
}

// TestCsgCmpPairsComplete: every valid unordered csg-cmp pair appears exactly
// once, and nothing invalid appears. The brute-force reference enumerates all
// (s1, s2) partitions directly.
func TestCsgCmpPairsComplete(t *testing.T) {
	for _, sh := range shapes {
		g, err := New(sh.n, sh.edges)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		type pair struct{ a, b uint64 }
		norm := func(a, b uint64) pair {
			if a > b {
				a, b = b, a
			}
			return pair{a, b}
		}
		got := map[pair]int{}
		g.CsgCmpPairs(func(s1, s2 uint64) {
			if s1&s2 != 0 {
				t.Fatalf("%s: overlapping pair %b/%b", sh.name, s1, s2)
			}
			got[norm(s1, s2)]++
		})
		want := map[pair]bool{}
		for s1 := uint64(1); s1 < 1<<sh.n; s1++ {
			if !refConnected(sh.n, sh.edges, s1) {
				continue
			}
			for s2 := uint64(1); s2 < 1<<sh.n; s2++ {
				if s1&s2 != 0 || s2 <= s1 || !refConnected(sh.n, sh.edges, s2) {
					continue
				}
				if hasCrossEdge(sh.edges, s1, s2) {
					want[pair{s1, s2}] = true
				}
			}
		}
		for p := range want {
			if got[p] != 1 {
				t.Errorf("%s: pair %b+%b emitted %d times, want 1", sh.name, p.a, p.b, got[p])
			}
		}
		for p, c := range got {
			if !want[p] {
				t.Errorf("%s: spurious pair %b+%b emitted %d times", sh.name, p.a, p.b, c)
			}
		}
	}
}

// TestCsgCmpOrderUsableForDP: by the time a pair with union U is emitted,
// every connected proper subset of U has already been emitted by
// ConnectedSubgraphs-driven pairs — i.e. a DP folding over the stream can
// always look up both sides. We check the weaker but sufficient invariant
// directly: when (s1,s2) arrives, all pairs whose union is s1 (if |s1|>1)
// and s2 (if |s2|>1) have arrived before.
func TestCsgCmpOrderUsableForDP(t *testing.T) {
	for _, sh := range shapes {
		g, err := New(sh.n, sh.edges)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		unionPairs := map[uint64]int{} // union -> pairs seen so far
		wantPairs := map[uint64]int{}  // union -> total pairs with that union
		g.CsgCmpPairs(func(s1, s2 uint64) { wantPairs[s1|s2]++ })
		g.CsgCmpPairs(func(s1, s2 uint64) {
			for _, side := range []uint64{s1, s2} {
				if bits.OnesCount64(side) > 1 && unionPairs[side] != wantPairs[side] {
					t.Fatalf("%s: pair %b+%b arrived before side %b was fully built (%d/%d)",
						sh.name, s1, s2, side, unionPairs[side], wantPairs[side])
				}
			}
			unionPairs[s1|s2]++
		})
	}
}

func TestSpecDefaultsToChain(t *testing.T) {
	s := Spec{Relations: []string{"HQ", "EX", "MG", "HQ"}}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("N = %d, want 4", g.N)
	}
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing chain edge %v", e)
		}
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 3) || g.HasEdge(1, 3) {
		t.Error("unexpected non-chain edge in default graph")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		joins [][2]int
	}{
		{"one relation", 1, nil},
		{"too many relations", MaxRelations + 1, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}},
		{"out of range", 3, [][2]int{{0, 1}, {1, 3}}},
		{"negative", 3, [][2]int{{-1, 1}, {1, 2}}},
		{"self join", 3, [][2]int{{0, 0}, {0, 1}, {1, 2}}},
		{"duplicate", 3, [][2]int{{0, 1}, {1, 0}, {1, 2}}},
		{"disconnected", 4, [][2]int{{0, 1}, {2, 3}}},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.joins); err == nil {
			t.Errorf("%s: New accepted invalid input", c.name)
		}
	}
}

func TestBits(t *testing.T) {
	got := Bits(0b101101)
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Bits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits = %v, want %v", got, want)
		}
	}
}
