package shard

import (
	"math"
	"testing"

	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
)

// TestOwnerDeterministicAndInRange: ownership is a pure function — repeated
// calls agree — and always lands inside [0, N).
func TestOwnerDeterministicAndInRange(t *testing.T) {
	for _, kind := range []Kind{KindHash, KindRange} {
		for _, n := range []int{1, 2, 3, 4, 8, 16} {
			p := Partition{N: n, Kind: kind}
			for side := 0; side < 2; side++ {
				for doc := 0; doc < 500; doc++ {
					s := p.Owner(side, doc, 500)
					if s < 0 || (n >= 2 && s >= n) || (n < 2 && s != 0) {
						t.Fatalf("%s N=%d: Owner(%d,%d) = %d out of range", kind, n, side, doc, s)
					}
					if again := p.Owner(side, doc, 500); again != s {
						t.Fatalf("%s N=%d: Owner(%d,%d) flapped %d -> %d", kind, n, side, doc, s, again)
					}
				}
			}
		}
	}
}

// TestOwnerHashBalance: hash partitioning spreads a contiguous docID range
// roughly evenly — no shard more than 50% above the fair share.
func TestOwnerHashBalance(t *testing.T) {
	const docs, n = 4000, 8
	p := Partition{N: n, Kind: KindHash}
	counts := make([]int, n)
	for doc := 0; doc < docs; doc++ {
		counts[p.Owner(0, doc, docs)]++
	}
	fair := docs / n
	for s, c := range counts {
		if c > fair*3/2 || c < fair/2 {
			t.Errorf("shard %d owns %d docs, fair share %d", s, c, fair)
		}
	}
}

// TestOwnerRangeContiguous: range partitioning assigns monotone, contiguous
// blocks covering every shard.
func TestOwnerRangeContiguous(t *testing.T) {
	const docs, n = 100, 4
	p := Partition{N: n, Kind: KindRange}
	prev := 0
	seen := make(map[int]bool)
	for doc := 0; doc < docs; doc++ {
		s := p.Owner(0, doc, docs)
		if s < prev {
			t.Fatalf("range ownership not monotone: doc %d on shard %d after shard %d", doc, s, prev)
		}
		prev = s
		seen[s] = true
	}
	if len(seen) != n {
		t.Errorf("range partition used %d of %d shards", len(seen), n)
	}
	if p.Owner(0, -1, docs) != 0 || p.Owner(0, docs+5, docs) != n-1 {
		t.Error("out-of-range docIDs must clamp to the edge shards")
	}
	if p.Owner(0, 10, 0) != 0 {
		t.Error("empty database must own everything on shard 0")
	}
}

func TestWorkersPerShard(t *testing.T) {
	cases := []struct{ workers, shards, want int }{
		{0, 4, 1}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {8, 2, 4},
		{3, 0, 3}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := WorkersPerShard(c.workers, c.shards); got != c.want {
			t.Errorf("WorkersPerShard(%d, %d) = %d, want %d", c.workers, c.shards, got, c.want)
		}
	}
}

// TestEffectiveSpeedup pins the measured scaling curve: identity below two
// shards, monotone, sublinear, and above the 2.5× benchmark gate at 4.
func TestEffectiveSpeedup(t *testing.T) {
	if EffectiveSpeedup(0) != 1 || EffectiveSpeedup(1) != 1 {
		t.Error("n < 2 must not promise speedup")
	}
	prev := 1.0
	for n := 2; n <= 16; n++ {
		f := EffectiveSpeedup(n)
		if f <= prev || f >= float64(n) {
			t.Errorf("EffectiveSpeedup(%d) = %v: want monotone and sublinear", n, f)
		}
		prev = f
	}
	if f := EffectiveSpeedup(4); f < 2.5 {
		t.Errorf("EffectiveSpeedup(4) = %v below the 2.5x benchmark gate", f)
	}
	want := 4 / (1 + shardSerialFraction*3)
	if got := EffectiveSpeedup(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("EffectiveSpeedup(4) = %v, want %v", got, want)
	}
}

// TestSetSplitsCapacity: the slices split the byte budget, aggregate stats
// sum across slices, and a zero budget leaves them nil.
func TestSetSplitsCapacity(t *testing.T) {
	s := NewSet(Partition{N: 4}, 4096)
	if len(s.Caches) != 4 {
		t.Fatalf("got %d slices, want 4", len(s.Caches))
	}
	for i, c := range s.Caches {
		if c == nil {
			t.Fatalf("slice %d nil under a positive budget", i)
		}
	}
	if NewSet(Partition{N: 4}, 0).Caches[0] != nil {
		t.Error("zero budget must leave slices nil")
	}
	if n := len(NewSet(Partition{}, 0).Caches); n != 1 {
		t.Errorf("N<1 must normalize to one shard, got %d", n)
	}
	var nilSet *Set
	if nilSet.Stats() != (pipeline.CacheStats{}) || nilSet.HitRate() != 0 {
		t.Error("nil Set must report zero stats")
	}
	nilSet.SetTier(nil) // must not panic
}

// TestGroupRoutesAndCounts: resolutions land on the owner shard's counter,
// Progress snapshots them, and Prime suppresses announcements until the
// floor is recovered.
func TestGroupRoutesAndCounts(t *testing.T) {
	set := NewSet(Partition{N: 2, Kind: KindRange}, 0)
	extract := func(k pipeline.Key) []relation.Tuple { return nil }
	g := NewGroup(set, 0, []int{100}, extract)
	if !g.Active() || g.HasCache() || g.Shards() != 2 {
		t.Fatalf("fresh cacheless group: active=%v cache=%v shards=%d", g.Active(), g.HasCache(), g.Shards())
	}
	if g.Lookahead() < 2 {
		t.Errorf("lookahead %d: want at least one slot per shard", g.Lookahead())
	}
	// Range split of 100 docs over 2 shards: doc 10 on shard 0, doc 90 on 1.
	for _, doc := range []int{10, 11, 90} {
		if _, _, _ = g.Resolve(pipeline.Key{Side: 0, DocID: doc}, func() []relation.Tuple { return nil }); false {
			t.Fatal()
		}
	}
	if p := g.Progress(); p[0] != 2 || p[1] != 1 {
		t.Errorf("progress %v, want [2 1]", p)
	}

	// A primed group swallows announcements below the floor, then routes.
	g2 := NewGroup(set, 0, []int{100}, extract)
	g2.Prime([]int{1, 0})
	if !g2.Announce(pipeline.Key{Side: 0, DocID: 10}) {
		t.Error("announcement below the resume floor must be swallowed as accepted")
	}
	g2.Resolve(pipeline.Key{Side: 0, DocID: 10}, func() []relation.Tuple { return nil })
	// Floor recovered: announcements now reach the real engine (accepted
	// while its window has room).
	if !g2.Announce(pipeline.Key{Side: 0, DocID: 11}) {
		t.Error("post-floor announcement refused with an empty window")
	}
	g2.Drop(pipeline.Key{Side: 0, DocID: 11})

	// Mismatched progress vectors are ignored.
	g3 := NewGroup(set, 0, []int{100}, extract)
	g3.Prime([]int{1, 2, 3})
	if p := g3.Progress(); p[0] != 0 || p[1] != 0 {
		t.Errorf("mismatched Prime must be a no-op, progress %v", p)
	}

	var nilGroup *Group
	if nilGroup.Active() || nilGroup.HasCache() || nilGroup.Lookahead() != 0 || nilGroup.Progress() != nil {
		t.Error("nil group must report inactive")
	}
	nilGroup.Prime(nil) // must not panic
}
