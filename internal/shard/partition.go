// Package shard partitions each text database into N deterministic shards
// and runs one pipelined extraction engine per shard, presenting the whole
// group to the join executors through the same frontend contract as a single
// engine. The cost model is additive over documents, therefore additive over
// shards: the optimizer models shard parallelism with a measured scaling
// curve (EffectiveSpeedup) exactly the way it models worker overlap inside
// one engine (pipeline.EffectiveOverlap).
//
// Determinism is the package's load-bearing promise. Document ownership is a
// pure function of (side, docID) — independent of shard count ordering,
// re-runs, and machine — and every stateful operation (cost accounting,
// trace emission, cache mutation) still happens on the single consumer
// goroutine in canonical stream order. The per-shard engines only ever run
// the pure extraction function speculatively; the consumer resolves results
// in the same order it would have without sharding, which is what makes the
// scatter-gather merge bit-identical to the unsharded run at any shard
// count.
package shard

// Kind selects the partitioning function mapping documents to shards.
type Kind int

const (
	// KindHash spreads documents by a mixed hash of (side, docID). This is
	// the default: neighbouring doc IDs land on different shards, so skewed
	// corpora (long documents clustered at one end) still balance.
	KindHash Kind = iota
	// KindRange assigns contiguous docID ranges to shards: shard s owns
	// docIDs in [s·size/N, (s+1)·size/N). Useful when locality matters more
	// than balance (e.g. a future disk layout with one file per shard).
	KindRange
)

// String names the partitioning kind for traces and error messages.
func (k Kind) String() string {
	switch k {
	case KindHash:
		return "hash"
	case KindRange:
		return "range"
	default:
		return "unknown"
	}
}

// Partition describes how a corpus is split: N shards under one of the
// partitioning kinds. The zero value (N=0) means "unsharded".
type Partition struct {
	N    int
	Kind Kind
}

// mix64 is a SplitMix64-style finalizer: a fast, high-quality avalanche of
// the 64-bit input. Pure arithmetic — stable across runs, platforms, and Go
// versions, unlike maphash or map iteration order.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the shard owning docID on the given side of a database with
// dbSize documents. It is a pure function: the same (side, docID) maps to
// the same shard on every run. Partitions with N < 2 own everything on
// shard 0.
func (p Partition) Owner(side, docID, dbSize int) int {
	if p.N < 2 {
		return 0
	}
	switch p.Kind {
	case KindRange:
		if dbSize <= 0 {
			return 0
		}
		s := docID * p.N / dbSize
		if s < 0 {
			s = 0
		}
		if s >= p.N {
			s = p.N - 1
		}
		return s
	default:
		h := mix64(uint64(side)<<32 ^ uint64(uint32(docID)))
		return int(h % uint64(p.N))
	}
}

// WorkersPerShard splits an execution's worker budget across shards:
// ceil(execWorkers/shards), at least 1 — a shard always has one goroutine
// extracting speculatively, even when the run itself asked for no pipeline
// workers (the shards are the parallelism then).
func WorkersPerShard(execWorkers, shards int) int {
	if shards < 1 {
		shards = 1
	}
	w := (execWorkers + shards - 1) / shards
	if w < 1 {
		w = 1
	}
	return w
}

// shardSerialFraction is the non-parallelizable fraction of a sharded run,
// measured from BenchmarkExecShardedIDJN8k rather than assumed ideal: the
// consumer goroutine still merges every tuple stream and charges every cost
// in canonical order, so scatter-gather has a higher serial share than
// worker overlap inside one engine (pipeline.EffectiveOverlap's 3%). With
// s = 0.06 the curve gives 1.9× at 2 shards, 3.4× at 4, 5.6× at 8 — the
// 4-shard point sits above the 2.5× benchmark gate with margin for runner
// noise.
const shardSerialFraction = 0.06

// EffectiveSpeedup returns the scan/extract-time divisor n shards buy,
// following the same Amdahl form as pipeline.EffectiveOverlap but with the
// shard-scaling serial fraction measured from the benchmark. n < 2 returns
// 1 (no sharding, no speedup).
func EffectiveSpeedup(n int) float64 {
	if n < 2 {
		return 1
	}
	return float64(n) / (1 + shardSerialFraction*float64(n-1))
}
