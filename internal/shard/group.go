package shard

import (
	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
)

// Set is the persistent half of a sharded execution: the partition layout
// and one extraction-cache slice per shard. Like the single shared cache it
// replaces, a Set outlives individual runs — a Task builds one per
// (capacity, shard count) and every sharded execution of that task warms the
// same slices. The slices' key spaces are disjoint by construction (every
// key is only ever routed to its owner shard), so a single second tier may
// safely back all of them.
type Set struct {
	Part   Partition
	Caches []*pipeline.Cache // per-shard slice; entries nil when capacity is 0
}

// NewSet builds the persistent cache slices for a partition: totalBytes of
// capacity split evenly across the shards. totalBytes <= 0 leaves every
// slice nil — sharded execution without caching. p.N < 1 is normalized to 1.
func NewSet(p Partition, totalBytes int64) *Set {
	if p.N < 1 {
		p.N = 1
	}
	s := &Set{Part: p, Caches: make([]*pipeline.Cache, p.N)}
	if totalBytes > 0 {
		per := totalBytes / int64(p.N)
		if per < 1 {
			per = 1
		}
		for i := range s.Caches {
			s.Caches[i] = pipeline.NewCache(per)
		}
	}
	return s
}

// SetTier attaches a second cache level (typically the durable disk tier)
// under every shard slice. Safe because the slices' key spaces are disjoint.
func (s *Set) SetTier(t pipeline.Tier) {
	if s == nil {
		return
	}
	for _, c := range s.Caches {
		c.SetTier(t)
	}
}

// Stats aggregates the accounting of all shard slices.
func (s *Set) Stats() pipeline.CacheStats {
	var agg pipeline.CacheStats
	if s == nil {
		return agg
	}
	for _, c := range s.Caches {
		if c == nil {
			continue
		}
		cs := c.Stats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Evictions += cs.Evictions
		agg.Bytes += cs.Bytes
		agg.Entries += cs.Entries
		agg.TierHits += cs.TierHits
	}
	return agg
}

// HitRate returns the aggregate hit fraction across all slices, 0 before any
// lookup.
func (s *Set) HitRate() float64 {
	st := s.Stats()
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// Group is the per-execution scatter-gather frontend over a Set: one
// pipelined engine per shard, each owning its cache slice and a slice of the
// run's worker budget. It satisfies pipeline.Frontend, so the join executors
// drive it exactly as they drive a single engine — announcements and
// resolutions are routed to the owning shard, and because the consumer still
// resolves documents in canonical stream order, the merged tuple stream is
// bit-identical to the unsharded run at any shard count (the per-shard
// reorder buffers ARE the gather step).
type Group struct {
	set      *Set
	sizes    []int // per-side corpus sizes, for range partitioning
	engines  []*pipeline.Engine
	resolved []int // documents resolved per shard this execution
	primed   []int // resume floor: suppress speculation below these counts
}

// NewGroup builds the per-execution engines over a Set. execWorkers is the
// run's total worker budget, split as WorkersPerShard (each shard always
// speculates with at least one worker — with shards, the shards are the
// parallelism). sizes gives the per-side corpus sizes, indexed by
// pipeline.Key.Side, used only by range partitioning. extract must be a pure
// function of the key.
func NewGroup(set *Set, execWorkers int, sizes []int, extract func(pipeline.Key) []relation.Tuple) *Group {
	n := set.Part.N
	if n < 1 {
		n = 1
	}
	g := &Group{
		set:      set,
		sizes:    append([]int(nil), sizes...),
		engines:  make([]*pipeline.Engine, n),
		resolved: make([]int, n),
		primed:   make([]int, n),
	}
	wps := WorkersPerShard(execWorkers, n)
	for i := range g.engines {
		var cache *pipeline.Cache
		if i < len(set.Caches) {
			cache = set.Caches[i]
		}
		g.engines[i] = pipeline.NewEngine(cache, wps, extract)
	}
	return g
}

// owner returns the shard index owning k.
func (g *Group) owner(k pipeline.Key) int {
	size := 0
	if k.Side >= 0 && k.Side < len(g.sizes) {
		size = g.sizes[k.Side]
	}
	return g.set.Part.Owner(k.Side, k.DocID, size)
}

// Active reports that the group changes the execution path (it always does:
// every shard engine has at least one worker).
func (g *Group) Active() bool { return g != nil }

// HasCache reports whether any shard engine has a cache slice attached.
func (g *Group) HasCache() bool {
	if g == nil {
		return false
	}
	for _, e := range g.engines {
		if e.HasCache() {
			return true
		}
	}
	return false
}

// Lookahead returns the group's total speculation depth: the sum of the
// per-shard windows. Hash partitioning spreads consecutive stream documents
// across shards, so a lookahead this deep keeps every shard's window fed.
func (g *Group) Lookahead() int {
	if g == nil {
		return 0
	}
	total := 0
	for _, e := range g.engines {
		total += e.Lookahead()
	}
	return total
}

// Announce routes a speculative extraction to the key's owner shard. While a
// shard is below its primed resume floor the announcement is swallowed
// (reported accepted): a resumed run re-resolves that prefix from the warm
// cache slices, and re-speculating work a previous run already did would
// only burn workers. The single-engine stop-at-first-refusal discipline
// carries over unchanged — a refusal from any owner stops the caller's
// announce pass for this step.
func (g *Group) Announce(k pipeline.Key) bool {
	s := g.owner(k)
	if g.resolved[s] < g.primed[s] {
		return true
	}
	return g.engines[s].Announce(k)
}

// Resolve routes the canonical resolution of k to its owner shard and
// advances that shard's progress counter. Called by the consumer in stream
// order, so the counters — like everything else the consumer touches — are
// deterministic.
func (g *Group) Resolve(k pipeline.Key, inline func() []relation.Tuple) ([]relation.Tuple, bool, int) {
	s := g.owner(k)
	g.resolved[s]++
	return g.engines[s].Resolve(k, inline)
}

// Drop routes a speculation abandonment to the key's owner shard.
func (g *Group) Drop(k pipeline.Key) {
	g.engines[g.owner(k)].Drop(k)
}

// Shards returns the number of shards in the group.
func (g *Group) Shards() int { return len(g.engines) }

// Progress returns a copy of the per-shard resolution counts — the
// checkpointable answer to "how far did each shard get". Deterministic
// because resolutions happen in canonical stream order.
func (g *Group) Progress() []int {
	if g == nil {
		return nil
	}
	return append([]int(nil), g.resolved...)
}

// Prime installs a resume floor from a checkpoint's per-shard progress:
// until a shard's resolution count catches back up to its floor, its
// announcements are suppressed, so replaying up to the checkpoint skips the
// speculative re-extraction of work completed shards already did (the
// resolutions come from the warm cache slices instead). A progress vector
// recorded under a different shard count is ignored — replay is still
// correct without priming, just less lazy.
func (g *Group) Prime(progress []int) {
	if g == nil || len(progress) != len(g.primed) {
		return
	}
	copy(g.primed, progress)
}
