// Package qxtract implements automatic query generation for the AQG
// retrieval strategy, in the spirit of the QXtract system the paper uses:
// keyword queries learned from a labelled training split that are expected
// to retrieve good documents for an extraction task.
//
// Terms are ranked by log-odds ratio between good and non-good training
// documents; queries are the top single terms and their pairwise
// conjunctions. Each learned query carries its training precision, and the
// execution-time statistics P(q) and g(q) on the target database are
// measured by Stats.
package qxtract

import (
	"fmt"
	"math"
	"sort"

	"joinopt/internal/corpus"
	"joinopt/internal/index"
)

// Query is a learned keyword query with its training-split precision.
type Query struct {
	Terms        []string
	TrainPrec    float64 // fraction of matching training docs that are good
	TrainMatches int     // matching training docs
}

// IndexQuery converts to the search-interface query form.
func (q Query) IndexQuery() index.Query { return index.Query{Terms: q.Terms} }

// Learn derives up to maxQueries queries for task from the training
// database. Queries are ordered by expected usefulness (precision ×
// log-coverage on the training split).
func Learn(train *corpus.DB, task string, maxQueries int) ([]Query, error) {
	stats := train.Stats(task)
	if stats == nil {
		return nil, fmt.Errorf("qxtract: training database %s does not host task %s", train.Name, task)
	}
	if maxQueries <= 0 {
		return nil, fmt.Errorf("qxtract: maxQueries must be positive")
	}
	var nGood, nRest int
	countGood := map[string]int{}
	countRest := map[string]int{}
	docTerms := make([]map[string]bool, len(train.Docs))
	for i, doc := range train.Docs {
		set := map[string]bool{}
		for _, tok := range index.Tokenize(doc.Text) {
			set[tok] = true
		}
		docTerms[i] = set
		if stats.Class[i] == corpus.Good {
			nGood++
			for t := range set {
				countGood[t]++
			}
		} else {
			nRest++
			for t := range set {
				countRest[t]++
			}
		}
	}
	if nGood == 0 {
		return nil, fmt.Errorf("qxtract: no good documents in training database")
	}
	type scored struct {
		term  string
		score float64
	}
	var ranked []scored
	for t, gc := range countGood {
		pg := (float64(gc) + 1) / (float64(nGood) + 2)
		pr := (float64(countRest[t]) + 1) / (float64(nRest) + 2)
		ranked = append(ranked, scored{term: t, score: math.Log(pg / pr)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].term < ranked[j].term
	})
	nTop := maxQueries
	if nTop > len(ranked) {
		nTop = len(ranked)
	}
	top := ranked[:nTop]

	evaluate := func(terms []string) Query {
		matches, good := 0, 0
		for i, set := range docTerms {
			ok := true
			for _, t := range terms {
				if !set[t] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			matches++
			if stats.Class[i] == corpus.Good {
				good++
			}
		}
		prec := 0.0
		if matches > 0 {
			prec = float64(good) / float64(matches)
		}
		return Query{Terms: terms, TrainPrec: prec, TrainMatches: matches}
	}

	var out []Query
	for _, s := range top {
		out = append(out, evaluate([]string{s.term}))
	}
	// Pairwise conjunctions of the strongest terms sharpen precision.
	for i := 0; i < len(top) && len(out) < maxQueries*2; i++ {
		for j := i + 1; j < len(top) && len(out) < maxQueries*2; j++ {
			q := evaluate([]string{top[i].term, top[j].term})
			if q.TrainMatches > 0 {
				out = append(out, q)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		si := out[i].TrainPrec * math.Log(float64(out[i].TrainMatches)+1)
		sj := out[j].TrainPrec * math.Log(float64(out[j].TrainMatches)+1)
		return si > sj
	})
	if len(out) > maxQueries {
		out = out[:maxQueries]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("qxtract: no usable queries learned")
	}
	return out, nil
}

// QueryStats are the execution-time statistics of one query on a target
// database: the number of matching documents H(q) and the precision P(q)
// (fraction of matches that are good documents).
type QueryStats struct {
	Hits int
	Prec float64
}

// Stats measures H(q) and P(q) for each query against the target database.
// The model-accuracy experiments use these as perfect-knowledge parameters;
// optimizer runs estimate them from retrieved samples instead.
func Stats(queries []Query, ix *index.Index, db *corpus.DB, task string) ([]QueryStats, error) {
	stats := db.Stats(task)
	if stats == nil {
		return nil, fmt.Errorf("qxtract: database %s does not host task %s", db.Name, task)
	}
	out := make([]QueryStats, len(queries))
	for i, q := range queries {
		matches := ix.Matches(q.IndexQuery())
		good := 0
		for _, id := range matches {
			if stats.Class[id] == corpus.Good {
				good++
			}
		}
		s := QueryStats{Hits: len(matches)}
		if len(matches) > 0 {
			s.Prec = float64(good) / float64(len(matches))
		}
		out[i] = s
	}
	return out, nil
}
