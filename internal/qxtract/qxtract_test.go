package qxtract

import (
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/index"
	"joinopt/internal/relation"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

func makeDB(t *testing.T, seed int64) *corpus.DB {
	t.Helper()
	g := textgen.NewGazetteer(300, 240, 120)
	g.Companies = textgen.Shuffled(stat.NewRNG(99), g.Companies)
	spec := corpus.RelationSpec{
		Vocab:         textgen.VocabHQ,
		Schema:        relation.Schema{Name: "Headquarters", Attr1: "Company", Attr2: "Location"},
		GoodValues:    g.Companies[:150],
		BadValues:     g.Companies[120:200],
		GoodSeconds:   g.Locations[:60],
		BadSeconds:    g.Locations[60:120],
		GoodFreq:      stat.MustPowerLaw(2.0, 10),
		BadFreq:       stat.MustPowerLaw(2.2, 8),
		NumGoodDocs:   150,
		NumBadDocs:    60,
		BadInGoodRate: 0.3,
	}
	db, err := corpus.Generate(corpus.Config{
		Name: "qx", NumDocs: 700, Seed: seed,
		Relations:  []corpus.RelationSpec{spec},
		CasualRate: 0.25, CasualPool: g.Companies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func dbTexts(db *corpus.DB) []string {
	texts := make([]string, db.Size())
	for i, d := range db.Docs {
		texts[i] = d.Text
	}
	return texts
}

func TestLearnFindsCueQueries(t *testing.T) {
	train := makeDB(t, 1)
	queries, err := Learn(train, "HQ", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 || len(queries) > 10 {
		t.Fatalf("learned %d queries", len(queries))
	}
	cues := textgen.VocabHQ.CueTermSet()
	cueHits := 0
	for _, q := range queries {
		for _, term := range q.Terms {
			if cues[term] {
				cueHits++
			}
		}
	}
	if cueHits == 0 {
		t.Errorf("no cue terms among learned queries %v", queries)
	}
}

func TestLearnedQueriesHavePrecision(t *testing.T) {
	train := makeDB(t, 2)
	queries, err := Learn(train, "HQ", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if q.TrainMatches == 0 {
			t.Errorf("query %v matches nothing on its own training split", q.Terms)
		}
	}
	if queries[0].TrainPrec < 0.4 {
		t.Errorf("top query precision %v too low", queries[0].TrainPrec)
	}
}

func TestQueriesGeneralizeToTargetDB(t *testing.T) {
	train := makeDB(t, 3)
	target := makeDB(t, 4)
	queries, err := Learn(train, "HQ", 8)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New(dbTexts(target), 0)
	qs, err := Stats(queries, ix, target, "HQ")
	if err != nil {
		t.Fatal(err)
	}
	anyHits := false
	for i, s := range qs {
		if s.Hits > 0 {
			anyHits = true
			if s.Prec < 0 || s.Prec > 1 {
				t.Errorf("query %d precision %v out of range", i, s.Prec)
			}
		}
	}
	if !anyHits {
		t.Error("no learned query matches the target database")
	}
	// The average precision of matching queries should beat the base rate
	// of good documents (150/700 ≈ 0.21).
	var sum float64
	var n int
	for _, s := range qs {
		if s.Hits > 0 {
			sum += s.Prec
			n++
		}
	}
	if n > 0 && sum/float64(n) < 0.25 {
		t.Errorf("average target precision %v does not beat the base rate", sum/float64(n))
	}
}

func TestLearnErrors(t *testing.T) {
	db := makeDB(t, 5)
	if _, err := Learn(db, "EX", 5); err == nil {
		t.Error("expected error for unhosted task")
	}
	if _, err := Learn(db, "HQ", 0); err == nil {
		t.Error("expected error for zero queries")
	}
}

func TestStatsErrors(t *testing.T) {
	db := makeDB(t, 6)
	ix := index.New(dbTexts(db), 0)
	if _, err := Stats(nil, ix, db, "EX"); err == nil {
		t.Error("expected error for unhosted task")
	}
}

func TestIndexQueryConversion(t *testing.T) {
	q := Query{Terms: []string{"headquartered", "offices"}}
	iq := q.IndexQuery()
	if len(iq.Terms) != 2 || iq.Terms[0] != "headquartered" {
		t.Errorf("conversion wrong: %v", iq)
	}
}
