package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("http://b:8080", "http://a:8080,http://b:8080", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Self != "http://b:8080" {
		t.Errorf("Self = %q", cfg.Self)
	}
	if len(cfg.Peers) != 2 {
		t.Errorf("Peers = %v", cfg.Peers)
	}
	// Defaults applied by the embedded Validate.
	if cfg.VNodes != 64 || cfg.ProbeInterval != time.Second || cfg.ProbeTimeout != 500*time.Millisecond {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.SuspectAfter != 2 || cfg.DownAfter != 4 {
		t.Errorf("failure thresholds: suspect=%d down=%d", cfg.SuspectAfter, cfg.DownAfter)
	}
}

// TestParseConfigNormalizes: spelling variants of the same replica compare
// equal, so -self can be uppercased or carry a trailing slash and still
// match its -peers entry.
func TestParseConfigNormalizes(t *testing.T) {
	cfg, err := ParseConfig("HTTP://B:8080/", "http://a:8080,http://b:8080", 64)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Self != "http://b:8080" {
		t.Errorf("Self = %q, want normalized", cfg.Self)
	}
}

// TestParseConfigErrors checks each operator mistake produces a message
// naming the actual problem — these strings are the daemon's startup
// diagnostics.
func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, self, peers string
		wantSub           string
	}{
		{"empty peers", "http://a:1", "", "-peers is empty"},
		{"missing self", "", "http://a:1,http://b:1", "without -self"},
		{"self not a URL", "://x", "http://a:1", "-self"},
		{"self missing scheme", "a:8080", "http://a:8080", "scheme"},
		{"peer bad scheme", "http://a:1", "http://a:1,ftp://b:1", `unsupported scheme "ftp"`},
		{"peer with path", "http://a:1", "http://a:1,http://b:1/api", "base URL"},
		{"stray comma", "http://a:1", "http://a:1,,http://b:1", "empty entry"},
		{"duplicate peer", "http://a:1", "http://a:1,http://b:1,HTTP://B:1/", "twice"},
		{"self not in peers", "http://c:1", "http://a:1,http://b:1", "not in -peers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.self, tc.peers, 64)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := func() Config {
		return Config{Self: "http://a:1", Peers: []string{"http://a:1"}}
	}
	c := base()
	c.SuspectAfter, c.DownAfter = 5, 2
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("suspect>down: err = %v", err)
	}
	c = base()
	c.VNodes = -1
	if err := c.Validate(); err == nil {
		t.Error("negative vnodes: want error")
	}
	c = base()
	c.ProbeInterval = -time.Second
	if err := c.Validate(); err == nil {
		t.Error("negative probe interval: want error")
	}
}

// TestNames pins the name assignment job-ID prefixes depend on: sorted
// peer order, "n0" upward.
func TestNames(t *testing.T) {
	m := names([]string{"http://a:1", "http://b:1", "http://c:1"})
	want := map[string]string{"http://a:1": "n0", "http://b:1": "n1", "http://c:1": "n2"}
	for url, n := range want {
		if m[url] != n {
			t.Errorf("names[%s] = %s, want %s", url, m[url], n)
		}
	}
}
