package cluster

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"joinopt/internal/obs"
)

// Member health states. A suspect member still owns its workloads (one
// slow probe must not reshuffle the ring); a down member is routed around
// and its replicated jobs are migrated.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDown    = "down"
)

// Cluster metric families, published into the service's obs registry.
const (
	// MetricForwards counts jobs this replica routed to another (kind=
	// proxy|redirect|fallback — fallback is a forward that failed and was
	// served locally so availability beats placement).
	MetricForwards = "joinopt_cluster_forwards_total"
	// MetricProbes counts health probes by result (ok|fail).
	MetricProbes = "joinopt_cluster_probes_total"
	// MetricMigrations counts jobs this replica adopted from another via a
	// replicated checkpoint (how=takeover|handoff).
	MetricMigrations = "joinopt_cluster_migrations_total"
	// MetricOwnershipChanges counts ring-affecting member transitions
	// (a member going down or coming back), each of which remaps the dead
	// member's share of the key space.
	MetricOwnershipChanges = "joinopt_cluster_ownership_changes_total"
	// MetricMembers gauges the fleet by state (state=alive|suspect|down).
	MetricMembers = "joinopt_cluster_members"
	// MetricStandbyJobs gauges the replicated jobs this replica holds in
	// standby for peers.
	MetricStandbyJobs = "joinopt_cluster_standby_jobs"
)

// Member is one replica's identity plus its probed health.
type Member struct {
	Name string `json:"name"` // stable short name ("n0"), the job-ID prefix
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`

	State    string `json:"state"`
	Failures int    `json:"failures,omitempty"` // consecutive probe failures
}

// Info is the GET /v1/cluster payload: the ring parameters and every
// member's probed state as this replica sees them.
type Info struct {
	Self        string   `json:"self"`
	VNodes      int      `json:"vnodes"`
	Members     []Member `json:"members"`
	StandbyJobs int      `json:"standby_jobs"`
	// Owner is the member owning the ?key= query parameter, when one was
	// given (routing introspection for operators and tests).
	Owner string `json:"owner,omitempty"`
}

// Cluster is one replica's membership view of the fleet: the static ring
// plus the probed health of every peer. The service layer consults it for
// routing (Owner), replication targets (StandbyTarget), and job-ID prefix
// naming (SelfName), and registers OnDown/OnUp hooks to migrate work.
type Cluster struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	log    *log.Logger

	selfName string
	nameOf   map[string]string // url → name
	urlOf    map[string]string // name → url

	mu      sync.Mutex
	health  map[string]*memberHealth // url → health (peers only, not self)
	onDown  []func(name string)
	onUp    []func(name string)
	started bool // probe loop launched; Stop only waits on doneCh if so

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	probesOK    *obs.Counter
	probesFail  *obs.Counter
	ownershipCh *obs.Counter
	metrics     *obs.Registry
}

type memberHealth struct {
	state    string
	failures int
}

// New builds a Cluster from a validated Config. Peers start alive — a
// replica booting before its peers must not immediately reroute their
// workloads; genuinely dead peers are discovered within DownAfter probes.
// Call Start to begin probing and Stop on shutdown. logger may be nil.
func New(cfg Config, m *obs.Registry, logger *log.Logger) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sorted := cfg.sortedPeers()
	ring, err := NewRing(sorted, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.New(noopWriter{}, "", 0)
	}
	if m == nil {
		m = obs.NewRegistry()
	}
	m.Describe(MetricForwards, "jobs routed to their owning replica, by kind")
	m.Describe(MetricProbes, "peer health probes, by result")
	m.Describe(MetricMigrations, "jobs adopted from another replica via a replicated checkpoint, by how")
	m.Describe(MetricOwnershipChanges, "ring-affecting member transitions (down or recovered)")
	m.Describe(MetricMembers, "fleet members by probed state")
	m.Describe(MetricStandbyJobs, "replicated peer jobs held in standby")

	c := &Cluster{
		cfg:         cfg,
		ring:        ring,
		client:      &http.Client{Timeout: cfg.ProbeTimeout},
		log:         logger,
		nameOf:      names(sorted),
		urlOf:       map[string]string{},
		health:      map[string]*memberHealth{},
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
		probesOK:    m.Counter(obs.Series(MetricProbes, "result", "ok")),
		probesFail:  m.Counter(obs.Series(MetricProbes, "result", "fail")),
		ownershipCh: m.Counter(MetricOwnershipChanges),
		metrics:     m,
	}
	for url, name := range c.nameOf {
		c.urlOf[name] = url
		if url != cfg.Self {
			c.health[url] = &memberHealth{state: StateAlive}
		}
	}
	c.selfName = c.nameOf[cfg.Self]
	c.publishMembers()
	return c, nil
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

// SelfName returns this replica's stable short name ("n0").
func (c *Cluster) SelfName() string { return c.selfName }

// SelfURL returns this replica's advertised base URL.
func (c *Cluster) SelfURL() string { return c.cfg.Self }

// Size returns the configured fleet size.
func (c *Cluster) Size() int { return len(c.urlOf) }

// PeerURL resolves a member name to its base URL.
func (c *Cluster) PeerURL(name string) (string, bool) {
	url, ok := c.urlOf[name]
	return url, ok
}

// OnDown registers a hook fired (from the probe loop) when a peer
// transitions to down; OnUp fires when a down peer recovers. Register
// before Start.
func (c *Cluster) OnDown(fn func(name string)) { c.onDown = append(c.onDown, fn) }

// OnUp registers a recovery hook. Register before Start.
func (c *Cluster) OnUp(fn func(name string)) { c.onUp = append(c.onUp, fn) }

// eligible reports whether a member (by URL) participates in routing: self
// always does, peers do unless probed down.
func (c *Cluster) eligible(url string) bool {
	if url == c.cfg.Self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.health[url]
	return ok && h.state != StateDown
}

// Owner returns the name and URL of the replica owning a workload key,
// considering only members not probed down. Self is always eligible, so
// Owner never fails.
func (c *Cluster) Owner(key string) (name, url string) {
	u := c.ring.OwnerAmong(key, c.eligible)
	return c.nameOf[u], u
}

// StandbyTarget returns the replica that would inherit key if its current
// owner left — the replication target for the owner's checkpoints. ok is
// false when the fleet has no other live member to replicate to.
func (c *Cluster) StandbyTarget(key string) (name, url string, ok bool) {
	u := c.ring.Successor(key, c.eligible)
	if u == "" {
		return "", "", false
	}
	return c.nameOf[u], u, true
}

// MemberState returns a peer's probed state (self is always alive).
func (c *Cluster) MemberState(name string) string {
	url, ok := c.urlOf[name]
	if !ok {
		return ""
	}
	if url == c.cfg.Self {
		return StateAlive
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.health[url]; ok {
		return h.state
	}
	return ""
}

// Snapshot renders this replica's fleet view for /v1/cluster. standbyJobs
// is supplied by the service (it owns the standby store); key, when
// non-empty, additionally resolves an owner.
func (c *Cluster) Snapshot(standbyJobs int, key string) Info {
	info := Info{Self: c.selfName, VNodes: c.cfg.VNodes, StandbyJobs: standbyJobs}
	c.mu.Lock()
	for _, url := range c.ring.Members() {
		m := Member{Name: c.nameOf[url], URL: url, Self: url == c.cfg.Self, State: StateAlive}
		if h, ok := c.health[url]; ok {
			m.State, m.Failures = h.state, h.failures
		}
		info.Members = append(info.Members, m)
	}
	c.mu.Unlock()
	if key != "" {
		info.Owner, _ = c.Owner(key)
	}
	return info
}

// Client returns the HTTP client sized for intra-cluster calls.
func (c *Cluster) Client() *http.Client { return c.client }

// Start launches the probe loop. Probing is per-peer sequential within one
// tick (fleets are small); a full sweep shares one tick.
func (c *Cluster) Start() {
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.doneCh)
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit. Idempotent, and
// safe on a Cluster whose Start was never called (only the probe goroutine
// closes doneCh, so waiting on it would otherwise deadlock error paths and
// tests that construct but never start a Cluster).
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.doneCh
	}
}

// probeAll sweeps every peer once.
func (c *Cluster) probeAll() {
	for url := range c.health {
		select {
		case <-c.stopCh:
			return
		default:
		}
		c.probe(url)
	}
}

// probe checks one peer's /healthz and applies the state transition rules:
// consecutive failures walk alive → suspect (SuspectAfter) → down
// (DownAfter); one success snaps back to alive. Transitions in and out of
// down remap ring ownership and fire the registered hooks.
func (c *Cluster) probe(url string) {
	ok := c.probeOnce(url)
	if ok {
		c.probesOK.Inc()
	} else {
		c.probesFail.Inc()
	}

	c.mu.Lock()
	h := c.health[url]
	var wasDown, nowDown bool
	wasDown = h.state == StateDown
	if ok {
		h.failures = 0
		h.state = StateAlive
	} else {
		h.failures++
		switch {
		case h.failures >= c.cfg.DownAfter:
			h.state = StateDown
		case h.failures >= c.cfg.SuspectAfter:
			h.state = StateSuspect
		}
	}
	nowDown = h.state == StateDown
	c.mu.Unlock()
	c.publishMembers()

	name := c.nameOf[url]
	switch {
	case nowDown && !wasDown:
		c.log.Printf("cluster: peer %s (%s) is down; rerouting its workloads", name, url)
		c.ownershipCh.Inc()
		for _, fn := range c.onDown {
			fn(name)
		}
	case wasDown && !nowDown:
		c.log.Printf("cluster: peer %s (%s) recovered; restoring its workloads", name, url)
		c.ownershipCh.Inc()
		for _, fn := range c.onUp {
			fn(name)
		}
	}
}

// ReportAlive records out-of-band evidence that a peer is alive — e.g. a
// standby replication message it just sent us — resetting its probe state
// exactly like a successful probe, with the recovery hook if it had been
// marked down. Without this a peer falsely probed down (a slow /healthz
// under load) keeps replicating checkpoints into a standby store that no
// future down-transition would ever migrate: its real death later is not
// a transition, so the hook never fires and the entries are stranded.
func (c *Cluster) ReportAlive(name string) {
	url, ok := c.urlOf[name]
	if !ok || url == c.cfg.Self {
		return
	}
	c.mu.Lock()
	h, ok := c.health[url]
	if !ok {
		c.mu.Unlock()
		return
	}
	wasDown := h.state == StateDown
	h.failures = 0
	h.state = StateAlive
	c.mu.Unlock()
	c.publishMembers()
	if !wasDown {
		return
	}
	c.log.Printf("cluster: peer %s (%s) proved alive by its own traffic; restoring its workloads", name, url)
	c.ownershipCh.Inc()
	for _, fn := range c.onUp {
		fn(name)
	}
}

// probeOnce performs one /healthz request.
func (c *Cluster) probeOnce(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// publishMembers refreshes the per-state member gauges.
func (c *Cluster) publishMembers() {
	counts := map[string]int{StateAlive: 1} // self
	c.mu.Lock()
	for _, h := range c.health {
		counts[h.state]++
	}
	c.mu.Unlock()
	for _, st := range []string{StateAlive, StateSuspect, StateDown} {
		c.metrics.Gauge(obs.Series(MetricMembers, "state", st)).Set(float64(counts[st]))
	}
}

// String renders the fleet for logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{self=%s peers=%d vnodes=%d}", c.selfName, c.Size(), c.cfg.VNodes)
}
