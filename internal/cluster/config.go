package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Config declares one replica's view of the fleet. Every replica must be
// started with the same peer list (order irrelevant — it is sorted) and the
// same VNodes, or they will compute different rings and route the same
// workload to different owners.
type Config struct {
	// Self is this replica's advertised base URL. It must appear in Peers.
	Self string
	// Peers lists every replica's base URL, including Self.
	Peers []string
	// VNodes is the virtual nodes per member on the ring (default 64).
	VNodes int
	// ProbeInterval is how often each peer's /healthz is probed (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default ProbeInterval/2).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive probe failures that mark a peer
	// suspect (default 2); DownAfter marks it down and reroutes its
	// workloads (default 4). SuspectAfter must not exceed DownAfter.
	SuspectAfter int
	// DownAfter is the consecutive probe failures that mark a peer down.
	DownAfter int
}

// ParseConfig validates the -self/-peers flag values into a Config,
// returning descriptive errors for the configuration mistakes operators
// actually make — malformed URLs, a self address missing from the peer
// list, duplicated peers — instead of letting the daemon boot and fail on
// its first probe or, worse, route against a ring its peers do not share.
func ParseConfig(self, peersCSV string, vnodes int) (Config, error) {
	cfg := Config{VNodes: vnodes}
	if peersCSV == "" {
		return cfg, fmt.Errorf("cluster: -peers is empty; list every replica's base URL, including this one (-self)")
	}
	if self == "" {
		return cfg, fmt.Errorf("cluster: -peers given without -self; every replica must know its own advertised URL")
	}
	normSelf, err := normalizePeerURL(self)
	if err != nil {
		return cfg, fmt.Errorf("cluster: -self %q: %w", self, err)
	}
	cfg.Self = normSelf

	seen := map[string]string{} // normalized → as written
	for _, raw := range strings.Split(peersCSV, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return cfg, fmt.Errorf("cluster: -peers %q has an empty entry (stray comma?)", peersCSV)
		}
		norm, err := normalizePeerURL(raw)
		if err != nil {
			return cfg, fmt.Errorf("cluster: -peers entry %q: %w", raw, err)
		}
		if prev, dup := seen[norm]; dup {
			return cfg, fmt.Errorf("cluster: -peers lists %q twice (as %q and %q); each replica appears exactly once", norm, prev, raw)
		}
		seen[norm] = raw
		cfg.Peers = append(cfg.Peers, norm)
	}
	if _, ok := seen[cfg.Self]; !ok {
		return cfg, fmt.Errorf("cluster: -self %s is not in -peers (%s); the peer list is the whole fleet and must include this replica",
			cfg.Self, strings.Join(cfg.Peers, ", "))
	}
	return cfg, cfg.Validate()
}

// Validate applies defaults and rejects inconsistent knob combinations.
func (c *Config) Validate() error {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.VNodes < 1 {
		return fmt.Errorf("cluster: vnodes must be >= 1, got %d", c.VNodes)
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeInterval < 0 {
		return fmt.Errorf("cluster: probe interval must be positive, got %s", c.ProbeInterval)
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.ProbeTimeout < 0 {
		return fmt.Errorf("cluster: probe timeout must be positive, got %s", c.ProbeTimeout)
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 2
	}
	if c.DownAfter == 0 {
		c.DownAfter = 4
	}
	if c.SuspectAfter < 1 || c.DownAfter < 1 {
		return fmt.Errorf("cluster: suspect-after (%d) and down-after (%d) must be >= 1", c.SuspectAfter, c.DownAfter)
	}
	if c.SuspectAfter > c.DownAfter {
		return fmt.Errorf("cluster: suspect-after (%d) exceeds down-after (%d); a peer cannot go down before it is suspect", c.SuspectAfter, c.DownAfter)
	}
	if len(c.Peers) == 0 {
		return fmt.Errorf("cluster: peer list is empty")
	}
	return nil
}

// normalizePeerURL canonicalizes one peer base URL so that spelling
// variants ("HTTP://Host:8080/", "http://host:8080") compare equal across
// replicas' flag values.
func normalizePeerURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("not a URL: %w", err)
	}
	switch u.Scheme {
	case "http", "https":
	case "":
		return "", fmt.Errorf("missing scheme (want http:// or https://)")
	default:
		return "", fmt.Errorf("unsupported scheme %q (want http or https)", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	if u.RawQuery != "" || u.Fragment != "" || (u.Path != "" && u.Path != "/") {
		return "", fmt.Errorf("must be a base URL (scheme://host[:port]), got extra path or query")
	}
	u.Scheme = strings.ToLower(u.Scheme)
	u.Host = strings.ToLower(u.Host)
	u.Path = ""
	return u.String(), nil
}

// names assigns each sorted peer its stable short name ("n0", "n1", …),
// which prefixes cluster job IDs ("n1-j000042") so any replica can route a
// job lookup to the replica that created it. The mapping is a pure function
// of the sorted peer list, so all replicas agree on it.
func names(sortedPeers []string) map[string]string {
	byURL := make(map[string]string, len(sortedPeers))
	for i, p := range sortedPeers {
		byURL[p] = fmt.Sprintf("n%d", i)
	}
	return byURL
}

// sortedPeers returns the canonical (sorted) peer ordering.
func (c *Config) sortedPeers() []string {
	s := append([]string(nil), c.Peers...)
	sort.Strings(s)
	return s
}
