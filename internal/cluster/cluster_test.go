package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"joinopt/internal/obs"
)

// testFleet builds a two-member cluster where the peer is an httptest
// server whose /healthz can be flipped between 200 and dead.
func testFleet(t *testing.T, peerOK *atomic.Bool) (*Cluster, *httptest.Server) {
	t.Helper()
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !peerOK.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	t.Cleanup(peer.Close)

	cfg := Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", peer.URL},
		VNodes:        16,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		SuspectAfter:  2,
		DownAfter:     4,
	}
	c, err := New(cfg, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, peer
}

// TestProbeTransitions drives a peer through alive → suspect → down →
// alive and checks the state machine, the hooks, and that routing
// eligibility follows.
func TestProbeTransitions(t *testing.T) {
	var peerOK atomic.Bool
	peerOK.Store(true)
	c, peer := testFleet(t, &peerOK)
	peerName := c.nameOf[peer.URL]

	var downs, ups atomic.Int64
	c.OnDown(func(name string) {
		if name == peerName {
			downs.Add(1)
		}
	})
	c.OnUp(func(name string) {
		if name == peerName {
			ups.Add(1)
		}
	})
	c.Start()
	defer c.Stop()

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.MemberState(peerName) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer never reached state %q (now %q)", want, c.MemberState(peerName))
	}

	waitState(StateAlive)

	// Pick a key the peer owns while alive, to watch ownership move.
	var peerKey string
	for _, k := range syntheticKeys(200) {
		if _, url := c.Owner(k); url == peer.URL {
			peerKey = k
			break
		}
	}
	if peerKey == "" {
		t.Fatal("no key owned by peer")
	}

	peerOK.Store(false)
	waitState(StateDown)
	if got := downs.Load(); got < 1 {
		t.Errorf("OnDown fired %d times, want >= 1", got)
	}
	if name, _ := c.Owner(peerKey); name != c.SelfName() {
		t.Errorf("down peer still owns %q (owner %s)", peerKey, name)
	}
	// With only two members, a down peer leaves no standby target.
	if _, _, ok := c.StandbyTarget(peerKey); ok {
		t.Error("standby target exists with the only peer down")
	}

	peerOK.Store(true)
	waitState(StateAlive)
	if got := ups.Load(); got < 1 {
		t.Errorf("OnUp fired %d times, want >= 1", got)
	}
	if _, url := c.Owner(peerKey); url != peer.URL {
		t.Errorf("recovered peer did not regain %q", peerKey)
	}
}

// TestSuspectKeepsOwnership: a suspect member must keep routing its
// workloads — only down reroutes.
func TestSuspectKeepsOwnership(t *testing.T) {
	var peerOK atomic.Bool
	peerOK.Store(true)
	c, peer := testFleet(t, &peerOK)
	peerName := c.nameOf[peer.URL]

	var peerKey string
	for _, k := range syntheticKeys(200) {
		if _, url := c.Owner(k); url == peer.URL {
			peerKey = k
			break
		}
	}
	peerOK.Store(false)
	// Probe by hand: exactly SuspectAfter failures.
	for i := 0; i < c.cfg.SuspectAfter; i++ {
		c.probe(peer.URL)
	}
	if got := c.MemberState(peerName); got != StateSuspect {
		t.Fatalf("state after %d failures = %s, want suspect", c.cfg.SuspectAfter, got)
	}
	if _, url := c.Owner(peerKey); url != peer.URL {
		t.Error("suspect peer lost ownership; only down should reroute")
	}
}

// TestReportAlive: out-of-band traffic from a peer resets its probe state
// like a successful probe — a down peer fires OnUp and regains ownership,
// and accumulated failures are wiped so the next real death is a fresh
// transition (the property standby acceptance depends on: entries must
// never be stranded behind a stale false-down).
func TestReportAlive(t *testing.T) {
	var peerOK atomic.Bool
	c, peer := testFleet(t, &peerOK) // peerOK false: every probe fails
	peerName := c.nameOf[peer.URL]

	var ups atomic.Int64
	c.OnUp(func(name string) {
		if name == peerName {
			ups.Add(1)
		}
	})
	for i := 0; i < c.cfg.DownAfter; i++ {
		c.probe(peer.URL)
	}
	if got := c.MemberState(peerName); got != StateDown {
		t.Fatalf("state after %d failures = %s, want down", c.cfg.DownAfter, got)
	}

	c.ReportAlive(peerName)
	if got := c.MemberState(peerName); got != StateAlive {
		t.Fatalf("state after ReportAlive = %s, want alive", got)
	}
	if got := ups.Load(); got != 1 {
		t.Errorf("OnUp fired %d times, want 1", got)
	}

	// Failures were reset: going down again takes DownAfter fresh probes.
	for i := 0; i < c.cfg.DownAfter-1; i++ {
		c.probe(peer.URL)
	}
	if got := c.MemberState(peerName); got == StateDown {
		t.Errorf("peer down after %d failures; ReportAlive did not reset the count", c.cfg.DownAfter-1)
	}
	c.probe(peer.URL)
	if got := c.MemberState(peerName); got != StateDown {
		t.Errorf("peer not down after %d fresh failures (state %s)", c.cfg.DownAfter, got)
	}

	// Unknown names and self are ignored.
	c.ReportAlive("nope")
	c.ReportAlive(c.SelfName())
}

// TestSnapshot sanity-checks the /v1/cluster payload fields.
func TestSnapshot(t *testing.T) {
	var peerOK atomic.Bool
	peerOK.Store(true)
	c, peer := testFleet(t, &peerOK)

	info := c.Snapshot(3, "HQ-EX_n1000-0_s1_k0")
	if info.Self != c.SelfName() || info.VNodes != 16 || info.StandbyJobs != 3 {
		t.Errorf("snapshot header: %+v", info)
	}
	if len(info.Members) != 2 {
		t.Fatalf("members: %+v", info.Members)
	}
	if info.Owner == "" {
		t.Error("?key= owner not resolved")
	}
	var selfSeen bool
	for _, m := range info.Members {
		if m.Self {
			selfSeen = true
		}
		if m.URL == peer.URL && m.Name == "" {
			t.Error("peer member missing name")
		}
	}
	if !selfSeen {
		t.Error("no member marked self")
	}
}

// TestMetrics: probes and member gauges land in the shared registry.
func TestMetrics(t *testing.T) {
	var peerOK atomic.Bool
	peerOK.Store(true)
	reg := obs.NewRegistry()
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	}))
	defer peer.Close()
	cfg := Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", peer.URL},
		ProbeInterval: 10 * time.Millisecond,
	}
	c, err := New(cfg, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.probe(peer.URL)
	if got := reg.Counter(obs.Series(MetricProbes, "result", "ok")).Value(); got < 1 {
		t.Errorf("probes ok = %v, want >= 1", got)
	}
	if got := reg.Gauge(obs.Series(MetricMembers, "state", StateAlive)).Value(); got != 2 {
		t.Errorf("alive members gauge = %v, want 2", got)
	}
}

// TestStopWithoutStart: Stop on a Cluster whose probe loop never launched
// must return instead of waiting forever on the channel only that loop
// closes — error paths and tests construct Clusters they never Start.
func TestStopWithoutStart(t *testing.T) {
	cfg := Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", "http://peer.invalid:2"},
		ProbeInterval: 10 * time.Millisecond,
	}
	c, err := New(cfg, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		c.Stop()
		c.Stop() // still idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked without Start")
	}
}
