package cluster

import (
	"fmt"
	"testing"
)

// syntheticKeys mimics the shape of real workload keys (cacheNamespace
// output) so the balance bound is measured on what the ring will actually
// hash, not on random strings.
func syntheticKeys(n int) []string {
	rels := []string{"HQ-EX", "HQ-MG", "EX-MG", "q_HQ-EX-MG_j0.1_j1.2"}
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, fmt.Sprintf("%s_n%d-0_s%d_k%d", rels[i%len(rels)], 100+i*7, i%29, (i%3)*10))
	}
	return keys
}

func members(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return ms
}

// TestRingBalance pins the load-balance property that justifies the
// SplitMix64 finalizer in ringHash: at 64 vnodes, no member's share of a
// large key population exceeds twice any other's, for fleets from 2 to 8.
// (Raw FNV-1a on sequential vnode labels measured up to 19x.)
func TestRingBalance(t *testing.T) {
	keys := syntheticKeys(20000)
	for n := 2; n <= 8; n++ {
		r, err := NewRing(members(n), 64)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		min, max := len(keys), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if ratio := float64(max) / float64(min); ratio > 2.0 {
			t.Errorf("n=%d: max/min ownership ratio %.2f > 2.0 (min=%d max=%d)", n, ratio, min, max)
		}
	}
}

// TestRingMinimalMovement checks the property consistent hashing exists
// for: adding a member moves keys only TO the joiner (about 1/n of them),
// and removing it moves exactly those keys back — nothing else shuffles.
func TestRingMinimalMovement(t *testing.T) {
	keys := syntheticKeys(10000)
	base := members(4)
	joiner := "http://10.0.0.99:8080"

	small, err := NewRing(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(append(append([]string(nil), base...), joiner), 64)
	if err != nil {
		t.Fatal(err)
	}

	moved := 0
	for _, k := range keys {
		before, after := small.Owner(k), big.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != joiner {
			t.Fatalf("key %q moved %s → %s, not to the joiner", k, before, after)
		}
	}
	// Ideal share is 1/5 of the keys; allow generous slack around it but
	// fail on wholesale reshuffling (or a joiner that got nothing).
	if frac := float64(moved) / float64(len(keys)); frac < 0.10 || frac > 0.35 {
		t.Errorf("join moved %.1f%% of keys; want roughly the joiner's fair share (20%%)", frac*100)
	}

	// Leave = the same comparison in reverse: the big ring with the joiner
	// filtered out must agree with the small ring everywhere.
	notJoiner := func(m string) bool { return m != joiner }
	for _, k := range keys {
		if got, want := big.OwnerAmong(k, notJoiner), small.Owner(k); got != want {
			t.Fatalf("key %q: owner after leave %s, want %s", k, got, want)
		}
	}
}

// TestRingOwnershipGolden pins ringHash and the vnode label format: every
// replica must compute the identical ring from the same peer list, so a
// change to either is a cluster-wide flag day and must show up here.
func TestRingOwnershipGolden(t *testing.T) {
	r, err := NewRing([]string{
		"http://127.0.0.1:9001",
		"http://127.0.0.1:9002",
		"http://127.0.0.1:9003",
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"HQ-EX_n1000-0_s1_k0":                       "http://127.0.0.1:9002",
		"HQ-EX_n1500-0_s21_k0":                      "http://127.0.0.1:9002",
		"HQ-MG_n1000-0_s1_k0":                       "http://127.0.0.1:9003",
		"EX-MG_n2000-0_s7_k10":                      "http://127.0.0.1:9003",
		"q_HQ-EX-MG_j0.1_j1.2_n1000-0_s1_k0":        "http://127.0.0.1:9002",
		"HQ-EX_n500-0_s21_k0":                       "http://127.0.0.1:9003",
		"MG-MG_n800-800_s3_k0":                      "http://127.0.0.1:9003",
		"q_HQ-EX-HQ-EX_j0.1_j1.2_j2.3_n400-0_s5_k0": "http://127.0.0.1:9003",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %s, want %s (ring hash or vnode label format changed: flag day)", key, got, want)
		}
	}
}

// TestRingSuccessor checks the invariant the migration design leans on:
// Successor(key) is exactly who Owner(key) becomes once the current owner
// is ineligible — so replicating checkpoints to the successor places them
// on the replica that will inherit the job.
func TestRingSuccessor(t *testing.T) {
	r, err := NewRing(members(5), 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range syntheticKeys(2000) {
		owner := r.Owner(k)
		succ := r.Successor(k, nil)
		if succ == owner {
			t.Fatalf("key %q: successor == owner (%s)", k, owner)
		}
		inherited := r.OwnerAmong(k, func(m string) bool { return m != owner })
		if succ != inherited {
			t.Fatalf("key %q: successor %s but owner-after-death %s", k, succ, inherited)
		}
	}

	// A single-member ring has no successor to replicate to.
	solo, err := NewRing(members(1), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := solo.Successor("HQ-EX_n1000-0_s1_k0", nil); got != "" {
		t.Errorf("single-member successor = %q, want empty", got)
	}
}

// TestRingDeterminism: member order at construction is irrelevant.
func TestRingDeterminism(t *testing.T) {
	ms := members(4)
	r1, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	rev := []string{ms[3], ms[1], ms[0], ms[2]}
	r2, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range syntheticKeys(1000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %q: owner differs by construction order", k)
		}
	}
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty member list: want error")
	}
	if _, err := NewRing([]string{"a", "a"}, 64); err == nil {
		t.Error("duplicate member: want error")
	}
	if _, err := NewRing([]string{"a"}, 0); err == nil {
		t.Error("zero vnodes: want error")
	}
}
