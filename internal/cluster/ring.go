// Package cluster federates N joinoptd replicas into one logical service.
// Three pieces compose it: a consistent-hash ring (virtual nodes over the
// canonical workload key) that gives every workload one owner — the replica
// holding its trained machinery and warmed cache tiers; static peer-list
// membership with periodic /healthz probing and alive → suspect → down
// state transitions; and the standby/migration plumbing the service layer
// drives — checkpoint snapshots of running adaptive jobs are replicated to
// the replica that would inherit the workload, so a dead or draining owner's
// jobs resume elsewhere bit-identical to an uninterrupted run.
//
// The package deliberately has no consensus: the peer list is static
// configuration, identical on every replica, and the ring is a pure
// function of it — two replicas can disagree transiently about who is down,
// but never about who owns a key among the members they both consider up.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringHash hashes vnode labels and workload keys onto the ring. FNV-1a
// alone clusters badly on the near-identical strings vnode labels are
// ("…#17", "…#18"), so a SplitMix64 finalizer scrambles it; with 64 vnodes
// this keeps every member's key share within ~1.6x of fair for fleets up to
// 8 replicas (pinned by TestRingBalance). The function is part of the wire
// contract: every replica must compute identical rings, so changing it is a
// cluster-wide flag day (TestRingOwnershipGolden pins it).
func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	x := f.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ringPoint is one virtual node: a position on the ring and the member it
// credits keys to.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over a fixed member set. It is immutable
// after construction — membership changes are expressed at lookup time via
// the eligibility filter, not by rebuilding the ring, so "member X is down"
// moves exactly the keys X owned and nothing else.
type Ring struct {
	vnodes  int
	members []string // sorted, distinct
	points  []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per member. Members must
// be non-empty and distinct; they are sorted so every replica builds the
// identical ring from the same peer list regardless of flag order.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: vnodes must be >= 1, got %d", vnodes)
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", sorted[i])
		}
	}
	r := &Ring{vnodes: vnodes, members: sorted}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, m := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", m, i)), m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Members returns the sorted member list the ring was built over.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the virtual nodes per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.OwnerAmong(key, nil)
}

// OwnerAmong returns the first member clockwise from key whose eligible(m)
// is true (nil eligible admits every member). This is how membership folds
// into routing: pass "not down" and the keys of a dead member redistribute
// exactly as if it had been removed from the ring — every other ownership
// stays put. Returns "" when no member is eligible.
func (r *Ring) OwnerAmong(key string, eligible func(member string) bool) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for scanned := 0; scanned < len(r.points); scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if eligible == nil || eligible(p.member) {
			return p.member
		}
	}
	return ""
}

// Successor returns the member that inherits key if its current owner
// leaves: the first member clockwise that is neither the owner nor
// ineligible. It is where a checkpoint must be replicated so the key's jobs
// survive the owner — by construction it IS OwnerAmong(key, eligible-minus-
// owner). Returns "" when the owner is the only eligible member.
func (r *Ring) Successor(key string, eligible func(member string) bool) string {
	owner := r.OwnerAmong(key, eligible)
	if owner == "" {
		return ""
	}
	return r.OwnerAmong(key, func(m string) bool {
		return m != owner && (eligible == nil || eligible(m))
	})
}
