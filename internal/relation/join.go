package relation

import "sort"

// JoinTuple is one result of the natural join R1 ⋈ R2 on the shared join
// attribute: ⟨A, B, C⟩ where ⟨A, B⟩ ∈ R1 and ⟨A, C⟩ ∈ R2.
type JoinTuple struct {
	A string // join-attribute value
	B string // R1's second attribute
	C string // R2's second attribute
}

// JoinResult accumulates join output tuples with good/bad labels. A join
// tuple is good iff both contributing base tuples are good (§III-C,
// Figure 2); every other combination is bad.
type JoinResult struct {
	tuples map[JoinTuple]bool // tuple -> good?
}

// NewJoinResult returns an empty result set.
func NewJoinResult() *JoinResult {
	return &JoinResult{tuples: map[JoinTuple]bool{}}
}

// Add records a join tuple with its label. Re-adding keeps the tuple good
// only if every observation was good (labels are stable in practice because
// goodness is a function of the base tuples).
func (r *JoinResult) Add(t JoinTuple, good bool) {
	if prev, ok := r.tuples[t]; ok {
		r.tuples[t] = prev && good
		return
	}
	r.tuples[t] = good
}

// Counts returns |Tgood⋈| and |Tbad⋈|: the numbers of good and bad join
// tuples produced so far.
func (r *JoinResult) Counts() (good, bad int) {
	for _, g := range r.tuples {
		if g {
			good++
		} else {
			bad++
		}
	}
	return good, bad
}

// Size returns the number of distinct join tuples.
func (r *JoinResult) Size() int { return len(r.tuples) }

// Tuples returns all join tuples with labels in deterministic order.
func (r *JoinResult) Tuples() []LabeledJoinTuple {
	out := make([]LabeledJoinTuple, 0, len(r.tuples))
	for t, g := range r.tuples {
		out = append(out, LabeledJoinTuple{Tuple: t, Good: g})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Tuple, out[j].Tuple
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	return out
}

// LabeledJoinTuple pairs a join tuple with its good/bad label.
type LabeledJoinTuple struct {
	Tuple JoinTuple
	Good  bool
}

// Join computes the full natural join of two extracted relations on the
// shared join attribute (A1 of both) and returns the labelled result. The
// labels come from the relations' gold sets: a join tuple is good iff both
// base tuples are good.
func Join(r1, r2 *Extracted) *JoinResult {
	out := NewJoinResult()
	// Index r2 by join value.
	byVal := map[string][]Tuple{}
	for _, t := range r2.Tuples() {
		byVal[t.A1] = append(byVal[t.A1], t)
	}
	for _, t1 := range r1.Tuples() {
		good1 := r1.gold == nil || r1.gold.IsGood(t1)
		for _, t2 := range byVal[t1.A1] {
			good2 := r2.gold == nil || r2.gold.IsGood(t2)
			out.Add(JoinTuple{A: t1.A1, B: t1.A2, C: t2.A2}, good1 && good2)
		}
	}
	return out
}

// JoinNew joins only the newly added tuples newT of r1 against all of r2 and
// records results into acc. This is the incremental step used by the ripple-
// style join executors: Tjoin = (t1 ⋈ Tr2).
func JoinNew(acc *JoinResult, r1 *Extracted, newT []Tuple, r2 *Extracted) {
	byVal := map[string][]Tuple{}
	for _, t := range r2.Tuples() {
		byVal[t.A1] = append(byVal[t.A1], t)
	}
	for _, t1 := range newT {
		good1 := r1.gold == nil || r1.gold.IsGood(t1)
		for _, t2 := range byVal[t1.A1] {
			good2 := r2.gold == nil || r2.gold.IsGood(t2)
			acc.Add(JoinTuple{A: t1.A1, B: t1.A2, C: t2.A2}, good1 && good2)
		}
	}
}

// OverlapSets are the attribute-value overlap cardinalities of §V-A:
// Agg = |Ag1 ∩ Ag2|, Agb = |Ag1 ∩ Ab2|, Abg = |Ab1 ∩ Ag2|,
// Abb = |Ab1 ∩ Ab2|, where Agi/Abi are the sets of join-attribute values
// with good/bad occurrences in relation Ri.
type OverlapSets struct {
	Agg int
	Agb int
	Abg int
	Abb int
}

// GoldValueSets extracts, from a gold set, the join-attribute values with
// good occurrences (values appearing in some good tuple) and with bad
// occurrences (values appearing in some bad tuple). A value can be in both,
// like "Microsoft" in Figure 1 of the paper.
func GoldValueSets(g *Gold) (goodVals, badVals map[string]bool) {
	goodVals = map[string]bool{}
	badVals = map[string]bool{}
	for t := range g.Good {
		goodVals[t.A1] = true
	}
	for t := range g.Bad {
		badVals[t.A1] = true
	}
	return goodVals, badVals
}

// Overlaps computes the four overlap cardinalities between the gold value
// sets of two extraction tasks.
func Overlaps(g1, g2 *Gold) OverlapSets {
	good1, bad1 := GoldValueSets(g1)
	good2, bad2 := GoldValueSets(g2)
	var o OverlapSets
	for v := range good1 {
		if good2[v] {
			o.Agg++
		}
		if bad2[v] {
			o.Agb++
		}
	}
	for v := range bad1 {
		if good2[v] {
			o.Abg++
		}
		if bad2[v] {
			o.Abb++
		}
	}
	return o
}
