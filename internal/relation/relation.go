// Package relation defines the data model for relations extracted from text:
// binary tuples, good/bad classification against gold sets, attribute-value
// occurrence accounting (the Ag/Ab sets of the paper), value-overlap sets
// (Agg, Agb, Abg, Abb), and the in-memory natural join with good/bad output
// composition (§III-C of the paper).
package relation

import (
	"fmt"
	"sort"
)

// Schema names a binary relation and its two attributes. The first attribute
// is conventionally the join attribute (e.g. Company) shared across
// extraction tasks.
type Schema struct {
	Name  string
	Attr1 string
	Attr2 string
}

// String renders the schema as Name⟨Attr1, Attr2⟩.
func (s Schema) String() string {
	return fmt.Sprintf("%s(%s, %s)", s.Name, s.Attr1, s.Attr2)
}

// Tuple is a binary extracted tuple. A1 holds the join-attribute value.
type Tuple struct {
	A1 string
	A2 string
}

// String renders the tuple as ⟨A1, A2⟩.
func (t Tuple) String() string { return fmt.Sprintf("<%s, %s>", t.A1, t.A2) }

// Gold is the ground truth for one extraction task over one database: the
// sets of good tuples (correct facts expressed in the database) and bad
// tuples (erroneous tuples the extraction system could produce from the
// database's deceptive contexts). The corpus generator retains Gold so that
// output tuples can be labelled exactly — the role tuple verification plays
// in the paper's evaluation (§VII).
type Gold struct {
	Schema Schema
	Good   map[Tuple]bool
	Bad    map[Tuple]bool
}

// NewGold returns an empty gold set for schema.
func NewGold(schema Schema) *Gold {
	return &Gold{Schema: schema, Good: map[Tuple]bool{}, Bad: map[Tuple]bool{}}
}

// AddGood registers t as a good tuple.
func (g *Gold) AddGood(t Tuple) { g.Good[t] = true }

// AddBad registers t as a bad tuple.
func (g *Gold) AddBad(t Tuple) { g.Bad[t] = true }

// IsGood reports whether t is a good tuple.
func (g *Gold) IsGood(t Tuple) bool { return g.Good[t] }

// Known reports whether t is a known (good or bad) tuple of this task.
func (g *Gold) Known(t Tuple) bool { return g.Good[t] || g.Bad[t] }

// Extracted is a relation instance built up during a join execution: the
// multiset of tuples an IE system has emitted so far, de-duplicated by tuple
// but with per-value occurrence counts retained (gri(a)/bri(a) in the
// paper's notation: the number of retrieved documents in which the value was
// observed).
type Extracted struct {
	Schema Schema
	gold   *Gold

	tuples map[Tuple]int // tuple -> number of document occurrences

	goodOcc map[string]int // join-attribute value -> good occurrences gr(a)
	badOcc  map[string]int // join-attribute value -> bad occurrences br(a)
}

// NewExtracted returns an empty extracted relation labelled against gold.
// gold may be nil, in which case all tuples are treated as good (useful for
// unit tests of pure join mechanics).
func NewExtracted(schema Schema, gold *Gold) *Extracted {
	return &Extracted{
		Schema:  schema,
		gold:    gold,
		tuples:  map[Tuple]int{},
		goodOcc: map[string]int{},
		badOcc:  map[string]int{},
	}
}

// Add records one document occurrence of tuple t. It reports whether the
// tuple is good per the gold set.
func (e *Extracted) Add(t Tuple) bool {
	e.tuples[t]++
	good := e.gold == nil || e.gold.IsGood(t)
	if good {
		e.goodOcc[t.A1]++
	} else {
		e.badOcc[t.A1]++
	}
	return good
}

// Size returns the number of distinct tuples.
func (e *Extracted) Size() int { return len(e.tuples) }

// Occurrences returns the number of document occurrences recorded for t.
func (e *Extracted) Occurrences(t Tuple) int { return e.tuples[t] }

// Tuples returns the distinct tuples in deterministic order.
func (e *Extracted) Tuples() []Tuple {
	out := make([]Tuple, 0, len(e.tuples))
	for t := range e.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A1 != out[j].A1 {
			return out[i].A1 < out[j].A1
		}
		return out[i].A2 < out[j].A2
	})
	return out
}

// GoodOcc returns gr(a): the number of good occurrences of join-attribute
// value a observed so far.
func (e *Extracted) GoodOcc(a string) int { return e.goodOcc[a] }

// BadOcc returns br(a): the number of bad occurrences of join-attribute
// value a observed so far.
func (e *Extracted) BadOcc(a string) int { return e.badOcc[a] }

// GoodBadCounts returns the number of good and bad distinct tuples.
func (e *Extracted) GoodBadCounts() (good, bad int) {
	for t := range e.tuples {
		if e.gold == nil || e.gold.IsGood(t) {
			good++
		} else {
			bad++
		}
	}
	return good, bad
}

// JoinValues returns the distinct join-attribute values present, in
// deterministic order.
func (e *Extracted) JoinValues() []string {
	seen := map[string]bool{}
	for t := range e.tuples {
		seen[t.A1] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
