package relation

// N-ary extensions of the value-overlap machinery, supporting the paper's
// stated future work (higher-order joins, §III-C): an n-way natural join on
// the shared attribute composes per-value occurrence products across n
// relations, and its quality analysis needs the value counts of every
// good/bad class combination — the 2^n generalization of Agg/Agb/Abg/Abb.

// ClassMask encodes one good/bad class combination across n relations: bit
// i is set when the value has good occurrences in relation i, clear when it
// has bad occurrences there. A value belongs to every mask it satisfies
// (values with both good and bad occurrences in a relation satisfy both bit
// settings for that relation), exactly as a value can be in both Agi and
// Abi in the binary analysis.
type ClassMask uint8

// AllGood returns the mask with the low n bits set — the class whose
// composition yields good join tuples.
func AllGood(n int) ClassMask { return ClassMask(1<<n) - 1 }

// MultiOverlaps computes, for every class mask over the given gold sets,
// the number of join values in that class: |∩_i A_{class_i, i}|. The result
// has 2^n entries (some possibly zero).
func MultiOverlaps(golds []*Gold) map[ClassMask]int {
	n := len(golds)
	goodSets := make([]map[string]bool, n)
	badSets := make([]map[string]bool, n)
	universe := map[string]bool{}
	for i, g := range golds {
		goodSets[i], badSets[i] = GoldValueSets(g)
		for v := range goodSets[i] {
			universe[v] = true
		}
		for v := range badSets[i] {
			universe[v] = true
		}
	}
	out := map[ClassMask]int{}
	for v := range universe {
		// Memberships per relation.
		var inGood, inBad ClassMask
		for i := 0; i < n; i++ {
			if goodSets[i][v] {
				inGood |= 1 << i
			}
			if badSets[i][v] {
				inBad |= 1 << i
			}
		}
		// The value counts toward every mask m where, per relation, the
		// required membership holds.
		for m := ClassMask(0); m < 1<<n; m++ {
			ok := true
			for i := 0; i < n; i++ {
				bit := ClassMask(1) << i
				if m&bit != 0 {
					if inGood&bit == 0 {
						ok = false
						break
					}
				} else if inBad&bit == 0 {
					ok = false
					break
				}
			}
			if ok {
				out[m]++
			}
		}
	}
	return out
}
