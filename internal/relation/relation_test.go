package relation

import (
	"testing"
	"testing/quick"
)

func exampleGold(schema Schema) *Gold {
	g := NewGold(schema)
	return g
}

// figure2Relations builds the example of Figure 2 in the paper:
// R1 has good values {a, c} and bad values {b, d, e};
// R2 has good values {a, b} and bad values {x, c, e}.
// The composition yields |Tgood⋈| = 1 and |Tbad⋈| = 3.
func figure2Relations(t *testing.T) (*Extracted, *Extracted) {
	t.Helper()
	s1 := Schema{Name: "R1", Attr1: "A", Attr2: "B"}
	s2 := Schema{Name: "R2", Attr1: "A", Attr2: "C"}
	g1 := exampleGold(s1)
	g2 := exampleGold(s2)
	// Use the second attribute to make tuples distinct; goodness is driven
	// by the A-value membership of the paper's example.
	mk := func(a string) Tuple { return Tuple{A1: a, A2: "v-" + a} }
	for _, a := range []string{"a", "c"} {
		g1.AddGood(mk(a))
	}
	for _, a := range []string{"b", "d", "e"} {
		g1.AddBad(mk(a))
	}
	for _, a := range []string{"a", "b"} {
		g2.AddGood(mk(a))
	}
	for _, a := range []string{"x", "c", "e"} {
		g2.AddBad(mk(a))
	}
	r1 := NewExtracted(s1, g1)
	r2 := NewExtracted(s2, g2)
	for _, a := range []string{"a", "b", "c", "d", "e"} {
		r1.Add(mk(a))
	}
	for _, a := range []string{"a", "x", "b", "e", "c"} {
		r2.Add(mk(a))
	}
	return r1, r2
}

func TestFigure2JoinComposition(t *testing.T) {
	r1, r2 := figure2Relations(t)
	res := Join(r1, r2)
	good, bad := res.Counts()
	if good != 1 || bad != 3 {
		t.Errorf("Figure 2 composition: got good=%d bad=%d, want good=1 bad=3", good, bad)
	}
	if res.Size() != 4 {
		t.Errorf("join size %d, want 4 (values a, b, c, e)", res.Size())
	}
}

func TestFigure2Overlaps(t *testing.T) {
	r1, r2 := figure2Relations(t)
	o := Overlaps(r1.gold, r2.gold)
	want := OverlapSets{Agg: 1, Agb: 1, Abg: 1, Abb: 1}
	if o != want {
		t.Errorf("overlaps %+v, want %+v (Agg={a}, Agb={c}, Abg={b}, Abb={e})", o, want)
	}
}

func TestExtractedOccurrenceCounting(t *testing.T) {
	s := Schema{Name: "R", Attr1: "A", Attr2: "B"}
	g := NewGold(s)
	g.AddGood(Tuple{A1: "ms", A2: "softricity"})
	g.AddBad(Tuple{A1: "ms", A2: "symantec"})
	r := NewExtracted(s, g)
	if !r.Add(Tuple{A1: "ms", A2: "softricity"}) {
		t.Error("good tuple misclassified")
	}
	r.Add(Tuple{A1: "ms", A2: "softricity"})
	if r.Add(Tuple{A1: "ms", A2: "symantec"}) {
		t.Error("bad tuple misclassified")
	}
	if r.GoodOcc("ms") != 2 {
		t.Errorf("good occurrences of ms = %d, want 2", r.GoodOcc("ms"))
	}
	if r.BadOcc("ms") != 1 {
		t.Errorf("bad occurrences of ms = %d, want 1", r.BadOcc("ms"))
	}
	if r.Size() != 2 {
		t.Errorf("size %d, want 2", r.Size())
	}
	if r.Occurrences(Tuple{A1: "ms", A2: "softricity"}) != 2 {
		t.Error("occurrence count not retained")
	}
	good, bad := r.GoodBadCounts()
	if good != 1 || bad != 1 {
		t.Errorf("good/bad tuples = %d/%d, want 1/1", good, bad)
	}
}

func TestNilGoldTreatsAllGood(t *testing.T) {
	s := Schema{Name: "R", Attr1: "A", Attr2: "B"}
	r := NewExtracted(s, nil)
	if !r.Add(Tuple{A1: "x", A2: "y"}) {
		t.Error("nil gold should classify everything good")
	}
	good, bad := r.GoodBadCounts()
	if good != 1 || bad != 0 {
		t.Errorf("got %d/%d", good, bad)
	}
}

func TestJoinGoodCountIsProductOfOccurrenceSets(t *testing.T) {
	// Property: with all tuples good and distinct second attributes, the
	// number of join tuples for a value a is n1(a)·n2(a) — the paper's
	// gr1(a)·gr2(a) composition (Equation 1).
	f := func(n1raw, n2raw uint8) bool {
		n1 := int(n1raw%6) + 1
		n2 := int(n2raw%6) + 1
		s1 := Schema{Name: "R1", Attr1: "A", Attr2: "B"}
		s2 := Schema{Name: "R2", Attr1: "A", Attr2: "C"}
		r1 := NewExtracted(s1, nil)
		r2 := NewExtracted(s2, nil)
		for i := 0; i < n1; i++ {
			r1.Add(Tuple{A1: "a", A2: string(rune('b' + i))})
		}
		for i := 0; i < n2; i++ {
			r2.Add(Tuple{A1: "a", A2: string(rune('p' + i))})
		}
		res := Join(r1, r2)
		good, bad := res.Counts()
		return good == n1*n2 && bad == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinNewIncrementalMatchesFullJoin(t *testing.T) {
	r1, r2 := figure2Relations(t)
	full := Join(r1, r2)

	// Rebuild r1 incrementally and check the accumulated result matches.
	acc := NewJoinResult()
	s1 := r1.Schema
	inc := NewExtracted(s1, r1.gold)
	for _, tup := range r1.Tuples() {
		inc.Add(tup)
		JoinNew(acc, inc, []Tuple{tup}, r2)
	}
	fg, fb := full.Counts()
	ag, ab := acc.Counts()
	if fg != ag || fb != ab {
		t.Errorf("incremental join good/bad = %d/%d, full = %d/%d", ag, ab, fg, fb)
	}
}

func TestJoinValuesDeterministicOrder(t *testing.T) {
	s := Schema{Name: "R", Attr1: "A", Attr2: "B"}
	r := NewExtracted(s, nil)
	r.Add(Tuple{A1: "z", A2: "1"})
	r.Add(Tuple{A1: "a", A2: "2"})
	r.Add(Tuple{A1: "m", A2: "3"})
	vals := r.JoinValues()
	if len(vals) != 3 || vals[0] != "a" || vals[1] != "m" || vals[2] != "z" {
		t.Errorf("JoinValues order %v", vals)
	}
}

func TestSchemaString(t *testing.T) {
	s := Schema{Name: "Executives", Attr1: "Company", Attr2: "CEO"}
	if s.String() != "Executives(Company, CEO)" {
		t.Errorf("got %q", s.String())
	}
}

func TestGoldValueSetsBothMembership(t *testing.T) {
	s := Schema{Name: "Mergers", Attr1: "Company", Attr2: "MergedWith"}
	g := NewGold(s)
	g.AddGood(Tuple{A1: "Microsoft", A2: "Softricity"})
	g.AddBad(Tuple{A1: "Microsoft", A2: "Symantec"})
	goodV, badV := GoldValueSets(g)
	if !goodV["Microsoft"] || !badV["Microsoft"] {
		t.Error("Microsoft should have both good and bad occurrences (Figure 1)")
	}
}

func TestJoinResultLabelStability(t *testing.T) {
	r := NewJoinResult()
	jt := JoinTuple{A: "a", B: "b", C: "c"}
	r.Add(jt, true)
	r.Add(jt, false)
	good, bad := r.Counts()
	if good != 0 || bad != 1 {
		t.Errorf("conflicting labels should resolve to bad, got good=%d bad=%d", good, bad)
	}
}

func TestMultiOverlapsMatchesBinary(t *testing.T) {
	r1, r2 := figure2Relations(t)
	binary := Overlaps(r1.gold, r2.gold)
	multi := MultiOverlaps([]*Gold{r1.gold, r2.gold})
	// Mask bit 0 = relation 1, bit 1 = relation 2; mask 0b11 = both good.
	if multi[0b11] != binary.Agg {
		t.Errorf("Agg %d vs %d", multi[0b11], binary.Agg)
	}
	if multi[0b01] != binary.Agb {
		t.Errorf("Agb %d vs %d", multi[0b01], binary.Agb)
	}
	if multi[0b10] != binary.Abg {
		t.Errorf("Abg %d vs %d", multi[0b10], binary.Abg)
	}
	if multi[0b00] != binary.Abb {
		t.Errorf("Abb %d vs %d", multi[0b00], binary.Abb)
	}
}

func TestMultiOverlapsThreeWay(t *testing.T) {
	mk := func(a string) Tuple { return Tuple{A1: a, A2: "x-" + a} }
	golds := make([]*Gold, 3)
	for i := range golds {
		golds[i] = NewGold(Schema{Name: "R", Attr1: "A", Attr2: "B"})
	}
	// Value "c" good everywhere; "m" good in 1 and 2, bad in 3;
	// "b" bad everywhere.
	for i := 0; i < 3; i++ {
		golds[i].AddGood(mk("c"))
		golds[i].AddBad(mk("b"))
	}
	golds[0].AddGood(mk("m"))
	golds[1].AddGood(mk("m"))
	golds[2].AddBad(mk("m"))
	classes := MultiOverlaps(golds)
	if classes[AllGood(3)] != 1 {
		t.Errorf("all-good class %d, want 1 (value c)", classes[AllGood(3)])
	}
	if classes[0b011] != 1 {
		t.Errorf("good-good-bad class %d, want 1 (value m)", classes[0b011])
	}
	if classes[0b000] != 1 {
		t.Errorf("all-bad class %d, want 1 (value b)", classes[0b000])
	}
}

func TestAllGoodMask(t *testing.T) {
	if AllGood(2) != 0b11 || AllGood(3) != 0b111 {
		t.Error("AllGood mask wrong")
	}
}
