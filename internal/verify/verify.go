// Package verify implements the tuple-verification substrate of the
// paper's evaluation (§VII): deciding whether an extracted tuple is good.
// The paper verifies output with "the template-based approach described in
// [14]" plus a web-based gold set; this package provides both analogs:
//
//   - GoldVerifier consults the generator's gold sets — exact labels, the
//     stand-in for the curated web gold set;
//   - TemplateVerifier re-examines the corpus contexts in which a tuple
//     occurs and accepts it only when enough occurrences match the
//     extraction templates strongly — verification by contextual
//     redundancy, with measurable (imperfect) accuracy.
package verify

import (
	"fmt"

	"joinopt/internal/corpus"
	"joinopt/internal/extract"
	"joinopt/internal/relation"
)

// Verifier decides whether an extracted tuple is good.
type Verifier interface {
	Verify(t relation.Tuple) bool
}

// GoldVerifier answers from a gold set.
type GoldVerifier struct {
	Gold *relation.Gold
}

// Verify implements Verifier.
func (g GoldVerifier) Verify(t relation.Tuple) bool { return g.Gold.IsGood(t) }

// TemplateVerifier accepts a tuple when at least MinStrong of its corpus
// occurrences score at least MinScore against the extraction patterns. All
// candidate occurrences are collected in one corpus pass at construction.
type TemplateVerifier struct {
	// MinScore is the context-similarity threshold counting an occurrence
	// as strong; MinStrong is the number of strong occurrences required.
	MinScore  float64
	MinStrong int

	scores map[relation.Tuple][]float64
}

// NewTemplateVerifier scans db with the extraction system (at the most
// permissive knob setting) and indexes every candidate tuple's occurrence
// scores. MinScore defaults to 0.6 and MinStrong to 1 when non-positive.
func NewTemplateVerifier(db *corpus.DB, sys *extract.System, minScore float64, minStrong int) (*TemplateVerifier, error) {
	if db == nil || sys == nil {
		return nil, fmt.Errorf("verify: need a database and an extraction system")
	}
	if minScore <= 0 {
		minScore = 0.6
	}
	if minStrong <= 0 {
		minStrong = 1
	}
	v := &TemplateVerifier{
		MinScore:  minScore,
		MinStrong: minStrong,
		scores:    map[relation.Tuple][]float64{},
	}
	for _, doc := range db.Docs {
		for _, c := range sys.Candidates(doc.Text) {
			v.scores[c.Tuple] = append(v.scores[c.Tuple], c.Score)
		}
	}
	return v, nil
}

// Verify implements Verifier.
func (v *TemplateVerifier) Verify(t relation.Tuple) bool {
	strong := 0
	for _, s := range v.scores[t] {
		if s >= v.MinScore {
			strong++
			if strong >= v.MinStrong {
				return true
			}
		}
	}
	return false
}

// Occurrences returns the number of indexed candidate occurrences of t.
func (v *TemplateVerifier) Occurrences(t relation.Tuple) int { return len(v.scores[t]) }

// Accuracy measures a verifier against a gold set: the acceptance rate on
// the gold good tuples (recall of goodness) and the rejection rate on the
// gold bad tuples (specificity). Only tuples the verifier has evidence
// about are scored for TemplateVerifier-style verifiers when restrictToKnown
// is true.
func Accuracy(v Verifier, gold *relation.Gold) (acceptGood, rejectBad float64) {
	var ag, ng, rb, nb int
	for t := range gold.Good {
		ng++
		if v.Verify(t) {
			ag++
		}
	}
	for t := range gold.Bad {
		nb++
		if !v.Verify(t) {
			rb++
		}
	}
	if ng > 0 {
		acceptGood = float64(ag) / float64(ng)
	}
	if nb > 0 {
		rejectBad = float64(rb) / float64(nb)
	}
	return acceptGood, rejectBad
}
