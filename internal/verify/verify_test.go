package verify

import (
	"sync"
	"testing"

	"joinopt/internal/relation"
	"joinopt/internal/workload"
)

var (
	once  sync.Once
	wl    *workload.Workload
	wlErr error
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	once.Do(func() {
		wl, wlErr = workload.HQJoinEX(workload.Params{NumDocs: 1200, Seed: 13})
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func TestGoldVerifierExact(t *testing.T) {
	w := testWorkload(t)
	gold := w.DB[0].Gold("HQ")
	v := GoldVerifier{Gold: gold}
	acceptGood, rejectBad := Accuracy(v, gold)
	if acceptGood != 1 || rejectBad != 1 {
		t.Errorf("gold verifier must be exact: %v/%v", acceptGood, rejectBad)
	}
}

func TestTemplateVerifierSeparates(t *testing.T) {
	w := testWorkload(t)
	v, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	gold := w.DB[0].Gold("HQ")
	acceptGood, rejectBad := Accuracy(v, gold)
	// Good mentions carry ≥3 cue terms 65% of the time per occurrence;
	// deceptive ones 20%. Redundancy verification must separate clearly,
	// while staying visibly imperfect — the paper's situation.
	if acceptGood < 0.55 {
		t.Errorf("template verifier accepts only %.2f of good tuples", acceptGood)
	}
	if rejectBad < 0.6 {
		t.Errorf("template verifier rejects only %.2f of bad tuples", rejectBad)
	}
	if acceptGood > 0.99 && rejectBad > 0.99 {
		t.Error("template verifier implausibly perfect — it should be noisy")
	}
}

func TestTemplateVerifierThresholdTradeoff(t *testing.T) {
	w := testWorkload(t)
	loose, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	gold := w.DB[0].Gold("HQ")
	lg, lb := Accuracy(loose, gold)
	sg, sb := Accuracy(strict, gold)
	if sg > lg {
		t.Errorf("stricter threshold should not accept more good tuples: %.2f -> %.2f", lg, sg)
	}
	if sb < lb {
		t.Errorf("stricter threshold should not reject fewer bad tuples: %.2f -> %.2f", lb, sb)
	}
}

func TestTemplateVerifierMinStrong(t *testing.T) {
	w := testWorkload(t)
	one, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	gold := w.DB[0].Gold("HQ")
	g1, _ := Accuracy(one, gold)
	g2, b2 := Accuracy(two, gold)
	if g2 > g1 {
		t.Errorf("demanding more strong occurrences cannot accept more: %.2f -> %.2f", g1, g2)
	}
	// With one occurrence per tuple by construction, MinStrong=2 rejects
	// almost everything.
	if g2 > 0.2 || b2 < 0.9 {
		t.Errorf("MinStrong=2 on single-occurrence tuples: accept %.2f reject %.2f", g2, b2)
	}
}

func TestTemplateVerifierOccurrences(t *testing.T) {
	w := testWorkload(t)
	v, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	gold := w.DB[0].Gold("HQ")
	found := false
	for tup := range gold.Good {
		if v.Occurrences(tup) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no gold tuple has indexed occurrences")
	}
	if v.Occurrences(relation.Tuple{A1: "Ghost Corp", A2: "Nowhere"}) != 0 {
		t.Error("unknown tuple should have zero occurrences")
	}
}

func TestNewTemplateVerifierValidation(t *testing.T) {
	w := testWorkload(t)
	if _, err := NewTemplateVerifier(nil, w.Sys[0], 0.6, 1); err == nil {
		t.Error("expected error for nil database")
	}
	if _, err := NewTemplateVerifier(w.DB[0], nil, 0.6, 1); err == nil {
		t.Error("expected error for nil system")
	}
	v, err := NewTemplateVerifier(w.DB[0], w.Sys[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.MinScore != 0.6 || v.MinStrong != 1 {
		t.Errorf("defaults not applied: %+v", v)
	}
}
