package workload

import (
	"fmt"

	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/querygraph"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
)

// N-ary optimizer/executor assembly over a MultiWorkload: perfect-knowledge
// inputs for the DP plan enumerator (optimizer.ChooseNary) and construction
// of the tree executor the chosen plan runs on.

// TrueNaryInputs assembles perfect-knowledge n-ary optimizer inputs: per
// relation and θ the measured scan-path parameters, per-relation costs, and
// the gold-set class-mask callback. The merge cost and worker knobs are the
// caller's to set.
func (mw *MultiWorkload) TrueNaryInputs(thetas []float64) (*optimizer.NaryInputs, error) {
	if len(thetas) == 0 {
		return nil, fmt.Errorf("workload: no θ settings")
	}
	in := &optimizer.NaryInputs{
		Thetas:  thetas,
		Classes: optimizer.SubsetClassFn(mw.Golds()),
	}
	for i := range mw.DBs {
		ps := make([]*model.RelationParams, 0, len(thetas))
		for _, theta := range thetas {
			p, err := mw.trueParams(i, theta)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
		}
		in.P = append(in.P, ps)
		in.Costs = append(in.Costs, mw.Costs[i])
	}
	return in, nil
}

// execTree converts the optimizer's chosen tree into the executor's mirror
// structure.
func execTree(n *optimizer.NaryNode) *join.TreeNode {
	if n == nil {
		return nil
	}
	if n.Leaf() {
		return &join.TreeNode{Rel: n.Rel}
	}
	return &join.TreeNode{Rel: -1, Left: execTree(n.Left), Right: execTree(n.Right)}
}

// NewNaryExecutor builds the tree executor for a chosen n-ary plan: one
// side per relation at its leaf's θ, the leaf's retrieval strategy, effort
// caps at the leaf efforts, and the plan's merge cost. The engine, when
// workers or a shared cache are requested, overlaps extraction exactly as
// in the binary executors (bit-identical at every worker count). A non-nil
// shard set shards the leaves instead: every relation's stream routes
// through per-shard engines while the tree nodes keep merging the canonical
// consumer-ordered streams, so tuples and counters match the unsharded run.
func (mw *MultiWorkload) NewNaryExecutor(ev optimizer.NaryEval, tj float64, execWorkers int, cache *pipeline.Cache, shards *shard.Set) (*join.NaryExec, error) {
	if ev.Tree == nil || len(ev.Leaves) != len(mw.DBs) {
		return nil, fmt.Errorf("workload: n-ary plan covers %d relations, workload has %d", len(ev.Leaves), len(mw.DBs))
	}
	n := len(mw.DBs)
	sides := make([]*join.Side, n)
	strats := make([]retrieval.Strategy, n)
	caps := make([]int, n)
	kinds := make([]retrieval.Kind, n)
	for _, leaf := range ev.Leaves {
		i := leaf.Rel
		if i < 0 || i >= n {
			return nil, fmt.Errorf("workload: plan leaf references relation %d of %d", i, n)
		}
		sides[i] = mw.Side(i, leaf.Theta)
		if leaf.X != retrieval.SC {
			return nil, fmt.Errorf("workload: multi-way workloads execute scan retrieval only, plan wants %s on relation %d", leaf.X, i+1)
		}
		strats[i] = mw.Scan(i)
		caps[i] = leaf.Effort
		kinds[i] = leaf.X
	}
	for i := range sides {
		if sides[i] == nil {
			return nil, fmt.Errorf("workload: plan missing a leaf for relation %d", i+1)
		}
	}
	exec, err := join.NewNaryExec(sides, strats, join.NaryPlan{
		Tree:  execTree(ev.Tree),
		Caps:  caps,
		Kinds: kinds,
		TJ:    tj,
	})
	if err != nil {
		return nil, err
	}
	extract := func(k pipeline.Key) []relation.Tuple {
		return mw.Sys[k.Side].Extract(mw.DBs[k.Side].Doc(k.DocID).Text, k.Theta)
	}
	if shards != nil && shards.Part.N >= 2 {
		sizes := make([]int, len(mw.DBs))
		for i, db := range mw.DBs {
			sizes[i] = db.Size()
		}
		exec.Pipeline = shard.NewGroup(shards, execWorkers, sizes, extract)
	} else if execWorkers >= 1 || cache != nil {
		exec.Pipeline = pipeline.NewEngine(cache, execWorkers, extract)
	}
	return exec, nil
}

// Graph builds the validated query graph of a join spec over this
// workload's relations.
func (mw *MultiWorkload) Graph(joins [][2]int) (*querygraph.Graph, error) {
	return querygraph.Spec{Relations: mw.Tasks, Joins: joins}.Graph()
}
