// Package workload assembles end-to-end experimental setups mirroring the
// paper's evaluation (§VII): two text databases hosting a pair of
// extraction tasks (HQ = Headquarters⟨Company, Location⟩, EX =
// Executives⟨Company, CEO⟩, MG = Mergers⟨Company, MergedWith⟩), trained
// retrieval machinery (FS classifier, AQG queries), tuned IE systems,
// search interfaces with top-k caps, and seed values for the zig-zag join.
// All value-overlap sets (Agg, Agb, Abg, Abb) and frequency distributions
// are controlled, including planted high-frequency never-extracted outlier
// values that reproduce the paper's bad-tuple overestimation cases.
package workload

import (
	"fmt"
	"sync"

	"joinopt/internal/classifier"
	"joinopt/internal/corpus"
	"joinopt/internal/extract"
	"joinopt/internal/faults"
	"joinopt/internal/index"
	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/pipeline"
	"joinopt/internal/qxtract"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

// Params scales a workload.
type Params struct {
	// NumDocs is the number of documents in the first database (and the
	// second, unless NumDocs2 is set).
	NumDocs int
	// NumDocs2, when positive, sizes the second database differently: the
	// relation content (values, mentions, document targets) stays the
	// same, so a larger NumDocs2 means a bigger haystack of empty and
	// casual documents around the same needles. Asymmetric sizes exercise
	// the optimizer's outer-relation choice and the rectangle traversal.
	NumDocs2 int
	// Seed drives all generation randomness.
	Seed int64
	// TopK is the search-interface result cap; 0 picks a size-proportional
	// default (max(10, NumDocs/400)), mirroring the tight caps of real
	// search interfaces — the factor that bounds query-based join
	// algorithms (§IV).
	TopK int
}

// DefaultParams is the bench-scale configuration: large enough for the
// power-law and sampling behaviour to be visible, small enough for tests.
var DefaultParams = Params{NumDocs: 4000, Seed: 1}

// Workload is a fully wired two-database join task.
type Workload struct {
	Params Params

	Gaz        *textgen.Gazetteer
	DB         [2]*corpus.DB // DB[i] hosts Task[i]
	Train      [2]*corpus.DB
	Task       [2]string
	Sys        [2]*extract.System
	Ix         [2]*index.Index
	Cls        [2]classifier.Classifier
	AQGQueries [2][]qxtract.Query
	Costs      [2]join.Costs

	// Seeds are join values with good tuples in both relations, used to
	// seed ZGJN executions.
	Seeds []string

	// Faults, when set, wraps every executor's substrate — document fetches,
	// retrieval pulls, FS classifier calls — with deterministic fault
	// injection. Retry tunes how executions retry and budget those failures
	// (zero value = join.DefaultRetry), and Deadline, when positive, caps
	// every execution's cost-model time.
	Faults   *faults.Profile
	Retry    join.RetryPolicy
	Deadline float64

	// ExecWorkers, when >= 1, runs every executor built over this workload
	// with a pipelined extraction pool of that many workers (see
	// internal/pipeline): document extraction overlaps ahead of the
	// consumer while results, cost accounting, traces, and snapshots stay
	// bit-identical to the sequential execution. 0 = sequential.
	ExecWorkers int

	// ExtractCache, when set, shares one byte-bounded extraction cache
	// across every execution built over this workload — pilot, abandoned,
	// and final plans alike — so re-processing a document at the same θ is
	// free. Hits, misses, and evictions surface through Metrics.
	ExtractCache *pipeline.Cache

	// Shards, when >= 2, partitions each database into that many
	// deterministic shards and runs every executor over a scatter-gather
	// group of per-shard pipelined engines (see internal/shard): document
	// ownership is a pure function of (side, docID), each shard owns a
	// slice of the extraction cache, and the consumer still resolves
	// documents in canonical stream order, so output stays bit-identical
	// to the unsharded run at any shard count. 0/1 = unsharded (the
	// ExecWorkers/ExtractCache path above, byte for byte).
	Shards int

	// ShardSet is the persistent per-shard cache layout backing sharded
	// executions (required when Shards >= 2; built once per task via
	// shard.NewSet and shared across runs so the slices stay warm).
	ShardSet *shard.Set

	// Trace and Metrics, when set, observe every execution built over this
	// workload: executors stamp span events and mirror their counters, fault
	// injectors report fired faults, and retrieval strategies report query
	// issuance. Both are nil by default (zero overhead); set them before
	// building executors.
	Trace   *obs.Trace
	Metrics *obs.Registry

	emMu  sync.Mutex
	emFor *obs.Registry
	em    *obs.ExecMetrics

	// statics memoizes the run-independent optimizer-environment
	// measurements (training-split IE rates, classifier rates, AQG query
	// compositions). It is shared by pointer between a workload and all its
	// clones, so concurrent adaptive runs characterize the substrate once.
	statics *envStatics
}

// Clone returns a per-run view of the workload: the immutable machinery
// (databases, IE systems, indexes, classifiers, learned queries, seeds) and
// the internally synchronized shared state (extraction-system memo, env
// statics) are shared, while the per-run knobs — fault profile, retry
// policy, deadline, worker counts, extraction cache, trace, and metrics —
// live on the copy. Cloning is how the facade keeps concurrent Task.Run
// calls from racing on each other's configuration.
func (w *Workload) Clone() *Workload {
	return &Workload{
		Params:     w.Params,
		Gaz:        w.Gaz,
		DB:         w.DB,
		Train:      w.Train,
		Task:       w.Task,
		Sys:        w.Sys,
		Ix:         w.Ix,
		Cls:        w.Cls,
		AQGQueries: w.AQGQueries,
		Costs:      w.Costs,
		Seeds:      w.Seeds,

		Faults:       w.Faults,
		Retry:        w.Retry,
		Deadline:     w.Deadline,
		ExecWorkers:  w.ExecWorkers,
		ExtractCache: w.ExtractCache,
		Shards:       w.Shards,
		ShardSet:     w.ShardSet,
		Trace:        w.Trace,
		Metrics:      w.Metrics,

		statics: w.statics,
	}
}

// execMetrics resolves the execution metric bundle against the currently
// attached registry, memoized per registry so repeated executor construction
// reuses the same handles (and a registry swapped in between runs is honoured).
func (w *Workload) execMetrics() *obs.ExecMetrics {
	w.emMu.Lock()
	defer w.emMu.Unlock()
	if w.em == nil || w.emFor != w.Metrics {
		w.em = obs.NewExecMetrics(w.Metrics)
		w.emFor = w.Metrics
	}
	return w.em
}

// HQJoinEX builds the paper's primary workload: HQ hosted on an NYT96-like
// database, EX on an NYT95-like database.
func HQJoinEX(p Params) (*Workload, error) { return Pair(p, "HQ", "EX") }

// MGJoinEX builds the workload of the paper's motivating Example 1.1:
// Mergers (hosted on a SeekingAlpha-like database) joined with Executives
// (hosted on a WSJ-like database).
func MGJoinEX(p Params) (*Workload, error) { return Pair(p, "MG", "EX") }

// Pair builds a two-task workload over the standard tasks ("HQ", "EX",
// "MG"), with controlled value overlap between the two relations and
// same-shaped training databases for the classifier and query learners.
func Pair(p Params, task1, task2 string) (*Workload, error) {
	if p.NumDocs < 400 {
		return nil, fmt.Errorf("workload: NumDocs must be at least 400, got %d", p.NumDocs)
	}
	if p.NumDocs2 == 0 {
		p.NumDocs2 = p.NumDocs
	}
	if p.NumDocs2 < p.NumDocs {
		return nil, fmt.Errorf("workload: NumDocs2 (%d) must be at least NumDocs (%d)", p.NumDocs2, p.NumDocs)
	}
	if task1 == task2 {
		return nil, fmt.Errorf("workload: tasks must differ, got %q twice", task1)
	}
	if p.TopK == 0 {
		p.TopK = p.NumDocs / 400
		if p.TopK < 10 {
			p.TopK = 10
		}
	}
	w := &Workload{Params: p, Task: [2]string{task1, task2}, statics: &envStatics{}}

	vocabs := [2]textgen.TaskVocab{}
	for i, task := range w.Task {
		v, ok := textgen.VocabByTask(task)
		if !ok {
			return nil, fmt.Errorf("workload: unknown task %q (want HQ, EX, or MG)", task)
		}
		vocabs[i] = v
	}

	nGood := p.NumDocs * 15 / 100 // |Dg| target per task
	nBad := p.NumDocs * 8 / 100   // |Db| target per task
	// Good values per task: sized so the mention density stays near 1.2
	// mentions per good document (power-law mean ≈ 1.9 per value). Sparse
	// co-occurrence keeps the zig-zag graph weakly connected, as in the
	// paper's corpora, where ZGJN's reach is limited.
	n := nGood * 13 / 20
	// Bad values per task: enough that the bad mentions can cover the bad
	// documents with comfortable margin even on small corpora and in the
	// outlier-free training splits.
	nb := n * 7 / 10

	// The company pool splits into a shuffled value universe (join values
	// of both tasks) and a reserved tail for the MG task's second
	// attribute, when present.
	valueUniverse := 2*n + nb + 60
	mgExtra := 0
	for _, v := range vocabs {
		if v.Slot2 == textgen.Company {
			mgExtra = 2*n + 40
		}
	}
	w.Gaz = textgen.NewGazetteer(valueUniverse+mgExtra, 2*n+40, 400)
	shuffled := textgen.Shuffled(stat.NewRNG(p.Seed+7), w.Gaz.Companies[:valueUniverse])
	mgSeconds := w.Gaz.Companies[valueUniverse:]

	// Value ranges over the shuffled pool. The layout fixes the overlap
	// sets: Agg = n/2; each relation's bad values overlap its own and the
	// other relation's good values.
	goodVals := [2][]string{shuffled[0:n], shuffled[n/2 : n/2+n]}
	badVals := [2][]string{shuffled[3*n/4 : 3*n/4+nb], shuffled[n/4 : n/4+nb]}
	outliers := shuffled[3*n/2+1 : 3*n/2+5]
	outlierFreq := nBad / 3
	if outlierFreq > 40 {
		outlierFreq = 40
	}
	if outlierFreq < 4 {
		outlierFreq = 4
	}

	specFor := func(i int, withOutliers bool) (corpus.RelationSpec, error) {
		v := vocabs[i]
		spec := corpus.RelationSpec{
			Vocab:         v,
			GoodValues:    goodVals[i],
			BadValues:     badVals[i],
			GoodFreq:      stat.MustPowerLaw(2.0, 20),
			BadFreq:       stat.MustPowerLaw(2.2, 15),
			NumGoodDocs:   nGood,
			NumBadDocs:    nBad,
			BadInGoodRate: 0.3,
		}
		switch v.Task {
		case "HQ":
			spec.Schema = relation.Schema{Name: "Headquarters", Attr1: "Company", Attr2: "Location"}
			spec.GoodSeconds = w.Gaz.Locations[:200]
			spec.BadSeconds = w.Gaz.Locations[200:400]
		case "EX":
			spec.Schema = relation.Schema{Name: "Executives", Attr1: "Company", Attr2: "CEO"}
			spec.GoodSeconds = w.Gaz.Persons[:n+20]
			spec.BadSeconds = w.Gaz.Persons[n+20 : 2*n+40]
		case "MG":
			spec.Schema = relation.Schema{Name: "Mergers", Attr1: "Company", Attr2: "MergedWith"}
			spec.GoodSeconds = mgSeconds[:n+20]
			spec.BadSeconds = mgSeconds[n+20 : 2*n+40]
		default:
			return spec, fmt.Errorf("workload: no spec template for task %q", v.Task)
		}
		if withOutliers {
			spec.Outliers = outliers
			spec.OutlierFreq = outlierFreq
		}
		return spec, nil
	}

	sizeOf := func(i int) int {
		if i == 1 {
			return p.NumDocs2
		}
		return p.NumDocs
	}
	gen := func(name string, seed int64, i int, withOutliers bool) (*corpus.DB, error) {
		spec, err := specFor(i, withOutliers)
		if err != nil {
			return nil, err
		}
		return corpus.Generate(corpus.Config{
			Name: name, NumDocs: sizeOf(i), Seed: seed,
			Relations:  []corpus.RelationSpec{spec},
			CasualRate: 0.45, CasualPool: w.Gaz.Companies,
		})
	}
	var err error
	// Target databases carry the planted outlier values; the training
	// databases do not. IE-system rates are characterized on the training
	// split (as in the paper, where Snowball is trained and characterized on
	// NYT96), so database-specific outlier quirks are invisible to the
	// models — the source of the paper's bad-tuple overestimation cases.
	if w.DB[0], err = gen("target-"+task1, p.Seed+1, 0, true); err != nil {
		return nil, err
	}
	if w.DB[1], err = gen("target-"+task2, p.Seed+2, 1, true); err != nil {
		return nil, err
	}
	if w.Train[0], err = gen("train-"+task1, p.Seed+3, 0, false); err != nil {
		return nil, err
	}
	if w.Train[1], err = gen("train-"+task2, p.Seed+4, 1, false); err != nil {
		return nil, err
	}

	tagger := extract.NewTagger(w.Gaz)
	for i := 0; i < 2; i++ {
		if w.Sys[i], err = extract.NewSystemFromVocab(vocabs[i], tagger); err != nil {
			return nil, err
		}
		// Plan sweeps re-process the same documents under many knob
		// settings; memoizing the scored candidates makes the threshold the
		// only per-plan work.
		w.Sys[i].EnableCache()
	}

	for i := 0; i < 2; i++ {
		w.Ix[i] = join.BuildIndex(w.DB[i], p.TopK)
		w.Costs[i] = join.DefaultCosts
		cls, err := classifier.TrainRules(w.Train[i], w.Task[i], 12, 2, 0.5)
		if err != nil {
			// Fall back to naive Bayes when rule induction cannot meet the
			// precision floor on this training draw.
			b, berr := classifier.TrainBayes(w.Train[i], w.Task[i], 0)
			if berr != nil {
				return nil, fmt.Errorf("workload: training side-%d classifier: %v (bayes: %v)", i+1, err, berr)
			}
			w.Cls[i] = b
		} else {
			w.Cls[i] = cls
		}
		if w.AQGQueries[i], err = qxtract.Learn(w.Train[i], w.Task[i], 12); err != nil {
			return nil, fmt.Errorf("workload: learning side-%d queries: %w", i+1, err)
		}
	}

	// ZGJN seeds: good values shared by both relations with nonzero
	// frequency in both databases.
	g1 := w.DB[0].Stats(task1).GoodFreq
	g2 := w.DB[1].Stats(task2).GoodFreq
	for _, v := range shuffled[n/2 : n] {
		if g1[v] > 0 && g2[v] > 0 {
			w.Seeds = append(w.Seeds, v)
			if len(w.Seeds) >= 3 {
				break
			}
		}
	}
	if len(w.Seeds) == 0 {
		return nil, fmt.Errorf("workload: no shared good values available as ZGJN seeds")
	}
	return w, nil
}

// Side builds a join.Side for side i (0 or 1) at knob configuration theta.
// When a fault profile is set, document fetches go through a fault-injected
// source under the workload's retry policy.
func (w *Workload) Side(i int, theta float64) *join.Side {
	s := &join.Side{
		DB:     w.DB[i],
		Index:  w.Ix[i],
		System: w.Sys[i],
		Theta:  theta,
		Gold:   w.DB[i].Gold(w.Task[i]),
		Costs:  w.Costs[i],
		Retry:  w.Retry,
	}
	if w.Faults != nil {
		src := faults.NewFaultyDB(w.DB[i], w.Faults, i)
		src.SetObs(w.Trace, w.execMetrics())
		s.Source = src
	}
	return s
}

// NewStrategy builds a fresh retrieval strategy of the given kind for side
// i. Strategies are stateful; every execution needs its own. When a fault
// profile is set, the strategy (and the FS classifier behind it) is wrapped
// with fault injection.
func (w *Workload) NewStrategy(i int, kind retrieval.Kind) (retrieval.Strategy, error) {
	var s retrieval.Strategy
	var err error
	switch kind {
	case retrieval.SC:
		s = retrieval.NewScan(w.DB[i].Size())
	case retrieval.FS:
		cls := w.Cls[i]
		if w.Faults != nil {
			fcls := faults.NewFaultyClassifier(cls, w.Faults, i)
			fcls.SetObs(w.Trace, w.execMetrics())
			cls = fcls
		}
		s, err = retrieval.NewFilteredScan(w.DB[i], cls)
	case retrieval.AQG:
		s, err = retrieval.NewAQG(w.Ix[i], w.AQGQueries[i])
	default:
		return nil, fmt.Errorf("workload: unknown retrieval strategy %q", kind)
	}
	if err != nil {
		return nil, err
	}
	if w.Faults != nil {
		fs := faults.NewFaultyStrategy(s, w.Faults, i)
		fs.SetObs(w.Trace, w.execMetrics())
		s = fs
	}
	return retrieval.Instrument(s, i+1, w.Trace), nil
}
