package workload

import (
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/retrieval"
)

// pipeTestWorkload builds a small dedicated workload: these tests mutate
// ExecWorkers, ExtractCache, and Metrics, so they must not share the
// package-wide one.
func pipeTestWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := HQJoinEX(Params{NumDocs: 400, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runPlan(t *testing.T, w *Workload, spec optimizer.PlanSpec) *join.State {
	t.Helper()
	exec, err := w.NewExecutor(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var scPlan = optimizer.PlanSpec{
	JN:    optimizer.IDJN,
	Theta: [2]float64{0.4, 0.4},
	X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
}

// TestCacheCountersMatchCacheStats pins the observability contract: the
// joinopt_extract_cache_* metric counters must equal the cache's own
// accounting exactly — every hit and miss flows through both.
func TestCacheCountersMatchCacheStats(t *testing.T) {
	w := pipeTestWorkload(t)
	reg := obs.NewRegistry()
	cache := pipeline.NewCache(1 << 22)
	w.Metrics = reg
	w.ExtractCache = cache
	w.ExecWorkers = 2

	// Two executions sharing the cache: the first all misses, the second
	// all hits.
	runPlan(t, w, scPlan)
	runPlan(t, w, scPlan)

	s := cache.Stats()
	snap := reg.Snapshot()
	var hits, misses int64
	for side := 0; side < 2; side++ {
		label := string('1' + byte(side))
		hits += snap.Counters[obs.MetricCacheHits+`{side="`+label+`"}`]
		misses += snap.Counters[obs.MetricCacheMisses+`{side="`+label+`"}`]
	}
	if hits != s.Hits || misses != s.Misses {
		t.Errorf("metric counters (hits=%d misses=%d) != cache stats (hits=%d misses=%d)",
			hits, misses, s.Hits, s.Misses)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("expected both hits and misses over a repeated run, got %+v", s)
	}
	if ev := snap.Counters[obs.MetricCacheEvictions]; ev != s.Evictions {
		t.Errorf("eviction counter %d != cache stats %d", ev, s.Evictions)
	}
	// A full repeat against a large cache is served entirely from it.
	total := int64(0)
	for side := 0; side < 2; side++ {
		total += int64(w.DB[side].Size())
	}
	if s.Hits != total {
		t.Errorf("second run hit %d documents, want all %d", s.Hits, total)
	}
}

// TestCacheEvictsAtByteBound runs against a deliberately tiny cache and
// checks the byte bound holds, evictions happen, and the eviction metric
// mirrors them.
func TestCacheEvictsAtByteBound(t *testing.T) {
	w := pipeTestWorkload(t)
	reg := obs.NewRegistry()
	const bound = 8 << 10
	cache := pipeline.NewCache(bound)
	w.Metrics = reg
	w.ExtractCache = cache

	runPlan(t, w, scPlan)

	s := cache.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions from a %d-byte cache over %d documents", bound, w.DB[0].Size()+w.DB[1].Size())
	}
	if s.Bytes > bound && s.Entries > 1 {
		t.Errorf("resident bytes %d over the %d bound with %d entries", s.Bytes, bound, s.Entries)
	}
	if got := reg.Snapshot().Counters[obs.MetricCacheEvictions]; got != s.Evictions {
		t.Errorf("eviction counter %d != cache stats %d", got, s.Evictions)
	}
}

// TestAdaptiveCacheAvoidsExtractions is the end-to-end saving the shared
// cache exists for: the adaptive protocol's pilot scans documents the chosen
// plan then re-processes, so a cached run must invoke the real extractor
// strictly fewer times — with the decision sequence, its quality estimates,
// and the final output unchanged.
func TestAdaptiveCacheAvoidsExtractions(t *testing.T) {
	req := optimizer.Requirement{TauG: 10, TauB: 200}
	extracts := func(w *Workload) int64 { return w.Sys[0].Extracts() + w.Sys[1].Extracts() }

	run := func(cached bool) (*optimizer.Result, int64) {
		w := pipeTestWorkload(t)
		if cached {
			w.ExtractCache = pipeline.NewCache(1 << 22)
		}
		env, err := w.NewEnv([]float64{0.4, 0.8})
		if err != nil {
			t.Fatal(err)
		}
		before := extracts(w)
		res, err := optimizer.RunAdaptive(env, req, optimizer.Options{ChooseWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res, extracts(w) - before
	}

	plain, plainN := run(false)
	cached, cachedN := run(true)

	if cachedN >= plainN {
		t.Errorf("cached adaptive run invoked the extractor %d times, plain run %d — want strictly fewer", cachedN, plainN)
	}
	if len(cached.Decisions) != len(plain.Decisions) {
		t.Fatalf("decision counts differ: cached %d, plain %d", len(cached.Decisions), len(plain.Decisions))
	}
	for i := range plain.Decisions {
		p, c := plain.Decisions[i], cached.Decisions[i]
		if p.Chosen.Plan != c.Chosen.Plan {
			t.Errorf("decision %d: cached chose %s, plain chose %s", i, c.Chosen.Plan, p.Chosen.Plan)
		}
		if p.Chosen.Quality != c.Chosen.Quality {
			t.Errorf("decision %d: quality estimates diverged: cached %+v, plain %+v", i, c.Chosen.Quality, p.Chosen.Quality)
		}
	}
	pg, pb := plain.Final.Result.Counts()
	cg, cb := cached.Final.Result.Counts()
	if pg != cg || pb != cb {
		t.Errorf("cached final output (%d,%d) != plain (%d,%d)", cg, cb, pg, pb)
	}
}
