package workload

import (
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
)

func triple(t *testing.T) *MultiWorkload {
	t.Helper()
	mw, err := Multi(Params{NumDocs: 900, Seed: 21}, []string{"HQ", "EX", "MG"})
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

func TestMultiConstruction(t *testing.T) {
	mw := triple(t)
	if len(mw.DBs) != 3 || len(mw.Sys) != 3 {
		t.Fatalf("sides %d/%d", len(mw.DBs), len(mw.Sys))
	}
	classes := relation.MultiOverlaps(mw.Golds())
	allGood := relation.AllGood(3)
	if classes[allGood] == 0 {
		t.Error("no values good in all three relations — core layout broken")
	}
	// The core is present in every relation's good set.
	if classes[allGood] < 30 {
		t.Errorf("core overlap %d suspiciously small", classes[allGood])
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := Multi(Params{NumDocs: 900}, []string{"HQ"}); err == nil {
		t.Error("expected error for 1 task")
	}
	if _, err := Multi(Params{NumDocs: 900}, []string{"HQ", "XX"}); err == nil {
		t.Error("expected error for unknown task")
	}
	if _, err := Multi(Params{NumDocs: 900}, []string{"HQ", "EX", "MG", "HQ", "EX", "MG", "HQ"}); err == nil {
		t.Error("expected error past MaxRelations tasks")
	}
}

// Repeated tasks are allowed (each index gets its own corpus seed and
// private value ranges) — the k=4+ query workloads depend on it, since only
// three standard tasks exist.
func TestMultiRepeatedTasks(t *testing.T) {
	mw, err := Multi(Params{NumDocs: 500, Seed: 7}, []string{"HQ", "EX", "HQ", "MG"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mw.DBs) != 4 {
		t.Fatalf("got %d databases, want 4", len(mw.DBs))
	}
	if mw.DBs[0].Name == mw.DBs[2].Name {
		t.Errorf("repeated task shares database name %q", mw.DBs[0].Name)
	}
	g0, _ := relation.GoldValueSets(mw.Golds()[0])
	g2, _ := relation.GoldValueSets(mw.Golds()[2])
	priv := 0
	for v := range g2 {
		if !g0[v] {
			priv++
		}
	}
	if priv == 0 {
		t.Error("repeated task has no private good values — relations are identical")
	}
	classes := relation.MultiOverlaps(mw.Golds())
	if classes[relation.AllGood(4)] == 0 {
		t.Error("no values good in all four relations — core layout broken")
	}
}

func TestMultiIDJNExecution(t *testing.T) {
	mw := triple(t)
	sides := []*join.Side{mw.Side(0, 0.4), mw.Side(1, 0.4), mw.Side(2, 0.4)}
	strats := []retrieval.Strategy{mw.Scan(0), mw.Scan(1), mw.Scan(2)}
	e, err := join.NewMultiIDJN(sides, strats)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.RunMulti(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sides {
		if st.DocsProcessed[i] != mw.DBs[i].Size() {
			t.Errorf("side %d processed %d docs", i, st.DocsProcessed[i])
		}
	}
	if st.GoodTuples == 0 {
		t.Error("no good 3-way tuples")
	}
	if st.BadTuples == 0 {
		t.Error("no bad 3-way tuples at theta 0.4")
	}
	// Direct recomputation of the n-way products.
	good, total := 0, 0
	vals := map[string]bool{}
	for _, r := range st.Rels {
		for _, v := range r.JoinValues() {
			vals[v] = true
		}
	}
	for v := range vals {
		g, tot := 1, 1
		for _, r := range st.Rels {
			g *= r.GoodOcc(v)
			tot *= r.GoodOcc(v) + r.BadOcc(v)
		}
		good += g
		total += tot
	}
	if st.GoodTuples != good || st.BadTuples != total-good {
		t.Errorf("incremental counts (%d, %d) != direct (%d, %d)",
			st.GoodTuples, st.BadTuples, good, total-good)
	}
}

func TestMultiModelAccuracy(t *testing.T) {
	mw := triple(t)
	m, err := mw.TrueMultiModel(0.4)
	if err != nil {
		t.Fatal(err)
	}
	sides := []*join.Side{mw.Side(0, 0.4), mw.Side(1, 0.4), mw.Side(2, 0.4)}
	strats := []retrieval.Strategy{mw.Scan(0), mw.Scan(1), mw.Scan(2)}
	e, err := join.NewMultiIDJN(sides, strats)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.RunMulti(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	D := mw.DBs[0].Size()
	est, err := m.Estimate([]int{D, D, D})
	if err != nil {
		t.Fatal(err)
	}
	ratioIn(t, "3-way good", est.Good, float64(st.GoodTuples), 0.4, 2.5)
	ratioIn(t, "3-way bad", est.Bad, float64(st.BadTuples), 0.4, 2.5)
	tm, err := m.Time([]int{D, D, D}, []join.Costs{mw.Costs[0], mw.Costs[1], mw.Costs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("no time predicted")
	}
}

func TestMultiIDJNValidation(t *testing.T) {
	mw := triple(t)
	if _, err := join.NewMultiIDJN([]*join.Side{mw.Side(0, 0.4)}, []retrieval.Strategy{mw.Scan(0)}); err == nil {
		t.Error("expected error for 1 side")
	}
	if _, err := join.NewMultiIDJN(
		[]*join.Side{mw.Side(0, 0.4), mw.Side(1, 0.4)},
		[]retrieval.Strategy{mw.Scan(0)}); err == nil {
		t.Error("expected error for arity mismatch")
	}
	if _, err := join.NewMultiIDJN(
		[]*join.Side{mw.Side(0, 0.4), mw.Side(1, 0.4)},
		[]retrieval.Strategy{mw.Scan(0), nil}); err == nil {
		t.Error("expected error for nil strategy")
	}
}
