package workload

import (
	"fmt"
	"sort"

	"joinopt/internal/classifier"
	"joinopt/internal/corpus"
	"joinopt/internal/extract"
	"joinopt/internal/index"
	"joinopt/internal/model"
	"joinopt/internal/relation"
	"joinopt/internal/stat"
)

// TrueParams measures the "perfect knowledge" model parameters of side i at
// knob configuration theta — the setup of the paper's model-accuracy
// experiments (§VII), which assume the actual frequency distributions and
// document partitions are known. The measurement walks the corpus
// annotations (standing in for the paper's tuple verification) and the
// search interface.
func (w *Workload) TrueParams(i int, theta float64) (*model.RelationParams, error) {
	if i != 0 && i != 1 {
		return nil, fmt.Errorf("workload: side must be 0 or 1, got %d", i)
	}
	db, task, ix := w.DB[i], w.Task[i], w.Ix[i]
	stats := db.Stats(task)
	if stats == nil {
		return nil, fmt.Errorf("workload: database %s missing task %s", db.Name, task)
	}
	// Rates are characterized on the training database: the knob behaviour
	// tp(θ)/fp(θ) is a property of the IE system learned at training time,
	// blind to target-corpus quirks such as frequent-but-weak outlier
	// values (§VII's overestimation discussion).
	rates, err := extract.MeasureRates(w.Sys[i], w.Train[i])
	if err != nil {
		return nil, err
	}
	p := &model.RelationParams{
		D:        db.Size(),
		Dg:       stats.NumGood,
		Db:       stats.NumBad,
		Ag:       stats.GoodValues(),
		Ab:       stats.BadValues(),
		GoodFreq: histToPMF(stats.FreqHistogram(true)),
		BadFreq:  histToPMF(stats.FreqHistogram(false)),
		TP:       rates.TP(theta),
		FP:       rates.FP(theta),
		TopK:     ix.TopK(),
	}
	p.BadInGoodFrac = badInGoodFrac(db, task, stats)

	ctp, cfp, err := classifier.Measure(w.Cls[i], db, task)
	if err != nil {
		return nil, err
	}
	p.Ctp, p.Cfp = ctp, cfp

	p.AQG, err = w.aqgParams(i)
	if err != nil {
		return nil, err
	}
	p.QPrec = valueQueryPrecision(ix, stats)
	p.ValuesPerDoc = valuesPerDocPMF(db, task, p.TP, p.FP)
	return p, nil
}

// MentionedDocs counts the documents of side i reachable by join-value
// keyword queries: the union of all task values' query matches. This bounds
// the reach of query-based join algorithms.
func (w *Workload) MentionedDocs(i int) int {
	stats := w.DB[i].Stats(w.Task[i])
	seen := map[int]bool{}
	for _, freqs := range []map[string]int{stats.GoodFreq, stats.BadFreq} {
		for v := range freqs {
			for _, id := range w.Ix[i].Matches(index.QueryFromValue(v)) {
				seen[id] = true
			}
		}
	}
	return len(seen)
}

// CasualHits measures the expected hits of a query on a company with no
// task occurrences in side i's database (casual mentions only).
func (w *Workload) CasualHits(i int) float64 {
	stats := w.DB[i].Stats(w.Task[i])
	inTask := map[string]bool{}
	for v := range stats.GoodFreq {
		inTask[v] = true
	}
	for v := range stats.BadFreq {
		inTask[v] = true
	}
	var sum float64
	var n int
	r := stat.NewRNG(271)
	for len(w.Gaz.Companies) > 0 && n < 200 {
		v := w.Gaz.Companies[r.Intn(len(w.Gaz.Companies))]
		if inTask[v] {
			continue
		}
		sum += float64(len(w.Ix[i].Matches(index.QueryFromValue(v))))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TrueOverlaps returns the attribute-value overlap cardinalities between
// the two tasks' gold sets.
func (w *Workload) TrueOverlaps() relation.OverlapSets {
	return relation.Overlaps(w.DB[0].Gold(w.Task[0]), w.DB[1].Gold(w.Task[1]))
}

// aqgParams measures per-query hit compositions on side i's database. Hits
// are counted through the capped search interface — what an AQG execution
// can actually retrieve — not the raw match lists.
func (w *Workload) aqgParams(i int) ([]model.QueryParam, error) {
	stats := w.DB[i].Stats(w.Task[i])
	out := make([]model.QueryParam, 0, len(w.AQGQueries[i]))
	for _, q := range w.AQGQueries[i] {
		matches := w.Ix[i].Search(q.IndexQuery())
		qp := model.QueryParam{Hits: len(matches)}
		for _, id := range matches {
			switch stats.Class[id] {
			case corpus.Good:
				qp.GoodHits++
			case corpus.Bad:
				qp.BadHits++
			}
		}
		out = append(out, qp)
	}
	return out, nil
}

// histToPMF normalizes a frequency histogram (counts[k-1] = #values with
// frequency k) into a PMF.
func histToPMF(hist []int) []float64 {
	var total int
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(hist))
	for i, c := range hist {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// badInGoodFrac measures the fraction of bad occurrences hosted in good
// documents.
func badInGoodFrac(db *corpus.DB, task string, stats *corpus.TaskStats) float64 {
	var inGood, total int
	for i, doc := range db.Docs {
		for _, m := range doc.Mentions {
			if m.Task != task || m.Good {
				continue
			}
			total++
			if stats.Class[i] == corpus.Good {
				inGood++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(inGood) / float64(total)
}

// valueQueryPrecision measures the mean fraction of a value query's hits
// that are occurrence documents of the value: occurrences / H(a), averaged
// over the task's values.
func valueQueryPrecision(ix *index.Index, stats *corpus.TaskStats) float64 {
	occ := map[string]int{}
	for v, f := range stats.GoodFreq {
		occ[v] += f
	}
	for v, f := range stats.BadFreq {
		occ[v] += f
	}
	values := make([]string, 0, len(occ))
	for v := range occ {
		values = append(values, v)
	}
	sort.Strings(values) // deterministic float accumulation order
	var sum float64
	var n int
	for _, v := range values {
		o := occ[v]
		hits := len(ix.Matches(index.QueryFromValue(v)))
		if hits == 0 {
			continue
		}
		frac := float64(o) / float64(hits)
		if frac > 1 {
			frac = 1
		}
		sum += frac
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// valuesPerDocPMF builds the pdk distribution of the zig-zag graph: the
// probability that a document reachable by value queries emits k tuples at
// the IE system's current rates. Each document's emission count is the
// convolution of Binomial(#good mentions, tp) and Binomial(#bad mentions,
// fp); documents with no mentions (casual-only) emit nothing.
func valuesPerDocPMF(db *corpus.DB, task string, tp, fp float64) []float64 {
	var acc []float64
	var docs int
	for _, doc := range db.Docs {
		var gm, bm int
		for _, m := range doc.Mentions {
			if m.Task != task {
				continue
			}
			if m.Good {
				gm++
			} else {
				bm++
			}
		}
		if gm+bm == 0 {
			continue
		}
		docs++
		pmf := convolveBinomials(gm, tp, bm, fp)
		for len(acc) < len(pmf) {
			acc = append(acc, 0)
		}
		for k, p := range pmf {
			acc[k] += p
		}
	}
	if docs == 0 {
		return []float64{1}
	}
	for k := range acc {
		acc[k] /= float64(docs)
	}
	return acc
}

// convolveBinomials returns the PMF of Binomial(n1, p1) + Binomial(n2, p2).
func convolveBinomials(n1 int, p1 float64, n2 int, p2 float64) []float64 {
	a := binomialPMFSlice(n1, p1)
	b := binomialPMFSlice(n2, p2)
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

func binomialPMFSlice(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		out[k] = stat.BinomialPMF(n, k, p)
	}
	return out
}
