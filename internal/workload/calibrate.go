package workload

import (
	"time"

	"joinopt/internal/index"
	"joinopt/internal/join"
)

// CalibrateCosts measures the real per-operation wall times of side i's
// substrates — IE processing (tE), Filtered Scan classification (tF), and
// keyword querying (tQ) — over a document sample, and returns a cost model
// in microseconds. Document retrieval has no intrinsic cost in the
// simulator (documents live in memory), so tR is fixed at one microsecond,
// standing in for a network/disk fetch that real deployments would measure
// the same way. The returned model replaces the unit-free DefaultCosts when
// callers want plan times in wall-clock terms.
func (w *Workload) CalibrateCosts(i int) join.Costs {
	const sample = 200
	docs := w.DB[i].Docs
	n := sample
	if n > len(docs) {
		n = len(docs)
	}

	perOp := func(op func(k int)) float64 {
		start := time.Now()
		for k := 0; k < n; k++ {
			op(k)
		}
		elapsed := time.Since(start)
		return float64(elapsed.Microseconds()) / float64(n)
	}

	tE := perOp(func(k int) { w.Sys[i].Scan(docs[k].Text) })
	tF := perOp(func(k int) { w.Cls[i].Classify(docs[k].Text) })
	values := w.Gaz.Companies
	tQ := perOp(func(k int) { w.Ix[i].Search(index.QueryFromValue(values[k%len(values)])) })

	costs := join.Costs{TR: 1, TE: tE, TF: tF, TQ: tQ}
	// Guard against zero readings on very fast machines/small samples.
	if costs.TE <= 0 {
		costs.TE = join.DefaultCosts.TE
	}
	if costs.TF <= 0 {
		costs.TF = join.DefaultCosts.TF
	}
	if costs.TQ <= 0 {
		costs.TQ = join.DefaultCosts.TQ
	}
	return costs
}
