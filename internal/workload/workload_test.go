package workload

import (
	"sync"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/retrieval"
)

var (
	once  sync.Once
	wl    *Workload
	wlErr error
)

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	once.Do(func() {
		wl, wlErr = HQJoinEX(Params{NumDocs: 1500, Seed: 3})
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func ratioIn(t *testing.T, name string, est, actual, lo, hi float64) {
	t.Helper()
	if actual <= 0 {
		t.Fatalf("%s: actual is zero", name)
	}
	r := est / actual
	if r < lo || r > hi {
		t.Errorf("%s: estimate %.1f vs actual %.1f (ratio %.2f outside [%.2f, %.2f])", name, est, actual, r, lo, hi)
	}
}

func TestWorkloadConstruction(t *testing.T) {
	w := testWorkload(t)
	for i := 0; i < 2; i++ {
		stats := w.DB[i].Stats(w.Task[i])
		if stats == nil {
			t.Fatalf("side %d missing stats", i)
		}
		if stats.NumGood != 225 || stats.NumBad != 120 {
			t.Errorf("side %d partition Dg=%d Db=%d, want 225/120", i, stats.NumGood, stats.NumBad)
		}
		if len(w.AQGQueries[i]) == 0 {
			t.Errorf("side %d has no AQG queries", i)
		}
		if w.Cls[i] == nil {
			t.Errorf("side %d has no classifier", i)
		}
	}
	if len(w.Seeds) == 0 {
		t.Error("no ZGJN seeds")
	}
	ov := w.TrueOverlaps()
	if ov.Agg == 0 || ov.Agb == 0 || ov.Abg == 0 || ov.Abb == 0 {
		t.Errorf("degenerate overlap sets %+v", ov)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := HQJoinEX(Params{NumDocs: 100}); err == nil {
		t.Error("expected error for tiny corpus")
	}
}

func TestTrueParamsSanity(t *testing.T) {
	w := testWorkload(t)
	for i := 0; i < 2; i++ {
		p, err := w.TrueParams(i, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("side %d params invalid: %v", i, err)
		}
		if p.TP < 0.7 || p.TP > 0.95 {
			t.Errorf("side %d tp(0.4) = %v, want ~0.85", i, p.TP)
		}
		if p.FP >= p.TP {
			t.Errorf("side %d fp %v should be below tp %v", i, p.FP, p.TP)
		}
		if p.QPrec <= 0.2 || p.QPrec > 1 {
			t.Errorf("side %d query precision %v out of plausible range", i, p.QPrec)
		}
		if len(p.ValuesPerDoc) < 2 {
			t.Errorf("side %d values-per-doc distribution too small: %v", i, p.ValuesPerDoc)
		}
		p8, err := w.TrueParams(i, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if p8.TP >= p.TP || p8.FP >= p.FP {
			t.Errorf("side %d rates must fall with theta: tp %v->%v fp %v->%v", i, p.TP, p8.TP, p.FP, p8.FP)
		}
	}
	if _, err := w.TrueParams(2, 0.4); err == nil {
		t.Error("expected error for bad side")
	}
}

// TestIDJNModelAccuracy is the in-test version of Figure 9: estimated vs
// actual good and bad join tuples for IDJN with Scan at minSim 0.4.
func TestIDJNModelAccuracy(t *testing.T) {
	w := testWorkload(t)
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.TrueParams(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	m := &model.IDJNModel{P1: p1, P2: p2, X1: retrieval.SC, X2: retrieval.SC, Ov: w.TrueOverlaps()}
	for _, pct := range []int{50, 100} {
		dr := w.DB[0].Size() * pct / 100
		x1, _ := w.NewStrategy(0, retrieval.SC)
		x2, _ := w.NewStrategy(1, retrieval.SC)
		e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.Estimate(dr, dr)
		if err != nil {
			t.Fatal(err)
		}
		ratioIn(t, "IDJN good", est.Good, float64(st.GoodPairs), 0.5, 2.0)
		// Bad tuples overestimate by design: the rates are characterized on
		// the training split, blind to the target outliers (§VII).
		ratioIn(t, "IDJN bad", est.Bad, float64(st.BadPairs), 0.8, 3.0)
	}
}

// TestOIJNModelAccuracy is the in-test version of Figure 10.
func TestOIJNModelAccuracy(t *testing.T) {
	w := testWorkload(t)
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.TrueParams(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	m := &model.OIJNModel{
		P1: p1, P2: p2, Ov: w.TrueOverlaps(), OuterIdx: 0, XOuter: retrieval.SC,
		CasualHits: w.CasualHits(1), MentionedInner: w.MentionedDocs(1),
	}
	for _, pct := range []int{50, 100} {
		dr := w.DB[0].Size() * pct / 100
		x, _ := w.NewStrategy(0, retrieval.SC)
		e, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, x)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.Run(e, func(s *join.State) bool { return s.DocsRetrieved[0] >= dr })
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.Estimate(dr)
		if err != nil {
			t.Fatal(err)
		}
		ratioIn(t, "OIJN good", est.Good, float64(st.GoodPairs), 0.5, 2.0)
		ratioIn(t, "OIJN bad", est.Bad, float64(st.BadPairs), 0.8, 3.0)
		if est.Bad <= float64(st.BadPairs) {
			t.Logf("note: OIJN bad estimate %.0f did not overestimate actual %d on this seed", est.Bad, st.BadPairs)
		}
		q, docs, err := m.InnerWork(dr)
		if err != nil {
			t.Fatal(err)
		}
		ratioIn(t, "OIJN inner queries", q, float64(st.Queries[1]), 0.7, 1.5)
		ratioIn(t, "OIJN inner docs", docs, float64(st.DocsRetrieved[1]), 0.6, 1.6)
	}
}

// TestZGJNModelAccuracy covers Figures 11 and 12: quality and reach of the
// zig-zag join.
func TestZGJNModelAccuracy(t *testing.T) {
	w := testWorkload(t)
	p1, err := w.TrueParams(0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.TrueParams(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	m := &model.ZGJNModel{
		P1: p1, P2: p2, Ov: w.TrueOverlaps(),
		Mentioned1: w.MentionedDocs(0), Mentioned2: w.MentionedDocs(1),
	}
	e, err := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), w.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 12: documents retrieved at the actual query counts.
	d1, err := m.ReachDocs(0, st.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.ReachDocs(1, st.Queries[1])
	if err != nil {
		t.Fatal(err)
	}
	ratioIn(t, "ZGJN docs side 1", d1, float64(st.DocsRetrieved[0]), 0.7, 1.5)
	ratioIn(t, "ZGJN docs side 2", d2, float64(st.DocsRetrieved[1]), 0.7, 1.5)

	// Figure 11: quality at the actual query counts.
	est, err := m.EstimateAtQueries(st.Queries[0], st.Queries[1])
	if err != nil {
		t.Fatal(err)
	}
	ratioIn(t, "ZGJN good", est.Good, float64(st.GoodPairs), 0.5, 2.0)
	ratioIn(t, "ZGJN bad", est.Bad, float64(st.BadPairs), 0.8, 3.0)
}

// TestBadOverestimationShape checks the paper's qualitative finding: with
// rates characterized on the training split, the bad-tuple estimates for the
// query-based algorithms overestimate the actuals (the planted outliers are
// frequent but never extracted).
func TestBadOverestimationShape(t *testing.T) {
	w := testWorkload(t)
	p1, _ := w.TrueParams(0, 0.4)
	p2, _ := w.TrueParams(1, 0.4)
	m := &model.OIJNModel{
		P1: p1, P2: p2, Ov: w.TrueOverlaps(), OuterIdx: 0, XOuter: retrieval.SC,
		CasualHits: w.CasualHits(1), MentionedInner: w.MentionedDocs(1),
	}
	x, _ := w.NewStrategy(0, retrieval.SC)
	e, _ := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, x)
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.Estimate(w.DB[0].Size())
	if err != nil {
		t.Fatal(err)
	}
	if est.Bad <= float64(st.BadPairs) {
		t.Errorf("expected bad-tuple overestimation: est %.0f vs actual %d", est.Bad, st.BadPairs)
	}
}

func TestMentionedDocsBounds(t *testing.T) {
	w := testWorkload(t)
	for i := 0; i < 2; i++ {
		m := w.MentionedDocs(i)
		stats := w.DB[i].Stats(w.Task[i])
		if m < stats.NumGood+stats.NumBad {
			t.Errorf("side %d mentioned %d below Dg+Db", i, m)
		}
		if m > w.DB[i].Size() {
			t.Errorf("side %d mentioned %d exceeds corpus", i, m)
		}
	}
}

func TestCasualHitsPositive(t *testing.T) {
	w := testWorkload(t)
	if h := w.CasualHits(1); h <= 0 || h > 20 {
		t.Errorf("casual hits %v implausible", h)
	}
}

func TestNewStrategyKinds(t *testing.T) {
	w := testWorkload(t)
	for _, k := range []retrieval.Kind{retrieval.SC, retrieval.FS, retrieval.AQG} {
		s, err := w.NewStrategy(0, k)
		if err != nil {
			t.Fatalf("strategy %s: %v", k, err)
		}
		if s.Kind() != k {
			t.Errorf("kind mismatch for %s", k)
		}
	}
	if _, err := w.NewStrategy(0, retrieval.Kind("XX")); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestMGJoinEXWorkload(t *testing.T) {
	w, err := MGJoinEX(Params{NumDocs: 800, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if w.Task[0] != "MG" || w.Task[1] != "EX" {
		t.Fatalf("tasks %v", w.Task)
	}
	stats := w.DB[0].Stats("MG")
	if stats == nil || stats.NumGood == 0 {
		t.Fatal("MG database not generated")
	}
	// MG second attributes are companies from the reserved tail: they must
	// not collide with any join value of either relation.
	joinVals := map[string]bool{}
	for v := range stats.GoodFreq {
		joinVals[v] = true
	}
	for v := range stats.BadFreq {
		joinVals[v] = true
	}
	for tup := range w.DB[0].Gold("MG").Good {
		if joinVals[tup.A2] {
			t.Fatalf("MG second attribute %q collides with a join value", tup.A2)
		}
	}
	ov := w.TrueOverlaps()
	if ov.Agg == 0 {
		t.Error("MG⋈EX has no good-good overlap")
	}
}

func TestPairValidation(t *testing.T) {
	if _, err := Pair(Params{NumDocs: 800}, "HQ", "HQ"); err == nil {
		t.Error("expected error for identical tasks")
	}
	if _, err := Pair(Params{NumDocs: 800}, "HQ", "XX"); err == nil {
		t.Error("expected error for unknown task")
	}
}

func TestCalibrateCosts(t *testing.T) {
	w := testWorkload(t)
	for i := 0; i < 2; i++ {
		c := w.CalibrateCosts(i)
		if c.TR != 1 {
			t.Errorf("side %d TR = %v, want the 1µs stand-in", i, c.TR)
		}
		if c.TE <= 0 || c.TF <= 0 || c.TQ <= 0 {
			t.Errorf("side %d non-positive calibration %+v", i, c)
		}
		// Extraction tags and scores every sentence; it should dominate a
		// single capped index lookup.
		if c.TE < c.TQ/10 {
			t.Errorf("side %d extraction (%v) implausibly cheaper than querying (%v)", i, c.TE, c.TQ)
		}
	}
}

func TestAsymmetricSizes(t *testing.T) {
	w, err := HQJoinEX(Params{NumDocs: 600, NumDocs2: 1800, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if w.DB[0].Size() != 600 || w.DB[1].Size() != 1800 {
		t.Fatalf("sizes %d/%d", w.DB[0].Size(), w.DB[1].Size())
	}
	// Same relation content in a bigger haystack: the second side's good
	// document count matches the first's.
	if w.DB[0].Stats("HQ").NumGood != w.DB[1].Stats("EX").NumGood {
		t.Errorf("good doc counts diverge: %d vs %d",
			w.DB[0].Stats("HQ").NumGood, w.DB[1].Stats("EX").NumGood)
	}
	if _, err := HQJoinEX(Params{NumDocs: 800, NumDocs2: 500}); err == nil {
		t.Error("expected error for NumDocs2 < NumDocs")
	}
}
