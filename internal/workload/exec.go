package workload

import (
	"fmt"
	"sync"

	"joinopt/internal/classifier"
	"joinopt/internal/extract"
	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
)

// NewExecutor builds a fresh join executor for a plan over this workload,
// carrying the workload's fault profile, retry policy, and deadline.
func (w *Workload) NewExecutor(plan optimizer.PlanSpec) (join.Executor, error) {
	s1 := w.Side(0, plan.Theta[0])
	s2 := w.Side(1, plan.Theta[1])
	var e join.Executor
	var err error
	switch plan.JN {
	case optimizer.IDJN:
		var x1, x2 retrieval.Strategy
		if x1, err = w.NewStrategy(0, plan.X[0]); err != nil {
			return nil, err
		}
		if x2, err = w.NewStrategy(1, plan.X[1]); err != nil {
			return nil, err
		}
		e, err = join.NewIDJN(s1, s2, x1, x2)
	case optimizer.OIJN:
		var x retrieval.Strategy
		if x, err = w.NewStrategy(plan.OuterIdx, plan.X[plan.OuterIdx]); err != nil {
			return nil, err
		}
		e, err = join.NewOIJN(s1, s2, plan.OuterIdx, x)
	case optimizer.ZGJN:
		e, err = join.NewZGJN(s1, s2, w.Seeds)
	default:
		return nil, fmt.Errorf("workload: unknown algorithm %q", plan.JN)
	}
	if err != nil {
		return nil, err
	}
	st := e.State()
	st.Deadline = w.Deadline
	st.Trace = w.Trace
	st.Metrics = w.execMetrics()
	if w.Shards >= 2 {
		// Sharded execution: one pipelined engine per shard, each owning its
		// cache slice and a split of the worker budget. The group implements
		// the same frontend contract as a single engine, and the consumer
		// still resolves documents in canonical stream order, so the merged
		// output is bit-identical to the unsharded run.
		set := w.ShardSet
		if set == nil {
			set = shard.NewSet(shard.Partition{N: w.Shards}, 0)
		}
		st.Pipeline = shard.NewGroup(set, w.ExecWorkers,
			[]int{w.DB[0].Size(), w.DB[1].Size()}, w.extractFn())
	} else if w.ExecWorkers >= 1 || w.ExtractCache != nil {
		st.Pipeline = pipeline.NewEngine(w.ExtractCache, w.ExecWorkers, w.extractFn())
	}
	// Bind the trace clock to this executor's cost-model time so sites
	// without State access (fault injectors, retrieval wrappers) stamp their
	// events consistently with the executor's own.
	w.Trace.SetClock(func() float64 { return st.Time })
	return e, nil
}

// extractFn returns the pure extraction function pipelined engines run on
// worker goroutines: the canonical (side, doc, θ) extraction, no fault or
// accounting state touched.
func (w *Workload) extractFn() func(pipeline.Key) []relation.Tuple {
	return func(k pipeline.Key) []relation.Tuple {
		return w.Sys[k.Side].Extract(w.DB[k.Side].Doc(k.DocID).Text, k.Theta)
	}
}

// envStatics is the run-independent part of the optimizer environment:
// the training-split IE characterization, classifier rates, AQG query
// compositions, and the casual-hit/mention measurements. Measuring them
// walks both training corpora, so the memo matters for a service that runs
// many adaptive jobs over one shared workload; sync.Once also makes the
// measurement safe under concurrent NewEnv calls.
type envStatics struct {
	once       sync.Once
	err        error
	rates      [2]*extract.Rates
	ctp, cfp   [2]float64
	aqg        [2][]model.QueryParam
	casualHits [2]float64
	mentioned  [2]int
}

// envStatics resolves (measuring once) the shared static measurements.
// Workloads constructed before the memo existed get a private one lazily.
func (w *Workload) envStatics() (*envStatics, error) {
	s := w.statics
	if s == nil {
		s = &envStatics{}
		w.statics = s
	}
	s.once.Do(func() {
		for i := 0; i < 2; i++ {
			if s.rates[i], s.err = extract.MeasureRates(w.Sys[i], w.Train[i]); s.err != nil {
				return
			}
			if s.ctp[i], s.cfp[i], s.err = classifier.Measure(w.Cls[i], w.Train[i], w.Task[i]); s.err != nil {
				return
			}
			if s.aqg[i], s.err = w.aqgParams(i); s.err != nil {
				return
			}
			s.casualHits[i] = w.CasualHits(i)
			s.mentioned[i] = w.MentionedDocs(i)
		}
	})
	if s.err != nil {
		return nil, s.err
	}
	return s, nil
}

// NewEnv assembles the adaptive optimizer's environment over this workload:
// executor construction, the training-split IE characterization, and the
// offline-measurable retrieval and join parameters. Database-specific
// parameters are left to the on-the-fly estimator. The static measurements
// are memoized on the workload (shared with its clones), so repeated and
// concurrent NewEnv calls pay for them once.
func (w *Workload) NewEnv(thetas []float64) (*optimizer.Env, error) {
	st, err := w.envStatics()
	if err != nil {
		return nil, err
	}
	rates := st.rates
	env := &optimizer.Env{
		NewExecutor: w.NewExecutor,
		Trace:       w.Trace,
		Metrics:     w.Metrics,
		NumDocs:     [2]int{w.DB[0].Size(), w.DB[1].Size()},
		Rates: func(side int, theta float64) (float64, float64) {
			return rates[side].TP(theta), rates[side].FP(theta)
		},
		Thetas:         thetas,
		Costs:          [2]model.Costs{w.Costs[0], w.Costs[1]},
		CasualHits:     st.casualHits,
		Mentioned:      st.mentioned,
		SeedCount:      len(w.Seeds),
		TopK:           [2]int{w.Ix[0].TopK(), w.Ix[1].TopK()},
		BadInGoodPrior: 0.3,
		ExecWorkers:    w.ExecWorkers,
		Shards:         w.Shards,
	}
	if w.Shards >= 2 && w.ShardSet != nil {
		set := w.ShardSet
		env.CacheHitRate = func(int) float64 { return set.HitRate() }
	} else if w.ExtractCache != nil {
		cache := w.ExtractCache
		env.CacheHitRate = func(int) float64 { return cache.HitRate() }
	}
	for i := 0; i < 2; i++ {
		env.AQG[i] = st.aqg[i]
		// Value-query precision prior from the training corpus shape.
		env.QPrec[i] = 0.5
		// Classifier rates characterized on the held-out training split.
		env.Ctp[i], env.Cfp[i] = st.ctp[i], st.cfp[i]
	}
	return env, nil
}

// TrueInputs assembles perfect-knowledge optimizer inputs (used by the
// model-accuracy variants of the plan-choice experiments).
func (w *Workload) TrueInputs(thetas []float64) (*optimizer.Inputs, error) {
	in := &optimizer.Inputs{
		Thetas:     thetas,
		Ov:         w.TrueOverlaps(),
		Costs:      [2]model.Costs{w.Costs[0], w.Costs[1]},
		CasualHits: [2]float64{w.CasualHits(0), w.CasualHits(1)},
		Mentioned:  [2]int{w.MentionedDocs(0), w.MentionedDocs(1)},
		SeedCount:  len(w.Seeds),
	}
	for side := 0; side < 2; side++ {
		for _, theta := range thetas {
			p, err := w.TrueParams(side, theta)
			if err != nil {
				return nil, err
			}
			in.P[side] = append(in.P[side], p)
		}
	}
	return in, nil
}
