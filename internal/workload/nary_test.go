package workload

import (
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/optimizer"
	"joinopt/internal/querygraph"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
)

func naryTriple(t *testing.T) *MultiWorkload {
	t.Helper()
	mw, err := Multi(Params{NumDocs: 450, Seed: 33}, []string{"HQ", "EX", "MG"})
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

func narySides(mw *MultiWorkload, theta float64) ([]*join.Side, []retrieval.Strategy) {
	n := len(mw.DBs)
	sides := make([]*join.Side, n)
	strats := make([]retrieval.Strategy, n)
	for i := 0; i < n; i++ {
		sides[i] = mw.Side(i, theta)
		strats[i] = mw.Scan(i)
	}
	return sides, strats
}

// TestNaryExecGoldenVsMultiIDJN is the golden parity test: at TJ=0 with no
// effort caps and no pipeline engine, the tree executor must reproduce the
// legacy MultiIDJN execution bit-for-bit — every counter and the cost-model
// time.
func TestNaryExecGoldenVsMultiIDJN(t *testing.T) {
	mw := naryTriple(t)
	sides, strats := narySides(mw, 0.4)
	legacy, err := join.NewMultiIDJN(sides, strats)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := join.RunMulti(legacy, nil)
	if err != nil {
		t.Fatal(err)
	}
	sides2, strats2 := narySides(mw, 0.4)
	exec, err := join.NewNaryExec(sides2, strats2, join.NaryPlan{})
	if err != nil {
		t.Fatal(err)
	}
	nst, err := join.RunNary(exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nst.GoodTuples != lst.GoodTuples || nst.BadTuples != lst.BadTuples {
		t.Errorf("tuples diverged: tree (%d, %d) vs legacy (%d, %d)",
			nst.GoodTuples, nst.BadTuples, lst.GoodTuples, lst.BadTuples)
	}
	if nst.Time != lst.Time {
		t.Errorf("time diverged: tree %v vs legacy %v", nst.Time, lst.Time)
	}
	for i := range sides {
		if nst.DocsProcessed[i] != lst.DocsProcessed[i] || nst.DocsRetrieved[i] != lst.DocsRetrieved[i] ||
			nst.DocsFiltered[i] != lst.DocsFiltered[i] || nst.Queries[i] != lst.Queries[i] {
			t.Errorf("side %d counters diverged: tree %+v vs legacy %+v", i, nst.MultiState, lst)
		}
	}
	// The root node's materialization count is the total output.
	root := nst.NodeTuples[len(nst.NodeTuples)-1]
	if root != nst.GoodTuples+nst.BadTuples {
		t.Errorf("root node tuples %d != good+bad %d", root, nst.GoodTuples+nst.BadTuples)
	}
}

// TestNaryExecEffortCaps: the executor must stop each side exactly at its
// effort cap (retrieved documents for scans).
func TestNaryExecEffortCaps(t *testing.T) {
	mw := naryTriple(t)
	sides, strats := narySides(mw, 0.4)
	caps := []int{100, 220, 150}
	exec, err := join.NewNaryExec(sides, strats, join.NaryPlan{
		Caps:  caps,
		Kinds: []retrieval.Kind{retrieval.SC, retrieval.SC, retrieval.SC},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.RunNary(exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cap := range caps {
		if st.DocsRetrieved[i] != cap {
			t.Errorf("side %d retrieved %d docs, cap %d", i, st.DocsRetrieved[i], cap)
		}
		if st.DocsProcessed[i] != cap {
			t.Errorf("side %d processed %d docs, cap %d", i, st.DocsProcessed[i], cap)
		}
	}
}

// TestNaryExecMergeAccounting: with TJ > 0 the execution charges exactly
// TJ·ΣNodeTuples on top of the TJ=0 baseline, and reports the split.
func TestNaryExecMergeAccounting(t *testing.T) {
	mw := naryTriple(t)
	run := func(tj float64) *join.NaryState {
		sides, strats := narySides(mw, 0.4)
		exec, err := join.NewNaryExec(sides, strats, join.NaryPlan{TJ: tj})
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.RunNary(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(0)
	charged := run(0.25)
	if base.MergeTime != 0 {
		t.Errorf("TJ=0 charged merge time %v", base.MergeTime)
	}
	var nodeSum int
	for _, n := range charged.NodeTuples {
		nodeSum += n
	}
	if want := 0.25 * float64(nodeSum); charged.MergeTime != want {
		t.Errorf("merge time %v, want TJ·ΣNodeTuples = %v", charged.MergeTime, want)
	}
	if charged.Time != base.Time+charged.MergeTime {
		t.Errorf("time %v != baseline %v + merge %v", charged.Time, base.Time, charged.MergeTime)
	}
	if charged.GoodTuples != base.GoodTuples || charged.BadTuples != base.BadTuples {
		t.Error("TJ changed the output composition")
	}
}

// TestNaryExecTreeShapeInvariance: the root output is order-independent —
// any tree over the same relations yields identical good/bad counts; only
// the intermediate materializations move.
func TestNaryExecTreeShapeInvariance(t *testing.T) {
	mw := naryTriple(t)
	trees := []*join.TreeNode{
		nil, // default left-deep chain
		{Rel: -1, Left: &join.TreeNode{Rel: 0}, Right: &join.TreeNode{
			Rel: -1, Left: &join.TreeNode{Rel: 1}, Right: &join.TreeNode{Rel: 2}}},
		{Rel: -1, Left: &join.TreeNode{Rel: -1, Left: &join.TreeNode{Rel: 2}, Right: &join.TreeNode{Rel: 0}},
			Right: &join.TreeNode{Rel: 1}},
	}
	var ref *join.NaryState
	for ti, tree := range trees {
		sides, strats := narySides(mw, 0.8)
		exec, err := join.NewNaryExec(sides, strats, join.NaryPlan{Tree: tree})
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.RunNary(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ti == 0 {
			ref = st
			continue
		}
		if st.GoodTuples != ref.GoodTuples || st.BadTuples != ref.BadTuples || st.Time != ref.Time {
			t.Errorf("tree %d diverged: (%d, %d, %v) vs (%d, %d, %v)", ti,
				st.GoodTuples, st.BadTuples, st.Time, ref.GoodTuples, ref.BadTuples, ref.Time)
		}
	}
}

// TestNaryExecPipelineBitIdentical: the pipeline engine must leave the
// execution bit-identical at every worker count, with the Time+ΣCacheSaved
// invariant, exactly like the binary executors.
func TestNaryExecPipelineBitIdentical(t *testing.T) {
	mw := naryTriple(t)
	g, err := querygraph.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := mw.TrueNaryInputs([]float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	in.Workers = 1
	best, _, err := optimizer.ChooseNary(g, in, optimizer.Requirement{TauG: 10, TauB: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var ref *join.NaryState
	for _, workers := range []int{0, 1, 4} {
		exec, err := mw.NewNaryExecutor(best, 0.1, workers, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.RunNary(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = st
			if st.GoodTuples == 0 {
				t.Fatal("chosen plan produced no good tuples")
			}
			continue
		}
		if st.GoodTuples != ref.GoodTuples || st.BadTuples != ref.BadTuples {
			t.Errorf("workers=%d tuples diverged: (%d, %d) vs (%d, %d)", workers,
				st.GoodTuples, st.BadTuples, ref.GoodTuples, ref.BadTuples)
		}
		sum := func(s *join.NaryState) float64 {
			total := s.Time
			for _, cs := range s.CacheSaved {
				total += cs
			}
			return total
		}
		if sum(st) != sum(ref) {
			t.Errorf("workers=%d Time+ΣCacheSaved invariant broken: %v vs %v", workers, sum(st), sum(ref))
		}
		for i := range st.DocsProcessed {
			if st.DocsProcessed[i] != ref.DocsProcessed[i] {
				t.Errorf("workers=%d side %d processed %d vs %d", workers, i, st.DocsProcessed[i], ref.DocsProcessed[i])
			}
		}
	}
}

// TestNaryExecShardedBitIdentical: sharding a four-relation tree execution
// must leave every counter identical at every shard count — the leaves route
// through per-shard engines but the tree nodes keep merging the canonical
// consumer-ordered streams — including with a per-shard worker split on top,
// and the Time+ΣCacheSaved warmth invariant must hold.
func TestNaryExecShardedBitIdentical(t *testing.T) {
	mw, err := Multi(Params{NumDocs: 450, Seed: 33}, []string{"HQ", "EX", "MG", "HQ"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := querygraph.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	in, err := mw.TrueNaryInputs([]float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	in.Workers = 1
	best, _, err := optimizer.ChooseNary(g, in, optimizer.Requirement{TauG: 5, TauB: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards, workers int) *join.NaryState {
		var set *shard.Set
		if shards >= 2 {
			set = shard.NewSet(shard.Partition{N: shards}, 1<<26)
		}
		exec, err := mw.NewNaryExecutor(best, 0.1, workers, nil, set)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.RunNary(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	warmth := func(s *join.NaryState) float64 {
		total := s.Time
		for _, cs := range s.CacheSaved {
			total += cs
		}
		return total
	}
	ref := run(0, 0)
	if ref.GoodTuples == 0 {
		t.Fatal("chosen plan produced no good tuples")
	}
	for _, cfg := range [][2]int{{1, 0}, {2, 0}, {4, 0}, {8, 0}, {4, 3}} {
		st := run(cfg[0], cfg[1])
		if st.GoodTuples != ref.GoodTuples || st.BadTuples != ref.BadTuples {
			t.Errorf("shards=%d workers=%d tuples diverged: (%d, %d) vs (%d, %d)", cfg[0], cfg[1],
				st.GoodTuples, st.BadTuples, ref.GoodTuples, ref.BadTuples)
		}
		if warmth(st) != warmth(ref) {
			t.Errorf("shards=%d workers=%d Time+ΣCacheSaved invariant broken: %v vs %v", cfg[0], cfg[1], warmth(st), warmth(ref))
		}
		for i := range st.DocsProcessed {
			if st.DocsProcessed[i] != ref.DocsProcessed[i] || st.DocsRetrieved[i] != ref.DocsRetrieved[i] {
				t.Errorf("shards=%d workers=%d side %d counters diverged", cfg[0], cfg[1], i)
			}
		}
	}
}

// TestChooseNaryOnWorkload runs the enumerator against measured workload
// parameters end to end: the chosen plan must be feasible, its executed
// output must reach the requirement's τg, and the executed efforts must
// respect the plan's caps.
func TestChooseNaryOnWorkload(t *testing.T) {
	mw := naryTriple(t)
	g, err := mw.Graph(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := mw.TrueNaryInputs([]float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	req := optimizer.Requirement{TauG: 25, TauB: 1 << 30}
	best, evals, err := optimizer.ChooseNary(g, in, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 || !best.Feasible {
		t.Fatalf("no feasible plan: %+v", best)
	}
	exec, err := mw.NewNaryExecutor(best, in.TJ, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.RunNary(exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The model is an expectation, not an exact predictor — require the
	// executed output to land within a factor of the requirement.
	if st.GoodTuples < req.TauG/3 {
		t.Errorf("executed good tuples %d far below τg %d (predicted %.1f)",
			st.GoodTuples, req.TauG, best.Quality.Good)
	}
	for i, leaf := range best.Leaves {
		if st.DocsRetrieved[leaf.Rel] > leaf.Effort {
			t.Errorf("side %d retrieved %d docs past its cap %d", i, st.DocsRetrieved[leaf.Rel], leaf.Effort)
		}
	}
}
