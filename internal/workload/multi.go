package workload

import (
	"fmt"
	"sync"

	"joinopt/internal/corpus"
	"joinopt/internal/extract"
	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/querygraph"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

// MultiWorkload is an n-database workload for the higher-order join
// extension (the paper's stated future work). Its scope is deliberately
// narrower than the binary Workload: scan-based retrieval only, no planted
// outliers, and IE rates characterized on the target corpora.
type MultiWorkload struct {
	Params Params
	Gaz    *textgen.Gazetteer
	Tasks  []string
	DBs    []*corpus.DB
	Sys    []*extract.System
	Costs  []join.Costs

	// ratesMu/rates memoize the per-side IE rate characterization: it walks
	// the whole corpus, and the n-ary input assembly needs it once per side,
	// not once per (side, θ).
	ratesMu sync.Mutex
	rates   []*extract.Rates
}

// Multi builds an n-task workload over the standard tasks ("HQ", "EX",
// "MG"), 2 ≤ n ≤ querygraph.MaxRelations; tasks may repeat — each index
// gets its own corpus (distinct generation seed) and its own private value
// ranges, so repeated tasks still produce distinct relations. The join
// values split into a shared core present in every relation (so the n-way
// good composition is non-empty) plus per-index private ranges; each
// relation's bad values overlap the shared core at a staggered offset, so
// mixed good/bad class combinations are populated.
func Multi(p Params, tasks []string) (*MultiWorkload, error) {
	if p.NumDocs < 400 {
		return nil, fmt.Errorf("workload: NumDocs must be at least 400, got %d", p.NumDocs)
	}
	N := len(tasks)
	if N < 2 || N > querygraph.MaxRelations {
		return nil, fmt.Errorf("workload: multi-way supports 2..%d tasks, got %d", querygraph.MaxRelations, N)
	}
	vocabs := make([]textgen.TaskVocab, N)
	for i, task := range tasks {
		v, ok := textgen.VocabByTask(task)
		if !ok {
			return nil, fmt.Errorf("workload: unknown task %q", task)
		}
		vocabs[i] = v
	}

	mw := &MultiWorkload{Params: p, Tasks: append([]string(nil), tasks...)}
	nGood := p.NumDocs * 15 / 100
	nBad := p.NumDocs * 8 / 100
	n := nGood * 13 / 20
	nb := n * 7 / 10
	h := n / 2 // core size; privates are h each

	universe := h*(N+1) + nb + 60
	mgExtra := 0
	for _, v := range vocabs {
		if v.Slot2 == textgen.Company {
			mgExtra = 2*n + 40
		}
	}
	mw.Gaz = textgen.NewGazetteer(universe+mgExtra, 2*n+40, 400)
	shuffled := textgen.Shuffled(stat.NewRNG(p.Seed+17), mw.Gaz.Companies[:universe])
	mgSeconds := mw.Gaz.Companies[universe:]

	core := shuffled[:h]
	goodFor := func(i int) []string {
		private := shuffled[h+i*h : h+(i+1)*h]
		out := make([]string, 0, 2*h)
		out = append(out, core...)
		out = append(out, private...)
		return out
	}
	// Bad values start inside the shared core (staggered per task) and
	// spill into the private ranges, so mixed good/bad class combinations
	// across all n relations are populated — without that, every n-way
	// tuple would be all-good.
	badFor := func(i int) []string {
		start := i * h / 3
		return shuffled[start : start+nb]
	}

	tagger := extract.NewTagger(mw.Gaz)
	for i, v := range vocabs {
		spec := corpus.RelationSpec{
			Vocab:         v,
			GoodValues:    goodFor(i),
			BadValues:     badFor(i),
			GoodFreq:      stat.MustPowerLaw(2.0, 20),
			BadFreq:       stat.MustPowerLaw(2.2, 15),
			NumGoodDocs:   nGood,
			NumBadDocs:    nBad,
			BadInGoodRate: 0.3,
		}
		switch v.Task {
		case "HQ":
			spec.Schema = relation.Schema{Name: "Headquarters", Attr1: "Company", Attr2: "Location"}
			spec.GoodSeconds = mw.Gaz.Locations[:200]
			spec.BadSeconds = mw.Gaz.Locations[200:400]
		case "EX":
			spec.Schema = relation.Schema{Name: "Executives", Attr1: "Company", Attr2: "CEO"}
			spec.GoodSeconds = mw.Gaz.Persons[:n+20]
			spec.BadSeconds = mw.Gaz.Persons[n+20 : 2*n+40]
		case "MG":
			spec.Schema = relation.Schema{Name: "Mergers", Attr1: "Company", Attr2: "MergedWith"}
			spec.GoodSeconds = mgSeconds[:n+20]
			spec.BadSeconds = mgSeconds[n+20 : 2*n+40]
		}
		db, err := corpus.Generate(corpus.Config{
			Name: fmt.Sprintf("target%d-%s", i+1, v.Task), NumDocs: p.NumDocs, Seed: p.Seed + int64(i) + 1,
			Relations:  []corpus.RelationSpec{spec},
			CasualRate: 0.45, CasualPool: mw.Gaz.Companies,
		})
		if err != nil {
			return nil, err
		}
		mw.DBs = append(mw.DBs, db)
		sys, err := extract.NewSystemFromVocab(v, tagger)
		if err != nil {
			return nil, err
		}
		sys.EnableCache()
		mw.Sys = append(mw.Sys, sys)
		mw.Costs = append(mw.Costs, join.DefaultCosts)
	}
	return mw, nil
}

// Side builds a join.Side for side i at knob configuration theta.
func (mw *MultiWorkload) Side(i int, theta float64) *join.Side {
	return &join.Side{
		DB:     mw.DBs[i],
		System: mw.Sys[i],
		Theta:  theta,
		Gold:   mw.DBs[i].Gold(mw.Tasks[i]),
		Costs:  mw.Costs[i],
	}
}

// Scan returns a fresh scan strategy for side i.
func (mw *MultiWorkload) Scan(i int) retrieval.Strategy {
	return retrieval.NewScan(mw.DBs[i].Size())
}

// Golds returns the gold sets in task order.
func (mw *MultiWorkload) Golds() []*relation.Gold {
	out := make([]*relation.Gold, len(mw.DBs))
	for i, db := range mw.DBs {
		out[i] = db.Gold(mw.Tasks[i])
	}
	return out
}

// TrueMultiModel measures the perfect-knowledge parameters of every side at
// theta and assembles the n-way quality model.
func (mw *MultiWorkload) TrueMultiModel(theta float64) (*model.MultiIDJNModel, error) {
	m := &model.MultiIDJNModel{Classes: relation.MultiOverlaps(mw.Golds())}
	for i := range mw.DBs {
		p, err := mw.trueParams(i, theta)
		if err != nil {
			return nil, err
		}
		m.P = append(m.P, p)
		m.X = append(m.X, retrieval.SC)
	}
	return m, nil
}

// measuredRates characterizes side i's IE rates once, caching the result
// (θ-independent: TP(θ)/FP(θ) are curves evaluated later).
func (mw *MultiWorkload) measuredRates(i int) (*extract.Rates, error) {
	mw.ratesMu.Lock()
	defer mw.ratesMu.Unlock()
	if mw.rates == nil {
		mw.rates = make([]*extract.Rates, len(mw.DBs))
	}
	if mw.rates[i] != nil {
		return mw.rates[i], nil
	}
	r, err := extract.MeasureRates(mw.Sys[i], mw.DBs[i])
	if err != nil {
		return nil, err
	}
	mw.rates[i] = r
	return r, nil
}

// trueParams measures the scan-path model parameters of side i.
func (mw *MultiWorkload) trueParams(i int, theta float64) (*model.RelationParams, error) {
	db, task := mw.DBs[i], mw.Tasks[i]
	stats := db.Stats(task)
	if stats == nil {
		return nil, fmt.Errorf("workload: database %s missing task %s", db.Name, task)
	}
	rates, err := mw.measuredRates(i)
	if err != nil {
		return nil, err
	}
	return &model.RelationParams{
		D:             db.Size(),
		Dg:            stats.NumGood,
		Db:            stats.NumBad,
		Ag:            stats.GoodValues(),
		Ab:            stats.BadValues(),
		GoodFreq:      histToPMF(stats.FreqHistogram(true)),
		BadFreq:       histToPMF(stats.FreqHistogram(false)),
		TP:            rates.TP(theta),
		FP:            rates.FP(theta),
		BadInGoodFrac: badInGoodFrac(db, task, stats),
	}, nil
}
