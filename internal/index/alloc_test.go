package index

import (
	"fmt"
	"testing"
)

// allocCorpus builds a corpus whose multi-term queries match many documents,
// exercising both the intersection and (with a cap) the top-k selection.
func allocCorpus(topK int) (*Index, []Query) {
	texts := make([]string, 2000)
	for i := range texts {
		texts[i] = fmt.Sprintf("acme dynamics corp report %d from sector %d", i, i%7)
	}
	ix := New(texts, topK)
	return ix, []Query{
		QueryFromValue("Acme Dynamics"),
		{Terms: []string{"corp", "report"}},
		{Terms: []string{"sector", "acme"}},
	}
}

// TestSearchIntoReusesBuffer is the hot-path allocation guard: once the
// caller's buffer has grown to the result size, SearchInto on an uncapped
// index must not allocate at all. The OIJN and ZGJN inner loops depend on
// this (they issue one query per join value).
func TestSearchIntoReusesBuffer(t *testing.T) {
	ix, queries := allocCorpus(0)
	var buf []int
	for _, q := range queries { // warm the buffer to its high-water mark
		buf = ix.SearchInto(q, buf[:0])
	}
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(100, func() {
			buf = ix.SearchInto(q, buf[:0])
		})
		if allocs != 0 {
			t.Errorf("SearchInto(%v) with warm buffer: %.1f allocs/op, want 0", q, allocs)
		}
	}
}

// TestSearchIntoTopKBounded guards the capped path: the top-k selection is
// heap-based and must not allocate per result — only the per-term query
// hashing may allocate, independent of how many documents match.
func TestSearchIntoTopKBounded(t *testing.T) {
	ix, queries := allocCorpus(10)
	var buf []int
	for _, q := range queries {
		buf = ix.SearchInto(q, buf[:0])
	}
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(100, func() {
			buf = ix.SearchInto(q, buf[:0])
		})
		// fnv hasher + one []byte conversion per term.
		if max := float64(1 + len(q.Terms)); allocs > max {
			t.Errorf("SearchInto(%v) top-k: %.1f allocs/op, want <= %.0f (per-term hashing only)", q, allocs, max)
		}
	}
}

// TestSearchIntoMatchesSearch cross-checks the buffered path against the
// allocating one across cap settings.
func TestSearchIntoMatchesSearch(t *testing.T) {
	for _, topK := range []int{0, 10} {
		ix, queries := allocCorpus(topK)
		var buf []int
		for _, q := range queries {
			want := ix.Search(q)
			buf = ix.SearchInto(q, buf[:0])
			if len(buf) != len(want) {
				t.Fatalf("topK=%d %v: SearchInto %d results, Search %d", topK, q, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("topK=%d %v: result %d is %d, want %d", topK, q, i, buf[i], want[i])
				}
			}
		}
	}
}

// BenchmarkSearchInto measures the reused-buffer hot path; allocs/op is the
// guarded figure (see TestSearchIntoReusesBuffer).
func BenchmarkSearchInto(b *testing.B) {
	ix, queries := allocCorpus(10)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.SearchInto(queries[i%len(queries)], buf[:0])
	}
}

// BenchmarkSearchAlloc is the pre-existing allocating entry point, kept as
// the comparison baseline.
func BenchmarkSearchAlloc(b *testing.B) {
	ix, queries := allocCorpus(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)])
	}
}
