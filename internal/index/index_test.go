package index

import (
	"fmt"
	"testing"
	"testing/quick"
)

var docs = []string{
	"Acme Dynamics opened offices in Pine Bluff yesterday",
	"Vertex Holdings merged with Acme Dynamics last quarter",
	"pine bluff officials met acme representatives",
	"nothing relevant here at all",
	"Acme Dynamics headquartered near Pine Bluff",
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Acme-Dynamics, opened (offices)!")
	want := []string{"acme", "dynamics", "opened", "offices"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if len(Tokenize("  ,.!  ")) != 0 {
		t.Error("punctuation-only text should produce no tokens")
	}
}

func TestSearchConjunctive(t *testing.T) {
	ix := New(docs, 0)
	res := ix.Search(QueryFromValue("Acme Dynamics"))
	want := []int{0, 1, 4}
	if fmt.Sprint(res) != fmt.Sprint(want) {
		t.Errorf("search = %v, want %v", res, want)
	}
}

func TestSearchSingleTerm(t *testing.T) {
	ix := New(docs, 0)
	res := ix.Search(Query{Terms: []string{"pine"}})
	want := []int{0, 2, 4}
	if fmt.Sprint(res) != fmt.Sprint(want) {
		t.Errorf("search = %v, want %v", res, want)
	}
}

func TestSearchCaseInsensitive(t *testing.T) {
	ix := New(docs, 0)
	a := ix.Search(Query{Terms: []string{"ACME"}})
	b := ix.Search(Query{Terms: []string{"acme"}})
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("search must be case-insensitive")
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := New(docs, 0)
	if res := ix.Search(QueryFromValue("zebra")); len(res) != 0 {
		t.Errorf("unexpected matches %v", res)
	}
	if res := ix.Search(Query{}); len(res) != 0 {
		t.Errorf("empty query should match nothing, got %v", res)
	}
	if res := ix.Search(QueryFromValue("acme zebra")); len(res) != 0 {
		t.Errorf("conjunction with unknown term should match nothing, got %v", res)
	}
}

func TestTopKCap(t *testing.T) {
	ix := New(docs, 2)
	res := ix.Search(Query{Terms: []string{"acme"}})
	if len(res) != 2 {
		t.Fatalf("top-k cap violated: %v", res)
	}
	// Matches ignores the cap, and capped results are a subset of it.
	all := ix.Matches(Query{Terms: []string{"acme"}})
	if len(all) != 4 {
		t.Fatalf("Matches = %v, want all 4", all)
	}
	inAll := map[int]bool{}
	for _, id := range all {
		inAll[id] = true
	}
	for _, id := range res {
		if !inAll[id] {
			t.Fatalf("capped result %d not among matches %v", id, all)
		}
	}
	if ix.TopK() != 2 {
		t.Error("TopK accessor wrong")
	}
}

func TestTopKQueryDependentRanking(t *testing.T) {
	// Build a collection where two different queries share many matches;
	// with query-dependent ranking their capped results should differ.
	texts := make([]string, 60)
	for i := range texts {
		texts[i] = "alpha beta"
	}
	ix := New(texts, 10)
	a := ix.Search(Query{Terms: []string{"alpha"}})
	b := ix.Search(Query{Terms: []string{"beta"}})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different queries over the same matches returned identical top-k sets")
	}
	// Determinism: repeating the query returns the same set.
	a2 := ix.Search(Query{Terms: []string{"alpha"}})
	for i := range a {
		if a[i] != a2[i] {
			t.Fatal("search not deterministic")
		}
	}
}

func TestDocFreq(t *testing.T) {
	ix := New(docs, 0)
	if ix.DocFreq("acme") != 4 {
		t.Errorf("DocFreq(acme) = %d", ix.DocFreq("acme"))
	}
	if ix.DocFreq("ACME") != 4 {
		t.Error("DocFreq must be case-insensitive")
	}
	if ix.DocFreq("nope") != 0 {
		t.Error("unknown term should have zero frequency")
	}
	if ix.NumDocs() != len(docs) {
		t.Error("NumDocs wrong")
	}
}

func TestSearchResultsSortedAndUnique(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a small synthetic collection and check every single-term
		// query returns sorted unique IDs.
		texts := make([]string, 20)
		for i := range texts {
			texts[i] = fmt.Sprintf("w%d w%d w%d", (int(seed)+i)%5, i%3, i%7)
		}
		ix := New(texts, 0)
		for v := 0; v < 7; v++ {
			res := ix.Search(Query{Terms: []string{fmt.Sprintf("w%d", v)}})
			for j := 1; j < len(res); j++ {
				if res[j] <= res[j-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSearchSubsetOfMatches(t *testing.T) {
	// Property: Search results are always a subset of Matches, sorted.
	ix := New(docs, 1)
	q := Query{Terms: []string{"acme"}}
	s := ix.Search(q)
	m := ix.Matches(q)
	if len(s) != 1 {
		t.Fatalf("capped search %v should have one result", s)
	}
	found := false
	for _, id := range m {
		if id == s[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("capped search %v not a subset of matches %v", s, m)
	}
}

func TestIntersectDoesNotAliasPostings(t *testing.T) {
	ix := New(docs, 0)
	res := ix.Search(Query{Terms: []string{"acme"}})
	res[0] = 999
	again := ix.Search(Query{Terms: []string{"acme"}})
	if again[0] == 999 {
		t.Error("search result aliases internal postings")
	}
}

func TestQueryString(t *testing.T) {
	q := QueryFromValue("Acme Dynamics")
	if q.String() != "[acme dynamics]" {
		t.Errorf("got %q", q.String())
	}
}
