// Package index implements the keyword search interface of a text database:
// a tokenizer, an inverted index over documents, and conjunctive keyword
// queries with a configurable top-k result cap.
//
// The top-k cap models the search-interface limit the paper identifies as
// the factor bounding the reach of query-based join algorithms (OIJN and
// ZGJN, §IV-B/C): documents matching a query beyond the cap are simply not
// returned and must be reached by other queries.
package index

import (
	"hash/fnv"
	"slices"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize lower-cases text and splits it into letter/digit runs. It is the
// single tokenization used by the index, the extraction engine, the
// classifiers, and the query generator, so all components agree on terms.
func Tokenize(text string) []string {
	return TokenizeInto(text, nil, nil)
}

// Interner caches the lowered form of raw token spans so repeated
// tokenization of a vocabulary allocates each lowered string once. Keys are
// substrings of the tokenized texts, so an interner pins those texts in
// memory — appropriate for corpus documents that live in the database
// anyway. Interners are not safe for concurrent use; give each worker its
// own (see extract's scan scratch).
type Interner map[string]string

// lower returns the lowered form of a raw token span, consulting and
// updating the intern table when one is attached.
func (in Interner) lower(raw string) string {
	if in == nil {
		return strings.ToLower(raw)
	}
	if s, ok := in[raw]; ok {
		return s
	}
	s := strings.ToLower(raw)
	in[raw] = s
	return s
}

// TokenizeInto is Tokenize with a caller-owned token buffer and an optional
// intern table: tokens are appended to buf's backing array (grown as
// needed), and spans that are already lower-case — the common case for body
// text — are substrings of text, not copies. With a warm buffer and
// interner the call does not allocate; the extraction hot path depends on
// this (the extract alloc guard covers it).
func TokenizeInto(text string, buf []string, in Interner) []string {
	out := buf
	start := -1 // byte offset of the current letter/digit run, -1 outside one
	lower := true
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start, lower = i, true
			}
			// Conservative: any non-ASCII rune goes through ToLower.
			if r >= 'A' && r <= 'Z' || r >= utf8.RuneSelf {
				lower = false
			}
			continue
		}
		if start >= 0 {
			out = appendToken(out, text[start:i], lower, in)
			start = -1
		}
	}
	if start >= 0 {
		out = appendToken(out, text[start:], lower, in)
	}
	return out
}

// appendToken appends a token span, lowering it only when needed.
func appendToken(out []string, raw string, lower bool, in Interner) []string {
	if lower {
		return append(out, raw)
	}
	return append(out, in.lower(raw))
}

// Query is a conjunctive keyword query: a document matches iff it contains
// every term.
type Query struct {
	Terms []string
}

// QueryFromValue builds the query an execution plan issues for an attribute
// value: the conjunction of the value's tokens (e.g. "Acme Dynamics" →
// [acme, dynamics]).
func QueryFromValue(value string) Query {
	return Query{Terms: Tokenize(value)}
}

// String renders the query as [t1 t2 ...].
func (q Query) String() string { return "[" + strings.Join(q.Terms, " ") + "]" }

// Index is an inverted index over a document collection with a top-k search
// cap.
type Index struct {
	postings map[string][]int // term -> sorted doc IDs
	numDocs  int
	topK     int
}

// New builds an index over docs (ID i = docs[i]) returning at most topK
// results per query. topK <= 0 means unlimited.
func New(texts []string, topK int) *Index {
	ix := &Index{postings: map[string][]int{}, numDocs: len(texts), topK: topK}
	for id, text := range texts {
		seen := map[string]bool{}
		for _, tok := range Tokenize(text) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			ix.postings[tok] = append(ix.postings[tok], id)
		}
	}
	return ix
}

// TopK returns the configured result cap (0 = unlimited).
func (ix *Index) TopK() int { return ix.topK }

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	return len(ix.postings[strings.ToLower(term)])
}

// Matches returns every document matching q, ignoring the top-k cap. Model
// parameter measurement uses it to compute H(q); executions must use Search.
func (ix *Index) Matches(q Query) []int {
	return ix.intersectInto(q, nil)
}

// Search returns the documents matching q, capped at top-k. Ranking is by a
// deterministic query-dependent score (a hash of the query terms and the
// document ID), modelling a relevance-ranked search interface: distinct
// queries surface distinct subsets of their matches, so overlapping queries
// are conditionally independent samples of the match set — the assumption
// behind the paper's query-retrieval analysis (Equation 2). Results are
// returned in document-ID order.
func (ix *Index) Search(q Query) []int {
	return ix.SearchInto(q, nil)
}

// SearchInto is Search with a caller-owned result buffer: the result is
// written into buf's backing array (grown as needed) and returned, valid
// until the next call reusing the buffer. The OIJN and ZGJN inner loops
// issue a query per join value, so buffer reuse removes the per-call
// allocations from their hot path (the index benchmark guards the
// allocation count).
func (ix *Index) SearchInto(q Query, buf []int) []int {
	res := ix.intersectInto(q, buf)
	if ix.topK > 0 && len(res) > ix.topK {
		seed := fnv.New64a()
		for _, t := range q.Terms {
			seed.Write([]byte(t))
			seed.Write([]byte{0})
		}
		base := seed.Sum64()
		selectTopK(res, ix.topK, base)
		res = res[:ix.topK]
		slices.Sort(res)
	}
	return res
}

// selectTopK rearranges res so its first k elements are the k lowest-scored
// documents, using an in-place max-heap over the prefix — no comparator
// closures, so no allocation. The selected set is exact; order within the
// prefix is unspecified (callers re-sort by ID).
func selectTopK(res []int, k int, base uint64) {
	down := func(h []int, i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			big := l
			if r := l + 1; r < len(h) && docScore(base, h[r]) > docScore(base, h[l]) {
				big = r
			}
			if docScore(base, h[big]) <= docScore(base, h[i]) {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	h := res[:k]
	for i := k/2 - 1; i >= 0; i-- {
		down(h, i)
	}
	top := docScore(base, h[0])
	for _, id := range res[k:] {
		if s := docScore(base, id); s < top {
			h[0] = id
			down(h, 0)
			top = docScore(base, h[0])
		}
	}
}

// docScore hashes a (query, document) pair into a deterministic rank.
func docScore(base uint64, docID int) uint64 {
	x := base ^ (uint64(docID)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// intersectInto writes the conjunctive match set into buf's backing array
// (grown as needed). The rarest posting list seeds the result, which is then
// narrowed in place against the remaining lists — never aliasing a posting
// list and never allocating beyond buf growth.
func (ix *Index) intersectInto(q Query, buf []int) []int {
	if len(q.Terms) == 0 {
		return nil
	}
	rare := -1
	for ti, t := range q.Terms {
		l := ix.postings[strings.ToLower(t)]
		if len(l) == 0 {
			return nil
		}
		if rare < 0 || len(l) < len(ix.postings[strings.ToLower(q.Terms[rare])]) {
			rare = ti
		}
	}
	out := append(buf[:0], ix.postings[strings.ToLower(q.Terms[rare])]...)
	for ti, t := range q.Terms {
		if ti == rare {
			continue
		}
		out = intersectSortedInPlace(out, ix.postings[strings.ToLower(t)])
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// intersectSortedInPlace narrows sorted a to a ∩ b, writing into a's prefix.
func intersectSortedInPlace(a, b []int) []int {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			a[k] = a[i]
			k++
			i++
			j++
		}
	}
	return a[:k]
}
