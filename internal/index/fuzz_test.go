package index

import (
	"strings"
	"testing"
	"unicode"
)

// Fuzz targets run their seed corpus under plain `go test` and explore
// further under `go test -fuzz`.

func FuzzTokenize(f *testing.F) {
	f.Add("Acme Dynamics opened offices")
	f.Add("  ,.!  ")
	f.Add("üñïçôdé  Text-42 with_mixed\tseparators")
	f.Add(strings.Repeat("a", 10_000))
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lower-cased", tok)
				}
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
		}
	})
}

func FuzzSearchIsSubsetOfMatches(f *testing.F) {
	f.Add("alpha beta", "alpha")
	f.Add("x y z", "y z")
	f.Add("", "nothing")
	f.Fuzz(func(t *testing.T, doc, query string) {
		texts := []string{doc, doc + " extra", "unrelated filler words"}
		ix := New(texts, 1)
		q := Query{Terms: Tokenize(query)}
		got := ix.Search(q)
		if len(got) > 1 {
			t.Fatalf("top-k cap violated: %v", got)
		}
		all := map[int]bool{}
		for _, id := range ix.Matches(q) {
			all[id] = true
		}
		for _, id := range got {
			if !all[id] {
				t.Fatalf("search result %d not among matches", id)
			}
			if id < 0 || id >= len(texts) {
				t.Fatalf("result id %d out of range", id)
			}
		}
	})
}
