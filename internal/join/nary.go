package join

import (
	"fmt"
	"math/bits"

	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
)

// Tree-shaped n-ary execution: NaryExec generalizes MultiIDJN to run the
// join tree an optimizer chose (optimizer.ChooseNary) — per-side retrieval
// strategies and effort caps, with exact merge-cost accounting at every
// internal node of the tree. At TJ = 0 with no caps and no pipeline engine
// the execution is bit-identical to MultiIDJN: the tree only adds
// intermediate-cardinality counters and their time charges.

// TreeNode is a join-tree node: a leaf names a relation index, an internal
// node joins its two children. It mirrors the optimizer's chosen tree
// without importing it (the model layer sits between the two packages).
type TreeNode struct {
	Rel         int // leaf: relation index; internal: -1
	Left, Right *TreeNode
}

// LeafChain returns the left-deep chain tree R0⋈R1⋈…⋈R(n−1).
func LeafChain(n int) *TreeNode {
	t := &TreeNode{Rel: 0}
	for i := 1; i < n; i++ {
		t = &TreeNode{Rel: -1, Left: t, Right: &TreeNode{Rel: i}}
	}
	return t
}

// set computes the relation bitmask covered by the subtree, validating
// leaves against n.
func (t *TreeNode) set(n int) (uint64, error) {
	if t == nil {
		return 0, fmt.Errorf("join: nil tree node")
	}
	if t.Left == nil && t.Right == nil {
		if t.Rel < 0 || t.Rel >= n {
			return 0, fmt.Errorf("join: tree leaf references relation %d of %d", t.Rel, n)
		}
		return 1 << t.Rel, nil
	}
	if t.Left == nil || t.Right == nil {
		return 0, fmt.Errorf("join: tree node with exactly one child")
	}
	l, err := t.Left.set(n)
	if err != nil {
		return 0, err
	}
	r, err := t.Right.set(n)
	if err != nil {
		return 0, err
	}
	if l&r != 0 {
		return 0, fmt.Errorf("join: tree joins overlapping relation sets")
	}
	return l | r, nil
}

// internalSets collects the relation sets of the internal nodes in
// post-order (root last).
func (t *TreeNode) internalSets(n int) ([]uint64, error) {
	full, err := t.set(n)
	if err != nil {
		return nil, err
	}
	if full != (1<<n)-1 {
		return nil, fmt.Errorf("join: tree covers relation set %b, want all %d relations", full, n)
	}
	var out []uint64
	var walk func(nd *TreeNode) uint64
	walk = func(nd *TreeNode) uint64 {
		if nd.Left == nil {
			return 1 << nd.Rel
		}
		s := walk(nd.Left) | walk(nd.Right)
		out = append(out, s)
		return s
	}
	walk(t)
	return out, nil
}

// NaryPlan configures a tree execution: the join tree, per-side effort caps
// (0 = run the strategy to exhaustion) in the strategy's effort unit
// (documents retrieved for SC/FS, queries for AQG, selected by Kinds), and
// the per-intermediate-tuple merge cost TJ.
type NaryPlan struct {
	Tree  *TreeNode
	Caps  []int
	Kinds []retrieval.Kind
	TJ    float64
}

// NaryState is the observable progress of a tree execution: the MultiState
// counters plus the per-internal-node materialization counts and the
// cache-savings ledger.
type NaryState struct {
	*MultiState

	// NodeSets/NodeTuples describe the internal nodes of the join tree in
	// post-order (root last): NodeTuples[k] is the total tuple count
	// materialized at the node covering NodeSets[k]. The root entry always
	// equals GoodTuples+BadTuples.
	NodeSets   []uint64
	NodeTuples []int

	// MergeTime is the TJ·ΣNodeTuples portion of Time.
	MergeTime float64

	// CacheSaved is the extraction time per side that pipeline cache hits
	// made free; Time + ΣCacheSaved is invariant under cache warmth, exactly
	// as in the binary State.
	CacheSaved []float64

	Steps int
}

// NaryExec runs an n-ary Independent Join along a join tree.
type NaryExec struct {
	sides []*Side
	strat []retrieval.Strategy
	plan  NaryPlan
	prev  []retrieval.Counts
	ahead []int
	done  []bool
	st    *NaryState

	// Pipeline, when set, overlaps document extraction with the execution
	// exactly as in the binary executors: announced documents extract
	// speculatively on the worker pool, results resolve in stream order, and
	// the shared cache makes re-extraction free. Set before the first Step.
	// Like State.Pipeline this is an interface so a sharded engine group can
	// stand in; access goes through pipeActive/pipeLookahead nil guards.
	Pipeline pipeline.Frontend
}

// pipeActive reports whether an extraction frontend is attached and active,
// guarding the nil interface.
func (e *NaryExec) pipeActive() bool {
	return e.Pipeline != nil && e.Pipeline.Active()
}

// NewNaryExec builds a tree execution over sides. The plan's tree must
// cover every side exactly once; a nil tree defaults to the left-deep
// chain. Caps and Kinds, when present, must have one entry per side.
func NewNaryExec(sides []*Side, strats []retrieval.Strategy, plan NaryPlan) (*NaryExec, error) {
	n := len(sides)
	if n < 2 {
		return nil, fmt.Errorf("join: tree join needs at least 2 sides, got %d", n)
	}
	if len(strats) != n {
		return nil, fmt.Errorf("join: %d sides but %d strategies", n, len(strats))
	}
	if plan.Tree == nil {
		plan.Tree = LeafChain(n)
	}
	if plan.Caps != nil && len(plan.Caps) != n {
		return nil, fmt.Errorf("join: %d sides but %d effort caps", n, len(plan.Caps))
	}
	if plan.Kinds != nil && len(plan.Kinds) != n {
		return nil, fmt.Errorf("join: %d sides but %d strategy kinds", n, len(plan.Kinds))
	}
	nodeSets, err := plan.Tree.internalSets(n)
	if err != nil {
		return nil, err
	}
	mst := &MultiState{
		Rels:          make([]*relation.Extracted, n),
		DocsProcessed: make([]int, n),
		DocsRetrieved: make([]int, n),
		DocsFiltered:  make([]int, n),
		Queries:       make([]int, n),
		golds:         make([]*relation.Gold, n),
	}
	for i, s := range sides {
		if err := s.validate(i + 1); err != nil {
			return nil, err
		}
		if strats[i] == nil {
			return nil, fmt.Errorf("join: side %d missing strategy", i+1)
		}
		schema := relation.Schema{Name: fmt.Sprintf("R%d", i+1)}
		if s.Gold != nil {
			schema = s.Gold.Schema
		}
		mst.Rels[i] = relation.NewExtracted(schema, s.Gold)
		mst.golds[i] = s.Gold
	}
	return &NaryExec{
		sides: sides,
		strat: strats,
		plan:  plan,
		prev:  make([]retrieval.Counts, n),
		ahead: make([]int, n),
		done:  make([]bool, n),
		st: &NaryState{
			MultiState: mst,
			NodeSets:   nodeSets,
			NodeTuples: make([]int, len(nodeSets)),
			CacheSaved: make([]float64, n),
		},
	}, nil
}

// State returns the live execution state.
func (e *NaryExec) State() *NaryState { return e.st }

// Algorithm names the executor.
func (e *NaryExec) Algorithm() string { return fmt.Sprintf("IDJN-tree-%dway", len(e.sides)) }

// capReached reports whether side i has spent its effort cap, measured in
// the unit the optimizer's model counts: queries for AQG, retrieved
// documents otherwise.
func (e *NaryExec) capReached(i int) bool {
	if e.plan.Caps == nil || e.plan.Caps[i] <= 0 {
		return false
	}
	c := e.strat[i].Counts()
	spent := c.Retrieved
	if e.plan.Kinds != nil && e.plan.Kinds[i] == retrieval.AQG {
		spent = c.Queries
	}
	return spent >= e.plan.Caps[i]
}

// announce feeds the pipeline engine each stream's upcoming documents,
// exactly as the binary IDJN does: the peek lists are prefix-stable, so only
// the tail past the ahead cursor is new, and a window-full refusal ends the
// pass for that side.
func (e *NaryExec) announce() {
	n := e.Pipeline.Lookahead() // guarded by pipeActive at the call site
	if n == 0 {
		return
	}
	for i := range e.sides {
		if e.done[i] {
			continue
		}
		peek := retrieval.PeekAhead(e.strat[i], n)
		if e.ahead[i] > len(peek) {
			e.ahead[i] = len(peek)
		}
		for e.ahead[i] < len(peek) {
			key := pipeline.Key{Side: i, DocID: peek[e.ahead[i]], Theta: e.sides[i].Theta}
			if !e.Pipeline.Announce(key) {
				break
			}
			e.ahead[i]++
		}
	}
}

// addTuple charges the merge cost of one extracted occurrence at every
// internal tree node whose relation set contains side i — the tuple
// multiplies into Π_{j∈S\{i}} (gr_j(a)+br_j(a)) intermediate tuples at node
// S — and then folds the occurrence into the canonical n-way counters.
func (e *NaryExec) addTuple(i int, t relation.Tuple) {
	a := t.A1
	for k, set := range e.st.NodeSets {
		if set&(1<<i) == 0 {
			continue
		}
		delta := 1
		for m := set &^ (1 << i); m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			delta *= e.st.Rels[j].GoodOcc(a) + e.st.Rels[j].BadOcc(a)
			if delta == 0 {
				break
			}
		}
		e.st.NodeTuples[k] += delta
		if e.plan.TJ > 0 {
			charge := e.plan.TJ * float64(delta)
			e.st.MergeTime += charge
			e.st.Time += charge
		}
	}
	e.st.MultiState.addTuple(i, t)
}

// Step retrieves and processes one document from every non-exhausted,
// uncapped side — the square traversal, restricted to the optimizer's
// effort caps. It returns false once every side is done.
func (e *NaryExec) Step() (bool, error) {
	e.st.Steps++
	if e.pipeActive() {
		e.announce()
	}
	any := false
	for i := range e.sides {
		if e.done[i] {
			continue
		}
		if e.capReached(i) {
			e.done[i] = true
			continue
		}
		id, ok := e.strat[i].Next()
		now := e.strat[i].Counts()
		e.charge(i, e.prev[i], now)
		e.prev[i] = now
		if !ok {
			e.done[i] = true
			continue
		}
		if e.ahead[i] > 0 {
			e.ahead[i]--
		}
		any = true
		s := e.sides[i]
		doc := s.DB.Doc(id)
		var tuples []relation.Tuple
		hit := false
		if e.pipeActive() {
			key := pipeline.Key{Side: i, DocID: id, Theta: s.Theta}
			tuples, hit, _ = e.Pipeline.Resolve(key, func() []relation.Tuple {
				return s.System.Extract(doc.Text, s.Theta)
			})
		} else {
			tuples = s.System.Extract(doc.Text, s.Theta)
		}
		e.st.DocsProcessed[i]++
		if hit {
			e.st.CacheSaved[i] += s.Costs.TE
		} else {
			e.st.Time += s.Costs.TE
		}
		for _, t := range tuples {
			e.addTuple(i, t)
		}
	}
	return any, nil
}

// charge folds a strategy's counter growth into the state (identical to
// MultiIDJN's accounting).
func (e *NaryExec) charge(i int, prev, now retrieval.Counts) {
	c := e.sides[i].Costs
	dRetr := now.Retrieved - prev.Retrieved
	dFilt := now.Filtered - prev.Filtered
	dQ := now.Queries - prev.Queries
	e.st.DocsRetrieved[i] += dRetr
	e.st.DocsFiltered[i] += dFilt
	e.st.Queries[i] += dQ
	e.st.Time += float64(dRetr)*c.TR + float64(dFilt)*c.TF + float64(dQ)*c.TQ
}

// RunNary advances the executor until every side is exhausted or capped, or
// stop returns true.
func RunNary(e *NaryExec, stop func(*NaryState) bool) (*NaryState, error) {
	for {
		ok, err := e.Step()
		if err != nil {
			return e.st, err
		}
		if !ok {
			return e.st, nil
		}
		if stop != nil && stop(e.st) {
			return e.st, nil
		}
	}
}
