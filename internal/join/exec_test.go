package join

import (
	"fmt"
	"testing"
	"testing/quick"

	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
)

// newTestState builds a State over synthetic gold sets where values
// "g0".."g4" are good on both sides and "b0".."b4" are bad on both sides.
func newTestState() *State {
	mkGold := func(name string) *relation.Gold {
		g := relation.NewGold(relation.Schema{Name: name, Attr1: "A", Attr2: "B"})
		for i := 0; i < 5; i++ {
			for occ := 0; occ < 10; occ++ {
				g.AddGood(relation.Tuple{A1: fmt.Sprintf("g%d", i), A2: fmt.Sprintf("x%d", occ)})
				g.AddBad(relation.Tuple{A1: fmt.Sprintf("b%d", i), A2: fmt.Sprintf("y%d", occ)})
			}
		}
		return g
	}
	s1 := &Side{Gold: mkGold("R1")}
	s2 := &Side{Gold: mkGold("R2")}
	return newState(s1, s2)
}

// TestStatePairInvariant is the core accounting property: after any
// sequence of tuple additions, the incremental GoodPairs/BadPairs counters
// equal the direct per-value occurrence products.
func TestStatePairInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		st := newTestState()
		for k, op := range ops {
			side := int(op) & 1
			good := op&2 != 0
			val := int(op>>2) % 5
			prefix := "g"
			if !good {
				prefix = "b"
			}
			st.addTuple(side, relation.Tuple{
				A1: fmt.Sprintf("%s%d", prefix, val),
				A2: fmt.Sprintf("%s%d", map[bool]string{true: "x", false: "y"}[good], k%10),
			})
		}
		good, total := 0, 0
		vals := map[string]bool{}
		for _, v := range st.R1.JoinValues() {
			vals[v] = true
		}
		for _, v := range st.R2.JoinValues() {
			vals[v] = true
		}
		for v := range vals {
			good += st.R1.GoodOcc(v) * st.R2.GoodOcc(v)
			total += (st.R1.GoodOcc(v) + st.R1.BadOcc(v)) * (st.R2.GoodOcc(v) + st.R2.BadOcc(v))
		}
		return st.GoodPairs == good && st.BadPairs == total-good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStateValueCountsLabelFree(t *testing.T) {
	st := newTestState()
	st.addTuple(0, relation.Tuple{A1: "g0", A2: "x0"})
	st.addTuple(0, relation.Tuple{A1: "g0", A2: "x1"})
	st.addTuple(0, relation.Tuple{A1: "b0", A2: "y0"})
	counts := st.ValueCounts(0)
	if counts["g0"] != 2 || counts["b0"] != 1 {
		t.Errorf("value counts %v", counts)
	}
	if len(st.ValueCounts(1)) != 0 {
		t.Error("side 2 should be empty")
	}
}

func TestChargeStrategyDeltas(t *testing.T) {
	st := newTestState()
	costs := Costs{TR: 1, TE: 5, TF: 0.5, TQ: 2}
	prev := retrieval.Counts{}
	now := retrieval.Counts{Retrieved: 10, Filtered: 4, Queries: 3}
	st.chargeStrategy(0, costs, prev, now)
	if st.DocsRetrieved[0] != 10 || st.DocsFiltered[0] != 4 || st.Queries[0] != 3 {
		t.Errorf("counters %d/%d/%d", st.DocsRetrieved[0], st.DocsFiltered[0], st.Queries[0])
	}
	wantTime := 10*1.0 + 4*0.5 + 3*2.0
	if st.Time != wantTime {
		t.Errorf("time %v, want %v", st.Time, wantTime)
	}
	// A second call charges only the delta.
	st.chargeStrategy(0, costs, now, retrieval.Counts{Retrieved: 12, Filtered: 4, Queries: 3})
	if st.DocsRetrieved[0] != 12 {
		t.Errorf("delta accounting broken: %d", st.DocsRetrieved[0])
	}
	if st.Time != wantTime+2 {
		t.Errorf("delta time %v", st.Time)
	}
}

func TestSideValidate(t *testing.T) {
	s := &Side{}
	if err := s.validate(1); err == nil {
		t.Error("empty side must fail validation")
	}
}

func TestEmissionHistogramSums(t *testing.T) {
	st := newTestState()
	// Simulate histogram updates as processDoc does.
	for _, k := range []int{0, 2, 1, 0, 3} {
		for len(st.EmissionHist[0]) <= k {
			st.EmissionHist[0] = append(st.EmissionHist[0], 0)
		}
		st.EmissionHist[0][k]++
	}
	total := 0
	for _, c := range st.EmissionHist[0] {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram covers %d docs", total)
	}
	if st.EmissionHist[0][0] != 2 || st.EmissionHist[0][3] != 1 {
		t.Errorf("histogram %v", st.EmissionHist[0])
	}
}
