// Package join implements the three join execution algorithms of §IV over
// extracted relations: the Independent Join (IDJN), the Outer/Inner Join
// (OIJN), and the Zig-Zag Join (ZGJN). Executors advance in small steps so
// that drivers — the experiments and the quality-aware optimizer — can
// impose their own stopping policies (document budgets, estimated-quality
// thresholds, adaptive re-optimization).
package join

import (
	"context"
	"fmt"

	"joinopt/internal/corpus"
	"joinopt/internal/extract"
	"joinopt/internal/index"
	"joinopt/internal/obs"
	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
)

// Costs are the per-operation execution-time constants of one database side:
// tR (retrieve a document), tE (process a document with the IE system),
// tF (filter a document with the FS classifier), tQ (issue a query). The
// cost-model time of an execution is the paper's Time(S, D1, D2).
type Costs struct {
	TR float64
	TE float64
	TF float64
	TQ float64
}

// DefaultCosts reflect that extraction dominates retrieval, filtering is
// cheap, and querying costs roughly a retrieval round-trip.
var DefaultCosts = Costs{TR: 1, TE: 5, TF: 0.1, TQ: 2}

// Side bundles everything a join execution needs about one relation: the
// hosting database, its search interface, the tuned IE system, the gold set
// used to label output (evaluation only), and the per-operation costs.
type Side struct {
	DB     *corpus.DB
	Index  *index.Index
	System *extract.System
	Theta  float64
	Gold   *relation.Gold
	Costs  Costs

	// Source, when set, replaces direct database reads on the document-fetch
	// path with a fallible source (e.g. a faults.FaultyDB); Retry governs how
	// fetch and pull failures are retried and how much document loss the
	// execution tolerates.
	Source DocSource
	Retry  RetryPolicy
}

// validate checks that the side is usable.
func (s *Side) validate(i int) error {
	if s.DB == nil || s.System == nil {
		return fmt.Errorf("join: side %d missing database or IE system", i)
	}
	return nil
}

// State is the observable progress of a join execution: the two extracted
// relations, the labelled join result, the pair-composition quality counts,
// and the work/time accounting.
type State struct {
	R1, R2 *relation.Extracted
	Result *relation.JoinResult

	// GoodPairs is |Tgood⋈| under the paper's composition semantics:
	// Σ_a gr1(a)·gr2(a) over join values (Equation 1). BadPairs is the
	// complementary sum of mixed and bad-bad occurrence products.
	GoodPairs int
	BadPairs  int

	// Per-side work counters, indexed 0 and 1.
	DocsProcessed [2]int
	DocsRetrieved [2]int
	DocsFiltered  [2]int
	Queries       [2]int

	// YieldDocs counts processed documents that emitted at least one tuple;
	// EmissionHist[i][k] counts side-i documents that emitted exactly k
	// tuples. The on-the-fly parameter estimator consumes these.
	YieldDocs    [2]int
	EmissionHist [2][]int

	// Time is the cost-model execution time accumulated so far.
	Time float64

	// CacheSaved is the extraction time (tE) per side that cache hits made
	// free. Time + ΣCacheSaved is invariant under cache warmth: a replay
	// that hits the cache where the original run missed (or vice versa —
	// e.g. a resume against a disk-warmed cache after a restart) bills a
	// different Time but the identical invariant sum, which is what
	// Snapshot/Restore verify.
	CacheSaved [2]float64

	// Steps counts Executor.Step invocations — the replay coordinate of
	// Snapshot/Restore.
	Steps int

	// Failure accounting: DocsFailed counts documents lost after exhausting
	// retries, RetriesSpent the retries consumed, per side. Degraded is set
	// once any loss (failed documents, truncated or permanently failed
	// streams) makes the execution's view of the databases incomplete; the
	// optimizer corrects its quality estimates for it.
	DocsFailed   [2]int
	RetriesSpent [2]int
	Degraded     bool

	// Deadline, when positive, is the cost-model time at which the execution
	// stops gracefully (DeadlineHit records that it did). Retries respect it
	// too: a document is abandoned rather than retried past the deadline.
	Deadline    float64
	DeadlineHit bool

	// Trace and Metrics receive execution telemetry when set (see
	// internal/obs). Both are nil-safe and nil by default; the property
	// tests pin that a nil tracer leaves execution bit-identical, and the
	// overhead benchmarks pin the disabled path under 2%.
	Trace   *obs.Trace
	Metrics *obs.ExecMetrics

	// Pipeline, when set, overlaps document extraction with the execution:
	// executors announce upcoming documents for speculative extraction on a
	// worker pool and processDoc collects the results in stream order, so
	// tuples, accounting, traces, and fault streams stay bit-identical to
	// the nil (sequential) engine. Its shared cache makes re-extraction of
	// an already-paid (document, θ) free: zero tE, counted as a cache hit.
	// The field is an interface so a sharded group of engines
	// (internal/shard.Group) can stand in for a single one; access goes
	// through PipelineActive/announce, which guard the nil interface.
	Pipeline pipeline.Frontend

	totalPairs     int
	golds          [2]*relation.Gold
	rels           [2]*relation.Extracted
	byVal          [2]map[string][]labeledTuple
	deadlineTraced bool
}

// ValueCounts returns the label-free observed occurrence counts s(a) of side
// i: the number of processed documents in which each join value was
// extracted. The parameter estimator works from these counts without any
// tuple verification.
func (st *State) ValueCounts(i int) map[string]int {
	out := map[string]int{}
	rel := st.rels[i]
	for _, v := range rel.JoinValues() {
		out[v] = rel.GoodOcc(v) + rel.BadOcc(v)
	}
	return out
}

type labeledTuple struct {
	t    relation.Tuple
	good bool
}

// newState builds an empty state for two sides.
func newState(s1, s2 *Side) *State {
	schema1, schema2 := relation.Schema{Name: "R1"}, relation.Schema{Name: "R2"}
	if s1.Gold != nil {
		schema1 = s1.Gold.Schema
	}
	if s2.Gold != nil {
		schema2 = s2.Gold.Schema
	}
	st := &State{
		R1:     relation.NewExtracted(schema1, s1.Gold),
		R2:     relation.NewExtracted(schema2, s2.Gold),
		Result: relation.NewJoinResult(),
		golds:  [2]*relation.Gold{s1.Gold, s2.Gold},
	}
	st.rels = [2]*relation.Extracted{st.R1, st.R2}
	st.byVal = [2]map[string][]labeledTuple{{}, {}}
	return st
}

// addTuple records one extracted occurrence on side i (0 or 1), updates the
// pair-composition counters incrementally, and joins the tuple against the
// other relation.
func (st *State) addTuple(i int, t relation.Tuple) {
	good := st.rels[i].Add(t)
	other := st.rels[1-i]
	a := t.A1

	otherGood := other.GoodOcc(a)
	otherTotal := otherGood + other.BadOcc(a)
	st.totalPairs += otherTotal
	if good {
		st.GoodPairs += otherGood
	}
	st.BadPairs = st.totalPairs - st.GoodPairs

	st.byVal[i][a] = append(st.byVal[i][a], labeledTuple{t: t, good: good})
	if st.Trace.Enabled() {
		st.Trace.EmitAt(st.Time, obs.KindTupleExtracted, i+1, map[string]any{"a": a, "good": good})
	}
	for _, lt := range st.byVal[1-i][a] {
		jt := relation.JoinTuple{A: a}
		if i == 0 {
			jt.B, jt.C = t.A2, lt.t.A2
		} else {
			jt.B, jt.C = lt.t.A2, t.A2
		}
		st.Result.Add(jt, good && lt.good)
		if st.Trace.Enabled() {
			st.Trace.EmitAt(st.Time, obs.KindTupleJoined, 0, map[string]any{"a": a, "good": good && lt.good})
		}
	}
	st.Metrics.Quality(st.GoodPairs, st.BadPairs)
}

// Executor is a stepwise join execution.
type Executor interface {
	// Step advances the execution by one unit of work. It returns false
	// when the execution is exhausted (no more documents or queries).
	Step() (bool, error)
	// State returns the live execution state.
	State() *State
	// Algorithm names the join algorithm (IDJN, OIJN, ZGJN).
	Algorithm() string
}

// StopFunc inspects the state after each step; returning true stops the run.
type StopFunc func(*State) bool

// Run advances the executor until it is exhausted, its deadline passes, or
// stop returns true. It returns the final state.
func Run(e Executor, stop StopFunc) (*State, error) {
	return RunCtx(context.Background(), e, stop)
}

// RunCtx is Run with cooperative cancellation: between steps it checks ctx
// and, once cancelled, returns the state reached so far together with
// ctx.Err(). The state remains checkpointable (State.Snapshot), so an
// interrupted run can be resumed by replay. Step errors are returned as
// *StepError, carrying the algorithm name and step count.
func RunCtx(ctx context.Context, e Executor, stop StopFunc) (*State, error) {
	st := e.State()
	for {
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		default:
		}
		// Checked before stepping too, so an already-expired executor handed
		// to a fresh Run (e.g. after a checkpoint resume) does no extra work.
		if st.deadlineExpired() {
			st.traceDeadline(e.Algorithm())
			return st, nil
		}
		before := st.Time
		ok, err := e.Step()
		if err != nil {
			serr := &StepError{Algorithm: e.Algorithm(), Step: st.Steps, Err: err}
			if st.Trace.Enabled() {
				st.Trace.EmitAt(st.Time, obs.KindStepError, 0,
					map[string]any{"alg": serr.Algorithm, "step": serr.Step, "err": err.Error()})
			}
			return st, serr
		}
		st.Metrics.StepDone(e.Algorithm(), st.Time, st.Time-before)
		if st.Trace.Enabled() {
			st.Trace.EmitAt(st.Time, obs.KindStep, 0, map[string]any{"alg": e.Algorithm(), "step": st.Steps})
		}
		if !ok {
			return st, nil
		}
		if st.deadlineExpired() {
			st.traceDeadline(e.Algorithm())
			return st, nil
		}
		if stop != nil && stop(st) {
			return st, nil
		}
	}
}

// traceDeadline emits the deadline-hit event once per execution.
func (st *State) traceDeadline(alg string) {
	if st.Trace.Enabled() && !st.deadlineTraced {
		st.deadlineTraced = true
		st.Trace.EmitAt(st.Time, obs.KindDeadline, 0, map[string]any{"alg": alg, "deadline": st.Deadline})
	}
}

// chargeStrategy folds the growth of a retrieval strategy's counters since
// the last observation into the state's per-side accounting.
func (st *State) chargeStrategy(i int, c Costs, prev, now retrieval.Counts) {
	dRetr := now.Retrieved - prev.Retrieved
	dFilt := now.Filtered - prev.Filtered
	dQ := now.Queries - prev.Queries
	st.DocsRetrieved[i] += dRetr
	st.DocsFiltered[i] += dFilt
	st.Queries[i] += dQ
	st.Time += float64(dRetr)*c.TR + float64(dFilt)*c.TF + float64(dQ)*c.TQ
	st.Metrics.Retrieved(i, dRetr)
	st.Metrics.Filtered(i, dFilt)
	st.Metrics.Queries(i, dQ)
}

// processDoc fetches a document through the side's source (retrying under
// its policy), runs the IE system over it, and records the extracted
// tuples. It charges processing time and returns the tuples. A document
// lost to exhausted retries is skipped and accounted (nil tuples, nil
// error); the error is non-nil only when the failure budget aborts the
// execution.
//
// With a pipeline engine attached, extraction resolves through it: cache
// hits are charged zero tE, and speculative worker results are collected
// here, on the stepping goroutine, in stream order. A document whose fetch
// returned modified text (a fault-truncated copy — detected by pointer
// inequality against the database's own record) bypasses the engine
// entirely: its tuples are not the document's canonical extraction and must
// be neither served from nor inserted into the shared cache.
func processDoc(st *State, i int, s *Side, docID int) ([]relation.Tuple, error) {
	doc, ok, err := fetchDoc(st, i, s, docID)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	var tuples []relation.Tuple
	hit := false
	if st.PipelineActive() {
		key := pipeline.Key{Side: i, DocID: docID, Theta: s.Theta}
		if doc == s.DB.Doc(docID) {
			var evicted int
			tuples, hit, evicted = st.Pipeline.Resolve(key, func() []relation.Tuple {
				return s.System.Extract(doc.Text, s.Theta)
			})
			if st.Pipeline.HasCache() {
				if hit {
					st.Metrics.CacheHit(i)
				} else {
					st.Metrics.CacheMiss(i)
				}
				st.Metrics.CacheEvict(evicted)
			}
		} else {
			// A faulted fetch handed out a different document body (a
			// truncated copy) than the one workers speculated on: extract it
			// inline, abandon the speculation, and keep the cache clean of
			// truncated results.
			st.Pipeline.Drop(key)
			tuples = s.System.Extract(doc.Text, s.Theta)
		}
	} else {
		tuples = s.System.Extract(doc.Text, s.Theta)
	}
	st.DocsProcessed[i]++
	if hit {
		st.CacheSaved[i] += s.Costs.TE
	} else {
		st.Time += s.Costs.TE
	}
	st.Metrics.Processed(i)
	if st.Trace.Enabled() {
		attrs := map[string]any{"doc": docID, "tuples": len(tuples)}
		if hit {
			attrs["cached"] = true
		}
		st.Trace.EmitAt(st.Time, obs.KindDocProcessed, i+1, attrs)
	}
	if len(tuples) > 0 {
		st.YieldDocs[i]++
	}
	for len(st.EmissionHist[i]) <= len(tuples) {
		st.EmissionHist[i] = append(st.EmissionHist[i], 0)
	}
	st.EmissionHist[i][len(tuples)]++
	for _, t := range tuples {
		st.addTuple(i, t)
	}
	return tuples, nil
}

// PipelineActive reports whether an extraction frontend is attached and
// active — the one place the nil interface is guarded (a typed-nil *Engine
// stored in the field also reports inactive, through its nil-receiver-safe
// Active).
func (st *State) PipelineActive() bool {
	return st.Pipeline != nil && st.Pipeline.Active()
}

// pipelineLookahead returns the attached frontend's announce depth, 0
// without one.
func (st *State) pipelineLookahead() int {
	if st.Pipeline == nil {
		return 0
	}
	return st.Pipeline.Lookahead()
}

// announce schedules speculative extraction of an upcoming side-i document
// on the pipeline engine (a no-op without one). It reports false when the
// engine's window refused the document — the caller should stop announcing
// for this step and retry from the same document later (see
// pipeline.Engine.Announce).
func (st *State) announce(i int, s *Side, docID int) bool {
	if st.Pipeline == nil {
		return false
	}
	return st.Pipeline.Announce(pipeline.Key{Side: i, DocID: docID, Theta: s.Theta})
}

// texts extracts the raw document texts of a database, for index building.
func texts(db *corpus.DB) []string {
	out := make([]string, db.Size())
	for i, d := range db.Docs {
		out[i] = d.Text
	}
	return out
}

// BuildIndex constructs the search interface of a database with the given
// top-k cap.
func BuildIndex(db *corpus.DB, topK int) *index.Index {
	return index.New(texts(db), topK)
}
