package join_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// withFaults runs body with the shared workload's fault configuration
// swapped in, restoring the clean configuration afterwards so other tests
// see an unwrapped workload.
func withFaults(w *workload.Workload, p *faults.Profile, pol join.RetryPolicy, body func()) {
	prevP, prevR := w.Faults, w.Retry
	w.Faults, w.Retry = p, pol
	defer func() { w.Faults, w.Retry = prevP, prevR }()
	body()
}

// newExec builds a fresh executor of the named algorithm over the workload,
// honouring the workload's current fault configuration.
func newExec(t *testing.T, w *workload.Workload, algo string, kind retrieval.Kind, theta float64) join.Executor {
	t.Helper()
	mk := func() (join.Executor, error) {
		switch algo {
		case "IDJN":
			x1, err := w.NewStrategy(0, kind)
			if err != nil {
				return nil, err
			}
			x2, err := w.NewStrategy(1, kind)
			if err != nil {
				return nil, err
			}
			return join.NewIDJN(w.Side(0, theta), w.Side(1, theta), x1, x2)
		case "OIJN":
			x, err := w.NewStrategy(0, kind)
			if err != nil {
				return nil, err
			}
			return join.NewOIJN(w.Side(0, theta), w.Side(1, theta), 0, x)
		case "ZGJN":
			return join.NewZGJN(w.Side(0, theta), w.Side(1, theta), w.Seeds)
		}
		return nil, errors.New("unknown algorithm " + algo)
	}
	e, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestZeroRateFaultTransparency is the fault-plumbing property test: with a
// zero-rate profile, every executor's final state — tuples, pairs, time,
// counters — is identical to the unwrapped run. Fault plumbing must be
// provably transparent when faults are off.
func TestZeroRateFaultTransparency(t *testing.T) {
	w := testWorkload(t)
	cases := []struct {
		algo string
		kind retrieval.Kind
	}{
		{"IDJN", retrieval.SC},
		{"IDJN", retrieval.FS},
		{"IDJN", retrieval.AQG},
		{"OIJN", retrieval.SC},
		{"ZGJN", retrieval.SC},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 99} {
			clean, err := join.Run(newExec(t, w, tc.algo, tc.kind, 0.4), nil)
			if err != nil {
				t.Fatalf("%s/%s clean run: %v", tc.algo, tc.kind, err)
			}
			var wrapped *join.State
			withFaults(w, &faults.Profile{Seed: seed}, join.RetryPolicy{}, func() {
				wrapped, err = join.Run(newExec(t, w, tc.algo, tc.kind, 0.4), nil)
			})
			if err != nil {
				t.Fatalf("%s/%s wrapped run: %v", tc.algo, tc.kind, err)
			}
			if cs, ws := clean.Snapshot(), wrapped.Snapshot(); cs != ws {
				t.Errorf("%s/%s seed %d: wrapped state diverged:\nclean   %+v\nwrapped %+v",
					tc.algo, tc.kind, seed, cs, ws)
			}
			cg, cb := clean.Result.Counts()
			wg, wb := wrapped.Result.Counts()
			if cg != wg || cb != wb {
				t.Errorf("%s/%s seed %d: result (%d, %d) != clean (%d, %d)",
					tc.algo, tc.kind, seed, wg, wb, cg, cb)
			}
		}
	}
}

// TestTransientFaultsFullyRecovered is acceptance criterion (a) end to end:
// at a modest transient fault rate every failure is recovered by retries —
// the output and work counters match the clean run exactly, only time (and
// RetriesSpent) grow.
func TestTransientFaultsFullyRecovered(t *testing.T) {
	w := testWorkload(t)
	clean, err := join.Run(newExec(t, w, "IDJN", retrieval.SC, 0.4), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := faults.Uniform(3, 0.02)
	for i := 0; i < 2; i++ {
		p.Fetch[i].ExtraCost = 2
		p.Next[i].ExtraCost = 2
	}
	var faulty *join.State
	withFaults(w, p, join.RetryPolicy{}, func() {
		faulty, err = join.Run(newExec(t, w, "IDJN", retrieval.SC, 0.4), nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.DocsFailed != [2]int{} {
		t.Fatalf("transient faults at rate 0.02 with default retries lost documents: %v", faulty.DocsFailed)
	}
	if faulty.RetriesSpent[0]+faulty.RetriesSpent[1] == 0 {
		t.Fatal("no retries spent; injection did not engage")
	}
	if faulty.GoodPairs != clean.GoodPairs || faulty.BadPairs != clean.BadPairs ||
		faulty.DocsProcessed != clean.DocsProcessed {
		t.Errorf("recovered run diverged: pairs (%d, %d) docs %v vs clean (%d, %d) %v",
			faulty.GoodPairs, faulty.BadPairs, faulty.DocsProcessed,
			clean.GoodPairs, clean.BadPairs, clean.DocsProcessed)
	}
	if faulty.Time <= clean.Time {
		t.Errorf("retry and injection time not charged: %v <= %v", faulty.Time, clean.Time)
	}
	if faulty.Degraded {
		t.Error("fully recovered run must not be degraded")
	}
}

// TestExhaustedRetriesDegradeGracefully is acceptance criterion (b) at the
// execution level: fault bursts longer than the retry budget lose documents,
// which are skipped and accounted rather than failing the run.
func TestExhaustedRetriesDegradeGracefully(t *testing.T) {
	w := testWorkload(t)
	p := &faults.Profile{Seed: 7}
	for i := 0; i < 2; i++ {
		p.Fetch[i] = faults.Spec{Prob: 0.05, Burst: 6} // burst outlasts 1+3 attempts
	}
	var st *join.State
	var err error
	withFaults(w, p, join.RetryPolicy{}, func() {
		st, err = join.Run(newExec(t, w, "IDJN", retrieval.SC, 0.4), nil)
	})
	if err != nil {
		t.Fatalf("document loss within budget must not fail the run: %v", err)
	}
	lost := st.DocsFailed[0] + st.DocsFailed[1]
	if lost == 0 {
		t.Fatal("burst faults should have exhausted retries for some documents")
	}
	if !st.Degraded {
		t.Error("lossy run must be marked degraded")
	}
	if st.DocsProcessed[0]+st.DocsProcessed[1]+lost != w.DB[0].Size()+w.DB[1].Size() {
		t.Errorf("every document must be processed or accounted lost: processed %v + lost %d != %d",
			st.DocsProcessed, lost, w.DB[0].Size()+w.DB[1].Size())
	}
}

// TestFailureBudgetAborts checks the budget abort path and the step-error
// wrapping: the error names the algorithm and step and unwraps to
// ErrFailureBudget.
func TestFailureBudgetAborts(t *testing.T) {
	w := testWorkload(t)
	p := &faults.Profile{Seed: 9}
	for i := 0; i < 2; i++ {
		p.Fetch[i] = faults.Spec{Prob: 0.5, Permanent: true}
	}
	var err error
	withFaults(w, p, join.RetryPolicy{FailureBudget: 3}, func() {
		_, err = join.Run(newExec(t, w, "IDJN", retrieval.SC, 0.4), nil)
	})
	if !errors.Is(err, join.ErrFailureBudget) {
		t.Fatalf("err = %v, want ErrFailureBudget", err)
	}
	if !strings.Contains(err.Error(), "IDJN step ") {
		t.Errorf("step error must name algorithm and step, got %q", err)
	}
}

// TestDeadlineStopsGracefully checks the cost-model deadline: the run stops
// without error once Time passes it, recording the hit.
func TestDeadlineStopsGracefully(t *testing.T) {
	w := testWorkload(t)
	e := newExec(t, w, "IDJN", retrieval.SC, 0.4)
	e.State().Deadline = 500
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.DeadlineHit {
		t.Fatal("deadline not recorded")
	}
	if st.Time < 500 || st.Time > 500+100 {
		t.Errorf("stopped at time %v, want just past 500", st.Time)
	}
	if st.DocsProcessed[0] >= w.DB[0].Size() {
		t.Error("deadline did not actually cut the run short")
	}
}

// TestRunCtxCancel checks cooperative cancellation: the run returns the
// context error together with a consistent, checkpointable state.
func TestRunCtxCancel(t *testing.T) {
	w := testWorkload(t)
	e := newExec(t, w, "IDJN", retrieval.SC, 0.4)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := join.RunCtx(ctx, e, func(s *join.State) bool {
		if s.DocsProcessed[0] >= 50 {
			cancel()
		}
		return false
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.DocsProcessed[0] < 50 || st.DocsProcessed[0] > 60 {
		t.Errorf("cancelled state processed %v docs", st.DocsProcessed)
	}
	snap := st.Snapshot()
	if snap.Steps == 0 || snap.Steps != st.Steps {
		t.Errorf("cancelled state not checkpointable: %+v", snap)
	}
}

// TestReplayReproducesFaultyRun checks checkpoint/resume under injection: a
// replayed executor re-encounters the identical faults and reaches the
// identical state, and continuing both runs yields identical final results.
func TestReplayReproducesFaultyRun(t *testing.T) {
	w := testWorkload(t)
	p := faults.Uniform(13, 0.05)
	withFaults(w, p, join.RetryPolicy{}, func() {
		orig := newExec(t, w, "IDJN", retrieval.SC, 0.4)
		if _, err := join.Run(orig, func(s *join.State) bool { return s.DocsProcessed[0] >= 100 }); err != nil {
			t.Fatal(err)
		}
		snap := orig.State().Snapshot()

		resumed := newExec(t, w, "IDJN", retrieval.SC, 0.4)
		if err := join.Replay(resumed, snap); err != nil {
			t.Fatalf("replay to checkpoint: %v", err)
		}

		// Both finish; they must agree exactly.
		finalO, err := join.Run(orig, nil)
		if err != nil {
			t.Fatal(err)
		}
		finalR, err := join.Run(resumed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if so, sr := finalO.Snapshot(), finalR.Snapshot(); so != sr {
			t.Errorf("resumed final state diverged:\noriginal %+v\nresumed  %+v", so, sr)
		}
	})
}
