package join

import (
	"fmt"

	"joinopt/internal/index"
	"joinopt/internal/obs"
)

// ZGJN is the Zig-Zag Join (§IV-C): both relations are reached purely by
// keyword querying, alternating roles. Starting from seed queries for R1,
// every new join value extracted for one relation becomes a query against
// the other relation's database, sweeping rows and columns of D1 × D2 in
// turn. The reach of the execution is the connected component of the seed
// in the zig-zag graph, bounded by the search interfaces' top-k caps.
type ZGJN struct {
	sides [2]*Side

	queues    [2][]string        // pending query values per side
	queued    [2]map[string]bool // values ever enqueued per side
	seen      [2]map[int]bool    // documents processed per side
	searchBuf []int              // reused query result buffer
	turn      int                // which side's queue to service next
	stalled   bool
	st        *State
}

// NewZGJN builds a Zig-Zag join seeded with join-attribute values to query
// against D1 (the paper's Qseed). Both sides need search interfaces.
func NewZGJN(s1, s2 *Side, seed []string) (*ZGJN, error) {
	if err := s1.validate(1); err != nil {
		return nil, err
	}
	if err := s2.validate(2); err != nil {
		return nil, err
	}
	if s1.Index == nil || s2.Index == nil {
		return nil, fmt.Errorf("join: ZGJN needs search interfaces on both sides")
	}
	if len(seed) == 0 {
		return nil, fmt.Errorf("join: ZGJN needs at least one seed query value")
	}
	e := &ZGJN{
		sides:  [2]*Side{s1, s2},
		queued: [2]map[string]bool{{}, {}},
		seen:   [2]map[int]bool{{}, {}},
	}
	e.st = newState(s1, s2)
	for _, v := range seed {
		e.enqueue(0, v)
	}
	return e, nil
}

// enqueue adds a query value for side i unless already issued there.
func (e *ZGJN) enqueue(i int, value string) {
	if e.queued[i][value] {
		return
	}
	e.queued[i][value] = true
	e.queues[i] = append(e.queues[i], value)
}

// Algorithm implements Executor.
func (e *ZGJN) Algorithm() string { return "ZGJN" }

// State implements Executor.
func (e *ZGJN) State() *State { return e.st }

// Step services one pending query: it issues the query against the current
// side's database, processes every unseen matching document, and enqueues
// the newly extracted join values as queries for the opposite side. It
// returns false when both queues are empty (the zig-zag has stalled or the
// component is exhausted).
func (e *ZGJN) Step() (bool, error) {
	e.st.Steps++
	if e.stalled {
		return false, nil
	}
	// Pick the next non-empty queue, preferring the alternation order.
	i := e.turn
	if len(e.queues[i]) == 0 {
		i = 1 - i
		if len(e.queues[i]) == 0 {
			e.stalled = true
			if e.st.Trace.Enabled() {
				e.st.Trace.EmitAt(e.st.Time, obs.KindSideExhausted, 0,
					map[string]any{"alg": "ZGJN", "stalled": true})
			}
			return false, nil
		}
	}
	value := e.queues[i][0]
	e.queues[i] = e.queues[i][1:]
	e.turn = 1 - i

	side := e.sides[i]
	e.st.Queries[i]++
	e.st.Time += side.Costs.TQ
	e.st.Metrics.Queries(i, 1)
	if e.st.Trace.Enabled() {
		e.st.Trace.EmitAt(e.st.Time, obs.KindQuery, i+1, map[string]any{"alg": "ZGJN", "value": value})
	}
	e.searchBuf = side.Index.SearchInto(index.QueryFromValue(value), e.searchBuf[:0])
	if e.st.pipelineLookahead() > 0 {
		// The query's whole result batch is known up front — announce it so
		// workers extract ahead of the loop below. A window-full refusal
		// ends the pass: later documents would be refused too, and this
		// batch is resolved before the next query.
		for _, docID := range e.searchBuf {
			if !e.seen[i][docID] && !e.st.announce(i, side, docID) {
				break
			}
		}
	}
	for _, docID := range e.searchBuf {
		if e.seen[i][docID] {
			continue
		}
		e.seen[i][docID] = true
		e.st.DocsRetrieved[i]++
		e.st.Time += side.Costs.TR
		e.st.Metrics.Retrieved(i, 1)
		tuples, err := processDoc(e.st, i, side, docID)
		if err != nil {
			return false, err
		}
		for _, t := range tuples {
			e.enqueue(1-i, t.A1)
		}
	}
	e.st.Metrics.QueueDepth(0, len(e.queues[0]))
	e.st.Metrics.QueueDepth(1, len(e.queues[1]))
	return true, nil
}

// Pending returns the number of queued queries per side, exposed for
// experiment instrumentation.
func (e *ZGJN) Pending() (q1, q2 int) { return len(e.queues[0]), len(e.queues[1]) }
