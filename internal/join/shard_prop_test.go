package join_test

import (
	"bytes"
	"testing"

	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/shard"
	"joinopt/internal/workload"
)

// runSharded executes spec over w (repeats times, back to back) under the
// given shard and worker counts, returning the concatenated NDJSON trace and
// the final run's snapshot. Repeated executions share the shard set, so the
// second execution exercises the per-shard cache hit path. cacheBytes is the
// total budget, split evenly across shard slices exactly as the facade does.
func runSharded(t *testing.T, w *workload.Workload, spec optimizer.PlanSpec, shards, workers int, cacheBytes int64, repeats int) ([]byte, join.Snapshot) {
	t.Helper()
	w.Shards = shards
	w.ExecWorkers = workers
	if shards >= 2 {
		w.ShardSet = shard.NewSet(shard.Partition{N: shards}, cacheBytes)
	} else if cacheBytes > 0 {
		w.ExtractCache = pipeline.NewCache(cacheBytes)
	}
	var buf bytes.Buffer
	sink := obs.NewNDJSON(&buf)
	w.Trace = obs.New(sink)
	defer func() {
		w.Shards = 0
		w.ShardSet = nil
		w.ExecWorkers = 0
		w.ExtractCache = nil
		w.Trace = nil
	}()
	var last join.Snapshot
	for r := 0; r < repeats; r++ {
		exec, err := w.NewExecutor(spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.Run(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = st.Snapshot()
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), last
}

// TestShardedBitIdenticalTraces is the scatter-gather engine's core
// property: under seeded fault injection, every shard count produces the
// byte-identical NDJSON trace and final snapshot as the unsharded execution
// — partitioning moves extraction onto per-shard engines but the consumer
// still resolves documents in canonical stream order, so nothing an
// execution does, charges, or emits can depend on the shard count.
func TestShardedBitIdenticalTraces(t *testing.T) {
	w := pipeWorkload(t)
	p, err := faults.Parse("rate=0.05,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = p
	w.Retry = join.RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
	defer func() { w.Faults = nil; w.Retry = join.RetryPolicy{} }()

	for _, spec := range pipelinePlans {
		baseTrace, baseSnap := runSharded(t, w, spec, 0, 0, 0, 1)
		for _, n := range []int{1, 2, 4, 8} {
			trace, snap := runSharded(t, w, spec, n, 0, 0, 1)
			if snap != baseSnap {
				t.Errorf("%s shards=%d: snapshot diverged\nbase %+v\n got %+v", spec, n, baseSnap, snap)
			}
			if !bytes.Equal(trace, baseTrace) {
				t.Errorf("%s shards=%d: trace diverged at %s", spec, n, firstTraceDiff(baseTrace, trace))
			}
		}
		// Sharding composes with per-shard worker pools: the budget splits
		// across shards without disturbing the merged stream.
		trace, snap := runSharded(t, w, spec, 4, 3, 0, 1)
		if snap != baseSnap {
			t.Errorf("%s shards=4 workers=3: snapshot diverged\nbase %+v\n got %+v", spec, baseSnap, snap)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("%s shards=4 workers=3: trace diverged at %s", spec, firstTraceDiff(baseTrace, trace))
		}
	}
}

// TestShardedBitIdenticalWithCache repeats the identity property with a
// cache budget large enough that no slice evicts: each plan executes twice
// per run, the second served from the per-shard cache slices, and the hit
// accounting, free re-extractions, and "cached" trace attributes must all be
// independent of the shard count.
func TestShardedBitIdenticalWithCache(t *testing.T) {
	w := pipeWorkload(t)
	p, err := faults.Parse("rate=0.05,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = p
	w.Retry = join.RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
	defer func() { w.Faults = nil; w.Retry = join.RetryPolicy{} }()

	const cacheBytes = 1 << 26 // roomy: slices stay eviction-free at 8 shards
	for _, spec := range pipelinePlans {
		baseTrace, baseSnap := runSharded(t, w, spec, 0, 0, cacheBytes, 2)
		if !bytes.Contains(baseTrace, []byte(`"cached":true`)) {
			t.Errorf("%s: no cached re-extractions in a repeated run's trace", spec)
		}
		for _, n := range []int{2, 4, 8} {
			trace, snap := runSharded(t, w, spec, n, 0, cacheBytes, 2)
			if snap != baseSnap {
				t.Errorf("%s shards=%d cached: snapshot diverged\nbase %+v\n got %+v", spec, n, baseSnap, snap)
			}
			if !bytes.Equal(trace, baseTrace) {
				t.Errorf("%s shards=%d cached: trace diverged at %s", spec, n, firstTraceDiff(baseTrace, trace))
			}
		}
	}
}

// TestShardedCappedCacheWarmthInvariant: when the cache budget is tight,
// per-slice eviction boundaries legitimately differ from the unsharded LRU's
// — which documents stay warm may change, but nothing else: tuples,
// document counters, and the billed total Time+ΣCacheSaved (work is either
// paid for or saved, never lost) stay equal at every shard count.
func TestShardedCappedCacheWarmthInvariant(t *testing.T) {
	w := pipeWorkload(t)
	spec := pipelinePlans[0]
	const cacheBytes = 64 << 10

	warmth := func(s join.Snapshot) float64 { return s.Time + s.CacheSaved[0] + s.CacheSaved[1] }
	_, base := runSharded(t, w, spec, 0, 0, cacheBytes, 2)
	for _, n := range []int{1, 2, 4, 8} {
		_, snap := runSharded(t, w, spec, n, 0, cacheBytes, 2)
		if snap.GoodPairs != base.GoodPairs || snap.BadPairs != base.BadPairs || snap.JoinSize != base.JoinSize {
			t.Errorf("shards=%d: output diverged: (%d,%d,%d) vs (%d,%d,%d)", n,
				snap.GoodPairs, snap.BadPairs, snap.JoinSize, base.GoodPairs, base.BadPairs, base.JoinSize)
		}
		if snap.DocsProcessed != base.DocsProcessed || snap.DocsRetrieved != base.DocsRetrieved {
			t.Errorf("shards=%d: document counters diverged: %+v vs %+v", n, snap, base)
		}
		if warmth(snap) != warmth(base) {
			t.Errorf("shards=%d: Time+ΣCacheSaved invariant broken: %v vs %v", n, warmth(snap), warmth(base))
		}
	}
}
