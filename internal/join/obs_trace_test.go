package join_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file")

// traceWorkload builds a fresh (non-shared) workload so the golden test can
// attach faults, retries, and a trace without disturbing other tests.
func traceWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.HQJoinEX(workload.Params{NumDocs: 400, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestGoldenTrace pins the NDJSON trace of a small seeded IDJN run with
// fault injection byte-for-byte: trace timestamps are cost-model times and
// attr keys are JSON-sorted, so the stream must be fully deterministic.
// Regenerate with `go test ./internal/join -run TestGoldenTrace -update`.
func TestGoldenTrace(t *testing.T) {
	run := func() []byte {
		w := traceWorkload(t)
		p, err := faults.Parse("rate=0.1,seed=7")
		if err != nil {
			t.Fatal(err)
		}
		w.Faults = p
		w.Retry = join.RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
		var buf bytes.Buffer
		sink := obs.NewNDJSON(&buf)
		w.Trace = obs.New(sink)
		exec, err := w.NewExecutor(optimizer.PlanSpec{
			JN:    optimizer.IDJN,
			Theta: [2]float64{0.4, 0.4},
			X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
		})
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		if _, err := join.Run(exec, func(*join.State) bool {
			steps++
			return steps >= 10
		}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	got := run()
	if again := run(); !bytes.Equal(got, again) {
		t.Fatal("trace is not deterministic across identical runs")
	}
	golden := filepath.Join("testdata", "golden_trace.ndjson")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n got %s\nwant %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace length differs from golden: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestTraceCoversExecutionSpans checks the taxonomy end to end: a traced
// faulty run emits step, document, tuple, retry, and fault spans, and a full
// run closes with side-exhaustion markers.
func TestTraceCoversExecutionSpans(t *testing.T) {
	w := traceWorkload(t)
	p, err := faults.Parse("rate=0.1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = p
	w.Retry = join.RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
	ring := obs.NewRing(1 << 16)
	w.Trace = obs.New(ring)
	exec, err := w.NewExecutor(optimizer.PlanSpec{
		JN:    optimizer.IDJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := join.Run(exec, nil); err != nil {
		t.Fatal(err)
	}
	kinds := map[obs.Kind]int{}
	var lastT float64
	for _, ev := range ring.Events() {
		kinds[ev.Kind]++
		if ev.T < 0 {
			t.Fatalf("negative timestamp in %+v", ev)
		}
		if ev.T > lastT {
			lastT = ev.T
		}
	}
	for _, want := range []obs.Kind{
		obs.KindStep, obs.KindDocProcessed, obs.KindTupleExtracted,
		obs.KindTupleJoined, obs.KindRetry, obs.KindFault, obs.KindSideExhausted,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s events in a traced faulty full run (kinds: %v)", want, kinds)
		}
	}
	if kinds[obs.KindSideExhausted] != 2 {
		t.Errorf("IDJN full run must exhaust both sides, got %d markers", kinds[obs.KindSideExhausted])
	}
	if st := exec.State(); lastT > st.Time {
		t.Errorf("event timestamp %v beyond final model time %v", lastT, st.Time)
	}
}

// TestNilTracerBitIdentical is the observability counterpart of
// TestZeroRateFaultTransparency: attaching a trace and metrics must not
// change execution at all, and running with them detached must leave the
// state bit-identical to a never-instrumented run.
func TestNilTracerBitIdentical(t *testing.T) {
	cases := []struct {
		algo optimizer.Algorithm
		kind retrieval.Kind
	}{
		{optimizer.IDJN, retrieval.SC},
		{optimizer.IDJN, retrieval.FS},
		{optimizer.IDJN, retrieval.AQG},
		{optimizer.OIJN, retrieval.SC},
		{optimizer.ZGJN, retrieval.SC},
	}
	w := testWorkload(t)
	for _, tc := range cases {
		spec := optimizer.PlanSpec{
			JN:    tc.algo,
			Theta: [2]float64{0.4, 0.4},
			X:     [2]retrieval.Kind{tc.kind, tc.kind},
		}
		mk := func() join.Executor {
			t.Helper()
			e, err := w.NewExecutor(spec)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		clean, err := join.Run(mk(), nil)
		if err != nil {
			t.Fatalf("%v/%s clean: %v", tc.algo, tc.kind, err)
		}
		// Traced run: ring sink + registry attached.
		w.Trace = obs.New(obs.NewRing(1024))
		w.Metrics = obs.NewRegistry()
		traced, err := join.Run(mk(), nil)
		w.Trace, w.Metrics = nil, nil
		if err != nil {
			t.Fatalf("%v/%s traced: %v", tc.algo, tc.kind, err)
		}
		if cs, ts := clean.Snapshot(), traced.Snapshot(); cs != ts {
			t.Errorf("%v/%s: traced state diverged:\nclean  %+v\ntraced %+v", tc.algo, tc.kind, cs, ts)
		}
		cg, cb := clean.Result.Counts()
		tg, tb := traced.Result.Counts()
		if cg != tg || cb != tb {
			t.Errorf("%v/%s: traced result (%d,%d) != clean (%d,%d)", tc.algo, tc.kind, tg, tb, cg, cb)
		}
	}
}

// TestMetricsMirrorState checks the live-counter invariant on a fixed plan:
// after a run, the registry's per-side counters equal the executor state's
// own counters exactly.
func TestMetricsMirrorState(t *testing.T) {
	w := traceWorkload(t)
	reg := obs.NewRegistry()
	w.Metrics = reg
	exec, err := w.NewExecutor(optimizer.PlanSpec{
		JN:    optimizer.IDJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	for side := 0; side < 2; side++ {
		label := string('1' + byte(side))
		if got := s.Counters[obs.MetricDocsProcessed+`{side="`+label+`"}`]; got != int64(st.DocsProcessed[side]) {
			t.Errorf("side %s processed counter %d != state %d", label, got, st.DocsProcessed[side])
		}
		if got := s.Counters[obs.MetricDocsRetrieved+`{side="`+label+`"}`]; got != int64(st.DocsRetrieved[side]) {
			t.Errorf("side %s retrieved counter %d != state %d", label, got, st.DocsRetrieved[side])
		}
		if got := s.Counters[obs.MetricQueries+`{side="`+label+`"}`]; got != int64(st.Queries[side]) {
			t.Errorf("side %s queries counter %d != state %d", label, got, st.Queries[side])
		}
	}
	if got := s.Gauges[obs.MetricTuplesGood]; got != float64(st.GoodPairs) {
		t.Errorf("good gauge %v != state %d", got, st.GoodPairs)
	}
	if got := s.Gauges[obs.MetricTuplesBad]; got != float64(st.BadPairs) {
		t.Errorf("bad gauge %v != state %d", got, st.BadPairs)
	}
	if got := s.Gauges[obs.MetricModelTime]; got != st.Time {
		t.Errorf("model-time gauge %v != state %v", got, st.Time)
	}
}
