package join_test

import (
	"sync"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var (
	wlOnce sync.Once
	wl     *workload.Workload
	wlErr  error
)

// testWorkload builds one small HQ⋈EX workload shared by all tests in the
// package.
func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	wlOnce.Do(func() {
		wl, wlErr = workload.HQJoinEX(workload.Params{NumDocs: 800, Seed: 5})
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func idjnSC(t *testing.T, w *workload.Workload, theta float64) *join.IDJN {
	t.Helper()
	x1, err := w.NewStrategy(0, retrieval.SC)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := w.NewStrategy(1, retrieval.SC)
	if err != nil {
		t.Fatal(err)
	}
	e, err := join.NewIDJN(w.Side(0, theta), w.Side(1, theta), x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestIDJNScanExhaustsBothDatabases(t *testing.T) {
	w := testWorkload(t)
	e := idjnSC(t, w, 0.4)
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DocsProcessed[0] != w.DB[0].Size() || st.DocsProcessed[1] != w.DB[1].Size() {
		t.Errorf("processed %v, want full databases", st.DocsProcessed)
	}
	if st.DocsRetrieved[0] != w.DB[0].Size() {
		t.Errorf("retrieved %d", st.DocsRetrieved[0])
	}
	if st.GoodPairs == 0 {
		t.Error("no good join pairs produced")
	}
	if st.BadPairs == 0 {
		t.Error("expected some bad join pairs at theta 0.4")
	}
	if st.Time <= 0 {
		t.Error("no time charged")
	}
}

func TestIDJNPairCountsMatchDirectComposition(t *testing.T) {
	w := testWorkload(t)
	e := idjnSC(t, w, 0.4)
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Direct recomputation of Σ_a gr1(a)·gr2(a) from the relations.
	good, total := 0, 0
	vals := map[string]bool{}
	for _, v := range st.R1.JoinValues() {
		vals[v] = true
	}
	for _, v := range st.R2.JoinValues() {
		vals[v] = true
	}
	for v := range vals {
		good += st.R1.GoodOcc(v) * st.R2.GoodOcc(v)
		total += (st.R1.GoodOcc(v) + st.R1.BadOcc(v)) * (st.R2.GoodOcc(v) + st.R2.BadOcc(v))
	}
	if st.GoodPairs != good {
		t.Errorf("incremental GoodPairs %d != direct %d", st.GoodPairs, good)
	}
	if st.BadPairs != total-good {
		t.Errorf("incremental BadPairs %d != direct %d", st.BadPairs, total-good)
	}
	// With one tuple per document occurrence, the distinct labelled join
	// tuples coincide with the pair composition.
	rg, rb := st.Result.Counts()
	if rg != st.GoodPairs || rb != st.BadPairs {
		t.Errorf("result counts (%d, %d) != pair counts (%d, %d)", rg, rb, st.GoodPairs, st.BadPairs)
	}
}

func TestIDJNStopFunc(t *testing.T) {
	w := testWorkload(t)
	e := idjnSC(t, w, 0.4)
	st, err := join.Run(e, func(s *join.State) bool { return s.DocsProcessed[0] >= 100 })
	if err != nil {
		t.Fatal(err)
	}
	if st.DocsProcessed[0] < 100 || st.DocsProcessed[0] > 101 {
		t.Errorf("stop respected late: %d docs", st.DocsProcessed[0])
	}
}

func TestIDJNHigherThetaCleanerOutput(t *testing.T) {
	w := testWorkload(t)
	low, err := join.Run(idjnSC(t, w, 0.4), nil)
	if err != nil {
		t.Fatal(err)
	}
	high, err := join.Run(idjnSC(t, w, 0.8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if high.GoodPairs >= low.GoodPairs {
		t.Errorf("theta 0.8 should extract fewer good pairs: %d vs %d", high.GoodPairs, low.GoodPairs)
	}
	lowPrec := float64(low.GoodPairs) / float64(low.GoodPairs+low.BadPairs)
	highPrec := float64(high.GoodPairs) / float64(high.GoodPairs+high.BadPairs)
	if highPrec <= lowPrec {
		t.Errorf("theta 0.8 should be more precise: %.3f vs %.3f", highPrec, lowPrec)
	}
}

func TestIDJNRectangleRates(t *testing.T) {
	w := testWorkload(t)
	e := idjnSC(t, w, 0.4)
	if err := e.SetRates(2, 0.5); err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, func(s *join.State) bool { return s.DocsProcessed[0] >= 200 })
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st.DocsProcessed[0]) / float64(st.DocsProcessed[1])
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("rate ratio %.2f, want ~4", ratio)
	}
	if err := e.SetRates(0, 1); err == nil {
		t.Error("expected error for non-positive rate")
	}
}

func TestIDJNWithFilteredScan(t *testing.T) {
	w := testWorkload(t)
	x1, err := w.NewStrategy(0, retrieval.FS)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := w.NewStrategy(1, retrieval.FS)
	if err != nil {
		t.Fatal(err)
	}
	e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DocsProcessed[0] >= w.DB[0].Size() {
		t.Error("FS should process fewer documents than the full database")
	}
	if st.DocsFiltered[0] == 0 {
		t.Error("FS should filter some documents")
	}
	if st.DocsRetrieved[0] != w.DB[0].Size() {
		t.Errorf("FS still retrieves everything: %d", st.DocsRetrieved[0])
	}
}

func TestIDJNWithAQG(t *testing.T) {
	w := testWorkload(t)
	x1, err := w.NewStrategy(0, retrieval.AQG)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := w.NewStrategy(1, retrieval.AQG)
	if err != nil {
		t.Fatal(err)
	}
	e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries[0] == 0 || st.Queries[1] == 0 {
		t.Errorf("AQG issued no queries: %v", st.Queries)
	}
	if st.DocsProcessed[0] == 0 || st.DocsProcessed[0] >= w.DB[0].Size() {
		t.Errorf("AQG processed %d docs, want a strict subset", st.DocsProcessed[0])
	}
	if st.GoodPairs == 0 {
		t.Error("AQG execution produced no good pairs")
	}
}

func TestOIJNQueriesInnerPerOuterValue(t *testing.T) {
	w := testWorkload(t)
	x, err := w.NewStrategy(0, retrieval.SC)
	if err != nil {
		t.Fatal(err)
	}
	e, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, x)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries[1] == 0 {
		t.Fatal("no inner queries issued")
	}
	if st.Queries[1] != len(st.R1.JoinValues()) {
		t.Errorf("queries %d != distinct outer values %d", st.Queries[1], len(st.R1.JoinValues()))
	}
	if st.DocsRetrieved[1] > st.Queries[1]*w.Ix[1].TopK() {
		t.Errorf("inner retrieved %d exceeds queries × top-k", st.DocsRetrieved[1])
	}
	if st.GoodPairs == 0 {
		t.Error("OIJN produced no good pairs")
	}
}

func TestOIJNOuterSideSelection(t *testing.T) {
	w := testWorkload(t)
	x, err := w.NewStrategy(1, retrieval.SC)
	if err != nil {
		t.Fatal(err)
	}
	e, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 1, x)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, func(s *join.State) bool { return s.DocsProcessed[1] >= 150 })
	if err != nil {
		t.Fatal(err)
	}
	if st.DocsProcessed[1] < 150 {
		t.Errorf("outer side 1 processed %d", st.DocsProcessed[1])
	}
	if st.Queries[0] == 0 {
		t.Error("inner side 0 received no queries")
	}
}

func TestOIJNValidation(t *testing.T) {
	w := testWorkload(t)
	x, _ := w.NewStrategy(0, retrieval.SC)
	if _, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 2, x); err == nil {
		t.Error("expected error for bad outer index")
	}
	if _, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, nil); err == nil {
		t.Error("expected error for nil strategy")
	}
	s2 := w.Side(1, 0.4)
	s2.Index = nil
	if _, err := join.NewOIJN(w.Side(0, 0.4), s2, 0, x); err == nil {
		t.Error("expected error for inner side without index")
	}
}

func TestZGJNReachesBothRelations(t *testing.T) {
	w := testWorkload(t)
	e, err := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), w.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries[0] == 0 || st.Queries[1] == 0 {
		t.Errorf("zig-zag queried %v, want both sides", st.Queries)
	}
	if st.DocsProcessed[0] == 0 || st.DocsProcessed[1] == 0 {
		t.Errorf("zig-zag processed %v, want both sides", st.DocsProcessed)
	}
	// ZGJN reach is bounded; it must not scan the whole database.
	if st.DocsProcessed[0] >= w.DB[0].Size() {
		t.Error("zig-zag should not reach every document")
	}
	q1, q2 := e.Pending()
	if q1 != 0 || q2 != 0 {
		t.Errorf("run ended with pending queries %d/%d", q1, q2)
	}
}

func TestZGJNValidation(t *testing.T) {
	w := testWorkload(t)
	if _, err := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), nil); err == nil {
		t.Error("expected error for empty seed")
	}
	s1 := w.Side(0, 0.4)
	s1.Index = nil
	if _, err := join.NewZGJN(s1, w.Side(1, 0.4), w.Seeds); err == nil {
		t.Error("expected error for missing index")
	}
}

func TestZGJNStepAlternatesSides(t *testing.T) {
	w := testWorkload(t)
	e, err := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), w.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	// After the first few steps both sides should have been queried unless
	// the seed stalls immediately.
	for i := 0; i < 6; i++ {
		if ok, err := e.Step(); err != nil || !ok {
			break
		}
	}
	st := e.State()
	if st.Queries[0] == 0 {
		t.Error("side 1 never queried")
	}
	if st.Queries[1] == 0 {
		t.Error("side 2 never queried after early steps")
	}
}

func TestExecutorAlgorithms(t *testing.T) {
	w := testWorkload(t)
	x1, _ := w.NewStrategy(0, retrieval.SC)
	x2, _ := w.NewStrategy(1, retrieval.SC)
	id, _ := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
	x3, _ := w.NewStrategy(0, retrieval.SC)
	oi, _ := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, x3)
	zg, _ := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), w.Seeds)
	if id.Algorithm() != "IDJN" || oi.Algorithm() != "OIJN" || zg.Algorithm() != "ZGJN" {
		t.Error("algorithm names wrong")
	}
}

func TestOIJNWithAQGOuter(t *testing.T) {
	w := testWorkload(t)
	x, err := w.NewStrategy(0, retrieval.AQG)
	if err != nil {
		t.Fatal(err)
	}
	e, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, x)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Outer side issues AQG queries; inner side issues value queries.
	if st.Queries[0] == 0 {
		t.Error("outer AQG issued no queries")
	}
	if st.Queries[1] == 0 {
		t.Error("inner side received no value queries")
	}
	if st.DocsProcessed[0] >= w.DB[0].Size() {
		t.Error("AQG outer should process a strict subset")
	}
}

func TestZGJNStallsOnDeadSeed(t *testing.T) {
	w := testWorkload(t)
	e, err := join.NewZGJN(w.Side(0, 0.4), w.Side(1, 0.4), []string{"No Such Company Anywhere"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One query issued (matching nothing), then the zig-zag stalls.
	if st.Queries[0] != 1 || st.DocsProcessed[0] != 0 || st.DocsProcessed[1] != 0 {
		t.Errorf("dead seed should stall immediately: %v queries, %v docs", st.Queries, st.DocsProcessed)
	}
	if ok, _ := e.Step(); ok {
		t.Error("stalled executor must stay stalled")
	}
}

func TestExhaustedExecutorsIdempotent(t *testing.T) {
	w := testWorkload(t)
	x1, _ := w.NewStrategy(0, retrieval.SC)
	e, err := join.NewOIJN(w.Side(0, 0.4), w.Side(1, 0.4), 0, x1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := join.Run(e, nil); err != nil {
		t.Fatal(err)
	}
	before := *e.State()
	for i := 0; i < 3; i++ {
		ok, err := e.Step()
		if err != nil || ok {
			t.Fatalf("exhausted OIJN stepped: ok=%v err=%v", ok, err)
		}
	}
	if e.State().DocsProcessed != before.DocsProcessed {
		t.Error("exhausted executor mutated state")
	}
}

func TestConcurrentExecutionsShareSystemSafely(t *testing.T) {
	// Two executions over the same (cached) IE systems must be race-free
	// and produce identical results.
	w := testWorkload(t)
	run := func() *join.State {
		x1, _ := w.NewStrategy(0, retrieval.SC)
		x2, _ := w.NewStrategy(1, retrieval.SC)
		e, err := join.NewIDJN(w.Side(0, 0.4), w.Side(1, 0.4), x1, x2)
		if err != nil {
			t.Error(err)
			return nil
		}
		st, err := join.Run(e, func(s *join.State) bool { return s.DocsProcessed[0] >= 200 })
		if err != nil {
			t.Error(err)
			return nil
		}
		return st
	}
	results := make([]*join.State, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()
	if results[0] == nil || results[1] == nil {
		t.Fatal("a run failed")
	}
	if results[0].GoodPairs != results[1].GoodPairs || results[0].BadPairs != results[1].BadPairs {
		t.Errorf("concurrent runs diverged: %d/%d vs %d/%d",
			results[0].GoodPairs, results[0].BadPairs, results[1].GoodPairs, results[1].BadPairs)
	}
}
