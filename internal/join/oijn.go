package join

import (
	"fmt"

	"joinopt/internal/index"
	"joinopt/internal/obs"
	"joinopt/internal/retrieval"
)

// OIJN is the Outer/Inner Join (§IV-B): a nested-loops join where the outer
// relation is extracted with a document retrieval strategy and, for every
// new join-attribute value it produces, a keyword query is issued against
// the inner database's search interface to fetch the documents likely to
// contain the counterpart tuples. The inner reach is bounded by the search
// interface's top-k cap.
type OIJN struct {
	outer, inner *Side
	outerIdx     int // 0 or 1: which State side is the outer relation
	strat        retrieval.Strategy
	prev         retrieval.Counts

	queried   map[string]bool // join values already used as queries
	innerSeen map[int]bool    // inner documents already processed
	searchBuf []int           // reused inner-query result buffer
	ahead     int             // announced prefix of the outer peek list
	done      bool
	st        *State
}

// NewOIJN builds an Outer/Inner join. outerIdx selects which side (0 → s1,
// 1 → s2) plays the outer role; x is the outer document retrieval strategy.
// The inner side must have a search interface (Index).
func NewOIJN(s1, s2 *Side, outerIdx int, x retrieval.Strategy) (*OIJN, error) {
	if err := s1.validate(1); err != nil {
		return nil, err
	}
	if err := s2.validate(2); err != nil {
		return nil, err
	}
	if outerIdx != 0 && outerIdx != 1 {
		return nil, fmt.Errorf("join: OIJN outer index must be 0 or 1, got %d", outerIdx)
	}
	if x == nil {
		return nil, fmt.Errorf("join: OIJN needs an outer retrieval strategy")
	}
	sides := [2]*Side{s1, s2}
	inner := sides[1-outerIdx]
	if inner.Index == nil {
		return nil, fmt.Errorf("join: OIJN inner side needs a search interface")
	}
	e := &OIJN{
		outer:     sides[outerIdx],
		inner:     inner,
		outerIdx:  outerIdx,
		strat:     x,
		queried:   map[string]bool{},
		innerSeen: map[int]bool{},
	}
	e.st = newState(s1, s2)
	return e, nil
}

// Algorithm implements Executor.
func (e *OIJN) Algorithm() string { return "OIJN" }

// State implements Executor.
func (e *OIJN) State() *State { return e.st }

// Step retrieves and processes one outer document, then issues one keyword
// query per new outer join value, processing every unseen matching inner
// document. It returns false once the outer strategy is exhausted.
func (e *OIJN) Step() (bool, error) {
	e.st.Steps++
	if e.done {
		return false, nil
	}
	if n := e.st.pipelineLookahead(); n > 0 {
		// Announce only the tail of the (prefix-stable) peek list past the
		// ahead cursor; stop at a window-full refusal and retry it later.
		peek := retrieval.PeekAhead(e.strat, n)
		if e.ahead > len(peek) {
			e.ahead = len(peek)
		}
		for e.ahead < len(peek) {
			if !e.st.announce(e.outerIdx, e.outer, peek[e.ahead]) {
				break
			}
			e.ahead++
		}
	}
	id, ok, skip, err := pullDoc(e.st, e.outerIdx, e.outer, e.strat)
	now := e.strat.Counts()
	e.st.chargeStrategy(e.outerIdx, e.outer.Costs, e.prev, now)
	e.prev = now
	if err != nil {
		return false, err
	}
	if ok && e.ahead > 0 {
		// The pull consumed the head of the peek list.
		e.ahead--
	}
	if skip {
		return true, nil
	}
	if !ok {
		e.done = true
		if e.st.Trace.Enabled() {
			e.st.Trace.EmitAt(e.st.Time, obs.KindSideExhausted, e.outerIdx+1,
				map[string]any{"alg": "OIJN", "docs": e.st.DocsProcessed[e.outerIdx]})
		}
		return false, nil
	}
	tuples, err := processDoc(e.st, e.outerIdx, e.outer, id)
	if err != nil {
		return false, err
	}
	innerIdx := 1 - e.outerIdx
	for _, t := range tuples {
		a := t.A1
		if e.queried[a] {
			continue
		}
		e.queried[a] = true
		e.st.Queries[innerIdx]++
		e.st.Time += e.inner.Costs.TQ
		e.st.Metrics.Queries(innerIdx, 1)
		if e.st.Trace.Enabled() {
			e.st.Trace.EmitAt(e.st.Time, obs.KindQuery, innerIdx+1, map[string]any{"alg": "OIJN", "value": a})
		}
		e.searchBuf = e.inner.Index.SearchInto(index.QueryFromValue(a), e.searchBuf[:0])
		if e.st.pipelineLookahead() > 0 {
			// The whole inner batch is known before any of it is processed —
			// announce it all so workers extract ahead of the loop below. A
			// window-full refusal ends the pass: later documents would be
			// refused too, and this batch is resolved before the next query.
			for _, docID := range e.searchBuf {
				if !e.innerSeen[docID] && !e.st.announce(innerIdx, e.inner, docID) {
					break
				}
			}
		}
		for _, docID := range e.searchBuf {
			if e.innerSeen[docID] {
				continue
			}
			e.innerSeen[docID] = true
			e.st.DocsRetrieved[innerIdx]++
			e.st.Time += e.inner.Costs.TR
			e.st.Metrics.Retrieved(innerIdx, 1)
			if _, err := processDoc(e.st, innerIdx, e.inner, docID); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}
