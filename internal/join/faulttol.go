package join

import (
	"errors"
	"fmt"
	"math"

	"joinopt/internal/corpus"
	"joinopt/internal/obs"
	"joinopt/internal/retrieval"
)

// DocSource resolves document IDs to documents, possibly failing and
// possibly charging extra cost-model time (injected latency, slow
// interfaces). A side with a Source set fetches documents through it; a side
// without one reads its database directly and cannot fail.
type DocSource interface {
	Size() int
	Fetch(id int) (*corpus.Document, float64, error)
}

// ErrFailureBudget aborts an execution whose side lost more documents than
// its retry policy tolerates.
var ErrFailureBudget = errors.New("failure budget exhausted")

// ErrDeadline marks an execution cut short by its cost-model deadline. The
// join layer itself treats deadlines as graceful stops (Run returns the
// state with a nil error and DeadlineHit set); the facade's Run API wraps
// deadline-stopped results with this sentinel so callers can errors.Is it.
var ErrDeadline = errors.New("deadline exceeded")

// StepError is a fatal executor step failure, carrying the algorithm and
// the step count at which it occurred. It wraps the underlying cause, so
// errors.Is(err, ErrFailureBudget) and friends see through it.
type StepError struct {
	Algorithm string
	Step      int
	Err       error
}

// Error renders the step coordinates with the cause.
func (e *StepError) Error() string {
	return fmt.Sprintf("join: %s step %d: %v", e.Algorithm, e.Step, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *StepError) Unwrap() error { return e.Err }

// RetryPolicy governs how substrate failures — document fetches, retrieval
// pulls — are retried and how much loss an execution tolerates. The zero
// value resolves to DefaultRetry.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt of an
	// operation (negative disables retrying; 0 resolves to the default).
	MaxRetries int
	// BaseDelay is the cost-model time of the first backoff; each further
	// retry doubles it up to MaxDelay, and deterministic jitter in
	// [0.5, 1.5) spreads retry storms.
	BaseDelay float64
	MaxDelay  float64
	// FailureBudget is the number of documents a side may lose (retries
	// exhausted) before the execution aborts with ErrFailureBudget;
	// 0 tolerates unlimited loss.
	FailureBudget int
}

// DefaultRetry is the policy a zero-value RetryPolicy resolves to: three
// retries behind capped exponential backoff, unlimited failure budget.
var DefaultRetry = RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}

// resolved maps zero fields to their defaults.
func (p RetryPolicy) resolved() RetryPolicy {
	switch {
	case p.MaxRetries < 0:
		p.MaxRetries = 0
	case p.MaxRetries == 0:
		p.MaxRetries = DefaultRetry.MaxRetries
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	return p
}

// mixRetry is the SplitMix64 finalizer, used to derive deterministic jitter.
func mixRetry(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff returns the cost-model delay charged before retry attempt
// (0-based) on side i, given the side's total retries spent so far. The
// jitter factor in [0.5, 1.5) is a pure function of (side, spent), never of
// wall-clock time or global RNG state, so a replayed execution re-derives
// the identical delays.
func (p RetryPolicy) backoff(attempt, side, spent int) float64 {
	d := p.BaseDelay * math.Pow(2, float64(attempt))
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := mixRetry(uint64(side+1)*0x9e3779b97f4a7c15 + uint64(spent))
	jitter := 0.5 + float64(h>>11)/float64(uint64(1)<<53)
	return d * jitter
}

// temporary is the net-style transience convention: errors advertising
// Temporary() are retried; others are treated as permanent. Errors that
// don't implement it at all default to transient (one flaky call shouldn't
// kill a long execution).
type temporary interface{ Temporary() bool }

func isTemporary(err error) bool {
	var t temporary
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return true
}

// deadlineExpired reports whether the execution's cost-model deadline has
// passed, recording the hit.
func (st *State) deadlineExpired() bool {
	if st.Deadline > 0 && st.Time >= st.Deadline {
		st.DeadlineHit = true
		return true
	}
	return false
}

// failDoc accounts one lost document on side i and enforces the side's
// failure budget.
func (st *State) failDoc(i int, pol RetryPolicy) error {
	st.DocsFailed[i]++
	st.Degraded = true
	st.Metrics.Failed(i)
	if st.Trace.Enabled() {
		st.Trace.EmitAt(st.Time, obs.KindDocFailed, i+1, map[string]any{"failed": st.DocsFailed[i]})
	}
	if pol.FailureBudget > 0 && st.DocsFailed[i] > pol.FailureBudget {
		return fmt.Errorf("join: side %d lost %d documents: %w", i+1, st.DocsFailed[i], ErrFailureBudget)
	}
	return nil
}

// traceRetry records one retry of op ("fetch" or "pull") on side i.
func (st *State) traceRetry(i int, op string, attempt int, cause error) {
	st.Metrics.Retry(i)
	if st.Trace.Enabled() {
		st.Trace.EmitAt(st.Time, obs.KindRetry, i+1,
			map[string]any{"op": op, "attempt": attempt, "err": cause.Error()})
	}
}

// fetchDoc resolves a document through the side's source, retrying
// transient failures under the side's policy. Each retry is charged its
// backoff delay plus a fresh retrieval round-trip (Costs.TR); injected
// latency rides along on the source's cost return. ok is false when the
// document was lost (skipped and accounted); err is non-nil only when the
// failure budget aborts the execution.
func fetchDoc(st *State, i int, s *Side, id int) (doc *corpus.Document, ok bool, err error) {
	if s.Source == nil {
		return s.DB.Doc(id), true, nil
	}
	pol := s.Retry.resolved()
	for attempt := 0; ; attempt++ {
		doc, cost, err := s.Source.Fetch(id)
		st.Time += cost
		if err == nil {
			return doc, true, nil
		}
		if attempt < pol.MaxRetries && isTemporary(err) && !st.deadlineExpired() {
			st.RetriesSpent[i]++
			st.Time += pol.backoff(attempt, i, st.RetriesSpent[i]) + s.Costs.TR
			st.traceRetry(i, "fetch", attempt, err)
			continue
		}
		return nil, false, st.failDoc(i, pol)
	}
}

// pullDoc pulls the next document ID from a side's retrieval stream,
// retrying transient failures under the side's policy. Failed pulls do not
// advance the stream (see retrieval.Fallible), so a successful retry
// resumes exactly where it left off. skip is true when a transiently
// failing pull exhausted its retries: the pull is abandoned and accounted
// as one lost document, but the stream stays alive and the caller moves on.
// ok is false when the stream is exhausted — genuinely, or through a
// permanent interface failure (recorded as degradation). err is non-nil
// only when the failure budget aborts the execution.
func pullDoc(st *State, i int, s *Side, strat retrieval.Strategy) (id int, ok, skip bool, err error) {
	pol := s.Retry.resolved()
	for attempt := 0; ; attempt++ {
		id, ok, cost, err := retrieval.Pull(strat)
		st.Time += cost
		if err == nil {
			return id, ok, false, nil
		}
		if attempt < pol.MaxRetries && isTemporary(err) && !st.deadlineExpired() {
			st.RetriesSpent[i]++
			st.Time += pol.backoff(attempt, i, st.RetriesSpent[i])
			st.traceRetry(i, "pull", attempt, err)
			continue
		}
		if isTemporary(err) {
			return 0, false, true, st.failDoc(i, pol)
		}
		// Permanent interface failure: the rest of the stream is out of
		// reach. Treat the side as exhausted, degraded.
		st.Degraded = true
		return 0, false, false, nil
	}
}

// Snapshot is a compact, replayable checkpoint of a join execution: the
// step count plus the accounting needed to verify a replay reached the same
// point. Executors are deterministic (as is fault injection), so replaying
// Steps executor steps from an identically-constructed executor reproduces
// the full state — relations, join result, and all.
type Snapshot struct {
	Steps int
	Time  float64

	// CacheSaved mirrors State.CacheSaved: the per-side extraction time
	// cache hits made free. Time + ΣCacheSaved is invariant under cache
	// warmth, so Restore can verify a replay whose hit/miss pattern differs
	// from the original run's (a resume over a warmer — or colder — cache).
	CacheSaved [2]float64

	GoodPairs int
	BadPairs  int
	JoinSize  int

	DocsProcessed [2]int
	DocsRetrieved [2]int
	DocsFiltered  [2]int
	Queries       [2]int
	DocsFailed    [2]int
	RetriesSpent  [2]int

	Degraded    bool
	DeadlineHit bool
}

// Snapshot captures the execution's current checkpoint.
func (st *State) Snapshot() Snapshot {
	return Snapshot{
		Steps:         st.Steps,
		Time:          st.Time,
		CacheSaved:    st.CacheSaved,
		GoodPairs:     st.GoodPairs,
		BadPairs:      st.BadPairs,
		JoinSize:      st.Result.Size(),
		DocsProcessed: st.DocsProcessed,
		DocsRetrieved: st.DocsRetrieved,
		DocsFiltered:  st.DocsFiltered,
		Queries:       st.Queries,
		DocsFailed:    st.DocsFailed,
		RetriesSpent:  st.RetriesSpent,
		Degraded:      st.Degraded,
		DeadlineHit:   st.DeadlineHit,
	}
}

// Restore verifies that st — typically produced by replaying snap.Steps
// steps of an identically-constructed executor — matches the snapshot, and
// adopts the snapshot's recorded time and cache accounting verbatim
// (replayed float accumulation can differ in the last bits). It returns an
// error describing the first divergence found.
//
// Time itself is not compared directly: a replay may run against a cache
// warmer or colder than the original run saw (the shared cache keeps every
// entry the interrupted prefix put, and a disk tier survives restarts), so
// its hit/miss pattern — and with it the billed Time — can legitimately
// differ. What must match is the warmth-invariant total Time + ΣCacheSaved:
// every other counter, and the extracted tuples themselves, are identical
// regardless of where the extraction bytes came from. Adopting the
// snapshot's Time afterwards makes the resumed run bill exactly what the
// uninterrupted run would have.
func (st *State) Restore(snap Snapshot) error {
	got := st.Snapshot()
	gotInv := got.Time + got.CacheSaved[0] + got.CacheSaved[1]
	snapInv := snap.Time + snap.CacheSaved[0] + snap.CacheSaved[1]
	relTol := math.Abs(snapInv) * 1e-6
	if math.Abs(gotInv-snapInv) > relTol+1e-9 {
		return fmt.Errorf("join: restore diverged: cache-invariant time %.6f != snapshot %.6f", gotInv, snapInv)
	}
	got.Time, got.CacheSaved = snap.Time, snap.CacheSaved
	if got != snap {
		return fmt.Errorf("join: restore diverged: replayed %+v != snapshot %+v", got, snap)
	}
	st.Time = snap.Time
	st.CacheSaved = snap.CacheSaved
	return nil
}

// Replay advances a fresh executor to a snapshot's step count and verifies
// the resulting state matches. The executor must be constructed identically
// to the one that produced the snapshot — same sides, strategies, document
// sources, and fault profile; deterministic execution and deterministic
// fault injection then reproduce the state exactly, including every injected
// failure and retry of the original run.
func Replay(e Executor, snap Snapshot) error {
	for e.State().Steps < snap.Steps {
		before := e.State().Steps
		if _, err := e.Step(); err != nil {
			return fmt.Errorf("join: %s replay step %d: %w", e.Algorithm(), e.State().Steps, err)
		}
		if e.State().Steps == before {
			return fmt.Errorf("join: %s replay stuck at step %d of %d", e.Algorithm(), before, snap.Steps)
		}
	}
	return e.State().Restore(snap)
}
