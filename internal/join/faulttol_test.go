package join

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/retrieval"
)

// tempErr is a scripted substrate failure; the bool is its transience.
type tempErr bool

func (e tempErr) Error() string   { return fmt.Sprintf("stub failure (transient=%v)", bool(e)) }
func (e tempErr) Temporary() bool { return bool(e) }

// stubSource fails according to its script (nil = success), then succeeds.
type stubSource struct {
	script []error
	costs  []float64
	call   int
}

func (s *stubSource) Size() int { return 1 << 20 }

func (s *stubSource) Fetch(id int) (*corpus.Document, float64, error) {
	n := s.call
	s.call++
	var cost float64
	if n < len(s.costs) {
		cost = s.costs[n]
	}
	if n < len(s.script) && s.script[n] != nil {
		return nil, cost, s.script[n]
	}
	return &corpus.Document{ID: id, Text: "stub"}, cost, nil
}

func testSide(src DocSource, pol RetryPolicy) *Side {
	return &Side{Source: src, Retry: pol, Costs: Costs{TR: 1, TE: 5, TF: 0.1, TQ: 2}}
}

// TestFetchDocRetriesTransient is acceptance criterion (a) at the unit
// level: two transient failures are fully recovered by retries, and the
// extra time charged is exactly the injected costs plus the deterministic
// backoff delays plus one retrieval round-trip per retry.
func TestFetchDocRetriesTransient(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
	src := &stubSource{
		script: []error{tempErr(true), tempErr(true), nil},
		costs:  []float64{2.5, 2.5, 0.25},
	}
	s := testSide(src, pol)
	st := newTestState()
	doc, ok, err := fetchDoc(st, 0, s, 7)
	if err != nil || !ok || doc == nil || doc.ID != 7 {
		t.Fatalf("fetchDoc = %v, %v, %v; want recovered document", doc, ok, err)
	}
	if st.RetriesSpent[0] != 2 || st.DocsFailed[0] != 0 || st.Degraded {
		t.Errorf("accounting: retries=%d failed=%d degraded=%v", st.RetriesSpent[0], st.DocsFailed[0], st.Degraded)
	}
	want := 2.5 + 2.5 + 0.25 + // injected per-call costs
		pol.backoff(0, 0, 1) + pol.backoff(1, 0, 2) + // deterministic backoff
		2*s.Costs.TR // each retry re-pays the retrieval round-trip
	if math.Abs(st.Time-want) > 1e-12 {
		t.Errorf("Time = %v, want %v", st.Time, want)
	}
}

func TestFetchDocExhaustsRetries(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 2, BaseDelay: 1, MaxDelay: 8}
	src := &stubSource{script: []error{tempErr(true), tempErr(true), tempErr(true), tempErr(true)}}
	s := testSide(src, pol)
	st := newTestState()
	doc, ok, err := fetchDoc(st, 1, s, 0)
	if err != nil || ok || doc != nil {
		t.Fatalf("fetchDoc = %v, %v, %v; want accounted skip", doc, ok, err)
	}
	if st.DocsFailed[1] != 1 || st.RetriesSpent[1] != 2 || !st.Degraded {
		t.Errorf("accounting: failed=%d retries=%d degraded=%v", st.DocsFailed[1], st.RetriesSpent[1], st.Degraded)
	}
	if src.call != 3 { // 1 attempt + 2 retries
		t.Errorf("source called %d times, want 3", src.call)
	}
}

func TestFetchDocPermanentNoRetry(t *testing.T) {
	src := &stubSource{script: []error{tempErr(false)}}
	s := testSide(src, RetryPolicy{})
	st := newTestState()
	_, ok, err := fetchDoc(st, 0, s, 0)
	if err != nil || ok {
		t.Fatalf("fetchDoc ok=%v err=%v; want accounted skip", ok, err)
	}
	if src.call != 1 || st.RetriesSpent[0] != 0 {
		t.Errorf("permanent failure must not be retried: calls=%d retries=%d", src.call, st.RetriesSpent[0])
	}
}

func TestFetchDocFailureBudget(t *testing.T) {
	pol := RetryPolicy{MaxRetries: -1, FailureBudget: 1}
	src := &stubSource{script: []error{tempErr(true), tempErr(true)}}
	s := testSide(src, pol)
	st := newTestState()
	if _, _, err := fetchDoc(st, 0, s, 0); err != nil {
		t.Fatalf("first loss within budget, got %v", err)
	}
	_, _, err := fetchDoc(st, 0, s, 1)
	if !errors.Is(err, ErrFailureBudget) {
		t.Fatalf("second loss must abort with ErrFailureBudget, got %v", err)
	}
	if st.DocsFailed[0] != 2 {
		t.Errorf("DocsFailed = %d, want 2", st.DocsFailed[0])
	}
}

func TestFetchDocDeadlineStopsRetries(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 5, BaseDelay: 1, MaxDelay: 8}
	src := &stubSource{script: []error{tempErr(true), tempErr(true), tempErr(true)}}
	s := testSide(src, pol)
	st := newTestState()
	st.Deadline = 100
	st.Time = 100 // already at the deadline: no retry may be charged
	_, ok, err := fetchDoc(st, 0, s, 0)
	if err != nil || ok {
		t.Fatalf("fetchDoc ok=%v err=%v; want skip at deadline", ok, err)
	}
	if src.call != 1 || !st.DeadlineHit {
		t.Errorf("retrying past the deadline: calls=%d deadlineHit=%v", src.call, st.DeadlineHit)
	}
}

// stubStrategy scripts NextFallible errors; successes stream 0, 1, 2, …
type stubStrategy struct {
	script []error
	call   int
	id     int
}

func (s *stubStrategy) Next() (int, bool)        { id := s.id; s.id++; return id, true }
func (s *stubStrategy) Kind() retrieval.Kind     { return retrieval.SC }
func (s *stubStrategy) Counts() retrieval.Counts { return retrieval.Counts{} }
func (s *stubStrategy) NextFallible() (int, bool, float64, error) {
	n := s.call
	s.call++
	if n < len(s.script) && s.script[n] != nil {
		return 0, false, 0.5, s.script[n]
	}
	id := s.id
	s.id++
	return id, true, 0, nil
}

func TestPullDocRetriesWithoutSkipping(t *testing.T) {
	strat := &stubStrategy{script: []error{tempErr(true), nil, tempErr(true), tempErr(true), nil}}
	s := testSide(nil, RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8})
	st := newTestState()
	var got []int
	for len(got) < 2 {
		id, ok, skip, err := pullDoc(st, 0, s, strat)
		if err != nil || skip || !ok {
			t.Fatalf("pullDoc = %d, %v, %v, %v", id, ok, skip, err)
		}
		got = append(got, id)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("pulled %v; retried pulls must not skip stream positions", got)
	}
	if st.RetriesSpent[0] != 3 {
		t.Errorf("RetriesSpent = %d, want 3", st.RetriesSpent[0])
	}
}

func TestPullDocTransientExhaustionSkips(t *testing.T) {
	strat := &stubStrategy{script: []error{tempErr(true), tempErr(true)}}
	s := testSide(nil, RetryPolicy{MaxRetries: 1, BaseDelay: 1, MaxDelay: 8})
	st := newTestState()
	_, ok, skip, err := pullDoc(st, 1, s, strat)
	if err != nil || ok || !skip {
		t.Fatalf("pullDoc ok=%v skip=%v err=%v; want skip", ok, skip, err)
	}
	if st.DocsFailed[1] != 1 || !st.Degraded {
		t.Errorf("skip must be accounted: failed=%d degraded=%v", st.DocsFailed[1], st.Degraded)
	}
	// The stream survives: the next pull succeeds from position 0.
	id, ok, skip, err := pullDoc(st, 1, s, strat)
	if err != nil || !ok || skip || id != 0 {
		t.Fatalf("stream died after skip: id=%d ok=%v skip=%v err=%v", id, ok, skip, err)
	}
}

func TestPullDocPermanentExhaustsStream(t *testing.T) {
	strat := &stubStrategy{script: []error{tempErr(false)}}
	s := testSide(nil, RetryPolicy{})
	st := newTestState()
	_, ok, skip, err := pullDoc(st, 0, s, strat)
	if err != nil || ok || skip {
		t.Fatalf("pullDoc ok=%v skip=%v err=%v; want exhausted stream", ok, skip, err)
	}
	if !st.Degraded {
		t.Error("permanent stream failure must mark the execution degraded")
	}
	if st.DocsFailed[0] != 0 {
		t.Errorf("stream death is not a per-document loss, got DocsFailed=%d", st.DocsFailed[0])
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	pol := RetryPolicy{}.resolved()
	for attempt := 0; attempt < 6; attempt++ {
		for spent := 1; spent < 20; spent++ {
			a := pol.backoff(attempt, 0, spent)
			if b := pol.backoff(attempt, 0, spent); a != b {
				t.Fatalf("backoff not deterministic: %v != %v", a, b)
			}
			base := math.Min(pol.BaseDelay*math.Pow(2, float64(attempt)), pol.MaxDelay)
			if a < base*0.5 || a >= base*1.5 {
				t.Fatalf("backoff(%d, 0, %d) = %v outside jitter range of %v", attempt, spent, a, base)
			}
			if other := pol.backoff(attempt, 1, spent); other == a {
				t.Fatalf("sides share jitter at attempt=%d spent=%d", attempt, spent)
			}
		}
	}
}

func TestRetryPolicyResolved(t *testing.T) {
	r := RetryPolicy{}.resolved()
	if r != DefaultRetry {
		t.Errorf("zero policy resolved to %+v, want DefaultRetry", r)
	}
	if got := (RetryPolicy{MaxRetries: -1}).resolved().MaxRetries; got != 0 {
		t.Errorf("negative MaxRetries resolved to %d, want 0 (disabled)", got)
	}
}

func TestIsTemporary(t *testing.T) {
	if !isTemporary(errors.New("plain")) {
		t.Error("unknown errors must default to transient")
	}
	if isTemporary(tempErr(false)) {
		t.Error("permanent errors must not be retried")
	}
	if !isTemporary(fmt.Errorf("wrapped: %w", tempErr(true))) {
		t.Error("transience must unwrap through %w chains")
	}
}

func TestSnapshotRestore(t *testing.T) {
	st := newTestState()
	st.Steps = 42
	st.Time = 1234.5
	st.DocsProcessed = [2]int{10, 12}
	st.DocsFailed = [2]int{1, 0}
	st.Degraded = true
	snap := st.Snapshot()

	replayed := newTestState()
	replayed.Steps = 42
	replayed.Time = 1234.5 * (1 + 1e-9) // float accumulation noise is fine
	replayed.DocsProcessed = [2]int{10, 12}
	replayed.DocsFailed = [2]int{1, 0}
	replayed.Degraded = true
	if err := replayed.Restore(snap); err != nil {
		t.Fatalf("Restore of matching state failed: %v", err)
	}
	if replayed.Time != snap.Time {
		t.Errorf("Restore must adopt the snapshot time, got %v", replayed.Time)
	}

	diverged := newTestState()
	diverged.Steps = 42
	diverged.Time = 1234.5
	diverged.DocsProcessed = [2]int{11, 12}
	if err := diverged.Restore(snap); err == nil {
		t.Error("Restore must reject a diverged state")
	}
	late := newTestState()
	late.Steps = 42
	late.Time = 2000
	if err := late.Restore(snap); err == nil {
		t.Error("Restore must reject a diverged time")
	}
}
