package join_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var (
	pipeWlOnce sync.Once
	pipeWl     *workload.Workload
	pipeWlErr  error
)

// pipeWorkload is a dedicated workload for the pipeline property tests: they
// mutate Faults, Trace, ExecWorkers, and ExtractCache, so they must not
// share the package-wide one.
func pipeWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	pipeWlOnce.Do(func() {
		pipeWl, pipeWlErr = workload.HQJoinEX(workload.Params{NumDocs: 600, Seed: 9})
	})
	if pipeWlErr != nil {
		t.Fatal(pipeWlErr)
	}
	return pipeWl
}

// pipelinePlans is the executor matrix the identity property runs over: all
// three algorithms, including the peeking strategies (FS classifies ahead,
// AQG reveals its buffer).
var pipelinePlans = []optimizer.PlanSpec{
	{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4}, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}},
	{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.8}, X: [2]retrieval.Kind{retrieval.FS, retrieval.AQG}},
	{JN: optimizer.OIJN, Theta: [2]float64{0.4, 0.4}, X: [2]retrieval.Kind{retrieval.SC, ""}},
	{JN: optimizer.ZGJN, Theta: [2]float64{0.4, 0.4}},
}

// runPipelined executes spec over w (repeats times, back to back) at the
// given worker count and cache capacity, returning the concatenated NDJSON
// trace and the final run's snapshot. Repeated executions share the run's
// cache, so the second execution exercises the hit path end to end.
func runPipelined(t *testing.T, w *workload.Workload, spec optimizer.PlanSpec, workers int, cacheBytes int64, repeats int) ([]byte, join.Snapshot) {
	t.Helper()
	w.ExecWorkers = workers
	w.ExtractCache = pipeline.NewCache(cacheBytes)
	var buf bytes.Buffer
	sink := obs.NewNDJSON(&buf)
	w.Trace = obs.New(sink)
	defer func() {
		w.ExecWorkers = 0
		w.ExtractCache = nil
		w.Trace = nil
	}()
	var last join.Snapshot
	for r := 0; r < repeats; r++ {
		exec, err := w.NewExecutor(spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.Run(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = st.Snapshot()
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), last
}

func firstTraceDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\nbase %s\n got %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: base %d lines, got %d", len(al), len(bl))
}

// TestPipelineBitIdenticalTraces is the engine's core property: under seeded
// fault injection, every worker count produces the byte-identical NDJSON
// trace and final snapshot as the sequential execution — speculation moves
// extraction onto workers but never changes what an execution does, charges,
// or emits.
func TestPipelineBitIdenticalTraces(t *testing.T) {
	w := pipeWorkload(t)
	p, err := faults.Parse("rate=0.05,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = p
	w.Retry = join.RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
	defer func() { w.Faults = nil; w.Retry = join.RetryPolicy{} }()

	for _, spec := range pipelinePlans {
		baseTrace, baseSnap := runPipelined(t, w, spec, 0, 0, 1)
		for _, n := range []int{1, 2, 4, 8} {
			trace, snap := runPipelined(t, w, spec, n, 0, 1)
			if snap != baseSnap {
				t.Errorf("%s workers=%d: snapshot diverged\nbase %+v\n got %+v", spec, n, baseSnap, snap)
			}
			if !bytes.Equal(trace, baseTrace) {
				t.Errorf("%s workers=%d: trace diverged at %s", spec, n, firstTraceDiff(baseTrace, trace))
			}
		}
	}
}

// TestPipelineBitIdenticalWithCache repeats the identity property with the
// shared extraction cache attached and each plan executed twice per run, so
// the second execution is served from the cache: hit accounting, the free
// re-extractions, and the "cached" trace attribute must all be independent
// of the worker count too.
func TestPipelineBitIdenticalWithCache(t *testing.T) {
	w := pipeWorkload(t)
	p, err := faults.Parse("rate=0.05,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = p
	w.Retry = join.RetryPolicy{MaxRetries: 3, BaseDelay: 1, MaxDelay: 8}
	defer func() { w.Faults = nil; w.Retry = join.RetryPolicy{} }()

	const cacheBytes = 1 << 22
	for _, spec := range pipelinePlans {
		baseTrace, baseSnap := runPipelined(t, w, spec, 0, cacheBytes, 2)
		if !bytes.Contains(baseTrace, []byte(`"cached":true`)) {
			t.Errorf("%s: no cached re-extractions in a repeated run's trace", spec)
		}
		for _, n := range []int{1, 2, 4, 8} {
			trace, snap := runPipelined(t, w, spec, n, cacheBytes, 2)
			if snap != baseSnap {
				t.Errorf("%s workers=%d cached: snapshot diverged\nbase %+v\n got %+v", spec, n, baseSnap, snap)
			}
			if !bytes.Equal(trace, baseTrace) {
				t.Errorf("%s workers=%d cached: trace diverged at %s", spec, n, firstTraceDiff(baseTrace, trace))
			}
		}
	}
}

// TestCacheMakesRerunExtractionFree pins the cost-model contract: re-running
// a plan against a warm cache charges zero extraction time for every cached
// document, and the tuples are identical.
func TestCacheMakesRerunExtractionFree(t *testing.T) {
	w := pipeWorkload(t)
	spec := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4}, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	w.ExtractCache = pipeline.NewCache(1 << 22)
	defer func() { w.ExtractCache = nil }()

	run := func() *join.State {
		exec, err := w.NewExecutor(spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := join.Run(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cold := run()
	warm := run()
	cg, cb := cold.Result.Counts()
	wg, wb := warm.Result.Counts()
	if cg != wg || cb != wb {
		t.Fatalf("warm run output (%d,%d) != cold (%d,%d)", wg, wb, cg, cb)
	}
	if warm.DocsProcessed != cold.DocsProcessed {
		t.Fatalf("warm run processed %v docs, cold %v", warm.DocsProcessed, cold.DocsProcessed)
	}
	processed := float64(cold.DocsProcessed[0] + cold.DocsProcessed[1])
	wantSaved := processed * join.DefaultCosts.TE
	if saved := cold.Time - warm.Time; saved != wantSaved {
		t.Fatalf("warm run saved %v model time, want exactly %v (tE × %v docs)", saved, wantSaved, processed)
	}
}
