package join

import (
	"fmt"

	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
)

// N-ary join execution — the paper's stated future work (§III-C restricts
// the analysis to binary joins). MultiIDJN generalizes the Independent Join
// to n relations joined on the shared attribute: each side extracts
// independently under its own retrieval strategy, and the output
// composition generalizes Equation 1 to per-value products across all
// sides: |Tgood⋈| = Σ_a Π_i gr_i(a).

// MultiState is the observable progress of an n-ary join execution.
type MultiState struct {
	Rels []*relation.Extracted

	// GoodTuples is Σ_a Π_i gr_i(a); BadTuples the complement of the total
	// per-value occurrence product.
	GoodTuples int
	BadTuples  int

	DocsProcessed []int
	DocsRetrieved []int
	DocsFiltered  []int
	Queries       []int
	Time          float64

	totalTuples int
	golds       []*relation.Gold
}

// addTuple records one occurrence on side i and updates the n-way product
// counters incrementally: adding one good occurrence of value a on side i
// raises the good product by Π_{j≠i} gr_j(a) and the total product by
// Π_{j≠i} (gr_j(a) + br_j(a)).
func (st *MultiState) addTuple(i int, t relation.Tuple) {
	a := t.A1
	deltaGood, deltaTotal := 1, 1
	for j := range st.Rels {
		if j == i {
			continue
		}
		g := st.Rels[j].GoodOcc(a)
		deltaGood *= g
		deltaTotal *= g + st.Rels[j].BadOcc(a)
		if deltaTotal == 0 {
			break
		}
	}
	good := st.Rels[i].Add(t)
	st.totalTuples += deltaTotal
	if good {
		st.GoodTuples += deltaGood
	}
	st.BadTuples = st.totalTuples - st.GoodTuples
}

// MultiIDJN is the n-ary Independent Join executor.
type MultiIDJN struct {
	sides []*Side
	strat []retrieval.Strategy
	prev  []retrieval.Counts
	done  []bool
	st    *MultiState
}

// NewMultiIDJN builds an n-ary Independent Join over sides with one
// retrieval strategy per side. At least two sides are required.
func NewMultiIDJN(sides []*Side, strats []retrieval.Strategy) (*MultiIDJN, error) {
	if len(sides) < 2 {
		return nil, fmt.Errorf("join: multi-way join needs at least 2 sides, got %d", len(sides))
	}
	if len(strats) != len(sides) {
		return nil, fmt.Errorf("join: %d sides but %d strategies", len(sides), len(strats))
	}
	st := &MultiState{
		Rels:          make([]*relation.Extracted, len(sides)),
		DocsProcessed: make([]int, len(sides)),
		DocsRetrieved: make([]int, len(sides)),
		DocsFiltered:  make([]int, len(sides)),
		Queries:       make([]int, len(sides)),
		golds:         make([]*relation.Gold, len(sides)),
	}
	for i, s := range sides {
		if err := s.validate(i + 1); err != nil {
			return nil, err
		}
		if strats[i] == nil {
			return nil, fmt.Errorf("join: side %d missing strategy", i+1)
		}
		schema := relation.Schema{Name: fmt.Sprintf("R%d", i+1)}
		if s.Gold != nil {
			schema = s.Gold.Schema
		}
		st.Rels[i] = relation.NewExtracted(schema, s.Gold)
		st.golds[i] = s.Gold
	}
	return &MultiIDJN{
		sides: sides,
		strat: strats,
		prev:  make([]retrieval.Counts, len(sides)),
		done:  make([]bool, len(sides)),
		st:    st,
	}, nil
}

// State returns the live n-ary execution state.
func (e *MultiIDJN) State() *MultiState { return e.st }

// Algorithm names the executor.
func (e *MultiIDJN) Algorithm() string { return fmt.Sprintf("IDJN-%dway", len(e.sides)) }

// Step retrieves and processes one document from every non-exhausted side
// (the square traversal of the n-dimensional document grid). It returns
// false once every strategy is exhausted.
func (e *MultiIDJN) Step() (bool, error) {
	any := false
	for i := range e.sides {
		if e.done[i] {
			continue
		}
		id, ok := e.strat[i].Next()
		now := e.strat[i].Counts()
		e.charge(i, e.prev[i], now)
		e.prev[i] = now
		if !ok {
			e.done[i] = true
			continue
		}
		any = true
		doc := e.sides[i].DB.Doc(id)
		tuples := e.sides[i].System.Extract(doc.Text, e.sides[i].Theta)
		e.st.DocsProcessed[i]++
		e.st.Time += e.sides[i].Costs.TE
		for _, t := range tuples {
			e.st.addTuple(i, t)
		}
	}
	return any, nil
}

func (e *MultiIDJN) charge(i int, prev, now retrieval.Counts) {
	c := e.sides[i].Costs
	dRetr := now.Retrieved - prev.Retrieved
	dFilt := now.Filtered - prev.Filtered
	dQ := now.Queries - prev.Queries
	e.st.DocsRetrieved[i] += dRetr
	e.st.DocsFiltered[i] += dFilt
	e.st.Queries[i] += dQ
	e.st.Time += float64(dRetr)*c.TR + float64(dFilt)*c.TF + float64(dQ)*c.TQ
}

// RunMulti advances the executor until exhaustion or stop returns true.
func RunMulti(e *MultiIDJN, stop func(*MultiState) bool) (*MultiState, error) {
	for {
		ok, err := e.Step()
		if err != nil {
			return e.st, err
		}
		if !ok {
			return e.st, nil
		}
		if stop != nil && stop(e.st) {
			return e.st, nil
		}
	}
}
