package join

import (
	"fmt"

	"joinopt/internal/obs"
	"joinopt/internal/retrieval"
)

// IDJN is the Independent Join (§IV-A): the two relations are extracted
// independently — each with its own document retrieval strategy — and joined
// as documents arrive, ripple-join style. The traversal of D1 × D2 is
// "square" by default (one document from each database per step) or
// "rectangle" with configurable per-side rates.
type IDJN struct {
	sides [2]*Side
	strat [2]retrieval.Strategy
	prev  [2]retrieval.Counts

	// rates are documents pulled per step for each side; fractional rates
	// accumulate (e.g. 0.5 pulls a document every other step).
	rates [2]float64
	acc   [2]float64

	// ahead counts the already-announced prefix of each side's peek list, so
	// the per-step announce pass touches only newly exposed documents. Each
	// successful pull consumes the head of the peek list and shifts the
	// prefix down by one.
	ahead [2]int

	done [2]bool
	st   *State
}

// NewIDJN builds an Independent Join over two sides with their retrieval
// strategies. Rates default to the square traversal (1, 1).
func NewIDJN(s1, s2 *Side, x1, x2 retrieval.Strategy) (*IDJN, error) {
	if err := s1.validate(1); err != nil {
		return nil, err
	}
	if err := s2.validate(2); err != nil {
		return nil, err
	}
	if x1 == nil || x2 == nil {
		return nil, fmt.Errorf("join: IDJN needs a retrieval strategy for both sides")
	}
	e := &IDJN{
		sides: [2]*Side{s1, s2},
		strat: [2]retrieval.Strategy{x1, x2},
		rates: [2]float64{1, 1},
	}
	e.st = newState(s1, s2)
	return e, nil
}

// SetRates switches to a rectangle traversal pulling r1 and r2 documents per
// step from the respective databases. Rates must be positive.
func (e *IDJN) SetRates(r1, r2 float64) error {
	if r1 <= 0 || r2 <= 0 {
		return fmt.Errorf("join: IDJN rates must be positive, got %v, %v", r1, r2)
	}
	e.rates = [2]float64{r1, r2}
	return nil
}

// Algorithm implements Executor.
func (e *IDJN) Algorithm() string { return "IDJN" }

// State implements Executor.
func (e *IDJN) State() *State { return e.st }

// announce feeds the pipeline engine the documents each retrieval stream
// will hand out next (peeked without advancing the streams), so workers can
// extract ahead of the consumer. The peek lists are prefix-stable, so only
// the tail past the ahead cursor is new; a window-full refusal ends the pass
// (nothing after it would be accepted either) and the cursor retries the
// refused document on a later step.
func (e *IDJN) announce() {
	n := e.st.pipelineLookahead()
	if n == 0 {
		return
	}
	for i := 0; i < 2; i++ {
		if e.done[i] {
			continue
		}
		peek := retrieval.PeekAhead(e.strat[i], n)
		if e.ahead[i] > len(peek) {
			e.ahead[i] = len(peek)
		}
		for e.ahead[i] < len(peek) {
			if !e.st.announce(i, e.sides[i], peek[e.ahead[i]]) {
				break
			}
			e.ahead[i]++
		}
	}
}

// Step retrieves and processes the next document(s) from each database at
// the configured rates. It returns false once both strategies are exhausted.
func (e *IDJN) Step() (bool, error) {
	e.st.Steps++
	if e.done[0] && e.done[1] {
		return false, nil
	}
	e.announce()
	for i := 0; i < 2; i++ {
		if e.done[i] {
			continue
		}
		e.acc[i] += e.rates[i]
		for e.acc[i] >= 1 {
			e.acc[i]--
			id, ok, skip, err := pullDoc(e.st, i, e.sides[i], e.strat[i])
			now := e.strat[i].Counts()
			e.st.chargeStrategy(i, e.sides[i].Costs, e.prev[i], now)
			e.prev[i] = now
			if err != nil {
				return false, err
			}
			if ok && e.ahead[i] > 0 {
				// The pull consumed the head of the peek list.
				e.ahead[i]--
			}
			if skip {
				continue
			}
			if !ok {
				e.done[i] = true
				if e.st.Trace.Enabled() {
					e.st.Trace.EmitAt(e.st.Time, obs.KindSideExhausted, i+1,
						map[string]any{"alg": "IDJN", "docs": e.st.DocsProcessed[i]})
				}
				break
			}
			if _, err := processDoc(e.st, i, e.sides[i], id); err != nil {
				return false, err
			}
		}
	}
	return !(e.done[0] && e.done[1]), nil
}
