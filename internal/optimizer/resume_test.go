package optimizer_test

import (
	"context"
	"errors"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/optimizer"
)

// stepCounter wraps an executor to count steps across a whole adaptive run
// (pilot included) and to cancel a context at a chosen step, simulating an
// interruption at an arbitrary point of the protocol.
type stepCounter struct {
	join.Executor
	n      *int
	limit  int
	cancel context.CancelFunc
}

func (c stepCounter) Step() (bool, error) {
	*c.n++
	if c.limit > 0 && *c.n == c.limit {
		c.cancel()
	}
	return c.Executor.Step()
}

// countingEnv derives an environment whose executors all report their steps
// into n; with a positive limit, step number limit cancels ctx.
func countingEnv(base *optimizer.Env, n *int, limit int, cancel context.CancelFunc) *optimizer.Env {
	env := *base
	inner := base.NewExecutor
	env.NewExecutor = func(p optimizer.PlanSpec) (join.Executor, error) {
		e, err := inner(p)
		if err != nil {
			return nil, err
		}
		return stepCounter{Executor: e, n: n, limit: limit, cancel: cancel}, nil
	}
	return &env
}

// TestResumeAdaptiveMatchesUninterrupted is acceptance criterion (c): an
// adaptive run interrupted at an arbitrary step and resumed from its
// checkpoint produces exactly the state, decisions, and billed time of the
// uninterrupted run (at zero fault rate).
func TestResumeAdaptiveMatchesUninterrupted(t *testing.T) {
	w, _ := testSetup(t)
	env, err := w.NewEnv(thetas)
	if err != nil {
		t.Fatal(err)
	}
	req := optimizer.Requirement{TauG: 16, TauB: 400}
	opts := optimizer.Options{}

	// Uninterrupted baseline, counting the run's total executor steps.
	total := 0
	base, err := optimizer.RunAdaptive(countingEnv(env, &total, 0, nil), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("step counter not engaged")
	}

	for _, frac := range []float64{0.3, 0.6, 0.95} {
		limit := int(frac * float64(total))
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		res, err := optimizer.RunAdaptiveCtx(ctx, countingEnv(env, &n, limit, cancel), req, opts)
		cancel()
		if err == nil {
			// The cancellation landed between the last context check and
			// completion; nothing to resume, but the result must match.
			compareRuns(t, frac, base, res)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupt at %.0f%%: err = %v, want context.Canceled", frac*100, err)
		}
		if res == nil || res.Checkpoint == nil {
			t.Fatalf("interrupt at %.0f%%: no checkpoint on cancelled run", frac*100)
		}
		t.Logf("interrupted at step %d/%d in phase %d", limit, total, res.Checkpoint.Phase)

		resumed, err := optimizer.ResumeAdaptive(env, req, opts, res.Checkpoint)
		if err != nil {
			t.Fatalf("resume from %.0f%%: %v", frac*100, err)
		}
		compareRuns(t, frac, base, resumed)
	}
}

// compareRuns requires exact agreement between the uninterrupted baseline
// and a resumed (or late-cancelled) run: final execution state, billed time,
// and the full decision log.
func compareRuns(t *testing.T, frac float64, base, got *optimizer.Result) {
	t.Helper()
	if got.Final == nil {
		t.Fatalf("interrupt at %.0f%%: run did not complete", frac*100)
	}
	if bs, gs := base.Final.Snapshot(), got.Final.Snapshot(); bs != gs {
		t.Errorf("interrupt at %.0f%%: final state diverged:\nbaseline %+v\nresumed  %+v", frac*100, bs, gs)
	}
	if base.TotalTime != got.TotalTime {
		t.Errorf("interrupt at %.0f%%: TotalTime %v != baseline %v", frac*100, got.TotalTime, base.TotalTime)
	}
	if len(base.Decisions) != len(got.Decisions) {
		t.Fatalf("interrupt at %.0f%%: %d decisions != baseline %d", frac*100, len(got.Decisions), len(base.Decisions))
	}
	for i := range base.Decisions {
		b, g := base.Decisions[i], got.Decisions[i]
		if b.Chosen.Plan != g.Chosen.Plan || b.AtTime != g.AtTime || b.Switched != g.Switched {
			t.Errorf("interrupt at %.0f%%: decision %d diverged: %s@%v vs baseline %s@%v",
				frac*100, i, g.Chosen.Plan, g.AtTime, b.Chosen.Plan, b.AtTime)
		}
	}
	if len(base.CheckpointErrs) != len(got.CheckpointErrs) {
		t.Errorf("interrupt at %.0f%%: %d checkpoint errors != baseline %d",
			frac*100, len(got.CheckpointErrs), len(base.CheckpointErrs))
	}
}

// TestResumeAdaptiveRejectsBadCheckpoint pins the resume API's input
// validation.
func TestResumeAdaptiveRejectsBadCheckpoint(t *testing.T) {
	w, _ := testSetup(t)
	env, err := w.NewEnv(thetas)
	if err != nil {
		t.Fatal(err)
	}
	req := optimizer.Requirement{TauG: 1, TauB: 100}
	if _, err := optimizer.ResumeAdaptive(env, req, optimizer.Options{}, nil); err == nil {
		t.Error("nil checkpoint must be rejected")
	}
	if _, err := optimizer.ResumeAdaptive(env, req, optimizer.Options{}, &optimizer.Checkpoint{}); err == nil {
		t.Error("checkpoint without estimates must be rejected")
	}
}
