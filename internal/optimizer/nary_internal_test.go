package optimizer

import (
	"math"
	"math/bits"
	"testing"

	"joinopt/internal/model"
	"joinopt/internal/querygraph"
	"joinopt/internal/relation"
)

// table2Reqs mirrors experiments.Table2Reqs (the experiments package imports
// the optimizer, so the sweep is restated here rather than imported).
var table2Reqs = []Requirement{
	{TauG: 1, TauB: 20},
	{TauG: 2, TauB: 30}, {TauG: 2, TauB: 50},
	{TauG: 4, TauB: 20}, {TauG: 4, TauB: 40},
	{TauG: 8, TauB: 40}, {TauG: 8, TauB: 80},
	{TauG: 16, TauB: 50}, {TauG: 16, TauB: 80}, {TauG: 16, TauB: 160},
	{TauG: 32, TauB: 84}, {TauG: 32, TauB: 160}, {TauG: 32, TauB: 320},
	{TauG: 64, TauB: 320}, {TauG: 64, TauB: 640},
	{TauG: 128, TauB: 640}, {TauG: 128, TauB: 1280},
	{TauG: 256, TauB: 1280}, {TauG: 256, TauB: 2560},
	{TauG: 512, TauB: 1024}, {TauG: 512, TauB: 2560}, {TauG: 512, TauB: 5120},
	{TauG: 1024, TauB: 5120}, {TauG: 1024, TauB: 10240},
}

// TestChooseNaryBinaryParityTableII pins the k=2 contract: with Binary
// inputs attached, ChooseNary's choice on a Table II-style requirement
// sweep is bit-for-bit the legacy binary optimizer's — same plan, efforts,
// quality, and predicted time (or the same no-feasible-plan failure).
func TestChooseNaryBinaryParityTableII(t *testing.T) {
	in := syntheticInputs()
	g, err := querygraph.Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	plans := Enumerate(in.Thetas)
	for _, req := range table2Reqs {
		legacy, _, lerr := Choose(plans, in, req)
		nary, _, nerr := ChooseNary(g, &NaryInputs{Binary: in}, req)
		if (lerr == nil) != (nerr == nil) {
			t.Fatalf("τg=%d τb=%d: legacy err=%v, n-ary err=%v", req.TauG, req.TauB, lerr, nerr)
		}
		if lerr != nil {
			continue
		}
		if nary.Binary == nil {
			t.Fatalf("τg=%d τb=%d: k=2 choice did not delegate to the binary optimizer", req.TauG, req.TauB)
		}
		if *nary.Binary != legacy {
			t.Errorf("τg=%d τb=%d: binary eval diverged:\n n-ary: %+v\nlegacy: %+v", req.TauG, req.TauB, *nary.Binary, legacy)
		}
		if nary.Time != legacy.Time || nary.Quality != legacy.Quality {
			t.Errorf("τg=%d τb=%d: wrapped time/quality diverged", req.TauG, req.TauB)
		}
		for i := 0; i < 2; i++ {
			l := nary.Leaves[i]
			if l.Theta != legacy.Plan.Theta[i] || l.X != legacy.Plan.X[i] || l.Effort != legacy.Effort[i] {
				t.Errorf("τg=%d τb=%d: leaf %d diverged: %+v vs plan %s effort %v",
					req.TauG, req.TauB, i, l, legacy.Plan, legacy.Effort)
			}
		}
	}
}

// synthClasses builds a deterministic synthetic Classes callback: counts
// depend only on (subset, mask), so the DP and the brute force see the same
// cardinalities.
func synthClasses(n int) func(uint64) map[relation.ClassMask]int {
	return func(subset uint64) map[relation.ClassMask]int {
		k := bits.OnesCount64(subset)
		out := map[relation.ClassMask]int{}
		for m := relation.ClassMask(0); m < 1<<k; m++ {
			// All-good classes are populated most, mixed classes less; vary
			// by subset so different tree shapes price differently.
			out[m] = 3 + int(m) + bits.OnesCount64(subset*2654435761)%7
		}
		return out
	}
}

// synthNaryInputs builds a k-relation synthetic input set with SC/FS/AQG
// all available (the per-side configuration space is 2 θ × 3 kinds).
func synthNaryInputs(k int, tj float64) *NaryInputs {
	mk := func(tp, fp float64, d int) *model.RelationParams {
		return &model.RelationParams{
			D: d, Dg: d * 3 / 10, Db: d / 5, Ag: 60, Ab: 30,
			GoodFreq:      []float64{0.5, 0.3, 0.2},
			BadFreq:       []float64{0.7, 0.3},
			TP:            tp,
			FP:            fp,
			BadInGoodFrac: 0.3,
			Ctp:           0.9,
			Cfp:           0.2,
			AQG: []model.QueryParam{
				{Hits: 40, GoodHits: 25, BadHits: 5},
				{Hits: 30, GoodHits: 15, BadHits: 5},
				{Hits: 25, GoodHits: 10, BadHits: 5},
			},
		}
	}
	in := &NaryInputs{
		Thetas:  []float64{0.4, 0.8},
		Classes: synthClasses(k),
		TJ:      tj,
		Workers: 1,
	}
	for i := 0; i < k; i++ {
		d := 400 + 60*i // asymmetric sides so tree shape matters
		in.P = append(in.P, []*model.RelationParams{mk(0.85, 0.12, d), mk(0.6, 0.04, d)})
		in.Costs = append(in.Costs, model.Costs{TR: 1, TE: 2, TF: 0.1, TQ: 0.5})
	}
	return in
}

// allBushyTrees enumerates every bushy, cross-product-free join tree over
// the connected set s (brute force, mirror duplicates suppressed by
// anchoring the lowest bit in the left subtree).
func allBushyTrees(g *querygraph.Graph, s uint64) []*NaryNode {
	if bits.OnesCount64(s) == 1 {
		return []*NaryNode{{Set: s, Rel: bits.TrailingZeros64(s)}}
	}
	var out []*NaryNode
	low := s & (-s)
	// Iterate subsets s1 of s containing the lowest bit.
	rest := s &^ low
	for sub := uint64(0); ; sub = (sub - rest) & rest {
		s1 := low | sub
		s2 := s &^ s1
		if s2 != 0 && g.ConnectedMask(s1) && g.ConnectedMask(s2) && g.Neighbors(s1)&s2 != 0 {
			for _, l := range allBushyTrees(g, s1) {
				for _, r := range allBushyTrees(g, s2) {
					out = append(out, &NaryNode{Set: s, Rel: -1, Left: l, Right: r})
				}
			}
		}
		if sub == rest {
			break
		}
	}
	return out
}

func treeMergeTuples(t *NaryNode, card func(uint64) float64) float64 {
	var total float64
	for _, s := range t.InternalSets() {
		total += card(s)
	}
	return total
}

// TestDPTreeOptimalByBruteForce is the exhaustiveness property: for k ≤ 4
// on several graph shapes, the DP's chosen tree cost must match the minimum
// over ALL bushy trees enumerated by brute force — the DP neither misses a
// cheaper tree nor invents an invalid one.
func TestDPTreeOptimalByBruteForce(t *testing.T) {
	shapes := []struct {
		name  string
		n     int
		joins [][2]int
	}{
		{"chain3", 3, [][2]int{{0, 1}, {1, 2}}},
		{"chain4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{"star4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}}},
		{"cycle4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
		{"clique4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
	}
	for _, sh := range shapes {
		g, err := querygraph.New(sh.n, sh.joins)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		in := synthNaryInputs(sh.n, 0.05)
		req := Requirement{TauG: 10, TauB: 1 << 30}
		best, evals, err := ChooseNary(g, in, req)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		if !best.Feasible || best.Tree == nil {
			t.Fatalf("%s: no feasible plan", sh.name)
		}
		// Rebuild the cardinality function at the chosen leaf efforts and
		// compare the DP tree against every bushy tree.
		occ := make([]sideOcc, sh.n)
		for i, l := range best.Leaves {
			p := in.P[l.Rel][thetaIndex(in.Thetas, l.Theta)]
			if occ[i], err = occAt(p, l.X, l.Effort); err != nil {
				t.Fatal(err)
			}
		}
		card := func(set uint64) float64 {
			return subsetCard(in.subsetClasses(set), querygraph.Bits(set), occ)
		}
		trees := allBushyTrees(g, g.All())
		if len(trees) == 0 {
			t.Fatalf("%s: brute force found no trees", sh.name)
		}
		bruteMin := math.Inf(1)
		for _, tr := range trees {
			if c := treeMergeTuples(tr, card); c < bruteMin {
				bruteMin = c
			}
		}
		if got := treeMergeTuples(best.Tree, card); got != best.MergeTuples {
			t.Errorf("%s: reported MergeTuples %.4f but recomputed %.4f", sh.name, best.MergeTuples, got)
		}
		if best.MergeTuples > bruteMin+1e-9 {
			t.Errorf("%s: DP tree %s costs %.4f, brute-force minimum is %.4f",
				sh.name, best.Tree, best.MergeTuples, bruteMin)
		}
		// Every feasible evaluation's tree must also be brute-force optimal
		// for its own efforts (spot-check the winner only — the efforts
		// differ per config).
		_ = evals
	}
}

func thetaIndex(thetas []float64, th float64) int {
	for i, t := range thetas {
		if t == th {
			return i
		}
	}
	return -1
}

// TestChooseNaryDeterministicUnderWorkers pins the parallel sweep contract:
// any worker count returns the identical plan, leaves, tree, and numbers.
func TestChooseNaryDeterministicUnderWorkers(t *testing.T) {
	g, err := querygraph.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	req := Requirement{TauG: 12, TauB: 1 << 30}
	var ref NaryEval
	for wi, workers := range []int{1, 2, 3, 8} {
		in := synthNaryInputs(4, 0.05)
		in.Workers = workers
		best, evals, err := ChooseNary(g, in, req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if wi == 0 {
			ref = best
			if len(evals) == 0 {
				t.Fatal("no evaluations returned")
			}
			continue
		}
		if best.PlanString() != ref.PlanString() || best.Time != ref.Time ||
			best.Quality != ref.Quality || best.MergeTuples != ref.MergeTuples {
			t.Errorf("workers=%d diverged: %s t=%v vs %s t=%v",
				workers, best.PlanString(), best.Time, ref.PlanString(), ref.Time)
		}
		for i := range ref.Leaves {
			if best.Leaves[i] != ref.Leaves[i] {
				t.Errorf("workers=%d leaf %d diverged: %+v vs %+v", workers, i, best.Leaves[i], ref.Leaves[i])
			}
		}
	}
}

// TestChooseNaryRespectsRequirement: raising τg raises (or keeps) the leaf
// efforts; an impossible requirement errors instead of returning a plan.
func TestChooseNaryRespectsRequirement(t *testing.T) {
	g, err := querygraph.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	in := synthNaryInputs(3, 0)
	small, _, err := ChooseNary(g, in, Requirement{TauG: 2, TauB: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := ChooseNary(g, in, Requirement{TauG: 30, TauB: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if large.Time < small.Time {
		t.Errorf("harder requirement predicted cheaper: %.2f < %.2f", large.Time, small.Time)
	}
	if large.Quality.Good < 30 {
		t.Errorf("chosen plan misses τg: %+v", large.Quality)
	}
	if _, _, err := ChooseNary(g, in, Requirement{TauG: 1 << 30, TauB: 0}); err == nil {
		t.Error("impossible requirement returned a plan")
	}
}

// TestChooseNaryMergeCostSteersTree: with a hand-built cardinality function
// that makes one internal set vastly expensive, the DP must route around it.
func TestChooseNaryMergeCostSteersTree(t *testing.T) {
	g, err := querygraph.New(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Clique: every tree shape is legal. Penalize any internal set
	// containing both relations 0 and 1 except the root, so the optimal
	// trees keep 0 and 1 apart until the final join.
	card := func(set uint64) float64 {
		if set == g.All() {
			return 10
		}
		if set&0b11 == 0b11 {
			return 1000
		}
		return float64(bits.OnesCount64(set))
	}
	tree, cost := dpTree(g, card)
	for _, s := range tree.InternalSets() {
		if s != g.All() && s&0b11 == 0b11 {
			t.Errorf("DP tree %s routes through penalized set %b (cost %.1f)", tree, s, cost)
		}
	}
	want := card(g.All()) + 2 + 2 // root + two cheap pairs {0,x} and {1,y}
	if cost != want {
		t.Errorf("DP cost %.1f, want %.1f (tree %s)", cost, want, tree)
	}
}

// TestNaryPlanString smoke-checks the plan rendering.
func TestNaryPlanString(t *testing.T) {
	g, _ := querygraph.Chain(3)
	in := synthNaryInputs(3, 0)
	best, _, err := ChooseNary(g, in, Requirement{TauG: 4, TauB: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	s := best.PlanString()
	if s == "" || s == "(no plan)" {
		t.Errorf("empty plan rendering: %q", s)
	}
	for _, sub := range []string{"R1", "R2", "R3", "θ=", "X="} {
		if !contains(s, sub) {
			t.Errorf("plan rendering %q missing %q", s, sub)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkNaryEnumerator is the enumerator benchmark wired into make
// check: a k=5 chain over the full synthetic configuration space
// (2 θ × 3 kinds per side → 7776 configurations, each with its own effort
// search and DPccp pass).
func BenchmarkNaryEnumerator(b *testing.B) {
	g, err := querygraph.Chain(5)
	if err != nil {
		b.Fatal(err)
	}
	req := Requirement{TauG: 12, TauB: 1 << 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := synthNaryInputs(5, 0.05)
		in.Workers = 0 // one worker per CPU
		if _, _, err := ChooseNary(g, in, req); err != nil {
			b.Fatal(err)
		}
	}
}
