package optimizer

import (
	"fmt"
	"math"

	"joinopt/internal/model"
)

// planFns closes a plan's model over the inputs: quality and time as
// functions of the plan's scalar effort (side-1 documents for IDJN, outer
// documents/queries for OIJN, per-side queries for ZGJN), plus the largest
// meaningful effort.
type planFns struct {
	max           int
	quality       func(int) (model.Quality, error)
	qualityRobust func(int) (model.Quality, error) // nil when RobustSigma == 0
	timeAt        func(int) (float64, error)
	effortPair    func(int) [2]int
}

// planFuncs builds the closures for a plan. A nil return with a non-empty
// reason marks a degenerate plan (no retrieval capacity, stalled zig-zag).
func planFuncs(plan PlanSpec, in *Inputs) (*planFns, string, error) {
	switch plan.JN {
	case IDJN:
		return idjnFuncs(plan, in)
	case OIJN:
		return oijnFuncs(plan, in)
	case ZGJN:
		return zgjnFuncs(plan, in)
	default:
		return nil, "", fmt.Errorf("optimizer: unknown algorithm %q", plan.JN)
	}
}

func idjnFuncs(plan PlanSpec, in *Inputs) (*planFns, string, error) {
	return idjnFuncsRatio(plan, in, 1)
}

// idjnFuncsRatio builds IDJN closures with side-2 effort skewed by ratio
// relative to the proportional (square) baseline.
func idjnFuncsRatio(plan PlanSpec, in *Inputs, ratio float64) (*planFns, string, error) {
	p1, err := in.params(0, plan.Theta[0])
	if err != nil {
		return nil, "", err
	}
	p2, err := in.params(1, plan.Theta[1])
	if err != nil {
		return nil, "", err
	}
	m := &model.IDJNModel{P1: p1, P2: p2, X1: plan.X[0], X2: plan.X[1], Ov: in.Ov}
	max1 := maxEffort(p1, plan.X[0])
	max2 := maxEffort(p2, plan.X[1])
	if max1 == 0 || max2 == 0 {
		return nil, "no retrieval capacity", nil
	}
	if ratio <= 0 {
		ratio = 1
	}
	// Proportional (square) traversal parameterized by side-1 effort —
	// the §VI heuristic: advance the sides as evenly as possible — with an
	// optional aspect skew for the rectangle generalization.
	side2 := func(e1 int) int {
		e2 := int(math.Ceil(ratio * float64(e1) * float64(max2) / float64(max1)))
		if e2 < 1 {
			e2 = 1
		}
		if e2 > max2 {
			e2 = max2
		}
		return e2
	}
	fns := &planFns{
		max: max1,
		quality: func(e int) (model.Quality, error) {
			return m.Estimate(e, side2(e))
		},
		timeAt: func(e int) (float64, error) {
			return m.Time(e, side2(e), in.effCosts(0), in.effCosts(1))
		},
		effortPair: func(e int) [2]int { return [2]int{e, side2(e)} },
	}
	if in.RobustSigma > 0 {
		fns.qualityRobust = func(e int) (model.Quality, error) {
			d, err := m.EstimateDist(e, side2(e))
			if err != nil {
				return model.Quality{}, err
			}
			return robustQuality(d, in.RobustSigma), nil
		}
	}
	return fns, "", nil
}

func oijnFuncs(plan PlanSpec, in *Inputs) (*planFns, string, error) {
	p1, err := in.params(0, plan.Theta[0])
	if err != nil {
		return nil, "", err
	}
	p2, err := in.params(1, plan.Theta[1])
	if err != nil {
		return nil, "", err
	}
	inner := 1 - plan.OuterIdx
	m := &model.OIJNModel{
		P1: p1, P2: p2, Ov: in.Ov,
		OuterIdx:       plan.OuterIdx,
		XOuter:         plan.X[plan.OuterIdx],
		CasualHits:     in.CasualHits[inner],
		MentionedInner: in.Mentioned[inner],
	}
	pOuter := p1
	if plan.OuterIdx == 1 {
		pOuter = p2
	}
	max := maxEffort(pOuter, plan.X[plan.OuterIdx])
	if max == 0 {
		return nil, "no outer retrieval capacity", nil
	}
	cOuter := in.effCosts(plan.OuterIdx)
	cInner := in.effCosts(inner)
	fns := &planFns{
		max:     max,
		quality: m.Estimate,
		timeAt: func(e int) (float64, error) {
			return m.Time(e, cOuter, cInner)
		},
		effortPair: func(e int) [2]int {
			var out [2]int
			out[plan.OuterIdx] = e
			return out
		},
	}
	if in.RobustSigma > 0 {
		fns.qualityRobust = func(e int) (model.Quality, error) {
			d, err := m.EstimateDist(e)
			if err != nil {
				return model.Quality{}, err
			}
			return robustQuality(d, in.RobustSigma), nil
		}
	}
	return fns, "", nil
}

func zgjnFuncs(plan PlanSpec, in *Inputs) (*planFns, string, error) {
	p1, err := in.params(0, plan.Theta[0])
	if err != nil {
		return nil, "", err
	}
	p2, err := in.params(1, plan.Theta[1])
	if err != nil {
		return nil, "", err
	}
	m := &model.ZGJNModel{
		P1: p1, P2: p2, Ov: in.Ov,
		Mentioned1: in.Mentioned[0], Mentioned2: in.Mentioned[1],
	}
	// The zig-zag can issue at most one query per reachable value; the
	// mean-field cascade from the seed bounds the reach.
	seeds := in.SeedCount
	if seeds <= 0 {
		seeds = 1
	}
	cascade, err := m.CascadeAfter(seeds, 64)
	if err != nil {
		return nil, fmt.Sprintf("degenerate zig-zag graph: %v", err), nil
	}
	maxQ := int(math.Floor(math.Min(cascade.Queries[0], cascade.Queries[1])))
	if maxQ < 1 {
		return nil, "zig-zag stalls at the seed", nil
	}
	fns := &planFns{
		max: maxQ,
		quality: func(qn int) (model.Quality, error) {
			return m.EstimateAtQueries(qn, qn)
		},
		timeAt: func(qn int) (float64, error) {
			return m.Time(qn, qn, in.effCosts(0), in.effCosts(1))
		},
		effortPair: func(qn int) [2]int { return [2]int{qn, qn} },
	}
	if in.RobustSigma > 0 {
		fns.qualityRobust = func(qn int) (model.Quality, error) {
			d1, err := m.ReachDocs(0, qn)
			if err != nil {
				return model.Quality{}, err
			}
			d2, err := m.ReachDocs(1, qn)
			if err != nil {
				return model.Quality{}, err
			}
			dist, err := m.EstimateDistAtDocs(int(d1), int(d2))
			if err != nil {
				return model.Quality{}, err
			}
			return robustQuality(dist, in.RobustSigma), nil
		}
	}
	return fns, "", nil
}
