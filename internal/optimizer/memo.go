package optimizer

import (
	"sync"

	"joinopt/internal/model"
)

// The memoization layer: plan evaluation repeats the same derived-model
// work many times — the binary search probes one plan's quality closure at
// O(log D) efforts, the rectangle ratios rebuild IDJN closures per aspect,
// and the adaptive driver re-runs Choose over the identical plan space at
// every checkpoint (and the experiment drivers sweep dozens of requirements
// over one Inputs). A planMemo caches, per Inputs:
//
//   - the (side, θ) parameter lookups of Inputs.params,
//   - the per-(plan, ratio, robust-σ) planFns closures — including the
//     expensive ZGJN cascade bound computed at closure-build time,
//   - and every quality/time point the closures have produced, keyed by
//     effort.
//
// The cache is attached lazily to the Inputs and shared by copies of it
// (`cp := *in` copies the pointer); keys include RobustSigma so a copy that
// changes the robustness margin cannot observe stale closures. Fresh Inputs
// — as built by the adaptive driver at every re-estimation — start with a
// fresh cache. Everything cached derives purely from Thetas, P, Ov, Costs,
// and the other model inputs, so those must not be mutated after the first
// evaluation (Reset clears the cache if they are).
//
// All maps are mutex-guarded and the cached planFns wrap the underlying
// model structs, which are read-only after construction — this is what
// makes Choose's worker pool safe (proven by `go test -race`).

// paramKey identifies one side's parameter set at a knob setting.
type paramKey struct {
	side  int
	theta float64
}

type paramVal struct {
	p   *model.RelationParams
	err error
}

// fnsKey identifies one memoized set of plan closures. The robust margin is
// part of the key because it changes the closure set (qualityRobust) that
// evaluateFns consumes.
type fnsKey struct {
	plan  PlanSpec
	ratio float64
	sigma float64
}

// fnsEntry builds its closures at most once; concurrent requesters block on
// the sync.Once and then share the wrapped (point-caching) closures.
type fnsEntry struct {
	once   sync.Once
	fns    *planFns
	reason string
	err    error
}

// planMemo is the per-Inputs cache described above.
type planMemo struct {
	mu     sync.Mutex
	params map[paramKey]paramVal
	fns    map[fnsKey]*fnsEntry
}

func newPlanMemo() *planMemo {
	return &planMemo{
		params: make(map[paramKey]paramVal),
		fns:    make(map[fnsKey]*fnsEntry),
	}
}

// memoInitMu guards only the lazy attachment of a memo to an Inputs, so
// concurrent Evaluate calls on a memo-less Inputs stay safe without putting
// a lock (which must not be copied) inside Inputs itself.
var memoInitMu sync.Mutex

func (in *Inputs) getMemo() *planMemo {
	memoInitMu.Lock()
	defer memoInitMu.Unlock()
	if in.memo == nil {
		in.memo = newPlanMemo()
	}
	return in.memo
}

// Reset drops all memoized model state, as if the Inputs were freshly
// constructed. Callers that mutate P, Thetas, or the other model inputs in
// place must call it; benchmarks use it to measure cold-cache evaluation.
func (in *Inputs) Reset() {
	memoInitMu.Lock()
	in.memo = nil
	memoInitMu.Unlock()
}

// cachedParams is the memoized Inputs.params.
func (in *Inputs) cachedParams(side int, theta float64) (*model.RelationParams, error) {
	m := in.getMemo()
	key := paramKey{side: side, theta: theta}
	m.mu.Lock()
	if v, ok := m.params[key]; ok {
		m.mu.Unlock()
		return v.p, v.err
	}
	m.mu.Unlock()
	p, err := in.lookupParams(side, theta)
	m.mu.Lock()
	m.params[key] = paramVal{p: p, err: err}
	m.mu.Unlock()
	return p, err
}

// memoFns returns the (cached) closures for a plan at an IDJN aspect ratio
// (ratio 1 selects the plan's canonical closures for every algorithm).
func (in *Inputs) memoFns(plan PlanSpec, ratio float64) (*planFns, string, error) {
	m := in.getMemo()
	key := fnsKey{plan: plan, ratio: ratio, sigma: in.RobustSigma}
	m.mu.Lock()
	e, ok := m.fns[key]
	if !ok {
		e = &fnsEntry{}
		m.fns[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		var raw *planFns
		if plan.JN == IDJN && ratio != 1 {
			raw, e.reason, e.err = idjnFuncsRatio(plan, in, ratio)
		} else {
			raw, e.reason, e.err = planFuncs(plan, in)
		}
		if e.err == nil && raw != nil {
			e.fns = memoizePlanFns(raw)
		}
	})
	return e.fns, e.reason, e.err
}

// qualityPoint and timePoint cache one closure evaluation, errors included
// (the closures are deterministic, so errors memoize as safely as values).
type qualityPoint struct {
	q   model.Quality
	err error
}

type timePoint struct {
	t   float64
	err error
}

// memoizePlanFns wraps a plan's closures with per-effort point caches. A
// duplicate computation under contention is possible (the lock is not held
// across the underlying call) and benign — both goroutines store the same
// deterministic result.
func memoizePlanFns(fns *planFns) *planFns {
	out := &planFns{max: fns.max, effortPair: fns.effortPair}
	out.quality = memoQuality(fns.quality)
	if fns.qualityRobust != nil {
		out.qualityRobust = memoQuality(fns.qualityRobust)
	}
	var mu sync.Mutex
	times := make(map[int]timePoint)
	inner := fns.timeAt
	out.timeAt = func(e int) (float64, error) {
		mu.Lock()
		if p, ok := times[e]; ok {
			mu.Unlock()
			return p.t, p.err
		}
		mu.Unlock()
		t, err := inner(e)
		mu.Lock()
		times[e] = timePoint{t: t, err: err}
		mu.Unlock()
		return t, err
	}
	return out
}

func memoQuality(inner func(int) (model.Quality, error)) func(int) (model.Quality, error) {
	var mu sync.Mutex
	points := make(map[int]qualityPoint)
	return func(e int) (model.Quality, error) {
		mu.Lock()
		if p, ok := points[e]; ok {
			mu.Unlock()
			return p.q, p.err
		}
		mu.Unlock()
		q, err := inner(e)
		mu.Lock()
		points[e] = qualityPoint{q: q, err: err}
		mu.Unlock()
		return q, err
	}
}
