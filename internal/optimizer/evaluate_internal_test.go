package optimizer

import (
	"testing"

	"joinopt/internal/model"
)

// TestSearchMinEffortQualityMatchesEffort is the regression test for the
// search-boundary bug: the returned quality must be the one measured at the
// returned effort, even when the quality function is not perfectly monotone
// (robust bounds and model quirks can dip locally). The old code could pair
// effort lo with the quality measured at a larger effort.
func TestSearchMinEffortQualityMatchesEffort(t *testing.T) {
	// A non-monotone step profile with a dip: efforts 1..3 yield 0, 4..6
	// yield 10, 7 dips to 3, 8..10 yield 10+effort.
	q := func(e int) (model.Quality, error) {
		switch {
		case e <= 3:
			return model.Quality{Good: 0}, nil
		case e <= 6:
			return model.Quality{Good: 10, Bad: float64(e)}, nil
		case e == 7:
			return model.Quality{Good: 3, Bad: 7}, nil
		default:
			return model.Quality{Good: 10 + float64(e), Bad: float64(e)}, nil
		}
	}
	for tauG := 1; tauG <= 12; tauG++ {
		e, got, feasible, err := searchMinEffort(10, tauG, q)
		if err != nil {
			t.Fatal(err)
		}
		at, _ := q(e)
		if got != at {
			t.Errorf("τg=%d: returned quality %+v but quality(%d) = %+v — effort and quality disagree",
				tauG, got, e, at)
		}
		if feasible && got.Good < float64(tauG) {
			t.Errorf("τg=%d: feasible result below the threshold: %+v at effort %d", tauG, got, e)
		}
	}
}

// TestSearchMinEffortMonotone checks the standard monotone cases: minimal
// effort, boundary hits, and infeasibility at max.
func TestSearchMinEffortMonotone(t *testing.T) {
	linear := func(e int) (model.Quality, error) {
		return model.Quality{Good: float64(e)}, nil
	}
	e, q, feasible, err := searchMinEffort(100, 37, linear)
	if err != nil || !feasible {
		t.Fatalf("feasible=%v err=%v", feasible, err)
	}
	if e != 37 || q.Good != 37 {
		t.Errorf("minimal effort (%d, %+v), want (37, good=37)", e, q)
	}
	// τg reached only at max.
	e, q, feasible, err = searchMinEffort(100, 100, linear)
	if err != nil || !feasible || e != 100 || q.Good != 100 {
		t.Errorf("boundary case (%d, %+v, %v, %v)", e, q, feasible, err)
	}
	// Infeasible beyond max.
	e, q, feasible, err = searchMinEffort(100, 101, linear)
	if err != nil || feasible {
		t.Errorf("infeasible case claims feasibility (%d, %+v)", e, q)
	}
	if e != 100 || q.Good != 100 {
		t.Errorf("infeasible case should report the max-effort quality, got (%d, %+v)", e, q)
	}
	// max = 1 degenerate.
	if e, _, feasible, _ := searchMinEffort(1, 1, linear); !feasible || e != 1 {
		t.Errorf("max=1 case (%d, %v)", e, feasible)
	}
}

// TestMemoizedEvaluateConsistent asserts the memo layer is transparent: a
// second evaluation of the same plan space on the same Inputs (now fully
// cached) and an evaluation after Reset (cold cache) return identical
// results.
func TestMemoizedEvaluateConsistent(t *testing.T) {
	in := syntheticInputs()
	plans := Enumerate(in.Thetas)
	req := Requirement{TauG: 4, TauB: 1 << 20}
	first := make([]Eval, len(plans))
	for i, p := range plans {
		ev, err := Evaluate(p, in, req)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = ev
	}
	for i, p := range plans {
		ev, err := Evaluate(p, in, req) // warm cache
		if err != nil {
			t.Fatal(err)
		}
		if ev != first[i] {
			t.Errorf("plan %s: warm-cache eval diverged: %+v vs %+v", p, ev, first[i])
		}
	}
	in.Reset()
	for i, p := range plans {
		ev, err := Evaluate(p, in, req) // cold cache
		if err != nil {
			t.Fatal(err)
		}
		if ev != first[i] {
			t.Errorf("plan %s: post-Reset eval diverged: %+v vs %+v", p, ev, first[i])
		}
	}
}

// syntheticInputs builds a small, fully synthetic parameter set (no
// workload generation) exercising every algorithm's closures.
func syntheticInputs() *Inputs {
	mkParams := func(tp, fp float64) *model.RelationParams {
		return &model.RelationParams{
			D: 400, Dg: 120, Db: 80, Ag: 60, Ab: 30,
			GoodFreq:      []float64{0.5, 0.3, 0.2},
			BadFreq:       []float64{0.7, 0.3},
			TP:            tp,
			FP:            fp,
			BadInGoodFrac: 0.3,
			Ctp:           0.9,
			Cfp:           0.2,
			AQG: []model.QueryParam{
				{Hits: 40, GoodHits: 25, BadHits: 5},
				{Hits: 30, GoodHits: 15, BadHits: 5},
				{Hits: 25, GoodHits: 10, BadHits: 5},
			},
			TopK:         10,
			QPrec:        0.5,
			ValuesPerDoc: []float64{0.3, 0.4, 0.2, 0.1},
		}
	}
	in := &Inputs{
		Thetas:     []float64{0.4, 0.8},
		Ov:         model.Overlaps{Agg: 40, Agb: 10, Abg: 12, Abb: 6},
		CasualHits: [2]float64{1.5, 1.5},
		Mentioned:  [2]int{180, 180},
		SeedCount:  5,
	}
	for side := 0; side < 2; side++ {
		in.P[side] = append(in.P[side], mkParams(0.85, 0.12), mkParams(0.6, 0.04))
	}
	in.Costs = [2]model.Costs{{TR: 1, TE: 2, TF: 0.1, TQ: 0.5}, {TR: 1, TE: 2, TF: 0.1, TQ: 0.5}}
	return in
}
