package optimizer_test

import (
	"reflect"
	"testing"

	"joinopt/internal/optimizer"
	"joinopt/internal/workload"
)

// TestChooseParallelMatchesSequential asserts the determinism guarantee:
// for any worker count, Choose returns the identical best plan and
// evaluation list as the sequential path over the full enumerated plan
// space — including the robust and rectangle-ratio variants — across
// several workload seeds. Running it under `go test -race` doubles as the
// concurrency-safety proof for the shared model state.
func TestChooseParallelMatchesSequential(t *testing.T) {
	reqs := []optimizer.Requirement{
		{TauG: 4, TauB: 60},
		{TauG: 32, TauB: 400},
	}
	for _, seed := range []int64{3, 11} {
		w, err := workload.HQJoinEX(workload.Params{NumDocs: 800, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		base, err := w.TrueInputs(thetas)
		if err != nil {
			t.Fatal(err)
		}
		variants := []struct {
			name  string
			setup func(in *optimizer.Inputs)
		}{
			{"point", func(*optimizer.Inputs) {}},
			{"robust", func(in *optimizer.Inputs) { in.RobustSigma = 2 }},
			{"rect", func(in *optimizer.Inputs) { in.RectangleRatios = []float64{0.5, 2} }},
		}
		plans := optimizer.Enumerate(thetas)
		for _, v := range variants {
			for _, req := range reqs {
				seqIn := *base
				v.setup(&seqIn)
				seqIn.Workers = 1
				wantBest, wantEvals, wantErr := optimizer.Choose(plans, &seqIn, req)
				if wantErr != nil {
					t.Fatalf("seed %d %s: sequential Choose: %v", seed, v.name, wantErr)
				}
				for _, workers := range []int{1, 2, 3, 8} {
					parIn := *base
					v.setup(&parIn)
					parIn.Workers = workers
					gotBest, gotEvals, gotErr := optimizer.Choose(plans, &parIn, req)
					if gotErr != nil {
						t.Fatalf("seed %d %s workers=%d: %v", seed, v.name, workers, gotErr)
					}
					if gotBest != wantBest {
						t.Errorf("seed %d %s workers=%d: best plan diverged:\n  got  %+v\n  want %+v",
							seed, v.name, workers, gotBest, wantBest)
					}
					if !reflect.DeepEqual(gotEvals, wantEvals) {
						t.Errorf("seed %d %s workers=%d: evaluation list diverged", seed, v.name, workers)
					}
				}
			}
		}
	}
}

// TestChooseParallelErrorMatchesSequential asserts the failure paths agree
// too: an infeasible requirement yields the same error and the same full
// evaluation list from every worker count, and a broken plan spec (unknown
// θ) yields the same lowest-index evaluation error.
func TestChooseParallelErrorMatchesSequential(t *testing.T) {
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)

	// No feasible plan: error plus complete evaluation list.
	req := optimizer.Requirement{TauG: 1 << 20, TauB: 1 << 30}
	seqIn := *in
	seqIn.Workers = 1
	_, wantEvals, wantErr := optimizer.Choose(plans, &seqIn, req)
	if wantErr == nil {
		t.Fatal("expected no-feasible-plan error")
	}
	for _, workers := range []int{2, 8} {
		parIn := *in
		parIn.Workers = workers
		_, gotEvals, gotErr := optimizer.Choose(plans, &parIn, req)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Errorf("workers=%d: error %v, want %v", workers, gotErr, wantErr)
		}
		if !reflect.DeepEqual(gotEvals, wantEvals) {
			t.Errorf("workers=%d: evaluation list diverged on infeasible requirement", workers)
		}
	}

	// Evaluation error: the unknown θ in the middle of the list must
	// surface as the same (lowest-index) error regardless of worker count.
	broken := append(append([]optimizer.PlanSpec{}, plans[:4]...),
		optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.123, 0.4}})
	broken = append(broken, plans[4:]...)
	seqIn2 := *in
	seqIn2.Workers = 1
	_, _, wantErr = optimizer.Choose(broken, &seqIn2, optimizer.Requirement{TauG: 4, TauB: 60})
	if wantErr == nil {
		t.Fatal("expected evaluation error for unknown θ")
	}
	for _, workers := range []int{2, 8} {
		parIn := *in
		parIn.Workers = workers
		_, _, gotErr := optimizer.Choose(broken, &parIn, optimizer.Requirement{TauG: 4, TauB: 60})
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Errorf("workers=%d: error %v, want %v", workers, gotErr, wantErr)
		}
	}
}
