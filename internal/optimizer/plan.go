// Package optimizer implements the quality-aware join optimizer of §VI: it
// enumerates the join execution plan space ⟨E1⟨θ1⟩, E2⟨θ2⟩, X1, X2, JN⟩,
// uses the analytical models to find, for every plan, the minimal effort
// that meets a user's quality requirement (τg good tuples, at most τb bad
// tuples), predicts each plan's execution time, and picks the fastest
// feasible plan. An adaptive driver re-estimates the database-specific
// parameters on the fly and switches plans when the estimates say a switch
// is worthwhile.
package optimizer

import (
	"fmt"

	"joinopt/internal/model"
	"joinopt/internal/pipeline"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
)

// Algorithm names a join algorithm.
type Algorithm string

// The join algorithms of §IV.
const (
	IDJN Algorithm = "IDJN"
	OIJN Algorithm = "OIJN"
	ZGJN Algorithm = "ZGJN"
)

// PlanSpec identifies one join execution plan (Definition 3.1).
type PlanSpec struct {
	JN    Algorithm
	Theta [2]float64

	// X are the document retrieval strategies. IDJN uses both; OIJN uses
	// X[OuterIdx] for the outer relation (the inner side is reached by
	// value queries); ZGJN uses neither.
	X [2]retrieval.Kind

	// OuterIdx selects OIJN's outer relation (0 or 1).
	OuterIdx int
}

// String renders the plan compactly, e.g. "OIJN θ=(0.8,0.4) outer=R1/AQG".
func (p PlanSpec) String() string {
	switch p.JN {
	case OIJN:
		return fmt.Sprintf("OIJN θ=(%.1f,%.1f) outer=R%d/%s", p.Theta[0], p.Theta[1], p.OuterIdx+1, p.X[p.OuterIdx])
	case ZGJN:
		return fmt.Sprintf("ZGJN θ=(%.1f,%.1f)", p.Theta[0], p.Theta[1])
	default:
		return fmt.Sprintf("IDJN θ=(%.1f,%.1f) X=(%s,%s)", p.Theta[0], p.Theta[1], p.X[0], p.X[1])
	}
}

// Requirement is the user's quality preference (§III-C): at least TauG good
// join tuples with at most TauB bad join tuples.
type Requirement struct {
	TauG int
	TauB int
}

// Enumerate returns the full plan space over the given knob settings:
// IDJN with every strategy pair, OIJN with both orientations and every
// outer strategy, and ZGJN — each crossed with every θ pair.
func Enumerate(thetas []float64) []PlanSpec {
	kinds := []retrieval.Kind{retrieval.SC, retrieval.FS, retrieval.AQG}
	var out []PlanSpec
	for _, t1 := range thetas {
		for _, t2 := range thetas {
			th := [2]float64{t1, t2}
			for _, x1 := range kinds {
				for _, x2 := range kinds {
					out = append(out, PlanSpec{JN: IDJN, Theta: th, X: [2]retrieval.Kind{x1, x2}})
				}
			}
			for outer := 0; outer < 2; outer++ {
				for _, x := range kinds {
					var xs [2]retrieval.Kind
					xs[outer] = x
					out = append(out, PlanSpec{JN: OIJN, Theta: th, X: xs, OuterIdx: outer})
				}
			}
			out = append(out, PlanSpec{JN: ZGJN, Theta: th})
		}
	}
	return out
}

// Inputs are the model parameters the optimizer evaluates plans against:
// per-side, per-θ relation parameters plus the join-specific quantities.
type Inputs struct {
	// Thetas are the available knob settings; P[side][k] are the parameters
	// of side at Thetas[k].
	Thetas []float64
	P      [2][]*model.RelationParams

	Ov    model.Overlaps
	Costs [2]model.Costs

	// CasualHits and Mentioned are the value-query side parameters of each
	// database (see model.OIJNModel and model.ZGJNModel).
	CasualHits [2]float64
	Mentioned  [2]int

	// SeedCount is the number of seed queries available to ZGJN.
	SeedCount int

	// RobustSigma, when positive, makes plan evaluation conservative: a
	// plan meets a requirement only if its z-sigma lower confidence bound
	// on good tuples reaches τg and its z-sigma upper bound on bad tuples
	// stays within τb (§VI's robustness checking).
	RobustSigma float64

	// RectangleRatios, when non-empty, extends IDJN evaluation beyond the
	// square traversal: each ratio r skews the per-side efforts to r·e and
	// e/r (relative to the proportional baseline), and the cheapest feasible
	// aspect wins. The paper's §IV rectangle generalization; the square
	// heuristic of §VI corresponds to the default empty list.
	RectangleRatios []float64

	// Workers bounds Choose's parallel plan-space evaluation: 0 uses one
	// worker per available CPU (runtime.GOMAXPROCS), 1 forces the sequential
	// path. Any worker count returns the identical best plan and evaluation
	// list (lowest predicted time, ties broken by plan order).
	Workers int

	// ExecWorkers is the pipelined execution worker count the chosen plan
	// will run under (0/1 = sequential). Prediction only: the model divides
	// the per-document extraction charge by the overlap the pool actually
	// delivers (pipeline.EffectiveOverlap — Amdahl's law over the measured
	// serial fraction, not the raw worker count). Executed cost accounting
	// is unaffected.
	ExecWorkers int

	// CacheHitRate is the expected extraction-cache hit rate per side in
	// [0, 1]; a hit makes that document's extraction free. Zero (the
	// default) models a cold or absent cache. Set before the first Evaluate
	// or Choose call — plan evaluations are memoized on first use.
	CacheHitRate [2]float64

	// Shards is the corpus shard count the chosen plan will execute under
	// (0/1 = unsharded). The cost model is additive over documents, hence
	// over shards: per-shard costs sum back to the unsharded total, and
	// tp/fp and quality composition are unchanged. What sharding buys is
	// wall-clock overlap, so prediction divides the per-document scan and
	// extraction charges by shard.EffectiveSpeedup — the scaling curve
	// measured from the sharded benchmark, not the ideal 1/N — and models
	// any remaining per-shard worker pool on top (WorkersPerShard). The json
	// tag keeps unsharded checkpoints byte-identical to the v1 wire format.
	Shards int `json:"Shards,omitempty"`

	// memo caches derived model state (parameter lookups, plan closures,
	// quality/time points) across Evaluate and Choose calls; see memo.go.
	// It attaches lazily, so fresh Inputs always start with a fresh cache.
	memo *planMemo
}

// params resolves the parameter set of side at theta through the memo.
func (in *Inputs) params(side int, theta float64) (*model.RelationParams, error) {
	return in.cachedParams(side, theta)
}

// effCosts returns side's cost parameters as plan-time prediction should see
// them under pipelined, possibly sharded execution: the expected extraction
// charge shrinks by the anticipated cache hit rate, and by the overlap the
// worker pool actually delivers (pipeline.EffectiveOverlap, the Amdahl curve
// measured on the batched engine — not the raw worker count, which
// over-promised before the engine was fixed). Under sharding, retrieval and
// extraction additionally divide by the measured shard-scaling curve
// (shard.EffectiveSpeedup) with the worker budget split per shard — per-shard
// costs still sum to the unsharded total; only predicted elapsed time
// shrinks. Executed runs still charge the full tE per cache miss — this
// adjustment only sharpens predictions.
func (in *Inputs) effCosts(side int) model.Costs {
	c := in.Costs[side]
	if hr := in.CacheHitRate[side]; hr > 0 {
		if hr > 1 {
			hr = 1
		}
		c.TE *= 1 - hr
	}
	if in.Shards > 1 {
		f := shard.EffectiveSpeedup(in.Shards)
		c.TR /= f
		c.TE /= f
		if wps := shard.WorkersPerShard(in.ExecWorkers, in.Shards); wps > 1 {
			c.TE /= pipeline.EffectiveOverlap(wps)
		}
	} else if in.ExecWorkers > 1 {
		c.TE /= pipeline.EffectiveOverlap(in.ExecWorkers)
	}
	return c
}

// lookupParams is the uncached resolution behind params.
func (in *Inputs) lookupParams(side int, theta float64) (*model.RelationParams, error) {
	for k, t := range in.Thetas {
		if t == theta {
			if side < 0 || side > 1 || k >= len(in.P[side]) || in.P[side][k] == nil {
				return nil, fmt.Errorf("optimizer: missing parameters for side %d at θ=%.2f", side+1, theta)
			}
			return in.P[side][k], nil
		}
	}
	return nil, fmt.Errorf("optimizer: unknown θ=%.2f", theta)
}

// maxEffort is the largest meaningful effort of a strategy on a side:
// the database size for scans, the learned query count for AQG.
func maxEffort(p *model.RelationParams, x retrieval.Kind) int {
	if x == retrieval.AQG {
		return len(p.AQG)
	}
	return p.D
}
