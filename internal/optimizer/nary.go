package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"joinopt/internal/model"
	"joinopt/internal/pipeline"
	"joinopt/internal/querygraph"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
)

// N-ary plan enumeration: DPccp over the query graph with the paper's
// quality model composed along join trees.
//
// The n-way output composition is a sum over good/bad class masks of the
// value counts times per-side occurrence products (model.MultiIDJNModel) —
// class-mask intersections, not per-subset scalars — so quality does NOT
// decompose over join subtrees and cannot be optimized by the subset DP
// directly. The enumerator therefore splits the search:
//
//   - Per-leaf knob configurations (θ_i, X_i) are enumerated exhaustively
//     (the space is bounded: k ≤ querygraph.MaxRelations sides, ≤ |Thetas|·3
//     configs per side), and for each configuration the minimal effort
//     meeting τg is found by the same monotone binary search the binary
//     optimizer uses (searchMinEffort), with all sides advancing
//     proportionally — the n-dimensional square-traversal heuristic.
//   - The join TREE is then chosen by DPccp over connected subgraphs,
//     minimizing the merge cost TJ · Σ E[tuples at each internal node]: the
//     final output is order-independent (a natural join on one shared
//     attribute), so tree shape only moves intermediate cardinalities.
//
// k = 2 with Binary inputs attached delegates wholesale to the legacy
// binary optimizer (Enumerate + Choose), which evaluates the richer binary
// plan space (OIJN orientations, ZGJN, rectangle ratios) through
// evaluate.go/planfuncs.go — the binary join is a derived special case, not
// a fork.

// NaryLeaf is one relation's chosen configuration in an n-ary plan.
type NaryLeaf struct {
	Rel    int
	Theta  float64
	X      retrieval.Kind
	Effort int

	// MaxEffort is the largest meaningful effort of the strategy on this
	// relation (documents for scans, learned queries for AQG).
	MaxEffort int
}

// NaryNode is one node of a join tree: a leaf names a relation, an internal
// node joins its two children. Set is the bitmask of relations covered.
type NaryNode struct {
	Set         uint64
	Rel         int // leaf: relation index; internal: -1
	Left, Right *NaryNode
}

// Leaf reports whether the node is a leaf.
func (n *NaryNode) Leaf() bool { return n.Left == nil }

// String renders the tree shape, e.g. "((R1⋈R2)⋈(R3⋈R4))".
func (n *NaryNode) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.Leaf() {
		return fmt.Sprintf("R%d", n.Rel+1)
	}
	return "(" + n.Left.String() + "⋈" + n.Right.String() + ")"
}

// InternalSets returns the relation sets of the internal nodes in
// deterministic (post-order) sequence — the sets whose intermediate
// cardinalities the merge cost charges.
func (n *NaryNode) InternalSets() []uint64 {
	var out []uint64
	var walk func(*NaryNode)
	walk = func(nd *NaryNode) {
		if nd == nil || nd.Leaf() {
			return
		}
		walk(nd.Left)
		walk(nd.Right)
		out = append(out, nd.Set)
	}
	walk(n)
	return out
}

// NaryEval is the optimizer's assessment of one n-ary configuration (or,
// for the whole query, the chosen plan).
type NaryEval struct {
	Tree     *NaryNode
	Leaves   []NaryLeaf
	Feasible bool

	// Quality is the predicted root output composition at the leaf efforts.
	Quality model.Quality

	// Time is the predicted cost-model execution time: per-side
	// retrieval/extraction time plus TJ times MergeTuples.
	Time float64

	// MergeTuples is Σ over internal nodes of the expected intermediate
	// cardinality (the root included).
	MergeTuples float64

	// Binary carries the legacy binary evaluation when k=2 delegated to the
	// binary optimizer; nil otherwise.
	Binary *Eval

	// Reason explains infeasibility.
	Reason string
}

// PlanString renders the chosen plan compactly, e.g.
// "((R1⋈R2)⋈R3) θ=(0.4,0.8,0.4) X=(SC,SC,SC)".
func (ev NaryEval) PlanString() string {
	if ev.Binary != nil {
		return ev.Binary.Plan.String()
	}
	if ev.Tree == nil {
		return "(no plan)"
	}
	ths := make([]string, len(ev.Leaves))
	xs := make([]string, len(ev.Leaves))
	for i, l := range ev.Leaves {
		ths[i] = fmt.Sprintf("%.1f", l.Theta)
		xs[i] = string(l.X)
	}
	return fmt.Sprintf("%s θ=(%s) X=(%s)", ev.Tree, strings.Join(ths, ","), strings.Join(xs, ","))
}

// NaryInputs are the model parameters the n-ary enumerator evaluates
// configurations against.
type NaryInputs struct {
	// Thetas are the available knob settings; P[rel][k] are the parameters
	// of relation rel at Thetas[k]. Costs are per relation.
	Thetas []float64
	P      [][]*model.RelationParams
	Costs  []model.Costs

	// Classes returns the good/bad class-mask value counts of the relation
	// subset (bits index the query's relations; the returned masks index the
	// subset's members in ascending relation order). SubsetClassFn builds
	// one from gold sets. Results are memoized per subset.
	Classes func(subset uint64) map[relation.ClassMask]int

	// TJ is the merge cost charged per expected intermediate tuple at every
	// internal node of the join tree. Zero (the default) reproduces the
	// legacy MultiIDJN accounting, where tuple composition is free.
	TJ float64

	// Workers bounds the parallel configuration sweep exactly like
	// Inputs.Workers; any worker count returns the identical choice.
	Workers int

	// ExecWorkers and CacheHitRate adjust predicted extraction charges the
	// same way Inputs.effCosts does (Amdahl overlap, expected cache hits).
	ExecWorkers  int
	CacheHitRate []float64

	// Shards is the corpus shard count, dividing predicted scan/extract
	// charges by the measured shard-scaling curve exactly as Inputs.Shards
	// does (quality composition unchanged — costs are additive over shards).
	Shards int

	// Binary, when set and the query has exactly two relations, delegates
	// plan choice to the legacy binary optimizer over its full plan space.
	Binary *Inputs

	classMu   sync.Mutex
	classMemo map[uint64]map[relation.ClassMask]int
}

// SubsetClassFn builds a Classes callback from gold sets: the class-mask
// value counts of a subset are relation.MultiOverlaps over its members.
func SubsetClassFn(golds []*relation.Gold) func(uint64) map[relation.ClassMask]int {
	return func(subset uint64) map[relation.ClassMask]int {
		sub := make([]*relation.Gold, 0, bits.OnesCount64(subset))
		for _, i := range querygraph.Bits(subset) {
			sub = append(sub, golds[i])
		}
		return relation.MultiOverlaps(sub)
	}
}

// subsetClasses memoizes Classes per subset (safe under the worker pool).
func (in *NaryInputs) subsetClasses(subset uint64) map[relation.ClassMask]int {
	in.classMu.Lock()
	defer in.classMu.Unlock()
	if in.classMemo == nil {
		in.classMemo = map[uint64]map[relation.ClassMask]int{}
	}
	if c, ok := in.classMemo[subset]; ok {
		return c
	}
	c := in.Classes(subset)
	in.classMemo[subset] = c
	return c
}

// effCostsAt mirrors Inputs.effCosts for relation rel.
func (in *NaryInputs) effCostsAt(rel int) model.Costs {
	c := in.Costs[rel]
	if rel < len(in.CacheHitRate) {
		if hr := in.CacheHitRate[rel]; hr > 0 {
			if hr > 1 {
				hr = 1
			}
			c.TE *= 1 - hr
		}
	}
	if in.Shards > 1 {
		f := shard.EffectiveSpeedup(in.Shards)
		c.TR /= f
		c.TE /= f
		if wps := shard.WorkersPerShard(in.ExecWorkers, in.Shards); wps > 1 {
			c.TE /= pipeline.EffectiveOverlap(wps)
		}
	} else if in.ExecWorkers > 1 {
		c.TE /= pipeline.EffectiveOverlap(in.ExecWorkers)
	}
	return c
}

func (in *NaryInputs) validate(g *querygraph.Graph) error {
	n := g.N
	if len(in.P) != n {
		return fmt.Errorf("optimizer: query has %d relations but parameters for %d", n, len(in.P))
	}
	if len(in.Costs) != n {
		return fmt.Errorf("optimizer: query has %d relations but costs for %d", n, len(in.Costs))
	}
	if len(in.Thetas) == 0 {
		return fmt.Errorf("optimizer: no θ settings")
	}
	for i, ps := range in.P {
		if len(ps) != len(in.Thetas) {
			return fmt.Errorf("optimizer: relation %d has %d parameter sets for %d θ settings", i+1, len(ps), len(in.Thetas))
		}
		for k, p := range ps {
			if p == nil {
				return fmt.Errorf("optimizer: relation %d missing parameters at θ=%.2f", i+1, in.Thetas[k])
			}
		}
	}
	if in.Classes == nil {
		return fmt.Errorf("optimizer: missing Classes callback")
	}
	return nil
}

// naryConfig fixes per-relation knob choices: θ index and retrieval kind.
type naryConfig struct {
	thetaIdx []int
	kinds    []retrieval.Kind
}

// maxNaryConfigs caps the configuration cross product; beyond it the sweep
// would dominate optimization time and the caller should prune θ settings.
const maxNaryConfigs = 200_000

// enumerateConfigs builds the per-relation configuration cross product in
// deterministic order (relation 0 outermost; per relation: θ order, then
// SC/FS/AQG). A kind is offered only where its parameters exist: FS needs a
// trained classifier (Ctp > 0), AQG needs learned queries.
func enumerateConfigs(in *NaryInputs, n int) ([]naryConfig, error) {
	type opt struct {
		thetaIdx int
		kind     retrieval.Kind
	}
	perRel := make([][]opt, n)
	for i := 0; i < n; i++ {
		for k := range in.Thetas {
			p := in.P[i][k]
			perRel[i] = append(perRel[i], opt{k, retrieval.SC})
			if p.Ctp > 0 {
				perRel[i] = append(perRel[i], opt{k, retrieval.FS})
			}
			if len(p.AQG) > 0 {
				perRel[i] = append(perRel[i], opt{k, retrieval.AQG})
			}
		}
	}
	total := 1
	for _, opts := range perRel {
		total *= len(opts)
		if total > maxNaryConfigs {
			return nil, fmt.Errorf("optimizer: configuration space exceeds %d; reduce θ settings", maxNaryConfigs)
		}
	}
	configs := make([]naryConfig, 0, total)
	idx := make([]int, n)
	for {
		cfg := naryConfig{thetaIdx: make([]int, n), kinds: make([]retrieval.Kind, n)}
		for i := 0; i < n; i++ {
			cfg.thetaIdx[i] = perRel[i][idx[i]].thetaIdx
			cfg.kinds[i] = perRel[i][idx[i]].kind
		}
		configs = append(configs, cfg)
		// Odometer increment, last relation fastest.
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(perRel[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return configs, nil
		}
	}
}

// sideOcc is a relation's expected per-value occurrence observation rates
// at a given effort: E[gr|g] = good·g and E[br|b] = bad·b per §V-C, scaled
// to expected occurrences per value via the mean frequencies.
type sideOcc struct {
	good float64
	bad  float64
}

func occAt(p *model.RelationParams, x retrieval.Kind, effort int) (sideOcc, error) {
	proc, err := p.ProcessedAfter(x, effort)
	if err != nil {
		return sideOcc{}, err
	}
	cov := p.CoverageOf(proc)
	return sideOcc{good: cov.CG * p.MeanGoodFreq(), bad: cov.CB * p.MeanBadFreq()}, nil
}

// subsetCard computes the expected total tuple count of the join over the
// relation subset: Σ over the subset's class masks of count · Π occurrence
// products.
func subsetCard(classes map[relation.ClassMask]int, members []int, occ []sideOcc) float64 {
	var total float64
	top := relation.AllGood(len(members))
	// Ascending mask order, not map order: deterministic float summation.
	for mask := relation.ClassMask(0); ; mask++ {
		if count := classes[mask]; count != 0 {
			contrib := float64(count)
			for pos, rel := range members {
				if mask&(1<<pos) != 0 {
					contrib *= occ[rel].good
				} else {
					contrib *= occ[rel].bad
				}
			}
			total += contrib
		}
		if mask == top {
			break
		}
	}
	return total
}

// dpEntry is the DP table entry of one connected subgraph.
type dpEntry struct {
	node *NaryNode
	cost float64 // Σ intermediate cardinalities of the subtree
}

// dpTree runs the subset DP over the DPccp csg-cmp stream: best[S] minimizes
// the accumulated intermediate cardinality Σ card(node) over the subtree's
// internal nodes. card(S) is split-independent, so the DP reduces to
// minimizing Σ over children — ties break toward the first csg-cmp pair in
// enumeration order, which is deterministic.
func dpTree(g *querygraph.Graph, card func(uint64) float64) (*NaryNode, float64) {
	best := make(map[uint64]*dpEntry, 1<<g.N)
	for i := 0; i < g.N; i++ {
		s := uint64(1) << i
		best[s] = &dpEntry{node: &NaryNode{Set: s, Rel: i}}
	}
	g.CsgCmpPairs(func(s1, s2 uint64) {
		u := s1 | s2
		l, r := best[s1], best[s2]
		c := l.cost + r.cost + card(u)
		if e, ok := best[u]; !ok || c < e.cost {
			best[u] = &dpEntry{
				node: &NaryNode{Set: u, Rel: -1, Left: l.node, Right: r.node},
				cost: c,
			}
		}
	})
	e := best[g.All()]
	return e.node, e.cost
}

// evalNaryConfig finds the minimal effort at which the configuration meets
// req (every side advancing proportionally toward its maximum — the
// n-dimensional square traversal), then picks the cheapest join tree by
// DPccp at those efforts.
func evalNaryConfig(g *querygraph.Graph, in *NaryInputs, req Requirement, cfg naryConfig) (NaryEval, error) {
	n := g.N
	params := make([]*model.RelationParams, n)
	leaves := make([]NaryLeaf, n)
	maxT := 0
	for i := 0; i < n; i++ {
		params[i] = in.P[i][cfg.thetaIdx[i]]
		me := maxEffort(params[i], cfg.kinds[i])
		leaves[i] = NaryLeaf{Rel: i, Theta: in.Thetas[cfg.thetaIdx[i]], X: cfg.kinds[i], MaxEffort: me}
		if me <= 0 {
			return NaryEval{Leaves: leaves, Reason: fmt.Sprintf("relation %d has no %s effort", i+1, cfg.kinds[i])}, nil
		}
		if me > maxT {
			maxT = me
		}
	}
	m := &model.MultiIDJNModel{P: params, X: cfg.kinds, Classes: in.subsetClasses(g.All())}
	effortsAt := func(t int) []int {
		e := make([]int, n)
		for i := 0; i < n; i++ {
			e[i] = int(math.Ceil(float64(t) * float64(leaves[i].MaxEffort) / float64(maxT)))
			if e[i] < 1 {
				e[i] = 1
			}
			if e[i] > leaves[i].MaxEffort {
				e[i] = leaves[i].MaxEffort
			}
		}
		return e
	}
	t, q, feasible, err := searchMinEffort(maxT, req.TauG, func(t int) (model.Quality, error) {
		return m.Estimate(effortsAt(t))
	})
	if err != nil {
		return NaryEval{}, err
	}
	efforts := effortsAt(t)
	for i := range leaves {
		leaves[i].Effort = efforts[i]
	}
	out := NaryEval{Leaves: leaves, Quality: q}
	if !feasible {
		out.Reason = fmt.Sprintf("max good %.0f < τg %d", q.Good, req.TauG)
		return out, nil
	}
	if q.Bad > float64(req.TauB) {
		out.Reason = fmt.Sprintf("bad %.0f > τb %d at required effort", q.Bad, req.TauB)
		return out, nil
	}
	out.Feasible = true

	costs := make([]model.Costs, n)
	for i := 0; i < n; i++ {
		costs[i] = in.effCostsAt(i)
	}
	out.Time, err = m.Time(efforts, costs)
	if err != nil {
		return NaryEval{}, err
	}

	// Merge-cost DP: intermediate cardinalities at the chosen efforts.
	occ := make([]sideOcc, n)
	for i := 0; i < n; i++ {
		if occ[i], err = occAt(params[i], cfg.kinds[i], efforts[i]); err != nil {
			return NaryEval{}, err
		}
	}
	card := func(set uint64) float64 {
		return subsetCard(in.subsetClasses(set), querygraph.Bits(set), occ)
	}
	out.Tree, out.MergeTuples = dpTree(g, card)
	out.Time += in.TJ * out.MergeTuples
	return out, nil
}

// ChooseNary evaluates every per-relation knob configuration, picks for each
// the minimal feasible effort and the cheapest join tree, and returns the
// fastest feasible plan plus all evaluations. For two-relation queries with
// Binary inputs attached the choice delegates to the legacy binary
// optimizer's full plan space (Enumerate + Choose), so the binary join is an
// exact special case of the query API.
//
// Like Choose, the sweep runs on a bounded worker pool (Workers; 0 = one
// per CPU) and returns the identical result for any worker count: ties
// break toward the earlier configuration in enumeration order.
func ChooseNary(g *querygraph.Graph, in *NaryInputs, req Requirement) (NaryEval, []NaryEval, error) {
	if g.N == 2 && in.Binary != nil {
		best, _, err := Choose(Enumerate(in.Binary.Thetas), in.Binary, req)
		if err != nil {
			return NaryEval{}, nil, err
		}
		ev := binaryAsNary(best)
		return ev, []NaryEval{ev}, nil
	}
	if err := in.validate(g); err != nil {
		return NaryEval{}, nil, err
	}
	configs, err := enumerateConfigs(in, g.N)
	if err != nil {
		return NaryEval{}, nil, err
	}
	workers := in.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	evals := make([]NaryEval, len(configs))
	errs := make([]error, len(configs))
	if workers <= 1 {
		for i, cfg := range configs {
			if evals[i], errs[i] = evalNaryConfig(g, in, req, cfg); errs[i] != nil {
				return NaryEval{}, nil, errs[i]
			}
		}
		return pickBestNary(evals, req)
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(configs) || failed.Load() {
					return
				}
				ev, err := evalNaryConfig(g, in, req, configs[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				evals[i] = ev
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return NaryEval{}, nil, err
			}
		}
	}
	return pickBestNary(evals, req)
}

// binaryAsNary wraps a legacy binary evaluation as a two-leaf n-ary plan.
func binaryAsNary(ev Eval) NaryEval {
	l0 := &NaryNode{Set: 1, Rel: 0}
	l1 := &NaryNode{Set: 2, Rel: 1}
	return NaryEval{
		Tree:     &NaryNode{Set: 3, Rel: -1, Left: l0, Right: l1},
		Feasible: ev.Feasible,
		Quality:  ev.Quality,
		Time:     ev.Time,
		Binary:   &ev,
		Reason:   ev.Reason,
		Leaves: []NaryLeaf{
			{Rel: 0, Theta: ev.Plan.Theta[0], X: ev.Plan.X[0], Effort: ev.Effort[0]},
			{Rel: 1, Theta: ev.Plan.Theta[1], X: ev.Plan.X[1], Effort: ev.Effort[1]},
		},
	}
}

// pickBestNary reduces the evaluations with the deterministic tie-break
// (lowest predicted time, then configuration order).
func pickBestNary(evals []NaryEval, req Requirement) (NaryEval, []NaryEval, error) {
	best := NaryEval{Time: math.Inf(1)}
	found := false
	for _, ev := range evals {
		if ev.Feasible && ev.Time < best.Time {
			best = ev
			found = true
		}
	}
	if !found {
		return NaryEval{}, evals, fmt.Errorf("optimizer: no feasible n-ary plan for τg=%d τb=%d", req.TauG, req.TauB)
	}
	return best, evals, nil
}
